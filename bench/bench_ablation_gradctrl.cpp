// E12 — Fig. 5(b) ablation: gradient control vs no gradient control.
//
// SPATL's encoder control variates on vs off, VGG-11 on 10 clients.
//
// Paper shape to reproduce: heterogeneous local gradients make the
// uncontrolled run noisier / slower to converge; the control variates
// stabilize training and lift the curve.
#include <cstdio>

#include "bench_util.hpp"

using namespace spatl;
using namespace spatl::bench;

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kWarn);
  const BenchScale scale = bench_scale();

  RunSpec spec;
  spec.arch = "vgg11";
  spec.num_clients = 10;
  spec.sample_ratio = 1.0;
  spec.beta = 0.3;
  // Control variates need warm drift estimates before they pay off (the
  // same late-crossover SCAFFOLD shows); run longer than the default.
  spec.rounds_override = scale.rounds + scale.rounds / 2;

  auto with_gc = default_spatl_options();
  auto without_gc = with_gc;
  without_gc.gradient_control = false;

  const rl::PpoAgent& agent = shared_pretrained_agent();
  const AlgoRun on = run_algorithm("spatl", spec, scale, with_gc, &agent);
  const AlgoRun off = run_algorithm("spatl", spec, scale, without_gc, &agent);

  common::CsvWriter csv(csv_path("bench_ablation_gradctrl"),
                        {"variant", "round", "avg_accuracy", "avg_loss"});

  print_header("E12: Gradient control vs no gradient control (Fig. 5b)");
  std::printf("%-8s %22s %22s\n", "round", "with gradient control",
              "no gradient control");
  for (std::size_t r = 0; r < on.result.history.size(); ++r) {
    std::printf("%-8zu %21.1f%% %21.1f%%\n", on.result.history[r].round,
                on.result.history[r].avg_accuracy * 100.0,
                off.result.history[r].avg_accuracy * 100.0);
    csv.row_values("gradient_control", on.result.history[r].round,
                   on.result.history[r].avg_accuracy,
                   on.result.history[r].avg_loss);
    csv.row_values("none", off.result.history[r].round,
                   off.result.history[r].avg_accuracy,
                   off.result.history[r].avg_loss);
  }
  std::printf("\nfinal: controlled %.1f%% vs uncontrolled %.1f%%\n",
              on.result.best_accuracy * 100.0,
              off.result.best_accuracy * 100.0);
  std::printf("CSV written to %s\n", csv_path("bench_ablation_gradctrl").c_str());
  return 0;
}
