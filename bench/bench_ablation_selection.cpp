// E10 — Fig. 4 ablation: salient parameter selection vs no selection.
//
// SPATL with the selection agent on vs off (dense encoder upload) on
// ResNet-20 across federation sizes.
//
// Paper shape to reproduce: pruning redundant weights does not harm
// training stability — the curves track each other (selection sometimes a
// little better), while selection pays far fewer uplink bytes.
#include <cstdio>

#include "bench_util.hpp"

using namespace spatl;
using namespace spatl::bench;

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kWarn);
  const BenchScale scale = bench_scale();

  struct Setting {
    std::size_t clients;
    double ratio;
  };
  const std::vector<Setting> settings = {{10, 1.0}, {20, 0.4}};

  common::CsvWriter csv(csv_path("bench_ablation_selection"),
                        {"clients", "sample_ratio", "variant", "round",
                         "avg_accuracy", "cumulative_uplink_bytes"});

  const rl::PpoAgent& agent = shared_pretrained_agent();

  print_header("E10: Salient selection vs no selection (Fig. 4)");
  for (const auto& s : settings) {
    RunSpec spec;
    spec.arch = "resnet20";
    spec.num_clients = s.clients;
    spec.sample_ratio = s.ratio;

    auto with_sel = default_spatl_options();
    auto without_sel = with_sel;
    without_sel.salient_selection = false;

    const AlgoRun on =
        run_algorithm("spatl", spec, scale, with_sel, &agent);
    const AlgoRun off =
        run_algorithm("spatl", spec, scale, without_sel, &agent);

    std::printf("\n--- ResNet-20, %zu clients, ratio %.1f ---\n", s.clients,
                s.ratio);
    std::printf("%-8s %16s %16s\n", "round", "with selection",
                "no selection");
    for (std::size_t r = 0; r < on.result.history.size(); ++r) {
      std::printf("%-8zu %15.1f%% %15.1f%%\n", on.result.history[r].round,
                  on.result.history[r].avg_accuracy * 100.0,
                  off.result.history[r].avg_accuracy * 100.0);
      csv.row_values(s.clients, s.ratio, "selection",
                     on.result.history[r].round,
                     on.result.history[r].avg_accuracy,
                     on.result.history[r].cumulative_bytes);
      csv.row_values(s.clients, s.ratio, "dense",
                     off.result.history[r].round,
                     off.result.history[r].avg_accuracy,
                     off.result.history[r].cumulative_bytes);
    }
    std::printf("uplink: selection %s vs dense %s (%.1f%% saved)\n",
                common::format_bytes(on.uplink_bytes).c_str(),
                common::format_bytes(off.uplink_bytes).c_str(),
                (1.0 - on.uplink_bytes / off.uplink_bytes) * 100.0);
  }
  std::printf("\nCSV written to %s\n",
              csv_path("bench_ablation_selection").c_str());
  return 0;
}
