// E11 — Fig. 5(a) ablation: transfer learning vs no transfer learning.
//
// SPATL with heterogeneous local predictors (knowledge transfer) vs the
// uniform-model variant that shares and aggregates the predictor too.
// ResNet-20, 10 clients, all sampled.
//
// Paper shape to reproduce: without transfer learning the uniform model
// performs clearly worse on non-IID clients; the local predictor is what
// absorbs heterogeneity.
#include <cstdio>

#include "bench_util.hpp"

using namespace spatl;
using namespace spatl::bench;

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kWarn);
  const BenchScale scale = bench_scale();

  RunSpec spec;
  spec.arch = "resnet20";
  spec.num_clients = 10;
  spec.sample_ratio = 1.0;
  spec.beta = 0.3;  // strong non-IID, where transfer matters most

  auto with_tl = default_spatl_options();
  auto without_tl = with_tl;
  without_tl.transfer_learning = false;

  const rl::PpoAgent& agent = shared_pretrained_agent();
  const AlgoRun on = run_algorithm("spatl", spec, scale, with_tl, &agent);
  const AlgoRun off = run_algorithm("spatl", spec, scale, without_tl, &agent);

  common::CsvWriter csv(csv_path("bench_ablation_transfer"),
                        {"variant", "round", "avg_accuracy"});

  print_header("E11: Transfer learning vs no transfer learning (Fig. 5a)");
  std::printf("%-8s %18s %18s\n", "round", "with transfer", "no transfer");
  for (std::size_t r = 0; r < on.result.history.size(); ++r) {
    std::printf("%-8zu %17.1f%% %17.1f%%\n", on.result.history[r].round,
                on.result.history[r].avg_accuracy * 100.0,
                off.result.history[r].avg_accuracy * 100.0);
    csv.row_values("transfer", on.result.history[r].round,
                   on.result.history[r].avg_accuracy);
    csv.row_values("uniform", off.result.history[r].round,
                   off.result.history[r].avg_accuracy);
  }
  std::printf("\nfinal: transfer %.1f%% vs uniform %.1f%%\n",
              on.result.best_accuracy * 100.0,
              off.result.best_accuracy * 100.0);
  std::printf("CSV written to %s\n", csv_path("bench_ablation_transfer").c_str());
  return 0;
}
