// Microbenchmarks (google-benchmark) for the §V-F1 cost claims: the salient
// parameter agent computes a selection policy in ONE GNN inference
// (paper: 0.36 ms on a V100, 26 KB of weights), which is what makes it
// deployable on edge devices — plus the tensor kernels underlying it.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hpp"
#include "graph/compute_graph.hpp"
#include "nn/module.hpp"
#include "prune/saliency.hpp"
#include "rl/ppo.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace spatl;

models::SplitModel make_model(const std::string& arch) {
  models::ModelConfig cfg;
  cfg.arch = arch;
  cfg.input_size = 16;
  cfg.width_mult = 0.5;
  common::Rng rng(1);
  return models::build_model(cfg, rng);
}

void BM_AgentOneShotInference(benchmark::State& state) {
  auto model = make_model("resnet20");
  const auto graph = graph::build_compute_graph(model);
  rl::PpoAgent agent(graph::kNumNodeFeatures, rl::PpoConfig{}, 3);
  for (auto _ : state) {
    auto actions = agent.act(graph, /*explore=*/false);
    benchmark::DoNotOptimize(actions);
  }
  // Memory footprint of the deployed policy (the paper reports 26 KB).
  state.counters["agent_bytes"] = double(
      nn::param_count(agent.network().all_params()) * sizeof(float));
}
BENCHMARK(BM_AgentOneShotInference);

void BM_GraphExtraction(benchmark::State& state) {
  auto model = make_model("resnet56");
  for (auto _ : state) {
    auto graph = graph::build_compute_graph(model);
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_GraphExtraction);

void BM_SaliencyScoring(benchmark::State& state) {
  auto model = make_model("vgg11");
  for (auto _ : state) {
    for (auto* conv : model.gate_convs()) {
      auto scores =
          prune::channel_scores(conv->weight(), prune::Criterion::kL2);
      benchmark::DoNotOptimize(scores);
    }
  }
}
BENCHMARK(BM_SaliencyScoring);

void BM_Matmul(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  common::Rng rng(5);
  auto a = tensor::Tensor::randn({n, n}, rng);
  auto b = tensor::Tensor::randn({n, n}, rng);
  tensor::Tensor c;
  for (auto _ : state) {
    tensor::matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * double(n) * n * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_EncoderForward(benchmark::State& state) {
  auto model = make_model("resnet20");
  common::Rng rng(7);
  auto x = tensor::Tensor::randn({8, 3, 16, 16}, rng);
  for (auto _ : state) {
    auto y = model.forward(x, /*train=*/false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_EncoderForward);

}  // namespace

// Expanded BENCHMARK_MAIN with the shared telemetry scope: the
// --trace-out/--metrics-out/--telemetry-every flags are consumed before
// google-benchmark sees argv, so its unrecognized-argument check still runs.
int main(int argc, char** argv) {
  spatl::bench::TelemetryScope telemetry(argc, argv);
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace-out" || arg == "--metrics-out" ||
        arg == "--telemetry-every") {
      ++i;  // skip the flag's value too
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = int(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
