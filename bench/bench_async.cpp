// E-ASYNC — Semi-asynchronous straggler commit (DESIGN.md §11): accuracy vs
// communicated bytes when past-deadline clients are (a) dropped outright
// (synchronous, stale_weight = 0), (b) down-weighted in the same round
// (synchronous staleness), or (c) parked and committed `lag` rounds later
// with weight stale_weight^lag (semi-async buffer).
//
// Shape to expect: with aggressive deadlines the drop policy discards paid
// uplink bytes, so at a common byte budget the buffered policy should reach
// equal or better accuracy — that is the acceptance criterion this bench
// demonstrates. The CSV reports accuracy at the smallest total byte budget
// across the three modes of each (algorithm, deadline) group so the
// comparison is at equal bytes, not equal rounds.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace spatl;
using namespace spatl::bench;

namespace {

struct Row {
  std::string mode;
  double stale_weight = 0.0;
  std::size_t max_lag = 0;  // 0 = synchronous (no buffer)
  AlgoRun run;
};

/// Highest evaluated accuracy among rounds whose cumulative communicated
/// bytes fit within `budget`.
double accuracy_at_budget(const fl::RunResult& result, double budget) {
  double best = 0.0;
  for (const auto& rec : result.history) {
    if (rec.cumulative_bytes <= budget) {
      best = std::max(best, rec.avg_accuracy);
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kWarn);
  const BenchScale scale = bench_scale();

  const std::vector<std::string> algos = {"fedavg", "scaffold", "spatl"};
  const std::vector<double> deadlines = {1.5, 2.5};
  const std::vector<double> stale_weights = {0.3, 0.7};
  // Lag-budget sweep for the buffered mode: a tight budget rejects parked
  // updates past one round; a loose one drains nearly every straggler.
  const std::vector<std::size_t> max_lags = {1, 4};

  common::CsvWriter csv(
      csv_path("bench_async"),
      {"algorithm", "mode", "deadline", "stale_weight", "max_lag",
       "final_accuracy", "best_accuracy", "acc_at_budget", "budget_bytes",
       "total_bytes", "stragglers", "parked", "late_commits",
       "buffered_remaining", "rejected", "rounds_skipped"});

  const rl::PpoAgent& agent = shared_pretrained_agent();

  print_header("E-ASYNC: drop vs sync-stale vs buffered straggler commit");
  std::printf("%-9s %-11s %5s %5s %4s %7s %7s %9s %12s %6s %6s\n", "method",
              "mode", "ddl", "sw", "lag", "best", "@budg", "budget", "bytes",
              "park", "late");

  for (const auto& algo : algos) {
    for (const double deadline : deadlines) {
      // All three modes share one fault schedule: heavy straggling against
      // a deadline tight enough that compute_time regularly exceeds it.
      const auto run_mode = [&](std::optional<fl::AsyncConfig> async,
                                double stale_weight) {
        RunSpec spec = make_resilience_spec();
        fl::FaultConfig fc = make_resilience_faults();
        fc.straggler_rate = 0.5;
        fc.round_deadline = deadline;
        spec.faults = fc;
        fl::ResilienceConfig rc = make_resilience_defenses();
        rc.stale_weight = stale_weight;
        spec.resilience = rc;
        spec.async = async;
        return run_algorithm(algo, spec, scale, default_spatl_options(),
                             algo == "spatl" ? &agent : nullptr);
      };

      std::vector<Row> rows;
      rows.push_back({"drop", 0.0, 0, run_mode(std::nullopt, 0.0)});
      for (const double sw : stale_weights) {
        rows.push_back({"sync-stale", sw, 0, run_mode(std::nullopt, sw)});
        for (const std::size_t lag : max_lags) {
          fl::AsyncConfig ac;
          ac.enabled = true;
          ac.stale_weight = sw;
          ac.max_lag = lag;
          rows.push_back({"async", sw, lag, run_mode(ac, sw)});
        }
      }

      // Equal-bytes comparison: the tightest total budget in the group.
      double budget = rows.front().run.result.total_bytes;
      for (const auto& r : rows) {
        budget = std::min(budget, r.run.result.total_bytes);
      }

      for (const auto& r : rows) {
        const auto& res = r.run.result;
        const double at_budget = accuracy_at_budget(res, budget);
        std::printf(
            "%-9s %-11s %5.1f %5.2f %4zu %6.1f%% %6.1f%% %9s %12s %6zu "
            "%6zu\n",
            algo.c_str(), r.mode.c_str(), deadline, r.stale_weight,
            r.max_lag, res.best_accuracy * 100.0, at_budget * 100.0,
            common::format_bytes(budget).c_str(),
            common::format_bytes(res.total_bytes).c_str(), res.total_parked,
            res.total_late_commits);
        csv.row_values(algo, r.mode, deadline, r.stale_weight, r.max_lag,
                       res.final_accuracy, res.best_accuracy, at_budget,
                       budget, res.total_bytes, res.total_stragglers,
                       res.total_parked, res.total_late_commits,
                       res.buffered_remaining, res.total_rejected,
                       res.rounds_skipped);
      }
      std::printf("\n");
    }
  }
  std::printf("CSV written to %s\n", csv_path("bench_async").c_str());
  return 0;
}
