// E-BYZ — Byzantine-robust aggregation: final accuracy under adversarial
// clients, attack type x attacker fraction x robust aggregator, for FedAvg
// vs SCAFFOLD vs SPATL on the shared resilience baseline (SynthCIFAR,
// ResNet-20, 12 clients, 75% participation).
//
// Shape to expect: the plain weighted mean collapses under every attack
// (a single scaled update dominates the average; colluding fixed-direction
// attackers steer it); coordinate-wise median and trimmed mean hold as long
// as attackers stay below half of each coordinate's contributors; Krum
// additionally names the attackers (the `suspected` column counts its
// exclusions). SPATL's masked uplinks are attacked on the salient positions
// only, so per-coordinate owner counts matter — the robust aggregators run
// over the clients that transmitted each coordinate. SCAFFOLD is the
// fragile one: even with a robust rule on both its aggregates, honest
// clients' control variates drift on a poisoned global, so sign-flip can
// pin it at chance level where only Krum's wholesale exclusion recovers —
// the same degrades-hardest shape bench_fault_tolerance shows for it.
#include <cstdio>

#include "bench_util.hpp"

using namespace spatl;
using namespace spatl::bench;

namespace {

struct AttackSetting {
  std::string label;
  fl::AttackKind kind = fl::AttackKind::kSignFlip;
  double scale = 10.0;
};

/// Exactly 4 of 12 clients (33%, ~attacker fraction 0.3) marked Byzantine,
/// deterministically, so every run and every algorithm faces the same
/// cohort.
std::vector<std::uint8_t> byzantine_cohort(std::size_t num_clients) {
  std::vector<std::uint8_t> cohort(num_clients, 0);
  for (std::size_t i = 0; i < num_clients; i += 3) cohort[i] = 1;
  return cohort;
}

}  // namespace

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kWarn);
  const BenchScale scale = bench_scale();

  const std::vector<AttackSetting> attacks = {
      {"signflip", fl::AttackKind::kSignFlip, 10.0},
      {"scale", fl::AttackKind::kScale, 10.0},
      {"collude", fl::AttackKind::kFixedDirection, 1.0},
  };
  const std::vector<std::string> aggregators = {"mean", "median", "trimmed",
                                                "krum"};
  const std::vector<std::string> algos = {"fedavg", "scaffold", "spatl"};

  common::CsvWriter csv(
      csv_path("bench_byzantine"),
      {"algorithm", "attack", "byz_fraction", "aggregator", "final_accuracy",
       "best_accuracy", "delta_vs_mean", "attacked_uplinks", "suspected",
       "rejected", "rounds_skipped", "total_bytes"});

  const rl::PpoAgent& agent = shared_pretrained_agent();

  print_header(
      "E-BYZ: Byzantine robustness (attack x aggregator, 4/12 attackers)");
  std::printf("%-9s %-9s %-8s %8s %8s %8s %9s %9s\n", "method", "attack",
              "aggr", "acc", "best", "dMean", "attacked", "suspect");

  for (const auto& algo : algos) {
    // Clean reference: no attackers, default mean aggregation.
    {
      RunSpec spec = make_resilience_spec();
      spec.faults = make_resilience_faults();
      spec.resilience = make_resilience_defenses();
      const AlgoRun run = run_algorithm(algo, spec, scale,
                                        default_spatl_options(),
                                        algo == "spatl" ? &agent : nullptr);
      std::printf("%-9s %-9s %-8s %7.1f%% %7.1f%% %8s %9s %9s\n",
                  algo.c_str(), "none", "mean",
                  run.result.final_accuracy * 100.0,
                  run.result.best_accuracy * 100.0, "-", "-", "-");
      csv.row_values(algo, "none", 0.0, "mean", run.result.final_accuracy,
                     run.result.best_accuracy, 0.0,
                     run.result.total_attacked, run.result.total_suspected,
                     run.result.total_rejected, run.result.rounds_skipped,
                     run.result.total_bytes);
    }
    for (const auto& attack : attacks) {
      double mean_final = 0.0;
      for (const auto& aggr : aggregators) {
        RunSpec spec = make_resilience_spec();
        fl::FaultConfig fc = make_resilience_faults();
        fc.byzantine_clients = byzantine_cohort(spec.num_clients);
        fc.attack_kind = attack.kind;
        fc.attack_scale = attack.scale;
        spec.faults = fc;
        fl::ResilienceConfig rc = make_resilience_defenses();
        rc.aggregator = fl::parse_aggregator_kind(aggr);
        rc.trim_fraction = 0.4;  // trims 3 of 9 per side: covers the 3
                                 // expected attackers even when one-sided
        rc.krum_f = 3;           // expected attackers per round
        rc.multi_krum = 3;
        spec.resilience = rc;
        const AlgoRun run = run_algorithm(algo, spec, scale,
                                          default_spatl_options(),
                                          algo == "spatl" ? &agent : nullptr);
        if (aggr == "mean") mean_final = run.result.final_accuracy;
        const double dmean = run.result.final_accuracy - mean_final;
        std::printf("%-9s %-9s %-8s %7.1f%% %7.1f%% %+7.1f%% %9zu %9zu\n",
                    algo.c_str(), attack.label.c_str(), aggr.c_str(),
                    run.result.final_accuracy * 100.0,
                    run.result.best_accuracy * 100.0, dmean * 100.0,
                    run.result.total_attacked, run.result.total_suspected);
        csv.row_values(algo, attack.label, 1.0 / 3.0, aggr,
                       run.result.final_accuracy, run.result.best_accuracy,
                       dmean, run.result.total_attacked,
                       run.result.total_suspected, run.result.total_rejected,
                       run.result.rounds_skipped, run.result.total_bytes);
      }
    }
    std::printf("\n");
  }
  std::printf("CSV written to %s\n", csv_path("bench_byzantine").c_str());
  return 0;
}
