// E-CHAOS — Everything-at-once resilience drill (DESIGN.md §13): elastic
// churn, Byzantine scale attacks, stragglers, mid-run server crashes, AND a
// hostile disk tearing / bit-rotting the durable checkpoint store's writes,
// all in one federation.
//
// Each algorithm first runs its uncrashed, fault-free-disk twin (same
// FL-level faults and churn), then the chaos runs across storage profiles:
//   clean-disk  crashes recover through an undamaged generational store
//   flaky-disk  every store write risks a torn write or a flipped bit; the
//               recovery ladder steps past damaged generations
//   dead-disk   every single write is torn — no generation ever survives,
//               recovery degrades to the deterministic baseline snapshot
//
// The bench ASSERTS the determinism contract, not just reports it: every
// chaos run must finish byte-identical (memcmp over the final global
// weights) to its twin, whatever the ladder had to do. A mismatch prints
// FAIL and exits non-zero, which is what makes the ctest smoke hookup a
// real regression gate (`bench_chaos --smoke` runs a scaled-down sweep).
//
// Shape to expect: clean-disk recovers every crash from the newest
// generation (ladder_rejects 0), flaky-disk shows non-zero ladder_rejects
// with recoveries still mostly served from disk, dead-disk serves zero
// recoveries from disk and still converges identically.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/timer.hpp"

using namespace spatl;
using namespace spatl::bench;

namespace {

struct StorageProfile {
  std::string name;
  fl::StorageFaultConfig faults;
};

std::vector<StorageProfile> storage_profiles() {
  StorageProfile clean{"clean-disk", {}};
  StorageProfile flaky{"flaky-disk", {}};
  flaky.faults.torn_write_rate = 0.25;
  flaky.faults.corrupt_rate = 0.25;
  flaky.faults.seed = kResilienceFaultSeed;
  StorageProfile dead{"dead-disk", {}};
  dead.faults.torn_write_rate = 1.0;
  dead.faults.seed = kResilienceFaultSeed;
  return {clean, flaky, dead};
}

/// Chaos federation shared by the twin and every storage profile: churn,
/// two scale attackers, stragglers with a deadline, defended by median
/// aggregation + retries.
RunSpec make_chaos_spec(std::size_t rounds) {
  RunSpec spec = make_resilience_spec();
  spec.rounds_override = rounds;
  spec.capture_weights = true;

  fl::FaultConfig fc = make_resilience_faults();
  fc.dropout_rate = 0.1;
  fc.straggler_rate = 0.2;
  fc.slowdown_factor = 3.0;
  fc.round_deadline = 2.0;
  fc.byzantine_clients.assign(spec.num_clients, 0);
  fc.byzantine_clients[1] = 1;
  fc.byzantine_clients[5] = 1;
  fc.attack_kind = fl::AttackKind::kScale;
  fc.attack_scale = 4.0;
  spec.faults = fc;

  fl::ResilienceConfig rc = make_resilience_defenses();
  rc.aggregator = fl::AggregatorKind::kCoordinateMedian;
  spec.resilience = rc;

  fl::ChurnConfig cc;
  cc.initial_fraction = 0.8;
  cc.join_rate = 0.2;
  cc.leave_rate = 0.2;
  cc.return_rate = 0.4;
  cc.seed = kResilienceFaultSeed;
  spec.churn = cc;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kError);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }

  BenchScale scale = bench_scale();
  std::vector<std::string> algos = {"fedavg", "scaffold", "spatl"};
  if (smoke) {
    // ctest gate: one fast algorithm, tiny federation, full profile sweep —
    // the assertions are identical to the full bench.
    algos = {"fedavg"};
    scale.samples_per_client = 40;
    scale.local_epochs = 1;
    scale.eval_every = 2;
  }
  const std::size_t rounds = smoke ? 4 : scale.rounds;
  // Crash back to back mid-run: the second drill recovers from a
  // generation committed after the first recovery.
  const std::size_t mid = std::max<std::size_t>(2, rounds / 2);
  const std::vector<std::size_t> crashes = {mid, mid + 1};

  common::CsvWriter csv(
      csv_path("bench_chaos"),
      {"algorithm", "storage", "final_accuracy", "best_accuracy",
       "crashes_injected", "store_commits", "store_commit_failures",
       "recoveries_from_store", "ladder_rejects", "torn_writes",
       "corrupted_writes", "joined", "left", "stragglers", "suspected",
       "bit_identical", "seconds"});

  const rl::PpoAgent* agent = nullptr;
  for (const auto& a : algos) {
    if (a == "spatl") agent = &shared_pretrained_agent();
  }

  print_header(std::string("E-CHAOS: churn + Byzantine + stragglers + "
                           "crashes + storage faults") +
               (smoke ? " [smoke]" : ""));
  std::printf("%-9s %-11s %7s %7s %6s %6s %6s %6s %6s %10s\n", "method",
              "storage", "best", "crash", "commit", "cfail", "recov",
              "reject", "torn", "identical");

  const std::filesystem::path store_root =
      std::filesystem::temp_directory_path() / "spatl_bench_chaos";
  std::filesystem::remove_all(store_root);
  bool all_identical = true;

  for (const auto& algo : algos) {
    // Uncrashed twin: same churn / attacks / stragglers, no crashes, no
    // store — the byte-identity reference.
    const RunSpec twin_spec = make_chaos_spec(rounds);
    const AlgoRun twin =
        run_algorithm(algo, twin_spec, scale, default_spatl_options(),
                      algo == "spatl" ? agent : nullptr);

    for (const auto& profile : storage_profiles()) {
      RunSpec spec = make_chaos_spec(rounds);
      spec.crash_at_rounds = crashes;
      spec.checkpoint_every = 1;
      fl::store::StoreConfig sc;
      sc.dir = (store_root / (algo + "_" + profile.name)).string();
      sc.keep_last = 2;
      spec.ckpt_store = sc;
      fl::FaultyStoreIo io(profile.faults);
      if (profile.faults.any()) spec.store_io = &io;

      common::Timer timer;
      const AlgoRun run =
          run_algorithm(algo, spec, scale, default_spatl_options(),
                        algo == "spatl" ? agent : nullptr);
      const double elapsed = timer.seconds();
      const auto& res = run.result;

      const bool identical =
          run.final_weights.size() == twin.final_weights.size() &&
          std::memcmp(run.final_weights.data(), twin.final_weights.data(),
                      run.final_weights.size() * sizeof(float)) == 0;
      all_identical = all_identical && identical;

      std::printf("%-9s %-11s %6.1f%% %7zu %6zu %6zu %6zu %6zu %6zu %10s\n",
                  algo.c_str(), profile.name.c_str(),
                  res.best_accuracy * 100.0, res.crashes_injected,
                  res.store_commits, res.store_commit_failures,
                  res.recoveries_from_store, res.recovery_attempts_failed,
                  io.torn_writes(), identical ? "yes" : "NO (FAIL)");
      csv.row_values(algo, profile.name, res.final_accuracy,
                     res.best_accuracy, res.crashes_injected,
                     res.store_commits, res.store_commit_failures,
                     res.recoveries_from_store, res.recovery_attempts_failed,
                     io.torn_writes(), io.corrupted_writes(),
                     res.total_joined, res.total_left, res.total_stragglers,
                     res.total_suspected, identical ? 1 : 0, elapsed);
    }
    std::printf("\n");
  }
  std::filesystem::remove_all(store_root);

  std::printf("CSV written to %s\n", csv_path("bench_chaos").c_str());
  if (!all_identical) {
    std::printf("FAIL: a crashed chaos run diverged from its uncrashed "
                "twin — the recovery path broke bit-identical replay\n");
    return 1;
  }
  std::printf("all chaos runs finished bit-identical to their twins\n");
  return 0;
}
