// E-CHURN — Elastic membership under churn (DESIGN.md §12): accuracy,
// throughput, and shedding behaviour as the enrolled population churns and
// the server's per-round admission budget tightens.
//
// Sweep: churn rate {0, 0.1, 0.3} x admission budget {unlimited, tight} x
// algorithm {fedavg, scaffold, spatl}. Each (algorithm, budget) group
// shares its fault-free federation, so the churn-0 row is the static
// baseline the accuracy delta is measured against.
//
// Shape to expect: the shed fraction responds to the budget (zero when
// unlimited, positive and roughly constant per round when tight), and
// accuracy degrades gracefully — not catastrophically — as per-round churn
// climbs to 30%.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/timer.hpp"

using namespace spatl;
using namespace spatl::bench;

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kWarn);
  const BenchScale scale = bench_scale();

  const std::vector<std::string> algos = {"fedavg", "scaffold", "spatl"};
  const std::vector<double> churn_rates = {0.0, 0.1, 0.3};
  struct Budget {
    std::string name;
    std::size_t max_participants;
  };
  // "tight" admits roughly half the sampled cohort (spec samples 75% of 12
  // clients = 9 per round).
  const std::vector<Budget> budgets = {{"unlimited", 0}, {"tight", 4}};

  common::CsvWriter csv(
      csv_path("bench_churn"),
      {"algorithm", "budget", "churn_rate", "final_accuracy", "best_accuracy",
       "accuracy_delta_vs_static", "rounds_per_sec", "shed_fraction",
       "joined", "left", "returned", "returning_discounted", "shed",
       "deferred", "rounds_skipped", "total_bytes"});

  const rl::PpoAgent& agent = shared_pretrained_agent();

  print_header("E-CHURN: churn rate x admission budget x algorithm");
  std::printf("%-9s %-9s %5s %7s %7s %7s %6s %5s %5s %5s\n", "method",
              "budget", "churn", "best", "d-stat", "rps", "shed%", "join",
              "left", "ret");

  for (const auto& algo : algos) {
    for (const auto& budget : budgets) {
      double static_best = 0.0;  // churn-0 baseline of this group
      for (const double rate : churn_rates) {
        RunSpec spec = make_resilience_spec();
        if (rate > 0.0) {
          fl::ChurnConfig cc;
          cc.initial_fraction = 0.8;
          cc.join_rate = rate;
          cc.leave_rate = rate;
          cc.return_rate = 2.0 * rate;  // absences stay short-lived
          cc.seed = kResilienceFaultSeed;
          spec.churn = cc;
        }
        spec.admission.max_participants = budget.max_participants;
        spec.admission.policy = fl::AdmissionPolicy::kShed;

        common::Timer timer;
        const AlgoRun run =
            run_algorithm(algo, spec, scale, default_spatl_options(),
                          algo == "spatl" ? &agent : nullptr);
        const double elapsed = timer.seconds();
        const auto& res = run.result;

        const double rounds_per_sec =
            double(scale.rounds) / std::max(1e-9, elapsed);
        const double shed_fraction =
            res.total_selected > 0
                ? double(res.total_shed) / double(res.total_selected)
                : 0.0;
        if (rate == 0.0) static_best = res.best_accuracy;
        const double delta = res.best_accuracy - static_best;

        std::printf(
            "%-9s %-9s %5.2f %6.1f%% %+6.1f%% %7.2f %5.1f%% %5zu %5zu "
            "%5zu\n",
            algo.c_str(), budget.name.c_str(), rate,
            res.best_accuracy * 100.0, delta * 100.0, rounds_per_sec,
            shed_fraction * 100.0, res.total_joined, res.total_left,
            res.total_returned);
        csv.row_values(algo, budget.name, rate, res.final_accuracy,
                       res.best_accuracy, delta, rounds_per_sec,
                       shed_fraction, res.total_joined, res.total_left,
                       res.total_returned, res.total_returning_discounted,
                       res.total_shed, res.total_deferred,
                       res.rounds_skipped, res.total_bytes);
      }
      std::printf("\n");
    }
  }
  std::printf("CSV written to %s\n", csv_path("bench_churn").c_str());
  return 0;
}
