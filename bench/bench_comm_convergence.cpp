// E6 — Table II: converge rounds, communication cost, and converge accuracy
// at larger federations (the paper's 30/50/100-client settings, scaled to
// 20/30 clients at bench size; SPATL_BENCH_SCALE=large widens this).
//
// Paper shape to reproduce: gradient-control baselines buy accuracy with
// ~2x communication; SPATL gets the best accuracy with FedAvg-like (or
// lower) cost; SCAFFOLD destabilizes as the client count grows; the SPATL
// advantage widens with heterogeneity.
#include <cstdio>

#include "bench_util.hpp"

using namespace spatl;
using namespace spatl::bench;

namespace {

/// "Converge round": first evaluated round reaching 98% of the run's best
/// accuracy.
std::size_t converge_round(const fl::RunResult& r) {
  for (const auto& rec : r.history) {
    if (rec.avg_accuracy >= 0.98 * r.best_accuracy) return rec.round;
  }
  return r.history.empty() ? 0 : r.history.back().round;
}

}  // namespace

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kWarn);
  const BenchScale scale = bench_scale();

  struct Setting {
    std::string arch;
    std::size_t clients;
    double ratio;
  };
  const std::vector<Setting> settings = {
      {"resnet20", 15, 0.4},
      {"resnet20", 20, 0.6},
      {"vgg11", 15, 0.4},
  };
  const std::vector<std::string> algos = {"fedavg", "fedprox", "fednova",
                                          "scaffold", "spatl"};

  common::CsvWriter csv(
      csv_path("bench_comm_convergence"),
      {"arch", "clients", "sample_ratio", "algorithm", "converge_round",
       "total_bytes_measured", "speedup_vs_fedavg", "converge_accuracy",
       "delta_accuracy_vs_fedavg"});

  const rl::PpoAgent& agent = shared_pretrained_agent();

  print_header("E6: Convergence cost and accuracy (Table II)");
  std::printf("%-10s %-8s %-6s %-9s %8s %12s %8s %9s %8s\n", "model",
              "clients", "ratio", "method", "rounds", "cost", "speedup",
              "acc", "dAcc");

  for (const auto& s : settings) {
    double fedavg_bytes = 0.0, fedavg_acc = 0.0;
    for (const auto& algo : algos) {
      RunSpec spec;
      spec.arch = s.arch;
      spec.num_clients = s.clients;
      spec.sample_ratio = s.ratio;
      const AlgoRun run = run_algorithm(algo, spec, scale,
                                        default_spatl_options(),
                                        algo == "spatl" ? &agent : nullptr);
      const std::size_t rounds = converge_round(run.result);
      if (algo == "fedavg") {
        fedavg_bytes = run.result.total_bytes;
        fedavg_acc = run.result.best_accuracy;
      }
      const double speedup =
          run.result.total_bytes > 0 ? fedavg_bytes / run.result.total_bytes
                                     : 1.0;
      const double dacc = run.result.best_accuracy - fedavg_acc;
      std::printf("%-10s %-8zu %-6.1f %-9s %8zu %12s %7.2fx %8.1f%% %+7.1f%%\n",
                  s.arch.c_str(), s.clients, s.ratio, algo.c_str(), rounds,
                  common::format_bytes(run.result.total_bytes).c_str(),
                  speedup, run.result.best_accuracy * 100.0, dacc * 100.0);
      csv.row_values(s.arch, s.clients, s.ratio, algo, rounds,
                     run.result.total_bytes, speedup,
                     run.result.best_accuracy, dacc);
    }
    std::printf("\n");
  }
  std::printf("CSV written to %s\n", csv_path("bench_comm_convergence").c_str());
  return 0;
}
