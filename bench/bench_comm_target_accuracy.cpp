// E4 + E5 — Table I (communication cost to target accuracy) and Fig.
// "train_rounds" (rounds-to-target bars).
//
// Trains ResNet-20/32 and VGG-11 with 10 clients until a target accuracy,
// reporting rounds, per-round/client bytes, total cost, and speedup vs the
// FedAvg baseline — at the bench scale (measured) and extrapolated to the
// paper's full-size models (analytic per-round bytes x measured rounds).
//
// Paper shape to reproduce: SPATL reaches the target in SCAFFOLD-like few
// rounds but with FedAvg-like per-round bytes, so its TOTAL cost is the
// lowest (3-4x less than FedAvg, ~7x less than FedNova).
#include <cstdio>

#include "bench_util.hpp"

using namespace spatl;
using namespace spatl::bench;

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kWarn);
  const BenchScale scale = bench_scale();
  const double target = 0.45;  // bench-scale stand-in for the paper's 80%
  const std::size_t max_rounds = scale.rounds * 2;

  const std::vector<std::string> archs = {"resnet20", "resnet32", "vgg11"};
  const std::vector<std::string> algos = {"fedavg", "fedprox", "fednova",
                                          "scaffold", "spatl"};

  common::CsvWriter csv(
      csv_path("bench_comm_target_accuracy"),
      {"arch", "algorithm", "target_accuracy", "reached", "rounds",
       "round_client_bytes_measured", "total_bytes_measured",
       "round_client_bytes_fullscale", "total_bytes_fullscale",
       "speedup_vs_fedavg_fullscale"});

  const rl::PpoAgent& agent = shared_pretrained_agent();

  print_header("E4/E5: Communication cost to target accuracy (Table I, Fig. "
               "train_rounds)");
  std::printf("target accuracy (bench scale): %.0f%%\n", target * 100.0);
  std::printf("%-10s %-9s %7s %14s %14s %14s %9s\n", "model", "method",
              "rounds", "round/client", "total(meas)", "total(full)",
              "speedup");

  for (const auto& arch : archs) {
    double fedavg_full_total = 0.0;
    for (const auto& algo : algos) {
      RunSpec spec;
      spec.arch = arch;
      spec.num_clients = 10;
      spec.sample_ratio = 1.0;
      spec.target_accuracy = target;
      spec.rounds_override = max_rounds;
      const AlgoRun run = run_algorithm(algo, spec, scale,
                                        default_spatl_options(),
                                        algo == "spatl" ? &agent : nullptr);
      const bool reached = run.result.rounds_to_target.has_value();
      const std::size_t rounds =
          run.result.rounds_to_target.value_or(max_rounds);

      // Full-scale extrapolation: measured salient fraction drives the
      // analytic per-round bytes at paper model sizes.
      double sel_fraction = 1.0;
      if (algo == "spatl" && !run.client_sparsities.empty()) {
        double s = 0.0;
        for (double v : run.client_sparsities) s += v;
        sel_fraction = 1.0 - s / double(run.client_sparsities.size());
      }
      const double full_rc =
          full_scale_round_client_bytes(algo, arch, sel_fraction);
      const double full_total = full_rc * double(rounds) * 10.0;
      if (algo == "fedavg") fedavg_full_total = full_total;
      const double speedup =
          fedavg_full_total > 0.0 ? fedavg_full_total / full_total : 1.0;

      std::printf("%-10s %-9s %6zu%s %14s %14s %14s %8.2fx\n", arch.c_str(),
                  algo.c_str(), rounds, reached ? "" : "*",
                  common::format_bytes(full_rc).c_str(),
                  common::format_bytes(run.result.total_bytes).c_str(),
                  common::format_bytes(full_total).c_str(), speedup);
      csv.row_values(arch, algo, target, reached ? 1 : 0, rounds,
                     run.avg_round_client_bytes, run.result.total_bytes,
                     full_rc, full_total, speedup);
    }
    std::printf("\n");
  }
  std::printf("(*) did not reach target within %zu rounds; costs use the cap.\n",
              max_rounds);
  std::printf("CSV written to %s\n",
              csv_path("bench_comm_target_accuracy").c_str());
  return 0;
}
