// Extension experiment — SPATL vs classic update-compression baselines.
//
// The paper positions salient selection against gradient sparsification /
// quantization approaches (related work [37], [53]) without a head-to-head;
// this bench provides one: identical federations trained with FedAvg,
// FedAvg+top-k, FedAvg+int8, server-side adaptive FedAvgM/FedAdam, and
// SPATL, comparing final accuracy against total communicated bytes.
//
// Expected shape: codecs cut bytes but (a) pay accuracy under non-IID skew
// and (b) do nothing about heterogeneity; SPATL cuts bytes AND keeps the
// per-client accuracy benefits of its local predictors.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "fl/compression.hpp"
#include "fl/server_opt.hpp"

using namespace spatl;
using namespace spatl::bench;

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kWarn);
  const BenchScale scale = bench_scale();
  const std::size_t clients = 10;

  common::CsvWriter csv(csv_path("bench_compression_baselines"),
                        {"algorithm", "final_accuracy", "best_accuracy",
                         "uplink_bytes", "total_bytes"});

  print_header(
      "Extension: SPATL vs update-compression baselines (bytes vs accuracy)");
  std::printf("%-14s %10s %10s %12s %12s\n", "method", "final", "best",
              "uplink", "total");

  const data::Dataset source = make_source("cifar", clients, scale);
  fl::FlConfig cfg = make_fl_config("resnet20", "cifar", scale);
  const rl::PpoAgent& agent = shared_pretrained_agent();

  auto report = [&](fl::FederatedAlgorithm& algo) {
    fl::RunOptions ro;
    ro.rounds = scale.rounds;
    ro.eval_every = scale.eval_every;
    const auto result = fl::run_federated(algo, ro);
    std::printf("%-14s %9.1f%% %9.1f%% %12s %12s\n", algo.name().c_str(),
                result.final_accuracy * 100.0,
                result.best_accuracy * 100.0,
                common::format_bytes(algo.ledger().uplink_bytes()).c_str(),
                common::format_bytes(result.total_bytes).c_str());
    csv.row_values(algo.name(), result.final_accuracy, result.best_accuracy,
                   algo.ledger().uplink_bytes(), result.total_bytes);
  };

  auto fresh_env = [&]() {
    common::Rng rng(42 ^ 0xE47ULL);
    return fl::FlEnvironment(source, clients, 0.3, 0.25, rng);
  };

  {
    auto env = fresh_env();
    fl::FedAvg algo(env, cfg);
    report(algo);
  }
  {
    auto env = fresh_env();
    fl::CompressedFedAvg algo(env, cfg, fl::Codec::kTopK, 0.1);
    report(algo);
  }
  {
    auto env = fresh_env();
    fl::CompressedFedAvg algo(env, cfg, fl::Codec::kInt8);
    report(algo);
  }
  {
    auto env = fresh_env();
    fl::ServerOptConfig sopt;
    sopt.optimizer = fl::ServerOptimizer::kMomentum;
    sopt.lr = 0.5;
    sopt.momentum = 0.5;
    fl::ServerOptFedAvg algo(env, cfg, sopt);
    report(algo);
  }
  {
    auto env = fresh_env();
    fl::ServerOptConfig sopt;
    sopt.optimizer = fl::ServerOptimizer::kAdam;
    sopt.lr = 0.1;
    fl::ServerOptFedAvg algo(env, cfg, sopt);
    report(algo);
  }
  {
    auto env = fresh_env();
    core::SpatlAlgorithm algo(env, cfg, default_spatl_options(), &agent);
    report(algo);
  }
  std::printf("\nCSV written to %s\n",
              csv_path("bench_compression_baselines").c_str());
  return 0;
}
