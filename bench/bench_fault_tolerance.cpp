// E-FT — Fault-tolerant federation: accuracy and communication under client
// dropout, uplink corruption, and lossy links, for FedAvg vs SCAFFOLD vs
// SPATL with the server defenses enabled (validation, bounded retry,
// quorum, survivor re-normalization).
//
// Shape to expect: FedAvg degrades gracefully with dropout (aggregation is
// re-normalized over survivors); SCAFFOLD degrades harder because its
// control variates go stale on clients whose uplinks never commit; SPATL's
// salient uplinks lose less accuracy per unit of corrupted/lost traffic.
// Retransmitted bytes from the retry path are reported as their own CSV
// column so communication-efficiency claims stay honest on lossy links.
#include <cstdio>

#include "bench_util.hpp"

using namespace spatl;
using namespace spatl::bench;

namespace {

struct FaultSetting {
  std::string label;
  double dropout = 0.0;
  double corruption = 0.0;
  double loss = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kWarn);
  const BenchScale scale = bench_scale();

  const std::vector<FaultSetting> settings = {
      {"clean", 0.0, 0.0, 0.0},
      {"dropout20", 0.2, 0.0, 0.0},
      {"dropout40", 0.4, 0.0, 0.0},
      {"corrupt20", 0.0, 0.2, 0.0},
      {"lossy30", 0.0, 0.0, 0.3},
      {"hostile", 0.3, 0.2, 0.3},
  };
  const std::vector<std::string> algos = {"fedavg", "scaffold", "spatl"};

  common::CsvWriter csv(
      csv_path("bench_fault_tolerance"),
      {"algorithm", "setting", "dropout_rate", "corruption_rate", "loss_rate",
       "final_accuracy", "best_accuracy", "delta_vs_clean", "total_bytes",
       "retransmitted_bytes", "dropped", "stragglers", "rejected",
       "retransmissions", "rounds_skipped"});

  const rl::PpoAgent& agent = shared_pretrained_agent();

  print_header("E-FT: Graceful degradation under faults (dropout/corruption/loss)");
  std::printf("%-9s %-10s %8s %8s %8s %12s %10s %7s %7s %6s\n", "method",
              "setting", "acc", "best", "dAcc", "bytes", "retrans", "drop",
              "reject", "skip");

  for (const auto& algo : algos) {
    double clean_best = 0.0;
    for (const auto& f : settings) {
      RunSpec spec = make_resilience_spec();
      fl::FaultConfig fc = make_resilience_faults();
      fc.dropout_rate = f.dropout;
      fc.corruption_rate = f.corruption;
      fc.corruption_kind = fl::CorruptionKind::kNaN;
      fc.loss_rate = f.loss;
      spec.faults = fc;
      spec.resilience = make_resilience_defenses();
      const AlgoRun run = run_algorithm(algo, spec, scale,
                                        default_spatl_options(),
                                        algo == "spatl" ? &agent : nullptr);
      if (f.label == "clean") clean_best = run.result.best_accuracy;
      const double dacc = run.result.best_accuracy - clean_best;
      std::printf(
          "%-9s %-10s %7.1f%% %7.1f%% %+7.1f%% %12s %10s %7zu %7zu %6zu\n",
          algo.c_str(), f.label.c_str(), run.result.final_accuracy * 100.0,
          run.result.best_accuracy * 100.0, dacc * 100.0,
          common::format_bytes(run.result.total_bytes).c_str(),
          common::format_bytes(run.retransmitted_bytes).c_str(),
          run.result.total_dropped, run.result.total_rejected,
          run.result.rounds_skipped);
      csv.row_values(algo, f.label, f.dropout, f.corruption, f.loss,
                     run.result.final_accuracy, run.result.best_accuracy,
                     dacc, run.result.total_bytes, run.retransmitted_bytes,
                     run.result.total_dropped, run.result.total_stragglers,
                     run.result.total_rejected,
                     run.result.total_retransmissions,
                     run.result.rounds_skipped);
    }
    std::printf("\n");
  }
  std::printf("CSV written to %s\n", csv_path("bench_fault_tolerance").c_str());
  return 0;
}
