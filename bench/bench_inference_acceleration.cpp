// E8 — Table "inference": local inference acceleration after training.
//
// After a SPATL run, each client's salient-selection gates define a pruned
// sub-network. We report, per model: average and best FLOPs reduction
// across clients, the salient-parameter (sparsity) ratio, and the accuracy
// of the pruned vs dense deployment.
//
// Paper shape to reproduce: 20-40% average FLOPs reduction (model
// dependent, up to ~60% on the best client) at small accuracy cost.
#include <cstdio>

#include "bench_util.hpp"
#include "data/loader.hpp"
#include "data/train.hpp"
#include "prune/flops.hpp"

using namespace spatl;
using namespace spatl::bench;

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kWarn);
  const BenchScale scale = bench_scale();
  const std::size_t clients = 10;

  const std::vector<std::string> archs = {"resnet20", "resnet32", "vgg11"};
  common::CsvWriter csv(
      csv_path("bench_inference_acceleration"),
      {"arch", "avg_flops_reduction", "max_flops_reduction", "avg_sparsity",
       "dense_accuracy", "pruned_accuracy"});

  const rl::PpoAgent& agent = shared_pretrained_agent();

  print_header("E8: Local inference acceleration (Table inference)");
  std::printf("%-10s %12s %12s %12s %10s %10s\n", "model", "avg dFLOPs",
              "max dFLOPs", "sparsity", "acc dense", "acc pruned");

  for (const auto& arch : archs) {
    const data::Dataset source = make_source("cifar", clients, scale);
    common::Rng env_rng(42 ^ 0xE47ULL);
    fl::FlEnvironment env(source, clients, 0.5, 0.25, env_rng);
    fl::FlConfig cfg = make_fl_config(arch, "cifar", scale);
    auto opts = default_spatl_options();
    core::SpatlAlgorithm spatl(env, cfg, opts, &agent);
    fl::RunOptions ro;
    ro.rounds = scale.rounds;
    ro.eval_every = scale.rounds;
    fl::run_federated(spatl, ro);

    // Dense vs pruned accuracy on each client's own data and masks.
    double dense_acc = 0.0, pruned_acc = 0.0;
    double avg_red = 0.0, max_red = 0.0, avg_sp = 0.0;
    for (std::size_t i = 0; i < clients; ++i) {
      auto& model = spatl.client_model(i);
      // Re-apply the client's last selection to measure the deployed
      // sub-network, then compare to the dense deployment.
      const double flops_ratio = spatl.client_flops_ratios()[i];
      const double red = 1.0 - flops_ratio;
      avg_red += red;
      max_red = std::max(max_red, red);
      avg_sp += spatl.client_sparsities()[i];

      model.reset_gates();
      dense_acc += data::evaluate(model, env.client(i).val).accuracy;
      rl::PruningEnvConfig ecfg;
      ecfg.flops_budget = opts.flops_budget;
      rl::PruningEnv penv(model, env.client(i).val, ecfg);
      rl::PpoAgent deploy_agent = agent.clone(99 + i);
      const auto g = penv.reset();
      const auto actions = deploy_agent.act(g, /*explore=*/false);
      penv.step(actions);
      // Deployed clients keep training locally, so the pruned network gets
      // one adaptation epoch before its accuracy is read (the paper's
      // deployment setting; pruning without any adaptation is strictly
      // worse than anything a client would run).
      data::TrainOptions adapt;
      adapt.epochs = 1;
      adapt.batch_size = scale.batch_size;
      adapt.lr = scale.lr;
      common::Rng arng(500 + i);
      data::train_supervised(model, env.client(i).train, adapt, arng,
                             model.all_params());
      pruned_acc += data::evaluate(model, env.client(i).val).accuracy;
      model.reset_gates();
    }
    avg_red /= double(clients);
    avg_sp /= double(clients);
    dense_acc /= double(clients);
    pruned_acc /= double(clients);

    std::printf("%-10s %11.1f%% %11.1f%% %11.1f%% %9.1f%% %9.1f%%\n",
                arch.c_str(), avg_red * 100.0, max_red * 100.0,
                avg_sp * 100.0, dense_acc * 100.0, pruned_acc * 100.0);
    csv.row_values(arch, avg_red, max_red, avg_sp, dense_acc, pruned_acc);
  }
  std::printf("\nCSV written to %s\n",
              csv_path("bench_inference_acceleration").c_str());
  return 0;
}
