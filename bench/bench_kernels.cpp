// This binary IS a CLI diagnostics surface, hence:
// spatl-lint: allow(raw-stderr)
//
// bench_kernels — backend x shape sweep over the GEMM family and the
// im2col+GEMM convolution forward, reporting ns/rep, GFLOP/s, and the
// cpu-simd speedup over the scalar reference per shape.
//
//   bench_kernels [--out FILE.csv] [--smoke] [--min-conv-speedup X]
//
// This is the PR's acceptance instrument for the SIMD backend: the
// single-core conv forward must clear --min-conv-speedup (default 0 = just
// report). scripts/check.sh --perf runs it with the documented 4x floor;
// the --smoke ctest registration only proves the sweep runs and the CSV
// schema holds, making no wall-time claims.
//
// Correctness is NOT re-litigated here (tests/test_backend.cpp owns the ulp
// bound); the sweep only feeds a checksum sink so the optimizer cannot
// discard kernel work.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "nn/conv.hpp"
#include "tensor/backend.hpp"
#include "tensor/ops.hpp"

namespace {

using spatl::common::Rng;
using spatl::common::Timer;
using spatl::tensor::BackendKind;
using spatl::tensor::Tensor;

double g_sink = 0.0;

template <typename Body>
double min_ns_per_rep(std::uint64_t reps, std::uint64_t trials, Body&& body) {
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t t = 0; t < trials; ++t) {
    Timer timer;
    for (std::uint64_t r = 0; r < reps; ++r) body();
    best = std::min(best, timer.seconds() * 1.0e9 / double(reps));
  }
  return best;
}

struct Row {
  std::string kernel;
  std::string shape;
  double flops = 0.0;  // per rep
  double scalar_ns = 0.0;
  double simd_ns = 0.0;  // 0 when the CPU lacks AVX2/FMA

  double speedup() const { return simd_ns > 0.0 ? scalar_ns / simd_ns : 0.0; }
};

/// Measure `body` once per available backend.
template <typename Body>
Row sweep(const std::string& kernel, const std::string& shape, double flops,
          std::uint64_t reps, std::uint64_t trials, Body&& body) {
  Row row;
  row.kernel = kernel;
  row.shape = shape;
  row.flops = flops;
  spatl::tensor::set_active_backend(BackendKind::kScalar);
  row.scalar_ns = min_ns_per_rep(reps, trials, body);
  if (spatl::tensor::cpu_simd_supported()) {
    spatl::tensor::set_active_backend(BackendKind::kCpuSimd);
    row.simd_ns = min_ns_per_rep(reps, trials, body);
    spatl::tensor::set_active_backend(BackendKind::kScalar);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  spatl::common::Flags flags(argc, argv, 1);
  try {
    flags.check_known({"out", "smoke", "min-conv-speedup"});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_kernels: %s\n", e.what());
    std::fprintf(stderr,
                 "usage: bench_kernels [--out FILE.csv] [--smoke] "
                 "[--min-conv-speedup X]\n");
    return 2;
  }
  const bool smoke = flags.get_bool("smoke", false);
  const std::string out_path = flags.get("out", "");
  const double min_conv_speedup = flags.get_double("min-conv-speedup", 0.0);

  const std::uint64_t trials = smoke ? 1 : 5;
  const auto reps = [smoke](std::uint64_t n) -> std::uint64_t {
    return smoke ? 1 : n;
  };

  std::vector<Row> rows;

  // --- GEMM variants over training-shaped sizes ---------------------------
  struct GemmShape {
    std::size_t m, k, n;
    std::uint64_t r;
  };
  const GemmShape gemm_shapes[] = {
      {128, 128, 128, 16}, {64, 576, 128, 16}, {256, 72, 32, 32}};
  for (const GemmShape& s : gemm_shapes) {
    Rng rng(0xC0FFEEULL + s.m);
    const Tensor a = Tensor::randn({s.m, s.k}, rng);
    const Tensor b = Tensor::randn({s.k, s.n}, rng);
    const Tensor at = Tensor::randn({s.k, s.m}, rng);
    const Tensor bt = Tensor::randn({s.n, s.k}, rng);
    const double flops = 2.0 * double(s.m) * double(s.k) * double(s.n);
    char shape[64];
    std::snprintf(shape, sizeof(shape), "%zux%zux%zu", s.m, s.k, s.n);
    Tensor c;
    rows.push_back(sweep("gemm_nn", shape, flops, reps(s.r), trials, [&] {
      spatl::tensor::matmul(a, b, c);
      g_sink += double(c.data()[0]);
    }));
    rows.push_back(sweep("gemm_tn", shape, flops, reps(s.r), trials, [&] {
      spatl::tensor::matmul_tn(at, b, c);
      g_sink += double(c.data()[0]);
    }));
    rows.push_back(sweep("gemm_nt", shape, flops, reps(s.r), trials, [&] {
      spatl::tensor::matmul_nt(a, bt, c);
      g_sink += double(c.data()[0]);
    }));
  }

  // --- conv forward: im2col + GEMM, GEMM-dominated shape ------------------
  double conv_speedup = 0.0;
  {
    Rng rng(0xC0FFEE42ULL);
    spatl::nn::Conv2d conv(16, 32, 3);
    conv.init_params(rng);
    const Tensor input = Tensor::randn({8, 16, 16, 16}, rng);
    // 8 images, 16x16 output plane, 32 out-channels, 16*3*3 patch.
    const double flops = 2.0 * 8.0 * 16.0 * 16.0 * 32.0 * (16.0 * 3.0 * 3.0);
    const Row row =
        sweep("conv_fwd", "8x16x16x16->32", flops, reps(8), trials, [&] {
          Tensor out = conv.forward(input, /*train=*/false);
          g_sink += double(out.data()[0]);
        });
    conv_speedup = row.speedup();
    rows.push_back(row);
  }

  // --- report -------------------------------------------------------------
  std::string csv =
      "kernel,shape,scalar_ns_per_rep,scalar_gflops,simd_ns_per_rep,"
      "simd_gflops,speedup\n";
  std::printf("%-10s %-16s %14s %8s %14s %8s %8s\n", "kernel", "shape",
              "scalar ns/rep", "GF/s", "simd ns/rep", "GF/s", "speedup");
  for (const Row& r : rows) {
    const double sg = r.scalar_ns > 0.0 ? r.flops / r.scalar_ns : 0.0;
    const double vg = r.simd_ns > 0.0 ? r.flops / r.simd_ns : 0.0;
    std::printf("%-10s %-16s %14.0f %8.2f %14.0f %8.2f %7.2fx\n",
                r.kernel.c_str(), r.shape.c_str(), r.scalar_ns, sg, r.simd_ns,
                vg, r.speedup());
    char line[256];
    std::snprintf(line, sizeof(line), "%s,%s,%.0f,%.3f,%.0f,%.3f,%.3f\n",
                  r.kernel.c_str(), r.shape.c_str(), r.scalar_ns, sg,
                  r.simd_ns, vg, r.speedup());
    csv += line;
  }
  std::printf("checksum %.6f\n", g_sink);

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bench_kernels: cannot write %s\n",
                   out_path.c_str());
      return 2;
    }
    out << csv;
  }

  if (min_conv_speedup > 0.0 && !smoke) {
    if (!spatl::tensor::cpu_simd_supported()) {
      std::printf("conv speedup floor skipped: CPU lacks AVX2/FMA\n");
    } else if (conv_speedup < min_conv_speedup) {
      std::fprintf(stderr,
                   "bench_kernels: conv_fwd speedup %.2fx is below the "
                   "required %.2fx floor\n",
                   conv_speedup, min_conv_speedup);
      return 1;
    } else {
      std::printf("conv_fwd speedup %.2fx clears the %.2fx floor\n",
                  conv_speedup, min_conv_speedup);
    }
  }
  return 0;
}
