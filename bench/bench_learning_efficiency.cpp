// E1 + E2 — Fig. "vgg_cifar" learning-efficiency curves and Fig. 3
// converge-accuracy comparison.
//
// For each FL setting (model x clients x sample ratio) runs SPATL and the
// four baselines, prints accuracy-vs-round series and the final converge
// accuracy per method, and writes bench_learning_efficiency.csv.
//
// Paper shape to reproduce: SPATL matches or beats the baselines at 10
// clients and wins by growing margins as client count (heterogeneity)
// rises; SCAFFOLD destabilizes at higher client counts; the 2-layer CNN on
// FEMNIST is the counter-example where SPATL's over-parameterization
// assumption fails.
#include <cstdio>

#include "bench_util.hpp"

using namespace spatl;
using namespace spatl::bench;

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  const bool full = argc > 1 && std::string(argv[1]) == "--full";
  common::set_log_level(common::LogLevel::kWarn);
  const BenchScale scale = bench_scale();

  struct Setting {
    std::string arch, domain;
    std::size_t clients;
    double ratio;
    double beta;
  };
  // FEMNIST uses a mild skew: LEAF's per-writer distribution is far less
  // label-skewed than Dirichlet(0.3), and the paper's CNN2 result (SPATL
  // slightly *behind* the baselines — its over-parameterization assumption
  // fails) only appears when personalization buys little.
  std::vector<Setting> settings = {
      {"resnet20", "cifar", 10, 1.0, 0.3},
      {"resnet20", "cifar", 30, 0.4, 0.3},
      {"vgg11", "cifar", 10, 1.0, 0.3},
      {"cnn2", "femnist", 10, 1.0, 5.0},
  };
  if (full) {
    settings.push_back({"resnet32", "cifar", 10, 1.0, 0.3});
    settings.push_back({"resnet20", "cifar", 50, 0.7, 0.3});
    settings.push_back({"vgg11", "cifar", 30, 0.4, 0.3});
  }
  const std::vector<std::string> algos = {"fedavg", "fedprox", "fednova",
                                          "scaffold", "spatl"};

  common::CsvWriter csv(csv_path("bench_learning_efficiency"),
                        {"arch", "domain", "clients", "sample_ratio",
                         "algorithm", "round", "avg_accuracy", "avg_loss",
                         "cumulative_bytes"});

  const rl::PpoAgent& agent = shared_pretrained_agent();

  print_header(
      "E1/E2: Learning efficiency (Fig. vgg_cifar) + converge accuracy "
      "(Fig. 3)");
  for (const auto& s : settings) {
    std::printf("\n--- %s on %s, %zu clients, sample ratio %.1f ---\n",
                s.arch.c_str(), s.domain.c_str(), s.clients, s.ratio);
    std::printf("%-10s", "round");
    for (const auto& a : algos) std::printf("%12s", a.c_str());
    std::printf("\n");

    RunSpec spec;
    spec.arch = s.arch;
    spec.domain = s.domain;
    spec.num_clients = s.clients;
    spec.sample_ratio = s.ratio;
    spec.beta = s.beta;

    std::vector<AlgoRun> runs;
    for (const auto& a : algos) {
      runs.push_back(run_algorithm(a, spec, scale, default_spatl_options(),
                                   a == "spatl" ? &agent : nullptr));
      for (const auto& rec : runs.back().result.history) {
        csv.row_values(s.arch, s.domain, s.clients, s.ratio, a, rec.round,
                       rec.avg_accuracy, rec.avg_loss, rec.cumulative_bytes);
      }
    }
    // Align series on round index for the printed table.
    const std::size_t n = runs[0].result.history.size();
    for (std::size_t r = 0; r < n; ++r) {
      std::printf("%-10zu", runs[0].result.history[r].round);
      for (const auto& run : runs) {
        if (r < run.result.history.size()) {
          std::printf("%11.1f%%",
                      run.result.history[r].avg_accuracy * 100.0);
        } else {
          std::printf("%12s", "-");
        }
      }
      std::printf("\n");
    }
    std::printf("%-10s", "converge");
    for (const auto& run : runs) {
      std::printf("%11.1f%%", run.result.best_accuracy * 100.0);
    }
    std::printf("\n");
  }
  std::printf("\nCSV written to %s\n",
              csv_path("bench_learning_efficiency").c_str());
  return 0;
}
