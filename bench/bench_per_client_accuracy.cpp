// E3 — Fig. "local_acc": per-client accuracy of the deployed models after
// training (ResNet-20, 10 clients), SPATL vs SCAFFOLD (+ FedAvg for
// reference).
//
// Paper shape to reproduce: SPATL's heterogeneous predictors give every
// client similar (and higher) accuracy, while uniform-model baselines show
// high variance across clients — some clients land far from the global
// distribution and suffer.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"

using namespace spatl;
using namespace spatl::bench;

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kWarn);
  const BenchScale scale = bench_scale();

  const std::vector<std::string> algos = {"spatl", "scaffold", "fedavg"};
  const std::size_t clients = 10;

  common::CsvWriter csv(csv_path("bench_per_client_accuracy"),
                        {"algorithm", "client", "accuracy"});

  const rl::PpoAgent& agent = shared_pretrained_agent();

  print_header("E3: Per-client accuracy after training (Fig. local_acc)");
  std::printf("%-10s", "client");
  for (const auto& a : algos) std::printf("%12s", a.c_str());
  std::printf("\n");

  std::vector<AlgoRun> runs;
  for (const auto& algo : algos) {
    RunSpec spec;
    spec.arch = "resnet20";
    spec.num_clients = clients;
    spec.sample_ratio = 1.0;
    spec.beta = 0.3;  // strong heterogeneity exposes the variance gap
    spec.capture_per_client = true;
    runs.push_back(run_algorithm(algo, spec, scale, default_spatl_options(),
                                 algo == "spatl" ? &agent : nullptr));
  }
  for (std::size_t c = 0; c < clients; ++c) {
    std::printf("%-10zu", c);
    for (std::size_t a = 0; a < algos.size(); ++a) {
      const double acc = runs[a].per_client_accuracy[c];
      std::printf("%11.1f%%", acc * 100.0);
      csv.row_values(algos[a], c, acc);
    }
    std::printf("\n");
  }
  // Summary: mean and standard deviation across clients.
  std::printf("%-10s", "mean");
  for (const auto& run : runs) {
    double m = 0.0;
    for (double v : run.per_client_accuracy) m += v;
    m /= double(clients);
    std::printf("%11.1f%%", m * 100.0);
  }
  std::printf("\n%-10s", "stddev");
  for (const auto& run : runs) {
    double m = 0.0, var = 0.0;
    for (double v : run.per_client_accuracy) m += v;
    m /= double(clients);
    for (double v : run.per_client_accuracy) var += (v - m) * (v - m);
    std::printf("%11.1f%%", std::sqrt(var / double(clients)) * 100.0);
  }
  std::printf("\n\nCSV written to %s\n",
              csv_path("bench_per_client_accuracy").c_str());
  return 0;
}
