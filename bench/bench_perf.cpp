// This binary IS a CLI diagnostics surface, hence:
// spatl-lint: allow(raw-stderr)
//
// bench_perf — min-of-N microbenchmarks over the hot kernels, emitting a
// machine-readable BENCH_PERF.json that scripts/perf_gate.py compares
// against the checked-in baseline (bench/baselines/BENCH_PERF.baseline.json).
//
//   bench_perf [--out FILE] [--smoke] [--handicap kernel=factor]
//              [--backend scalar|cpu-simd|auto]
//
// --backend pins the tensor ComputeContext for the whole sweep and stamps
// the resolved name into the JSON, so the perf gate can refuse to compare a
// run against the wrong backend's baseline (bench/baselines/ keeps one file
// per backend).
//
// Kernels: the GEMM and im2col+GEMM convolution that dominate training
// compute, the coordinate-median and Krum robust aggregation paths, the
// lossless checkpoint double-packing round trip, and a durable store
// commit. Each kernel runs `reps` iterations per trial and the minimum
// per-rep wall time across trials is reported — the minimum is the
// standard noise-rejecting statistic for microbenches (interruptions only
// ever make a trial slower, never faster).
//
// --smoke collapses to one rep x one trial per kernel: a schema/liveness
// check cheap enough to ride ctest, making no wall-time claims.
//
// --handicap multiplies one kernel's reported time post-measurement. It
// exists so the perf gate's failure path is demonstrable (and tested)
// without actually pessimising a kernel; a handicapped run marks itself in
// the JSON and must never be used to refresh the baseline.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "fl/checkpoint.hpp"
#include "fl/fault.hpp"
#include "fl/robust.hpp"
#include "fl/store/store.hpp"
#include "nn/conv.hpp"
#include "obs/export.hpp"
#include "tensor/backend.hpp"
#include "tensor/ops.hpp"

namespace {

using spatl::common::Rng;
using spatl::common::Timer;
using spatl::tensor::Tensor;

// Checksum accumulator the kernels feed so the optimizer cannot discard
// their work; printed at the end to keep the data dependency live.
double g_sink = 0.0;

struct KernelResult {
  std::uint64_t reps = 0;
  std::uint64_t trials = 0;
  double min_ns_per_rep = 0.0;
  double handicap = 1.0;
};

template <typename Body>
KernelResult measure(std::uint64_t reps, std::uint64_t trials, Body&& body) {
  KernelResult result;
  result.reps = reps;
  result.trials = trials;
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t t = 0; t < trials; ++t) {
    Timer timer;
    for (std::uint64_t r = 0; r < reps; ++r) body();
    best = std::min(best, timer.seconds() * 1.0e9 / double(reps));
  }
  result.min_ns_per_rep = best;
  return result;
}

std::vector<spatl::fl::RobustUpdate> make_updates(
    const std::vector<std::vector<float>>& payloads) {
  std::vector<spatl::fl::RobustUpdate> updates;
  updates.reserve(payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    spatl::fl::RobustUpdate u;
    u.client = i;
    u.weight = 1.0 + 0.1 * double(i % 3);
    u.values = &payloads[i];
    updates.push_back(u);
  }
  return updates;
}

}  // namespace

int main(int argc, char** argv) {
  spatl::common::Flags flags(argc, argv, 1);
  try {
    flags.check_known({"out", "smoke", "handicap", "backend"});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_perf: %s\n", e.what());
    std::fprintf(stderr,
                 "usage: bench_perf [--out FILE] [--smoke] "
                 "[--handicap kernel=factor] "
                 "[--backend scalar|cpu-simd|auto]\n");
    return 2;
  }
  const bool smoke = flags.get_bool("smoke", false);
  const std::string out_path = flags.get("out", "BENCH_PERF.json");

  try {
    const std::string backend = flags.get("backend", "");
    if (!backend.empty()) {
      spatl::tensor::set_active_backend(spatl::tensor::parse_backend(backend));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_perf: %s\n", e.what());
    return 2;
  }

  // One optional post-measurement handicap, "kernel=factor".
  std::string handicap_kernel;
  double handicap_factor = 1.0;
  const std::string handicap = flags.get("handicap");
  if (!handicap.empty()) {
    const auto eq = handicap.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bench_perf: --handicap expects kernel=factor\n");
      return 2;
    }
    handicap_kernel = handicap.substr(0, eq);
    handicap_factor = std::stod(handicap.substr(eq + 1));
  }

  // Trial/rep budgets: sized so the full sweep stays in the low seconds on
  // a laptop-class core while each trial is long enough (>~1 ms) for the
  // steady-clock resolution to be noise-free.
  const std::uint64_t trials = smoke ? 1 : 5;
  const auto reps = [smoke](std::uint64_t n) { return smoke ? 1 : n; };

  std::map<std::string, KernelResult> results;

  // --- gemm: the 128^3 GEMM at the heart of every dense/conv layer -------
  {
    Rng rng(0xBE7C01ULL);
    const std::size_t n = 128;
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    Tensor c({n, n});
    results["gemm"] = measure(reps(8), trials, [&] {
      spatl::tensor::matmul(a, b, c);
      g_sink += double(c.data()[0]);
    });
  }

  // --- conv: im2col + GEMM forward pass, training-shaped ------------------
  {
    Rng rng(0xBE7C02ULL);
    spatl::nn::Conv2d conv(8, 16, 3);
    conv.init_params(rng);
    Tensor input = Tensor::randn({4, 8, 16, 16}, rng);
    results["conv"] = measure(reps(32), trials, [&] {
      Tensor out = conv.forward(input, /*train=*/false);
      g_sink += double(out.data()[0]);
    });
  }

  // Shared robust-aggregation workload: 16 clients x dim 4096, dense.
  const std::size_t kDim = 4096;
  std::vector<std::vector<float>> payloads(16);
  {
    Rng rng(0xBE7C03ULL);
    for (auto& p : payloads) {
      p.resize(kDim);
      for (float& v : p) v = rng.uniform_float(-1.0f, 1.0f);
    }
  }
  const std::vector<spatl::fl::RobustUpdate> updates = make_updates(payloads);

  // --- robust_median: per-coordinate weighted median ----------------------
  {
    spatl::fl::ResilienceConfig rc;
    rc.aggregator = spatl::fl::AggregatorKind::kCoordinateMedian;
    const auto agg = spatl::fl::make_robust_aggregator(rc);
    results["robust_median"] = measure(reps(16), trials, [&] {
      const auto outcome = agg->aggregate(updates, kDim);
      g_sink += double(outcome.value[0]);
    });
  }

  // --- robust_krum: pairwise-distance Krum selection ----------------------
  {
    spatl::fl::ResilienceConfig rc;
    rc.aggregator = spatl::fl::AggregatorKind::kKrum;
    rc.krum_f = 3;
    const auto agg = spatl::fl::make_robust_aggregator(rc);
    results["robust_krum"] = measure(reps(16), trials, [&] {
      const auto outcome = agg->aggregate(updates, kDim);
      g_sink += double(outcome.value[0]);
    });
  }

  // --- ckpt_pack: lossless 64-bit packing round trip ----------------------
  {
    Rng rng(0xBE7C04ULL);
    std::vector<double> doubles(kDim);
    for (double& v : doubles) v = rng.uniform(-10.0, 10.0);
    std::vector<std::uint64_t> words(kDim);
    for (std::uint64_t& w : words) w = rng.next();
    results["ckpt_pack"] = measure(reps(64), trials, [&] {
      const auto packed_d = spatl::fl::pack_doubles("bench.doubles", doubles);
      const auto back_d = spatl::fl::unpack_doubles(packed_d.value);
      const auto packed_u = spatl::fl::pack_u64s("bench.words", words);
      const auto back_u = spatl::fl::unpack_u64s(packed_u.value);
      g_sink += back_d[0] + double(back_u[0] & 0xFFU);
    });
  }

  // --- store_commit: durable generation write (atomic rename + manifest) --
  {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "spatl_bench_perf_store";
    fs::remove_all(dir);
    spatl::fl::store::StoreConfig cfg;
    cfg.dir = dir.string();
    cfg.keep_last = 2;  // pruning included: that is the steady-state cost
    spatl::fl::store::CheckpointStore store(cfg);
    Rng rng(0xBE7C05ULL);
    std::vector<float> weights(16384);
    for (float& v : weights) v = rng.uniform_float(-1.0f, 1.0f);
    spatl::fl::RunCheckpoint ckpt;
    ckpt.entries.push_back(spatl::fl::pack_floats("bench.weights", weights));
    std::size_t round = 0;
    results["store_commit"] = measure(reps(8), trials, [&] {
      if (!store.commit(++round, ckpt)) g_sink += 1.0;
    });
    fs::remove_all(dir);
  }

  if (!handicap_kernel.empty()) {
    const auto it = results.find(handicap_kernel);
    if (it == results.end()) {
      std::fprintf(stderr, "bench_perf: unknown kernel '%s' in --handicap\n",
                   handicap_kernel.c_str());
      return 2;
    }
    it->second.min_ns_per_rep *= handicap_factor;
    it->second.handicap = handicap_factor;
  }

  spatl::obs::JsonObject kernels;
  for (const auto& [name, r] : results) {
    spatl::obs::JsonObject k;
    k.add("reps", r.reps)
        .add("trials", r.trials)
        .add("min_ns_per_rep", r.min_ns_per_rep);
    if (r.handicap != 1.0) k.add("handicap", r.handicap);
    kernels.add_raw(name, k.str());
  }
  spatl::obs::JsonObject doc;
  doc.add("schema", "spatl-bench-perf-v1")
      .add("mode", smoke ? "smoke" : "full")
      .add("backend",
           spatl::tensor::backend_name(spatl::tensor::active_backend()))
      .add_raw("kernels", kernels.str());

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_perf: cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << doc.str() << "\n";
  out.close();

  for (const auto& [name, r] : results) {
    std::printf("%-14s %10.0f ns/rep  (min of %llu x %llu reps)%s\n",
                name.c_str(), r.min_ns_per_rep,
                (unsigned long long)r.trials, (unsigned long long)r.reps,
                r.handicap != 1.0 ? "  [HANDICAPPED]" : "");
  }
  std::printf("checksum %.6f -> %s\n", g_sink, out_path.c_str());
  return 0;
}
