// E9 — Table IV: the salient-parameter agent vs classic pruning baselines
// on the network-pruning task.
//
// Protocol: warm up a ResNet-56-style model on synthetic data, then prune
// to a FLOPs budget with (a) the PPO-trained GNN agent, (b) L1 one-shot,
// (c) FPGM one-shot, (d) SFP soft pruning, (e) random — each followed by
// the same fine-tuning budget — and compare accuracy drop vs FLOPs
// reduction.
//
// Paper shape to reproduce: the RL agent matches or beats the one-shot
// criteria at equal FLOPs (competitive with SoTA pruning).
#include <cstdio>

#include "bench_util.hpp"
#include "data/loader.hpp"
#include "prune/flops.hpp"
#include "prune/pipelines.hpp"

using namespace spatl;
using namespace spatl::bench;

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kWarn);
  const BenchScale scale = bench_scale();

  data::SyntheticConfig dcfg;
  dcfg.num_samples = 8 * scale.samples_per_client;
  dcfg.image_size = scale.input_size;
  dcfg.seed = 77;
  const data::Dataset all = data::make_synth_cifar(dcfg);
  const data::Dataset train = all.slice(0, all.size() * 3 / 4);
  const data::Dataset test = all.slice(all.size() * 3 / 4, all.size());

  models::ModelConfig mcfg;
  mcfg.arch = "resnet56";
  mcfg.input_size = scale.input_size;
  mcfg.width_mult = scale.width_mult;

  // One well-trained base model; every method starts from a copy of it.
  common::Rng rng(3);
  models::SplitModel base = models::build_model(mcfg, rng);
  data::TrainOptions topts;
  topts.epochs = 12;  // the pruning comparison needs a well-trained base
  topts.lr = scale.lr;
  data::train_supervised(base, train, topts, rng, base.all_params());
  const double base_acc = data::evaluate(base, test).accuracy;

  const std::size_t tune_epochs = scale.local_epochs * 2;

  common::CsvWriter csv(csv_path("bench_pruning_agents"),
                        {"method", "base_accuracy", "pruned_accuracy",
                         "accuracy_drop", "flops_reduction", "sparsity"});

  print_header("E9: Salient-parameter agent vs pruning baselines (Table IV)");
  std::printf("base ResNet-56 accuracy: %.1f%%\n\n", base_acc * 100.0);
  std::printf("%-12s %10s %9s %12s %10s\n", "method", "acc", "dAcc",
              "dFLOPs", "sparsity");

  auto report = [&](const std::string& name,
                    const prune::PruneEvalResult& r) {
    std::printf("%-12s %9.1f%% %+8.1f%% %11.1f%% %9.1f%%\n", name.c_str(),
                r.accuracy * 100.0, (r.accuracy - base_acc) * 100.0,
                (1.0 - r.flops_ratio) * 100.0, r.sparsity * 100.0);
    csv.row_values(name, base_acc, r.accuracy, r.accuracy - base_acc,
                   1.0 - r.flops_ratio, r.sparsity);
  };

  // (a) GNN-RL agent: PPO search on the pruning env, then deploy the best
  // policy and fine-tune, mirroring the AutoML pruning pipeline. The
  // achieved channel sparsity becomes the matched operating point for the
  // classic baselines below.
  double sparsity = 0.4;
  {
    common::Rng crng(11);
    models::SplitModel m = models::build_model(mcfg, crng);
    models::copy_full_state(base, m);
    rl::PruningEnvConfig ecfg;
    ecfg.flops_budget = 0.6;
    rl::PruningEnv env(m, test, ecfg);
    rl::PpoAgent agent(graph::kNumNodeFeatures, rl::PpoConfig{}, 13);
    const auto hist =
        rl::train_on_pruning(agent, env, /*rounds=*/6, /*episodes=*/3);
    prune::apply_sparsities(m, hist.best_sparsities,
                            prune::Criterion::kL2);
    data::TrainOptions tune = topts;
    tune.epochs = tune_epochs;
    common::Rng trng(17);
    data::train_supervised(m, train, tune, trng, m.all_params());
    prune::PruneEvalResult r;
    r.accuracy = data::evaluate(m, test).accuracy;
    r.flops_ratio =
        prune::encoder_flops(m) / prune::dense_encoder_flops(m.layers());
    r.sparsity = prune::overall_sparsity(m);
    sparsity = r.sparsity;  // baselines prune at the agent's operating point
    report("gnn-rl(ours)", r);
  }

  // (b-e) classic criteria under the same budget and tuning.
  struct Baseline {
    std::string name;
    prune::Criterion criterion;
    bool soft = false;
  };
  const std::vector<Baseline> baselines = {
      {"l1", prune::Criterion::kL1},
      {"fpgm", prune::Criterion::kGeometricMedian},
      {"sfp", prune::Criterion::kL2, /*soft=*/true},
      {"random", prune::Criterion::kRandom},
  };
  for (const auto& b : baselines) {
    common::Rng crng(19);
    models::SplitModel m = models::build_model(mcfg, crng);
    models::copy_full_state(base, m);
    data::TrainOptions tune = topts;
    tune.epochs = 1;
    common::Rng trng(23);
    const auto r =
        b.soft ? prune::sfp_train(m, train, test, sparsity, tune_epochs,
                                  tune, trng)
               : prune::one_shot_prune_and_finetune(
                     m, train, test, b.criterion, sparsity, tune_epochs,
                     tune, trng);
    report(b.name, r);
  }
  std::printf("\nCSV written to %s\n", csv_path("bench_pruning_agents").c_str());
  return 0;
}
