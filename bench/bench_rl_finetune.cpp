// E13 — Fig. 6: pre-training the RL agent on ResNet-56 pruning, then
// transferring it to ResNet-18 with head-only fine-tuning.
//
// Paper shape to reproduce: the pre-trained agent converges within a few
// dozen policy-update rounds; after transfer, fine-tuning only the MLP
// heads recovers comparable reward on the new architecture — evidence the
// GNN topology embedding transfers.
#include <cstdio>

#include "bench_util.hpp"
#include "data/loader.hpp"

using namespace spatl;
using namespace spatl::bench;

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kWarn);
  const BenchScale scale = bench_scale();

  common::CsvWriter csv(csv_path("bench_rl_finetune"),
                        {"phase", "arch", "update_round", "avg_reward",
                         "best_reward"});

  print_header("E13: RL agent pre-training and fine-tuning (Fig. 6)");

  // Phase 1: pre-train on ResNet-56 pruning.
  core::PretrainConfig pc;
  pc.arch = "resnet56";
  pc.input_size = scale.input_size;
  pc.width_mult = scale.width_mult;
  pc.warmup_epochs = 10;  // rewards are meaningless on an untrained model
  pc.rl_rounds = 12;
  pc.episodes_per_round = 4;
  pc.train_samples = 5 * scale.samples_per_client;
  pc.val_samples = 2 * scale.samples_per_client;
  auto pre = core::pretrain_selection_agent(pc);

  std::printf("\npre-training on ResNet-56 (reward = pruned val accuracy)\n");
  std::printf("%-8s %12s %12s\n", "round", "avg reward", "best");
  for (std::size_t r = 0; r < pre.history.rewards.size(); ++r) {
    std::printf("%-8zu %11.1f%% %11.1f%%\n", r + 1,
                pre.history.rewards[r] * 100.0,
                pre.history.best_so_far[r] * 100.0);
    csv.row_values("pretrain", "resnet56", r + 1, pre.history.rewards[r],
                   pre.history.best_so_far[r]);
  }

  // Phase 2: transfer to ResNet-18; only the MLP heads update.
  common::Rng rng(9);
  data::SyntheticConfig dcfg;
  dcfg.num_samples = 6 * scale.samples_per_client;
  dcfg.image_size = scale.input_size;
  dcfg.seed = 11;
  const data::Dataset all = data::make_synth_cifar(dcfg);
  const data::Dataset train = all.slice(0, all.size() * 2 / 3);
  const data::Dataset val = all.slice(all.size() * 2 / 3, all.size());

  models::ModelConfig mcfg;
  mcfg.arch = "resnet18";
  mcfg.input_size = scale.input_size;
  mcfg.width_mult = scale.width_mult;
  models::SplitModel model = models::build_model(mcfg, rng);
  data::TrainOptions topts;
  topts.epochs = 10;
  topts.lr = scale.lr;
  data::train_supervised(model, train, topts, rng, model.all_params());

  rl::PruningEnvConfig ecfg;
  ecfg.flops_budget = 0.6;
  rl::PruningEnv env(model, val, ecfg);
  rl::PpoAgent finetuned = pre.agent.clone(21);
  finetuned.set_finetune(true);  // freeze the GNN trunk
  const auto ft = rl::train_on_pruning(finetuned, env, 12, 4);

  std::printf("\nfine-tuning on ResNet-18 (MLP heads only)\n");
  std::printf("%-8s %12s %12s\n", "round", "avg reward", "best");
  for (std::size_t r = 0; r < ft.rewards.size(); ++r) {
    std::printf("%-8zu %11.1f%% %11.1f%%\n", r + 1, ft.rewards[r] * 100.0,
                ft.best_so_far[r] * 100.0);
    csv.row_values("finetune", "resnet18", r + 1, ft.rewards[r],
                   ft.best_so_far[r]);
  }

  // A from-scratch agent on ResNet-18, for the transfer-value comparison.
  rl::PpoAgent fresh(graph::kNumNodeFeatures, rl::PpoConfig{}, 31);
  const auto scratch = rl::train_on_pruning(fresh, env, 12, 4);
  std::printf("\nfrom-scratch agent on ResNet-18 (reference)\n");
  std::printf("best reward: finetuned %.1f%% vs scratch %.1f%%\n",
              ft.best_reward * 100.0, scratch.best_reward * 100.0);
  for (std::size_t r = 0; r < scratch.rewards.size(); ++r) {
    csv.row_values("scratch", "resnet18", r + 1, scratch.rewards[r],
                   scratch.best_so_far[r]);
  }
  std::printf("\nCSV written to %s\n", csv_path("bench_rl_finetune").c_str());
  return 0;
}
