// Scalability sweep — the paper's 4th contribution claim ("SPATL enables
// scalable federated learning to allow large-scale decentralized
// training"): per-round wall time, per-round communicated bytes, and
// server-side aggregation share as the federation grows from 10 to 100
// clients.
//
// Expected shape: SPATL's per-round bytes grow linearly in participants but
// with a ~40-50% smaller slope than FedAvg (salient selection), and the
// aggregation stays O(participants x parameters) with no super-linear term.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"

using namespace spatl;
using namespace spatl::bench;

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kWarn);
  BenchScale scale = bench_scale();
  scale.samples_per_client = 40;  // scale client count, not shard size

  common::CsvWriter csv(csv_path("bench_scalability"),
                        {"algorithm", "clients", "participants",
                         "round_wall_ms", "round_bytes",
                         "bytes_per_participant"});

  print_header("Scalability: cost per round vs federation size");
  std::printf("%-8s %8s %13s %14s %14s %18s\n", "method", "clients",
              "participants", "round wall", "round bytes", "bytes/client");

  const rl::PpoAgent& agent = shared_pretrained_agent();

  for (const std::size_t clients : {10u, 25u, 50u, 100u}) {
    const double ratio = 0.4;
    for (const std::string algo : {"fedavg", "spatl"}) {
      const data::Dataset source = make_source("cifar", clients, scale);
      common::Rng env_rng(42 ^ 0xE47ULL);
      fl::FlEnvironment env(source, clients, 0.3, 0.25, env_rng);
      fl::FlConfig cfg = make_fl_config("resnet20", "cifar", scale);
      cfg.local.epochs = 1;

      std::unique_ptr<fl::FederatedAlgorithm> algorithm;
      if (algo == "spatl") {
        auto opts = default_spatl_options();
        opts.agent_finetune_rounds = 0;  // measure steady-state round cost
        algorithm = std::make_unique<core::SpatlAlgorithm>(env, cfg, opts,
                                                           &agent);
      } else {
        algorithm = fl::make_baseline(algo, env, cfg);
      }

      // Two rounds; time the second (client state warm, caches populated).
      common::Rng sampler(7);
      const std::size_t per_round = std::size_t(ratio * double(clients));
      algorithm->run_round(
          sampler.sample_without_replacement(clients, per_round));
      const double bytes_before = algorithm->ledger().total_bytes();
      common::Timer timer;
      algorithm->run_round(
          sampler.sample_without_replacement(clients, per_round));
      const double wall_ms = timer.millis();
      const double round_bytes =
          algorithm->ledger().total_bytes() - bytes_before;

      std::printf("%-8s %8zu %13zu %12.0fms %14s %18s\n", algo.c_str(),
                  clients, per_round, wall_ms,
                  common::format_bytes(round_bytes).c_str(),
                  common::format_bytes(round_bytes / double(per_round))
                      .c_str());
      csv.row_values(algo, clients, per_round, wall_ms, round_bytes,
                     round_bytes / double(per_round));
    }
  }
  std::printf("\nCSV written to %s\n", csv_path("bench_scalability").c_str());
  return 0;
}
