// E7 — Table III: transferability of the federated-trained model.
//
// Protocol (paper §V-E): split the data into an FL portion and a held-out
// transfer portion; train ResNet-20 with each algorithm on 10 clients; then
// transfer the resulting network to the held-out portion (fresh predictor,
// regular supervised fine-tuning) and compare test accuracy.
//
// Paper shape to reproduce: SPATL's encoder — despite being the only part
// trained federatedly — transfers comparably to the full models learned by
// the baselines.
#include <cstdio>

#include "bench_util.hpp"

using namespace spatl;
using namespace spatl::bench;

int main(int argc, char** argv) {
  TelemetryScope telemetry(argc, argv);
  common::set_log_level(common::LogLevel::kWarn);
  const BenchScale scale = bench_scale();
  const std::size_t clients = 10;

  // FL portion + transfer train/test portions from one generator so the
  // domains match (the paper splits CIFAR-10 50K/10K).
  data::SyntheticConfig dcfg;
  dcfg.num_samples = clients * scale.samples_per_client +
                     6 * scale.samples_per_client;
  dcfg.image_size = scale.input_size;
  dcfg.seed = 42;
  const data::Dataset all = data::make_synth_cifar(dcfg);
  const std::size_t fl_n = clients * scale.samples_per_client;
  const data::Dataset fl_portion = all.slice(0, fl_n);
  const data::Dataset transfer_train =
      all.slice(fl_n, fl_n + 3 * scale.samples_per_client);
  const data::Dataset transfer_test =
      all.slice(fl_n + 3 * scale.samples_per_client, all.size());

  const std::vector<std::string> algos = {"fedavg", "fedprox", "fednova",
                                          "scaffold", "spatl"};
  common::CsvWriter csv(csv_path("bench_transferability"),
                        {"algorithm", "fl_accuracy", "transfer_accuracy"});

  const rl::PpoAgent& agent = shared_pretrained_agent();

  print_header("E7: Transferability of the learned model (Table III)");
  std::printf("%-10s %14s %18s\n", "method", "FL accuracy",
              "transfer accuracy");

  for (const auto& algo : algos) {
    common::Rng env_rng(42 ^ 0xE47ULL);
    fl::FlEnvironment env(fl_portion, clients, 0.5, 0.25, env_rng);
    fl::FlConfig cfg = make_fl_config("resnet20", "cifar", scale);

    std::unique_ptr<fl::FederatedAlgorithm> algorithm;
    if (algo == "spatl") {
      algorithm = std::make_unique<core::SpatlAlgorithm>(
          env, cfg, default_spatl_options(), &agent);
    } else {
      algorithm = fl::make_baseline(algo, env, cfg);
    }
    fl::RunOptions ro;
    ro.rounds = scale.rounds;
    ro.eval_every = scale.rounds;  // only need the final model
    const auto result = fl::run_federated(*algorithm, ro);

    // Average the fine-tune over three seeds: a single run's predictor
    // re-initialization dominates the signal at this dataset size.
    data::TrainOptions topts;
    topts.lr = scale.lr;
    double transfer_acc = 0.0;
    for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
      common::Rng trng(seed);
      transfer_acc += core::transfer_evaluate(
          algorithm->global_model(), transfer_train, transfer_test,
          /*epochs=*/scale.local_epochs * 4, topts, trng,
          /*full_finetune=*/true);
    }
    transfer_acc /= 3.0;

    std::printf("%-10s %13.1f%% %17.1f%%\n", algo.c_str(),
                result.final_accuracy * 100.0, transfer_acc * 100.0);
    csv.row_values(algo, result.final_accuracy, transfer_acc);
  }
  std::printf("\nCSV written to %s\n", csv_path("bench_transferability").c_str());
  return 0;
}
