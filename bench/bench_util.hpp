// Shared experiment harness for the paper-reproduction benches.
//
// Every bench binary reproduces one table or figure: it builds the same
// federation (synthetic non-IID data, scaled models), runs the requested
// algorithms, prints the paper's row/series schema to stdout, and writes a
// CSV next to the binary. Scale is CPU-sized by default; set
// SPATL_BENCH_SCALE=large for longer runs on beefier machines.
#pragma once

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "core/spatl.hpp"
#include "core/transfer.hpp"
#include "data/synthetic.hpp"
#include "fl/runner.hpp"
#include "models/split_model.hpp"
#include "nn/module.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spatl::bench {

// --- shared telemetry sink -------------------------------------------------
//
// Every bench binary constructs one TelemetryScope from argv; run_algorithm
// attaches the process-wide sink to each federated run. Flags (all
// optional, telemetry is off without them):
//   --trace-out FILE        enable the tracer, write Chrome trace JSON on exit
//   --metrics-out FILE      per-round JSONL telemetry + final registry record
//   --telemetry-every N     emit every Nth round only (default 1)

inline obs::JsonlWriter* g_telemetry_sink = nullptr;
inline std::size_t g_telemetry_every = 1;

class TelemetryScope {
 public:
  TelemetryScope(int argc, char** argv) {
    std::string metrics_path;
    for (int i = 1; i + 1 < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--trace-out") {
        trace_path_ = argv[++i];
      } else if (arg == "--metrics-out") {
        metrics_path = argv[++i];
      } else if (arg == "--telemetry-every") {
        g_telemetry_every = std::max(1L, std::atol(argv[++i]));
      }
    }
    if (!trace_path_.empty()) obs::Tracer::instance().set_enabled(true);
    if (!metrics_path.empty()) {
      writer_ = std::make_unique<obs::JsonlWriter>(metrics_path);
      g_telemetry_sink = writer_.get();
    }
  }

  ~TelemetryScope() {
    // Exporters must never take a bench down: telemetry is observation.
    try {
      if (writer_ != nullptr) {
        obs::JsonObject rec;
        rec.add("type", "metrics")
            .add_raw("metrics",
                     obs::metrics_object(
                         obs::MetricsRegistry::instance().snapshot())
                         .str());
        writer_->write(rec);
        common::log_info("telemetry: ", writer_->lines(), " records -> ",
                         writer_->path());
        g_telemetry_sink = nullptr;
        writer_.reset();
      }
      if (!trace_path_.empty()) {
        obs::write_chrome_trace(obs::Tracer::instance(), trace_path_);
        common::log_info("trace: ", trace_path_);
        obs::Tracer::instance().set_enabled(false);
      }
    } catch (const std::exception& e) {
      common::log_error("telemetry export failed: ", e.what());
    }
  }

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  std::unique_ptr<obs::JsonlWriter> writer_;
  std::string trace_path_;
};

struct BenchScale {
  std::size_t samples_per_client = 80;
  std::size_t rounds = 10;
  std::size_t local_epochs = 2;
  std::size_t eval_every = 2;
  std::size_t input_size = 10;
  std::size_t batch_size = 16;
  double width_mult = 0.25;
  double lr = 0.05;
};

inline BenchScale bench_scale() {
  BenchScale s;
  const char* env = std::getenv("SPATL_BENCH_SCALE");
  if (env != nullptr && std::string(env) == "large") {
    s.samples_per_client = 400;
    s.rounds = 60;
    s.local_epochs = 10;
    s.eval_every = 2;
    s.input_size = 16;
    s.batch_size = 32;
    s.width_mult = 0.5;
  }
  return s;
}

/// SynthCIFAR sized for the federation ("cifar" domain) or SynthFEMNIST
/// ("femnist"). Total samples grow with the client count so each client
/// keeps a fixed-size shard, as the Non-IID benchmark does.
inline data::Dataset make_source(const std::string& domain,
                                 std::size_t num_clients,
                                 const BenchScale& s,
                                 std::uint64_t seed = 42) {
  data::SyntheticConfig cfg;
  cfg.num_samples = num_clients * s.samples_per_client;
  cfg.image_size = s.input_size;
  cfg.noise_stddev = 0.25f;
  cfg.seed = seed;
  if (domain == "femnist") {
    cfg.num_classes = 20;  // scaled-down LEAF class space
    return data::make_synth_femnist(cfg);
  }
  return data::make_synth_cifar(cfg);
}

inline fl::FlConfig make_fl_config(const std::string& arch,
                                   const std::string& domain,
                                   const BenchScale& s,
                                   std::uint64_t seed = 42) {
  fl::FlConfig cfg;
  cfg.model.arch = arch;
  cfg.model.input_size = s.input_size;
  cfg.model.width_mult = s.width_mult;
  if (domain == "femnist") {
    cfg.model.in_channels = 1;
    cfg.model.num_classes = 20;
  }
  cfg.local.epochs = s.local_epochs;
  cfg.local.batch_size = s.batch_size;
  cfg.local.lr = s.lr;
  cfg.seed = seed;
  return cfg;
}

inline core::SpatlOptions default_spatl_options() {
  core::SpatlOptions opts;
  opts.flops_budget = 0.7;
  opts.agent_finetune_rounds = 2;
  opts.agent_finetune_episodes = 2;
  return opts;
}

/// One federated run of a named algorithm ("fedavg", ..., "spatl").
struct AlgoRun {
  std::string algorithm;
  fl::RunResult result;
  double uplink_bytes = 0.0;
  double downlink_bytes = 0.0;
  double retransmitted_bytes = 0.0;  // retry-path share of uplink_bytes
  double avg_round_client_bytes = 0.0;  // measured (up+down)/(rounds*participants)
  std::vector<double> client_flops_ratios;  // spatl only
  std::vector<double> client_sparsities;    // spatl only
  std::vector<double> per_client_accuracy;
  std::vector<float> final_weights;  // only with RunSpec::capture_weights
};

struct RunSpec {
  std::string arch = "resnet20";
  std::string domain = "cifar";
  std::size_t num_clients = 10;
  double sample_ratio = 1.0;
  double beta = 0.3;  // calibrated: synthetic task is easier than CIFAR, see EXPERIMENTS.md
  std::optional<double> target_accuracy;
  std::size_t rounds_override = 0;  // 0 = use scale default
  bool capture_per_client = false;
  /// Fault injection + defenses for resilience benches (clean run when
  /// unset).
  std::optional<fl::FaultConfig> faults;
  std::optional<fl::ResilienceConfig> resilience;
  /// Semi-async straggler commit (bench_async); unset = synchronous policy.
  std::optional<fl::AsyncConfig> async;
  /// Elastic membership (bench_churn); unset = static population.
  std::optional<fl::ChurnConfig> churn;
  /// Per-round admission budget (bench_churn); unlimited by default.
  fl::AdmissionConfig admission;
  /// Failover drills (bench_chaos): server crashes at the end of these
  /// rounds, recovered from the durable store / baseline inside the run.
  std::vector<std::size_t> crash_at_rounds;
  /// Checkpoint cadence (0 = off); required for the drills to have
  /// anything durable to recover from.
  std::size_t checkpoint_every = 0;
  /// Durable generational checkpoint store (bench_chaos); unset = legacy
  /// in-memory failover only.
  std::optional<fl::store::StoreConfig> ckpt_store;
  /// Storage IO hook — bench_chaos points this at a FaultyStoreIo to tear
  /// and corrupt the store's writes. Borrowed; null = real filesystem.
  fl::store::StoreIo* store_io = nullptr;
  /// Capture the final global weights into AlgoRun::final_weights (the
  /// chaos bench memcmps crashed runs against their uncrashed twins).
  bool capture_weights = false;
};

// --- shared resilience-bench baseline -------------------------------------
//
// The fault-tolerance and Byzantine benches must run the SAME federation
// (architecture, client count, participation, fault seed) so their rows are
// comparable across binaries and a re-run replays the identical fault
// schedule. Construct configs through these builders instead of inlining
// them per bench.

/// Fixed fault seed for every resilience bench (re-seeding by convention).
inline constexpr std::uint64_t kResilienceFaultSeed = 0xFA17ULL;

/// ResNet-20, 12 clients, 75% participation per round.
inline RunSpec make_resilience_spec() {
  RunSpec spec;
  spec.arch = "resnet20";
  spec.num_clients = 12;
  spec.sample_ratio = 0.75;
  return spec;
}

/// Fault model seeded by convention; rates start at zero — set only what the
/// bench sweeps.
inline fl::FaultConfig make_resilience_faults() {
  fl::FaultConfig fc;
  fc.seed = kResilienceFaultSeed;
  return fc;
}

/// Server defenses every resilience bench runs with: NaN/Inf validation,
/// two retries, quorum of two.
inline fl::ResilienceConfig make_resilience_defenses() {
  fl::ResilienceConfig rc;
  rc.validate_updates = true;
  rc.retry.max_retries = 2;
  rc.min_quorum = 2;
  return rc;
}

inline AlgoRun run_algorithm(const std::string& algo, const RunSpec& spec,
                             const BenchScale& s,
                             const core::SpatlOptions& spatl_opts,
                             const rl::PpoAgent* pretrained = nullptr,
                             std::uint64_t seed = 42) {
  const data::Dataset source =
      make_source(spec.domain, spec.num_clients, s, seed);
  common::Rng env_rng(seed ^ 0xE47ULL);
  fl::FlEnvironment env(source, spec.num_clients, spec.beta,
                        /*val_fraction=*/0.25, env_rng);
  fl::FlConfig cfg = make_fl_config(spec.arch, spec.domain, s, seed);

  std::unique_ptr<fl::FederatedAlgorithm> algorithm;
  core::SpatlAlgorithm* spatl_ptr = nullptr;
  if (algo == "spatl") {
    auto sp = std::make_unique<core::SpatlAlgorithm>(env, cfg, spatl_opts,
                                                     pretrained);
    spatl_ptr = sp.get();
    algorithm = std::move(sp);
  } else {
    algorithm = fl::make_baseline(algo, env, cfg);
  }

  fl::RunOptions ro;
  ro.rounds = spec.rounds_override > 0 ? spec.rounds_override : s.rounds;
  ro.sample_ratio = spec.sample_ratio;
  ro.eval_every = s.eval_every;
  ro.target_accuracy = spec.target_accuracy;
  ro.faults = spec.faults;
  ro.resilience = spec.resilience;
  ro.async = spec.async;
  ro.churn = spec.churn;
  ro.admission = spec.admission;
  ro.crash_at_rounds = spec.crash_at_rounds;
  ro.checkpoint_every = spec.checkpoint_every;
  ro.ckpt_store = spec.ckpt_store;
  ro.store_io = spec.store_io;
  ro.telemetry = g_telemetry_sink;
  ro.telemetry_every = g_telemetry_every;

  AlgoRun run;
  run.algorithm = algo;
  run.result = fl::run_federated(*algorithm, ro);
  run.uplink_bytes = run.result.comm.uplink;
  run.downlink_bytes = run.result.comm.downlink;
  run.retransmitted_bytes = run.result.comm.retransmitted;
  const double participants =
      std::max(1.0, std::ceil(spec.sample_ratio * double(spec.num_clients)));
  const double effective_rounds =
      double(run.result.rounds_to_target.value_or(ro.rounds));
  run.avg_round_client_bytes =
      (run.uplink_bytes + run.downlink_bytes) /
      (participants * std::max(1.0, effective_rounds));
  if (spatl_ptr != nullptr) {
    run.client_flops_ratios = spatl_ptr->client_flops_ratios();
    run.client_sparsities = spatl_ptr->client_sparsities();
  }
  if (spec.capture_per_client) {
    run.per_client_accuracy = algorithm->per_client_accuracy();
  }
  if (spec.capture_weights) {
    run.final_weights = nn::flatten_values(algorithm->global_model().all_params());
  }
  return run;
}

/// Pre-train the salient-selection agent once per bench process (the
/// paper's ResNet-56 pruning pre-training, scaled).
inline const rl::PpoAgent& shared_pretrained_agent() {
  static core::PretrainResult result = [] {
    core::PretrainConfig pc;
    pc.arch = "resnet56";
    pc.input_size = 10;
    pc.width_mult = 0.25;
    pc.warmup_epochs = 1;
    pc.rl_rounds = 6;
    pc.episodes_per_round = 3;
    pc.train_samples = 300;
    pc.val_samples = 120;
    common::log_info("pre-training salient selection agent (ResNet-56)...");
    return core::pretrain_selection_agent(pc);
  }();
  return result.agent;
}

/// Analytic full-scale (paper-sized) per-round/client bytes for an
/// algorithm, given the measured salient fraction for SPATL. Used to report
/// the Table I/II "Round/Client" column at the paper's model sizes.
inline double full_scale_round_client_bytes(const std::string& algo,
                                            const std::string& arch,
                                            double spatl_selected_fraction) {
  common::Rng rng(1);
  models::ModelConfig cfg;
  cfg.arch = arch;
  cfg = cfg.full_scale();
  models::SplitModel m = models::build_model(cfg, rng);
  const double enc = double(m.encoder_param_count());
  const double full = enc + double(m.predictor_param_count());
  const double B = 4.0;
  if (algo == "fedavg" || algo == "fedprox") return 2.0 * full * B;
  if (algo == "fednova") return 3.0 * full * B;   // up is 2x (update + norm state)
  if (algo == "scaffold") return 4.0 * full * B;  // both directions 2x
  // SPATL: down = enc + control; up = selected (values + control delta) +
  // channel indices (negligible).
  return (2.0 * enc + 2.0 * spatl_selected_fraction * enc) * B;
}

inline std::string csv_path(const std::string& bench_name) {
  return bench_name + ".csv";
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace spatl::bench
