file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gradctrl.dir/bench_ablation_gradctrl.cpp.o"
  "CMakeFiles/bench_ablation_gradctrl.dir/bench_ablation_gradctrl.cpp.o.d"
  "bench_ablation_gradctrl"
  "bench_ablation_gradctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gradctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
