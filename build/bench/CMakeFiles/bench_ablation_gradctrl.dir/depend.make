# Empty dependencies file for bench_ablation_gradctrl.
# This may be replaced when dependencies are built.
