file(REMOVE_RECURSE
  "CMakeFiles/bench_agent_latency.dir/bench_agent_latency.cpp.o"
  "CMakeFiles/bench_agent_latency.dir/bench_agent_latency.cpp.o.d"
  "bench_agent_latency"
  "bench_agent_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_agent_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
