# Empty dependencies file for bench_agent_latency.
# This may be replaced when dependencies are built.
