file(REMOVE_RECURSE
  "CMakeFiles/bench_comm_convergence.dir/bench_comm_convergence.cpp.o"
  "CMakeFiles/bench_comm_convergence.dir/bench_comm_convergence.cpp.o.d"
  "bench_comm_convergence"
  "bench_comm_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comm_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
