# Empty compiler generated dependencies file for bench_comm_convergence.
# This may be replaced when dependencies are built.
