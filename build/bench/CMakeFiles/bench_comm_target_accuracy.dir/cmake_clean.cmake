file(REMOVE_RECURSE
  "CMakeFiles/bench_comm_target_accuracy.dir/bench_comm_target_accuracy.cpp.o"
  "CMakeFiles/bench_comm_target_accuracy.dir/bench_comm_target_accuracy.cpp.o.d"
  "bench_comm_target_accuracy"
  "bench_comm_target_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comm_target_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
