# Empty dependencies file for bench_comm_target_accuracy.
# This may be replaced when dependencies are built.
