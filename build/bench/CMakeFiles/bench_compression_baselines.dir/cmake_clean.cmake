file(REMOVE_RECURSE
  "CMakeFiles/bench_compression_baselines.dir/bench_compression_baselines.cpp.o"
  "CMakeFiles/bench_compression_baselines.dir/bench_compression_baselines.cpp.o.d"
  "bench_compression_baselines"
  "bench_compression_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compression_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
