file(REMOVE_RECURSE
  "CMakeFiles/bench_inference_acceleration.dir/bench_inference_acceleration.cpp.o"
  "CMakeFiles/bench_inference_acceleration.dir/bench_inference_acceleration.cpp.o.d"
  "bench_inference_acceleration"
  "bench_inference_acceleration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inference_acceleration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
