# Empty compiler generated dependencies file for bench_inference_acceleration.
# This may be replaced when dependencies are built.
