file(REMOVE_RECURSE
  "CMakeFiles/bench_learning_efficiency.dir/bench_learning_efficiency.cpp.o"
  "CMakeFiles/bench_learning_efficiency.dir/bench_learning_efficiency.cpp.o.d"
  "bench_learning_efficiency"
  "bench_learning_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_learning_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
