file(REMOVE_RECURSE
  "CMakeFiles/bench_per_client_accuracy.dir/bench_per_client_accuracy.cpp.o"
  "CMakeFiles/bench_per_client_accuracy.dir/bench_per_client_accuracy.cpp.o.d"
  "bench_per_client_accuracy"
  "bench_per_client_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_per_client_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
