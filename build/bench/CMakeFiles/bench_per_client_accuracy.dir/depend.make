# Empty dependencies file for bench_per_client_accuracy.
# This may be replaced when dependencies are built.
