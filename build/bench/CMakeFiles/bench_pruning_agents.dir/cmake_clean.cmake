file(REMOVE_RECURSE
  "CMakeFiles/bench_pruning_agents.dir/bench_pruning_agents.cpp.o"
  "CMakeFiles/bench_pruning_agents.dir/bench_pruning_agents.cpp.o.d"
  "bench_pruning_agents"
  "bench_pruning_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pruning_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
