# Empty dependencies file for bench_pruning_agents.
# This may be replaced when dependencies are built.
