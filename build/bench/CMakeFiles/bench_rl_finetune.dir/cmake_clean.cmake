file(REMOVE_RECURSE
  "CMakeFiles/bench_rl_finetune.dir/bench_rl_finetune.cpp.o"
  "CMakeFiles/bench_rl_finetune.dir/bench_rl_finetune.cpp.o.d"
  "bench_rl_finetune"
  "bench_rl_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rl_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
