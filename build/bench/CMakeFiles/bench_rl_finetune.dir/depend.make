# Empty dependencies file for bench_rl_finetune.
# This may be replaced when dependencies are built.
