file(REMOVE_RECURSE
  "CMakeFiles/bench_transferability.dir/bench_transferability.cpp.o"
  "CMakeFiles/bench_transferability.dir/bench_transferability.cpp.o.d"
  "bench_transferability"
  "bench_transferability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transferability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
