file(REMOVE_RECURSE
  "CMakeFiles/comm_budget_planner.dir/comm_budget_planner.cpp.o"
  "CMakeFiles/comm_budget_planner.dir/comm_budget_planner.cpp.o.d"
  "comm_budget_planner"
  "comm_budget_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_budget_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
