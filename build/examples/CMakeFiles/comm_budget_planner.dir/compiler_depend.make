# Empty compiler generated dependencies file for comm_budget_planner.
# This may be replaced when dependencies are built.
