file(REMOVE_RECURSE
  "CMakeFiles/salient_pruning.dir/salient_pruning.cpp.o"
  "CMakeFiles/salient_pruning.dir/salient_pruning.cpp.o.d"
  "salient_pruning"
  "salient_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salient_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
