# Empty dependencies file for salient_pruning.
# This may be replaced when dependencies are built.
