file(REMOVE_RECURSE
  "CMakeFiles/spatl_common.dir/csv.cpp.o"
  "CMakeFiles/spatl_common.dir/csv.cpp.o.d"
  "CMakeFiles/spatl_common.dir/flags.cpp.o"
  "CMakeFiles/spatl_common.dir/flags.cpp.o.d"
  "CMakeFiles/spatl_common.dir/log.cpp.o"
  "CMakeFiles/spatl_common.dir/log.cpp.o.d"
  "CMakeFiles/spatl_common.dir/thread_pool.cpp.o"
  "CMakeFiles/spatl_common.dir/thread_pool.cpp.o.d"
  "libspatl_common.a"
  "libspatl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
