file(REMOVE_RECURSE
  "libspatl_common.a"
)
