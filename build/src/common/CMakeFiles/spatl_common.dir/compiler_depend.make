# Empty compiler generated dependencies file for spatl_common.
# This may be replaced when dependencies are built.
