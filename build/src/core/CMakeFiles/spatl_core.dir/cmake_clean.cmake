file(REMOVE_RECURSE
  "CMakeFiles/spatl_core.dir/spatl.cpp.o"
  "CMakeFiles/spatl_core.dir/spatl.cpp.o.d"
  "CMakeFiles/spatl_core.dir/transfer.cpp.o"
  "CMakeFiles/spatl_core.dir/transfer.cpp.o.d"
  "libspatl_core.a"
  "libspatl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
