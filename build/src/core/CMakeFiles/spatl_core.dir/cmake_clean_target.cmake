file(REMOVE_RECURSE
  "libspatl_core.a"
)
