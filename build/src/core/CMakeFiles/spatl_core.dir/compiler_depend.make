# Empty compiler generated dependencies file for spatl_core.
# This may be replaced when dependencies are built.
