
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/spatl_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/spatl_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/loader.cpp" "src/data/CMakeFiles/spatl_data.dir/loader.cpp.o" "gcc" "src/data/CMakeFiles/spatl_data.dir/loader.cpp.o.d"
  "/root/repo/src/data/metrics.cpp" "src/data/CMakeFiles/spatl_data.dir/metrics.cpp.o" "gcc" "src/data/CMakeFiles/spatl_data.dir/metrics.cpp.o.d"
  "/root/repo/src/data/partition.cpp" "src/data/CMakeFiles/spatl_data.dir/partition.cpp.o" "gcc" "src/data/CMakeFiles/spatl_data.dir/partition.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/data/CMakeFiles/spatl_data.dir/synthetic.cpp.o" "gcc" "src/data/CMakeFiles/spatl_data.dir/synthetic.cpp.o.d"
  "/root/repo/src/data/train.cpp" "src/data/CMakeFiles/spatl_data.dir/train.cpp.o" "gcc" "src/data/CMakeFiles/spatl_data.dir/train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/spatl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/spatl_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/spatl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spatl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
