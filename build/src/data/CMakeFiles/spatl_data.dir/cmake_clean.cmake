file(REMOVE_RECURSE
  "CMakeFiles/spatl_data.dir/dataset.cpp.o"
  "CMakeFiles/spatl_data.dir/dataset.cpp.o.d"
  "CMakeFiles/spatl_data.dir/loader.cpp.o"
  "CMakeFiles/spatl_data.dir/loader.cpp.o.d"
  "CMakeFiles/spatl_data.dir/metrics.cpp.o"
  "CMakeFiles/spatl_data.dir/metrics.cpp.o.d"
  "CMakeFiles/spatl_data.dir/partition.cpp.o"
  "CMakeFiles/spatl_data.dir/partition.cpp.o.d"
  "CMakeFiles/spatl_data.dir/synthetic.cpp.o"
  "CMakeFiles/spatl_data.dir/synthetic.cpp.o.d"
  "CMakeFiles/spatl_data.dir/train.cpp.o"
  "CMakeFiles/spatl_data.dir/train.cpp.o.d"
  "libspatl_data.a"
  "libspatl_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatl_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
