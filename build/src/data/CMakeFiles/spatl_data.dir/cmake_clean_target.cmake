file(REMOVE_RECURSE
  "libspatl_data.a"
)
