# Empty dependencies file for spatl_data.
# This may be replaced when dependencies are built.
