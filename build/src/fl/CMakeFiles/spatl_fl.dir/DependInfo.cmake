
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/algorithm.cpp" "src/fl/CMakeFiles/spatl_fl.dir/algorithm.cpp.o" "gcc" "src/fl/CMakeFiles/spatl_fl.dir/algorithm.cpp.o.d"
  "/root/repo/src/fl/compression.cpp" "src/fl/CMakeFiles/spatl_fl.dir/compression.cpp.o" "gcc" "src/fl/CMakeFiles/spatl_fl.dir/compression.cpp.o.d"
  "/root/repo/src/fl/environment.cpp" "src/fl/CMakeFiles/spatl_fl.dir/environment.cpp.o" "gcc" "src/fl/CMakeFiles/spatl_fl.dir/environment.cpp.o.d"
  "/root/repo/src/fl/flat_utils.cpp" "src/fl/CMakeFiles/spatl_fl.dir/flat_utils.cpp.o" "gcc" "src/fl/CMakeFiles/spatl_fl.dir/flat_utils.cpp.o.d"
  "/root/repo/src/fl/local_only.cpp" "src/fl/CMakeFiles/spatl_fl.dir/local_only.cpp.o" "gcc" "src/fl/CMakeFiles/spatl_fl.dir/local_only.cpp.o.d"
  "/root/repo/src/fl/runner.cpp" "src/fl/CMakeFiles/spatl_fl.dir/runner.cpp.o" "gcc" "src/fl/CMakeFiles/spatl_fl.dir/runner.cpp.o.d"
  "/root/repo/src/fl/server_opt.cpp" "src/fl/CMakeFiles/spatl_fl.dir/server_opt.cpp.o" "gcc" "src/fl/CMakeFiles/spatl_fl.dir/server_opt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/spatl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/spatl_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/spatl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/spatl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spatl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
