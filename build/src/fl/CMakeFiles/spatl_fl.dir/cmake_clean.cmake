file(REMOVE_RECURSE
  "CMakeFiles/spatl_fl.dir/algorithm.cpp.o"
  "CMakeFiles/spatl_fl.dir/algorithm.cpp.o.d"
  "CMakeFiles/spatl_fl.dir/compression.cpp.o"
  "CMakeFiles/spatl_fl.dir/compression.cpp.o.d"
  "CMakeFiles/spatl_fl.dir/environment.cpp.o"
  "CMakeFiles/spatl_fl.dir/environment.cpp.o.d"
  "CMakeFiles/spatl_fl.dir/flat_utils.cpp.o"
  "CMakeFiles/spatl_fl.dir/flat_utils.cpp.o.d"
  "CMakeFiles/spatl_fl.dir/local_only.cpp.o"
  "CMakeFiles/spatl_fl.dir/local_only.cpp.o.d"
  "CMakeFiles/spatl_fl.dir/runner.cpp.o"
  "CMakeFiles/spatl_fl.dir/runner.cpp.o.d"
  "CMakeFiles/spatl_fl.dir/server_opt.cpp.o"
  "CMakeFiles/spatl_fl.dir/server_opt.cpp.o.d"
  "libspatl_fl.a"
  "libspatl_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatl_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
