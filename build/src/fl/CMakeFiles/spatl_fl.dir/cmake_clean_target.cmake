file(REMOVE_RECURSE
  "libspatl_fl.a"
)
