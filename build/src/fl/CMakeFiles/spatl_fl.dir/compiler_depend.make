# Empty compiler generated dependencies file for spatl_fl.
# This may be replaced when dependencies are built.
