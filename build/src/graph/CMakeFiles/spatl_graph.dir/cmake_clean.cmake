file(REMOVE_RECURSE
  "CMakeFiles/spatl_graph.dir/compute_graph.cpp.o"
  "CMakeFiles/spatl_graph.dir/compute_graph.cpp.o.d"
  "libspatl_graph.a"
  "libspatl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
