file(REMOVE_RECURSE
  "libspatl_graph.a"
)
