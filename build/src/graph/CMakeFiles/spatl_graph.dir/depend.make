# Empty dependencies file for spatl_graph.
# This may be replaced when dependencies are built.
