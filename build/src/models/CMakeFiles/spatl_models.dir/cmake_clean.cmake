file(REMOVE_RECURSE
  "CMakeFiles/spatl_models.dir/checkpoint.cpp.o"
  "CMakeFiles/spatl_models.dir/checkpoint.cpp.o.d"
  "CMakeFiles/spatl_models.dir/split_model.cpp.o"
  "CMakeFiles/spatl_models.dir/split_model.cpp.o.d"
  "libspatl_models.a"
  "libspatl_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatl_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
