file(REMOVE_RECURSE
  "libspatl_models.a"
)
