# Empty dependencies file for spatl_models.
# This may be replaced when dependencies are built.
