
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/spatl_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/spatl_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/spatl_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/spatl_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/depthwise.cpp" "src/nn/CMakeFiles/spatl_nn.dir/depthwise.cpp.o" "gcc" "src/nn/CMakeFiles/spatl_nn.dir/depthwise.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/spatl_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/spatl_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/spatl_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/spatl_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/spatl_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/spatl_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/spatl_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/spatl_nn.dir/pool.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/spatl_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/spatl_nn.dir/sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/spatl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spatl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
