file(REMOVE_RECURSE
  "CMakeFiles/spatl_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/spatl_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/spatl_nn.dir/conv.cpp.o"
  "CMakeFiles/spatl_nn.dir/conv.cpp.o.d"
  "CMakeFiles/spatl_nn.dir/depthwise.cpp.o"
  "CMakeFiles/spatl_nn.dir/depthwise.cpp.o.d"
  "CMakeFiles/spatl_nn.dir/layers.cpp.o"
  "CMakeFiles/spatl_nn.dir/layers.cpp.o.d"
  "CMakeFiles/spatl_nn.dir/module.cpp.o"
  "CMakeFiles/spatl_nn.dir/module.cpp.o.d"
  "CMakeFiles/spatl_nn.dir/optimizer.cpp.o"
  "CMakeFiles/spatl_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/spatl_nn.dir/pool.cpp.o"
  "CMakeFiles/spatl_nn.dir/pool.cpp.o.d"
  "CMakeFiles/spatl_nn.dir/sequential.cpp.o"
  "CMakeFiles/spatl_nn.dir/sequential.cpp.o.d"
  "libspatl_nn.a"
  "libspatl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
