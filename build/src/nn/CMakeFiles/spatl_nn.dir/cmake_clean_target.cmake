file(REMOVE_RECURSE
  "libspatl_nn.a"
)
