# Empty compiler generated dependencies file for spatl_nn.
# This may be replaced when dependencies are built.
