
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prune/flops.cpp" "src/prune/CMakeFiles/spatl_prune.dir/flops.cpp.o" "gcc" "src/prune/CMakeFiles/spatl_prune.dir/flops.cpp.o.d"
  "/root/repo/src/prune/pipelines.cpp" "src/prune/CMakeFiles/spatl_prune.dir/pipelines.cpp.o" "gcc" "src/prune/CMakeFiles/spatl_prune.dir/pipelines.cpp.o.d"
  "/root/repo/src/prune/saliency.cpp" "src/prune/CMakeFiles/spatl_prune.dir/saliency.cpp.o" "gcc" "src/prune/CMakeFiles/spatl_prune.dir/saliency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/spatl_models.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/spatl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/spatl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/spatl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spatl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
