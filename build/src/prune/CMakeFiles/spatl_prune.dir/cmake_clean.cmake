file(REMOVE_RECURSE
  "CMakeFiles/spatl_prune.dir/flops.cpp.o"
  "CMakeFiles/spatl_prune.dir/flops.cpp.o.d"
  "CMakeFiles/spatl_prune.dir/pipelines.cpp.o"
  "CMakeFiles/spatl_prune.dir/pipelines.cpp.o.d"
  "CMakeFiles/spatl_prune.dir/saliency.cpp.o"
  "CMakeFiles/spatl_prune.dir/saliency.cpp.o.d"
  "libspatl_prune.a"
  "libspatl_prune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatl_prune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
