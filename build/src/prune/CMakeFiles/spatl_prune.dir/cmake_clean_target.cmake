file(REMOVE_RECURSE
  "libspatl_prune.a"
)
