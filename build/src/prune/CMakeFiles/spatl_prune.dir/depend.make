# Empty dependencies file for spatl_prune.
# This may be replaced when dependencies are built.
