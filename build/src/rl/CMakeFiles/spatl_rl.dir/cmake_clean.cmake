file(REMOVE_RECURSE
  "CMakeFiles/spatl_rl.dir/policy_net.cpp.o"
  "CMakeFiles/spatl_rl.dir/policy_net.cpp.o.d"
  "CMakeFiles/spatl_rl.dir/ppo.cpp.o"
  "CMakeFiles/spatl_rl.dir/ppo.cpp.o.d"
  "CMakeFiles/spatl_rl.dir/pruning_env.cpp.o"
  "CMakeFiles/spatl_rl.dir/pruning_env.cpp.o.d"
  "libspatl_rl.a"
  "libspatl_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatl_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
