file(REMOVE_RECURSE
  "libspatl_rl.a"
)
