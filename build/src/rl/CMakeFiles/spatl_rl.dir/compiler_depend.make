# Empty compiler generated dependencies file for spatl_rl.
# This may be replaced when dependencies are built.
