file(REMOVE_RECURSE
  "CMakeFiles/spatl_tensor.dir/ops.cpp.o"
  "CMakeFiles/spatl_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/spatl_tensor.dir/serialize.cpp.o"
  "CMakeFiles/spatl_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/spatl_tensor.dir/tensor.cpp.o"
  "CMakeFiles/spatl_tensor.dir/tensor.cpp.o.d"
  "libspatl_tensor.a"
  "libspatl_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatl_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
