file(REMOVE_RECURSE
  "libspatl_tensor.a"
)
