# Empty dependencies file for spatl_tensor.
# This may be replaced when dependencies are built.
