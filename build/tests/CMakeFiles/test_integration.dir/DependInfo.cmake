
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spatl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/spatl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/spatl_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/spatl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/prune/CMakeFiles/spatl_prune.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/spatl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/spatl_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/spatl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/spatl_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spatl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
