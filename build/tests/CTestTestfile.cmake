# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_ops[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_prune[1]_include.cmake")
include("/root/repo/build/tests/test_rl[1]_include.cmake")
include("/root/repo/build/tests/test_fl[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_compression[1]_include.cmake")
include("/root/repo/build/tests/test_depthwise[1]_include.cmake")
include("/root/repo/build/tests/test_flags[1]_include.cmake")
include("/root/repo/build/tests/test_extras[1]_include.cmake")
