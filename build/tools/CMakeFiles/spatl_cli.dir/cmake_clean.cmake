file(REMOVE_RECURSE
  "CMakeFiles/spatl_cli.dir/spatl_cli.cpp.o"
  "CMakeFiles/spatl_cli.dir/spatl_cli.cpp.o.d"
  "spatl"
  "spatl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
