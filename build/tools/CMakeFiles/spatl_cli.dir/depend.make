# Empty dependencies file for spatl_cli.
# This may be replaced when dependencies are built.
