// Communication-budget planner: given a byte budget per deployment, which
// FL algorithm reaches the target accuracy within it?
//
// Uses the library's byte-accurate CommLedger at bench scale plus the
// analytic full-scale (paper-sized) per-round costs, the way an
// infrastructure team would size an edge-FL rollout.
#include <cstdio>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "common/log.hpp"
#include "core/spatl.hpp"
#include "data/synthetic.hpp"
#include "fl/runner.hpp"
#include "models/split_model.hpp"

using namespace spatl;

namespace {

double full_scale_round_bytes(const std::string& algo, double sel_fraction) {
  common::Rng rng(1);
  models::ModelConfig cfg;
  cfg.arch = "resnet20";
  cfg = cfg.full_scale();
  models::SplitModel m = models::build_model(cfg, rng);
  const double enc = double(m.encoder_param_count());
  const double full = enc + double(m.predictor_param_count());
  if (algo == "fedavg" || algo == "fedprox") return 2 * full * 4;
  if (algo == "fednova") return 3 * full * 4;
  if (algo == "scaffold") return 4 * full * 4;
  return (2 * enc + 2 * sel_fraction * enc) * 4;  // spatl
}

}  // namespace

int main() {
  common::set_log_level(common::LogLevel::kWarn);

  data::SyntheticConfig dcfg;
  dcfg.num_samples = 10 * 80;
  dcfg.image_size = 10;
  const data::Dataset source = data::make_synth_cifar(dcfg);

  fl::FlConfig cfg;
  cfg.model.arch = "resnet20";
  cfg.model.input_size = 10;
  cfg.model.width_mult = 0.25;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 16;
  cfg.local.lr = 0.05;

  const double target = 0.45;
  const std::size_t max_rounds = 25;

  std::printf("planning: ResNet-20, 10 clients, target %.0f%% accuracy\n\n",
              target * 100.0);
  std::printf("%-10s %8s %16s %20s\n", "method", "rounds",
              "bench-scale cost", "full-scale estimate");

  struct Plan {
    std::string algo;
    std::size_t rounds;
    double full_bytes;
  };
  std::vector<Plan> plans;

  for (const std::string algo :
       {"fedavg", "fedprox", "fednova", "scaffold", "spatl"}) {
    common::Rng rng(42);
    fl::FlEnvironment env(source, 10, 0.5, 0.25, rng);
    std::unique_ptr<fl::FederatedAlgorithm> algorithm;
    core::SpatlAlgorithm* spatl = nullptr;
    if (algo == "spatl") {
      core::SpatlOptions opts;
      opts.agent_finetune_rounds = 1;
      opts.agent_finetune_episodes = 2;
      auto sp = std::make_unique<core::SpatlAlgorithm>(env, cfg, opts);
      spatl = sp.get();
      algorithm = std::move(sp);
    } else {
      algorithm = fl::make_baseline(algo, env, cfg);
    }
    fl::RunOptions ro;
    ro.rounds = max_rounds;
    ro.target_accuracy = target;
    const auto result = fl::run_federated(*algorithm, ro);
    const std::size_t rounds = result.rounds_to_target.value_or(max_rounds);

    double sel = 1.0;
    if (spatl != nullptr) {
      double sp_sum = 0.0;
      for (double s : spatl->client_sparsities()) sp_sum += s;
      sel = 1.0 - sp_sum / double(spatl->client_sparsities().size());
    }
    const double full =
        full_scale_round_bytes(algo, sel) * double(rounds) * 10.0;
    plans.push_back({algo, rounds, full});
    std::printf("%-10s %7zu%s %16s %20s\n", algo.c_str(), rounds,
                result.rounds_to_target ? "" : "*",
                common::format_bytes(result.total_bytes).c_str(),
                common::format_bytes(full).c_str());
  }

  std::printf("\nbudget check at paper-scale model sizes:\n");
  for (double budget_gb : {1.0, 3.0, 10.0}) {
    std::printf("  %.0f GB budget: ", budget_gb);
    bool any = false;
    for (const auto& p : plans) {
      if (p.full_bytes <= budget_gb * 1e9) {
        std::printf("%s%s", any ? ", " : "", p.algo.c_str());
        any = true;
      }
    }
    std::printf("%s\n", any ? " fit" : "no algorithm fits");
  }
  return 0;
}
