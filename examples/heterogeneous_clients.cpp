// Heterogeneous clients: how SPATL's local predictors absorb non-IID skew.
//
// Sweeps the Dirichlet concentration (beta in {0.1, 0.5, 5.0}; lower =
// more skew), reports per-client accuracy spread for SPATL vs FedAvg, and
// demonstrates cold-client adaptation (paper eq. 4): a client that never
// participated downloads the encoder and trains only its local predictor.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/log.hpp"
#include "core/spatl.hpp"
#include "data/metrics.hpp"
#include "data/synthetic.hpp"
#include "fl/runner.hpp"

using namespace spatl;

namespace {

struct Spread {
  double mean = 0.0;
  double stddev = 0.0;
  double worst = 0.0;
};

Spread spread_of(const std::vector<double>& acc) {
  Spread s;
  for (double v : acc) s.mean += v;
  s.mean /= double(acc.size());
  for (double v : acc) s.stddev += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(s.stddev / double(acc.size()));
  s.worst = *std::min_element(acc.begin(), acc.end());
  return s;
}

}  // namespace

int main() {
  common::set_log_level(common::LogLevel::kWarn);

  data::SyntheticConfig dcfg;
  dcfg.num_samples = 10 * 100;
  dcfg.image_size = 12;
  const data::Dataset source = data::make_synth_cifar(dcfg);

  fl::FlConfig cfg;
  cfg.model.arch = "resnet20";
  cfg.model.input_size = 12;
  cfg.model.width_mult = 0.25;
  cfg.local.epochs = 3;
  cfg.local.lr = 0.05;

  std::printf("Dirichlet sweep: per-client accuracy spread after 6 rounds\n");
  std::printf("%-6s | %22s | %22s\n", "beta", "SPATL mean/std/worst",
              "FedAvg mean/std/worst");
  for (double beta : {0.1, 0.5, 5.0}) {
    common::Rng rng1(7), rng2(7);
    fl::FlEnvironment env1(source, 10, beta, 0.25, rng1);
    fl::FlEnvironment env2(source, 10, beta, 0.25, rng2);

    core::SpatlOptions opts;
    opts.agent_finetune_rounds = 1;
    opts.agent_finetune_episodes = 2;
    core::SpatlAlgorithm spatl(env1, cfg, opts);
    auto fedavg = fl::make_baseline("fedavg", env2, cfg);

    fl::RunOptions ro;
    ro.rounds = 6;
    ro.eval_every = ro.rounds;  // only final state matters here
    fl::run_federated(spatl, ro);
    fl::run_federated(*fedavg, ro);

    const Spread ss = spread_of(spatl.per_client_accuracy());
    const Spread fs = spread_of(fedavg->per_client_accuracy());
    std::printf("%-6.1f | %6.1f%% %5.1f%% %5.1f%% | %6.1f%% %5.1f%% %5.1f%%\n",
                beta, ss.mean * 100, ss.stddev * 100, ss.worst * 100,
                fs.mean * 100, fs.stddev * 100, fs.worst * 100);
  }

  // Cold-client adaptation (eq. 4): train with 9 of 10 clients, then adapt
  // the held-out client's predictor without ever uploading from it.
  std::printf("\ncold-client adaptation (paper eq. 4)\n");
  common::Rng rng(11);
  fl::FlEnvironment env(source, 10, 0.5, 0.25, rng);
  core::SpatlOptions opts;
  opts.agent_finetune_rounds = 1;
  opts.agent_finetune_episodes = 2;
  core::SpatlAlgorithm spatl(env, cfg, opts);
  fl::RunOptions ro;
  ro.rounds = 6;
  ro.sample_ratio = 0.9;  // client 9 may never participate
  ro.eval_every = ro.rounds;
  fl::run_federated(spatl, ro);

  const double before = spatl.per_client_accuracy()[9];
  const double after = spatl.adapt_cold_client(9, /*epochs=*/4);
  std::printf("  client 9 accuracy: %.1f%% before adaptation, %.1f%% after "
              "predictor-only training\n",
              before * 100.0, after * 100.0);

  // Per-class view of the adapted client: non-IID shards leave some classes
  // nearly unseen locally, which top-1 accuracy alone hides.
  const auto cm =
      data::evaluate_confusion(spatl.client_model(9), env.client(9).val);
  std::printf("  client 9 after adaptation: top-1 %.1f%%, macro-F1 %.2f\n",
              cm.accuracy() * 100.0, cm.macro_f1());
  std::printf("  per-class recall:");
  for (std::size_t c = 0; c < cm.num_classes(); ++c) {
    std::printf(" %.0f%%", cm.recall(int(c)) * 100.0);
  }
  std::printf("\n");
  return 0;
}
