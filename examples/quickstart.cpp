// Quickstart: train SPATL on a small synthetic non-IID federation and
// compare against FedAvg on the two axes the paper optimizes — accuracy
// under heterogeneity, and communication spent to reach a target accuracy.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "common/log.hpp"
#include "common/units.hpp"
#include "core/spatl.hpp"
#include "data/synthetic.hpp"
#include "fl/runner.hpp"

using namespace spatl;

int main() {
  common::set_log_level(common::LogLevel::kWarn);

  // 1. A CIFAR-like synthetic dataset, split across 8 clients with strong
  //    Dirichlet(0.25) label skew — the regime federated personalization
  //    is built for.
  data::SyntheticConfig dcfg;
  dcfg.num_samples = 8 * 100;
  dcfg.image_size = 12;
  const data::Dataset source = data::make_synth_cifar(dcfg);

  // 2. A ResNet-20 encoder/predictor pair, CPU-sized.
  fl::FlConfig cfg;
  cfg.model.arch = "resnet20";
  cfg.model.input_size = 12;
  cfg.model.width_mult = 0.25;
  cfg.local.epochs = 3;
  cfg.local.batch_size = 16;
  cfg.local.lr = 0.05;

  const double target = 0.45;
  const std::size_t max_rounds = 14;

  struct Outcome {
    std::string name;
    fl::RunResult result;
  };
  std::vector<Outcome> outcomes;

  // 3. SPATL: salient selection + knowledge transfer + gradient control.
  {
    common::Rng rng(42);
    fl::FlEnvironment env(source, 8, /*beta=*/0.25, 0.25, rng);
    core::SpatlOptions opts;
    opts.flops_budget = 0.7;
    opts.agent_finetune_rounds = 2;
    opts.agent_finetune_episodes = 2;
    core::SpatlAlgorithm spatl(env, cfg, opts);
    fl::RunOptions ro;
    ro.rounds = max_rounds;
    ro.target_accuracy = target;
    std::printf("training SPATL (ResNet-20, 8 clients, Dirichlet 0.25)...\n");
    outcomes.push_back(
        {"SPATL", fl::run_federated(spatl, ro,
                                    [](std::size_t round,
                                       const fl::RoundRecord& rec) {
                                      std::printf(
                                          "  round %2zu: avg accuracy %5.1f%%"
                                          "  (%s sent)\n",
                                          round, rec.avg_accuracy * 100.0,
                                          common::format_bytes(
                                              rec.cumulative_bytes)
                                              .c_str());
                                    })});
  }

  // 4. The FedAvg reference under the identical federation.
  {
    common::Rng rng(42);
    fl::FlEnvironment env(source, 8, 0.25, 0.25, rng);
    auto fedavg = fl::make_baseline("fedavg", env, cfg);
    fl::RunOptions ro;
    ro.rounds = max_rounds;
    ro.target_accuracy = target;
    std::printf("training FedAvg on the same federation...\n");
    outcomes.push_back({"FedAvg", fl::run_federated(*fedavg, ro)});
  }

  std::printf("\nreaching %.0f%% average client accuracy:\n", target * 100.0);
  for (const auto& o : outcomes) {
    if (o.result.rounds_to_target) {
      std::printf("  %-6s: %2zu rounds, %s communicated\n", o.name.c_str(),
                  *o.result.rounds_to_target,
                  common::format_bytes(o.result.total_bytes).c_str());
    } else {
      std::printf("  %-6s: not reached in %zu rounds (best %.1f%%, %s)\n",
                  o.name.c_str(), max_rounds,
                  o.result.best_accuracy * 100.0,
                  common::format_bytes(o.result.total_bytes).c_str());
    }
  }
  return 0;
}
