// Standalone use of the salient-parameter selection agent as a network
// pruner (the paper's §IV-B task, outside of federated learning).
//
// Pre-trains the GNN-PPO agent on a ResNet-56 pruning task, then transfers
// it to a ResNet-20 and prunes to a FLOPs budget, comparing against L1
// magnitude pruning.
#include <cstdio>

#include "common/log.hpp"
#include "common/units.hpp"
#include "core/transfer.hpp"
#include "data/loader.hpp"
#include "data/synthetic.hpp"
#include "prune/flops.hpp"
#include "prune/pipelines.hpp"

using namespace spatl;

int main() {
  common::set_log_level(common::LogLevel::kWarn);

  // 1. Pre-train the agent on ResNet-56 pruning (scaled-down).
  core::PretrainConfig pc;
  pc.arch = "resnet56";
  pc.input_size = 10;
  pc.width_mult = 0.25;
  pc.warmup_epochs = 2;
  pc.rl_rounds = 8;
  pc.episodes_per_round = 3;
  std::printf("pre-training selection agent on ResNet-56...\n");
  auto pre = core::pretrain_selection_agent(pc);
  std::printf("  best pruning reward during pre-training: %.1f%%\n",
              pre.history.best_reward * 100.0);

  // 2. A trained ResNet-20 to prune.
  data::SyntheticConfig dcfg;
  dcfg.num_samples = 500;
  dcfg.image_size = 10;
  const data::Dataset all = data::make_synth_cifar(dcfg);
  const data::Dataset train = all.slice(0, 400);
  const data::Dataset test = all.slice(400, 500);

  models::ModelConfig mcfg;
  mcfg.arch = "resnet20";
  mcfg.input_size = 10;
  mcfg.width_mult = 0.25;
  common::Rng rng(3);
  models::SplitModel model = models::build_model(mcfg, rng);
  data::TrainOptions topts;
  topts.epochs = 6;
  topts.lr = 0.05;
  data::train_supervised(model, train, topts, rng, model.all_params());
  const double dense_acc = data::evaluate(model, test).accuracy;
  const double dense_flops = prune::dense_encoder_flops(model.layers());
  std::printf("\ndense ResNet-20: accuracy %.1f%%, %s FLOPs\n",
              dense_acc * 100.0,
              common::format_count(dense_flops).c_str());

  // 3. Agent-driven pruning: fine-tune the transferred agent's heads on
  //    this model's pruning environment, then deploy the best policy.
  rl::PruningEnvConfig ecfg;
  ecfg.flops_budget = 0.6;
  rl::PruningEnv env(model, test, ecfg);
  rl::PpoAgent agent = pre.agent.clone(17);
  agent.set_finetune(true);
  const auto hist = rl::train_on_pruning(agent, env, /*rounds=*/6,
                                         /*episodes_per_round=*/3);
  prune::apply_sparsities(model, hist.best_sparsities,
                          prune::Criterion::kL2);
  const double agent_acc = data::evaluate(model, test).accuracy;
  const double agent_ratio =
      prune::encoder_flops(model) / dense_flops;
  std::printf("agent pruning : accuracy %.1f%% at %.0f%% of dense FLOPs\n",
              agent_acc * 100.0, agent_ratio * 100.0);

  // 4. L1 one-shot reference at matched sparsity.
  model.reset_gates();
  const double sparsity = prune::overall_sparsity(model) + 0.4;
  common::Rng prng(7);
  data::TrainOptions tune = topts;
  tune.epochs = 0;
  const auto l1 = prune::one_shot_prune_and_finetune(
      model, train, test, prune::Criterion::kL1, sparsity,
      /*finetune_epochs=*/0, tune, prng);
  std::printf("l1 one-shot   : accuracy %.1f%% at %.0f%% of dense FLOPs\n",
              l1.accuracy * 100.0, l1.flops_ratio * 100.0);
  return 0;
}
