#!/usr/bin/env bash
# Sanitizer gate: build the whole tree under AddressSanitizer +
# UndefinedBehaviorSanitizer and run the test suite. Catches the memory and
# UB bugs the plain Release build hides. Usage:
#
#   scripts/check.sh [build-dir]    # default build dir: build-sanitize
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPATL_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error so UBSan findings fail the suite instead of scrolling by.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=0"  # models free at exit; leaks are noise here

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
echo "sanitizer check passed"
