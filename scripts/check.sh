#!/usr/bin/env bash
# Verification tiers. See DESIGN.md §9.
#
#   scripts/check.sh [--san] [build-dir]   sanitizer tier (default): build the
#       whole tree under AddressSanitizer + UndefinedBehaviorSanitizer with
#       SPATL_DCHECK invariants on and leak detection enabled, and run the
#       full test suite. Default build dir: build-sanitize.
#
#   scripts/check.sh --fast [build-dir]    tier-1 only: plain Release build +
#       ctest, no sanitizers. The quick pre-commit loop. Default: build.
#       New suites register through tests/CMakeLists.txt and ride along
#       automatically (e.g. tests/test_async.cpp's semi-async buffer,
#       quorum-attribution, and mid-buffer resume suites,
#       tests/test_churn.cpp's churn / admission / retry / failover /
#       alert suites, and tests/test_store.cpp's durable-store /
#       storage-chaos suites plus the bench_chaos smoke drill).
#
#   scripts/check.sh --thread [build-dir]  race tier: ThreadSanitizer build
#       (TSan cannot be combined with ASan, so it gets its own tree) running
#       the full suite, including tests/test_concurrency.cpp stress tests and
#       tests/test_observability.cpp's concurrent metrics-registry merge
#       probe. Default build dir: build-tsan.
#
#   scripts/check.sh --lint [build-dir]    static tier: spatl_lint repo
#       invariants (always) + clang-tidy over src/ against the exported
#       compile_commands.json (when clang-tidy is installed; its major
#       version must match CLANG_TIDY_MAJOR_PIN below or the tier fails
#       loudly). Default: build.
#
#   scripts/check.sh --all                 every tier in sequence — the
#       pre-merge gate.
#
# All tiers configure with SPATL_WERROR=ON: warnings fail the gate.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="san"
case "${1:-}" in
  --fast|--san|--thread|--lint|--all) MODE="${1#--}"; shift ;;
esac

NPROC="$(nproc)"

run_fast() {
  local dir="${1:-build}"
  cmake -B "$dir" -S . -DSPATL_WERROR=ON
  cmake --build "$dir" -j "$NPROC"
  ctest --test-dir "$dir" --output-on-failure -j "$NPROC"
  echo "fast check passed"
}

run_san() {
  local dir="${1:-build-sanitize}"
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPATL_SANITIZE=address,undefined \
    -DSPATL_DEBUG_CHECKS=ON \
    -DSPATL_WERROR=ON
  cmake --build "$dir" -j "$NPROC"
  # halt_on_error so UBSan findings fail the suite instead of scrolling by.
  UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
  ASAN_OPTIONS="detect_leaks=1" \
    ctest --test-dir "$dir" --output-on-failure -j "$NPROC"
  echo "sanitizer check passed"
}

run_thread() {
  local dir="${1:-build-tsan}"
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPATL_SANITIZE=thread \
    -DSPATL_DEBUG_CHECKS=ON \
    -DSPATL_WERROR=ON
  cmake --build "$dir" -j "$NPROC"
  TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
    ctest --test-dir "$dir" --output-on-failure -j "$NPROC"
  echo "thread-sanitizer check passed"
}

# clang-tidy is an optional tier, but when it runs it must run a known
# checker set: different majors enable different checks, so an unpinned
# binary silently diverges between machines. Bump deliberately, in lockstep
# with a clean run over the tree.
CLANG_TIDY_MAJOR_PIN=18

run_lint() {
  local dir="${1:-build}"
  cmake -B "$dir" -S . -DSPATL_WERROR=ON
  cmake --build "$dir" -j "$NPROC" --target spatl_lint
  "$dir"/tools/spatl_lint .
  if command -v clang-tidy >/dev/null 2>&1; then
    # Fail loudly on version drift instead of quietly linting with a
    # different checker set than the pin was validated against.
    local major
    major="$(clang-tidy --version | sed -n 's/.*version \([0-9][0-9]*\)\..*/\1/p' | head -n 1)"
    if [ -z "$major" ]; then
      echo "error: cannot parse clang-tidy version (wanted major $CLANG_TIDY_MAJOR_PIN)" >&2
      exit 1
    fi
    if [ "$major" != "$CLANG_TIDY_MAJOR_PIN" ]; then
      echo "error: clang-tidy major version $major != pinned $CLANG_TIDY_MAJOR_PIN" >&2
      echo "       (update CLANG_TIDY_MAJOR_PIN in scripts/check.sh together with a clean run)" >&2
      exit 1
    fi
    # .clang-tidy at the repo root selects bugprone/concurrency/performance.
    find src -name '*.cpp' -print0 |
      xargs -0 -P "$NPROC" -n 8 clang-tidy -p "$dir" --quiet
    echo "clang-tidy $major passed"
  else
    echo "clang-tidy not installed; skipped (spatl_lint still enforced)"
  fi
  echo "lint check passed"
}

case "$MODE" in
  fast)   run_fast "${1:-}" ;;
  san)    run_san "${1:-}" ;;
  thread) run_thread "${1:-}" ;;
  lint)   run_lint "${1:-}" ;;
  all)
    run_fast
    run_san
    run_thread
    run_lint
    echo "all check tiers passed"
    ;;
esac
