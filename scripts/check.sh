#!/usr/bin/env bash
# Verification gates.
#
#   scripts/check.sh [build-dir]         sanitizer tier (default): build the
#       whole tree under AddressSanitizer + UndefinedBehaviorSanitizer and
#       run the test suite. Catches the memory and UB bugs the plain
#       Release build hides. Default build dir: build-sanitize.
#
#   scripts/check.sh --fast [build-dir]  tier-1 only: plain Release build +
#       ctest, no sanitizers. The quick pre-commit loop; the sanitizer tier
#       stays the merge gate. Default build dir: build.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
  shift
fi

if [[ "$FAST" == "1" ]]; then
  BUILD_DIR="${1:-build}"
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$(nproc)"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
  echo "fast check passed"
  exit 0
fi

BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPATL_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error so UBSan findings fail the suite instead of scrolling by.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=0"  # models free at exit; leaks are noise here

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
echo "sanitizer check passed"
