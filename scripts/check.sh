#!/usr/bin/env bash
# Verification tiers. See DESIGN.md §9.
#
#   scripts/check.sh [--san] [build-dir]   sanitizer tier (default): build the
#       whole tree under AddressSanitizer + UndefinedBehaviorSanitizer with
#       SPATL_DCHECK invariants on and leak detection enabled, and run the
#       full test suite. Default build dir: build-sanitize.
#
#   scripts/check.sh --fast [build-dir]    tier-1 only: plain Release build +
#       ctest, no sanitizers. The quick pre-commit loop. Default: build.
#       New suites register through tests/CMakeLists.txt and ride along
#       automatically (e.g. tests/test_async.cpp's semi-async buffer,
#       quorum-attribution, and mid-buffer resume suites, and
#       tests/test_churn.cpp's churn / admission / retry / failover /
#       alert suites).
#
#   scripts/check.sh --thread [build-dir]  race tier: ThreadSanitizer build
#       (TSan cannot be combined with ASan, so it gets its own tree) running
#       the full suite, including tests/test_concurrency.cpp stress tests and
#       tests/test_observability.cpp's concurrent metrics-registry merge
#       probe. Default build dir: build-tsan.
#
#   scripts/check.sh --lint [build-dir]    static tier: spatl_lint repo
#       invariants (always) + clang-tidy over src/ against the exported
#       compile_commands.json (when clang-tidy is installed). Default: build.
#
#   scripts/check.sh --all                 every tier in sequence — the
#       pre-merge gate.
#
# All tiers configure with SPATL_WERROR=ON: warnings fail the gate.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="san"
case "${1:-}" in
  --fast|--san|--thread|--lint|--all) MODE="${1#--}"; shift ;;
esac

NPROC="$(nproc)"

run_fast() {
  local dir="${1:-build}"
  cmake -B "$dir" -S . -DSPATL_WERROR=ON
  cmake --build "$dir" -j "$NPROC"
  ctest --test-dir "$dir" --output-on-failure -j "$NPROC"
  echo "fast check passed"
}

run_san() {
  local dir="${1:-build-sanitize}"
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPATL_SANITIZE=address,undefined \
    -DSPATL_DEBUG_CHECKS=ON \
    -DSPATL_WERROR=ON
  cmake --build "$dir" -j "$NPROC"
  # halt_on_error so UBSan findings fail the suite instead of scrolling by.
  UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
  ASAN_OPTIONS="detect_leaks=1" \
    ctest --test-dir "$dir" --output-on-failure -j "$NPROC"
  echo "sanitizer check passed"
}

run_thread() {
  local dir="${1:-build-tsan}"
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPATL_SANITIZE=thread \
    -DSPATL_DEBUG_CHECKS=ON \
    -DSPATL_WERROR=ON
  cmake --build "$dir" -j "$NPROC"
  TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
    ctest --test-dir "$dir" --output-on-failure -j "$NPROC"
  echo "thread-sanitizer check passed"
}

run_lint() {
  local dir="${1:-build}"
  cmake -B "$dir" -S . -DSPATL_WERROR=ON
  cmake --build "$dir" -j "$NPROC" --target spatl_lint
  "$dir"/tools/spatl_lint .
  if command -v clang-tidy >/dev/null 2>&1; then
    # .clang-tidy at the repo root selects bugprone/concurrency/performance.
    find src -name '*.cpp' -print0 |
      xargs -0 -P "$NPROC" -n 8 clang-tidy -p "$dir" --quiet
    echo "clang-tidy passed"
  else
    echo "clang-tidy not installed; skipped (spatl_lint still enforced)"
  fi
  echo "lint check passed"
}

case "$MODE" in
  fast)   run_fast "${1:-}" ;;
  san)    run_san "${1:-}" ;;
  thread) run_thread "${1:-}" ;;
  lint)   run_lint "${1:-}" ;;
  all)
    run_fast
    run_san
    run_thread
    run_lint
    echo "all check tiers passed"
    ;;
esac
