#!/usr/bin/env bash
# Verification tiers. See DESIGN.md §9.
#
#   scripts/check.sh [--san] [build-dir]   sanitizer tier (default): build the
#       whole tree under AddressSanitizer + UndefinedBehaviorSanitizer with
#       SPATL_DCHECK invariants on and leak detection enabled, and run the
#       full test suite. Default build dir: build-sanitize.
#
#   scripts/check.sh --fast [build-dir]    tier-1 only: plain Release build +
#       ctest, no sanitizers. The quick pre-commit loop. Default: build.
#       New suites register through tests/CMakeLists.txt and ride along
#       automatically (e.g. tests/test_async.cpp's semi-async buffer,
#       quorum-attribution, and mid-buffer resume suites,
#       tests/test_churn.cpp's churn / admission / retry / failover /
#       alert suites, and tests/test_store.cpp's durable-store /
#       storage-chaos suites plus the bench_chaos smoke drill).
#
#   scripts/check.sh --thread [build-dir]  race tier: ThreadSanitizer build
#       (TSan cannot be combined with ASan, so it gets its own tree) running
#       the full suite, including tests/test_concurrency.cpp stress tests and
#       tests/test_observability.cpp's concurrent metrics-registry merge
#       probe. Default build dir: build-tsan.
#
#   scripts/check.sh --lint [build-dir]    static tier: the project-aware
#       spatl_lint passes (legacy per-file rules, include-graph layering,
#       checkpoint-coverage audit, RNG stream discipline) gated on the
#       checked-in baseline tools/analysis/lint_baseline.txt — any
#       non-baselined finding fails the tier, per-rule counts are printed,
#       and a SARIF 2.1.0 report lands in <build-dir>/spatl_lint.sarif —
#       plus clang-tidy over src/ against the exported
#       compile_commands.json (when clang-tidy is installed; its major
#       version must match CLANG_TIDY_MAJOR_PIN below or the tier fails
#       loudly). Default: build.
#
#   scripts/check.sh --coverage [build-dir]  coverage tier: Debug build with
#       SPATL_COVERAGE=ON (gcov instrumentation), full ctest run, then a
#       per-file line-coverage table over src/ with a TOTAL row. Slower
#       than --fast and advisory (no threshold gate), so it is NOT part of
#       --all. Default build dir: build-coverage.
#
#   scripts/check.sh --perf [build-dir]    perf tier: Release build of the
#       bench_perf kernel microbenches (GEMM, conv, robust aggregation,
#       checkpoint packing, store commit), run once per compute backend
#       (scalar and, where the CPU supports it, cpu-simd) with min-of-N
#       timings written to <build-dir>/BENCH_PERF.<backend>.json and gated
#       by scripts/perf_gate.py against the matching
#       bench/baselines/BENCH_PERF.<backend>.baseline.json; then the
#       bench_kernels backend x shape sweep enforcing the SIMD conv forward
#       speedup floor. Machine-dependent by nature, so it is NOT part of
#       --all; tolerances in the baselines are sized for laptop-class
#       variance. Refresh a baseline by copying a clean
#       BENCH_PERF.<backend>.json over it on a quiet machine. Default:
#       build.
#
#   scripts/check.sh --all                 every tier in sequence — the
#       pre-merge gate (coverage and perf excluded: advisory/machine-
#       dependent, not merge gates).
#
# All tiers configure with SPATL_WERROR=ON: warnings fail the gate.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="san"
case "${1:-}" in
  --fast|--san|--thread|--lint|--coverage|--perf|--all) MODE="${1#--}"; shift ;;
esac

NPROC="$(nproc)"

run_fast() {
  local dir="${1:-build}"
  cmake -B "$dir" -S . -DSPATL_WERROR=ON
  cmake --build "$dir" -j "$NPROC"
  ctest --test-dir "$dir" --output-on-failure -j "$NPROC"
  echo "fast check passed"
}

run_san() {
  local dir="${1:-build-sanitize}"
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPATL_SANITIZE=address,undefined \
    -DSPATL_DEBUG_CHECKS=ON \
    -DSPATL_WERROR=ON
  cmake --build "$dir" -j "$NPROC"
  # halt_on_error so UBSan findings fail the suite instead of scrolling by.
  UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
  ASAN_OPTIONS="detect_leaks=1" \
    ctest --test-dir "$dir" --output-on-failure -j "$NPROC"
  echo "sanitizer check passed"
}

run_thread() {
  local dir="${1:-build-tsan}"
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPATL_SANITIZE=thread \
    -DSPATL_DEBUG_CHECKS=ON \
    -DSPATL_WERROR=ON
  cmake --build "$dir" -j "$NPROC"
  TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
    ctest --test-dir "$dir" --output-on-failure -j "$NPROC"
  echo "thread-sanitizer check passed"
}

# clang-tidy is an optional tier, but when it runs it must run a known
# checker set: different majors enable different checks, so an unpinned
# binary silently diverges between machines. Bump deliberately, in lockstep
# with a clean run over the tree.
CLANG_TIDY_MAJOR_PIN=18

run_lint() {
  local dir="${1:-build}"
  cmake -B "$dir" -S . -DSPATL_WERROR=ON
  cmake --build "$dir" -j "$NPROC" --target spatl_lint
  # Gated on tools/analysis/lint_baseline.txt (picked up automatically):
  # exits non-zero on any non-baselined finding, prints per-rule counts,
  # and writes a SARIF 2.1.0 report for code-scanning consumers.
  "$dir"/tools/spatl_lint --sarif "$dir"/spatl_lint.sarif .
  if command -v clang-tidy >/dev/null 2>&1; then
    # Fail loudly on version drift instead of quietly linting with a
    # different checker set than the pin was validated against.
    local major
    major="$(clang-tidy --version | sed -n 's/.*version \([0-9][0-9]*\)\..*/\1/p' | head -n 1)"
    if [ -z "$major" ]; then
      echo "error: cannot parse clang-tidy version (wanted major $CLANG_TIDY_MAJOR_PIN)" >&2
      exit 1
    fi
    if [ "$major" != "$CLANG_TIDY_MAJOR_PIN" ]; then
      echo "error: clang-tidy major version $major != pinned $CLANG_TIDY_MAJOR_PIN" >&2
      echo "       (update CLANG_TIDY_MAJOR_PIN in scripts/check.sh together with a clean run)" >&2
      exit 1
    fi
    # .clang-tidy at the repo root selects bugprone/concurrency/performance.
    find src -name '*.cpp' -print0 |
      xargs -0 -P "$NPROC" -n 8 clang-tidy -p "$dir" --quiet
    echo "clang-tidy $major passed"
  else
    echo "clang-tidy not installed; skipped (spatl_lint still enforced)"
  fi
  echo "lint check passed"
}

run_coverage() {
  local dir="${1:-build-coverage}"
  if ! command -v gcov >/dev/null 2>&1; then
    echo "error: gcov not found (needed for the coverage tier)" >&2
    exit 1
  fi
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DSPATL_COVERAGE=ON \
    -DSPATL_WERROR=ON
  # Stale counters from a previous run would inflate the numbers.
  find "$dir" -name '*.gcda' -delete
  cmake --build "$dir" -j "$NPROC"
  ctest --test-dir "$dir" --output-on-failure -j "$NPROC"

  local root dir_abs scratch
  root="$(pwd)"
  dir_abs="$(cd "$dir" && pwd)"
  # gcov spews one .gcov per source next to its cwd — contain the spam.
  scratch="$dir_abs/coverage-scratch"
  rm -rf "$scratch"
  mkdir -p "$scratch"
  find "$dir_abs/src" -name '*.gcda' -print0 |
    (cd "$scratch" && xargs -0 gcov -r -s "$root" 2>/dev/null) |
    awk '
      /^File / { f = $2; gsub("\047", "", f) }
      /^Lines executed:/ {
        split($0, a, /[:% ]+/)  # "Lines executed:NN.NN% of M"
        if (f ~ /^src\// && a[5] + 0 > lines[f] + 0) {
          lines[f] = a[5]
          pct[f] = a[3]
        }
      }
      END {
        for (f in lines) printf "%s %d %.2f\n", f, lines[f], pct[f]
      }' |
    sort |
    awk '
      { printf "  %6.1f%%  %6d  %s\n", $3, $2, $1
        t += $2; h += $2 * $3 / 100 }
      END {
        if (t > 0) printf "  %6.1f%%  %6d  TOTAL (line coverage, src/)\n",
                          h / t * 100, t
      }'
  echo "coverage report done (objects in $dir, .gcov files in $scratch)"
}

run_perf() {
  local dir="${1:-build}"
  cmake -B "$dir" -S . -DSPATL_WERROR=ON
  cmake --build "$dir" -j "$NPROC" --target bench_perf bench_kernels
  # Full min-of-N sweep per compute backend (a smoke run makes no wall-time
  # claim and would be rejected by the gate). Each backend gates against its
  # own baseline: scalar and cpu-simd timings differ by design, and
  # perf_gate.py refuses a backend-mismatched comparison.
  local backend
  for backend in scalar cpu-simd; do
    "$dir"/bench/bench_perf --backend "$backend" \
      --out "$dir"/BENCH_PERF."$backend".json
    # On hardware without AVX2/FMA the cpu-simd request falls back to the
    # scalar context and stamps "scalar" into the JSON; skip the gate there
    # rather than comparing scalar timings against the SIMD baseline.
    if [ "$backend" = "cpu-simd" ] && \
       ! grep -q '"backend": *"cpu-simd"' "$dir"/BENCH_PERF."$backend".json
    then
      echo "perf: cpu-simd unsupported on this CPU; gate skipped"
      continue
    fi
    python3 scripts/perf_gate.py "$dir"/BENCH_PERF."$backend".json \
      bench/baselines/BENCH_PERF."$backend".baseline.json
  done
  # Backend x shape sweep with the SIMD conv acceptance floor (self-skips
  # on hardware without AVX2/FMA).
  "$dir"/bench/bench_kernels --min-conv-speedup 4 \
    --out "$dir"/BENCH_KERNELS.csv
  echo "perf check passed"
}

case "$MODE" in
  fast)   run_fast "${1:-}" ;;
  san)    run_san "${1:-}" ;;
  thread) run_thread "${1:-}" ;;
  lint)   run_lint "${1:-}" ;;
  coverage) run_coverage "${1:-}" ;;
  perf)   run_perf "${1:-}" ;;
  all)
    run_fast
    run_san
    run_thread
    run_lint
    echo "all check tiers passed"
    ;;
esac
