#!/usr/bin/env python3
"""Performance regression gate over bench_perf output.

    python3 scripts/perf_gate.py <current.json> <baseline.json>

Both files are "spatl-bench-perf-v1" documents and must agree on their
"backend" stamp (timings are only comparable within one compute backend;
documents without the field default to "scalar"). The baseline additionally
carries tolerances: `tolerance_default` (fractional headroom applied to
every kernel) and per-kernel overrides under `tolerances` for kernels with
inherently noisier timings (disk-bound store commits, for example).

A kernel FAILS when

    current.min_ns_per_rep > baseline.min_ns_per_rep * (1 + tolerance)

Missing kernels fail too (a silently dropped kernel must not pass the
gate), as do handicapped or smoke-mode current runs — those make no honest
wall-time claim. Exit codes: 0 pass, 1 regression, 2 bad input.
"""

import json
import sys

SCHEMA = "spatl-bench-perf-v1"


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != SCHEMA:
        print(f"perf_gate: {path} is not a {SCHEMA} document", file=sys.stderr)
        sys.exit(2)
    return doc


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    current = load(argv[1])
    baseline = load(argv[2])

    if current.get("mode") != "full":
        print("perf_gate: current run is not a full sweep (smoke mode makes "
              "no wall-time claims)", file=sys.stderr)
        return 2
    # Timings are only comparable within one compute backend; a scalar run
    # must never be judged against the cpu-simd baseline or vice versa.
    # Pre-backend documents carry no field and default to scalar.
    cur_backend = current.get("backend", "scalar")
    base_backend = baseline.get("backend", "scalar")
    if cur_backend != base_backend:
        print(f"perf_gate: backend mismatch — current run is '{cur_backend}' "
              f"but baseline is '{base_backend}'", file=sys.stderr)
        return 2
    handicapped = [
        name for name, k in current.get("kernels", {}).items()
        if "handicap" in k
    ]
    if handicapped:
        print(f"perf_gate: current run is handicapped ({', '.join(handicapped)}) "
              "— measurements are synthetic", file=sys.stderr)
        # A handicapped run still flows through the comparison below: the
        # handicap exists precisely to demonstrate the failure path.

    tol_default = float(baseline.get("tolerance_default", 1.0))
    tol_overrides = baseline.get("tolerances", {})

    failures = 0
    print(f"{'kernel':<16}{'baseline ns':>14}{'current ns':>14}"
          f"{'limit ns':>14}{'tol':>7}  verdict")
    for name, base in sorted(baseline.get("kernels", {}).items()):
        base_ns = float(base["min_ns_per_rep"])
        tol = float(tol_overrides.get(name, tol_default))
        limit = base_ns * (1.0 + tol)
        cur = current.get("kernels", {}).get(name)
        if cur is None:
            print(f"{name:<16}{base_ns:>14.0f}{'missing':>14}{limit:>14.0f}"
                  f"{tol:>7.2f}  FAIL (kernel absent from current run)")
            failures += 1
            continue
        cur_ns = float(cur["min_ns_per_rep"])
        verdict = "ok" if cur_ns <= limit else "FAIL"
        if verdict == "FAIL":
            failures += 1
        print(f"{name:<16}{base_ns:>14.0f}{cur_ns:>14.0f}{limit:>14.0f}"
              f"{tol:>7.2f}  {verdict}")

    extra = sorted(set(current.get("kernels", {})) -
                   set(baseline.get("kernels", {})))
    if extra:
        print(f"note: kernels not in baseline (unchecked): {', '.join(extra)}")

    if failures:
        print(f"perf gate FAILED: {failures} kernel(s) regressed beyond "
              "tolerance", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
