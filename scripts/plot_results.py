#!/usr/bin/env python3
"""ASCII plots for the bench CSVs (no third-party dependencies).

Usage:
    python3 scripts/plot_results.py bench_learning_efficiency.csv
    python3 scripts/plot_results.py bench_ablation_gradctrl.csv

Auto-detects the common schemas: any CSV with (series-key..., round, value)
columns is rendered as one ASCII curve per series; plain row tables are
pretty-printed.
"""
import csv
import sys

HEIGHT = 12
WIDTH = 64

# Column names that identify the x-axis and y-axis in the bench CSVs.
X_CANDIDATES = ("round", "update_round", "clients")
Y_CANDIDATES = ("avg_accuracy", "accuracy", "avg_reward", "round_wall_ms")


def load(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    if not rows:
        sys.exit(f"{path}: empty")
    return rows


def pick_axes(rows):
    cols = rows[0].keys()
    x = next((c for c in X_CANDIDATES if c in cols), None)
    y = next((c for c in Y_CANDIDATES if c in cols), None)
    return x, y


def categorical_columns(rows, x, y):
    """Columns that identify a series: non-axis columns whose values are
    not all numeric (extra numeric measure columns are ignored)."""
    cols = []
    for c in rows[0].keys():
        if c in (x, y):
            continue
        numeric = True
        for r in rows:
            try:
                float(r[c])
            except ValueError:
                numeric = False
                break
        if not numeric:
            cols.append(c)
    return cols


def series_key(row, key_cols):
    return tuple(row[c] for c in key_cols)


def ascii_plot(series, x_label, y_label):
    all_pts = [p for pts in series.values() for p in pts]
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1

    grid = [[" "] * WIDTH for _ in range(HEIGHT)]
    marks = "ox+*#@%&"
    legend = []
    for i, (key, pts) in enumerate(sorted(series.items())):
        mark = marks[i % len(marks)]
        legend.append(f"  {mark} {' / '.join(key)}")
        for px, py in pts:
            cx = int((px - x0) / (x1 - x0) * (WIDTH - 1))
            cy = int((py - y0) / (y1 - y0) * (HEIGHT - 1))
            grid[HEIGHT - 1 - cy][cx] = mark

    print(f"{y_label} (range {y0:.3g} .. {y1:.3g})")
    for line in grid:
        print("|" + "".join(line))
    print("+" + "-" * WIDTH)
    print(f" {x_label}: {x0:.3g} .. {x1:.3g}")
    print("\n".join(legend))


def pretty_table(rows):
    cols = list(rows[0].keys())
    widths = [max(len(c), *(len(r[c]) for r in rows)) for c in cols]
    print("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    for r in rows:
        print("  ".join(r[c].ljust(w) for c, w in zip(cols, widths)))


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    rows = load(sys.argv[1])
    x, y = pick_axes(rows)
    if x is None or y is None:
        pretty_table(rows)
        return
    key_cols = categorical_columns(rows, x, y)
    series = {}
    for row in rows:
        try:
            pt = (float(row[x]), float(row[y]))
        except ValueError:
            continue
        series.setdefault(series_key(row, key_cols), []).append(pt)
    ascii_plot(series, x, y)


if __name__ == "__main__":
    main()
