// Debug invariant checks: SPATL_DCHECK / SPATL_DCHECK_SHAPE /
// SPATL_DCHECK_FINITE.
//
// All three macros compile to nothing unless SPATL_DEBUG_CHECKS is defined
// (cmake -DSPATL_DEBUG_CHECKS=ON; the sanitizer tiers of scripts/check.sh
// turn it on). When enabled, a failing check throws std::logic_error with
// the expression, file and line — throwing (rather than aborting) keeps the
// checks testable and lets the federated runner's round-level recovery
// exercise them. Arguments are NOT evaluated when checks are disabled, so
// never put side effects inside a check.
#pragma once

#include <cmath>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>

namespace spatl::common {

[[noreturn]] inline void dcheck_fail(const char* kind, const char* expr,
                                     const char* file, int line,
                                     const std::string& detail = {}) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!detail.empty()) os << " (" << detail << ")";
  throw std::logic_error(os.str());
}

/// True when every element of the range is finite (no NaN/Inf). Works on
/// anything with begin/end over arithmetic values: std::span, std::vector,
/// Tensor::span().
template <typename Range>
bool range_all_finite(const Range& r) {
  for (const auto v : r) {
    if (!std::isfinite(static_cast<double>(v))) return false;
  }
  return true;
}

}  // namespace spatl::common

#if defined(SPATL_DEBUG_CHECKS)

#define SPATL_DCHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::spatl::common::dcheck_fail("SPATL_DCHECK", #cond, __FILE__,     \
                                   __LINE__);                           \
    }                                                                   \
  } while (0)

/// Compares two shape-like values with operator==. Wrap braced initializers
/// in parentheses: SPATL_DCHECK_SHAPE(t.shape(), (Shape{n, c})).
#define SPATL_DCHECK_SHAPE(actual, expected)                            \
  do {                                                                  \
    if (!((actual) == (expected))) {                                    \
      ::spatl::common::dcheck_fail("SPATL_DCHECK_SHAPE",                \
                                   #actual " == " #expected, __FILE__,  \
                                   __LINE__);                           \
    }                                                                   \
  } while (0)

/// Range must contain only finite values (no NaN/Inf).
#define SPATL_DCHECK_FINITE(range)                                      \
  do {                                                                  \
    if (!::spatl::common::range_all_finite(range)) {                    \
      ::spatl::common::dcheck_fail("SPATL_DCHECK_FINITE", #range,       \
                                   __FILE__, __LINE__);                 \
    }                                                                   \
  } while (0)

#else  // !SPATL_DEBUG_CHECKS

#define SPATL_DCHECK(cond) ((void)0)
#define SPATL_DCHECK_SHAPE(actual, expected) ((void)0)
#define SPATL_DCHECK_FINITE(range) ((void)0)

#endif  // SPATL_DEBUG_CHECKS
