#include "common/csv.hpp"

#include <stdexcept>

namespace spatl::common {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), num_columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& values) {
  if (values.size() != num_columns_) {
    throw std::invalid_argument("CsvWriter: row has " +
                                std::to_string(values.size()) +
                                " cells, expected " +
                                std::to_string(num_columns_));
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(values[i]);
  }
  out_ << '\n';
  out_.flush();
}

std::string CsvWriter::escape(const std::string& s) {
  const bool needs_quotes =
      s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace spatl::common
