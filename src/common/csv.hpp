// Minimal CSV writer used by every bench target to persist the rows/series
// that back the paper's tables and figures.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace spatl::common {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one row. Values are escaped per RFC 4180 when needed.
  void row(const std::vector<std::string>& values);

  /// Convenience: mixed string/number row built with a stringstream per cell.
  template <typename... Ts>
  void row_values(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(to_cell(values)), ...);
    row(cells);
  }

  const std::string& path() const { return path_; }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }

  static std::string escape(const std::string& s);

  std::string path_;
  std::ofstream out_;
  std::size_t num_columns_;
};

}  // namespace spatl::common
