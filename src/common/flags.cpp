#include "common/flags.hpp"

#include <algorithm>

namespace spatl::common {

Flags::Flags(int argc, char** argv, int start) {
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // Boolean-style flags may appear without a value when followed by
    // another flag or the end of the line.
    if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
      values_[arg] = "true";
    } else {
      values_[arg] = argv[++i];
    }
  }
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long Flags::get_int(const std::string& name, long fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stol(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

void Flags::check_known(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : values_) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      throw std::invalid_argument("unknown flag --" + name);
    }
  }
}

}  // namespace spatl::common
