// Minimal command-line flag parser for the CLI tools:
// --name value / --name=value / bare positionals, with typed getters and
// an unknown-flag check.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace spatl::common {

class Flags {
 public:
  /// Parse argv[start..argc). Throws std::invalid_argument on a flag with
  /// no value.
  Flags(int argc, char** argv, int start = 1);

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  std::string get(const std::string& name,
                  const std::string& fallback = "") const;
  long get_int(const std::string& name, long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Throws if any parsed flag is not in `known` (catches typos).
  void check_known(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace spatl::common
