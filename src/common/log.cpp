#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace spatl::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_log_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  // spatl-lint: allow(chrono-now) — log timestamps are human-facing
  // diagnostics; no simulation state depends on them.
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(now).count();
  std::lock_guard<std::mutex> lock(g_log_mu);
  std::fprintf(stderr, "[%10.3f] %s %s\n", secs, level_name(level),
               message.c_str());
}

}  // namespace spatl::common
