// Leveled stderr logging. Benches lower the level to keep stdout (the
// table/figure data) clean while still surfacing warnings.
#pragma once

#include <sstream>
#include <string>

namespace spatl::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Ts>
std::string concat(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}
}  // namespace detail

template <typename... Ts>
void log_debug(const Ts&... parts) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(parts...));
}
template <typename... Ts>
void log_info(const Ts&... parts) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(parts...));
}
template <typename... Ts>
void log_warn(const Ts&... parts) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(parts...));
}
template <typename... Ts>
void log_error(const Ts&... parts) {
  log_message(LogLevel::kError, detail::concat(parts...));
}

}  // namespace spatl::common
