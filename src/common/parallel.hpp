// parallel_for: the single parallelism entry point for compute kernels.
//
// Splits [begin, end) into contiguous chunks and runs them on the current
// ThreadPool. `grain` bounds the smallest chunk so tiny loops stay serial
// (thread hand-off costs more than the work below ~4k elements).
//
// Fixed-chunk contract: chunk boundaries are a pure function of
// (begin, end, grain) — never of the pool size or of which thread runs a
// chunk. Kernels that accumulate per chunk (parallel_for_ranges callers)
// therefore produce bit-identical results on 1, 2, or N pool threads; only
// the execution order of chunks varies. tests/test_thread_determinism.cpp
// locks this contract.
#pragma once

#include <algorithm>
#include <cstddef>

#include "common/thread_pool.hpp"

namespace spatl::common {

namespace detail {

/// Upper bound on chunks per parallel_for. A fixed constant (not the pool
/// size) so the chunk geometry is thread-count invariant; large enough that
/// dynamic scheduling load-balances well past any realistic core count.
inline constexpr std::size_t kMaxParallelChunks = 64;

/// Deterministic chunk size for a range of n elements: at least `grain`,
/// and large enough to respect kMaxParallelChunks.
inline std::size_t chunk_size_for(std::size_t n, std::size_t grain) {
  const std::size_t min_size = std::max<std::size_t>(1, grain);
  const std::size_t cap_bound =
      (n + kMaxParallelChunks - 1) / kMaxParallelChunks;
  return std::max(min_size, cap_bound);
}

}  // namespace detail

template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn,
                  std::size_t grain = 4096) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t chunk_size = detail::chunk_size_for(n, grain);
  if (n <= chunk_size) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  ThreadPool::current().run_chunks(num_chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

/// Range-chunked variant: fn(lo, hi) once per chunk — lets kernels hoist
/// per-chunk setup out of the inner loop. The (lo, hi) pairs are identical
/// for every pool size (fixed-chunk contract above), so per-chunk float
/// reductions stay deterministic.
template <typename Fn>
void parallel_for_ranges(std::size_t begin, std::size_t end, Fn&& fn,
                         std::size_t grain = 4096) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t chunk_size = detail::chunk_size_for(n, grain);
  if (n <= chunk_size) {
    fn(begin, end);
    return;
  }
  const std::size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  ThreadPool::current().run_chunks(num_chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    fn(lo, hi);
  });
}

}  // namespace spatl::common
