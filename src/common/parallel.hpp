// parallel_for: the single parallelism entry point for compute kernels.
//
// Splits [begin, end) into contiguous chunks and runs them on the global
// ThreadPool. `grain` bounds the smallest chunk so tiny loops stay serial
// (thread hand-off costs more than the work below ~4k elements).
#pragma once

#include <algorithm>
#include <cstddef>

#include "common/thread_pool.hpp"

namespace spatl::common {

template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn,
                  std::size_t grain = 4096) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t max_chunks = pool.size() + 1;
  if (n <= grain || max_chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t num_chunks = std::min(max_chunks, (n + grain - 1) / grain);
  const std::size_t chunk_size = (n + num_chunks - 1) / num_chunks;
  pool.run_chunks(num_chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

/// Range-chunked variant: fn(lo, hi) once per chunk — lets kernels hoist
/// per-chunk setup out of the inner loop.
template <typename Fn>
void parallel_for_ranges(std::size_t begin, std::size_t end, Fn&& fn,
                         std::size_t grain = 4096) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t max_chunks = pool.size() + 1;
  if (n <= grain || max_chunks <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t num_chunks = std::min(max_chunks, (n + grain - 1) / grain);
  const std::size_t chunk_size = (n + num_chunks - 1) / num_chunks;
  pool.run_chunks(num_chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    fn(lo, hi);
  });
}

}  // namespace spatl::common
