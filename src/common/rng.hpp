// Deterministic random number generation for all stochastic components.
//
// Every subsystem (data synthesis, partitioning, weight init, client
// sampling, PPO exploration) takes an explicit `Rng` so that experiments are
// bitwise reproducible from a single seed. The generator is xoshiro256**
// seeded via splitmix64, which is fast, has a 2^256-1 period, and avoids the
// correlated-low-bit problems of LCGs.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

namespace spatl::common {

/// splitmix64 step; used to expand a single 64-bit seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience samplers. Satisfies
/// UniformRandomBitGenerator so it also works with <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
    cached_normal_valid_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform float in [lo, hi).
  float uniform_float(float lo, float hi) {
    return static_cast<float>(uniform(lo, hi));
  }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t uniform_index(std::uint64_t n) {
    if (n == 0) return 0;
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller with caching of the second deviate.
  double normal() {
    if (cached_normal_valid_) {
      cached_normal_valid_ = false;
      return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_normal_ = r * std::sin(theta);
    cached_normal_valid_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }
  float normal_float(float mean, float stddev) {
    return static_cast<float>(normal(mean, stddev));
  }

  /// Gamma(shape, 1) via Marsaglia-Tsang; used by the Dirichlet sampler.
  double gamma(double shape) {
    if (shape < 1.0) {
      // Boost via Gamma(shape+1) and a uniform power (Marsaglia-Tsang §6).
      const double u = uniform();
      return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = normal();
      double v = 1.0 + c * x;
      if (v <= 0.0) continue;
      v = v * v * v;
      const double u = uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
      if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
    }
  }

  /// Dirichlet(alpha, ..., alpha) over `k` categories.
  std::vector<double> dirichlet(double alpha, std::size_t k) {
    std::vector<double> out(k);
    double sum = 0.0;
    for (auto& v : out) {
      v = gamma(alpha);
      sum += v;
    }
    if (sum <= 0.0) {  // pathological underflow: fall back to uniform
      for (auto& v : out) v = 1.0 / static_cast<double>(k);
      return out;
    }
    for (auto& v : out) v /= sum;
    return out;
  }

  /// Sample an index from an (unnormalized, non-negative) weight vector.
  std::size_t categorical(const std::vector<double>& weights) {
    const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample `k` distinct indices from [0, n) (partial Fisher-Yates).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k) {
    if (k > n) k = n;
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + uniform_index(n - i);
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }

  /// Derive an independent child generator (for per-client streams).
  Rng fork() { return Rng(next() ^ 0xA5A5A5A5DEADBEEFULL); }

  /// Exact generator cursor for checkpoint/restore: the four xoshiro state
  /// words, the Box-Muller cached deviate (bit pattern), and its validity
  /// flag. restore_cursor(save_cursor()) round-trips bit-identically.
  std::array<std::uint64_t, 6> save_cursor() const {
    std::array<std::uint64_t, 6> out{};
    for (std::size_t i = 0; i < 4; ++i) out[i] = state_[i];
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(cached_normal_));
    std::memcpy(&bits, &cached_normal_, sizeof(bits));
    out[4] = bits;
    out[5] = cached_normal_valid_ ? 1 : 0;
    return out;
  }

  void restore_cursor(const std::array<std::uint64_t, 6>& cursor) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = cursor[i];
    std::memcpy(&cached_normal_, &cursor[4], sizeof(cached_normal_));
    cached_normal_valid_ = cursor[5] != 0;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool cached_normal_valid_ = false;
};

}  // namespace spatl::common
