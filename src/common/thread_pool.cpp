#include "common/thread_pool.hpp"

#include <algorithm>

namespace spatl::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Batch* batch = nullptr;
    std::size_t chunk = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stop_ || (batch_ != nullptr && batch_->next < batch_->total);
      });
      if (stop_) return;
      batch = batch_;
      chunk = batch->next++;
    }
    std::exception_ptr err;
    try {
      (*batch->fn)(chunk);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !batch->error) batch->error = err;
      if (++batch->done == batch->total) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_chunks(std::size_t num_chunks,
                            const std::function<void(std::size_t)>& fn) {
  if (num_chunks == 0) return;
  if (workers_.empty() || num_chunks == 1) {
    for (std::size_t i = 0; i < num_chunks; ++i) fn(i);
    return;
  }
  Batch batch;
  batch.fn = &fn;
  batch.total = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &batch;
  }
  work_cv_.notify_all();
  // The calling thread also drains chunks so the pool never idles the caller.
  for (;;) {
    std::size_t chunk;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (batch.next >= batch.total) break;
      chunk = batch.next++;
    }
    std::exception_ptr err;
    try {
      fn(chunk);
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (err && !batch.error) batch.error = err;
    ++batch.done;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&batch] { return batch.done == batch.total; });
    batch_ = nullptr;
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max<std::size_t>(
      1, std::thread::hardware_concurrency()) - 1);
  return pool;
}

}  // namespace spatl::common
