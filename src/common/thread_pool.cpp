#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "obs/metrics.hpp"

namespace spatl::common {

namespace {
// Active ScopedOverride target, or null for the global pool. Atomic so that
// worker threads running nested parallel_for observe the override installed
// by the test thread.
std::atomic<ThreadPool*> g_pool_override{nullptr};

// Pool utilization telemetry. Handles are registered once (magic static);
// every update afterwards is a relaxed atomic on the calling thread's
// shard, so instrumentation adds no lock to the work loop.
struct PoolMetrics {
  obs::Counter batches =
      obs::MetricsRegistry::instance().counter("threadpool.batches");
  obs::Counter chunks =
      obs::MetricsRegistry::instance().counter("threadpool.chunks");
  obs::Gauge queue_depth =
      obs::MetricsRegistry::instance().gauge("threadpool.queue_depth");
  obs::Gauge busy_workers =
      obs::MetricsRegistry::instance().gauge("threadpool.busy_workers");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics metrics;
  return metrics;
}

std::atomic<std::int64_t> g_busy{0};
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::execute_chunk(std::unique_lock<std::mutex>& lock,
                               Batch& batch, std::size_t chunk,
                               const std::function<void(std::size_t)>& fn) {
  lock.unlock();
  PoolMetrics& metrics = pool_metrics();
  metrics.chunks.increment();
  metrics.busy_workers.set(
      double(g_busy.fetch_add(1, std::memory_order_relaxed) + 1));
  std::exception_ptr err;
  try {
    fn(chunk);
  } catch (...) {
    err = std::current_exception();
  }
  metrics.busy_workers.set(
      double(g_busy.fetch_sub(1, std::memory_order_relaxed) - 1));
  lock.lock();
  if (err && !batch.error) batch.error = err;
  if (++batch.done == batch.total) done_cv_.notify_all();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
    if (stop_) return;
    Batch* batch = pending_.front();
    const std::size_t chunk = batch->next++;
    if (batch->next >= batch->total) {
      pending_.pop_front();
      pool_metrics().queue_depth.set(double(pending_.size()));
    }
    execute_chunk(lock, *batch, chunk, *batch->fn);
  }
}

void ThreadPool::run_chunks(std::size_t num_chunks,
                            const std::function<void(std::size_t)>& fn) {
  if (num_chunks == 0) return;
  PoolMetrics& metrics = pool_metrics();
  metrics.batches.increment();
  if (workers_.empty() || num_chunks == 1) {
    for (std::size_t i = 0; i < num_chunks; ++i) {
      metrics.chunks.increment();
      fn(i);
    }
    return;
  }
  Batch batch;
  batch.fn = &fn;
  batch.total = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(&batch);
    metrics.queue_depth.set(double(pending_.size()));
  }
  work_cv_.notify_all();
  // The submitter drains its own batch: it makes progress without depending
  // on any worker being free, which is what keeps nested calls live-locked
  // workers cannot be. A worker claiming the last chunk pops the batch from
  // the queue front; the submitter may claim it from mid-queue, hence erase.
  std::unique_lock<std::mutex> lock(mu_);
  while (batch.next < batch.total) {
    const std::size_t chunk = batch.next++;
    if (batch.next >= batch.total) {
      pending_.erase(std::find(pending_.begin(), pending_.end(), &batch));
      metrics.queue_depth.set(double(pending_.size()));
    }
    execute_chunk(lock, batch, chunk, fn);
  }
  done_cv_.wait(lock, [&batch] { return batch.done == batch.total; });
  lock.unlock();
  if (batch.error) std::rethrow_exception(batch.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max<std::size_t>(
      1, std::thread::hardware_concurrency()) - 1);
  return pool;
}

ThreadPool& ThreadPool::current() {
  ThreadPool* override_pool = g_pool_override.load(std::memory_order_acquire);
  return override_pool != nullptr ? *override_pool : global();
}

ThreadPool::ScopedOverride::ScopedOverride(ThreadPool& pool)
    : previous_(g_pool_override.exchange(&pool, std::memory_order_acq_rel)) {}

ThreadPool::ScopedOverride::~ScopedOverride() {
  g_pool_override.store(previous_, std::memory_order_release);
}

}  // namespace spatl::common
