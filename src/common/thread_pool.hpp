// Work-sharing thread pool backing `parallel_for`.
//
// A single process-wide pool (created lazily, sized to hardware concurrency)
// is shared by all tensor kernels so that nested algorithm layers never
// oversubscribe the machine. On a 1-core host the pool degrades to inline
// serial execution with no thread hand-off.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace spatl::common {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run `fn(chunk_index)` for chunk_index in [0, num_chunks) across the
  /// pool, blocking until all chunks complete. Exceptions from chunks are
  /// rethrown (first one wins) on the calling thread.
  void run_chunks(std::size_t num_chunks,
                  const std::function<void(std::size_t)>& fn);

  /// Process-wide pool, sized to std::thread::hardware_concurrency().
  static ThreadPool& global();

 private:
  void worker_loop();

  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t next = 0;
    std::size_t total = 0;
    std::size_t done = 0;
    std::exception_ptr error;
  };

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Batch* batch_ = nullptr;  // guarded by mu_
  bool stop_ = false;
};

}  // namespace spatl::common
