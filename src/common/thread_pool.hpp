// Work-sharing thread pool backing `parallel_for`.
//
// A single process-wide pool (created lazily, sized to hardware concurrency)
// is shared by all tensor kernels so that nested algorithm layers never
// oversubscribe the machine. On a 1-core host the pool degrades to inline
// serial execution with no thread hand-off.
//
// `run_chunks` is safe to call concurrently from multiple threads and
// re-entrantly from inside a running chunk (nested parallel_for): batches
// queue up and every submitter drains its own batch inline, so submission
// can never deadlock even when all workers are blocked in nested waits.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spatl::common {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);

  /// Joins the workers. All run_chunks calls must have returned; destroying
  /// the pool while a batch is in flight is undefined behaviour.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run `fn(chunk_index)` for chunk_index in [0, num_chunks) across the
  /// pool, blocking until all chunks complete. Exceptions from chunks are
  /// rethrown (first one wins) on the calling thread. The calling thread
  /// participates in draining its own batch.
  void run_chunks(std::size_t num_chunks,
                  const std::function<void(std::size_t)>& fn);

  /// Process-wide pool, sized to std::thread::hardware_concurrency() - 1.
  static ThreadPool& global();

  /// Pool used by parallel_for: the active ScopedOverride when one is
  /// installed, otherwise the process-wide pool.
  static ThreadPool& current();

  /// RAII override of ThreadPool::current() — pins every parallel_for in
  /// scope (including from worker threads) to a specific pool. Overrides
  /// nest; they are process-global, so tests that install one must not run
  /// kernels concurrently from unrelated threads.
  class ScopedOverride {
   public:
    explicit ScopedOverride(ThreadPool& pool);
    ~ScopedOverride();
    ScopedOverride(const ScopedOverride&) = delete;
    ScopedOverride& operator=(const ScopedOverride&) = delete;

   private:
    ThreadPool* previous_;
  };

 private:
  // One run_chunks call. `next` hands out chunk indices; a batch leaves
  // `pending_` the moment its last chunk is claimed, and `done` reaching
  // `total` releases the submitter. All fields are guarded by the pool
  // mutex; only `fn` execution happens outside the lock.
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t next = 0;
    std::size_t total = 0;
    std::size_t done = 0;
    std::exception_ptr error;
  };

  void worker_loop();
  // Runs one chunk outside the lock and does the guarded bookkeeping.
  // Precondition: `lock` is held. Postcondition: `lock` is held again.
  void execute_chunk(std::unique_lock<std::mutex>& lock, Batch& batch,
                     std::size_t chunk,
                     const std::function<void(std::size_t)>& fn);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<Batch*> pending_;  // guarded by mu_; only non-exhausted batches
  bool stop_ = false;           // guarded by mu_
};

}  // namespace spatl::common
