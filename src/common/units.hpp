// Human-readable formatting for byte counts and FLOPs, used when printing
// the paper's tables (e.g. "2.1MB", "4.16GB", "40.6M FLOPs").
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace spatl::common {

/// "1023B", "2.10MB", "4.16GB" — decimal units as in the paper's tables.
inline std::string format_bytes(double bytes) {
  char buf[32];
  if (bytes < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fB", bytes);
  } else if (bytes < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fKB", bytes / 1e3);
  } else if (bytes < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", bytes / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fGB", bytes / 1e9);
  }
  return buf;
}

/// "123", "40.6M", "1.25G" — compact count formatting for FLOPs/params.
inline std::string format_count(double count) {
  char buf[32];
  if (count < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0f", count);
  } else if (count < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fK", count / 1e3);
  } else if (count < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fM", count / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fG", count / 1e9);
  }
  return buf;
}

}  // namespace spatl::common
