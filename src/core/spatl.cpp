#include "core/spatl.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "data/loader.hpp"
#include "fl/flat_utils.hpp"
#include "prune/flops.hpp"
#include "prune/pipelines.hpp"

namespace spatl::core {

namespace {

std::vector<nn::ParamView> shared_views(models::SplitModel& model,
                                        bool transfer_learning) {
  // Encoder views always come first so the control variates (encoder-sized)
  // align with the leading positions of the shared flat vector.
  return transfer_learning ? model.encoder_params() : model.all_params();
}

}  // namespace

SpatlAlgorithm::SpatlAlgorithm(fl::FlEnvironment& env, fl::FlConfig config,
                               SpatlOptions options,
                               const rl::PpoAgent* pretrained_agent)
    : fl::FederatedAlgorithm(env, std::move(config)),
      options_(options) {
  if (pretrained_agent != nullptr) {
    pretrained_ = std::make_unique<rl::PpoAgent>(
        pretrained_agent->clone(config_.seed ^ 0xA9E47ULL));
    // On-device customization only tunes the MLP heads (paper §IV-B).
    pretrained_->set_finetune(true);
  }
  clients_.resize(env_.num_clients());
  server_control_.assign(nn::param_count(global_.encoder_params()), 0.0f);
}

SpatlClientState& SpatlAlgorithm::client_state(std::size_t client) {
  if (client >= clients_.size()) {
    throw std::out_of_range("SpatlAlgorithm: bad client id");
  }
  auto& slot = clients_[client];
  if (!slot) {
    slot = std::make_unique<SpatlClientState>();
    // Fresh local predictor; the encoder is overwritten on first sync.
    common::Rng init_rng(config_.seed ^ (0x9e3779b9ULL * (client + 1)));
    slot->model = models::build_model(config_.model, init_rng);
    slot->control.assign(server_control_.size(), 0.0f);
    const std::uint64_t agent_seed =
        config_.seed ^ (0xFACEULL * (client + 1));
    if (pretrained_) {
      slot->agent =
          std::make_unique<rl::PpoAgent>(pretrained_->clone(agent_seed));
    } else {
      slot->agent = std::make_unique<rl::PpoAgent>(
          std::size_t(graph::kNumNodeFeatures), options_.ppo, agent_seed);
      slot->agent->set_finetune(false);  // no pretrained trunk to protect
    }
  }
  return *slot;
}

models::SplitModel& SpatlAlgorithm::client_model(std::size_t client) {
  return client_state(client).model;
}

void SpatlAlgorithm::sync_encoder_to_client(SpatlClientState& state) {
  nn::unflatten_values(nn::flatten_values(global_.encoder_params()),
                       state.model.encoder_params());
  if (!options_.transfer_learning) {
    nn::unflatten_values(nn::flatten_values(global_.predictor_params()),
                         state.model.predictor_params());
  }
  state.model.reset_gates();
}

std::vector<std::uint8_t> SpatlAlgorithm::upload_mask(
    models::SplitModel& model, std::size_t shared_dim) const {
  std::vector<std::uint8_t> mask(shared_dim, 1);
  auto views = shared_views(model, options_.transfer_learning);
  // Flat offset of each view, in order.
  std::size_t offset = 0;
  for (const auto& v : views) {
    for (const auto& binding : model.conv_bindings()) {
      if (v.value != &binding.conv->weight()) continue;
      const std::size_t out_ch = binding.conv->out_channels();
      const std::size_t in_ch = binding.conv->in_channels();
      const std::size_t kk = binding.conv->kernel() * binding.conv->kernel();
      const auto* out_mask = binding.out_gate >= 0
                                 ? &model.gates()[binding.out_gate]->mask()
                                 : nullptr;
      const auto* in_mask = binding.in_gate >= 0
                                ? &model.gates()[binding.in_gate]->mask()
                                : nullptr;
      for (std::size_t o = 0; o < out_ch; ++o) {
        const bool row_on = out_mask == nullptr || (*out_mask)[o];
        for (std::size_t c = 0; c < in_ch; ++c) {
          const bool col_on = in_mask == nullptr || (*in_mask)[c];
          if (row_on && col_on) continue;
          const std::size_t base = offset + (o * in_ch + c) * kk;
          std::fill(mask.begin() + std::ptrdiff_t(base),
                    mask.begin() + std::ptrdiff_t(base + kk), std::uint8_t{0});
        }
      }
      break;
    }
    offset += v.value->numel();
  }
  return mask;
}

void SpatlAlgorithm::run_round(const std::vector<std::size_t>& selected) {
  ++round_;
  auto global_shared = shared_views(global_, options_.transfer_learning);
  const std::vector<float> w_global = nn::flatten_values(global_shared);
  const std::size_t shared_dim = w_global.size();
  const std::size_t enc_dim = server_control_.size();

  std::vector<double> delta_sum(shared_dim, 0.0);
  std::vector<std::uint32_t> count(shared_dim, 0);
  std::vector<double> dc_sum(enc_dim, 0.0);
  std::size_t accepted_count = 0;

  for (const std::size_t i : selected) {
    SpatlClientState& state = client_state(i);
    sync_encoder_to_client(state);
    // Downlink: encoder (+ control variate) (+ predictor when transfer
    // learning is ablated off and the whole model is shared).
    ledger_.add_downlink_floats(enc_dim);
    if (options_.gradient_control) ledger_.add_downlink_floats(enc_dim);
    if (!options_.transfer_learning) {
      ledger_.add_downlink_floats(shared_dim - enc_dim);
    }

    // Local update (eq. 3) with encoder-gradient correction (eq. 9).
    data::GradHook hook;
    if (options_.gradient_control) {
      std::vector<float> correction(enc_dim);
      for (std::size_t j = 0; j < enc_dim; ++j) {
        correction[j] = server_control_[j] - state.control[j];
      }
      auto enc_views = state.model.encoder_params();
      hook = [corr = std::move(correction),
              enc_views](const std::vector<nn::ParamView>&) {
        std::size_t off = 0;
        for (const auto& v : enc_views) {
          float* g = v.grad->data();
          const std::size_t n = v.value->numel();
          for (std::size_t j = 0; j < n; ++j) g[j] += corr[off + j];
          off += n;
        }
      };
    }
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)) ^
                           (round_ * 0x51ULL));
    const auto stats =
        data::train_supervised(state.model, env_.client(i).train,
                               config_.local, client_rng,
                               state.model.all_params(), hook);
    ++state.participations;

    // Control-variate update (eq. 10, option II).
    std::vector<float> dc(enc_dim, 0.0f);
    if (options_.gradient_control) {
      const auto w_enc_i = nn::flatten_values(state.model.encoder_params());
      // Momentum-SGD displacement scaling, as in the SCAFFOLD baseline.
      const double eff_lr =
          config_.local.lr / (1.0 - config_.local.momentum);
      const double k_lr =
          double(std::max<std::size_t>(1, stats.steps)) * eff_lr;
      for (std::size_t j = 0; j < enc_dim; ++j) {
        const float c_new =
            state.control[j] - server_control_[j] +
            float((w_global[j] - w_enc_i[j]) / k_lr);
        dc[j] = c_new - state.control[j];
        state.control[j] = c_new;
      }
    }

    // Salient parameter selection (§IV-B): the agent evaluates the trained
    // encoder and picks the sparsity policy; the gates realize it.
    std::size_t selected_indices = 0;
    if (options_.salient_selection) {
      rl::PruningEnvConfig env_cfg;
      env_cfg.flops_budget = options_.flops_budget;
      env_cfg.criterion = options_.selection_criterion;
      rl::PruningEnv prune_env(state.model, env_.client(i).val, env_cfg);
      if (round_ <= options_.agent_finetune_rounds &&
          options_.agent_finetune_episodes > 0) {
        rl::train_on_pruning(*state.agent, prune_env, /*rounds=*/1,
                             options_.agent_finetune_episodes);
      }
      const auto graph = prune_env.reset();
      const auto actions = state.agent->act(graph, /*explore=*/false);
      const auto sr = prune_env.step(actions);
      state.last_flops_ratio = sr.flops_ratio;
      state.last_sparsity = prune::overall_sparsity(state.model);
      for (const auto* gate : state.model.gates()) {
        for (auto m : gate->mask()) selected_indices += m;
      }
    } else {
      state.model.reset_gates();
      state.last_flops_ratio = 1.0;
      state.last_sparsity = 0.0;
    }

    // Masked upload (eq. 12's (values, index) pairs). The salient values
    // and the control deltas on the same positions travel as one payload,
    // so in-flight corruption/loss and server-side validation see exactly
    // what crosses the wire.
    const auto mask = upload_mask(state.model, shared_dim);
    const auto w_i =
        nn::flatten_values(shared_views(state.model,
                                        options_.transfer_learning));
    std::vector<float> payload;
    payload.reserve(shared_dim);
    for (std::size_t j = 0; j < shared_dim; ++j) {
      if (mask[j]) payload.push_back(w_i[j]);
    }
    const std::size_t uploaded = payload.size();
    std::size_t uploaded_control = 0;
    if (options_.gradient_control) {
      for (std::size_t j = 0; j < enc_dim; ++j) {
        if (!mask[j]) continue;
        payload.push_back(dc[j]);
        ++uploaded_control;
      }
    }
    const Delivery d =
        deliver_update(i, payload, uploaded + uploaded_control);
    ledger_.add_uplink_indices(selected_indices);
    if (!d.accepted) continue;
    ++accepted_count;
    std::size_t p = 0;
    for (std::size_t j = 0; j < shared_dim; ++j) {
      if (!mask[j]) continue;
      delta_sum[j] += d.scale * (double(payload[p]) - double(w_global[j]));
      ++count[j];
      ++p;
    }
    if (options_.gradient_control) {
      for (std::size_t j = 0; j < enc_dim; ++j) {
        if (!mask[j]) continue;
        dc_sum[j] += payload[p];
        ++p;
      }
    }
  }
  if (!quorum_met(accepted_count)) return;

  // Server: masked aggregation (eq. 12) ...
  std::vector<float> w_new = w_global;
  for (std::size_t j = 0; j < shared_dim; ++j) {
    if (count[j] == 0) continue;
    w_new[j] += float(options_.server_lr * delta_sum[j] / double(count[j]));
  }
  nn::unflatten_values(w_new, global_shared);
  // ... and the control update (eq. 11): c += sum(dc)/N.
  if (options_.gradient_control) {
    const double inv_n = 1.0 / double(env_.num_clients());
    for (std::size_t j = 0; j < enc_dim; ++j) {
      server_control_[j] += float(dc_sum[j] * inv_n);
    }
  }
}

fl::EvalSummary SpatlAlgorithm::evaluate_clients() {
  fl::EvalSummary summary;
  for (std::size_t i = 0; i < env_.num_clients(); ++i) {
    SpatlClientState& state = client_state(i);
    sync_encoder_to_client(state);  // deploy the current shared encoder
    const auto r = data::evaluate(state.model, env_.client(i).val);
    summary.avg_accuracy += r.accuracy;
    summary.avg_loss += r.loss;
  }
  const double n = double(env_.num_clients());
  summary.avg_accuracy /= n;
  summary.avg_loss /= n;
  return summary;
}

std::vector<double> SpatlAlgorithm::per_client_accuracy() {
  std::vector<double> acc(env_.num_clients(), 0.0);
  for (std::size_t i = 0; i < env_.num_clients(); ++i) {
    SpatlClientState& state = client_state(i);
    sync_encoder_to_client(state);
    acc[i] = data::evaluate(state.model, env_.client(i).val).accuracy;
  }
  return acc;
}

std::vector<double> SpatlAlgorithm::client_flops_ratios() const {
  std::vector<double> out;
  out.reserve(clients_.size());
  for (const auto& c : clients_) {
    out.push_back(c ? c->last_flops_ratio : 1.0);
  }
  return out;
}

std::vector<double> SpatlAlgorithm::client_sparsities() const {
  std::vector<double> out;
  out.reserve(clients_.size());
  for (const auto& c : clients_) {
    out.push_back(c ? c->last_sparsity : 0.0);
  }
  return out;
}

double SpatlAlgorithm::adapt_cold_client(std::size_t client,
                                         std::size_t epochs) {
  SpatlClientState& state = client_state(client);
  sync_encoder_to_client(state);
  ledger_.add_downlink_floats(server_control_.size());
  data::TrainOptions opts = config_.local;
  opts.epochs = epochs;
  common::Rng rng(config_.seed ^ (0xC01DULL * (client + 1)));
  // eq. 4: optimize the local predictor only; the encoder stays fixed.
  data::train_supervised(state.model, env_.client(client).train, opts, rng,
                         state.model.predictor_params());
  return data::evaluate(state.model, env_.client(client).val).accuracy;
}

}  // namespace spatl::core
