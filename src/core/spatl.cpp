#include "core/spatl.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/check.hpp"
#include "data/loader.hpp"
#include "fl/flat_utils.hpp"
#include "obs/trace.hpp"
#include "prune/flops.hpp"
#include "prune/pipelines.hpp"

namespace spatl::core {

namespace {

std::vector<nn::ParamView> shared_views(models::SplitModel& model,
                                        bool transfer_learning) {
  // Encoder views always come first so the control variates (encoder-sized)
  // align with the leading positions of the shared flat vector.
  return transfer_learning ? model.encoder_params() : model.all_params();
}

std::vector<float> flatten_nested(const std::vector<std::vector<float>>& v) {
  std::vector<float> out;
  for (const auto& sub : v) out.insert(out.end(), sub.begin(), sub.end());
  return out;
}

/// Refill `v`'s sub-vectors (sizes unchanged) from a concatenated flat copy.
void restore_nested(const std::vector<float>& flat,
                    std::vector<std::vector<float>>& v) {
  std::size_t off = 0;
  for (auto& sub : v) {
    if (off + sub.size() > flat.size()) {
      throw std::runtime_error("checkpoint: optimizer moment size mismatch");
    }
    std::copy(flat.begin() + std::ptrdiff_t(off),
              flat.begin() + std::ptrdiff_t(off + sub.size()), sub.begin());
    off += sub.size();
  }
  if (off != flat.size()) {
    throw std::runtime_error("checkpoint: optimizer moment size mismatch");
  }
}

}  // namespace

SpatlAlgorithm::SpatlAlgorithm(fl::FlEnvironment& env, fl::FlConfig config,
                               SpatlOptions options,
                               const rl::PpoAgent* pretrained_agent)
    : fl::FederatedAlgorithm(env, std::move(config)),
      options_(options) {
  if (pretrained_agent != nullptr) {
    pretrained_ = std::make_unique<rl::PpoAgent>(
        pretrained_agent->clone(config_.seed ^ 0xA9E47ULL));
    // On-device customization only tunes the MLP heads (paper §IV-B).
    pretrained_->set_finetune(true);
  }
  clients_.resize(env_.num_clients());
  server_control_.assign(nn::param_count(global_.encoder_params()), 0.0f);
}

SpatlClientState& SpatlAlgorithm::client_state(std::size_t client) {
  if (client >= clients_.size()) {
    throw std::out_of_range("SpatlAlgorithm: bad client id");
  }
  auto& slot = clients_[client];
  if (!slot) {
    slot = std::make_unique<SpatlClientState>();
    // Fresh local predictor; the encoder is overwritten on first sync.
    common::Rng init_rng(config_.seed ^ (0x9e3779b9ULL * (client + 1)));
    slot->model = models::build_model(config_.model, init_rng);
    slot->control.assign(server_control_.size(), 0.0f);
    const std::uint64_t agent_seed =
        config_.seed ^ (0xFACEULL * (client + 1));
    if (pretrained_) {
      slot->agent =
          std::make_unique<rl::PpoAgent>(pretrained_->clone(agent_seed));
    } else {
      slot->agent = std::make_unique<rl::PpoAgent>(
          std::size_t(graph::kNumNodeFeatures), options_.ppo, agent_seed);
      slot->agent->set_finetune(false);  // no pretrained trunk to protect
    }
  }
  return *slot;
}

models::SplitModel& SpatlAlgorithm::client_model(std::size_t client) {
  return client_state(client).model;
}

void SpatlAlgorithm::sync_encoder_to_client(SpatlClientState& state) {
  nn::unflatten_values(nn::flatten_values(global_.encoder_params()),
                       state.model.encoder_params());
  if (!options_.transfer_learning) {
    nn::unflatten_values(nn::flatten_values(global_.predictor_params()),
                         state.model.predictor_params());
  }
  state.model.reset_gates();
}

std::vector<std::uint8_t> SpatlAlgorithm::upload_mask(
    models::SplitModel& model, std::size_t shared_dim) const {
  std::vector<std::uint8_t> mask(shared_dim, 1);
  auto views = shared_views(model, options_.transfer_learning);
  // Flat offset of each view, in order.
  std::size_t offset = 0;
  for (const auto& v : views) {
    for (const auto& binding : model.conv_bindings()) {
      if (v.value != &binding.conv->weight()) continue;
      const std::size_t out_ch = binding.conv->out_channels();
      const std::size_t in_ch = binding.conv->in_channels();
      const std::size_t kk = binding.conv->kernel() * binding.conv->kernel();
      const auto* out_mask = binding.out_gate >= 0
                                 ? &model.gates()[binding.out_gate]->mask()
                                 : nullptr;
      const auto* in_mask = binding.in_gate >= 0
                                ? &model.gates()[binding.in_gate]->mask()
                                : nullptr;
      for (std::size_t o = 0; o < out_ch; ++o) {
        const bool row_on = out_mask == nullptr || (*out_mask)[o];
        for (std::size_t c = 0; c < in_ch; ++c) {
          const bool col_on = in_mask == nullptr || (*in_mask)[c];
          if (row_on && col_on) continue;
          const std::size_t base = offset + (o * in_ch + c) * kk;
          std::fill(mask.begin() + std::ptrdiff_t(base),
                    mask.begin() + std::ptrdiff_t(base + kk), std::uint8_t{0});
        }
      }
      break;
    }
    offset += v.value->numel();
  }
  return mask;
}

std::size_t SpatlAlgorithm::uplink_cost_floats() {
  const std::size_t shared_dim = nn::param_count(
      shared_views(global_, options_.transfer_learning));
  return options_.gradient_control ? 2 * shared_dim : shared_dim;
}

void SpatlAlgorithm::run_round(const std::vector<std::size_t>& selected) {
  ++round_;
  auto global_shared = shared_views(global_, options_.transfer_learning);
  const std::vector<float> w_global = nn::flatten_values(global_shared);
  const std::size_t shared_dim = w_global.size();
  const std::size_t enc_dim = server_control_.size();

  std::vector<double> delta_sum(shared_dim, 0.0);
  std::vector<std::uint32_t> count(shared_dim, 0);
  std::vector<double> dc_sum(enc_dim, 0.0);
  std::size_t accepted_count = 0;

  // Robust path only: accepted masked updates parked until aggregation.
  // `deltas` is compacted over the mask positions and already carries the
  // staleness scale, mirroring the streaming accumulation of the mean path
  // (which divides by the raw owner count, not by the scale sum).
  struct PendingMasked {
    std::size_t client = 0;
    std::vector<std::uint8_t> mask;    // 0/1 over shared_dim
    std::vector<float> deltas;         // compact: scale * (w_i - w_global)
    std::vector<std::uint8_t> cmask;   // prefix of mask over enc_dim
    std::vector<float> dc;             // compact control deltas
  };
  std::vector<PendingMasked> pending;
  const bool robust = robust_active();

  // Late commits first (DESIGN.md §11): a parked salient update kept its
  // upload mask alongside the compacted raw deltas, so it replays through
  // the same per-coordinate owner counting — or the masked-payload aware
  // robust path — as a fresh upload, discounted by the commit-time
  // staleness scale. Control deltas commit full-strength, like the fresh
  // path (bookkeeping, not a step).
  for (auto& b : take_due_updates()) {
    const double scale = commit_scale(b);
    ++accepted_count;
    if (robust) {
      PendingMasked pm;
      pm.client = b.client;
      pm.deltas.resize(b.values.size());
      for (std::size_t p = 0; p < b.values.size(); ++p) {
        pm.deltas[p] = float(scale * double(b.values[p]));
      }
      if (options_.gradient_control) {
        pm.cmask.assign(b.mask.begin(),
                        b.mask.begin() + std::ptrdiff_t(enc_dim));
        pm.dc = std::move(b.aux);
      }
      pm.mask = std::move(b.mask);
      pending.push_back(std::move(pm));
      continue;
    }
    std::size_t p = 0;
    for (std::size_t j = 0; j < shared_dim; ++j) {
      if (!b.mask[j]) continue;
      delta_sum[j] += scale * double(b.values[p]);
      ++count[j];
      ++p;
    }
    if (options_.gradient_control) {
      p = 0;
      for (std::size_t j = 0; j < enc_dim; ++j) {
        if (!b.mask[j]) continue;
        dc_sum[j] += double(b.aux[p]);
        ++p;
      }
    }
  }

  for (const std::size_t i : selected) {
    SpatlClientState& state = client_state(i);
    sync_encoder_to_client(state);
    // Downlink: encoder (+ control variate) (+ predictor when transfer
    // learning is ablated off and the whole model is shared).
    ledger_.add_downlink_floats(enc_dim);
    if (options_.gradient_control) ledger_.add_downlink_floats(enc_dim);
    if (!options_.transfer_learning) {
      ledger_.add_downlink_floats(shared_dim - enc_dim);
    }

    // Local update (eq. 3) with encoder-gradient correction (eq. 9).
    data::GradHook hook;
    if (options_.gradient_control) {
      std::vector<float> correction(enc_dim);
      for (std::size_t j = 0; j < enc_dim; ++j) {
        correction[j] = server_control_[j] - state.control[j];
      }
      auto enc_views = state.model.encoder_params();
      hook = [corr = std::move(correction),
              enc_views](const std::vector<nn::ParamView>&) {
        std::size_t off = 0;
        for (const auto& v : enc_views) {
          float* g = v.grad->data();
          const std::size_t n = v.value->numel();
          for (std::size_t j = 0; j < n; ++j) g[j] += corr[off + j];
          off += n;
        }
      };
    }
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)) ^
                           (round_ * 0x51ULL));
    data::TrainStats stats;
    {
      SPATL_TRACE_SPAN("fl/train");
      stats =
          data::train_supervised(state.model, env_.client(i).train,
                                 config_.local, client_rng,
                                 state.model.all_params(), hook);
    }
    ++state.participations;

    // Control-variate update (eq. 10, option II).
    std::vector<float> dc(enc_dim, 0.0f);
    if (options_.gradient_control) {
      const auto w_enc_i = nn::flatten_values(state.model.encoder_params());
      // Momentum-SGD displacement scaling, as in the SCAFFOLD baseline.
      const double eff_lr =
          config_.local.lr / (1.0 - config_.local.momentum);
      const double k_lr =
          double(std::max<std::size_t>(1, stats.steps)) * eff_lr;
      for (std::size_t j = 0; j < enc_dim; ++j) {
        const float c_new =
            state.control[j] - server_control_[j] +
            float((w_global[j] - w_enc_i[j]) / k_lr);
        dc[j] = c_new - state.control[j];
        state.control[j] = c_new;
      }
    }

    // Salient parameter selection (§IV-B): the agent evaluates the trained
    // encoder and picks the sparsity policy; the gates realize it.
    std::size_t selected_indices = 0;
    if (options_.salient_selection) {
      SPATL_TRACE_SPAN("spatl/select");
      rl::PruningEnvConfig env_cfg;
      env_cfg.flops_budget = options_.flops_budget;
      env_cfg.criterion = options_.selection_criterion;
      rl::PruningEnv prune_env(state.model, env_.client(i).val, env_cfg);
      if (round_ <= options_.agent_finetune_rounds &&
          options_.agent_finetune_episodes > 0) {
        rl::train_on_pruning(*state.agent, prune_env, /*rounds=*/1,
                             options_.agent_finetune_episodes);
      }
      const auto graph = prune_env.reset();
      const auto actions = state.agent->act(graph, /*explore=*/false);
      const auto sr = prune_env.step(actions);
      state.last_flops_ratio = sr.flops_ratio;
      state.last_sparsity = prune::overall_sparsity(state.model);
      for (const auto* gate : state.model.gates()) {
        for (auto m : gate->mask()) selected_indices += m;
      }
    } else {
      state.model.reset_gates();
      state.last_flops_ratio = 1.0;
      state.last_sparsity = 0.0;
    }

    // Masked upload (eq. 12's (values, index) pairs). The salient values
    // and the control deltas on the same positions travel as one payload,
    // so in-flight corruption/loss and server-side validation see exactly
    // what crosses the wire.
    const auto mask = upload_mask(state.model, shared_dim);
    const auto w_i =
        nn::flatten_values(shared_views(state.model,
                                        options_.transfer_learning));
    std::vector<float> payload;
    payload.reserve(shared_dim);
    for (std::size_t j = 0; j < shared_dim; ++j) {
      if (mask[j]) payload.push_back(w_i[j]);
    }
    const std::size_t uploaded = payload.size();
    std::size_t uploaded_control = 0;
    if (options_.gradient_control) {
      for (std::size_t j = 0; j < enc_dim; ++j) {
        if (!mask[j]) continue;
        payload.push_back(dc[j]);
        ++uploaded_control;
      }
    }
    // Payload-aligned reference: the global weights on the salient
    // positions, zero on the control-delta segment. Byzantine crafting and
    // the norm-bound defense both operate about this center, so a sign-flip
    // genuinely reverses the client's *update* rather than its raw weights.
    std::vector<float> payload_ref;
    payload_ref.reserve(payload.size());
    for (std::size_t j = 0; j < shared_dim; ++j) {
      if (mask[j]) payload_ref.push_back(w_global[j]);
    }
    payload_ref.resize(payload.size(), 0.0f);
    const Delivery d = deliver_update(i, payload,
                                      uploaded + uploaded_control,
                                      &payload_ref);
    ledger_.add_uplink_indices(selected_indices);
    if (d.deferred) {
      // Park the masked update raw (deltas against this round's base, no
      // scale yet — the staleness discount depends on the actual commit
      // round, which a skipped round can push further out).
      fl::BufferedUpdate b;
      b.values.reserve(uploaded);
      std::size_t p = 0;
      for (std::size_t j = 0; j < shared_dim; ++j) {
        if (!mask[j]) continue;
        b.values.push_back(
            float(double(payload[p]) - double(w_global[j])));
        ++p;
      }
      if (options_.gradient_control) {
        b.aux.reserve(uploaded_control);
        for (std::size_t j = 0; j < enc_dim; ++j) {
          if (!mask[j]) continue;
          b.aux.push_back(payload[p]);
          ++p;
        }
      }
      b.mask = mask;
      park_update(i, d, std::move(b));
      continue;
    }
    if (!d.accepted) continue;
    ++accepted_count;
    if (robust) {
      PendingMasked pm;
      pm.client = i;
      pm.mask = mask;
      pm.deltas.reserve(uploaded);
      std::size_t p = 0;
      for (std::size_t j = 0; j < shared_dim; ++j) {
        if (!mask[j]) continue;
        pm.deltas.push_back(
            float(d.scale * (double(payload[p]) - double(w_global[j]))));
        ++p;
      }
      if (options_.gradient_control) {
        pm.cmask.assign(mask.begin(), mask.begin() + std::ptrdiff_t(enc_dim));
        pm.dc.reserve(uploaded_control);
        for (std::size_t j = 0; j < enc_dim; ++j) {
          if (!mask[j]) continue;
          pm.dc.push_back(payload[p]);
          ++p;
        }
      }
      pending.push_back(std::move(pm));
      continue;
    }
    std::size_t p = 0;
    for (std::size_t j = 0; j < shared_dim; ++j) {
      if (!mask[j]) continue;
      delta_sum[j] += d.scale * (double(payload[p]) - double(w_global[j]));
      ++count[j];
      ++p;
    }
    if (options_.gradient_control) {
      for (std::size_t j = 0; j < enc_dim; ++j) {
        if (!mask[j]) continue;
        dc_sum[j] += payload[p];
        ++p;
      }
    }
  }
  if (!quorum_met(accepted_count)) return;
  SPATL_TRACE_SPAN("fl/aggregate");

  if (robust) {
    // Robust masked aggregation: per-coordinate statistics run over the
    // clients that transmitted each coordinate; Krum scores pairs on their
    // shared support. The center replaces eq. 12's per-coordinate mean.
    std::vector<fl::RobustUpdate> ups(pending.size());
    for (std::size_t s = 0; s < pending.size(); ++s) {
      ups[s] = {pending[s].client, 1.0, &pending[s].deltas, &pending[s].mask};
    }
    const auto outcome = robust_combine(ups, shared_dim, nullptr);
    const auto excluded = [&](std::size_t client) {
      return std::find(outcome.excluded.begin(), outcome.excluded.end(),
                       client) != outcome.excluded.end();
    };
    std::vector<float> w_new = w_global;
    for (std::size_t j = 0; j < shared_dim; ++j) {
      if (outcome.defined[j]) {
        w_new[j] += float(options_.server_lr * double(outcome.value[j]));
      }
    }
    nn::unflatten_values(w_new, global_shared);
    if (options_.gradient_control) {
      // eq. 11's c += sum(dc)/N with the per-coordinate owner mean replaced
      // by the robust center over the clients the aggregator kept.
      std::vector<fl::RobustUpdate> dc_ups;
      std::vector<std::uint32_t> c_count(enc_dim, 0);
      for (const auto& pm : pending) {
        if (excluded(pm.client)) continue;
        dc_ups.push_back({pm.client, 1.0, &pm.dc, &pm.cmask});
        for (std::size_t j = 0; j < enc_dim; ++j) {
          if (pm.cmask[j]) ++c_count[j];
        }
      }
      if (!dc_ups.empty()) {
        const auto dc_out = robust_->aggregate(dc_ups, enc_dim, nullptr);
        SPATL_DCHECK(dc_out.value.size() == enc_dim &&
                     dc_out.defined.size() == enc_dim);
        stats_.clipped += dc_out.clipped;
        const double inv_n = 1.0 / double(env_.num_clients());
        for (std::size_t j = 0; j < enc_dim; ++j) {
          if (dc_out.defined[j]) {
            server_control_[j] +=
                float(double(c_count[j]) * inv_n * double(dc_out.value[j]));
          }
        }
      }
    }
    return;
  }

  // Server: masked aggregation (eq. 12) ...
  std::vector<float> w_new = w_global;
  for (std::size_t j = 0; j < shared_dim; ++j) {
    if (count[j] == 0) continue;
    w_new[j] += float(options_.server_lr * delta_sum[j] / double(count[j]));
  }
  nn::unflatten_values(w_new, global_shared);
  // ... and the control update (eq. 11): c += sum(dc)/N.
  if (options_.gradient_control) {
    const double inv_n = 1.0 / double(env_.num_clients());
    for (std::size_t j = 0; j < enc_dim; ++j) {
      server_control_[j] += float(dc_sum[j] * inv_n);
    }
  }
}

fl::EvalSummary SpatlAlgorithm::evaluate_clients() {
  SPATL_TRACE_SPAN("fl/eval");
  fl::EvalSummary summary;
  for (std::size_t i = 0; i < env_.num_clients(); ++i) {
    SpatlClientState& state = client_state(i);
    sync_encoder_to_client(state);  // deploy the current shared encoder
    const auto r = data::evaluate(state.model, env_.client(i).val);
    summary.avg_accuracy += r.accuracy;
    summary.avg_loss += r.loss;
  }
  const double n = double(env_.num_clients());
  summary.avg_accuracy /= n;
  summary.avg_loss /= n;
  return summary;
}

std::vector<double> SpatlAlgorithm::per_client_accuracy() {
  std::vector<double> acc(env_.num_clients(), 0.0);
  for (std::size_t i = 0; i < env_.num_clients(); ++i) {
    SpatlClientState& state = client_state(i);
    sync_encoder_to_client(state);
    acc[i] = data::evaluate(state.model, env_.client(i).val).accuracy;
  }
  return acc;
}

std::vector<double> SpatlAlgorithm::client_flops_ratios() const {
  std::vector<double> out;
  out.reserve(clients_.size());
  for (const auto& c : clients_) {
    out.push_back(c ? c->last_flops_ratio : 1.0);
  }
  return out;
}

std::vector<double> SpatlAlgorithm::client_sparsities() const {
  std::vector<double> out;
  out.reserve(clients_.size());
  for (const auto& c : clients_) {
    out.push_back(c ? c->last_sparsity : 0.0);
  }
  return out;
}

void SpatlAlgorithm::save_state(fl::RunCheckpoint& out) {
  fl::FederatedAlgorithm::save_state(out);
  out.entries.push_back(fl::pack_floats("spatl/c", server_control_));
  out.entries.push_back(
      fl::pack_u64s("spatl/round", {std::uint64_t(round_)}));
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const auto& c = clients_[i];
    if (!c) continue;
    const std::string p = "spatl/client/" + std::to_string(i) + "/";
    out.entries.push_back(
        fl::pack_floats(p + "w", nn::flatten_values(c->model.all_params())));
    out.entries.push_back(
        fl::pack_floats(p + "bn", fl::flatten_bn_stats(c->model)));
    out.entries.push_back(fl::pack_floats(p + "c", c->control));
    out.entries.push_back(
        fl::pack_u64s(p + "part", {std::uint64_t(c->participations)}));
    out.entries.push_back(fl::pack_doubles(
        p + "metrics", {c->last_flops_ratio, c->last_sparsity}));
    rl::PpoAgent& agent = *c->agent;
    out.entries.push_back(fl::pack_floats(
        p + "agent/net", nn::flatten_values(agent.network().all_params())));
    out.entries.push_back(fl::pack_floats(
        p + "agent/m", flatten_nested(agent.adam().first_moments())));
    out.entries.push_back(fl::pack_floats(
        p + "agent/v", flatten_nested(agent.adam().second_moments())));
    out.entries.push_back(
        fl::pack_u64s(p + "agent/t", {std::uint64_t(agent.adam().step_count())}));
    out.entries.push_back(fl::pack_u64s(
        p + "agent/finetune", {std::uint64_t(agent.finetune() ? 1 : 0)}));
    out.entries.push_back(fl::pack_rng(p + "agent/rng", agent.rng()));
  }
}

void SpatlAlgorithm::load_state(const fl::RunCheckpoint& in) {
  fl::FederatedAlgorithm::load_state(in);
  server_control_ = fl::unpack_floats(in.at("spatl/c"));
  round_ = std::size_t(fl::unpack_u64s(in.at("spatl/round"))[0]);
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const std::string p = "spatl/client/" + std::to_string(i) + "/";
    const tensor::Tensor* w = in.find(p + "w");
    if (w == nullptr) {
      // Not materialized at capture time; recreate lazily on first use.
      clients_[i].reset();
      continue;
    }
    SpatlClientState& state = client_state(i);
    auto views = state.model.all_params();
    nn::unflatten_values(fl::unpack_floats(*w), views);
    fl::unflatten_bn_stats(fl::unpack_floats(in.at(p + "bn")), state.model);
    state.control = fl::unpack_floats(in.at(p + "c"));
    state.participations =
        std::size_t(fl::unpack_u64s(in.at(p + "part"))[0]);
    const auto metrics = fl::unpack_doubles(in.at(p + "metrics"));
    state.last_flops_ratio = metrics[0];
    state.last_sparsity = metrics[1];
    rl::PpoAgent& agent = *state.agent;
    // Finetune first: flipping it rebinds the optimizer to the matching
    // trainable set, so the moment layout below lines up.
    agent.set_finetune(fl::unpack_u64s(in.at(p + "agent/finetune"))[0] != 0);
    auto net_views = agent.network().all_params();
    nn::unflatten_values(fl::unpack_floats(in.at(p + "agent/net")),
                         net_views);
    restore_nested(fl::unpack_floats(in.at(p + "agent/m")),
                   agent.adam().first_moments());
    restore_nested(fl::unpack_floats(in.at(p + "agent/v")),
                   agent.adam().second_moments());
    agent.adam().set_step_count(
        std::int64_t(fl::unpack_u64s(in.at(p + "agent/t"))[0]));
    fl::unpack_rng(in.at(p + "agent/rng"), agent.rng());
  }
}

double SpatlAlgorithm::adapt_cold_client(std::size_t client,
                                         std::size_t epochs) {
  SpatlClientState& state = client_state(client);
  sync_encoder_to_client(state);
  ledger_.add_downlink_floats(server_control_.size());
  data::TrainOptions opts = config_.local;
  opts.epochs = epochs;
  common::Rng rng(config_.seed ^ (0xC01DULL * (client + 1)));
  // eq. 4: optimize the local predictor only; the encoder stays fixed.
  data::train_supervised(state.model, env_.client(client).train, opts, rng,
                         state.model.predictor_params());
  return data::evaluate(state.model, env_.client(client).val).accuracy;
}

}  // namespace spatl::core
