// SPATL: Salient Parameter Aggregation and Transfer Learning (paper §IV).
//
// Per round, each selected client:
//   1. downloads the shared encoder (and the server control variate c),
//   2. runs local SGD with encoder-gradient correction  g += c - c_i  (eq. 9)
//      while its private predictor transfers the encoder's knowledge to the
//      local non-IID data (eq. 3),
//   3. updates its control variate c_i via eq. 10,
//   4. asks its (fine-tuned) GNN-RL agent for per-layer sparsity actions,
//      realizes them as channel masks, and uploads only the selected salient
//      parameters + channel indices (+ the correction delta on the same
//      positions),
// and the server applies the masked aggregation of eq. 12 and the variate
// update of eq. 11.
//
// Ablation toggles map 1:1 to the paper's §V-F studies: salient selection
// (Fig. 4), transfer learning (Fig. 5a), gradient control (Fig. 5b).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "fl/algorithm.hpp"
#include "rl/ppo.hpp"
#include "rl/pruning_env.hpp"

namespace spatl::core {

struct SpatlOptions {
  bool salient_selection = true;   // off => upload the dense encoder
  bool transfer_learning = true;   // off => predictor is shared/aggregated too
  bool gradient_control = true;    // off => plain local SGD
  double flops_budget = 0.6;       // RL selection budget (fraction of dense)
  double server_lr = 1.0;          // eq. 12 step size
  rl::PpoConfig ppo;               // agent hyper-parameters
  std::size_t agent_finetune_rounds = 10;   // paper: first 10 rounds
  std::size_t agent_finetune_episodes = 4;  // episodes per fine-tune round
  prune::Criterion selection_criterion = prune::Criterion::kL2;
};

/// Persistent client-side state: the private predictor (and BN statistics)
/// live inside `model`; `control` is c_i; `agent` is the locally customized
/// salient-parameter selector.
struct SpatlClientState {
  models::SplitModel model;
  std::vector<float> control;  // c_i over encoder params
  std::unique_ptr<rl::PpoAgent> agent;
  std::size_t participations = 0;
  double last_flops_ratio = 1.0;
  double last_sparsity = 0.0;
};

class SpatlAlgorithm : public fl::FederatedAlgorithm {
 public:
  /// `pretrained_agent` is the network-pruning-pretrained selector that
  /// clients clone and fine-tune (§IV-B). Pass nullptr to start clients
  /// from a fresh agent (used by ablations/tests).
  SpatlAlgorithm(fl::FlEnvironment& env, fl::FlConfig config,
                 SpatlOptions options,
                 const rl::PpoAgent* pretrained_agent = nullptr);

  std::string name() const override { return "spatl"; }
  /// Salient masked uploads buffer correctly: a parked update keeps its
  /// upload mask alongside the compacted deltas, so a late commit replays
  /// through the same per-coordinate owner counting (and the masked-payload
  /// aware robust aggregator) as a fresh one.
  bool supports_async() const override { return true; }
  void run_round(const std::vector<std::size_t>& selected) override;
  /// Admission-budget estimate: the dense shared encoder (doubled when
  /// gradient control ships deltas on the same positions) — a conservative
  /// bound on the masked salient payload.
  std::size_t uplink_cost_floats() override;

  /// SPATL deploys heterogeneous models: evaluation uses each client's own
  /// predictor and BN statistics with the current global encoder.
  fl::EvalSummary evaluate_clients() override;
  std::vector<double> per_client_accuracy() override;

  /// Per-client FLOPs ratio / sparsity after the latest selection
  /// (Table "inference").
  std::vector<double> client_flops_ratios() const;
  std::vector<double> client_sparsities() const;

  const SpatlOptions& options() const { return options_; }

  /// Adapt a client that never participated: download the encoder and train
  /// only the local predictor (eq. 4). Returns its validation accuracy.
  double adapt_cold_client(std::size_t client, std::size_t epochs);

  /// Access a client's current model (creates state lazily).
  models::SplitModel& client_model(std::size_t client);

  std::size_t current_round() const { return round_; }

  /// Crash-recoverable rounds: captures the round counter, server control
  /// variate, and every materialized client's model, BN statistics, control
  /// variate, and PPO agent (network, Adam moments, RNG cursor). Clients
  /// not yet materialized at capture time are recreated lazily after
  /// restore, which is deterministic by construction.
  void save_state(fl::RunCheckpoint& out) override;
  void load_state(const fl::RunCheckpoint& in) override;

 private:
  SpatlClientState& client_state(std::size_t client);
  void sync_encoder_to_client(SpatlClientState& state);
  /// 0/1 include-mask over the flat shared vector from the client's gates.
  std::vector<std::uint8_t> upload_mask(models::SplitModel& model,
                                        std::size_t shared_dim) const;

  SpatlOptions options_;
  std::unique_ptr<rl::PpoAgent> pretrained_;
  std::vector<std::unique_ptr<SpatlClientState>> clients_;
  std::vector<float> server_control_;  // c over encoder params
  std::size_t round_ = 0;
};

}  // namespace spatl::core
