#include "core/transfer.hpp"

#include "data/loader.hpp"
#include "data/synthetic.hpp"

namespace spatl::core {

double transfer_evaluate(models::SplitModel& source,
                         const data::Dataset& transfer_train,
                         const data::Dataset& transfer_test,
                         std::size_t epochs, const data::TrainOptions& opts,
                         common::Rng& rng, bool full_finetune) {
  // Fresh model of the same architecture; encoder copied, predictor re-init.
  models::SplitModel target = models::build_model(source.config(), rng);
  nn::unflatten_values(nn::flatten_values(source.encoder_params()),
                       target.encoder_params());
  const auto& sbns = source.batch_norms();
  const auto& tbns = target.batch_norms();
  for (std::size_t i = 0; i < sbns.size(); ++i) {
    tbns[i]->running_mean() = sbns[i]->running_mean();
    tbns[i]->running_var() = sbns[i]->running_var();
  }

  data::TrainOptions tune = opts;
  tune.epochs = epochs;
  data::train_supervised(target, transfer_train, tune, rng,
                         full_finetune ? target.all_params()
                                       : target.predictor_params());
  return data::evaluate(target, transfer_test).accuracy;
}

PretrainResult pretrain_selection_agent(const PretrainConfig& config) {
  common::Rng rng(config.seed);

  data::SyntheticConfig dcfg;
  dcfg.num_samples = config.train_samples + config.val_samples;
  dcfg.image_size = config.input_size;
  dcfg.seed = config.seed ^ 0xDA7AULL;
  const data::Dataset full = data::make_synth_cifar(dcfg);
  const data::Dataset train = full.slice(0, config.train_samples);
  const data::Dataset val =
      full.slice(config.train_samples, full.size());

  models::ModelConfig mcfg;
  mcfg.arch = config.arch;
  mcfg.input_size = config.input_size;
  mcfg.width_mult = config.width_mult;
  models::SplitModel model = models::build_model(mcfg, rng);

  // Supervised warmup so pruning rewards reflect a non-trivial accuracy
  // landscape (a random network rewards every policy equally).
  data::TrainOptions topts;
  topts.epochs = config.warmup_epochs;
  topts.lr = 0.02;
  data::train_supervised(model, train, topts, rng, model.all_params());

  rl::PruningEnvConfig ecfg;
  ecfg.flops_budget = config.flops_budget;
  rl::PruningEnv env(model, val, ecfg);

  PretrainResult result{
      rl::PpoAgent(std::size_t(graph::kNumNodeFeatures), config.ppo,
                   config.seed ^ 0xA6E47ULL),
      {}};
  result.history = rl::train_on_pruning(result.agent, env, config.rl_rounds,
                                        config.episodes_per_round);
  return result;
}

}  // namespace spatl::core
