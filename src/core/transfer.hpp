// Transfer-learning evaluation (paper §V-E, Table III) and agent
// pre-training (§IV-B / §V-F4).
#pragma once

#include "data/dataset.hpp"
#include "data/train.hpp"
#include "models/split_model.hpp"
#include "rl/ppo.hpp"
#include "rl/pruning_env.hpp"

namespace spatl::core {

struct TransferResult {
  double accuracy = 0.0;       // on the held-out transfer test set
  double baseline_accuracy = 0.0;  // same pipeline from a random encoder
};

/// Transfer a trained model's encoder to a new data portion: freeze the
/// encoder, fit a fresh predictor on `transfer_train`, evaluate on
/// `transfer_test`. `full_finetune` additionally unfreezes the encoder
/// (regular transfer learning, as in the paper's Table III protocol).
double transfer_evaluate(models::SplitModel& source,
                         const data::Dataset& transfer_train,
                         const data::Dataset& transfer_test,
                         std::size_t epochs, const data::TrainOptions& opts,
                         common::Rng& rng, bool full_finetune = false);

struct PretrainConfig {
  std::string arch = "resnet56";  // the paper pre-trains on ResNet-56
  std::size_t input_size = 12;
  double width_mult = 0.25;
  std::size_t warmup_epochs = 2;   // supervised warmup before pruning search
  std::size_t rl_rounds = 20;      // policy-update rounds
  std::size_t episodes_per_round = 4;
  double flops_budget = 0.6;
  std::size_t train_samples = 600;
  std::size_t val_samples = 200;
  rl::PpoConfig ppo;
  std::uint64_t seed = 1234;
};

struct PretrainResult {
  rl::PpoAgent agent;
  rl::RlTrainHistory history;
};

/// Pre-train a salient-parameter selection agent on the network-pruning
/// task (the paper's §IV-B workflow): warm up a ResNet-56-style model on
/// synthetic data, then run PPO against the pruning environment.
PretrainResult pretrain_selection_agent(const PretrainConfig& config);

}  // namespace spatl::core
