#include "data/dataset.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace spatl::data {

Dataset::Dataset(Tensor images, std::vector<int> labels)
    : images_(std::move(images)), labels_(std::move(labels)) {
  if (images_.rank() != 4 || images_.dim(0) != labels_.size()) {
    throw std::invalid_argument(
        "Dataset: images must be (N,C,H,W) with N == labels.size()");
  }
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  const std::size_t item = images_.numel() / std::max<std::size_t>(1, size());
  Tensor imgs({indices.size(), channels(), height(), width()});
  std::vector<int> labels(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    if (src >= size()) throw std::out_of_range("Dataset::subset");
    std::memcpy(imgs.data() + i * item, images_.data() + src * item,
                item * sizeof(float));
    labels[i] = labels_[src];
  }
  return Dataset(std::move(imgs), std::move(labels));
}

Dataset Dataset::slice(std::size_t begin, std::size_t end) const {
  if (begin > end || end > size()) throw std::out_of_range("Dataset::slice");
  std::vector<std::size_t> idx(end - begin);
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = begin + i;
  return subset(idx);
}

void Dataset::gather(const std::vector<std::size_t>& indices,
                     std::size_t offset, std::size_t n, Tensor& batch_images,
                     std::vector<int>& batch_labels) const {
  const std::size_t item = images_.numel() / std::max<std::size_t>(1, size());
  const tensor::Shape shape{n, channels(), height(), width()};
  if (batch_images.shape() != shape) batch_images = Tensor(shape);
  batch_labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t src = indices[offset + i];
    std::memcpy(batch_images.data() + i * item, images_.data() + src * item,
                item * sizeof(float));
    batch_labels[i] = labels_[src];
  }
}

std::size_t Dataset::num_classes() const {
  int mx = -1;
  for (int y : labels_) mx = std::max(mx, y);
  return std::size_t(mx + 1);
}

std::vector<std::size_t> Dataset::label_histogram(
    std::size_t num_classes) const {
  std::vector<std::size_t> hist(num_classes, 0);
  for (int y : labels_) {
    if (y >= 0 && std::size_t(y) < num_classes) ++hist[std::size_t(y)];
  }
  return hist;
}

}  // namespace spatl::data
