// In-memory labeled image dataset (NCHW float32 + integer labels).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace spatl::data {

using tensor::Tensor;

class Dataset {
 public:
  Dataset() = default;
  Dataset(Tensor images, std::vector<int> labels);

  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  std::size_t channels() const { return images_.rank() == 4 ? images_.dim(1) : 0; }
  std::size_t height() const { return images_.rank() == 4 ? images_.dim(2) : 0; }
  std::size_t width() const { return images_.rank() == 4 ? images_.dim(3) : 0; }

  const Tensor& images() const { return images_; }
  const std::vector<int>& labels() const { return labels_; }

  /// Copy the rows at `indices` into a new dataset.
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Copy rows [begin, end) into a new dataset.
  Dataset slice(std::size_t begin, std::size_t end) const;

  /// Materialize a batch: images (n, C, H, W) + labels for the rows at
  /// `indices[offset .. offset+n)`.
  void gather(const std::vector<std::size_t>& indices, std::size_t offset,
              std::size_t n, Tensor& batch_images,
              std::vector<int>& batch_labels) const;

  /// Number of distinct labels (max label + 1).
  std::size_t num_classes() const;

  /// Histogram of labels (size = num_classes of the full label range).
  std::vector<std::size_t> label_histogram(std::size_t num_classes) const;

 private:
  Tensor images_;  // (N, C, H, W)
  std::vector<int> labels_;
};

}  // namespace spatl::data
