#include "data/loader.hpp"

#include <numeric>

#include "tensor/ops.hpp"

namespace spatl::data {

DataLoader::DataLoader(const Dataset& dataset, std::size_t batch_size,
                       common::Rng& rng, bool drop_last)
    : dataset_(dataset),
      batch_size_(batch_size),
      rng_(rng),
      drop_last_(drop_last),
      order_(dataset.size()) {
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  rng_.shuffle(order_);
}

bool DataLoader::next(Tensor& images, std::vector<int>& labels) {
  if (cursor_ >= order_.size()) return false;
  std::size_t n = std::min(batch_size_, order_.size() - cursor_);
  if (drop_last_ && n < batch_size_) return false;
  dataset_.gather(order_, cursor_, n, images, labels);
  cursor_ += n;
  return true;
}

void DataLoader::reshuffle() {
  rng_.shuffle(order_);
  cursor_ = 0;
}

std::size_t DataLoader::batches_per_epoch() const {
  if (drop_last_) return order_.size() / batch_size_;
  return (order_.size() + batch_size_ - 1) / batch_size_;
}

EvalResult evaluate(models::SplitModel& model, const Dataset& dataset,
                    std::size_t batch_size) {
  EvalResult result;
  if (dataset.empty()) return result;
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  Tensor images;
  std::vector<int> labels;
  double loss_sum = 0.0;
  std::size_t hits = 0;
  for (std::size_t off = 0; off < order.size(); off += batch_size) {
    const std::size_t n = std::min(batch_size, order.size() - off);
    dataset.gather(order, off, n, images, labels);
    const Tensor logits = model.forward(images, /*train=*/false);
    loss_sum += double(tensor::cross_entropy(logits, labels)) * double(n);
    hits += std::size_t(tensor::accuracy(logits, labels) * double(n) + 0.5);
  }
  result.samples = dataset.size();
  result.loss = loss_sum / double(dataset.size());
  result.accuracy = double(hits) / double(dataset.size());
  return result;
}

}  // namespace spatl::data
