// Mini-batch iteration and model evaluation over Datasets.
#pragma once

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "models/split_model.hpp"

namespace spatl::data {

/// Shuffled mini-batch iterator over a dataset (one pass = one epoch).
class DataLoader {
 public:
  DataLoader(const Dataset& dataset, std::size_t batch_size, common::Rng& rng,
             bool drop_last = false);

  /// Fill the next batch; returns false at end of epoch. Call reshuffle()
  /// to start a new epoch.
  bool next(Tensor& images, std::vector<int>& labels);

  void reshuffle();

  std::size_t batches_per_epoch() const;

 private:
  const Dataset& dataset_;
  std::size_t batch_size_;
  common::Rng& rng_;
  bool drop_last_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

struct EvalResult {
  double accuracy = 0.0;
  double loss = 0.0;
  std::size_t samples = 0;
};

/// Top-1 accuracy + mean cross-entropy loss over a dataset (eval mode).
EvalResult evaluate(models::SplitModel& model, const Dataset& dataset,
                    std::size_t batch_size = 64);

}  // namespace spatl::data
