#include "data/metrics.hpp"

#include <numeric>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace spatl::data {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : n_(num_classes), cells_(num_classes * num_classes, 0) {}

void ConfusionMatrix::add(int truth, int predicted) {
  if (truth < 0 || std::size_t(truth) >= n_ || predicted < 0 ||
      std::size_t(predicted) >= n_) {
    throw std::out_of_range("ConfusionMatrix::add: label out of range");
  }
  ++cells_[std::size_t(truth) * n_ + std::size_t(predicted)];
  ++total_;
}

void ConfusionMatrix::add_batch(const std::vector<int>& truths,
                                const std::vector<int>& predictions) {
  if (truths.size() != predictions.size()) {
    throw std::invalid_argument("ConfusionMatrix::add_batch: size mismatch");
  }
  for (std::size_t i = 0; i < truths.size(); ++i) {
    add(truths[i], predictions[i]);
  }
}

std::size_t ConfusionMatrix::count(int truth, int predicted) const {
  return cells_[std::size_t(truth) * n_ + std::size_t(predicted)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t c = 0; c < n_; ++c) hits += cells_[c * n_ + c];
  return double(hits) / double(total_);
}

double ConfusionMatrix::recall(int cls) const {
  const std::size_t c = std::size_t(cls);
  std::size_t row = 0;
  for (std::size_t j = 0; j < n_; ++j) row += cells_[c * n_ + j];
  return row == 0 ? 0.0 : double(cells_[c * n_ + c]) / double(row);
}

double ConfusionMatrix::precision(int cls) const {
  const std::size_t c = std::size_t(cls);
  std::size_t col = 0;
  for (std::size_t i = 0; i < n_; ++i) col += cells_[i * n_ + c];
  return col == 0 ? 0.0 : double(cells_[c * n_ + c]) / double(col);
}

double ConfusionMatrix::f1(int cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  std::size_t present = 0;
  for (std::size_t c = 0; c < n_; ++c) {
    std::size_t row = 0;
    for (std::size_t j = 0; j < n_; ++j) row += cells_[c * n_ + j];
    if (row == 0) continue;
    sum += f1(int(c));
    ++present;
  }
  return present == 0 ? 0.0 : sum / double(present);
}

std::vector<double> ConfusionMatrix::per_class_accuracy() const {
  std::vector<double> out(n_);
  for (std::size_t c = 0; c < n_; ++c) out[c] = recall(int(c));
  return out;
}

ConfusionMatrix evaluate_confusion(models::SplitModel& model,
                                   const Dataset& dataset,
                                   std::size_t batch_size) {
  ConfusionMatrix cm(std::max(dataset.num_classes(),
                              std::size_t(model.config().num_classes)));
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  Tensor images;
  std::vector<int> labels;
  for (std::size_t off = 0; off < order.size(); off += batch_size) {
    const std::size_t n = std::min(batch_size, order.size() - off);
    dataset.gather(order, off, n, images, labels);
    const Tensor logits = model.forward(images, /*train=*/false);
    cm.add_batch(labels, tensor::argmax_rows(logits));
  }
  return cm;
}

}  // namespace spatl::data
