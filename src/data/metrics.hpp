// Classification metrics beyond top-1 accuracy: confusion matrix,
// per-class accuracy (recall), and macro-F1 — used to study how non-IID
// training skews per-class behaviour across clients.
#pragma once

#include <vector>

#include "data/dataset.hpp"
#include "models/split_model.hpp"

namespace spatl::data {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(int truth, int predicted);
  void add_batch(const std::vector<int>& truths,
                 const std::vector<int>& predictions);

  std::size_t num_classes() const { return n_; }
  std::size_t count(int truth, int predicted) const;
  std::size_t total() const { return total_; }

  double accuracy() const;
  /// Recall of one class (diagonal / row sum); 0 when the class is absent.
  double recall(int cls) const;
  double precision(int cls) const;
  double f1(int cls) const;
  /// Unweighted mean F1 over classes that appear in the truth labels.
  double macro_f1() const;
  std::vector<double> per_class_accuracy() const;

 private:
  std::size_t n_;
  std::vector<std::size_t> cells_;  // row = truth, col = predicted
  std::size_t total_ = 0;
};

/// Evaluate a model into a confusion matrix.
ConfusionMatrix evaluate_confusion(models::SplitModel& model,
                                   const Dataset& dataset,
                                   std::size_t batch_size = 64);

}  // namespace spatl::data
