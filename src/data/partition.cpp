#include "data/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace spatl::data {

PartitionResult dirichlet_partition(const Dataset& dataset,
                                    std::size_t num_clients,
                                    const DirichletOptions& opts,
                                    common::Rng& rng) {
  if (num_clients == 0) {
    throw std::invalid_argument("dirichlet_partition: num_clients == 0");
  }
  const std::size_t num_classes = dataset.num_classes();
  // Group sample indices by class once.
  std::vector<std::vector<std::size_t>> by_class(num_classes);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    by_class[std::size_t(dataset.labels()[i])].push_back(i);
  }

  PartitionResult result;
  for (std::size_t attempt = 0; attempt < opts.max_retries; ++attempt) {
    result.client_indices.assign(num_clients, {});
    for (std::size_t k = 0; k < num_classes; ++k) {
      auto idx = by_class[k];
      rng.shuffle(idx);
      const auto props = rng.dirichlet(opts.beta, num_clients);
      // Cumulative cut points over the class's samples.
      std::size_t start = 0;
      double cum = 0.0;
      for (std::size_t c = 0; c < num_clients; ++c) {
        cum += props[c];
        const std::size_t end =
            (c + 1 == num_clients)
                ? idx.size()
                : std::min(idx.size(),
                           std::size_t(cum * double(idx.size()) + 0.5));
        for (std::size_t i = start; i < end; ++i) {
          result.client_indices[c].push_back(idx[i]);
        }
        start = std::max(start, end);
      }
    }
    const auto min_size =
        std::min_element(result.client_indices.begin(),
                         result.client_indices.end(),
                         [](const auto& a, const auto& b) {
                           return a.size() < b.size();
                         })
            ->size();
    if (min_size >= opts.min_per_client) {
      for (auto& ci : result.client_indices) rng.shuffle(ci);
      return result;
    }
  }
  throw std::runtime_error(
      "dirichlet_partition: could not satisfy min_per_client; "
      "increase samples or beta");
}

PartitionResult leaf_style_partition(const Dataset& dataset,
                                     std::size_t num_clients,
                                     const LeafStyleOptions& opts,
                                     common::Rng& rng) {
  if (num_clients == 0) {
    throw std::invalid_argument("leaf_style_partition: num_clients == 0");
  }
  const std::size_t num_classes = dataset.num_classes();
  std::vector<std::vector<std::size_t>> by_class(num_classes);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    by_class[std::size_t(dataset.labels()[i])].push_back(i);
  }
  for (auto& v : by_class) rng.shuffle(v);
  std::vector<std::size_t> next_in_class(num_classes, 0);

  // Each client draws a class-preference distribution; samples are assigned
  // by repeatedly sampling a preferred class that still has spare samples.
  std::vector<std::vector<double>> prefs(num_clients);
  for (auto& p : prefs) p = rng.dirichlet(opts.class_preference_alpha,
                                          num_classes);

  PartitionResult result;
  result.client_indices.assign(num_clients, {});
  const std::size_t per_client = dataset.size() / num_clients;
  for (std::size_t c = 0; c < num_clients; ++c) {
    while (result.client_indices[c].size() < per_client) {
      // Restrict to classes with remaining samples.
      std::vector<double> w(num_classes, 0.0);
      double total = 0.0;
      for (std::size_t k = 0; k < num_classes; ++k) {
        if (next_in_class[k] < by_class[k].size()) {
          w[k] = prefs[c][k] + 1e-9;
          total += w[k];
        }
      }
      if (total <= 0.0) break;  // dataset exhausted
      const std::size_t k = rng.categorical(w);
      result.client_indices[c].push_back(by_class[k][next_in_class[k]++]);
    }
  }
  for (auto& ci : result.client_indices) {
    if (ci.size() < opts.min_per_client) {
      throw std::runtime_error(
          "leaf_style_partition: client below min_per_client");
    }
  }
  return result;
}

TrainValSplit split_train_val(std::vector<std::size_t> indices,
                              double val_fraction, common::Rng& rng) {
  rng.shuffle(indices);
  TrainValSplit out;
  const std::size_t val_n =
      std::max<std::size_t>(1, std::size_t(double(indices.size()) *
                                           val_fraction));
  if (val_n >= indices.size()) {
    throw std::invalid_argument("split_train_val: validation would consume "
                                "the whole client dataset");
  }
  out.val.assign(indices.end() - std::ptrdiff_t(val_n), indices.end());
  out.train.assign(indices.begin(), indices.end() - std::ptrdiff_t(val_n));
  return out;
}

}  // namespace spatl::data
