// Non-IID client partitions.
//
// DirichletPartitioner is the exact label-skew scheme of the Non-IID
// benchmark (Li et al., ICDE'22) the paper evaluates on: for each class,
// proportions over clients are drawn from Dir(beta) and the class's sample
// indices are split accordingly, re-drawing until every client holds a
// minimum number of samples. LeafStylePartitioner approximates LEAF's
// per-writer skew for the FEMNIST stand-in: each client has its own
// Dirichlet class preference.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace spatl::data {

struct PartitionResult {
  /// client -> indices into the source dataset.
  std::vector<std::vector<std::size_t>> client_indices;
};

struct DirichletOptions {
  double beta = 0.5;          // paper: Dir(0.5)
  std::size_t min_per_client = 8;
  std::size_t max_retries = 100;
};

PartitionResult dirichlet_partition(const Dataset& dataset,
                                    std::size_t num_clients,
                                    const DirichletOptions& opts,
                                    common::Rng& rng);

struct LeafStyleOptions {
  double class_preference_alpha = 0.3;  // lower = stronger per-writer skew
  std::size_t min_per_client = 8;
};

PartitionResult leaf_style_partition(const Dataset& dataset,
                                     std::size_t num_clients,
                                     const LeafStyleOptions& opts,
                                     common::Rng& rng);

/// Split one client's indices into train/validation (val_fraction at the
/// end, after a shuffle).
struct TrainValSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> val;
};
TrainValSplit split_train_val(std::vector<std::size_t> indices,
                              double val_fraction, common::Rng& rng);

}  // namespace spatl::data
