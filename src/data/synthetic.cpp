#include "data/synthetic.hpp"

#include <cmath>
#include <vector>

namespace spatl::data {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// A prototype is a smooth random field per channel: a sum of a few random
/// 2-D sinusoids. Smoothness matters — it gives conv filters real spatial
/// structure to latch onto, unlike white noise.
struct Prototype {
  std::vector<float> pixels;  // (C, H, W)
};

/// Per-class spectral signature: the frequencies are drawn once per class
/// and shared by all of its prototypes, so every prototype of a class has a
/// common, learnable spatial-frequency identity even under the random phase
/// and translation applied per sample.
struct ClassSignature {
  // [channel][component] -> (fx, fy)
  std::vector<std::pair<double, double>> freqs;  // channels * components
};

constexpr int kComponents = 4;

ClassSignature make_signature(const SyntheticConfig& cfg, common::Rng& rng) {
  ClassSignature sig;
  sig.freqs.reserve(cfg.channels * kComponents);
  for (std::size_t i = 0; i < cfg.channels * kComponents; ++i) {
    sig.freqs.emplace_back(rng.uniform(0.5, 3.0), rng.uniform(0.5, 3.0));
  }
  return sig;
}

Prototype make_prototype(const SyntheticConfig& cfg,
                         const ClassSignature& sig, common::Rng& rng) {
  Prototype proto;
  proto.pixels.assign(cfg.channels * cfg.image_size * cfg.image_size, 0.0f);
  const std::size_t hw = cfg.image_size * cfg.image_size;
  for (std::size_t c = 0; c < cfg.channels; ++c) {
    for (int comp = 0; comp < kComponents; ++comp) {
      const auto [fx, fy] = sig.freqs[c * kComponents + std::size_t(comp)];
      const double phase = rng.uniform(0.0, 2.0 * kPi);
      const double amp = rng.uniform(0.5, 1.0);
      const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
      for (std::size_t y = 0; y < cfg.image_size; ++y) {
        for (std::size_t x = 0; x < cfg.image_size; ++x) {
          const double u = double(x) / double(cfg.image_size);
          const double v = double(y) / double(cfg.image_size);
          proto.pixels[c * hw + y * cfg.image_size + x] += float(
              sign * amp * std::sin(2.0 * kPi * (fx * u + fy * v) + phase));
        }
      }
    }
  }
  // Normalize the prototype to zero mean / unit std so that classes differ
  // by structure, not by overall brightness.
  double mean = 0.0;
  for (float v : proto.pixels) mean += v;
  mean /= double(proto.pixels.size());
  double var = 0.0;
  for (float v : proto.pixels) var += (v - mean) * (v - mean);
  var /= double(proto.pixels.size());
  const float inv_std = float(1.0 / std::sqrt(var + 1e-8));
  for (float& v : proto.pixels) v = (v - float(mean)) * inv_std;
  return proto;
}

/// Stroke-like prototype for the FEMNIST stand-in: a few random line
/// segments rendered with a soft Gaussian pen, on a dark background.
Prototype make_stroke_prototype(const SyntheticConfig& cfg, common::Rng& rng) {
  Prototype proto;
  proto.pixels.assign(cfg.channels * cfg.image_size * cfg.image_size, 0.0f);
  const std::size_t n = cfg.image_size;
  const int num_strokes = int(rng.uniform_int(2, 4));
  for (int s = 0; s < num_strokes; ++s) {
    const double x0 = rng.uniform(0.1, 0.9) * double(n);
    const double y0 = rng.uniform(0.1, 0.9) * double(n);
    const double x1 = rng.uniform(0.1, 0.9) * double(n);
    const double y1 = rng.uniform(0.1, 0.9) * double(n);
    const double sigma = rng.uniform(0.6, 1.2);
    const int steps = int(n) * 2;
    for (int t = 0; t <= steps; ++t) {
      const double a = double(t) / double(steps);
      const double cx = x0 + a * (x1 - x0);
      const double cy = y0 + a * (y1 - y0);
      for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t x = 0; x < n; ++x) {
          const double d2 = (double(x) - cx) * (double(x) - cx) +
                            (double(y) - cy) * (double(y) - cy);
          const float add = float(std::exp(-d2 / (2.0 * sigma * sigma)));
          float& px = proto.pixels[y * n + x];
          px = std::min(1.5f, px + 0.4f * add);
        }
      }
    }
  }
  return proto;
}

Dataset generate(const SyntheticConfig& cfg, const std::vector<int>& labels,
                 bool strokes) {
  common::Rng proto_rng(cfg.seed);
  std::vector<Prototype> protos;
  protos.reserve(cfg.num_classes * cfg.prototypes_per_class);
  for (std::size_t k = 0; k < cfg.num_classes; ++k) {
    const ClassSignature sig = make_signature(cfg, proto_rng);
    for (std::size_t p = 0; p < cfg.prototypes_per_class; ++p) {
      protos.push_back(strokes ? make_stroke_prototype(cfg, proto_rng)
                               : make_prototype(cfg, sig, proto_rng));
    }
  }

  common::Rng sample_rng(cfg.seed ^ 0x5A5A5A5AULL);
  const std::size_t hw = cfg.image_size * cfg.image_size;
  const std::size_t item = cfg.channels * hw;
  Tensor images({labels.size(), cfg.channels, cfg.image_size, cfg.image_size});
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::size_t k = std::size_t(labels[i]);
    const std::size_t p = sample_rng.uniform_index(cfg.prototypes_per_class);
    const Prototype& proto = protos[k * cfg.prototypes_per_class + p];
    const int dx = int(sample_rng.uniform_int(-cfg.max_shift, cfg.max_shift));
    const int dy = int(sample_rng.uniform_int(-cfg.max_shift, cfg.max_shift));
    const float gain =
        1.0f + sample_rng.uniform_float(-cfg.brightness_jitter,
                                        cfg.brightness_jitter);
    float* dst = images.data() + i * item;
    for (std::size_t c = 0; c < cfg.channels; ++c) {
      for (std::size_t y = 0; y < cfg.image_size; ++y) {
        for (std::size_t x = 0; x < cfg.image_size; ++x) {
          // Toroidal shift keeps statistics stationary at the borders.
          const std::size_t sy =
              std::size_t((int(y) + dy + int(cfg.image_size)) %
                          int(cfg.image_size));
          const std::size_t sx =
              std::size_t((int(x) + dx + int(cfg.image_size)) %
                          int(cfg.image_size));
          const float base = proto.pixels[c * hw + sy * cfg.image_size + sx];
          dst[c * hw + y * cfg.image_size + x] =
              gain * base +
              sample_rng.normal_float(0.0f, cfg.noise_stddev);
        }
      }
    }
  }
  return Dataset(std::move(images), labels);
}

std::vector<int> balanced_labels(const SyntheticConfig& cfg) {
  std::vector<int> labels(cfg.num_samples);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = int(i % cfg.num_classes);
  }
  // Shuffle so class order carries no information downstream.
  common::Rng rng(cfg.seed ^ 0xBEEF);
  rng.shuffle(labels);
  return labels;
}

}  // namespace

Dataset make_synth_cifar(const SyntheticConfig& config) {
  return generate(config, balanced_labels(config), /*strokes=*/false);
}

Dataset make_synth_femnist(SyntheticConfig config) {
  config.channels = 1;
  if (config.num_classes == 10) config.num_classes = 62;
  return generate(config, balanced_labels(config), /*strokes=*/true);
}

Dataset make_synthetic_with_labels(const SyntheticConfig& config,
                                   const std::vector<int>& labels) {
  return generate(config, labels, config.channels == 1);
}

}  // namespace spatl::data
