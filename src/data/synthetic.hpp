// Synthetic stand-ins for CIFAR-10 and FEMNIST.
//
// The real datasets are not available offline, so we generate
// class-conditional image distributions that exercise exactly the same code
// paths (conv trunks, per-class accuracy, non-IID partitions). Each class is
// defined by a small set of fixed low-frequency "texture prototypes";
// samples are a prototype plus random translation, brightness jitter, and
// pixel noise. Difficulty is tunable via the noise level: classes are
// separable by a CNN but not linearly trivial.
//
// DESIGN.md documents why this preserves the paper's FL phenomena: client
// drift, heterogeneity, and convergence ordering all derive from the label
// partition, which we reproduce exactly (see partition.hpp).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace spatl::data {

struct SyntheticConfig {
  std::size_t num_samples = 2000;
  std::size_t num_classes = 10;
  std::size_t channels = 3;
  std::size_t image_size = 16;
  std::size_t prototypes_per_class = 3;
  float noise_stddev = 0.25f;    // per-pixel Gaussian noise
  int max_shift = 2;             // random translation in pixels
  float brightness_jitter = 0.2f;
  std::uint64_t seed = 42;       // governs both prototypes and samples
};

/// CIFAR-10 stand-in: 10 classes, RGB.
Dataset make_synth_cifar(const SyntheticConfig& config);

/// FEMNIST stand-in: 62 classes, grayscale, stroke-like prototypes.
Dataset make_synth_femnist(SyntheticConfig config);

/// Generate a dataset with an explicit per-sample label sequence (used by
/// partition-aware generators that want exact class counts).
Dataset make_synthetic_with_labels(const SyntheticConfig& config,
                                   const std::vector<int>& labels);

}  // namespace spatl::data
