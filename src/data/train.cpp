#include "data/train.hpp"

#include "tensor/ops.hpp"

namespace spatl::data {

TrainStats train_supervised(models::SplitModel& model,
                            const Dataset& train_set,
                            const TrainOptions& opts, common::Rng& rng,
                            const std::vector<nn::ParamView>& trainable,
                            const GradHook& hook) {
  TrainStats stats;
  if (train_set.empty()) return stats;
  nn::Sgd opt(trainable, {.lr = opts.lr,
                          .momentum = opts.momentum,
                          .weight_decay = opts.weight_decay});
  DataLoader loader(train_set, opts.batch_size, rng);
  Tensor images;
  std::vector<int> labels;
  for (std::size_t epoch = 0; epoch < opts.epochs; ++epoch) {
    if (epoch > 0) loader.reshuffle();
    double loss_sum = 0.0;
    std::size_t batches = 0;
    while (loader.next(images, labels)) {
      model.zero_grad();
      const Tensor logits = model.forward(images, /*train=*/true);
      Tensor dlogits;
      loss_sum += tensor::cross_entropy(logits, labels, &dlogits);
      model.backward(dlogits);
      if (hook) hook(trainable);
      opt.step();
      ++stats.steps;
      ++batches;
    }
    if (batches > 0) stats.final_epoch_loss = loss_sum / double(batches);
  }
  return stats;
}

}  // namespace spatl::data
