// Supervised training loop shared by the FL client update, pruning
// fine-tuning, and the RL environment's sub-network evaluation.
//
// The `GradHook` runs after backward and before the optimizer step each
// mini-batch; FL algorithms use it to inject proximal terms (FedProx) and
// control-variate corrections (SCAFFOLD / SPATL's gradient control).
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "data/loader.hpp"
#include "models/split_model.hpp"
#include "nn/optimizer.hpp"

namespace spatl::data {

struct TrainOptions {
  std::size_t epochs = 1;
  std::size_t batch_size = 32;
  double lr = 0.01;
  double momentum = 0.9;
  double weight_decay = 0.0;
};

using GradHook = std::function<void(const std::vector<nn::ParamView>&)>;

struct TrainStats {
  std::size_t steps = 0;       // optimizer steps taken
  double final_epoch_loss = 0.0;  // mean loss over the last epoch
};

/// Train `model` on `train_set`, updating only the `trainable` views
/// (pass model.all_params() for a full update, model.predictor_params() for
/// SPATL's cold-client adaptation). Gradients are still computed through
/// the whole network; freezing is purely an optimizer-scope decision.
TrainStats train_supervised(models::SplitModel& model,
                            const Dataset& train_set,
                            const TrainOptions& opts, common::Rng& rng,
                            const std::vector<nn::ParamView>& trainable,
                            const GradHook& hook = nullptr);

}  // namespace spatl::data
