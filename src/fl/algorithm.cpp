#include "fl/algorithm.hpp"

#include <stdexcept>

#include "data/loader.hpp"
#include "fl/flat_utils.hpp"

namespace spatl::fl {

FederatedAlgorithm::FederatedAlgorithm(FlEnvironment& env, FlConfig config)
    : env_(env), config_(std::move(config)), rng_(config_.seed) {
  global_ = models::build_model(config_.model, rng_);
  // The worker shares the architecture; weights are overwritten every use.
  common::Rng worker_rng(config_.seed ^ 0xF00DULL);
  worker_ = models::build_model(config_.model, worker_rng);
}

void FederatedAlgorithm::load_global_into_worker() {
  models::copy_full_state(global_, worker_);
}

void FederatedAlgorithm::set_fault_injection(const FaultModel* fault,
                                             const ResilienceConfig& resilience) {
  fault_ = fault;
  resilience_ = resilience;
  defended_ = true;
}

void FederatedAlgorithm::clear_fault_injection() {
  fault_ = nullptr;
  resilience_ = ResilienceConfig{};
  defended_ = false;
}

void FederatedAlgorithm::begin_round(std::size_t round, RoundStats admission) {
  fault_round_ = round;
  stats_ = admission;
}

FederatedAlgorithm::Delivery FederatedAlgorithm::deliver_update(
    std::size_t client, std::vector<float>& payload,
    std::size_t uplink_floats, const std::vector<float>* reference) {
  Delivery d;
  ledger_.add_uplink_floats(uplink_floats);
  if (fault_ != nullptr && fault_->enabled()) {
    const Transmission t =
        fault_->transmit(fault_round_, client, resilience_.max_retries);
    if (t.attempts > 1) {
      ledger_.add_uplink_retransmit_floats(uplink_floats * (t.attempts - 1));
      stats_.retransmissions += t.attempts - 1;
    }
    if (!t.delivered) {
      d.accepted = false;
      d.reason = RejectReason::kLost;
      stats_.add(d.reason);
      return d;
    }
    fault_->corrupt(fault_round_, client, payload);
  }
  ++stats_.delivered;

  if (defended_) {
    if (resilience_.validate_updates && !is_finite(payload)) {
      d.accepted = false;
      d.reason = RejectReason::kNonFinite;
    } else if (resilience_.max_update_norm > 0.0) {
      double sum = 0.0;
      if (reference != nullptr && reference->size() == payload.size()) {
        for (std::size_t j = 0; j < payload.size(); ++j) {
          const double diff = double(payload[j]) - double((*reference)[j]);
          sum += diff * diff;
        }
      } else {
        for (const float x : payload) sum += double(x) * double(x);
      }
      if (sum > resilience_.max_update_norm * resilience_.max_update_norm) {
        d.accepted = false;
        d.reason = RejectReason::kNormBound;
      }
    }
  }
  if (d.accepted && fault_ != nullptr && fault_->enabled() &&
      fault_->assess(fault_round_, client).fate == ClientFate::kStraggler) {
    if (resilience_.stale_weight > 0.0) {
      d.scale = resilience_.stale_weight;
    } else {
      d.accepted = false;
      d.reason = RejectReason::kDeadline;
    }
  }
  if (d.accepted) {
    ++stats_.accepted;
  } else {
    stats_.add(d.reason);
  }
  return d;
}

bool FederatedAlgorithm::quorum_met(std::size_t accepted_count) {
  const std::size_t quorum =
      defended_ ? std::max<std::size_t>(1, resilience_.min_quorum) : 1;
  if (accepted_count >= quorum) return true;
  stats_.skipped = true;
  return false;
}

EvalSummary FederatedAlgorithm::evaluate_clients() {
  EvalSummary summary;
  load_global_into_worker();
  for (std::size_t i = 0; i < env_.num_clients(); ++i) {
    const auto r = data::evaluate(worker_, env_.client(i).val);
    summary.avg_accuracy += r.accuracy;
    summary.avg_loss += r.loss;
  }
  const double n = double(env_.num_clients());
  summary.avg_accuracy /= n;
  summary.avg_loss /= n;
  return summary;
}

std::vector<double> FederatedAlgorithm::per_client_accuracy() {
  std::vector<double> acc(env_.num_clients(), 0.0);
  load_global_into_worker();
  for (std::size_t i = 0; i < env_.num_clients(); ++i) {
    acc[i] = data::evaluate(worker_, env_.client(i).val).accuracy;
  }
  return acc;
}

namespace {

/// A client update that survived delivery and validation, parked until the
/// aggregation phase.
struct PendingUpdate {
  std::size_t client = 0;
  std::vector<float> flat;  // delivered flat weights (post-corruption)
  std::vector<float> bn;    // BN running stats captured after training
  double scale = 1.0;       // staleness down-weight
  double tau = 1.0;         // local step count (FedNova) / K*lr (SCAFFOLD)
};

/// Aggregation weights over the accepted updates: sample-count times
/// staleness discount, normalized. Identical to the classic FedAvg
/// sample-count weighting when every selected client survives with scale 1.
std::vector<double> accepted_weights(const FlEnvironment& env,
                                     const std::vector<PendingUpdate>& ups) {
  std::vector<double> w(ups.size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < ups.size(); ++i) {
    w[i] = double(env.client(ups[i].client).train.size()) * ups[i].scale;
    total += w[i];
  }
  if (total <= 0.0) throw std::logic_error("accepted clients have no data");
  for (auto& v : w) v /= total;
  return w;
}

}  // namespace

// -------------------------------------------------------------- FedAvg ----

void FedAvg::run_round(const std::vector<std::size_t>& selected) {
  auto views = global_.all_params();
  const std::vector<float> w_global = nn::flatten_values(views);
  std::vector<PendingUpdate> accepted;
  accepted.reserve(selected.size());

  for (const std::size_t i : selected) {
    load_global_into_worker();
    ledger_.add_downlink_floats(w_global.size());
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)));
    data::train_supervised(worker_, env_.client(i).train, config_.local,
                           client_rng, worker_.all_params());
    PendingUpdate up;
    up.client = i;
    up.flat = nn::flatten_values(worker_.all_params());
    const Delivery d = deliver_update(i, up.flat, w_global.size(), &w_global);
    if (!d.accepted) continue;
    up.bn = flatten_bn_stats(worker_);
    up.scale = d.scale;
    accepted.push_back(std::move(up));
  }
  if (!quorum_met(accepted.size())) return;

  const auto weights = accepted_weights(env_, accepted);
  std::vector<float> w_accum(w_global.size(), 0.0f);
  std::vector<float> bn_accum(flatten_bn_stats(global_).size(), 0.0f);
  for (std::size_t s = 0; s < accepted.size(); ++s) {
    axpy(w_accum, accepted[s].flat, float(weights[s]));
    axpy(bn_accum, accepted[s].bn, float(weights[s]));
  }
  nn::unflatten_values(w_accum, views);
  unflatten_bn_stats(bn_accum, global_);
}

// ------------------------------------------------------------- FedProx ----

void FedProx::run_round(const std::vector<std::size_t>& selected) {
  auto views = global_.all_params();
  const std::vector<float> w_global = nn::flatten_values(views);
  std::vector<PendingUpdate> accepted;
  accepted.reserve(selected.size());

  const auto hook = make_proximal_hook(w_global, config_.fedprox_mu);
  for (const std::size_t i : selected) {
    load_global_into_worker();
    ledger_.add_downlink_floats(w_global.size());
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)));
    data::train_supervised(worker_, env_.client(i).train, config_.local,
                           client_rng, worker_.all_params(), hook);
    PendingUpdate up;
    up.client = i;
    up.flat = nn::flatten_values(worker_.all_params());
    const Delivery d = deliver_update(i, up.flat, w_global.size(), &w_global);
    if (!d.accepted) continue;
    up.bn = flatten_bn_stats(worker_);
    up.scale = d.scale;
    accepted.push_back(std::move(up));
  }
  if (!quorum_met(accepted.size())) return;

  const auto weights = accepted_weights(env_, accepted);
  std::vector<float> w_accum(w_global.size(), 0.0f);
  std::vector<float> bn_accum(flatten_bn_stats(global_).size(), 0.0f);
  for (std::size_t s = 0; s < accepted.size(); ++s) {
    axpy(w_accum, accepted[s].flat, float(weights[s]));
    axpy(bn_accum, accepted[s].bn, float(weights[s]));
  }
  nn::unflatten_values(w_accum, views);
  unflatten_bn_stats(bn_accum, global_);
}

// ------------------------------------------------------------- FedNova ----

void FedNova::run_round(const std::vector<std::size_t>& selected) {
  // Normalized averaging (Wang et al., NeurIPS'20): each client's update is
  // divided by its local step count tau_i, then the server applies the
  // effective step tau_eff = sum p_i tau_i.
  auto views = global_.all_params();
  const std::vector<float> w_global = nn::flatten_values(views);
  std::vector<PendingUpdate> accepted;
  accepted.reserve(selected.size());

  for (const std::size_t i : selected) {
    load_global_into_worker();
    ledger_.add_downlink_floats(w_global.size());
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)));
    const auto stats =
        data::train_supervised(worker_, env_.client(i).train, config_.local,
                               client_rng, worker_.all_params());
    PendingUpdate up;
    up.client = i;
    up.tau = double(std::max<std::size_t>(1, stats.steps));
    up.flat = nn::flatten_values(worker_.all_params());
    // Uplink: normalized update + the a_i momentum-normalization state its
    // reference implementation ships alongside (~2x FedAvg per round).
    const Delivery d =
        deliver_update(i, up.flat, 2 * w_global.size(), &w_global);
    if (!d.accepted) continue;
    up.bn = flatten_bn_stats(worker_);
    up.scale = d.scale;
    accepted.push_back(std::move(up));
  }
  if (!quorum_met(accepted.size())) return;

  const auto weights = accepted_weights(env_, accepted);
  std::vector<float> d_accum(w_global.size(), 0.0f);  // sum p_i * d_i
  std::vector<float> bn_accum(flatten_bn_stats(global_).size(), 0.0f);
  double tau_eff = 0.0;
  for (std::size_t s = 0; s < accepted.size(); ++s) {
    const auto& up = accepted[s];
    for (std::size_t j = 0; j < up.flat.size(); ++j) {
      d_accum[j] += float(weights[s] / up.tau) * (w_global[j] - up.flat[j]);
    }
    axpy(bn_accum, up.bn, float(weights[s]));
    tau_eff += weights[s] * up.tau;
  }
  std::vector<float> w_new = w_global;
  axpy(w_new, d_accum, -float(tau_eff * config_.server_lr));
  nn::unflatten_values(w_new, views);
  unflatten_bn_stats(bn_accum, global_);
}

// ------------------------------------------------------------ SCAFFOLD ----

Scaffold::Scaffold(FlEnvironment& env, FlConfig config)
    : FederatedAlgorithm(env, std::move(config)) {
  const std::size_t dim = nn::param_count(global_.all_params());
  server_c_.assign(dim, 0.0f);
  client_c_.assign(env_.num_clients(), {});
}

void Scaffold::run_round(const std::vector<std::size_t>& selected) {
  auto views = global_.all_params();
  const std::vector<float> w_global = nn::flatten_values(views);
  std::vector<PendingUpdate> accepted;
  accepted.reserve(selected.size());

  for (const std::size_t i : selected) {
    auto& c_i = client_c_[i];
    if (c_i.empty()) c_i.assign(w_global.size(), 0.0f);
    load_global_into_worker();
    // Downlink: weights + server control variate.
    ledger_.add_downlink_floats(2 * w_global.size());

    // Correction: g <- g - c_i + c  (eq. 9's drift term).
    std::vector<float> correction(w_global.size());
    for (std::size_t j = 0; j < correction.size(); ++j) {
      correction[j] = server_c_[j] - c_i[j];
    }
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)));
    const auto stats = data::train_supervised(
        worker_, env_.client(i).train, config_.local, client_rng,
        worker_.all_params(), make_correction_hook(std::move(correction)));
    // Effective displacement per unit gradient: momentum-SGD moves
    // ~lr/(1-m) per step at steady state, so the variate estimate must be
    // scaled accordingly or it overshoots by 1/(1-m) and diverges.
    const double eff_lr =
        config_.local.lr / (1.0 - config_.local.momentum);

    PendingUpdate up;
    up.client = i;
    up.tau = double(std::max<std::size_t>(1, stats.steps)) * eff_lr;
    up.flat = nn::flatten_values(worker_.all_params());
    // Uplink: delta weights + delta control variate. A rejected or lost
    // uplink aborts the client's round transactionally: its c_i is not
    // committed, matching a client that re-syncs on its next participation.
    const Delivery d =
        deliver_update(i, up.flat, 2 * w_global.size(), &w_global);
    if (!d.accepted) continue;
    up.bn = flatten_bn_stats(worker_);
    up.scale = d.scale;
    accepted.push_back(std::move(up));
  }
  if (!quorum_met(accepted.size())) return;

  std::vector<float> dw_accum(w_global.size(), 0.0f);
  std::vector<float> dc_accum(w_global.size(), 0.0f);
  std::vector<float> bn_accum(flatten_bn_stats(global_).size(), 0.0f);
  for (const auto& up : accepted) {
    auto& c_i = client_c_[up.client];
    // Option II of the SCAFFOLD paper (eq. 10 here):
    // c_i+ = c_i - c + (w_global - w_i) / (K * lr)
    for (std::size_t j = 0; j < w_global.size(); ++j) {
      const float c_new = c_i[j] - server_c_[j] +
                          float((w_global[j] - up.flat[j]) / up.tau);
      dc_accum[j] += c_new - c_i[j];
      // Stale stragglers contribute a down-weighted displacement; the
      // variate delta stays full-strength (it is bookkeeping, not a step).
      dw_accum[j] += float(up.scale) * (up.flat[j] - w_global[j]);
      c_i[j] = c_new;
    }
    axpy(bn_accum, up.bn, 1.0f / float(accepted.size()));
  }

  const float inv_s = 1.0f / float(accepted.size());
  std::vector<float> w_new = w_global;
  axpy(w_new, dw_accum, inv_s * float(config_.server_lr));
  nn::unflatten_values(w_new, views);
  unflatten_bn_stats(bn_accum, global_);
  // c <- c + |S|/N * mean(dc) = c + sum(dc)/N  (eq. 11)
  axpy(server_c_, dc_accum, 1.0f / float(env_.num_clients()));
}

std::unique_ptr<FederatedAlgorithm> make_baseline(const std::string& name,
                                                  FlEnvironment& env,
                                                  FlConfig config) {
  if (name == "fedavg") return std::make_unique<FedAvg>(env, std::move(config));
  if (name == "fedprox")
    return std::make_unique<FedProx>(env, std::move(config));
  if (name == "fednova")
    return std::make_unique<FedNova>(env, std::move(config));
  if (name == "scaffold")
    return std::make_unique<Scaffold>(env, std::move(config));
  throw std::invalid_argument("make_baseline: unknown algorithm '" + name +
                              "'");
}

}  // namespace spatl::fl
