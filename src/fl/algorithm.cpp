#include "fl/algorithm.hpp"

#include <stdexcept>

#include "data/loader.hpp"
#include "fl/flat_utils.hpp"

namespace spatl::fl {

FederatedAlgorithm::FederatedAlgorithm(FlEnvironment& env, FlConfig config)
    : env_(env), config_(std::move(config)), rng_(config_.seed) {
  global_ = models::build_model(config_.model, rng_);
  // The worker shares the architecture; weights are overwritten every use.
  common::Rng worker_rng(config_.seed ^ 0xF00DULL);
  worker_ = models::build_model(config_.model, worker_rng);
}

void FederatedAlgorithm::load_global_into_worker() {
  models::copy_full_state(global_, worker_);
}

EvalSummary FederatedAlgorithm::evaluate_clients() {
  EvalSummary summary;
  load_global_into_worker();
  for (std::size_t i = 0; i < env_.num_clients(); ++i) {
    const auto r = data::evaluate(worker_, env_.client(i).val);
    summary.avg_accuracy += r.accuracy;
    summary.avg_loss += r.loss;
  }
  const double n = double(env_.num_clients());
  summary.avg_accuracy /= n;
  summary.avg_loss /= n;
  return summary;
}

std::vector<double> FederatedAlgorithm::per_client_accuracy() {
  std::vector<double> acc(env_.num_clients(), 0.0);
  load_global_into_worker();
  for (std::size_t i = 0; i < env_.num_clients(); ++i) {
    acc[i] = data::evaluate(worker_, env_.client(i).val).accuracy;
  }
  return acc;
}

namespace {

/// Sample-count weights over the selected clients (FedAvg weighting).
std::vector<double> client_weights(const FlEnvironment& env,
                                   const std::vector<std::size_t>& selected) {
  std::vector<double> w(selected.size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    w[i] = double(env.client(selected[i]).train.size());
    total += w[i];
  }
  if (total <= 0.0) throw std::logic_error("selected clients have no data");
  for (auto& v : w) v /= total;
  return w;
}

}  // namespace

// -------------------------------------------------------------- FedAvg ----

void FedAvg::run_round(const std::vector<std::size_t>& selected) {
  auto views = global_.all_params();
  const std::vector<float> w_global = nn::flatten_values(views);
  std::vector<float> w_accum(w_global.size(), 0.0f);
  std::vector<float> bn_accum(flatten_bn_stats(global_).size(), 0.0f);
  const auto weights = client_weights(env_, selected);

  for (std::size_t s = 0; s < selected.size(); ++s) {
    const std::size_t i = selected[s];
    load_global_into_worker();
    ledger_.add_downlink_floats(w_global.size());
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)));
    data::train_supervised(worker_, env_.client(i).train, config_.local,
                           client_rng, worker_.all_params());
    ledger_.add_uplink_floats(w_global.size());
    const auto w_i = nn::flatten_values(worker_.all_params());
    axpy(w_accum, w_i, float(weights[s]));
    axpy(bn_accum, flatten_bn_stats(worker_), float(weights[s]));
  }
  nn::unflatten_values(w_accum, views);
  unflatten_bn_stats(bn_accum, global_);
}

// ------------------------------------------------------------- FedProx ----

void FedProx::run_round(const std::vector<std::size_t>& selected) {
  auto views = global_.all_params();
  const std::vector<float> w_global = nn::flatten_values(views);
  std::vector<float> w_accum(w_global.size(), 0.0f);
  std::vector<float> bn_accum(flatten_bn_stats(global_).size(), 0.0f);
  const auto weights = client_weights(env_, selected);

  const auto hook = make_proximal_hook(w_global, config_.fedprox_mu);
  for (std::size_t s = 0; s < selected.size(); ++s) {
    const std::size_t i = selected[s];
    load_global_into_worker();
    ledger_.add_downlink_floats(w_global.size());
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)));
    data::train_supervised(worker_, env_.client(i).train, config_.local,
                           client_rng, worker_.all_params(), hook);
    ledger_.add_uplink_floats(w_global.size());
    const auto w_i = nn::flatten_values(worker_.all_params());
    axpy(w_accum, w_i, float(weights[s]));
    axpy(bn_accum, flatten_bn_stats(worker_), float(weights[s]));
  }
  nn::unflatten_values(w_accum, views);
  unflatten_bn_stats(bn_accum, global_);
}

// ------------------------------------------------------------- FedNova ----

void FedNova::run_round(const std::vector<std::size_t>& selected) {
  // Normalized averaging (Wang et al., NeurIPS'20): each client's update is
  // divided by its local step count tau_i, then the server applies the
  // effective step tau_eff = sum p_i tau_i.
  auto views = global_.all_params();
  const std::vector<float> w_global = nn::flatten_values(views);
  std::vector<float> d_accum(w_global.size(), 0.0f);  // sum p_i * d_i
  std::vector<float> bn_accum(flatten_bn_stats(global_).size(), 0.0f);
  const auto weights = client_weights(env_, selected);
  double tau_eff = 0.0;

  for (std::size_t s = 0; s < selected.size(); ++s) {
    const std::size_t i = selected[s];
    load_global_into_worker();
    ledger_.add_downlink_floats(w_global.size());
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)));
    const auto stats =
        data::train_supervised(worker_, env_.client(i).train, config_.local,
                               client_rng, worker_.all_params());
    const double tau = double(std::max<std::size_t>(1, stats.steps));
    // Uplink: normalized update + the a_i momentum-normalization state its
    // reference implementation ships alongside (~2x FedAvg per round).
    ledger_.add_uplink_floats(2 * w_global.size());
    const auto w_i = nn::flatten_values(worker_.all_params());
    for (std::size_t j = 0; j < w_i.size(); ++j) {
      d_accum[j] += float(weights[s] / tau) * (w_global[j] - w_i[j]);
    }
    axpy(bn_accum, flatten_bn_stats(worker_), float(weights[s]));
    tau_eff += weights[s] * tau;
  }
  std::vector<float> w_new = w_global;
  axpy(w_new, d_accum, -float(tau_eff * config_.server_lr));
  nn::unflatten_values(w_new, views);
  unflatten_bn_stats(bn_accum, global_);
}

// ------------------------------------------------------------ SCAFFOLD ----

Scaffold::Scaffold(FlEnvironment& env, FlConfig config)
    : FederatedAlgorithm(env, std::move(config)) {
  const std::size_t dim = nn::param_count(global_.all_params());
  server_c_.assign(dim, 0.0f);
  client_c_.assign(env_.num_clients(), {});
}

void Scaffold::run_round(const std::vector<std::size_t>& selected) {
  auto views = global_.all_params();
  const std::vector<float> w_global = nn::flatten_values(views);
  std::vector<float> dw_accum(w_global.size(), 0.0f);
  std::vector<float> dc_accum(w_global.size(), 0.0f);
  std::vector<float> bn_accum(flatten_bn_stats(global_).size(), 0.0f);

  for (const std::size_t i : selected) {
    auto& c_i = client_c_[i];
    if (c_i.empty()) c_i.assign(w_global.size(), 0.0f);
    load_global_into_worker();
    // Downlink: weights + server control variate.
    ledger_.add_downlink_floats(2 * w_global.size());

    // Correction: g <- g - c_i + c  (eq. 9's drift term).
    std::vector<float> correction(w_global.size());
    for (std::size_t j = 0; j < correction.size(); ++j) {
      correction[j] = server_c_[j] - c_i[j];
    }
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)));
    const auto stats = data::train_supervised(
        worker_, env_.client(i).train, config_.local, client_rng,
        worker_.all_params(), make_correction_hook(std::move(correction)));
    // Effective displacement per unit gradient: momentum-SGD moves
    // ~lr/(1-m) per step at steady state, so the variate estimate must be
    // scaled accordingly or it overshoots by 1/(1-m) and diverges.
    const double eff_lr =
        config_.local.lr / (1.0 - config_.local.momentum);
    const double k_lr =
        double(std::max<std::size_t>(1, stats.steps)) * eff_lr;

    const auto w_i = nn::flatten_values(worker_.all_params());
    // Option II of the SCAFFOLD paper (eq. 10 here):
    // c_i+ = c_i - c + (w_global - w_i) / (K * lr)
    for (std::size_t j = 0; j < w_global.size(); ++j) {
      const float c_new = c_i[j] - server_c_[j] +
                          float((w_global[j] - w_i[j]) / k_lr);
      dc_accum[j] += c_new - c_i[j];
      dw_accum[j] += w_i[j] - w_global[j];
      c_i[j] = c_new;
    }
    axpy(bn_accum, flatten_bn_stats(worker_),
         1.0f / float(selected.size()));
    // Uplink: delta weights + delta control variate.
    ledger_.add_uplink_floats(2 * w_global.size());
  }

  const float inv_s = 1.0f / float(selected.size());
  std::vector<float> w_new = w_global;
  axpy(w_new, dw_accum, inv_s * float(config_.server_lr));
  nn::unflatten_values(w_new, views);
  unflatten_bn_stats(bn_accum, global_);
  // c <- c + |S|/N * mean(dc) = c + sum(dc)/N  (eq. 11)
  axpy(server_c_, dc_accum, 1.0f / float(env_.num_clients()));
}

std::unique_ptr<FederatedAlgorithm> make_baseline(const std::string& name,
                                                  FlEnvironment& env,
                                                  FlConfig config) {
  if (name == "fedavg") return std::make_unique<FedAvg>(env, std::move(config));
  if (name == "fedprox")
    return std::make_unique<FedProx>(env, std::move(config));
  if (name == "fednova")
    return std::make_unique<FedNova>(env, std::move(config));
  if (name == "scaffold")
    return std::make_unique<Scaffold>(env, std::move(config));
  throw std::invalid_argument("make_baseline: unknown algorithm '" + name +
                              "'");
}

}  // namespace spatl::fl
