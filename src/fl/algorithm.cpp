#include "fl/algorithm.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"
#include "data/loader.hpp"
#include "fl/flat_utils.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spatl::fl {

FederatedAlgorithm::FederatedAlgorithm(FlEnvironment& env, FlConfig config)
    : env_(env), config_(std::move(config)), rng_(config_.seed) {
  global_ = models::build_model(config_.model, rng_);
  // The worker shares the architecture; weights are overwritten every use.
  common::Rng worker_rng(config_.seed ^ 0xF00DULL);
  worker_ = models::build_model(config_.model, worker_rng);
}

void FederatedAlgorithm::load_global_into_worker() {
  models::copy_full_state(global_, worker_);
}

void FederatedAlgorithm::set_fault_injection(const FaultModel* fault,
                                             const ResilienceConfig& resilience) {
  fault_ = fault;
  resilience_ = resilience;
  defended_ = true;
  robust_ = make_robust_aggregator(resilience_);
}

void FederatedAlgorithm::clear_fault_injection() {
  fault_ = nullptr;
  resilience_ = ResilienceConfig{};
  defended_ = false;
  robust_.reset();
}

void FederatedAlgorithm::set_async(const AsyncConfig& async) {
  async_ = async;
}

void FederatedAlgorithm::clear_async() {
  async_ = AsyncConfig{};
  buffer_.clear();
}

std::size_t FederatedAlgorithm::uplink_cost_floats() {
  // Dense parameter vector — what FedAvg/FedProx actually pay per uplink.
  // Control-carrying algorithms override with their 2x factor.
  return nn::param_count(global_.all_params());
}

bool FederatedAlgorithm::async_active() const {
  return async_.enabled && supports_async() && fault_ != nullptr &&
         fault_->enabled() && fault_->config().round_deadline > 0.0;
}

void FederatedAlgorithm::park_update(std::size_t client, const Delivery& d,
                                     BufferedUpdate update) {
  SPATL_DCHECK(d.deferred && d.lag >= 1);
  update.client = client;
  update.source_round = fault_round_;
  update.commit_round = fault_round_ + d.lag;
  const std::size_t evicted = buffer_.park(std::move(update));
  ++stats_.parked;
  stats_.dedup_dropped += evicted;
  stats_.buffer_depth = buffer_.size();
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("async.parked").increment();
  if (evicted > 0) registry.counter("async.dedup_dropped").add(evicted);
  registry.gauge("async.buffer_depth").set(double(buffer_.size()));
  registry.histogram("async.lag", {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0})
      .record(double(d.lag));
}

std::vector<BufferedUpdate> FederatedAlgorithm::take_due_updates() {
  if (!async_active() || buffer_.empty()) return {};
  SPATL_TRACE_SPAN("fl/buffer");
  std::vector<BufferedUpdate> due = buffer_.take_due(fault_round_);
  stats_.late_commits += due.size();
  stats_.buffer_depth = buffer_.size();
  if (!due.empty()) {
    auto& registry = obs::MetricsRegistry::instance();
    registry.counter("async.committed").add(due.size());
    registry.gauge("async.buffer_depth").set(double(buffer_.size()));
  }
  return due;
}

double FederatedAlgorithm::commit_scale(const BufferedUpdate& update) const {
  SPATL_DCHECK(fault_round_ >= update.source_round);
  return staleness_scale(async_.stale_weight,
                         fault_round_ - update.source_round);
}

bool FederatedAlgorithm::robust_active() const {
  return robust_ != nullptr &&
         resilience_.aggregator != AggregatorKind::kWeightedMean;
}

AggregateOutcome FederatedAlgorithm::robust_combine(
    const std::vector<RobustUpdate>& updates, std::size_t dim,
    const std::vector<float>* reference) {
  SPATL_DCHECK(robust_ != nullptr);
  AggregateOutcome out = robust_->aggregate(updates, dim, reference);
  SPATL_DCHECK(out.value.size() == dim && out.defined.size() == dim);
  for (const std::size_t c : out.excluded) stats_.suspects.push_back(c);
  stats_.clipped += out.clipped;
  return out;
}

void FederatedAlgorithm::begin_round(std::size_t round, RoundStats admission) {
  fault_round_ = round;
  stats_ = admission;
}

FederatedAlgorithm::Delivery FederatedAlgorithm::deliver_update(
    std::size_t client, std::vector<float>& payload,
    std::size_t uplink_floats, const std::vector<float>* reference) {
  SPATL_TRACE_SPAN("fl/uplink");
  Delivery d;
  double backoff_wait = 0.0;
  ledger_.add_uplink_floats(uplink_floats);
  if (fault_ != nullptr && fault_->enabled()) {
    // Byzantine clients craft their payload before it leaves the device —
    // a lost or rejected attack still counts as an attack attempt.
    if (fault_->attack(fault_round_, client, payload, reference)) {
      stats_.attackers.push_back(client);
    }
    const Transmission t =
        fault_->transmit(fault_round_, client, resilience_.retry);
    if (t.attempts > 1) {
      ledger_.add_uplink_retransmit_floats(uplink_floats * (t.attempts - 1));
      stats_.retransmissions += t.attempts - 1;
    }
    backoff_wait = t.backoff_wait;
    stats_.backoff_wait += t.backoff_wait;
    if (!t.delivered) {
      // Retry budget exhausted: the client gives up on this round's uplink.
      d.accepted = false;
      d.reason = RejectReason::kLost;
      stats_.add(d.reason);
      stats_.rejected_clients.push_back(client);
      stats_.giveups.push_back(client);
      return d;
    }
    fault_->corrupt(fault_round_, client, payload);
  }
  ++stats_.delivered;

  if (defended_) {
    if (resilience_.validate_updates && !is_finite(payload)) {
      d.accepted = false;
      d.reason = RejectReason::kNonFinite;
    } else if (resilience_.max_update_norm > 0.0) {
      double sum = 0.0;
      if (reference != nullptr && reference->size() == payload.size()) {
        for (std::size_t j = 0; j < payload.size(); ++j) {
          const double diff = double(payload[j]) - double((*reference)[j]);
          sum += diff * diff;
        }
      } else {
        for (const float x : payload) sum += double(x) * double(x);
      }
      if (sum > resilience_.max_update_norm * resilience_.max_update_norm) {
        d.accepted = false;
        d.reason = RejectReason::kNormBound;
      }
    }
  }
  if (d.accepted && fault_ != nullptr && fault_->enabled()) {
    const ClientFault cf = fault_->assess(fault_round_, client);
    // Backoff waits spend the same virtual clock as local compute: a retry
    // storm can push an otherwise-punctual client past the round deadline.
    // Zero with backoff disabled, so the legacy straggler set is unchanged.
    const double finish_time = cf.compute_time + backoff_wait;
    const bool late = cf.fate == ClientFate::kStraggler ||
                      (fault_->config().round_deadline > 0.0 &&
                       finish_time > fault_->config().round_deadline);
    if (late) {
      // Straggler policy, in order of preference: park for a late commit
      // (semi-async), down-weight in the same round (synchronous,
      // stale_weight > 0), reject (kDeadline) only when neither applies —
      // the contract RejectReason::kDeadline documents.
      if (async_active()) {
        const std::size_t lag =
            straggler_lag(finish_time, fault_->config().round_deadline);
        if (lag <= async_.max_lag) {
          d.accepted = false;
          d.deferred = true;
          d.lag = lag;
          return d;  // caller parks the payload; accounted by park_update()
        }
        d.accepted = false;
        d.reason = RejectReason::kDeadline;  // beyond the lag budget
      } else if (resilience_.stale_weight > 0.0) {
        d.scale = resilience_.stale_weight;
      } else {
        d.accepted = false;
        d.reason = RejectReason::kDeadline;
      }
    }
  }
  if (d.accepted && churn_ != nullptr) {
    // A returning client's first accepted uplink is discounted by its
    // absence through the straggler buffer's staleness arithmetic: the
    // update was trained from a freshly-downloaded model, but the client's
    // local state (optimizer statistics, BN history, SPATL agent) aged
    // while it was away, so its contribution earns back trust gradually.
    const std::size_t absence = churn_->pending_staleness(client);
    if (absence > 0) {
      d.scale *= staleness_scale(churn_->return_stale_weight(), absence);
      ++stats_.returning_discounted;
      churn_->clear_pending(client);
    }
  }
  if (d.accepted) {
    ++stats_.accepted;
  } else {
    stats_.add(d.reason);
    stats_.rejected_clients.push_back(client);
  }
  return d;
}

void FederatedAlgorithm::save_state(RunCheckpoint& out) {
  out.entries.push_back(
      pack_floats("algo/w", nn::flatten_values(global_.all_params())));
  out.entries.push_back(pack_floats("algo/bn", flatten_bn_stats(global_)));
  // Parked straggler updates travel with the model so a resumed run replays
  // the same late commits; nothing is written when the buffer is empty.
  buffer_.save(out, "algo/async/");
}

void FederatedAlgorithm::load_state(const RunCheckpoint& in) {
  auto views = global_.all_params();
  nn::unflatten_values(unpack_floats(in.at("algo/w")), views);
  unflatten_bn_stats(unpack_floats(in.at("algo/bn")), global_);
  buffer_.load(in, "algo/async/");
}

bool FederatedAlgorithm::quorum_met(std::size_t accepted_count) {
  const std::size_t quorum =
      defended_ ? std::max<std::size_t>(1, resilience_.min_quorum) : 1;
  if (accepted_count >= quorum) return true;
  // Post-validation re-check: enough clients were admitted, but validation
  // (or loss / deadline policy) thinned the survivor set below quorum.
  stats_.skipped = true;
  stats_.skip_reason = SkipReason::kPostValidationQuorum;
  return false;
}

EvalSummary FederatedAlgorithm::evaluate_clients() {
  SPATL_TRACE_SPAN("fl/eval");
  EvalSummary summary;
  load_global_into_worker();
  for (std::size_t i = 0; i < env_.num_clients(); ++i) {
    const auto r = data::evaluate(worker_, env_.client(i).val);
    summary.avg_accuracy += r.accuracy;
    summary.avg_loss += r.loss;
  }
  const double n = double(env_.num_clients());
  summary.avg_accuracy /= n;
  summary.avg_loss /= n;
  return summary;
}

std::vector<double> FederatedAlgorithm::per_client_accuracy() {
  std::vector<double> acc(env_.num_clients(), 0.0);
  load_global_into_worker();
  for (std::size_t i = 0; i < env_.num_clients(); ++i) {
    acc[i] = data::evaluate(worker_, env_.client(i).val).accuracy;
  }
  return acc;
}

namespace {

/// A client update that survived delivery and validation, parked until the
/// aggregation phase.
struct PendingUpdate {
  std::size_t client = 0;
  std::vector<float> flat;  // delivered flat weights (post-corruption)
  std::vector<float> bn;    // BN running stats captured after training
  double scale = 1.0;       // staleness down-weight
  double tau = 1.0;         // local step count (FedNova) / K*lr (SCAFFOLD)

  /// Semi-async late commit (DESIGN.md §11): the update was trained against
  /// an earlier round's global weights, so delta-space algorithms carry the
  /// precomputed update instead of absolute weights — `delta` holds the
  /// normalized direction (FedNova) or displacement dw (SCAFFOLD), `aux`
  /// SCAFFOLD's control-variate delta dc. FedAvg/FedProx late commits use
  /// `flat` like fresh ones (absolute weights age gracefully under the
  /// staleness discount).
  bool late = false;
  std::vector<float> delta;
  std::vector<float> aux;
};

/// Aggregation weights over the accepted updates: sample-count times
/// staleness discount, normalized. Identical to the classic FedAvg
/// sample-count weighting when every selected client survives with scale 1.
std::vector<double> accepted_weights(const FlEnvironment& env,
                                     const std::vector<PendingUpdate>& ups) {
  std::vector<double> w(ups.size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < ups.size(); ++i) {
    w[i] = double(env.client(ups[i].client).train.size()) * ups[i].scale;
    total += w[i];
  }
  if (total <= 0.0) throw std::logic_error("accepted clients have no data");
  for (auto& v : w) v /= total;
  return w;
}

bool is_excluded(const std::vector<std::size_t>& excluded, std::size_t client) {
  return std::find(excluded.begin(), excluded.end(), client) != excluded.end();
}

/// Weighted mean of the accepted BN running statistics over the clients the
/// robust aggregator kept, renormalized over the survivors. BN buffers are
/// low-dimensional summaries, so a plain mean over the trusted subset is the
/// robust analogue of each algorithm's BN averaging.
std::vector<float> robust_bn_mean(const std::vector<PendingUpdate>& accepted,
                                  const std::vector<double>& weights,
                                  const std::vector<std::size_t>& excluded,
                                  std::size_t bn_dim) {
  std::vector<double> acc(bn_dim, 0.0);
  double total = 0.0;
  for (std::size_t s = 0; s < accepted.size(); ++s) {
    if (is_excluded(excluded, accepted[s].client)) continue;
    total += weights[s];
    for (std::size_t j = 0; j < bn_dim; ++j) {
      acc[j] += weights[s] * double(accepted[s].bn[j]);
    }
  }
  std::vector<float> out(bn_dim, 0.0f);
  if (total > 0.0) {
    for (std::size_t j = 0; j < bn_dim; ++j) out[j] = float(acc[j] / total);
  }
  return out;
}

}  // namespace

// -------------------------------------------------------------- FedAvg ----

void FedAvg::run_round(const std::vector<std::size_t>& selected) {
  auto views = global_.all_params();
  const std::vector<float> w_global = nn::flatten_values(views);
  std::vector<PendingUpdate> accepted;
  accepted.reserve(selected.size());

  // Late commits merge first, in the buffer's deterministic order: parked
  // absolute weights re-enter aggregation with the staleness discount and
  // count toward the quorum like any other survivor.
  for (auto& b : take_due_updates()) {
    PendingUpdate up;
    up.client = b.client;
    up.scale = commit_scale(b);
    up.late = true;
    up.flat = std::move(b.values);
    up.bn = std::move(b.bn);
    accepted.push_back(std::move(up));
  }

  for (const std::size_t i : selected) {
    load_global_into_worker();
    ledger_.add_downlink_floats(w_global.size());
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)));
    {
      SPATL_TRACE_SPAN("fl/train");
      data::train_supervised(worker_, env_.client(i).train, config_.local,
                             client_rng, worker_.all_params());
    }
    PendingUpdate up;
    up.client = i;
    up.flat = nn::flatten_values(worker_.all_params());
    const Delivery d = deliver_update(i, up.flat, w_global.size(), &w_global);
    if (d.deferred) {
      // Parked past the deadline: the validated absolute weights wait in
      // the straggler buffer for their commit round.
      BufferedUpdate b;
      b.values = std::move(up.flat);
      b.bn = flatten_bn_stats(worker_);
      park_update(i, d, std::move(b));
      continue;
    }
    if (!d.accepted) continue;
    up.bn = flatten_bn_stats(worker_);
    up.scale = d.scale;
    accepted.push_back(std::move(up));
  }
  if (!quorum_met(accepted.size())) return;
  SPATL_TRACE_SPAN("fl/aggregate");

  const auto weights = accepted_weights(env_, accepted);
  const std::size_t bn_dim = flatten_bn_stats(global_).size();
  if (robust_active()) {
    // Robust center of the delivered weight vectors themselves (FedAvg
    // aggregates in absolute weight space).
    std::vector<RobustUpdate> ups(accepted.size());
    for (std::size_t s = 0; s < accepted.size(); ++s) {
      ups[s] = {accepted[s].client, weights[s], &accepted[s].flat, nullptr};
    }
    const auto outcome = robust_combine(ups, w_global.size(), &w_global);
    std::vector<float> w_new = w_global;
    for (std::size_t j = 0; j < w_new.size(); ++j) {
      if (outcome.defined[j]) w_new[j] = outcome.value[j];
    }
    nn::unflatten_values(w_new, views);
    unflatten_bn_stats(
        robust_bn_mean(accepted, weights, outcome.excluded, bn_dim), global_);
    return;
  }
  std::vector<float> w_accum(w_global.size(), 0.0f);
  std::vector<float> bn_accum(bn_dim, 0.0f);
  for (std::size_t s = 0; s < accepted.size(); ++s) {
    axpy(w_accum, accepted[s].flat, float(weights[s]));
    axpy(bn_accum, accepted[s].bn, float(weights[s]));
  }
  nn::unflatten_values(w_accum, views);
  unflatten_bn_stats(bn_accum, global_);
}

// ------------------------------------------------------------- FedProx ----

void FedProx::run_round(const std::vector<std::size_t>& selected) {
  auto views = global_.all_params();
  const std::vector<float> w_global = nn::flatten_values(views);
  std::vector<PendingUpdate> accepted;
  accepted.reserve(selected.size());

  // Late commits first (see FedAvg): same absolute-weight replay.
  for (auto& b : take_due_updates()) {
    PendingUpdate up;
    up.client = b.client;
    up.scale = commit_scale(b);
    up.late = true;
    up.flat = std::move(b.values);
    up.bn = std::move(b.bn);
    accepted.push_back(std::move(up));
  }

  const auto hook = make_proximal_hook(w_global, config_.fedprox_mu);
  for (const std::size_t i : selected) {
    load_global_into_worker();
    ledger_.add_downlink_floats(w_global.size());
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)));
    {
      SPATL_TRACE_SPAN("fl/train");
      data::train_supervised(worker_, env_.client(i).train, config_.local,
                             client_rng, worker_.all_params(), hook);
    }
    PendingUpdate up;
    up.client = i;
    up.flat = nn::flatten_values(worker_.all_params());
    const Delivery d = deliver_update(i, up.flat, w_global.size(), &w_global);
    if (d.deferred) {
      // Parked past the deadline: the validated absolute weights wait in
      // the straggler buffer for their commit round.
      BufferedUpdate b;
      b.values = std::move(up.flat);
      b.bn = flatten_bn_stats(worker_);
      park_update(i, d, std::move(b));
      continue;
    }
    if (!d.accepted) continue;
    up.bn = flatten_bn_stats(worker_);
    up.scale = d.scale;
    accepted.push_back(std::move(up));
  }
  if (!quorum_met(accepted.size())) return;
  SPATL_TRACE_SPAN("fl/aggregate");

  const auto weights = accepted_weights(env_, accepted);
  const std::size_t bn_dim = flatten_bn_stats(global_).size();
  if (robust_active()) {
    std::vector<RobustUpdate> ups(accepted.size());
    for (std::size_t s = 0; s < accepted.size(); ++s) {
      ups[s] = {accepted[s].client, weights[s], &accepted[s].flat, nullptr};
    }
    const auto outcome = robust_combine(ups, w_global.size(), &w_global);
    std::vector<float> w_new = w_global;
    for (std::size_t j = 0; j < w_new.size(); ++j) {
      if (outcome.defined[j]) w_new[j] = outcome.value[j];
    }
    nn::unflatten_values(w_new, views);
    unflatten_bn_stats(
        robust_bn_mean(accepted, weights, outcome.excluded, bn_dim), global_);
    return;
  }
  std::vector<float> w_accum(w_global.size(), 0.0f);
  std::vector<float> bn_accum(bn_dim, 0.0f);
  for (std::size_t s = 0; s < accepted.size(); ++s) {
    axpy(w_accum, accepted[s].flat, float(weights[s]));
    axpy(bn_accum, accepted[s].bn, float(weights[s]));
  }
  nn::unflatten_values(w_accum, views);
  unflatten_bn_stats(bn_accum, global_);
}

// ------------------------------------------------------------- FedNova ----

void FedNova::run_round(const std::vector<std::size_t>& selected) {
  // Normalized averaging (Wang et al., NeurIPS'20): each client's update is
  // divided by its local step count tau_i, then the server applies the
  // effective step tau_eff = sum p_i tau_i.
  auto views = global_.all_params();
  const std::vector<float> w_global = nn::flatten_values(views);
  std::vector<PendingUpdate> accepted;
  accepted.reserve(selected.size());

  // Late commits first: a parked FedNova update carries the normalized
  // direction d_i = (w_base - w_i)/tau computed against its own training
  // base, so replaying it against today's weights applies the same descent
  // direction (staleness-discounted) rather than dragging the model toward
  // a stale absolute point.
  for (auto& b : take_due_updates()) {
    PendingUpdate up;
    up.client = b.client;
    up.scale = commit_scale(b);
    up.late = true;
    up.tau = b.tau;
    up.delta = std::move(b.values);
    up.bn = std::move(b.bn);
    accepted.push_back(std::move(up));
  }

  for (const std::size_t i : selected) {
    load_global_into_worker();
    ledger_.add_downlink_floats(w_global.size());
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)));
    data::TrainStats stats;
    {
      SPATL_TRACE_SPAN("fl/train");
      stats =
          data::train_supervised(worker_, env_.client(i).train, config_.local,
                                 client_rng, worker_.all_params());
    }
    PendingUpdate up;
    up.client = i;
    up.tau = double(std::max<std::size_t>(1, stats.steps));
    up.flat = nn::flatten_values(worker_.all_params());
    // Uplink: normalized update + the a_i momentum-normalization state its
    // reference implementation ships alongside (~2x FedAvg per round).
    const Delivery d =
        deliver_update(i, up.flat, 2 * w_global.size(), &w_global);
    if (d.deferred) {
      BufferedUpdate b;
      b.tau = up.tau;
      b.values.resize(w_global.size());
      for (std::size_t j = 0; j < w_global.size(); ++j) {
        b.values[j] =
            float((double(w_global[j]) - double(up.flat[j])) / up.tau);
      }
      b.bn = flatten_bn_stats(worker_);
      park_update(i, d, std::move(b));
      continue;
    }
    if (!d.accepted) continue;
    up.bn = flatten_bn_stats(worker_);
    up.scale = d.scale;
    accepted.push_back(std::move(up));
  }
  if (!quorum_met(accepted.size())) return;
  SPATL_TRACE_SPAN("fl/aggregate");

  const auto weights = accepted_weights(env_, accepted);
  if (robust_active()) {
    // Robust center of the normalized updates d_i = (w_global - w_i)/tau_i;
    // tau_eff is renormalized over the clients the aggregator kept, so an
    // excluded client contributes neither direction nor step size.
    const std::size_t bn_dim = flatten_bn_stats(global_).size();
    std::vector<std::vector<float>> deltas(accepted.size());
    std::vector<RobustUpdate> ups(accepted.size());
    for (std::size_t s = 0; s < accepted.size(); ++s) {
      const auto& up = accepted[s];
      if (up.late) {
        deltas[s] = up.delta;  // normalized against its own training base
      } else {
        deltas[s].resize(w_global.size());
        for (std::size_t j = 0; j < w_global.size(); ++j) {
          deltas[s][j] =
              float((double(w_global[j]) - double(up.flat[j])) / up.tau);
        }
      }
      ups[s] = {up.client, weights[s], &deltas[s], nullptr};
    }
    const auto outcome = robust_combine(ups, w_global.size(), nullptr);
    double tau_eff_r = 0.0;
    double kept = 0.0;
    for (std::size_t s = 0; s < accepted.size(); ++s) {
      if (is_excluded(outcome.excluded, accepted[s].client)) continue;
      tau_eff_r += weights[s] * accepted[s].tau;
      kept += weights[s];
    }
    if (kept > 0.0) tau_eff_r /= kept;
    std::vector<float> w_new = w_global;
    for (std::size_t j = 0; j < w_new.size(); ++j) {
      if (outcome.defined[j]) {
        w_new[j] -= float(tau_eff_r * config_.server_lr) * outcome.value[j];
      }
    }
    nn::unflatten_values(w_new, views);
    unflatten_bn_stats(
        robust_bn_mean(accepted, weights, outcome.excluded, bn_dim), global_);
    return;
  }
  std::vector<float> d_accum(w_global.size(), 0.0f);  // sum p_i * d_i
  std::vector<float> bn_accum(flatten_bn_stats(global_).size(), 0.0f);
  double tau_eff = 0.0;
  for (std::size_t s = 0; s < accepted.size(); ++s) {
    const auto& up = accepted[s];
    if (up.late) {
      axpy(d_accum, up.delta, float(weights[s]));
    } else {
      for (std::size_t j = 0; j < up.flat.size(); ++j) {
        d_accum[j] += float(weights[s] / up.tau) * (w_global[j] - up.flat[j]);
      }
    }
    axpy(bn_accum, up.bn, float(weights[s]));
    tau_eff += weights[s] * up.tau;
  }
  std::vector<float> w_new = w_global;
  axpy(w_new, d_accum, -float(tau_eff * config_.server_lr));
  nn::unflatten_values(w_new, views);
  unflatten_bn_stats(bn_accum, global_);
}

// ------------------------------------------------------------ SCAFFOLD ----

Scaffold::Scaffold(FlEnvironment& env, FlConfig config)
    : FederatedAlgorithm(env, std::move(config)) {
  const std::size_t dim = nn::param_count(global_.all_params());
  server_c_.assign(dim, 0.0f);
  client_c_.assign(env_.num_clients(), {});
}

void Scaffold::run_round(const std::vector<std::size_t>& selected) {
  auto views = global_.all_params();
  const std::vector<float> w_global = nn::flatten_values(views);
  std::vector<PendingUpdate> accepted;
  accepted.reserve(selected.size());

  // Late commits first. A parked SCAFFOLD update carries the displacement
  // dw = w_i - w_base and the control delta dc, both against its training
  // base, and its c_i commit was deferred with the rest of the update: the
  // variate stays transactional across the buffering gap and catches up
  // only when the update actually lands (tolerating late commits without
  // double-counting drift).
  for (auto& b : take_due_updates()) {
    PendingUpdate up;
    up.client = b.client;
    up.scale = commit_scale(b);
    up.late = true;
    up.tau = b.tau;
    up.delta = std::move(b.values);
    up.aux = std::move(b.aux);
    up.bn = std::move(b.bn);
    accepted.push_back(std::move(up));
  }

  for (const std::size_t i : selected) {
    auto& c_i = client_c_[i];
    if (c_i.empty()) c_i.assign(w_global.size(), 0.0f);
    load_global_into_worker();
    // Downlink: weights + server control variate.
    ledger_.add_downlink_floats(2 * w_global.size());

    // Correction: g <- g - c_i + c  (eq. 9's drift term).
    std::vector<float> correction(w_global.size());
    for (std::size_t j = 0; j < correction.size(); ++j) {
      correction[j] = server_c_[j] - c_i[j];
    }
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)));
    data::TrainStats stats;
    {
      SPATL_TRACE_SPAN("fl/train");
      stats = data::train_supervised(
          worker_, env_.client(i).train, config_.local, client_rng,
          worker_.all_params(), make_correction_hook(std::move(correction)));
    }
    // Effective displacement per unit gradient: momentum-SGD moves
    // ~lr/(1-m) per step at steady state, so the variate estimate must be
    // scaled accordingly or it overshoots by 1/(1-m) and diverges.
    const double eff_lr =
        config_.local.lr / (1.0 - config_.local.momentum);

    PendingUpdate up;
    up.client = i;
    up.tau = double(std::max<std::size_t>(1, stats.steps)) * eff_lr;
    up.flat = nn::flatten_values(worker_.all_params());
    // Uplink: delta weights + delta control variate. A rejected or lost
    // uplink aborts the client's round transactionally: its c_i is not
    // committed, matching a client that re-syncs on its next participation.
    const Delivery d =
        deliver_update(i, up.flat, 2 * w_global.size(), &w_global);
    if (d.deferred) {
      // Park dw/dc computed against this round's base; c_i is NOT advanced
      // here — it commits with the buffered dc at the commit round.
      BufferedUpdate b;
      b.tau = up.tau;
      b.values.resize(w_global.size());
      b.aux.resize(w_global.size());
      for (std::size_t j = 0; j < w_global.size(); ++j) {
        b.values[j] = up.flat[j] - w_global[j];
        const float c_new = c_i[j] - server_c_[j] +
                            float((w_global[j] - up.flat[j]) / up.tau);
        b.aux[j] = c_new - c_i[j];
      }
      b.bn = flatten_bn_stats(worker_);
      park_update(i, d, std::move(b));
      continue;
    }
    if (!d.accepted) continue;
    up.bn = flatten_bn_stats(worker_);
    up.scale = d.scale;
    accepted.push_back(std::move(up));
  }
  if (!quorum_met(accepted.size())) return;
  SPATL_TRACE_SPAN("fl/aggregate");

  if (robust_active()) {
    // Robustify both server aggregates. The displacement dw is what an
    // attacker poisons directly; the control-variate delta dc is derived
    // from the same delivered weights, so a poisoned update would otherwise
    // leak into c through the plain mean and bias every future round.
    // Exclusion is decided on dw; excluded clients commit no c_i
    // (transactional, like a lost uplink) and contribute to neither center.
    const std::size_t bn_dim = flatten_bn_stats(global_).size();
    std::vector<std::vector<float>> dw(accepted.size()), dc(accepted.size());
    std::vector<RobustUpdate> dw_ups(accepted.size());
    for (std::size_t s = 0; s < accepted.size(); ++s) {
      const auto& up = accepted[s];
      dw[s].resize(w_global.size());
      dc[s].resize(w_global.size());
      if (up.late) {
        // Buffered displacement/variate deltas, staleness-scaled like the
        // fresh path scales dw by the synchronous stale_weight.
        for (std::size_t j = 0; j < w_global.size(); ++j) {
          dw[s][j] = float(up.scale) * up.delta[j];
          dc[s][j] = up.aux[j];
        }
      } else {
        const auto& c_i = client_c_[up.client];
        for (std::size_t j = 0; j < w_global.size(); ++j) {
          dw[s][j] = float(up.scale) * (up.flat[j] - w_global[j]);
          const float c_new = c_i[j] - server_c_[j] +
                              float((w_global[j] - up.flat[j]) / up.tau);
          dc[s][j] = c_new - c_i[j];
        }
      }
      dw_ups[s] = {up.client, 1.0, &dw[s], nullptr};
    }
    const auto dw_out = robust_combine(dw_ups, w_global.size(), nullptr);

    std::vector<RobustUpdate> dc_ups;
    std::vector<double> bn_weights(accepted.size(), 1.0);
    std::size_t kept = 0;
    for (std::size_t s = 0; s < accepted.size(); ++s) {
      if (is_excluded(dw_out.excluded, accepted[s].client)) continue;
      dc_ups.push_back({accepted[s].client, 1.0, &dc[s], nullptr});
      auto& c_i = client_c_[accepted[s].client];
      if (c_i.empty()) c_i.assign(w_global.size(), 0.0f);
      for (std::size_t j = 0; j < w_global.size(); ++j) c_i[j] += dc[s][j];
      ++kept;
    }
    const auto dc_out = robust_->aggregate(dc_ups, w_global.size(), nullptr);
    stats_.clipped += dc_out.clipped;

    std::vector<float> w_new = w_global;
    for (std::size_t j = 0; j < w_global.size(); ++j) {
      if (dw_out.defined[j]) {
        w_new[j] += float(config_.server_lr) * dw_out.value[j];
      }
    }
    nn::unflatten_values(w_new, views);
    unflatten_bn_stats(
        robust_bn_mean(accepted, bn_weights, dw_out.excluded, bn_dim),
        global_);
    // c <- c + |kept|/N * center(dc): the robust analogue of eq. 11's
    // c + sum(dc)/N, with the mean replaced by the configured center.
    const float c_step = float(double(kept) / double(env_.num_clients()));
    for (std::size_t j = 0; j < w_global.size(); ++j) {
      if (dc_out.defined[j]) server_c_[j] += c_step * dc_out.value[j];
    }
    return;
  }

  std::vector<float> dw_accum(w_global.size(), 0.0f);
  std::vector<float> dc_accum(w_global.size(), 0.0f);
  std::vector<float> bn_accum(flatten_bn_stats(global_).size(), 0.0f);
  for (const auto& up : accepted) {
    auto& c_i = client_c_[up.client];
    if (c_i.empty()) c_i.assign(w_global.size(), 0.0f);
    if (up.late) {
      // Deferred transactional commit: the parked dc advances c_i now, and
      // the staleness-discounted dw joins the displacement mean.
      for (std::size_t j = 0; j < w_global.size(); ++j) {
        dc_accum[j] += up.aux[j];
        dw_accum[j] += float(up.scale) * up.delta[j];
        c_i[j] += up.aux[j];
      }
      axpy(bn_accum, up.bn, 1.0f / float(accepted.size()));
      continue;
    }
    // Option II of the SCAFFOLD paper (eq. 10 here):
    // c_i+ = c_i - c + (w_global - w_i) / (K * lr)
    for (std::size_t j = 0; j < w_global.size(); ++j) {
      const float c_new = c_i[j] - server_c_[j] +
                          float((w_global[j] - up.flat[j]) / up.tau);
      dc_accum[j] += c_new - c_i[j];
      // Stale stragglers contribute a down-weighted displacement; the
      // variate delta stays full-strength (it is bookkeeping, not a step).
      dw_accum[j] += float(up.scale) * (up.flat[j] - w_global[j]);
      c_i[j] = c_new;
    }
    axpy(bn_accum, up.bn, 1.0f / float(accepted.size()));
  }

  const float inv_s = 1.0f / float(accepted.size());
  std::vector<float> w_new = w_global;
  axpy(w_new, dw_accum, inv_s * float(config_.server_lr));
  nn::unflatten_values(w_new, views);
  unflatten_bn_stats(bn_accum, global_);
  // c <- c + |S|/N * mean(dc) = c + sum(dc)/N  (eq. 11)
  axpy(server_c_, dc_accum, 1.0f / float(env_.num_clients()));
}

void Scaffold::save_state(RunCheckpoint& out) {
  FederatedAlgorithm::save_state(out);
  out.entries.push_back(pack_floats("algo/scaffold/c", server_c_));
  // Lazily-initialized per-client variates: only materialized ones travel.
  for (std::size_t i = 0; i < client_c_.size(); ++i) {
    if (client_c_[i].empty()) continue;
    out.entries.push_back(
        pack_floats("algo/scaffold/ci/" + std::to_string(i), client_c_[i]));
  }
}

void Scaffold::load_state(const RunCheckpoint& in) {
  FederatedAlgorithm::load_state(in);
  server_c_ = unpack_floats(in.at("algo/scaffold/c"));
  for (std::size_t i = 0; i < client_c_.size(); ++i) {
    const tensor::Tensor* t = in.find("algo/scaffold/ci/" + std::to_string(i));
    client_c_[i] = (t != nullptr) ? unpack_floats(*t) : std::vector<float>{};
  }
}

std::unique_ptr<FederatedAlgorithm> make_baseline(const std::string& name,
                                                  FlEnvironment& env,
                                                  FlConfig config) {
  if (name == "fedavg") return std::make_unique<FedAvg>(env, std::move(config));
  if (name == "fedprox")
    return std::make_unique<FedProx>(env, std::move(config));
  if (name == "fednova")
    return std::make_unique<FedNova>(env, std::move(config));
  if (name == "scaffold")
    return std::make_unique<Scaffold>(env, std::move(config));
  throw std::invalid_argument("make_baseline: unknown algorithm '" + name +
                              "'");
}

}  // namespace spatl::fl
