// Federated optimization algorithms: FedAvg, FedProx, FedNova, SCAFFOLD.
//
// All four baselines share a global flat weight vector on the server and a
// scratch worker model for local updates. Per-round communication is
// metered through CommLedger; SCAFFOLD and FedNova pay the ~2x per-round
// cost the paper reports because their control/normalization state travels
// with the weights.
//
// Every round runs collect-then-aggregate: client updates are trained and
// delivered first (where an installed FaultModel may corrupt or lose them
// and the server's ResilienceConfig vets them), then aggregation is applied
// over the accepted survivors only, re-normalized, and gated by a quorum.
// With no fault model and no resilience installed this is arithmetically
// identical to the clean-world path.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/train.hpp"
#include "fl/async.hpp"
#include "fl/checkpoint.hpp"
#include "fl/churn.hpp"
#include "fl/comm.hpp"
#include "fl/environment.hpp"
#include "fl/fault.hpp"
#include "fl/robust.hpp"
#include "models/split_model.hpp"

namespace spatl::fl {

struct FlConfig {
  models::ModelConfig model;
  data::TrainOptions local;        // paper: 10 local epochs
  double server_lr = 1.0;          // server-side step on aggregated updates
  double fedprox_mu = 0.01;        // FedProx proximal coefficient
  std::uint64_t seed = 42;
};

struct EvalSummary {
  double avg_accuracy = 0.0;  // mean top-1 over clients' validation sets
  double avg_loss = 0.0;
};

// Checkpoint audit (DESIGN.md §14): every data member below must either
// name the checkpoint key(s) persisting it or opt out with a reason —
// spatl_lint's ckpt pass cross-checks the tags against the real pack /
// unpack sites, so adding resume-relevant state without persisting it
// fails lint instead of a bit-identity test several PRs later.
// ckpt-struct: algo/
class FederatedAlgorithm {
 public:
  FederatedAlgorithm(FlEnvironment& env, FlConfig config);
  virtual ~FederatedAlgorithm() = default;

  virtual std::string name() const = 0;

  /// One communication round over the given participating clients.
  virtual void run_round(const std::vector<std::size_t>& selected) = 0;

  /// Average validation accuracy of the deployed model across ALL clients
  /// (the paper evaluates heterogeneous per-client performance; for the
  /// uniform-model baselines this is the global model on each client's
  /// validation set).
  virtual EvalSummary evaluate_clients();

  /// Per-client validation accuracy of the deployed model (Fig. local_acc).
  virtual std::vector<double> per_client_accuracy();

  CommLedger& ledger() { return ledger_; }
  const CommLedger& ledger() const { return ledger_; }
  FlEnvironment& environment() { return env_; }
  const FlConfig& config() const { return config_; }
  models::SplitModel& global_model() { return global_; }

  /// Install fault injection and/or server-side defenses for subsequent
  /// rounds (runner-managed). `fault` may be nullptr to run the defenses
  /// without any injection. Until this is called (or after
  /// clear_fault_injection()), run_round follows the exact clean-world
  /// arithmetic and byte accounting.
  void set_fault_injection(const FaultModel* fault,
                           const ResilienceConfig& resilience);
  void clear_fault_injection();
  bool fault_path_active() const { return defended_; }

  /// Install the semi-asynchronous straggler policy (runner-managed): past-
  /// deadline clients are parked in the straggler buffer and commit late
  /// with a staleness discount instead of being same-round down-weighted or
  /// rejected (DESIGN.md §11). Only honored by algorithms that override
  /// supports_async(); everything else keeps the synchronous policy.
  void set_async(const AsyncConfig& async);
  void clear_async();
  const AsyncConfig& async_config() const { return async_; }
  /// True when this algorithm's run_round can park and replay deferred
  /// updates (the four baselines and SPATL).
  virtual bool supports_async() const { return false; }
  /// Parked updates that would commit at `round` (quorum admission input).
  std::size_t buffered_due(std::size_t round) const {
    return buffer_.due_count(round);
  }
  /// Current straggler-buffer occupancy.
  std::size_t buffered_total() const { return buffer_.size(); }

  /// Install the elastic-membership engine (runner-managed): a returning
  /// client's first accepted uplink is staleness-discounted through the
  /// StragglerBuffer's scale arithmetic. Null = static population,
  /// bit-identical to the legacy path.
  void set_churn(ChurnEngine* churn) { churn_ = churn; }
  void clear_churn() { churn_ = nullptr; }

  /// Estimated per-client uplink payload in float32 units, used by the
  /// runner's admission byte budget: the dense parameter vector by default,
  /// 2x for the control-carrying algorithms (FedNova, SCAFFOLD), and the
  /// dense shared encoder (x2 under gradient control) for SPATL — a
  /// conservative bound on its masked payload.
  virtual std::size_t uplink_cost_floats();

  /// Reset per-round statistics, seed them with the runner's admission
  /// counts, and set the round index that keys fault decisions. Called by
  /// the runner before run_round().
  void begin_round(std::size_t round, RoundStats admission = RoundStats{});
  const RoundStats& round_stats() const { return stats_; }

  /// Capture / restore the algorithm's complete mutable state for
  /// crash-recoverable rounds. The base class handles the global flat
  /// weights and BN statistics ("algo/w", "algo/bn"); subclasses with
  /// additional server or per-client state override both and call the base.
  virtual void save_state(RunCheckpoint& out);
  virtual void load_state(const RunCheckpoint& in);

 protected:
  /// Load global weights + BN stats into the worker model.
  void load_global_into_worker();

  /// Outcome of one client's simulated uplink + server-side vetting.
  struct Delivery {
    bool accepted = true;
    /// Semi-async path: the update passed vetting but the client's virtual
    /// compute time runs past this round's deadline — the caller must park
    /// it via park_update() for the commit round instead of aggregating.
    bool deferred = false;
    std::size_t lag = 0;  // rounds until the deferred update commits
    double scale = 1.0;   // aggregation down-weight (stale stragglers)
    RejectReason reason = RejectReason::kNone;
  };

  /// Simulate the uplink of `payload` (metered as `uplink_floats` float32
  /// values): pay the first attempt, inject message loss with bounded retry
  /// (retransmitted bytes go through CommLedger's retransmission counters),
  /// maybe corrupt the payload in flight, then apply the server's defenses —
  /// NaN/Inf validation, optional L2 norm bound of (payload - reference),
  /// and the straggler staleness policy. Updates round_stats().
  Delivery deliver_update(std::size_t client, std::vector<float>& payload,
                          std::size_t uplink_floats,
                          const std::vector<float>* reference = nullptr);

  /// Aggregation-time quorum gate over the post-validation survivor set
  /// (fresh accepted updates plus this round's late commits): true when
  /// `accepted_count` updates are enough to apply the round; otherwise
  /// records the round as skipped with post-validation attribution (the
  /// caller must leave the global model untouched).
  bool quorum_met(std::size_t accepted_count);

  /// True when the semi-async buffer governs this round's stragglers
  /// (async installed + supported + a fault model with a live deadline).
  bool async_active() const;

  /// Park a deferred update (Delivery::deferred) for its commit round; the
  /// client id and source/commit rounds are filled in here. The caller
  /// provides the algorithm-specific payload fields of `update`.
  void park_update(std::size_t client, const Delivery& d,
                   BufferedUpdate update);

  /// Pop the buffered updates committing this round, in the buffer's
  /// deterministic order. Updates stats and async metrics.
  std::vector<BufferedUpdate> take_due_updates();

  /// Staleness discount for a buffered update committing this round:
  /// stale_weight^(current round - source round).
  double commit_scale(const BufferedUpdate& update) const;

  /// True when a non-default robust aggregator is configured. The
  /// kWeightedMean default keeps each algorithm's original fused
  /// aggregation loop (bit-identical to the clean-world path); any other
  /// kind routes per-client update vectors through robust_combine().
  bool robust_active() const;

  /// Run the configured robust aggregator over materialized per-client
  /// update vectors and fold the outcome (suspects, clip count) into the
  /// round statistics. `dim` is the per-update vector length; `reference`
  /// is the center used by norm-clipping (may be null).
  AggregateOutcome robust_combine(const std::vector<RobustUpdate>& updates,
                                  std::size_t dim,
                                  const std::vector<float>* reference);

  FlEnvironment& env_;       // ckpt: none(borrowed substrate, rebuilt by the caller)
  FlConfig config_;          // ckpt: none(configuration, rebuilt from flags/seed)
  common::Rng rng_;          // ckpt: none(consumed at construction for weight init only)
  CommLedger ledger_;        // ckpt: run/ledger
  models::SplitModel global_;  // ckpt: algo/w, algo/bn
  models::SplitModel worker_;  // ckpt: none(scratch, reloaded from global_ every round)

  const FaultModel* fault_ = nullptr;  // ckpt: none(borrowed; re-armed via set_fault_injection)
  ChurnEngine* churn_ = nullptr;       // ckpt: none(borrowed; persists itself under run/churn/)
  bool defended_ = false;              // ckpt: none(derived from set_fault_injection)
  ResilienceConfig resilience_;        // ckpt: none(configuration)
  std::unique_ptr<RobustAggregator> robust_;  // ckpt: none(derived from resilience_)
  RoundStats stats_;                   // ckpt: none(per-round scratch)
  std::size_t fault_round_ = 0;        // ckpt: none(set by begin_round each round)
  AsyncConfig async_;        // ckpt: none(configuration, synchronous by default)
  StragglerBuffer buffer_;   // ckpt: algo/async/
};

// ---------------------------------------------------------------------------

class FedAvg : public FederatedAlgorithm {
 public:
  using FederatedAlgorithm::FederatedAlgorithm;
  std::string name() const override { return "fedavg"; }
  bool supports_async() const override { return true; }
  void run_round(const std::vector<std::size_t>& selected) override;
};

class FedProx : public FederatedAlgorithm {
 public:
  using FederatedAlgorithm::FederatedAlgorithm;
  std::string name() const override { return "fedprox"; }
  bool supports_async() const override { return true; }
  void run_round(const std::vector<std::size_t>& selected) override;
};

class FedNova : public FederatedAlgorithm {
 public:
  using FederatedAlgorithm::FederatedAlgorithm;
  std::string name() const override { return "fednova"; }
  bool supports_async() const override { return true; }
  void run_round(const std::vector<std::size_t>& selected) override;
  /// Normalized update + a_i normalization state: ~2x FedAvg per uplink.
  std::size_t uplink_cost_floats() override {
    return 2 * FederatedAlgorithm::uplink_cost_floats();
  }
};

// ckpt-struct: algo/scaffold/
class Scaffold : public FederatedAlgorithm {
 public:
  Scaffold(FlEnvironment& env, FlConfig config);
  std::string name() const override { return "scaffold"; }
  bool supports_async() const override { return true; }
  void run_round(const std::vector<std::size_t>& selected) override;
  void save_state(RunCheckpoint& out) override;
  void load_state(const RunCheckpoint& in) override;
  /// Delta weights + delta control variate: ~2x FedAvg per uplink.
  std::size_t uplink_cost_floats() override {
    return 2 * FederatedAlgorithm::uplink_cost_floats();
  }

 private:
  std::vector<float> server_c_;  // ckpt: algo/scaffold/c
  // Lazily sized per client.
  std::vector<std::vector<float>> client_c_;  // ckpt: algo/scaffold/ci/
};

/// Factory over {"fedavg","fedprox","fednova","scaffold"}.
std::unique_ptr<FederatedAlgorithm> make_baseline(const std::string& name,
                                                  FlEnvironment& env,
                                                  FlConfig config);

}  // namespace spatl::fl
