// Federated optimization algorithms: FedAvg, FedProx, FedNova, SCAFFOLD.
//
// All four baselines share a global flat weight vector on the server and a
// scratch worker model for local updates. Per-round communication is
// metered through CommLedger; SCAFFOLD and FedNova pay the ~2x per-round
// cost the paper reports because their control/normalization state travels
// with the weights.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/train.hpp"
#include "fl/comm.hpp"
#include "fl/environment.hpp"
#include "models/split_model.hpp"

namespace spatl::fl {

struct FlConfig {
  models::ModelConfig model;
  data::TrainOptions local;        // paper: 10 local epochs
  double server_lr = 1.0;          // server-side step on aggregated updates
  double fedprox_mu = 0.01;        // FedProx proximal coefficient
  std::uint64_t seed = 42;
};

struct EvalSummary {
  double avg_accuracy = 0.0;  // mean top-1 over clients' validation sets
  double avg_loss = 0.0;
};

class FederatedAlgorithm {
 public:
  FederatedAlgorithm(FlEnvironment& env, FlConfig config);
  virtual ~FederatedAlgorithm() = default;

  virtual std::string name() const = 0;

  /// One communication round over the given participating clients.
  virtual void run_round(const std::vector<std::size_t>& selected) = 0;

  /// Average validation accuracy of the deployed model across ALL clients
  /// (the paper evaluates heterogeneous per-client performance; for the
  /// uniform-model baselines this is the global model on each client's
  /// validation set).
  virtual EvalSummary evaluate_clients();

  /// Per-client validation accuracy of the deployed model (Fig. local_acc).
  virtual std::vector<double> per_client_accuracy();

  CommLedger& ledger() { return ledger_; }
  const CommLedger& ledger() const { return ledger_; }
  FlEnvironment& environment() { return env_; }
  const FlConfig& config() const { return config_; }
  models::SplitModel& global_model() { return global_; }

 protected:
  /// Load global weights + BN stats into the worker model.
  void load_global_into_worker();

  FlEnvironment& env_;
  FlConfig config_;
  common::Rng rng_;
  CommLedger ledger_;
  models::SplitModel global_;
  models::SplitModel worker_;
};

// ---------------------------------------------------------------------------

class FedAvg : public FederatedAlgorithm {
 public:
  using FederatedAlgorithm::FederatedAlgorithm;
  std::string name() const override { return "fedavg"; }
  void run_round(const std::vector<std::size_t>& selected) override;
};

class FedProx : public FederatedAlgorithm {
 public:
  using FederatedAlgorithm::FederatedAlgorithm;
  std::string name() const override { return "fedprox"; }
  void run_round(const std::vector<std::size_t>& selected) override;
};

class FedNova : public FederatedAlgorithm {
 public:
  using FederatedAlgorithm::FederatedAlgorithm;
  std::string name() const override { return "fednova"; }
  void run_round(const std::vector<std::size_t>& selected) override;
};

class Scaffold : public FederatedAlgorithm {
 public:
  Scaffold(FlEnvironment& env, FlConfig config);
  std::string name() const override { return "scaffold"; }
  void run_round(const std::vector<std::size_t>& selected) override;

 private:
  std::vector<float> server_c_;
  std::vector<std::vector<float>> client_c_;  // lazily sized per client
};

/// Factory over {"fedavg","fedprox","fednova","scaffold"}.
std::unique_ptr<FederatedAlgorithm> make_baseline(const std::string& name,
                                                  FlEnvironment& env,
                                                  FlConfig config);

}  // namespace spatl::fl
