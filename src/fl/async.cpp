#include "fl/async.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace spatl::fl {

std::size_t straggler_lag(double compute_time, double round_deadline) {
  if (round_deadline <= 0.0 || compute_time <= round_deadline) return 0;
  // How many whole deadlines the client needs, minus the one it already had.
  // Bounded so a pathological compute-time draw cannot overflow the cast;
  // anything this large is beyond every sane max_lag anyway.
  const double periods =
      std::min(std::ceil(compute_time / round_deadline), 1.0e6);
  return std::max<std::size_t>(1, std::size_t(periods) - 1);
}

double staleness_scale(double stale_weight, std::size_t lag) {
  if (lag == 0) return 1.0;
  return std::pow(stale_weight, double(lag));
}

namespace {

/// Strict weak order giving the buffer its deterministic merge sequence.
bool before(const BufferedUpdate& a, const BufferedUpdate& b) {
  if (a.commit_round != b.commit_round) return a.commit_round < b.commit_round;
  if (a.source_round != b.source_round) return a.source_round < b.source_round;
  return a.client < b.client;
}

}  // namespace

std::size_t StragglerBuffer::park(BufferedUpdate update) {
  SPATL_DCHECK(update.commit_round > update.source_round);
  // Latest-wins dedup: a client re-parking supersedes its older entry (the
  // incoming update trained against a newer base, so replaying both would
  // double-count the client and waste buffered bytes).
  std::size_t evicted = 0;
  for (std::size_t k = entries_.size(); k > 0; --k) {
    if (entries_[k - 1].client != update.client) continue;
    SPATL_DCHECK(entries_[k - 1].source_round < update.source_round);
    entries_.erase(entries_.begin() + std::ptrdiff_t(k - 1));
    ++evicted;
  }
  const auto pos =
      std::upper_bound(entries_.begin(), entries_.end(), update, before);
  entries_.insert(pos, std::move(update));
  return evicted;
}

std::vector<BufferedUpdate> StragglerBuffer::take_due(std::size_t round) {
  // Entries are sorted by commit_round first, so the due set is a prefix.
  std::size_t n = 0;
  while (n < entries_.size() && entries_[n].commit_round <= round) ++n;
  std::vector<BufferedUpdate> due(
      std::make_move_iterator(entries_.begin()),
      std::make_move_iterator(entries_.begin() + std::ptrdiff_t(n)));
  entries_.erase(entries_.begin(), entries_.begin() + std::ptrdiff_t(n));
  return due;
}

std::size_t StragglerBuffer::due_count(std::size_t round) const {
  std::size_t n = 0;
  while (n < entries_.size() && entries_[n].commit_round <= round) ++n;
  return n;
}

void StragglerBuffer::save(RunCheckpoint& out,
                           const std::string& prefix) const {
  if (entries_.empty()) return;  // pre-async checkpoints stay byte-identical
  out.entries.push_back(
      pack_u64s(prefix + "n", {std::uint64_t(entries_.size())}));
  for (std::size_t k = 0; k < entries_.size(); ++k) {
    const BufferedUpdate& e = entries_[k];
    const std::string base = prefix + std::to_string(k) + "/";
    out.entries.push_back(pack_u64s(
        base + "meta", {std::uint64_t(e.client), std::uint64_t(e.source_round),
                        std::uint64_t(e.commit_round)}));
    out.entries.push_back(pack_doubles(base + "tau", {e.tau}));
    if (!e.values.empty()) {
      out.entries.push_back(pack_floats(base + "values", e.values));
    }
    if (!e.bn.empty()) out.entries.push_back(pack_floats(base + "bn", e.bn));
    if (!e.aux.empty()) out.entries.push_back(pack_floats(base + "aux", e.aux));
    if (!e.mask.empty()) {
      std::vector<float> m(e.mask.begin(), e.mask.end());
      out.entries.push_back(pack_floats(base + "mask", m));
    }
  }
}

void StragglerBuffer::load(const RunCheckpoint& in, const std::string& prefix) {
  entries_.clear();
  const tensor::Tensor* n = in.find(prefix + "n");
  if (n == nullptr) return;  // checkpoint predates async or buffer was empty
  const std::size_t count = std::size_t(unpack_u64s(*n)[0]);
  entries_.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::string base = prefix + std::to_string(k) + "/";
    BufferedUpdate e;
    const auto meta = unpack_u64s(in.at(base + "meta"));
    e.client = std::size_t(meta[0]);
    e.source_round = std::size_t(meta[1]);
    e.commit_round = std::size_t(meta[2]);
    e.tau = unpack_doubles(in.at(base + "tau"))[0];
    if (const auto* t = in.find(base + "values")) e.values = unpack_floats(*t);
    if (const auto* t = in.find(base + "bn")) e.bn = unpack_floats(*t);
    if (const auto* t = in.find(base + "aux")) e.aux = unpack_floats(*t);
    if (const auto* t = in.find(base + "mask")) {
      const auto m = unpack_floats(*t);
      e.mask.assign(m.size(), 0);
      for (std::size_t j = 0; j < m.size(); ++j) {
        e.mask[j] = std::uint8_t(m[j] != 0.0f);
      }
    }
    // Entries were saved in buffer order, which is already the
    // (commit_round, source_round, client) order park() maintains.
    entries_.push_back(std::move(e));
  }
}

EscalationTracker::Action EscalationTracker::observe(const RoundStats& stats) {
  if (!config_.enabled) return Action::kNone;
  if (stats.skipped) return Action::kNone;  // nothing aggregated or learned
  // Robust rules surface suspicion as exclusions/clips; the plain mean has
  // only validation to go on, so rejected updates count toward the trend —
  // otherwise a mean -> median escalation could never trigger.
  const std::size_t suspicious = stats.suspects.size() + stats.clipped +
                                 stats.rejected_non_finite +
                                 stats.rejected_norm;
  const double base = double(std::max<std::size_t>(1, stats.delivered));
  const bool noisy = double(suspicious) / base >= config_.suspect_threshold;
  if (active_) {
    // De-escalation path (opt-in): the escalated rule must stay quiet for
    // reset_after_quiet consecutive rounds before the cheap mean returns; a
    // single noisy round re-arms the full wait. One-way when disabled.
    if (config_.reset_after_quiet == 0) return Action::kNone;
    quiet_ = noisy ? 0 : quiet_ + 1;
    if (quiet_ >= config_.reset_after_quiet) {
      reset();
      return Action::kDeescalate;
    }
    return Action::kNone;
  }
  streak_ = noisy ? streak_ + 1 : 0;
  if (streak_ >= std::max<std::size_t>(1, config_.patience)) {
    active_ = true;
    quiet_ = 0;
    return Action::kEscalate;
  }
  return Action::kNone;
}

}  // namespace spatl::fl
