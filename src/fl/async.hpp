// Semi-asynchronous straggler commit: virtual-time buffering with
// staleness-discounted late aggregation (DESIGN.md §11).
//
// A client whose simulated `compute_time` exceeds the round deadline is not
// rejected (nor same-round down-weighted): its validated update is parked in
// a StragglerBuffer keyed on the virtual-time event schedule and commits in
// round `source_round + lag`, where `lag = ceil(compute_time / deadline) - 1`
// is how many extra deadlines the client needs. At commit the update is
// merged with weight `staleness_scale = stale_weight^lag`, so late work
// still pays for its bytes but cannot drag the model toward a stale point.
//
// Everything here runs on simulated time only — the fault model's
// deterministic `compute_time` draws — never the host clock, so buffered
// runs stay bit-identical across machines and re-runs (`tools/spatl_lint`
// bans wall-clock reads in this file). The whole subsystem is opt-in:
// without an AsyncConfig installed, no algorithm touches this code and the
// synchronous arithmetic is unchanged float for float.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fl/checkpoint.hpp"
#include "fl/fault.hpp"
#include "fl/robust.hpp"

namespace spatl::fl {

/// Semi-asynchronous aggregation policy (runner-installed, off by default).
struct AsyncConfig {
  bool enabled = false;
  /// Per-round staleness discount: a commit arriving `lag` rounds late is
  /// weighted by stale_weight^lag. Must be in (0, 1] to contribute.
  double stale_weight = 0.5;
  /// Maximum tolerated lag; a straggler that would need more rounds than
  /// this is rejected with RejectReason::kDeadline (the only deadline
  /// rejection left on the async path).
  std::size_t max_lag = 4;
};

/// Rounds of extra deadline budget a straggler needs before its update can
/// commit: 0 when it met the deadline, otherwise ceil(t / deadline) - 1
/// (at least 1). Pure virtual-time arithmetic.
std::size_t straggler_lag(double compute_time, double round_deadline);

/// stale_weight^lag (1.0 at lag 0).
double staleness_scale(double stale_weight, std::size_t lag);

/// One parked client update. `values`/`bn`/`aux`/`mask` carry whatever the
/// owning algorithm needs to replay the commit: absolute weights (FedAvg /
/// FedProx), normalized deltas + tau (FedNova), displacement + control
/// deltas (SCAFFOLD), or mask-compacted salient deltas (SPATL). The buffer
/// itself is representation-agnostic.
// ckpt-struct: algo/async/<k>/
struct BufferedUpdate {
  std::size_t client = 0;        // ckpt: meta
  std::size_t source_round = 0;  // ckpt: meta (round the client trained in)
  std::size_t commit_round = 0;  // ckpt: meta (round the update merges in)
  double tau = 1.0;              // ckpt: tau (FedNova/SCAFFOLD normalizer)
  std::vector<float> values;     // ckpt: values
  std::vector<float> bn;         // ckpt: bn
  std::vector<float> aux;        // ckpt: aux
  std::vector<std::uint8_t> mask;  // ckpt: mask (salient positions, SPATL)
};

/// Deterministic straggler buffer: entries are totally ordered by
/// (commit_round, source_round, client) regardless of insertion order, so
/// the merge sequence — and therefore the float arithmetic — is identical
/// across runs and across checkpoint/resume.
// ckpt-struct: algo/async/
class StragglerBuffer {
 public:
  /// Insert preserving the (commit_round, source_round, client) order.
  /// Latest wins per client: any older parked update from the same client
  /// (necessarily from an earlier source round) is evicted first, so the
  /// buffer holds at most one entry per client and re-parking cannot
  /// double-commit. Returns the number of evicted entries.
  std::size_t park(BufferedUpdate update);

  /// Remove and return every entry with commit_round <= round (in order).
  /// Entries whose commit round fell inside a skipped round drain here too —
  /// a late commit is never lost to a quorum skip.
  std::vector<BufferedUpdate> take_due(std::size_t round);

  /// Entries that would commit at `round` (buffer unchanged).
  std::size_t due_count(std::size_t round) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }
  const std::vector<BufferedUpdate>& entries() const { return entries_; }

  /// Checkpoint the buffer under `prefix` ("algo/async/"). Nothing is
  /// written when empty, so pre-async checkpoints stay loadable and the
  /// entry set is unchanged for synchronous runs.
  void save(RunCheckpoint& out, const std::string& prefix) const;
  void load(const RunCheckpoint& in, const std::string& prefix);

 private:
  std::vector<BufferedUpdate> entries_;  // ckpt: n (count, then per-entry keys)
};

/// Adaptive aggregator escalation: when the fraction of suspicious updates
/// (robust-aggregator exclusions + norm clips) among delivered uplinks stays
/// above `suspect_threshold` for `patience` consecutive rounds, the runner
/// permanently escalates the aggregation rule from the configured one
/// (typically kWeightedMean) to `aggregator`. One-way by default: an
/// adversary who can quiet down for a round should not win the cheap mean
/// back. `reset_after_quiet` opts into de-escalation after a sustained quiet
/// streak (and EscalationTracker::reset() drops back explicitly).
struct EscalationConfig {
  bool enabled = false;
  double suspect_threshold = 0.25;
  std::size_t patience = 2;
  AggregatorKind aggregator = AggregatorKind::kCoordinateMedian;
  /// De-escalation patience: after this many consecutive quiet rounds
  /// (suspicious fraction below threshold) under the escalated rule, the
  /// tracker resets and the configured aggregator is restored. 0 keeps the
  /// legacy one-way escalation (quiet rounds are never counted).
  std::size_t reset_after_quiet = 0;
};

// ckpt-struct: run/escalation
class EscalationTracker {
 public:
  /// What the caller must do after feeding a round to observe().
  enum class Action {
    kNone,
    kEscalate,    // trip: switch to config.aggregator from the next round
    kDeescalate,  // quiet streak elapsed: restore the configured aggregator
  };

  EscalationTracker() = default;
  explicit EscalationTracker(EscalationConfig config) : config_(config) {}

  /// Feed one finished round. Returns kEscalate exactly once per trip, on
  /// the round the escalation fires; kDeescalate when reset_after_quiet
  /// consecutive quiet rounds have elapsed under the escalated rule.
  Action observe(const RoundStats& stats);

  /// Explicit reset: drop back to the non-escalated rule and clear both
  /// streaks (exposed through the runner / CLI de-escalation path).
  void reset() {
    streak_ = 0;
    quiet_ = 0;
    active_ = false;
  }

  bool active() const { return active_; }
  std::size_t streak() const { return streak_; }
  std::size_t quiet_streak() const { return quiet_; }
  /// Checkpoint restore.
  void restore(std::size_t streak, bool active, std::size_t quiet = 0) {
    streak_ = streak;
    active_ = active;
    quiet_ = quiet;
  }

 private:
  EscalationConfig config_;  // ckpt: none(configuration, rebuilt by the runner)
  std::size_t streak_ = 0;   // ckpt: run/escalation
  std::size_t quiet_ = 0;    // ckpt: run/escalation (quiet rounds while escalated)
  bool active_ = false;      // ckpt: run/escalation
};

}  // namespace spatl::fl
