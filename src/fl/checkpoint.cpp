#include "fl/checkpoint.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "fl/store/error.hpp"
#include "fl/store/format.hpp"

namespace spatl::fl {

namespace {

/// Split a 64-bit word into four 16-bit chunks, little-endian chunk order.
/// Each chunk value is an integer in [0, 65535] and therefore exactly
/// representable as a float32.
void append_u64(std::vector<float>& out, std::uint64_t word) {
  for (int k = 0; k < 4; ++k) {
    out.push_back(float((word >> (16 * k)) & 0xFFFFULL));
  }
}

std::uint64_t read_u64(const std::vector<float>& chunks, std::size_t base) {
  std::uint64_t word = 0;
  for (int k = 0; k < 4; ++k) {
    const float c = chunks[base + std::size_t(k)];
    // A valid chunk is an exact 16-bit integer by construction (append_u64
    // above). Anything else — NaN/Inf, a fraction, a value outside
    // [0, 65535] — means the tensor was corrupted after packing, and the
    // silent float->u64 cast of the original code would have produced a
    // plausible-looking wrong word (undefined behaviour for NaN/Inf).
    if (!std::isfinite(c) || c != std::floor(c) || c < 0.0f ||
        c > 65535.0f) {
      throw store::CheckpointError(
          "", "",
          "unpack_u64s: chunk " + std::to_string(base + std::size_t(k)) +
              " is not an integral float in [0, 65535]");
    }
    word |= std::uint64_t(c) << (16 * k);
  }
  return word;
}

}  // namespace

tensor::NamedTensor pack_floats(std::string name,
                                const std::vector<float>& values) {
  // Leading pad element so empty payloads still serialize (the tensor file
  // format rejects zero-sized dimensions).
  tensor::Tensor t({values.size() + 1});
  t[0] = 0.0f;
  for (std::size_t i = 0; i < values.size(); ++i) t[i + 1] = values[i];
  return {std::move(name), std::move(t)};
}

std::vector<float> unpack_floats(const tensor::Tensor& t) {
  if (t.numel() == 0) {
    throw std::runtime_error("unpack_floats: missing pad element");
  }
  std::vector<float> out(t.numel() - 1);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = t[i + 1];
  return out;
}

tensor::NamedTensor pack_u64s(std::string name,
                              const std::vector<std::uint64_t>& values) {
  std::vector<float> chunks;
  chunks.reserve(values.size() * 4);
  for (const std::uint64_t w : values) append_u64(chunks, w);
  return pack_floats(std::move(name), chunks);
}

std::vector<std::uint64_t> unpack_u64s(const tensor::Tensor& t) {
  const std::vector<float> chunks = unpack_floats(t);
  if (chunks.size() % 4 != 0) {
    throw std::runtime_error("unpack_u64s: chunk count not divisible by 4");
  }
  std::vector<std::uint64_t> out(chunks.size() / 4);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = read_u64(chunks, 4 * i);
  }
  return out;
}

tensor::NamedTensor pack_doubles(std::string name,
                                 const std::vector<double>& values) {
  std::vector<std::uint64_t> words(values.size());
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::memcpy(words.data(), values.data(),
              values.size() * sizeof(std::uint64_t));
  return pack_u64s(std::move(name), words);
}

std::vector<double> unpack_doubles(const tensor::Tensor& t) {
  const std::vector<std::uint64_t> words = unpack_u64s(t);
  std::vector<double> out(words.size());
  std::memcpy(out.data(), words.data(), words.size() * sizeof(double));
  return out;
}

tensor::NamedTensor pack_rng(std::string name, const common::Rng& rng) {
  const auto cursor = rng.save_cursor();
  return pack_u64s(std::move(name),
                   std::vector<std::uint64_t>(cursor.begin(), cursor.end()));
}

void unpack_rng(const tensor::Tensor& t, common::Rng& rng) {
  const std::vector<std::uint64_t> words = unpack_u64s(t);
  if (words.size() != 6) {
    throw std::runtime_error("unpack_rng: expected 6 cursor words");
  }
  std::array<std::uint64_t, 6> cursor{};
  for (std::size_t i = 0; i < 6; ++i) cursor[i] = words[i];
  rng.restore_cursor(cursor);
}

const tensor::Tensor* RunCheckpoint::find(const std::string& name) const {
  for (const auto& e : entries) {
    if (e.name == name) return &e.value;
  }
  return nullptr;
}

const tensor::Tensor& RunCheckpoint::at(const std::string& name) const {
  const tensor::Tensor* t = find(name);
  if (t == nullptr) {
    throw std::runtime_error("RunCheckpoint: missing entry '" + name + "'");
  }
  return *t;
}

void RunCheckpoint::save(const std::string& path) const {
  // Routed through the store's atomic tmp+rename protocol; the final file
  // bytes are the plain tensor container, unchanged from the direct write.
  store::save_legacy_checkpoint(path, entries);
}

RunCheckpoint RunCheckpoint::load(const std::string& path) {
  return RunCheckpoint{store::load_legacy_checkpoint(path)};
}

}  // namespace spatl::fl
