// Crash-recoverable federated rounds: exact state capture for the runner.
//
// A RunCheckpoint is a flat list of named tensors — the same container the
// model checkpoint format uses — holding a consistent snapshot of a
// federated run after round R: the algorithm's complete mutable state
// (global model, control variates, per-client SPATL state including PPO
// agents), the runner's sampling RNG cursor, the fault-aware sampling EMA,
// the communication ledger, and the aggregate statistics. Restoring it into
// a freshly-constructed algorithm/runner pair and continuing from round R+1
// reproduces the uninterrupted run bit for bit.
//
// The tensor format stores float32 payloads only, so non-float state is
// packed losslessly: every 64-bit word (RNG cursors, counters, the bit
// patterns of doubles) is split into four 16-bit chunks, each exactly
// representable as a float.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tensor/serialize.hpp"

namespace spatl::fl {

// --- lossless packing helpers --------------------------------------------

tensor::NamedTensor pack_floats(std::string name,
                                const std::vector<float>& values);
std::vector<float> unpack_floats(const tensor::Tensor& t);

tensor::NamedTensor pack_u64s(std::string name,
                              const std::vector<std::uint64_t>& values);
std::vector<std::uint64_t> unpack_u64s(const tensor::Tensor& t);

/// Doubles travel as the 64-bit patterns of their IEEE encoding — exact.
tensor::NamedTensor pack_doubles(std::string name,
                                 const std::vector<double>& values);
std::vector<double> unpack_doubles(const tensor::Tensor& t);

tensor::NamedTensor pack_rng(std::string name, const common::Rng& rng);
void unpack_rng(const tensor::Tensor& t, common::Rng& rng);

// --- run checkpoints ------------------------------------------------------

/// A consistent snapshot of a federated run (see file comment). Entries are
/// written/consumed by run_federated and FederatedAlgorithm::save_state /
/// load_state; the struct itself is just the container plus (de)serialization.
struct RunCheckpoint {
  std::vector<tensor::NamedTensor> entries;

  bool empty() const { return entries.empty(); }
  /// Lookup by exact name; null when absent.
  const tensor::Tensor* find(const std::string& name) const;
  /// Lookup that throws std::runtime_error when absent (corrupt file).
  const tensor::Tensor& at(const std::string& name) const;

  /// Persist to / recover from disk (plain tensor container format, written
  /// atomically via the fl/store tmp+rename protocol). For CRC-verified
  /// generational storage use store::CheckpointStore instead.
  void save(const std::string& path) const;
  static RunCheckpoint load(const std::string& path);
};

}  // namespace spatl::fl
