#include "fl/churn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace spatl::fl {

namespace {

// Independent decision streams per (round, client) purpose, mirroring the
// fault model's keying so membership draws never perturb fault draws.
enum class Stream : std::uint64_t {
  kJoin = 0x1ULL,
  kLeave = 0x2ULL,
  kReturn = 0x3ULL,
};

common::Rng keyed_rng(std::uint64_t seed, std::size_t round,
                      std::size_t client, Stream stream) {
  std::uint64_t s = seed;
  s ^= common::splitmix64(s) ^ (0x9E3779B97F4A7C15ULL * (round + 1));
  s ^= common::splitmix64(s) ^ (0xC2B2AE3D27D4EB4FULL * (client + 1));
  s ^= common::splitmix64(s) ^
       (0x165667B19E3779F9ULL * static_cast<std::uint64_t>(stream));
  return common::Rng(s);
}

bool fires(const ChurnConfig& config, std::size_t round, std::size_t client,
           Stream stream, double rate) {
  if (rate <= 0.0) return false;
  auto rng = keyed_rng(config.seed, round, client, stream);
  return rng.bernoulli(rate);
}

void check_rate(double r, const char* what) {
  if (r < 0.0 || r > 1.0) {
    throw std::invalid_argument(std::string("ChurnConfig: ") + what +
                                " must be in [0, 1]");
  }
}

}  // namespace

bool ChurnTrace::empty() const {
  if (initial_enrolled < num_clients) return false;
  for (const ChurnRound& r : rounds) {
    if (!r.empty()) return false;
  }
  return true;
}

ChurnTrace make_churn_trace(const ChurnConfig& config, std::size_t rounds,
                            std::size_t num_clients) {
  check_rate(config.initial_fraction, "initial_fraction");
  check_rate(config.join_rate, "join_rate");
  check_rate(config.leave_rate, "leave_rate");
  check_rate(config.return_rate, "return_rate");
  check_rate(config.return_stale_weight, "return_stale_weight");

  ChurnTrace trace;
  trace.num_clients = num_clients;
  // At least one client stays enrolled at round 1 so a join-free config can
  // never strand the run with an empty population.
  trace.initial_enrolled = std::clamp<std::size_t>(
      std::size_t(std::ceil(config.initial_fraction * double(num_clients))),
      std::min<std::size_t>(1, num_clients), num_clients);
  trace.rounds.assign(rounds + 1, ChurnRound{});

  // Sequential status replay: each round reads every client's status once
  // and draws from that status's stream only, so the three event sets stay
  // disjoint and the trace regenerates identically on resume.
  std::vector<MemberStatus> status(num_clients, MemberStatus::kNeverJoined);
  for (std::size_t c = 0; c < trace.initial_enrolled; ++c) {
    status[c] = MemberStatus::kEnrolled;
  }
  for (std::size_t r = 1; r <= rounds; ++r) {
    ChurnRound& ev = trace.rounds[r];
    for (std::size_t c = 0; c < num_clients; ++c) {
      switch (status[c]) {
        case MemberStatus::kNeverJoined:
          if (fires(config, r, c, Stream::kJoin, config.join_rate)) {
            ev.joins.push_back(c);
          }
          break;
        case MemberStatus::kEnrolled:
          if (fires(config, r, c, Stream::kLeave, config.leave_rate)) {
            ev.leaves.push_back(c);
          }
          break;
        case MemberStatus::kDeparted:
          if (fires(config, r, c, Stream::kReturn, config.return_rate)) {
            ev.returns.push_back(c);
          }
          break;
      }
    }
    for (const std::size_t c : ev.joins) status[c] = MemberStatus::kEnrolled;
    for (const std::size_t c : ev.leaves) status[c] = MemberStatus::kDeparted;
    for (const std::size_t c : ev.returns) status[c] = MemberStatus::kEnrolled;
  }
  return trace;
}

ChurnEngine::ChurnEngine(const ChurnConfig& config, std::size_t rounds,
                         std::size_t num_clients)
    : config_(config), trace_(make_churn_trace(config, rounds, num_clients)) {
  reset_to_initial();
}

void ChurnEngine::reset_to_initial() {
  status_.assign(trace_.num_clients, MemberStatus::kNeverJoined);
  for (std::size_t c = 0; c < trace_.initial_enrolled; ++c) {
    status_[c] = MemberStatus::kEnrolled;
  }
  departed_round_.assign(trace_.num_clients, 0);
  pending_.assign(trace_.num_clients, 0);
  cursor_ = 0;
  rebuild_enrolled();
}

void ChurnEngine::rebuild_enrolled() {
  enrolled_.clear();
  for (std::size_t c = 0; c < status_.size(); ++c) {
    if (status_[c] == MemberStatus::kEnrolled) enrolled_.push_back(c);
  }
}

ChurnDelta ChurnEngine::advance(std::size_t round) {
  ChurnDelta delta;
  bool changed = false;
  for (std::size_t r = cursor_ + 1;
       r <= round && r < trace_.rounds.size(); ++r) {
    const ChurnRound& ev = trace_.rounds[r];
    for (const std::size_t c : ev.joins) {
      SPATL_DCHECK(status_[c] == MemberStatus::kNeverJoined);
      status_[c] = MemberStatus::kEnrolled;
      ++delta.joined;
      changed = true;
    }
    for (const std::size_t c : ev.leaves) {
      SPATL_DCHECK(status_[c] == MemberStatus::kEnrolled);
      status_[c] = MemberStatus::kDeparted;
      departed_round_[c] = r;
      pending_[c] = 0;  // an unconsumed return discount dies on re-departure
      ++delta.left;
      changed = true;
    }
    for (const std::size_t c : ev.returns) {
      SPATL_DCHECK(status_[c] == MemberStatus::kDeparted);
      status_[c] = MemberStatus::kEnrolled;
      const std::size_t absence = r - std::size_t(departed_round_[c]);
      pending_[c] =
          std::uint64_t(std::min(absence, config_.staleness_cap));
      ++delta.returned;
      changed = true;
    }
  }
  cursor_ = std::max(cursor_, round);
  if (changed) rebuild_enrolled();
  return delta;
}

void ChurnEngine::save(RunCheckpoint& out, const std::string& prefix) const {
  out.entries.push_back(
      pack_u64s(prefix + "cursor", {std::uint64_t(cursor_)}));
  std::vector<std::uint64_t> st(status_.size());
  for (std::size_t c = 0; c < status_.size(); ++c) {
    st[c] = std::uint64_t(status_[c]);
  }
  out.entries.push_back(pack_u64s(prefix + "status", st));
  out.entries.push_back(pack_u64s(prefix + "departed", departed_round_));
  out.entries.push_back(pack_u64s(prefix + "pending", pending_));
}

void ChurnEngine::load(const RunCheckpoint& in, const std::string& prefix) {
  const tensor::Tensor* cur = in.find(prefix + "cursor");
  if (cur == nullptr) {  // snapshot predates the engine: fresh start
    reset_to_initial();
    return;
  }
  cursor_ = std::size_t(unpack_u64s(*cur)[0]);
  const auto st = unpack_u64s(in.at(prefix + "status"));
  if (st.size() != trace_.num_clients) {
    throw std::runtime_error(
        "ChurnEngine::load: checkpoint population mismatch");
  }
  for (std::size_t c = 0; c < st.size(); ++c) {
    status_[c] = MemberStatus(std::uint8_t(st[c]));
  }
  departed_round_ = unpack_u64s(in.at(prefix + "departed"));
  pending_ = unpack_u64s(in.at(prefix + "pending"));
  rebuild_enrolled();
}

}  // namespace spatl::fl
