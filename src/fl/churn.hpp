// Elastic membership under churn: deterministic join/leave/return engine.
//
// Production federations are elastic: clients enroll mid-run, vanish for
// rounds at a time, and come back carrying models that are several rounds
// stale. This module materializes a Poisson-style arrival/departure/return
// schedule as a per-round trace derived entirely from (seed, round, client)
// keyed draws — the same order-independent keying the fault model uses — so
// the membership history of a run is a pure function of its config and can
// be regenerated bit-identically on resume.
//
// The ChurnEngine replays that trace over a live status machine
// (never-joined -> enrolled <-> departed). Departing clients simply stop
// being sampled: their server-side state (SCAFFOLD control variates, SPATL
// predictors and agents) stays parked in place. Returning clients re-enter
// with a staleness debt equal to their absence, and their first accepted
// uplink is discounted through the same staleness_scale() arithmetic the
// semi-async straggler buffer uses (DESIGN.md §11).
//
// The whole subsystem is opt-in: with no ChurnConfig installed (or an empty
// trace — zero rates, full initial enrollment) the runner's sampling draws,
// float arithmetic, and telemetry bytes are unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fl/checkpoint.hpp"

namespace spatl::fl {

struct ChurnConfig {
  /// Fraction of the client population enrolled at round 1 (clients
  /// [0, ceil(fraction * n)) start enrolled; the rest are never-joined and
  /// arrive through join_rate). 1.0 = everyone starts enrolled.
  double initial_fraction = 1.0;
  /// Per-(round, never-joined client) Bernoulli arrival probability.
  double join_rate = 0.0;
  /// Per-(round, enrolled client) Bernoulli departure probability.
  double leave_rate = 0.0;
  /// Per-(round, departed client) Bernoulli return probability.
  double return_rate = 0.0;
  /// Staleness discount base for a returning client's first accepted
  /// uplink: weight = return_stale_weight^min(absence, staleness_cap),
  /// the StragglerBuffer's staleness_scale() arithmetic.
  double return_stale_weight = 0.5;
  /// Cap on the absence (in rounds) counted toward the return discount.
  std::size_t staleness_cap = 8;
  std::uint64_t seed = 0xC4A47EULL;

  /// True when the trace can contain any membership event (a false here is
  /// the churn off-switch: everyone enrolled, nobody moves).
  bool any_churn() const {
    return join_rate > 0.0 || leave_rate > 0.0 || return_rate > 0.0 ||
           initial_fraction < 1.0;
  }
};

/// Membership events applied at the start of one round. The three sets are
/// disjoint by construction (a client's status is read once per round).
struct ChurnRound {
  std::vector<std::size_t> joins;    // never-joined -> enrolled
  std::vector<std::size_t> leaves;   // enrolled -> departed
  std::vector<std::size_t> returns;  // departed -> enrolled

  bool empty() const {
    return joins.empty() && leaves.empty() && returns.empty();
  }
};

/// The full membership schedule of a run, materialized up front.
/// `rounds[r]` holds the events applied at round r (index 0 unused).
struct ChurnTrace {
  std::size_t num_clients = 0;
  std::size_t initial_enrolled = 0;  // clients [0, initial_enrolled)
  std::vector<ChurnRound> rounds;

  /// True when no membership event ever fires and everyone starts
  /// enrolled — the bit-identity off-switch condition.
  bool empty() const;
};

/// Materialize the deterministic churn schedule for `rounds` rounds over
/// `num_clients` clients. Every draw is keyed on (seed, round, client,
/// stream), so the trace is independent of evaluation order and identical
/// across re-runs and resumes.
ChurnTrace make_churn_trace(const ChurnConfig& config, std::size_t rounds,
                            std::size_t num_clients);

enum class MemberStatus : std::uint8_t {
  kNeverJoined = 0,
  kEnrolled = 1,
  kDeparted = 2,
};

/// Per-round membership deltas (RoundStats attribution).
struct ChurnDelta {
  std::size_t joined = 0;
  std::size_t left = 0;
  std::size_t returned = 0;
};

/// Live membership state machine replaying a materialized trace. The trace
/// is regenerated from the config on construction; only the mutable state
/// (statuses, departure rounds, pending return discounts, replay cursor)
/// travels through checkpoints, mirroring how the fault model resumes from
/// its config alone.
// ckpt-struct: run/churn/
class ChurnEngine {
 public:
  ChurnEngine(const ChurnConfig& config, std::size_t rounds,
              std::size_t num_clients);

  /// Apply every trace round in (cursor, round] in order and return the
  /// aggregate deltas. The runner calls this once per round; after a crash
  /// recovery the cursor is restored from the checkpoint and replay
  /// continues from there.
  ChurnDelta advance(std::size_t round);

  /// Currently enrolled client ids, ascending. Sampling maps its draws
  /// through this vector, which is the identity map at full enrollment.
  const std::vector<std::size_t>& enrolled() const { return enrolled_; }
  bool is_enrolled(std::size_t client) const {
    return status_.at(client) == MemberStatus::kEnrolled;
  }
  MemberStatus status(std::size_t client) const { return status_.at(client); }

  /// Rounds of absence awaiting the client's first accepted uplink since
  /// its return (0 = no discount pending). Consumed via clear_pending().
  std::size_t pending_staleness(std::size_t client) const {
    return std::size_t(pending_.at(client));
  }
  void clear_pending(std::size_t client) { pending_.at(client) = 0; }

  double return_stale_weight() const { return config_.return_stale_weight; }
  const ChurnConfig& config() const { return config_; }
  const ChurnTrace& trace() const { return trace_; }
  std::size_t cursor() const { return cursor_; }

  /// Checkpoint the mutable state under `prefix` ("run/churn/"). The trace
  /// itself is not written — it regenerates from the config.
  void save(RunCheckpoint& out, const std::string& prefix) const;
  /// Restore from a checkpoint; entries absent (a snapshot taken before any
  /// advance, or a pre-churn checkpoint) reset to the initial state.
  void load(const RunCheckpoint& in, const std::string& prefix);

 private:
  void reset_to_initial();
  void rebuild_enrolled();

  ChurnConfig config_;  // ckpt: none(configuration, rebuilt by the runner)
  ChurnTrace trace_;    // ckpt: none(regenerated deterministically from config seed)
  std::vector<MemberStatus> status_;           // ckpt: status
  std::vector<std::uint64_t> departed_round_;  // ckpt: departed
  std::vector<std::uint64_t> pending_;         // ckpt: pending
  std::vector<std::size_t> enrolled_;          // ckpt: none(derived from status_)
  std::size_t cursor_ = 0;                     // ckpt: cursor
};

}  // namespace spatl::fl
