// Byte-accurate communication accounting (paper eq. 13):
//   cost = sum over rounds of (uplink + downlink) across participants.
//
// Parameters are metered at 4 bytes (float32); salient-selection index sets
// at 4 bytes per channel index. Control variates and other gradient
// side-information are metered exactly like parameters, which is what makes
// SCAFFOLD/FedNova ~2x FedAvg per round in Table I.
#pragma once

#include <cstddef>

namespace spatl::fl {

/// Point-in-time copy of the ledger counters. Cheap (three doubles), so the
/// per-round telemetry exporter takes one before and one after each round
/// and reports the delta instead of re-walking cumulative totals.
struct CommSnapshot {
  double uplink = 0.0;
  double downlink = 0.0;
  double retransmitted = 0.0;  // included in uplink

  double total() const { return uplink + downlink; }

  /// Counter deltas accumulated since `earlier`. The counters are
  /// monotone within a run, so this is normally a plain subtraction; a
  /// later total BELOW `earlier` means the ledger was reset (or restored
  /// to an older snapshot) between the two observations, in which case the
  /// flow since that reset — the later total itself — is reported instead
  /// of a nonsensical negative delta.
  CommSnapshot since(const CommSnapshot& earlier) const {
    const auto delta = [](double now, double before) {
      return now >= before ? now - before : now;
    };
    return {delta(uplink, earlier.uplink),
            delta(downlink, earlier.downlink),
            delta(retransmitted, earlier.retransmitted)};
  }
};

class CommLedger {
 public:
  void add_uplink_floats(std::size_t count) { up_ += 4.0 * double(count); }
  void add_downlink_floats(std::size_t count) { down_ += 4.0 * double(count); }
  void add_uplink_indices(std::size_t count) { up_ += 4.0 * double(count); }
  void add_uplink_bytes(double bytes) { up_ += bytes; }
  void add_downlink_bytes(double bytes) { down_ += bytes; }

  /// Retry-path accounting: retransmitted payloads count toward uplink
  /// totals (the bytes really crossed the wire) AND are tracked separately,
  /// so communication-efficiency claims under lossy links stay honest.
  void add_uplink_retransmit_floats(std::size_t count) {
    const double bytes = 4.0 * double(count);
    up_ += bytes;
    retransmit_ += bytes;
  }
  void add_uplink_retransmit_bytes(double bytes) {
    up_ += bytes;
    retransmit_ += bytes;
  }

  double uplink_bytes() const { return up_; }
  double downlink_bytes() const { return down_; }
  double total_bytes() const { return up_ + down_; }
  double retransmitted_bytes() const { return retransmit_; }

  CommSnapshot snapshot() const { return {up_, down_, retransmit_}; }

  void reset() { up_ = down_ = retransmit_ = 0.0; }

  /// Checkpoint restore: overwrite the counters with previously-captured
  /// totals so a resumed run's cumulative byte series continues exactly.
  void restore(double uplink, double downlink, double retransmitted) {
    up_ = uplink;
    down_ = downlink;
    retransmit_ = retransmitted;
  }
  void restore(const CommSnapshot& snap) {
    restore(snap.uplink, snap.downlink, snap.retransmitted);
  }

 private:
  double up_ = 0.0;
  double down_ = 0.0;
  double retransmit_ = 0.0;
};

}  // namespace spatl::fl
