#include "fl/compression.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "fl/flat_utils.hpp"

namespace spatl::fl {

std::string codec_name(Codec codec) {
  switch (codec) {
    case Codec::kNone: return "none";
    case Codec::kTopK: return "topk";
    case Codec::kInt8: return "int8";
  }
  return "?";
}

double CompressedUpdate::wire_bytes() const {
  switch (codec) {
    case Codec::kNone:
      return 4.0 * double(dense.size());
    case Codec::kTopK:
      return 4.0 * double(indices.size()) + 4.0 * double(values.size());
    case Codec::kInt8:
      return double(qvalues.size()) + 4.0;  // payload + scale
  }
  return 0.0;
}

CompressedUpdate compress_update(std::span<const float> delta, Codec codec,
                                 double topk_fraction) {
  CompressedUpdate out;
  out.codec = codec;
  out.dim = delta.size();
  switch (codec) {
    case Codec::kNone:
      out.dense.assign(delta.begin(), delta.end());
      break;
    case Codec::kTopK: {
      if (topk_fraction <= 0.0 || topk_fraction > 1.0) {
        throw std::invalid_argument("compress_update: bad topk fraction");
      }
      if (delta.empty()) break;
      const std::size_t k = std::max<std::size_t>(
          1, std::size_t(topk_fraction * double(delta.size())));
      std::vector<std::uint32_t> order(delta.size());
      std::iota(order.begin(), order.end(), 0u);
      std::nth_element(order.begin(), order.begin() + std::ptrdiff_t(k) - 1,
                       order.end(), [&](std::uint32_t a, std::uint32_t b) {
                         return std::fabs(delta[a]) > std::fabs(delta[b]);
                       });
      order.resize(k);
      std::sort(order.begin(), order.end());
      out.indices = std::move(order);
      out.values.reserve(k);
      for (auto i : out.indices) out.values.push_back(delta[i]);
      break;
    }
    case Codec::kInt8: {
      float max_abs = 0.0f;
      for (float v : delta) max_abs = std::max(max_abs, std::fabs(v));
      out.scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
      out.qvalues.reserve(delta.size());
      for (float v : delta) {
        const float q = std::round(v / out.scale);
        out.qvalues.push_back(
            std::int8_t(std::clamp(q, -127.0f, 127.0f)));
      }
      break;
    }
  }
  return out;
}

std::vector<float> decompress_update(const CompressedUpdate& update) {
  std::vector<float> out(update.dim, 0.0f);
  switch (update.codec) {
    case Codec::kNone:
      out = update.dense;
      break;
    case Codec::kTopK:
      for (std::size_t i = 0; i < update.indices.size(); ++i) {
        out[update.indices[i]] = update.values[i];
      }
      break;
    case Codec::kInt8:
      for (std::size_t i = 0; i < update.qvalues.size(); ++i) {
        out[i] = float(update.qvalues[i]) * update.scale;
      }
      break;
  }
  return out;
}

CompressedFedAvg::CompressedFedAvg(FlEnvironment& env, FlConfig config,
                                   Codec codec, double topk_fraction)
    : FederatedAlgorithm(env, std::move(config)),
      codec_(codec),
      topk_fraction_(topk_fraction) {}

void CompressedFedAvg::run_round(const std::vector<std::size_t>& selected) {
  auto views = global_.all_params();
  const std::vector<float> w_global = nn::flatten_values(views);
  std::vector<float> delta_accum(w_global.size(), 0.0f);
  std::vector<float> bn_accum(flatten_bn_stats(global_).size(), 0.0f);

  const float inv_s = 1.0f / float(selected.size());
  for (const std::size_t i : selected) {
    load_global_into_worker();
    ledger_.add_downlink_floats(w_global.size());
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)));
    data::train_supervised(worker_, env_.client(i).train, config_.local,
                           client_rng, worker_.all_params());
    const auto w_i = nn::flatten_values(worker_.all_params());
    std::vector<float> delta(w_global.size());
    for (std::size_t j = 0; j < delta.size(); ++j) {
      delta[j] = w_i[j] - w_global[j];
    }
    const auto msg = compress_update(delta, codec_, topk_fraction_);
    ledger_.add_uplink_bytes(msg.wire_bytes());
    const auto decoded = decompress_update(msg);
    axpy(delta_accum, decoded, inv_s);
    axpy(bn_accum, flatten_bn_stats(worker_), inv_s);
  }
  std::vector<float> w_new = w_global;
  axpy(w_new, delta_accum, float(config_.server_lr));
  nn::unflatten_values(w_new, views);
  unflatten_bn_stats(bn_accum, global_);
}

}  // namespace spatl::fl
