// Update-compression codecs: classic communication-efficiency baselines
// (gradient sparsification / quantization, cf. the paper's related work
// [37],[53]) that SPATL's salient selection competes against.
//
// Codecs operate on the flat client update (w_i - w_global):
//   kTopK : keep the k largest-magnitude entries, send (index, value) pairs
//   kInt8 : linear 8-bit quantization with a per-message float scale
// Both are lossy; wire size is metered exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fl/algorithm.hpp"

namespace spatl::fl {

enum class Codec { kNone, kTopK, kInt8 };

std::string codec_name(Codec codec);

/// A compressed flat update, decodable to a dense vector of size `dim`.
struct CompressedUpdate {
  Codec codec = Codec::kNone;
  std::size_t dim = 0;
  std::vector<float> dense;           // kNone
  std::vector<std::uint32_t> indices;  // kTopK
  std::vector<float> values;           // kTopK
  std::vector<std::int8_t> qvalues;    // kInt8
  float scale = 1.0f;                  // kInt8

  /// Exact bytes this message occupies on the wire.
  double wire_bytes() const;
};

/// Encode `delta`. For kTopK, `topk_fraction` in (0,1] selects the kept
/// share of coordinates (at least 1).
CompressedUpdate compress_update(std::span<const float> delta, Codec codec,
                                 double topk_fraction = 0.1);

/// Decode into a dense vector (zeros where nothing was sent).
std::vector<float> decompress_update(const CompressedUpdate& update);

/// FedAvg with compressed uplink: clients send encoded deltas; the server
/// averages the decoded deltas. Downlink stays dense (servers are not
/// bandwidth-bound in the paper's setting).
class CompressedFedAvg : public FederatedAlgorithm {
 public:
  CompressedFedAvg(FlEnvironment& env, FlConfig config, Codec codec,
                   double topk_fraction = 0.1);

  std::string name() const override {
    return "fedavg+" + codec_name(codec_);
  }
  void run_round(const std::vector<std::size_t>& selected) override;

 private:
  Codec codec_;
  double topk_fraction_;
};

}  // namespace spatl::fl
