#include "fl/environment.hpp"

namespace spatl::fl {

FlEnvironment::FlEnvironment(const data::Dataset& source,
                             std::size_t num_clients, double beta,
                             double val_fraction, common::Rng& rng) {
  data::DirichletOptions opts;
  opts.beta = beta;
  const auto partition = data::dirichlet_partition(source, num_clients, opts,
                                                   rng);
  build(source, partition, val_fraction, rng);
}

FlEnvironment::FlEnvironment(const data::Dataset& source,
                             const data::PartitionResult& partition,
                             double val_fraction, common::Rng& rng) {
  build(source, partition, val_fraction, rng);
}

void FlEnvironment::build(const data::Dataset& source,
                          const data::PartitionResult& partition,
                          double val_fraction, common::Rng& rng) {
  clients_.reserve(partition.client_indices.size());
  for (const auto& indices : partition.client_indices) {
    const auto split = data::split_train_val(indices, val_fraction, rng);
    clients_.push_back(ClientData{source.subset(split.train),
                                  source.subset(split.val)});
  }
}

std::size_t FlEnvironment::total_train_samples() const {
  std::size_t total = 0;
  for (const auto& c : clients_) total += c.train.size();
  return total;
}

}  // namespace spatl::fl
