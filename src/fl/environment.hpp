// The simulated federation: per-client non-IID train/validation datasets.
//
// Mirrors the Non-IID benchmark setup the paper evaluates on: a source
// dataset is partitioned across clients (Dirichlet label skew), then each
// client's shard is split into a local training set and a local validation
// set; reported accuracy is the average top-1 over the clients' validation
// sets (paper §V-B).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "data/partition.hpp"

namespace spatl::fl {

struct ClientData {
  data::Dataset train;
  data::Dataset val;
};

class FlEnvironment {
 public:
  /// Partition `source` into `num_clients` shards with Dirichlet(beta) label
  /// skew and carve out `val_fraction` of each shard for validation.
  FlEnvironment(const data::Dataset& source, std::size_t num_clients,
                double beta, double val_fraction, common::Rng& rng);

  /// Build from a precomputed partition (used by the LEAF-style FEMNIST
  /// setting and by tests).
  FlEnvironment(const data::Dataset& source,
                const data::PartitionResult& partition, double val_fraction,
                common::Rng& rng);

  std::size_t num_clients() const { return clients_.size(); }
  const ClientData& client(std::size_t i) const { return clients_.at(i); }

  std::size_t total_train_samples() const;

 private:
  void build(const data::Dataset& source,
             const data::PartitionResult& partition, double val_fraction,
             common::Rng& rng);

  std::vector<ClientData> clients_;
};

}  // namespace spatl::fl
