#include "fl/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "common/rng.hpp"
#include "fl/store/error.hpp"

namespace spatl::fl {

namespace {

// Independent decision streams per (round, client) purpose, so adding a new
// fault kind never perturbs the draws of another.
enum class Stream : std::uint64_t {
  kFate = 0x1ULL,
  kLoss = 0x2ULL,
  kCorrupt = 0x3ULL,
  kByzantine = 0x4ULL,  // membership: keyed on client only (round = 0)
  kAttack = 0x5ULL,     // per-round attack noise draws
  kBackoff = 0x6ULL,    // retry-backoff jitter (never touches kLoss draws)
  kStorage = 0x7ULL,    // storage faults: keyed on write sequence, client 0
};

/// Order-independent per-decision generator: the seed is mixed with the
/// (round, client, stream) key through splitmix64, so any query order yields
/// the same draws.
common::Rng keyed_rng(std::uint64_t seed, std::size_t round,
                      std::size_t client, Stream stream) {
  std::uint64_t s = seed;
  s ^= common::splitmix64(s) ^ (0x9E3779B97F4A7C15ULL * (round + 1));
  s ^= common::splitmix64(s) ^ (0xC2B2AE3D27D4EB4FULL * (client + 1));
  s ^= common::splitmix64(s) ^ (0x165667B19E3779F9ULL *
                                static_cast<std::uint64_t>(stream));
  return common::Rng(s);
}

}  // namespace

bool FaultConfig::any_faults() const {
  if (dropout_rate > 0.0 || straggler_rate > 0.0 || corruption_rate > 0.0 ||
      loss_rate > 0.0 || byzantine_fraction > 0.0) {
    return true;
  }
  for (const double a : availability) {
    if (a < 1.0) return true;
  }
  for (const std::uint8_t b : byzantine_clients) {
    if (b != 0) return true;
  }
  return false;
}

const char* attack_kind_name(AttackKind kind) {
  switch (kind) {
    case AttackKind::kSignFlip: return "signflip";
    case AttackKind::kScale: return "scale";
    case AttackKind::kGaussianNoise: return "noise";
    case AttackKind::kFixedDirection: return "collude";
  }
  return "unknown";
}

AttackKind parse_attack_kind(const std::string& name) {
  if (name == "signflip") return AttackKind::kSignFlip;
  if (name == "scale") return AttackKind::kScale;
  if (name == "noise") return AttackKind::kGaussianNoise;
  if (name == "collude") return AttackKind::kFixedDirection;
  throw std::invalid_argument("unknown attack '" + name +
                              "' (signflip|scale|noise|collude)");
}

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kNonFinite: return "non_finite";
    case RejectReason::kNormBound: return "norm_bound";
    case RejectReason::kLost: return "lost";
    case RejectReason::kDeadline: return "deadline";
  }
  return "unknown";
}

const char* skip_reason_name(SkipReason reason) {
  switch (reason) {
    case SkipReason::kNone: return "none";
    case SkipReason::kAdmissionQuorum: return "admission_quorum";
    case SkipReason::kPostValidationQuorum: return "post_validation_quorum";
    case SkipReason::kAdmissionBudget: return "admission_budget";
  }
  return "unknown";
}

FaultModel::FaultModel(FaultConfig config) : config_(std::move(config)) {
  auto check_rate = [](double r, const char* what) {
    if (r < 0.0 || r > 1.0) {
      throw std::invalid_argument(std::string("FaultConfig: ") + what +
                                  " must be in [0, 1]");
    }
  };
  check_rate(config_.dropout_rate, "dropout_rate");
  check_rate(config_.straggler_rate, "straggler_rate");
  check_rate(config_.corruption_rate, "corruption_rate");
  check_rate(config_.loss_rate, "loss_rate");
  check_rate(config_.byzantine_fraction, "byzantine_fraction");
  for (const double a : config_.availability) check_rate(a, "availability");
  enabled_ = config_.any_faults();
}

bool FaultModel::is_byzantine(std::size_t client) const {
  if (!config_.byzantine_clients.empty()) {
    return config_.byzantine_clients[client %
                                     config_.byzantine_clients.size()] != 0;
  }
  if (config_.byzantine_fraction <= 0.0) return false;
  // Round 0 keys the membership stream: the cohort is a per-client property,
  // not a per-round draw.
  auto rng = keyed_rng(config_.seed, 0, client, Stream::kByzantine);
  return rng.bernoulli(config_.byzantine_fraction);
}

bool FaultModel::attack(std::size_t round, std::size_t client,
                        std::vector<float>& payload,
                        const std::vector<float>* reference) const {
  if (payload.empty() || !is_byzantine(client)) return false;
  const bool aligned =
      reference != nullptr && reference->size() == payload.size();
  auto ref = [&](std::size_t j) {
    return aligned ? double((*reference)[j]) : 0.0;
  };
  switch (config_.attack_kind) {
    case AttackKind::kSignFlip:
      for (std::size_t j = 0; j < payload.size(); ++j) {
        payload[j] = float(2.0 * ref(j) - double(payload[j]));
      }
      break;
    case AttackKind::kScale:
      for (std::size_t j = 0; j < payload.size(); ++j) {
        payload[j] = float(ref(j) +
                           config_.attack_scale * (double(payload[j]) - ref(j)));
      }
      break;
    case AttackKind::kGaussianNoise: {
      auto rng = keyed_rng(config_.seed, round, client, Stream::kAttack);
      for (auto& x : payload) {
        x = float(double(x) + config_.attack_noise_std * rng.normal());
      }
      break;
    }
    case AttackKind::kFixedDirection:
      // Every Byzantine client pushes the SAME pseudo-random +-1 direction
      // derived from the seed alone, in every round: the textbook colluding
      // fixed-direction attack a plain mean cannot dilute.
      for (std::size_t j = 0; j < payload.size(); ++j) {
        std::uint64_t h = config_.seed ^ (0x9E3779B97F4A7C15ULL * (j + 1));
        const double dir = (common::splitmix64(h) & 1ULL) ? 1.0 : -1.0;
        payload[j] = float(ref(j) + config_.attack_scale * dir);
      }
      break;
  }
  return true;
}

ClientFault FaultModel::assess(std::size_t round, std::size_t client) const {
  ClientFault f;
  auto rng = keyed_rng(config_.seed, round, client, Stream::kFate);
  const double up_prob =
      config_.availability.empty()
          ? 1.0 - config_.dropout_rate
          : config_.availability[client % config_.availability.size()];
  if (!rng.bernoulli(up_prob)) {
    f.fate = ClientFate::kUnavailable;
    return f;
  }
  const bool slow = rng.bernoulli(config_.straggler_rate);
  f.compute_time = config_.compute_time_mean *
                   std::exp(config_.compute_time_jitter * rng.normal());
  if (slow) f.compute_time *= config_.slowdown_factor;
  // Classification only — kStraggler never rejects by itself. The policy
  // (same-round down-weight, semi-async late commit, or kDeadline when
  // neither applies) is decided at delivery time from ResilienceConfig /
  // AsyncConfig; see FederatedAlgorithm::deliver_update.
  if (config_.round_deadline > 0.0 &&
      f.compute_time > config_.round_deadline) {
    f.fate = ClientFate::kStraggler;
  }
  return f;
}

Transmission FaultModel::transmit(std::size_t round, std::size_t client,
                                  const RetryPolicy& retry) const {
  Transmission t;
  if (config_.loss_rate <= 0.0) return t;
  auto rng = keyed_rng(config_.seed, round, client, Stream::kLoss);
  // Jitter draws come from their own stream, created lazily so a jitter-free
  // policy performs zero extra RNG work; loss outcomes read only `rng`.
  const bool backoff_on = retry.backoff_base > 0.0;
  const bool jitter_on = backoff_on && retry.jitter > 0.0;
  common::Rng jitter_rng =
      jitter_on ? keyed_rng(config_.seed, round, client, Stream::kBackoff)
                : common::Rng(0);
  t.attempts = 0;
  double wait = retry.backoff_base;
  for (std::size_t attempt = 0; attempt <= retry.max_retries; ++attempt) {
    ++t.attempts;
    if (!rng.bernoulli(config_.loss_rate)) {
      t.delivered = true;
      return t;
    }
    if (backoff_on && attempt < retry.max_retries) {
      double step = std::min(wait, retry.backoff_max);
      if (jitter_on) {
        const double j = std::clamp(retry.jitter, 0.0, 1.0);
        step *= 1.0 - j + 2.0 * j * jitter_rng.uniform();
      }
      t.backoff_wait += step;
      wait *= std::max(1.0, retry.backoff_factor);
    }
  }
  t.delivered = false;
  return t;
}

bool FaultModel::corrupt(std::size_t round, std::size_t client,
                         std::vector<float>& payload) const {
  if (config_.corruption_rate <= 0.0 || payload.empty()) return false;
  auto rng = keyed_rng(config_.seed, round, client, Stream::kCorrupt);
  if (!rng.bernoulli(config_.corruption_rate)) return false;
  const std::size_t n = std::max<std::size_t>(
      1, std::size_t(config_.corruption_fraction * double(payload.size())));
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t idx = std::size_t(rng.uniform_index(payload.size()));
    switch (config_.corruption_kind) {
      case CorruptionKind::kNaN:
        payload[idx] = std::numeric_limits<float>::quiet_NaN();
        break;
      case CorruptionKind::kInf:
        payload[idx] = (k % 2 == 0) ? std::numeric_limits<float>::infinity()
                                    : -std::numeric_limits<float>::infinity();
        break;
      case CorruptionKind::kBitFlip: {
        std::uint32_t bits = 0;
        std::memcpy(&bits, &payload[idx], sizeof(bits));
        bits ^= 1u << rng.uniform_index(32);
        std::memcpy(&payload[idx], &bits, sizeof(bits));
        break;
      }
    }
  }
  return true;
}

// --- storage faults -------------------------------------------------------

FaultyStoreIo::FaultyStoreIo(StorageFaultConfig config, store::StoreIo* inner)
    : config_(config),
      inner_(inner != nullptr ? inner : &store::default_store_io()) {}

void FaultyStoreIo::write_file(const std::string& path,
                               const std::string& bytes) {
  const std::size_t op = writes_++;
  auto rng = keyed_rng(config_.seed, op, 0, Stream::kStorage);
  // All decisions and their parameters are drawn unconditionally, so which
  // branch fires never shifts the draws of a later write.
  const bool io_error = rng.bernoulli(config_.io_error_rate);
  const bool torn = rng.bernoulli(config_.torn_write_rate);
  const bool corrupt = rng.bernoulli(config_.corrupt_rate);
  const double cut_fraction = rng.uniform();
  const double flip_fraction = rng.uniform();
  const std::size_t flip_bit = std::size_t(rng.uniform_index(8));

  if (io_error) {
    ++io_errors_;
    // The device fills mid-write: a prefix lands, then the write fails
    // loudly. The store's atomic protocol leaves the previous good file
    // untouched (only the tmp file is damaged).
    const std::size_t kept = std::size_t(cut_fraction * double(bytes.size()));
    inner_->write_file(path, bytes.substr(0, kept));
    throw store::CheckpointError(
        path, "",
        "simulated ENOSPC: short write (" + std::to_string(kept) + " of " +
            std::to_string(bytes.size()) + " bytes)");
  }
  std::string actual = bytes;
  if (torn && !actual.empty()) {
    ++torn_;
    // Torn write: the tail never reaches the platter, but the caller sees
    // success — the crash-between-write-and-sync failure mode.
    actual.resize(std::size_t(cut_fraction * double(actual.size())));
  }
  if (corrupt && !actual.empty()) {
    ++corrupted_;
    const std::size_t idx = std::min(
        actual.size() - 1, std::size_t(flip_fraction * double(actual.size())));
    actual[idx] = char(static_cast<unsigned char>(actual[idx]) ^
                       static_cast<unsigned char>(1u << flip_bit));
  }
  inner_->write_file(path, actual);
}

std::string FaultyStoreIo::read_file(const std::string& path) {
  return inner_->read_file(path);
}

void FaultyStoreIo::rename_file(const std::string& from,
                                const std::string& to) {
  inner_->rename_file(from, to);
}

void FaultyStoreIo::remove_file(const std::string& path) {
  inner_->remove_file(path);
}

bool FaultyStoreIo::exists(const std::string& path) {
  return inner_->exists(path);
}

void FaultyStoreIo::create_directories(const std::string& dir) {
  inner_->create_directories(dir);
}

std::vector<std::string> FaultyStoreIo::list_dir(const std::string& dir) {
  return inner_->list_dir(dir);
}

void RoundStats::add(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: break;
    case RejectReason::kNonFinite: ++rejected_non_finite; break;
    case RejectReason::kNormBound: ++rejected_norm; break;
    case RejectReason::kLost: ++rejected_lost; break;
    case RejectReason::kDeadline: ++rejected_deadline; break;
  }
}

}  // namespace spatl::fl
