// Deterministic fault injection and server-side resilience policy for the
// FL simulator.
//
// Production federations never see the clean world the paper's evaluation
// assumes: sampled clients drop out, straggle past the round deadline, and
// return corrupted or lost uplinks. `FaultModel` injects those failures
// deterministically — every decision is keyed on (seed, round, client), so
// two runs with the same seeds are bit-identical regardless of query order —
// and `ResilienceConfig` describes the server's defenses: update validation,
// bounded retry (metered through CommLedger's retransmission counters),
// stale-update down-weighting, and a participation quorum below which the
// round is skipped with the global model untouched.
//
// The whole path is strictly opt-in: with no FaultModel installed and no
// ResilienceConfig requested, every algorithm's arithmetic and byte
// accounting are unchanged from the clean-world code path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spatl::fl {

enum class CorruptionKind {
  kNaN,      // overwrite perturbed entries with quiet NaN
  kInf,      // overwrite with alternating +/- infinity
  kBitFlip,  // flip one random bit of the float's payload
};

struct FaultConfig {
  /// Per-(round, client) Bernoulli probability the client is unavailable at
  /// round start (never receives the downlink).
  double dropout_rate = 0.0;
  /// Optional per-client availability trace: `availability[i % size]` is the
  /// probability client i is up in any round. Overrides dropout_rate for all
  /// clients when non-empty.
  std::vector<double> availability;

  /// Probability a participating client runs slow this round.
  double straggler_rate = 0.0;
  double slowdown_factor = 5.0;     // compute-time multiplier when slow
  double compute_time_mean = 1.0;   // nominal per-client compute time
  double compute_time_jitter = 0.2; // lognormal sigma on compute time
  /// Round deadline in the same units as compute_time_mean; a client whose
  /// simulated compute time exceeds it is a straggler. 0 disables deadlines
  /// (and thus stragglers).
  double round_deadline = 2.0;

  /// Per-update probability the uplink payload is corrupted in flight.
  double corruption_rate = 0.0;
  CorruptionKind corruption_kind = CorruptionKind::kNaN;
  /// Fraction of payload elements perturbed when corruption fires (>= 1
  /// element).
  double corruption_fraction = 0.01;

  /// Per-attempt probability an uplink transmission is lost (each retry is
  /// a fresh Bernoulli draw and re-pays the payload bytes).
  double loss_rate = 0.0;

  std::uint64_t seed = 0x5EEDFA17ULL;

  /// True if any injection is active (all-zero rates behave like the clean
  /// path but still exercise the defended code).
  bool any_faults() const;
};

/// Why the server discarded a client's update.
enum class RejectReason {
  kNone,
  kNonFinite,  // NaN/Inf detected by update validation
  kNormBound,  // update norm exceeded ResilienceConfig::max_update_norm
  kLost,       // all transmission attempts failed
  kDeadline,   // straggler past the deadline with stale_weight == 0
};

const char* reject_reason_name(RejectReason reason);

/// Server-side defense policy (meaningful with or without fault injection).
struct ResilienceConfig {
  /// Reject updates containing NaN/Inf before aggregation.
  bool validate_updates = true;
  /// Reject updates whose L2 delta from the reference exceeds this bound.
  /// 0 disables the norm check.
  double max_update_norm = 0.0;
  /// Retransmission attempts after a lost uplink before giving up.
  std::size_t max_retries = 2;
  /// Minimum accepted updates required to apply aggregation; below this the
  /// round is skipped and the global model is left untouched.
  std::size_t min_quorum = 1;
  /// Aggregation weight multiplier for stragglers that miss the deadline;
  /// 0 rejects their updates outright (RejectReason::kDeadline).
  double stale_weight = 0.5;
};

enum class ClientFate {
  kOk,           // participates normally
  kUnavailable,  // dropped out before the round began
  kStraggler,    // finishes after the round deadline
};

struct ClientFault {
  ClientFate fate = ClientFate::kOk;
  /// Simulated local compute time (only meaningful when not kUnavailable).
  double compute_time = 0.0;
};

struct Transmission {
  bool delivered = true;
  std::size_t attempts = 1;  // total tries, including the successful one
};

/// Deterministic per-(round, client) fault sampler. All members are const:
/// the model carries no mutable state, so queries are order-independent and
/// repeatable.
class FaultModel {
 public:
  explicit FaultModel(FaultConfig config);

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return enabled_; }

  /// Availability / straggler fate of `client` in `round`.
  ClientFault assess(std::size_t round, std::size_t client) const;

  /// Simulate the uplink transmission with up to `max_retries` retries.
  Transmission transmit(std::size_t round, std::size_t client,
                        std::size_t max_retries) const;

  /// Maybe corrupt `payload` in place; returns true if corruption fired.
  bool corrupt(std::size_t round, std::size_t client,
               std::vector<float>& payload) const;

 private:
  FaultConfig config_;
  bool enabled_ = false;
};

/// Per-round participation and failure statistics (merged into RoundRecord
/// by the runner and totalled in RunResult).
struct RoundStats {
  std::size_t selected = 0;     // sampled by the runner
  std::size_t dropped = 0;      // unavailable at round start
  std::size_t stragglers = 0;   // past-deadline participants
  std::size_t delivered = 0;    // uplinks that reached the server
  std::size_t accepted = 0;     // updates that entered aggregation
  std::size_t rejected_non_finite = 0;
  std::size_t rejected_norm = 0;
  std::size_t rejected_lost = 0;
  std::size_t rejected_deadline = 0;
  std::size_t retransmissions = 0;  // extra transmission attempts
  /// True when the round was skipped (admission or post-validation quorum).
  bool skipped = false;

  std::size_t rejected_total() const {
    return rejected_non_finite + rejected_norm + rejected_lost +
           rejected_deadline;
  }
  void add(RejectReason reason);
};

}  // namespace spatl::fl
