// Deterministic fault injection and server-side resilience policy for the
// FL simulator.
//
// Production federations never see the clean world the paper's evaluation
// assumes: sampled clients drop out, straggle past the round deadline, and
// return corrupted or lost uplinks. `FaultModel` injects those failures
// deterministically — every decision is keyed on (seed, round, client), so
// two runs with the same seeds are bit-identical regardless of query order —
// and `ResilienceConfig` describes the server's defenses: update validation,
// a RetryPolicy (bounded retransmissions with capped exponential backoff and
// deterministic jitter, metered through CommLedger's retransmission
// counters), stale-update down-weighting, and a participation quorum below
// which the round is skipped with the global model untouched.
//
// The whole path is strictly opt-in: with no FaultModel installed and no
// ResilienceConfig requested, every algorithm's arithmetic and byte
// accounting are unchanged from the clean-world code path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fl/robust.hpp"
#include "fl/store/io.hpp"

namespace spatl::fl {

enum class CorruptionKind {
  kNaN,      // overwrite perturbed entries with quiet NaN
  kInf,      // overwrite with alternating +/- infinity
  kBitFlip,  // flip one random bit of the float's payload
};

/// Adversarial (Byzantine) client behaviours. Unlike the benign corruption
/// kinds above, these craft updates that are finite and plausibly scaled, so
/// they pass validation and must be defeated at aggregation time.
enum class AttackKind {
  kSignFlip,        // transmit ref - (w - ref): the exact anti-update
  kScale,           // transmit ref + scale * (w - ref): boosted update
  kGaussianNoise,   // add N(0, noise_std^2) per coordinate
  kFixedDirection,  // colluding clients all push ref + scale * u (shared u)
};

const char* attack_kind_name(AttackKind kind);
/// Parse "signflip|scale|noise|collude". Throws std::invalid_argument.
AttackKind parse_attack_kind(const std::string& name);

struct FaultConfig {
  /// Per-(round, client) Bernoulli probability the client is unavailable at
  /// round start (never receives the downlink).
  double dropout_rate = 0.0;
  /// Optional per-client availability trace: `availability[i % size]` is the
  /// probability client i is up in any round. Overrides dropout_rate for all
  /// clients when non-empty.
  std::vector<double> availability;

  /// Probability a participating client runs slow this round.
  double straggler_rate = 0.0;
  double slowdown_factor = 5.0;     // compute-time multiplier when slow
  double compute_time_mean = 1.0;   // nominal per-client compute time
  double compute_time_jitter = 0.2; // lognormal sigma on compute time
  /// Round deadline in the same units as compute_time_mean; a client whose
  /// simulated compute time exceeds it is a straggler. 0 disables deadlines
  /// (and thus stragglers).
  double round_deadline = 2.0;

  /// Per-update probability the uplink payload is corrupted in flight.
  double corruption_rate = 0.0;
  CorruptionKind corruption_kind = CorruptionKind::kNaN;
  /// Fraction of payload elements perturbed when corruption fires (>= 1
  /// element).
  double corruption_fraction = 0.01;

  /// Per-attempt probability an uplink transmission is lost (each retry is
  /// a fresh Bernoulli draw and re-pays the payload bytes).
  double loss_rate = 0.0;

  /// Fraction of the client population that behaves adversarially.
  /// Membership is keyed on (seed, client) only, so a Byzantine client is
  /// Byzantine in every round — the standard static-adversary model.
  double byzantine_fraction = 0.0;
  /// Explicit membership mask (`byzantine_clients[i % size]` != 0 marks
  /// client i adversarial). Overrides byzantine_fraction when non-empty.
  std::vector<std::uint8_t> byzantine_clients;
  AttackKind attack_kind = AttackKind::kSignFlip;
  /// Boost factor for kScale / push magnitude for kFixedDirection.
  double attack_scale = 10.0;
  /// Per-coordinate noise stddev for kGaussianNoise.
  double attack_noise_std = 1.0;

  std::uint64_t seed = 0x5EEDFA17ULL;

  /// True if any injection is active (all-zero rates behave like the clean
  /// path but still exercise the defended code).
  bool any_faults() const;
};

/// Why the server discarded a client's update.
enum class RejectReason {
  kNone,
  kNonFinite,  // NaN/Inf detected by update validation
  kNormBound,  // update norm exceeded ResilienceConfig::max_update_norm
  kLost,       // all transmission attempts failed
  /// Straggler whose update could be neither down-weighted nor buffered:
  /// on the synchronous path this fires only when stale_weight == 0 (any
  /// positive stale_weight down-weights instead); on the semi-async path it
  /// fires only when the required lag exceeds AsyncConfig::max_lag (within
  /// the lag budget the update is parked and commits late).
  kDeadline,
};

const char* reject_reason_name(RejectReason reason);

/// Which gate skipped a round (attribution for RoundStats::skipped).
enum class SkipReason {
  kNone,
  /// Too few available clients after admission (pre-validation).
  kAdmissionQuorum,
  /// Enough clients started, but server-side validation rejected updates
  /// down to below min_quorum (post-validation survivor set).
  kPostValidationQuorum,
  /// The per-round admission budget (participant cap / uplink byte budget)
  /// shed or deferred every active client before any uplink was attempted.
  kAdmissionBudget,
};

const char* skip_reason_name(SkipReason reason);

/// Retransmission discipline for lost uplinks: capped exponential backoff
/// with deterministic jitter drawn from the per-(round, client) backoff
/// stream. The defaults (no backoff, no jitter) reproduce the legacy
/// bounded-retry loop draw for draw — retries consume only kLoss-stream
/// Bernoullis, so enabling backoff later never perturbs loss outcomes.
struct RetryPolicy {
  /// Retransmission attempts after a lost uplink before giving up.
  std::size_t max_retries = 2;
  /// Virtual-time wait before the first retry (same units as the fault
  /// model's compute times). 0 disables backoff entirely: no waits, no
  /// jitter draws, legacy behaviour bit for bit.
  double backoff_base = 0.0;
  /// Multiplier applied to the wait after each failed attempt.
  double backoff_factor = 2.0;
  /// Upper bound on any single wait.
  double backoff_max = 8.0;
  /// Deterministic jitter: each wait is scaled by a factor uniform in
  /// [1 - jitter, 1 + jitter], drawn from the kBackoff stream (only when
  /// backoff is active). 0 = no draws at all.
  double jitter = 0.0;
};

/// Server-side defense policy (meaningful with or without fault injection).
struct ResilienceConfig {
  /// Reject updates containing NaN/Inf before aggregation.
  bool validate_updates = true;
  /// Reject updates whose L2 delta from the reference exceeds this bound.
  /// 0 disables the norm check.
  double max_update_norm = 0.0;
  /// Retransmission discipline for lost uplinks (attempt budget + capped
  /// exponential backoff with deterministic jitter).
  RetryPolicy retry;
  /// Minimum accepted updates required to apply aggregation; below this the
  /// round is skipped and the global model is left untouched.
  std::size_t min_quorum = 1;
  /// Synchronous staleness policy: aggregation weight multiplier for
  /// stragglers that miss the deadline; 0 rejects their updates outright
  /// (RejectReason::kDeadline). Superseded by AsyncConfig::stale_weight when
  /// the semi-asynchronous buffer is installed (stragglers then commit late
  /// instead of being down-weighted in the same round).
  double stale_weight = 0.5;

  /// Byzantine-robust aggregation rule applied to the accepted updates.
  /// kWeightedMean is the classic FedAvg estimate and keeps the exact
  /// clean-world arithmetic; the other kinds trade a little statistical
  /// efficiency for a non-zero breakdown point.
  AggregatorKind aggregator = AggregatorKind::kWeightedMean;
  /// kTrimmedMean: fraction of order statistics dropped from EACH end of
  /// every coordinate's sample before averaging.
  double trim_fraction = 0.2;
  /// kKrum: assumed upper bound f on the number of Byzantine clients
  /// (scores sum the n - f - 2 smallest pairwise distances).
  std::size_t krum_f = 0;
  /// kKrum: number of lowest-scoring updates averaged (1 = classic Krum,
  /// >1 = multi-Krum).
  std::size_t multi_krum = 1;
  /// kNormClippedMean: L2 clip threshold on each update's deviation from
  /// the reference; 0 auto-tunes to the median update norm.
  double clip_norm = 0.0;
};

enum class ClientFate {
  kOk,           // participates normally
  kUnavailable,  // dropped out before the round began
  kStraggler,    // finishes after the round deadline
};

struct ClientFault {
  ClientFate fate = ClientFate::kOk;
  /// Simulated local compute time (only meaningful when not kUnavailable).
  double compute_time = 0.0;
};

struct Transmission {
  bool delivered = true;
  std::size_t attempts = 1;  // total tries, including the successful one
  /// Total virtual-time backoff waited between attempts (0 with backoff
  /// disabled). Added to the client's compute time by the straggler policy,
  /// so a retry storm can push a client past the round deadline.
  double backoff_wait = 0.0;
};

/// Deterministic per-(round, client) fault sampler. All members are const:
/// the model carries no mutable state, so queries are order-independent and
/// repeatable.
class FaultModel {
 public:
  explicit FaultModel(FaultConfig config);

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return enabled_; }

  /// Availability / straggler fate of `client` in `round`.
  ClientFault assess(std::size_t round, std::size_t client) const;

  /// Simulate the uplink transmission under `retry`: up to
  /// retry.max_retries retransmissions, accumulating capped-exponential
  /// backoff waits (with deterministic jitter) between failed attempts.
  /// Loss outcomes consume only the kLoss stream, so the draw sequence is
  /// identical whatever backoff parameters are configured.
  Transmission transmit(std::size_t round, std::size_t client,
                        const RetryPolicy& retry) const;

  /// Maybe corrupt `payload` in place; returns true if corruption fired.
  bool corrupt(std::size_t round, std::size_t client,
               std::vector<float>& payload) const;

  /// True when `client` is a member of the Byzantine cohort (stable across
  /// rounds by construction).
  bool is_byzantine(std::size_t client) const;

  /// Apply the configured adversarial behaviour to `payload` in place (a
  /// Byzantine client attacks every round it participates). `reference` is
  /// the vector the honest client would have diverged from (the global
  /// weights, positionally aligned with the payload); null treats the
  /// reference as the origin, i.e. the payload is already a delta. Returns
  /// true when the attack fired.
  bool attack(std::size_t round, std::size_t client,
              std::vector<float>& payload,
              const std::vector<float>* reference = nullptr) const;

 private:
  FaultConfig config_;
  bool enabled_ = false;
};

// --- storage faults -------------------------------------------------------

/// Deterministic storage-fault injection for the durable checkpoint store
/// (DESIGN.md §13). Every decision is keyed on (seed, write sequence
/// number) through the same splitmix64 mixing as the client fault streams,
/// so a chaos run's disk damage is replayable byte for byte.
struct StorageFaultConfig {
  /// Per-write probability the write is torn: the file is silently
  /// truncated at a drawn byte offset (the crash-between-write-and-sync
  /// model — the caller sees success, the bytes are short).
  double torn_write_rate = 0.0;
  /// Per-write probability one drawn bit of the written file is flipped
  /// (latent media corruption — again reported as success).
  double corrupt_rate = 0.0;
  /// Per-write probability the device fills mid-write: a prefix lands on
  /// disk and the write FAILS with a typed CheckpointError (the simulated
  /// ENOSPC / short-write path — the only loud failure mode).
  double io_error_rate = 0.0;
  std::uint64_t seed = 0x510FA17ULL;

  bool any() const {
    return torn_write_rate > 0.0 || corrupt_rate > 0.0 || io_error_rate > 0.0;
  }
};

/// StoreIo decorator injecting StorageFaultConfig's failure modes into
/// write_file; every other operation passes through untouched. Reads are
/// deliberately clean: damage is injected once, at write time, and then
/// *persists* — exactly like a real torn write — so the recovery ladder
/// sees the same corrupt bytes on every attempt.
class FaultyStoreIo : public store::StoreIo {
 public:
  /// `inner` null = the real filesystem. Borrowed; must outlive this.
  explicit FaultyStoreIo(StorageFaultConfig config,
                         store::StoreIo* inner = nullptr);

  void write_file(const std::string& path, const std::string& bytes) override;
  std::string read_file(const std::string& path) override;
  void rename_file(const std::string& from, const std::string& to) override;
  void remove_file(const std::string& path) override;
  bool exists(const std::string& path) override;
  void create_directories(const std::string& dir) override;
  std::vector<std::string> list_dir(const std::string& dir) override;

  std::size_t writes() const { return writes_; }
  std::size_t torn_writes() const { return torn_; }
  std::size_t corrupted_writes() const { return corrupted_; }
  std::size_t io_errors() const { return io_errors_; }

 private:
  StorageFaultConfig config_;
  store::StoreIo* inner_;
  std::size_t writes_ = 0;  // injection key: write sequence number
  std::size_t torn_ = 0;
  std::size_t corrupted_ = 0;
  std::size_t io_errors_ = 0;
};

/// Per-round participation and failure statistics (merged into RoundRecord
/// by the runner and totalled in RunResult).
struct RoundStats {
  std::size_t selected = 0;     // sampled by the runner
  std::size_t dropped = 0;      // unavailable at round start
  std::size_t stragglers = 0;   // past-deadline participants
  std::size_t delivered = 0;    // uplinks that reached the server
  std::size_t accepted = 0;     // updates that entered aggregation
  std::size_t rejected_non_finite = 0;
  std::size_t rejected_norm = 0;
  std::size_t rejected_lost = 0;
  std::size_t rejected_deadline = 0;
  std::size_t retransmissions = 0;  // extra transmission attempts

  // --- semi-asynchronous buffering (zeros when async is off) -------------
  /// Straggler updates parked this round for a later commit.
  std::size_t parked = 0;
  /// Buffered updates from earlier rounds that committed this round.
  std::size_t late_commits = 0;
  /// Buffer occupancy after this round's parks and commits.
  std::size_t buffer_depth = 0;
  /// Older parked updates superseded by a newer park from the same client
  /// (latest-wins dedup; parked == late_commits + occupancy + this).
  std::size_t dedup_dropped = 0;

  // --- elastic membership (zeros when churn is off) ----------------------
  std::size_t joined = 0;    // never-joined clients that enrolled this round
  std::size_t left = 0;      // enrolled clients that departed this round
  std::size_t returned = 0;  // departed clients that re-enrolled this round
  std::size_t enrolled = 0;  // population size after this round's events
  /// Returning clients whose first accepted uplink was staleness-discounted.
  std::size_t returning_discounted = 0;

  // --- admission control (zeros when no budget is configured) ------------
  /// Active clients shed by the per-round admission budget (no uplink, no
  /// bytes, not re-queued).
  std::size_t shed = 0;
  /// Active clients deferred by the budget into the next round's cohort.
  std::size_t admission_deferred = 0;

  // --- retry discipline --------------------------------------------------
  /// Total virtual-time backoff waited across this round's retries.
  double backoff_wait = 0.0;
  /// Clients whose uplink was abandoned after exhausting the retry budget
  /// (same clients as rejected_lost, by id, for per-client give-up totals).
  std::vector<std::size_t> giveups;

  /// True when the round was skipped (admission or post-validation quorum).
  bool skipped = false;
  /// Which quorum gate skipped it (kNone when !skipped).
  SkipReason skip_reason = SkipReason::kNone;
  /// True when the round aggregated under an escalated robust rule
  /// (EscalationTracker tripped in an earlier round).
  bool escalated = false;
  /// True when the divergence guard rolled the round back and re-aggregated
  /// with the fallback robust rule.
  bool rolled_back = false;

  // --- adversary attribution -------------------------------------------
  /// Clients whose delivered payloads were adversarially crafted this round
  /// (ground truth from the fault model, for attack/defense evaluation).
  std::vector<std::size_t> attackers;
  /// Clients the robust aggregator excluded wholesale (Krum non-selection).
  std::vector<std::size_t> suspects;
  /// Updates the aggregator neutralized without excluding (norm clips).
  std::size_t clipped = 0;
  /// Clients whose updates were rejected by validation (by id, parallel to
  /// the rejected_* counters; feeds the fault-aware sampling EMA).
  std::vector<std::size_t> rejected_clients;

  std::size_t rejected_total() const {
    return rejected_non_finite + rejected_norm + rejected_lost +
           rejected_deadline;
  }
  void add(RejectReason reason);
};

}  // namespace spatl::fl
