#include "fl/flat_utils.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace spatl::fl {

data::GradHook make_proximal_hook(std::vector<float> anchor, double mu) {
  return [anchor = std::move(anchor),
          mu = float(mu)](const std::vector<nn::ParamView>& views) {
    std::size_t offset = 0;
    for (const auto& v : views) {
      const std::size_t n = v.value->numel();
      if (offset + n > anchor.size()) {
        throw std::logic_error("proximal hook: anchor shorter than views");
      }
      float* g = v.grad->data();
      const float* w = v.value->data();
      for (std::size_t i = 0; i < n; ++i) {
        g[i] += mu * (w[i] - anchor[offset + i]);
      }
      offset += n;
    }
  };
}

data::GradHook make_correction_hook(std::vector<float> correction) {
  return [correction =
              std::move(correction)](const std::vector<nn::ParamView>& views) {
    std::size_t offset = 0;
    for (const auto& v : views) {
      const std::size_t n = v.value->numel();
      if (offset + n > correction.size()) {
        throw std::logic_error("correction hook: vector shorter than views");
      }
      float* g = v.grad->data();
      for (std::size_t i = 0; i < n; ++i) g[i] += correction[offset + i];
      offset += n;
    }
  };
}

void axpy(std::vector<float>& a, const std::vector<float>& b, float scale) {
  if (a.size() != b.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += scale * b[i];
}

bool is_finite(const std::vector<float>& v) {
  for (const float x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

double l2_norm(const std::vector<float>& v) {
  double sum = 0.0;
  for (const float x : v) sum += double(x) * double(x);
  return std::sqrt(sum);
}

std::vector<float> flatten_bn_stats(const models::SplitModel& model) {
  std::vector<float> flat;
  for (const auto* bn : model.batch_norms()) {
    auto* mutable_bn = const_cast<nn::BatchNorm2d*>(bn);
    const auto m = mutable_bn->running_mean().span();
    const auto v = mutable_bn->running_var().span();
    flat.insert(flat.end(), m.begin(), m.end());
    flat.insert(flat.end(), v.begin(), v.end());
  }
  return flat;
}

void unflatten_bn_stats(const std::vector<float>& flat,
                        models::SplitModel& model) {
  std::size_t offset = 0;
  for (auto* bn : model.batch_norms()) {
    const std::size_t n = bn->running_mean().numel();
    if (offset + 2 * n > flat.size()) {
      throw std::invalid_argument("unflatten_bn_stats: size mismatch");
    }
    std::memcpy(bn->running_mean().data(), flat.data() + offset,
                n * sizeof(float));
    std::memcpy(bn->running_var().data(), flat.data() + offset + n,
                n * sizeof(float));
    offset += 2 * n;
  }
  if (offset != flat.size()) {
    throw std::invalid_argument("unflatten_bn_stats: trailing data");
  }
}

}  // namespace spatl::fl
