// Flat-vector helpers shared by the FL algorithms.
//
// Every algorithm treats the model as one contiguous float vector (the
// flatten order of ParamViews). Gradient hooks mutate gradients positionally
// against anchors / control variates in the same order.
#pragma once

#include <vector>

#include "data/train.hpp"
#include "models/split_model.hpp"

namespace spatl::fl {

/// g += mu * (w - anchor): FedProx's proximal gradient term. `anchor` must
/// match the flatten order/size of the hooked views.
data::GradHook make_proximal_hook(std::vector<float> anchor, double mu);

/// g += correction (positionally): SCAFFOLD / SPATL's control-variate
/// correction c - c_i.
data::GradHook make_correction_hook(std::vector<float> correction);

/// a += scale * b elementwise (sizes must match).
void axpy(std::vector<float>& a, const std::vector<float>& b, float scale);

/// True iff every element is finite (no NaN/Inf). Empty vectors are finite.
bool is_finite(const std::vector<float>& v);

/// Euclidean norm, accumulated in double. Empty vectors have norm 0.
double l2_norm(const std::vector<float>& v);

/// Flatten/restore batch-norm running statistics (mean then var, layer
/// order). These are buffers, not parameters — baselines average them
/// alongside weights; SPATL keeps them local.
std::vector<float> flatten_bn_stats(const models::SplitModel& model);
void unflatten_bn_stats(const std::vector<float>& flat,
                        models::SplitModel& model);

}  // namespace spatl::fl
