#include "fl/local_only.hpp"

#include "data/loader.hpp"

namespace spatl::fl {

LocalOnly::LocalOnly(FlEnvironment& env, FlConfig config)
    : FederatedAlgorithm(env, std::move(config)) {
  clients_.resize(env_.num_clients());
}

models::SplitModel& LocalOnly::client_model(std::size_t i) {
  auto& slot = clients_.at(i);
  if (!slot) {
    common::Rng init_rng(config_.seed ^ (0x10CA1ULL * (i + 1)));
    slot = std::make_unique<models::SplitModel>(
        models::build_model(config_.model, init_rng));
  }
  return *slot;
}

void LocalOnly::run_round(const std::vector<std::size_t>& selected) {
  for (const std::size_t i : selected) {
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)));
    auto& model = client_model(i);
    data::train_supervised(model, env_.client(i).train, config_.local,
                           client_rng, model.all_params());
    // No ledger activity: nothing is communicated, by definition.
  }
}

EvalSummary LocalOnly::evaluate_clients() {
  EvalSummary summary;
  for (std::size_t i = 0; i < env_.num_clients(); ++i) {
    const auto r = data::evaluate(client_model(i), env_.client(i).val);
    summary.avg_accuracy += r.accuracy;
    summary.avg_loss += r.loss;
  }
  const double n = double(env_.num_clients());
  summary.avg_accuracy /= n;
  summary.avg_loss /= n;
  return summary;
}

std::vector<double> LocalOnly::per_client_accuracy() {
  std::vector<double> acc(env_.num_clients());
  for (std::size_t i = 0; i < env_.num_clients(); ++i) {
    acc[i] = data::evaluate(client_model(i), env_.client(i).val).accuracy;
  }
  return acc;
}

}  // namespace spatl::fl
