// Local-only baseline: every client trains its own model and nothing is
// ever communicated. The standard lower/upper reference in personalized-FL
// evaluations — under strong non-IID skew it is surprisingly competitive on
// local validation sets (each client overfits its own distribution), which
// is exactly the effect SPATL's private predictors exploit while still
// sharing a global encoder.
#pragma once

#include <vector>

#include "fl/algorithm.hpp"

namespace spatl::fl {

class LocalOnly : public FederatedAlgorithm {
 public:
  LocalOnly(FlEnvironment& env, FlConfig config);

  std::string name() const override { return "local-only"; }
  void run_round(const std::vector<std::size_t>& selected) override;

  /// Heterogeneous deployment: evaluation uses each client's own model.
  EvalSummary evaluate_clients() override;
  std::vector<double> per_client_accuracy() override;

 private:
  models::SplitModel& client_model(std::size_t i);
  std::vector<std::unique_ptr<models::SplitModel>> clients_;
};

}  // namespace spatl::fl
