#include "fl/robust.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/check.hpp"
#include "fl/fault.hpp"
#include "fl/flat_utils.hpp"

namespace spatl::fl {

namespace {

bool owns(const RobustUpdate& u, std::size_t j) {
  return u.mask == nullptr || (*u.mask)[j] != 0;
}

/// Iterate the coordinates of a (possibly masked) update: calls
/// fn(coordinate, value) for every transmitted coordinate. Masked values are
/// compacted, so the cursor advances only over owned coordinates.
template <typename Fn>
void for_each_coord(const RobustUpdate& u, std::size_t dim, Fn&& fn) {
  if (u.mask == nullptr) {
    for (std::size_t j = 0; j < dim; ++j) fn(j, (*u.values)[j]);
    return;
  }
  std::size_t p = 0;
  for (std::size_t j = 0; j < dim; ++j) {
    if ((*u.mask)[j]) fn(j, (*u.values)[p++]);
  }
}

/// Value of coordinate j given the compacted cursor position p (the caller
/// maintains per-update cursors when walking coordinates in order).
struct Cursor {
  std::size_t p = 0;
};

void init_outcome(AggregateOutcome& out, std::size_t dim) {
  out.value.assign(dim, 0.0f);
  out.defined.assign(dim, 0);
}

/// Structural invariants of an update batch (debug builds only): every
/// update carries a payload; dense payloads are exactly `dim` floats;
/// masked payloads carry one float per owned coordinate. A violation here
/// means a caller compacted or flattened inconsistently — the estimators
/// below would silently misalign coordinates.
void dcheck_updates(const std::vector<RobustUpdate>& updates,
                    std::size_t dim) {
#if defined(SPATL_DEBUG_CHECKS)
  for (const auto& u : updates) {
    SPATL_DCHECK(u.values != nullptr);
    SPATL_DCHECK(std::isfinite(u.weight) && u.weight >= 0.0);
    if (u.mask == nullptr) {
      SPATL_DCHECK(u.values->size() == dim);
    } else {
      SPATL_DCHECK(u.mask->size() == dim);
      std::size_t owned = 0;
      for (std::size_t j = 0; j < dim; ++j) owned += (*u.mask)[j] != 0;
      SPATL_DCHECK(u.values->size() == owned);
    }
  }
#else
  (void)updates;
  (void)dim;
#endif
}

/// Weighted mean over a subset of the updates (all when `subset` is empty).
/// Per-coordinate weight renormalization over the clients owning that
/// coordinate; dense inputs with pre-normalized weights reduce to the
/// classic axpy loop.
AggregateOutcome weighted_mean(const std::vector<RobustUpdate>& updates,
                               std::size_t dim) {
  dcheck_updates(updates, dim);
  AggregateOutcome out;
  init_outcome(out, dim);
  std::vector<double> sum(dim, 0.0);
  std::vector<double> wsum(dim, 0.0);
  for (const auto& u : updates) {
    for_each_coord(u, dim, [&](std::size_t j, float v) {
      sum[j] += u.weight * double(v);
      wsum[j] += u.weight;
    });
  }
  for (std::size_t j = 0; j < dim; ++j) {
    if (wsum[j] <= 0.0) continue;
    out.value[j] = float(sum[j] / wsum[j]);
    out.defined[j] = 1;
  }
  return out;
}

class WeightedMeanAggregator : public RobustAggregator {
 public:
  AggregatorKind kind() const override { return AggregatorKind::kWeightedMean; }
  AggregateOutcome aggregate(const std::vector<RobustUpdate>& updates,
                             std::size_t dim,
                             const std::vector<float>*) const override {
    return weighted_mean(updates, dim);
  }
};

class CoordinateMedianAggregator : public RobustAggregator {
 public:
  AggregatorKind kind() const override {
    return AggregatorKind::kCoordinateMedian;
  }
  AggregateOutcome aggregate(const std::vector<RobustUpdate>& updates,
                             std::size_t dim,
                             const std::vector<float>*) const override {
    dcheck_updates(updates, dim);
    AggregateOutcome out;
    init_outcome(out, dim);
    std::vector<Cursor> cur(updates.size());
    std::vector<float> col;
    col.reserve(updates.size());
    for (std::size_t j = 0; j < dim; ++j) {
      col.clear();
      for (std::size_t s = 0; s < updates.size(); ++s) {
        const auto& u = updates[s];
        if (!owns(u, j)) continue;
        col.push_back((*u.values)[u.mask ? cur[s].p++ : j]);
      }
      if (col.empty()) continue;
      const std::size_t mid = col.size() / 2;
      std::nth_element(col.begin(), col.begin() + std::ptrdiff_t(mid),
                       col.end());
      float med = col[mid];
      if (col.size() % 2 == 0) {
        // Even count: average the two middle order statistics.
        const float lo =
            *std::max_element(col.begin(), col.begin() + std::ptrdiff_t(mid));
        med = 0.5f * (lo + med);
      }
      out.value[j] = med;
      out.defined[j] = 1;
    }
    return out;
  }
};

class TrimmedMeanAggregator : public RobustAggregator {
 public:
  explicit TrimmedMeanAggregator(double trim) : trim_(trim) {}
  AggregatorKind kind() const override { return AggregatorKind::kTrimmedMean; }
  AggregateOutcome aggregate(const std::vector<RobustUpdate>& updates,
                             std::size_t dim,
                             const std::vector<float>*) const override {
    dcheck_updates(updates, dim);
    AggregateOutcome out;
    init_outcome(out, dim);
    std::vector<Cursor> cur(updates.size());
    std::vector<std::pair<float, double>> col;  // (value, weight)
    col.reserve(updates.size());
    for (std::size_t j = 0; j < dim; ++j) {
      col.clear();
      for (std::size_t s = 0; s < updates.size(); ++s) {
        const auto& u = updates[s];
        if (!owns(u, j)) continue;
        col.emplace_back((*u.values)[u.mask ? cur[s].p++ : j], u.weight);
      }
      if (col.empty()) continue;
      std::sort(col.begin(), col.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      // Drop floor(trim * n) order statistics from each end; if trimming
      // would drop everything, keep the middle element (median-like).
      std::size_t cut = std::size_t(trim_ * double(col.size()));
      if (2 * cut >= col.size()) cut = (col.size() - 1) / 2;
      double sum = 0.0, wsum = 0.0;
      for (std::size_t s = cut; s < col.size() - cut; ++s) {
        sum += col[s].second * double(col[s].first);
        wsum += col[s].second;
      }
      if (wsum <= 0.0) continue;
      out.value[j] = float(sum / wsum);
      out.defined[j] = 1;
    }
    return out;
  }

 private:
  double trim_;
};

class KrumAggregator : public RobustAggregator {
 public:
  KrumAggregator(std::size_t f, std::size_t m)
      : f_(f), m_(std::max<std::size_t>(1, m)) {}
  AggregatorKind kind() const override { return AggregatorKind::kKrum; }
  AggregateOutcome aggregate(const std::vector<RobustUpdate>& updates,
                             std::size_t dim,
                             const std::vector<float>*) const override {
    dcheck_updates(updates, dim);
    const std::size_t n = updates.size();
    if (n == 0) {
      AggregateOutcome out;
      init_outcome(out, dim);
      return out;
    }
    // Pairwise squared distances; masked pairs use the mean squared
    // difference over their shared coordinates scaled back to dim, so a
    // sparse attacker cannot shrink its distances by uploading fewer
    // coordinates. Pairs with no shared coordinates are maximally far.
    std::vector<std::vector<double>> d2(n, std::vector<double>(n, 0.0));
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        d2[a][b] = d2[b][a] = pair_distance(updates[a], updates[b], dim);
      }
    }
    // Krum score: sum of the n - f - 2 smallest distances to other clients
    // (at least 1 neighbour).
    const std::size_t neighbours =
        std::max<std::size_t>(1, n > f_ + 2 ? n - f_ - 2 : 1);
    std::vector<std::pair<double, std::size_t>> scored(n);
    std::vector<double> row;
    for (std::size_t a = 0; a < n; ++a) {
      row.clear();
      for (std::size_t b = 0; b < n; ++b) {
        if (b != a) row.push_back(d2[a][b]);
      }
      std::sort(row.begin(), row.end());
      double score = 0.0;
      for (std::size_t k = 0; k < std::min(neighbours, row.size()); ++k) {
        score += row[k];
      }
      scored[a] = {score, a};
    }
    std::sort(scored.begin(), scored.end());
    const std::size_t keep = std::min(m_, n);

    std::vector<RobustUpdate> selected;
    selected.reserve(keep);
    std::vector<std::uint8_t> kept(n, 0);
    for (std::size_t k = 0; k < keep; ++k) {
      selected.push_back(updates[scored[k].second]);
      kept[scored[k].second] = 1;
    }
    AggregateOutcome out = weighted_mean(selected, dim);
    for (std::size_t a = 0; a < n; ++a) {
      if (!kept[a]) out.excluded.push_back(updates[a].client);
    }
    return out;
  }

 private:
  static double pair_distance(const RobustUpdate& a, const RobustUpdate& b,
                              std::size_t dim) {
    if (a.mask == nullptr && b.mask == nullptr) {
      double sum = 0.0;
      for (std::size_t j = 0; j < dim; ++j) {
        const double diff = double((*a.values)[j]) - double((*b.values)[j]);
        sum += diff * diff;
      }
      return sum;
    }
    double sum = 0.0;
    std::size_t shared = 0, pa = 0, pb = 0;
    for (std::size_t j = 0; j < dim; ++j) {
      const bool in_a = owns(a, j), in_b = owns(b, j);
      if (in_a && in_b) {
        const double diff = double((*a.values)[a.mask ? pa : j]) -
                            double((*b.values)[b.mask ? pb : j]);
        sum += diff * diff;
        ++shared;
      }
      if (in_a && a.mask) ++pa;
      if (in_b && b.mask) ++pb;
    }
    if (shared == 0) return std::numeric_limits<double>::max();
    return sum * double(dim) / double(shared);
  }

  std::size_t f_;
  std::size_t m_;
};

class NormClippedMeanAggregator : public RobustAggregator {
 public:
  explicit NormClippedMeanAggregator(double clip) : clip_(clip) {}
  AggregatorKind kind() const override {
    return AggregatorKind::kNormClippedMean;
  }
  AggregateOutcome aggregate(const std::vector<RobustUpdate>& updates,
                             std::size_t dim,
                             const std::vector<float>* reference)
      const override {
    dcheck_updates(updates, dim);
    SPATL_DCHECK(reference == nullptr || reference->size() == dim);
    // Norm of each update's deviation from the reference (origin when no
    // reference is given), over the coordinates it transmitted.
    std::vector<double> norms(updates.size(), 0.0);
    for (std::size_t s = 0; s < updates.size(); ++s) {
      double sum = 0.0;
      for_each_coord(updates[s], dim, [&](std::size_t j, float v) {
        const double diff =
            double(v) - (reference ? double((*reference)[j]) : 0.0);
        sum += diff * diff;
      });
      norms[s] = std::sqrt(sum);
    }
    // Auto threshold: the median update norm. A majority of honest clients
    // pins the clip level no matter how hard the attackers boost.
    double clip = clip_;
    if (clip <= 0.0) {
      std::vector<double> sorted = norms;
      std::nth_element(sorted.begin(),
                       sorted.begin() + std::ptrdiff_t(sorted.size() / 2),
                       sorted.end());
      clip = sorted.empty() ? 0.0 : sorted[sorted.size() / 2];
    }

    AggregateOutcome out;
    std::vector<std::vector<float>> clipped_values;
    std::vector<RobustUpdate> clipped = updates;
    clipped_values.reserve(updates.size());
    for (std::size_t s = 0; s < updates.size(); ++s) {
      if (clip <= 0.0 || norms[s] <= clip || !std::isfinite(norms[s])) {
        // Non-finite norms are left to update validation upstream.
        continue;
      }
      const double scale = clip / norms[s];
      std::vector<float> v = *updates[s].values;
      if (reference != nullptr) {
        std::size_t p = 0;
        for_each_coord(updates[s], dim, [&](std::size_t j, float val) {
          v[p++] = float(double((*reference)[j]) +
                         scale * (double(val) - double((*reference)[j])));
        });
      } else {
        for (auto& x : v) x = float(double(x) * scale);
      }
      clipped_values.push_back(std::move(v));
      clipped[s].values = &clipped_values.back();
      ++out.clipped;
    }
    AggregateOutcome mean = weighted_mean(clipped, dim);
    mean.clipped = out.clipped;
    return mean;
  }

 private:
  double clip_;
};

}  // namespace

const char* aggregator_kind_name(AggregatorKind kind) {
  switch (kind) {
    case AggregatorKind::kWeightedMean: return "mean";
    case AggregatorKind::kCoordinateMedian: return "median";
    case AggregatorKind::kTrimmedMean: return "trimmed";
    case AggregatorKind::kKrum: return "krum";
    case AggregatorKind::kNormClippedMean: return "clipped";
  }
  return "unknown";
}

AggregatorKind parse_aggregator_kind(const std::string& name) {
  if (name == "mean") return AggregatorKind::kWeightedMean;
  if (name == "median") return AggregatorKind::kCoordinateMedian;
  if (name == "trimmed") return AggregatorKind::kTrimmedMean;
  if (name == "krum") return AggregatorKind::kKrum;
  if (name == "clipped") return AggregatorKind::kNormClippedMean;
  throw std::invalid_argument("unknown aggregator '" + name +
                              "' (mean|median|trimmed|krum|clipped)");
}

std::unique_ptr<RobustAggregator> make_robust_aggregator(
    const ResilienceConfig& config) {
  switch (config.aggregator) {
    case AggregatorKind::kWeightedMean:
      return std::make_unique<WeightedMeanAggregator>();
    case AggregatorKind::kCoordinateMedian:
      return std::make_unique<CoordinateMedianAggregator>();
    case AggregatorKind::kTrimmedMean:
      return std::make_unique<TrimmedMeanAggregator>(config.trim_fraction);
    case AggregatorKind::kKrum:
      return std::make_unique<KrumAggregator>(config.krum_f,
                                              config.multi_krum);
    case AggregatorKind::kNormClippedMean:
      return std::make_unique<NormClippedMeanAggregator>(config.clip_norm);
  }
  throw std::logic_error("make_robust_aggregator: bad kind");
}

}  // namespace spatl::fl
