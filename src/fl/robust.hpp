// Byzantine-robust aggregation over client updates.
//
// PR 1's validation hook only rejects updates that are non-finite or
// norm-unbounded; a single adversarial client that stays inside those bounds
// can still steer the global model. This layer replaces the aggregation
// *estimator* itself: instead of the weighted mean (breakdown point 0), the
// server can combine client vectors with a coordinate-wise median, an
// α-trimmed mean, Krum / multi-Krum selection, or a norm-clipped mean — all
// with breakdown points that tolerate f < n/2 (median/trim) or f < (n-2)/2
// (Krum) adversaries.
//
// Masked payloads (SPATL's salient uploads) are first-class: every statistic
// is computed per coordinate over the clients that actually transmitted that
// coordinate, and Krum distances are averaged over the coordinates a pair of
// clients has in common. The weighted-mean implementation reproduces the
// classic FedAvg estimate; the algorithms keep their original fused loops on
// that default path so the zero-attack configuration stays bit-identical to
// the undefended code.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spatl::fl {

struct ResilienceConfig;  // fault.hpp

enum class AggregatorKind {
  kWeightedMean,      // classic FedAvg estimate (current behaviour)
  kCoordinateMedian,  // per-coordinate median over contributing clients
  kTrimmedMean,       // per-coordinate α-trimmed weighted mean
  kKrum,              // Krum / multi-Krum selection by pairwise distances
  kNormClippedMean,   // weighted mean of norm-clipped updates
};

const char* aggregator_kind_name(AggregatorKind kind);
/// Parse "mean|median|trimmed|krum|clipped". Throws std::invalid_argument.
AggregatorKind parse_aggregator_kind(const std::string& name);

/// One client's contribution to a robust aggregation.
struct RobustUpdate {
  std::size_t client = 0;
  /// Relative aggregation weight (sample count x staleness scale for the
  /// baselines); normalized per coordinate over the contributing clients.
  double weight = 1.0;
  /// Dense vector of size dim when `mask` is null; otherwise the compacted
  /// values of the coordinates where mask[j] != 0, in ascending j.
  const std::vector<float>* values = nullptr;
  /// Optional 0/1 ownership mask of size dim (SPATL salient uploads).
  const std::vector<std::uint8_t>* mask = nullptr;
};

struct AggregateOutcome {
  /// Robust center estimate, size dim. Coordinates no client transmitted
  /// are left at 0 and flagged off in `defined`.
  std::vector<float> value;
  /// 1 where at least one (selected) client contributed the coordinate.
  std::vector<std::uint8_t> defined;
  /// Clients whose updates were excluded wholesale (Krum non-selection).
  /// Coordinate-wise estimators exclude per coordinate and leave this empty.
  std::vector<std::size_t> excluded;
  /// Updates whose norm was clipped down (kNormClippedMean only).
  std::size_t clipped = 0;
};

/// Stateless robust combination rule. `aggregate` estimates the center of
/// the client vectors in whatever space the caller works in (absolute
/// weights for FedAvg/FedProx, update deltas for FedNova/SCAFFOLD/SPATL).
/// `reference` (optional) anchors norm computations for kNormClippedMean;
/// when null, norms are taken about the origin.
class RobustAggregator {
 public:
  virtual ~RobustAggregator() = default;
  virtual AggregatorKind kind() const = 0;
  const char* name() const { return aggregator_kind_name(kind()); }

  virtual AggregateOutcome aggregate(
      const std::vector<RobustUpdate>& updates, std::size_t dim,
      const std::vector<float>* reference = nullptr) const = 0;
};

/// Build the aggregator selected by `config.aggregator` (trim fraction,
/// Krum f/m, and clip norm are read from the same config).
std::unique_ptr<RobustAggregator> make_robust_aggregator(
    const ResilienceConfig& config);

}  // namespace spatl::fl
