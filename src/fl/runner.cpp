#include "fl/runner.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace spatl::fl {

namespace {

void accumulate(RunResult& result, const RoundStats& stats) {
  result.total_selected += stats.selected;
  result.total_dropped += stats.dropped;
  result.total_stragglers += stats.stragglers;
  result.total_accepted += stats.accepted;
  result.total_rejected += stats.rejected_total();
  result.total_retransmissions += stats.retransmissions;
  if (stats.skipped) ++result.rounds_skipped;
}

}  // namespace

RunResult run_federated(FederatedAlgorithm& algo, const RunOptions& opts,
                        const RoundCallback& callback) {
  RunResult result;
  common::Rng sampler(opts.sampling_seed);
  const std::size_t num_clients = algo.environment().num_clients();
  // Guard the participant count: clamp the ratio into [0, 1] and the count
  // into [1, num_clients] so no ratio can ever select zero clients.
  const double ratio = std::clamp(opts.sample_ratio, 0.0, 1.0);
  const std::size_t per_round = std::clamp<std::size_t>(
      std::size_t(std::ceil(ratio * double(num_clients))), 1, num_clients);

  std::optional<FaultModel> faults;
  if (opts.faults) faults.emplace(*opts.faults);
  const bool defended = opts.faults.has_value() || opts.resilience.has_value();
  const ResilienceConfig resilience =
      opts.resilience ? *opts.resilience : ResilienceConfig{};
  const std::size_t quorum = std::max<std::size_t>(1, resilience.min_quorum);
  if (defended) {
    algo.set_fault_injection(faults ? &*faults : nullptr, resilience);
  }

  for (std::size_t round = 1; round <= opts.rounds; ++round) {
    const auto selected =
        sampler.sample_without_replacement(num_clients, per_round);

    // Admission: drop clients unavailable this round, flag stragglers.
    RoundStats admission;
    admission.selected = selected.size();
    std::vector<std::size_t> active;
    if (faults && faults->enabled()) {
      active.reserve(selected.size());
      for (const std::size_t i : selected) {
        const ClientFault f = faults->assess(round, i);
        if (f.fate == ClientFate::kUnavailable) {
          ++admission.dropped;
          continue;
        }
        if (f.fate == ClientFate::kStraggler) ++admission.stragglers;
        active.push_back(i);
      }
    } else {
      active = selected;
    }

    RoundStats stats = admission;
    if (active.size() < quorum) {
      // Not enough live participants to even start: skip the round and
      // leave the global model untouched.
      stats.skipped = true;
      common::log_debug(algo.name(), " round ", round,
                        " skipped below quorum (", active.size(), "/",
                        quorum, ")");
    } else {
      if (defended) algo.begin_round(round, admission);
      algo.run_round(active);
      if (defended) stats = algo.round_stats();
    }
    accumulate(result, stats);

    if (round % opts.eval_every == 0 || round == opts.rounds) {
      const EvalSummary eval = algo.evaluate_clients();
      RoundRecord rec;
      rec.round = round;
      rec.avg_accuracy = eval.avg_accuracy;
      rec.avg_loss = eval.avg_loss;
      rec.cumulative_bytes = algo.ledger().total_bytes();
      rec.stats = stats;
      result.history.push_back(rec);
      result.final_accuracy = eval.avg_accuracy;
      result.best_accuracy = std::max(result.best_accuracy,
                                      eval.avg_accuracy);
      if (callback) callback(round, rec);
      common::log_debug(algo.name(), " round ", round, " acc ",
                        eval.avg_accuracy);
      if (opts.target_accuracy && !result.rounds_to_target &&
          eval.avg_accuracy >= *opts.target_accuracy) {
        result.rounds_to_target = round;
        break;
      }
    }
  }
  result.total_bytes = algo.ledger().total_bytes();
  result.retransmitted_bytes = algo.ledger().retransmitted_bytes();
  if (defended) algo.clear_fault_injection();
  return result;
}

}  // namespace spatl::fl
