#include "fl/runner.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace spatl::fl {

RunResult run_federated(FederatedAlgorithm& algo, const RunOptions& opts,
                        const RoundCallback& callback) {
  RunResult result;
  common::Rng sampler(opts.sampling_seed);
  const std::size_t num_clients = algo.environment().num_clients();
  const std::size_t per_round = std::max<std::size_t>(
      1, std::size_t(std::ceil(opts.sample_ratio * double(num_clients))));

  for (std::size_t round = 1; round <= opts.rounds; ++round) {
    const auto selected =
        sampler.sample_without_replacement(num_clients, per_round);
    algo.run_round(selected);

    if (round % opts.eval_every == 0 || round == opts.rounds) {
      const EvalSummary eval = algo.evaluate_clients();
      RoundRecord rec;
      rec.round = round;
      rec.avg_accuracy = eval.avg_accuracy;
      rec.avg_loss = eval.avg_loss;
      rec.cumulative_bytes = algo.ledger().total_bytes();
      result.history.push_back(rec);
      result.final_accuracy = eval.avg_accuracy;
      result.best_accuracy = std::max(result.best_accuracy,
                                      eval.avg_accuracy);
      if (callback) callback(round, rec);
      common::log_debug(algo.name(), " round ", round, " acc ",
                        eval.avg_accuracy);
      if (opts.target_accuracy && !result.rounds_to_target &&
          eval.avg_accuracy >= *opts.target_accuracy) {
        result.rounds_to_target = round;
        break;
      }
    }
  }
  result.total_bytes = algo.ledger().total_bytes();
  return result;
}

}  // namespace spatl::fl
