#include "fl/runner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/log.hpp"
#include "obs/alert.hpp"
#include "tensor/backend.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spatl::fl {

const char* admission_policy_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kShed: return "shed";
    case AdmissionPolicy::kDefer: return "defer";
  }
  return "unknown";
}

AdmissionPolicy parse_admission_policy(const std::string& name) {
  if (name == "shed") return AdmissionPolicy::kShed;
  if (name == "defer") return AdmissionPolicy::kDefer;
  throw std::invalid_argument("unknown admission policy '" + name +
                              "' (shed|defer)");
}

namespace {

std::string ids_array(const std::vector<std::size_t>& ids) {
  std::string out = "[";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ids[i]);
  }
  out += ']';
  return out;
}

void accumulate(RunResult& result, const RoundStats& stats) {
  result.total_selected += stats.selected;
  result.total_dropped += stats.dropped;
  result.total_stragglers += stats.stragglers;
  result.total_accepted += stats.accepted;
  result.total_rejected += stats.rejected_total();
  result.total_retransmissions += stats.retransmissions;
  result.total_attacked += stats.attackers.size();
  result.total_suspected += stats.suspects.size();
  result.total_parked += stats.parked;
  result.total_late_commits += stats.late_commits;
  result.total_dedup_dropped += stats.dedup_dropped;
  result.total_joined += stats.joined;
  result.total_left += stats.left;
  result.total_returned += stats.returned;
  result.total_returning_discounted += stats.returning_discounted;
  result.total_shed += stats.shed;
  result.total_deferred += stats.admission_deferred;
  result.total_backoff_wait += stats.backoff_wait;
  result.total_giveups += stats.giveups.size();
  for (const std::size_t c : stats.giveups) {
    if (c < result.client_giveups.size()) ++result.client_giveups[c];
  }
  if (stats.skipped) ++result.rounds_skipped;
  if (stats.rolled_back) ++result.rounds_rolled_back;
  if (stats.escalated) ++result.rounds_escalated;
}

/// Distribution bounds (ms) for the per-phase latency histograms exported
/// through MetricsRegistry alongside the per-round JSONL phase totals.
const std::vector<double>& phase_latency_bounds_ms() {
  static const std::vector<double> kBounds = {
      0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0,
      5000.0};
  return kBounds;
}

/// True for the round phases whose latency distribution is worth a
/// histogram (training, uplink simulation, aggregation, buffer drain).
bool histogram_phase(const std::string& name) {
  return name == "fl/train" || name == "fl/uplink" ||
         name == "fl/aggregate" || name == "fl/buffer";
}

bool contains(const std::vector<std::size_t>& v, std::size_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

/// Weighted sampling without replacement: `count` distinct indices drawn
/// proportionally to `weights` (already floored > 0). Output sorted so the
/// algorithms' per-client iteration order is stable.
std::vector<std::size_t> weighted_sample_without_replacement(
    common::Rng& rng, std::vector<double> weights, std::size_t count) {
  count = std::min(count, weights.size());
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    std::size_t pick = rng.categorical(weights);
    if (weights[pick] <= 0.0) {
      // Exact-zero uniform draw can land on an exhausted slot; take the
      // first live one instead of double-selecting.
      for (std::size_t i = 0; i < weights.size(); ++i) {
        if (weights[i] > 0.0) {
          pick = i;
          break;
        }
      }
    }
    out.push_back(pick);
    weights[pick] = 0.0;  // removed from the pool
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

RunResult run_federated(FederatedAlgorithm& algo, const RunOptions& opts,
                        const RoundCallback& callback) {
  RunResult result;
  // Pin the compute backend before any kernel runs: every GEMM in the round
  // loop (client training, evaluation, the divergence guard's probe pass)
  // must execute on one backend for the run to be bit-replayable.
  if (!opts.backend.empty()) {
    tensor::set_active_backend(tensor::parse_backend(opts.backend));
  }
  common::Rng sampler(opts.sampling_seed);
  const std::size_t num_clients = algo.environment().num_clients();
  result.client_giveups.assign(num_clients, 0);
  // Guard the participant count: clamp the ratio into [0, 1] and the count
  // into [1, num_clients] so no ratio can ever select zero clients.
  const double ratio = std::clamp(opts.sample_ratio, 0.0, 1.0);
  const std::size_t per_round = std::clamp<std::size_t>(
      std::size_t(std::ceil(ratio * double(num_clients))), 1, num_clients);

  std::optional<FaultModel> faults;
  if (opts.faults) faults.emplace(*opts.faults);
  const bool defended = opts.faults.has_value() || opts.resilience.has_value();
  const ResilienceConfig resilience =
      opts.resilience ? *opts.resilience : ResilienceConfig{};
  // The policy actually installed this round: starts at `resilience` and is
  // upgraded in place when the escalation tracker trips (downgraded again
  // by the opt-in quiet-streak de-escalation).
  ResilienceConfig current = resilience;
  const std::size_t quorum = std::max<std::size_t>(1, resilience.min_quorum);
  if (defended) {
    algo.set_fault_injection(faults ? &*faults : nullptr, current);
  }
  // Semi-async straggler commit: only live when the algorithm can park and
  // replay updates; everything else keeps the synchronous staleness policy.
  const bool async_on =
      opts.async.has_value() && opts.async->enabled && algo.supports_async();
  if (async_on) algo.set_async(*opts.async);
  EscalationTracker escalation(opts.escalation);
  const bool guard = opts.divergence_factor > 0.0;

  // Durable generational store: periodic checkpoints are additionally
  // committed as CRC-verified generations, and the failover drill recovers
  // through the ladder instead of trusting in-memory state.
  std::optional<store::CheckpointStore> store;
  if (opts.ckpt_store && opts.ckpt_store->enabled()) {
    store.emplace(*opts.ckpt_store, opts.store_io, opts.telemetry);
  }

  // Attack-aware Krum f auto-tuning: per-client count of rounds in which
  // the robust aggregator excluded the client. Repeat suspects (>= 2
  // rounds) estimate the live Byzantine population; one-off exclusions are
  // Krum's normal selection noise and are ignored.
  const bool krum_auto = opts.krum_auto_f && defended;
  std::vector<std::uint64_t> suspect_rounds(num_clients, 0);
  result.krum_f_estimate = resilience.krum_f;
  const auto retune_krum = [&]() {
    if (!krum_auto) return;
    std::size_t estimate = 0;
    for (const std::uint64_t r : suspect_rounds) {
      if (r >= 2) ++estimate;
    }
    // Krum needs n - f - 2 >= 1 scoring neighbours; clamp against the
    // nominal cohort so a noisy ledger can never wedge the aggregator.
    const std::size_t upper = per_round > 3 ? per_round - 3 : 0;
    const std::size_t f =
        std::max(resilience.krum_f, std::min(estimate, upper));
    result.krum_f_estimate = f;
    if (f != current.krum_f) {
      current.krum_f = f;
      algo.set_fault_injection(faults ? &*faults : nullptr, current);
      common::log_debug(algo.name(), " krum auto-tune: f -> ", f, " (",
                        estimate, " repeat suspect(s))");
    }
  };

  // Elastic membership: the engine materializes its deterministic trace up
  // front; the runner replays it round by round and samples from the
  // enrolled set only. At full enrollment the index map is the identity and
  // the sampling draws match the static-population path bit for bit.
  std::optional<ChurnEngine> churn;
  if (opts.churn) {
    churn.emplace(*opts.churn, opts.rounds, num_clients);
    // Off-switch contract: a config whose materialized trace is empty is
    // indistinguishable from no churn at all — same sampling path, same
    // telemetry bytes, same checkpoint entries.
    if (churn->trace().empty()) churn.reset();
  }
  if (churn) algo.set_churn(&*churn);
  const bool admission_on = opts.admission.limited();
  std::vector<std::size_t> defer_queue;  // budget-deferred clients

  // Per-client failure EMA for fault-aware sampling (satellite): dropped,
  // lost, or rejected uplinks raise it; clean rounds decay it.
  std::vector<double> fail_ema(num_clients, 0.0);
  const double ema_decay = std::clamp(opts.fault_ema_decay, 0.0, 1.0);

  double prev_loss = std::numeric_limits<double>::quiet_NaN();

  // Full-state snapshot after `round`: everything load-bearing for the
  // remaining rounds, so a resume (or an injected crash recovery) replays
  // the uninterrupted run bit for bit.
  const auto write_checkpoint = [&](std::size_t round) {
    RunCheckpoint ckpt;
    algo.save_state(ckpt);
    ckpt.entries.push_back(pack_u64s("run/round", {std::uint64_t(round)}));
    ckpt.entries.push_back(pack_rng("run/sampler_rng", sampler));
    const CommSnapshot lg = algo.ledger().snapshot();
    ckpt.entries.push_back(pack_doubles(
        "run/ledger", {lg.uplink, lg.downlink, lg.retransmitted}));
    ckpt.entries.push_back(pack_doubles("run/ema", fail_ema));
    ckpt.entries.push_back(pack_u64s(
        "run/totals",
        {std::uint64_t(result.total_selected),
         std::uint64_t(result.total_dropped),
         std::uint64_t(result.total_stragglers),
         std::uint64_t(result.total_accepted),
         std::uint64_t(result.total_rejected),
         std::uint64_t(result.total_retransmissions),
         std::uint64_t(result.rounds_skipped),
         std::uint64_t(result.total_attacked),
         std::uint64_t(result.total_suspected),
         std::uint64_t(result.rounds_rolled_back),
         std::uint64_t(result.total_parked),
         std::uint64_t(result.total_late_commits),
         std::uint64_t(result.rounds_escalated),
         std::uint64_t(result.total_dedup_dropped),
         std::uint64_t(result.total_joined),
         std::uint64_t(result.total_left),
         std::uint64_t(result.total_returned),
         std::uint64_t(result.total_returning_discounted),
         std::uint64_t(result.total_shed),
         std::uint64_t(result.total_deferred),
         std::uint64_t(result.total_giveups)}));
    ckpt.entries.push_back(
        pack_doubles("run/series", {result.best_accuracy,
                                    result.final_accuracy, prev_loss,
                                    result.total_backoff_wait}));
    ckpt.entries.push_back(pack_u64s(
        "run/escalation", {std::uint64_t(escalation.streak()),
                           std::uint64_t(escalation.active() ? 1 : 0),
                           std::uint64_t(escalation.quiet_streak())}));
    if (!defer_queue.empty()) {
      std::vector<std::uint64_t> q(defer_queue.begin(), defer_queue.end());
      ckpt.entries.push_back(pack_u64s("run/admission_carryover", q));
    }
    if (krum_auto) {
      ckpt.entries.push_back(pack_u64s("run/krum_ledger", suspect_rounds));
    }
    if (churn) churn->save(ckpt, "run/churn/");
    if (result.total_giveups > 0) {
      std::vector<std::uint64_t> g(result.client_giveups.begin(),
                                   result.client_giveups.end());
      ckpt.entries.push_back(pack_u64s("run/giveups", g));
    }
    return ckpt;
  };

  // Inverse of write_checkpoint: rebuild every piece of loop state from a
  // snapshot (shared by the resume path and the crash-recovery drill).
  // Returns the round the snapshot was taken after.
  const auto restore_checkpoint = [&](const RunCheckpoint& ckpt) {
    algo.load_state(ckpt);
    const std::size_t ckpt_round =
        std::size_t(unpack_u64s(ckpt.at("run/round"))[0]);
    unpack_rng(ckpt.at("run/sampler_rng"), sampler);
    const auto lg = unpack_doubles(ckpt.at("run/ledger"));
    algo.ledger().restore(lg[0], lg[1], lg[2]);
    const auto ema = unpack_doubles(ckpt.at("run/ema"));
    if (ema.size() == num_clients) fail_ema = ema;
    const auto totals = unpack_u64s(ckpt.at("run/totals"));
    // Older checkpoints carry shorter vectors (pre-async: 10, pre-churn:
    // 13); absent entries restore as zero.
    const auto tot = [&](std::size_t i) {
      return i < totals.size() ? std::size_t(totals[i]) : std::size_t(0);
    };
    result.total_selected = tot(0);
    result.total_dropped = tot(1);
    result.total_stragglers = tot(2);
    result.total_accepted = tot(3);
    result.total_rejected = tot(4);
    result.total_retransmissions = tot(5);
    result.rounds_skipped = tot(6);
    result.total_attacked = tot(7);
    result.total_suspected = tot(8);
    result.rounds_rolled_back = tot(9);
    result.total_parked = tot(10);
    result.total_late_commits = tot(11);
    result.rounds_escalated = tot(12);
    result.total_dedup_dropped = tot(13);
    result.total_joined = tot(14);
    result.total_left = tot(15);
    result.total_returned = tot(16);
    result.total_returning_discounted = tot(17);
    result.total_shed = tot(18);
    result.total_deferred = tot(19);
    result.total_giveups = tot(20);
    const auto series = unpack_doubles(ckpt.at("run/series"));
    result.best_accuracy = series[0];
    result.final_accuracy = series[1];
    prev_loss = series[2];
    result.total_backoff_wait = series.size() >= 4 ? series[3] : 0.0;
    if (const auto* esc = ckpt.find("run/escalation")) {
      const auto state = unpack_u64s(*esc);
      escalation.restore(std::size_t(state[0]), state[1] != 0,
                         state.size() >= 3 ? std::size_t(state[2]) : 0);
    } else {
      escalation.restore(0, false, 0);
    }
    // Re-arm the aggregation rule the snapshot was running under — escalated
    // or (after a crash that rolled past a de-escalation) the base rule.
    current = resilience;
    if (defended && escalation.active()) {
      current.aggregator = opts.escalation.aggregator;
    }
    if (defended) {
      algo.set_fault_injection(faults ? &*faults : nullptr, current);
    }
    if (krum_auto) {
      suspect_rounds.assign(num_clients, 0);
      if (const auto* t = ckpt.find("run/krum_ledger")) {
        const auto v = unpack_u64s(*t);
        for (std::size_t i = 0;
             i < std::min<std::size_t>(v.size(), num_clients); ++i) {
          suspect_rounds[i] = v[i];
        }
      }
      retune_krum();
    }
    defer_queue.clear();
    if (const auto* t = ckpt.find("run/admission_carryover")) {
      for (const std::uint64_t c : unpack_u64s(*t)) {
        defer_queue.push_back(std::size_t(c));
      }
    }
    if (churn) churn->load(ckpt, "run/churn/");
    result.client_giveups.assign(num_clients, 0);
    if (const auto* t = ckpt.find("run/giveups")) {
      const auto g = unpack_u64s(*t);
      for (std::size_t i = 0; i < std::min<std::size_t>(g.size(), num_clients);
           ++i) {
        result.client_giveups[i] = std::size_t(g[i]);
      }
    }
    return ckpt_round;
  };

  std::size_t start_round = 1;
  if (opts.resume != nullptr && !opts.resume->empty()) {
    start_round = restore_checkpoint(*opts.resume) + 1;
  } else if (store && opts.resume_from_store) {
    // Cross-run reuse: a fresh process pointed at an existing checkpoint
    // directory resumes from the newest generation that survives the
    // ladder. No generations (cold start) or all-corrupt leaves
    // start_round at 1 — identical to a run without the flag.
    std::size_t recovered = 0;
    const store::RecoveryOutcome rec = store->recover_latest(
        [&](const RunCheckpoint& c, const store::Generation&) {
          recovered = restore_checkpoint(c);
        });
    result.recovery_attempts_failed += rec.failed_attempts;
    if (rec.applied) {
      ++result.recoveries_from_store;
      start_round = recovered + 1;
    } else if (rec.failed_attempts > 0 && opts.flight != nullptr) {
      // Every generation in the directory was rejected: the window is
      // empty this early, but the exhaustion itself is worth a record.
      opts.flight->dump("recovery_exhausted", 0);
    }
  }

  // Failover drills: the pre-loop baseline covers a crash injected before
  // the first periodic checkpoint exists.
  const bool drills = !opts.crash_at_rounds.empty();
  RunCheckpoint baseline;
  if (drills) baseline = write_checkpoint(start_round - 1);
  std::vector<std::uint8_t> crash_fired(opts.rounds + 1, 0);

  obs::Tracer& tracer = obs::Tracer::instance();
  const std::size_t telemetry_stride =
      std::max<std::size_t>(1, opts.telemetry_every);

  const bool flight_on = opts.flight != nullptr;

  for (std::size_t round = start_round; round <= opts.rounds; ++round) {
    const bool telemetry_round =
        opts.telemetry != nullptr &&
        (round % telemetry_stride == 0 || round == opts.rounds);
    // The flight recorder keeps EVERY round's rendered record in its ring
    // (stride-independent), so a record is built whenever either consumer
    // is attached.
    const bool render_record = telemetry_round || flight_on;
    CommSnapshot comm_start;
    std::uint64_t trace_start = 0;
    if (render_record) {
      comm_start = algo.ledger().snapshot();
      trace_start = tracer.cursor();
    }

    // Membership events apply at round start regardless of what the round
    // does afterwards (a skipped round still ages the population).
    ChurnDelta cdelta;
    if (churn) cdelta = churn->advance(round);

    RoundStats stats;
    std::optional<EvalSummary> round_eval;
    bool stop = false;
    {
      // Scoped so the round span completes before phase attribution reads
      // the tracer below.
      SPATL_TRACE_SPAN("fl/round");

      std::vector<std::size_t> selected;
      {
        SPATL_TRACE_SPAN("fl/sample");
        if (churn) {
          // Sample from the enrolled population only, mapping draw indices
          // through the ascending enrolled list: at full enrollment the map
          // is the identity and the draw sequence matches the static path.
          const std::vector<std::size_t>& pool = churn->enrolled();
          if (!pool.empty()) {
            const std::size_t pool_count = std::clamp<std::size_t>(
                std::size_t(std::ceil(ratio * double(pool.size()))),
                std::size_t(1), pool.size());
            if (opts.fault_aware_sampling) {
              std::vector<double> weights(pool.size(), 1.0);
              for (std::size_t k = 0; k < pool.size(); ++k) {
                weights[k] = std::max(opts.fault_sampling_floor,
                                      1.0 - fail_ema[pool[k]]);
              }
              selected = weighted_sample_without_replacement(sampler, weights,
                                                             pool_count);
            } else {
              selected =
                  sampler.sample_without_replacement(pool.size(), pool_count);
            }
            for (std::size_t& s : selected) s = pool[s];
          }
        } else if (opts.fault_aware_sampling) {
          // Selection weight shrinks with the failure EMA but never below
          // the floor: flaky clients are down-weighted, not starved.
          std::vector<double> weights(num_clients, 1.0);
          for (std::size_t i = 0; i < num_clients; ++i) {
            weights[i] =
                std::max(opts.fault_sampling_floor, 1.0 - fail_ema[i]);
          }
          selected =
              weighted_sample_without_replacement(sampler, weights, per_round);
        } else {
          selected =
              sampler.sample_without_replacement(num_clients, per_round);
        }
      }

      // Budget-deferred clients join ahead of the fresh sample (they were
      // already committed to this cohort; departing mid-queue drops them).
      if (admission_on && !defer_queue.empty()) {
        std::vector<std::size_t> merged;
        merged.reserve(defer_queue.size() + selected.size());
        for (const std::size_t c : defer_queue) {
          if (churn && !churn->is_enrolled(c)) continue;
          if (!contains(merged, c)) merged.push_back(c);
        }
        for (const std::size_t c : selected) {
          if (!contains(merged, c)) merged.push_back(c);
        }
        selected = std::move(merged);
        defer_queue.clear();
      }

      // Admission: drop clients unavailable this round, flag stragglers.
      RoundStats admission;
      admission.selected = selected.size();
      admission.joined = cdelta.joined;
      admission.left = cdelta.left;
      admission.returned = cdelta.returned;
      if (churn) admission.enrolled = churn->enrolled().size();
      std::vector<std::size_t> active;
      std::vector<std::size_t> dropped_ids;
      if (faults && faults->enabled()) {
        active.reserve(selected.size());
        for (const std::size_t i : selected) {
          const ClientFault f = faults->assess(round, i);
          if (f.fate == ClientFate::kUnavailable) {
            ++admission.dropped;
            dropped_ids.push_back(i);
            continue;
          }
          if (f.fate == ClientFate::kStraggler) ++admission.stragglers;
          active.push_back(i);
        }
      } else {
        active = selected;
      }

      // Overload admission control: cap the round's uplinks by participant
      // count and estimated uplink bytes; excess clients — picked by a
      // round-keyed rotation so no id is systematically starved — are shed
      // outright or deferred into the next round's cohort.
      bool budget_exhausted = false;
      if (admission_on && !active.empty()) {
        std::size_t cap = active.size();
        if (opts.admission.max_participants > 0) {
          cap = std::min(cap, opts.admission.max_participants);
        }
        if (opts.admission.max_uplink_bytes > 0.0) {
          const double per_uplink = 4.0 * double(algo.uplink_cost_floats());
          const std::size_t by_bytes =
              per_uplink > 0.0 ? std::size_t(opts.admission.max_uplink_bytes /
                                             per_uplink)
                               : active.size();
          cap = std::min(cap, by_bytes);
        }
        if (cap < active.size()) {
          const std::size_t excess = active.size() - cap;
          const std::size_t start = round % active.size();
          std::vector<std::uint8_t> drop(active.size(), 0);
          for (std::size_t k = 0; k < excess; ++k) {
            drop[(start + k) % active.size()] = 1;
          }
          std::vector<std::size_t> kept;
          std::vector<std::size_t> over;
          kept.reserve(cap);
          over.reserve(excess);
          for (std::size_t k = 0; k < active.size(); ++k) {
            (drop[k] ? over : kept).push_back(active[k]);
          }
          active = std::move(kept);
          if (opts.admission.policy == AdmissionPolicy::kDefer) {
            admission.admission_deferred = over.size();
            defer_queue = std::move(over);
          } else {
            admission.shed = over.size();
          }
          budget_exhausted = active.empty();
        }
      }

      stats = admission;
      std::optional<EvalSummary> guard_eval;
      // Admission gate: buffered updates due this round count toward the
      // quorum — a round carried by late commits alone is still a round.
      const std::size_t due = async_on ? algo.buffered_due(round) : 0;
      if (active.size() + due < quorum) {
        // Not enough live participants to even start: skip the round and
        // leave the global model untouched (parked updates stay buffered
        // and drain in the next round that clears admission).
        stats.skipped = true;
        stats.skip_reason = budget_exhausted
                                ? SkipReason::kAdmissionBudget
                                : SkipReason::kAdmissionQuorum;
        stats.buffer_depth = algo.buffered_total();
        common::log_debug(algo.name(), " round ", round,
                          " skipped below quorum (", active.size(), "+", due,
                          "/", quorum, ", ", skip_reason_name(stats.skip_reason),
                          ")");
      } else {
        // Pre-round snapshot for the divergence guard: algorithm state plus
        // ledger counters, so a rolled-back round leaves no trace (bytes are
        // metered once, by the re-run).
        RunCheckpoint snapshot;
        CommSnapshot ledger_snap;
        if (guard) {
          algo.save_state(snapshot);
          ledger_snap = algo.ledger().snapshot();
        }
        // Churn piggybacks on the defended path's per-round stats plumbing
        // (returning-client discounts are attributed in deliver_update);
        // begin_round/round_stats never touch a float, so reading them on
        // the clean-with-churn path costs nothing.
        if (defended || churn) algo.begin_round(round, admission);
        algo.run_round(active);
        if (defended || churn) stats = algo.round_stats();
        if (guard) {
          EvalSummary eval = algo.evaluate_clients();
          const bool exploded =
              !std::isfinite(eval.avg_loss) ||
              (std::isfinite(prev_loss) && prev_loss > 0.0 &&
               eval.avg_loss > opts.divergence_factor * prev_loss);
          if (exploded) {
            common::log_debug(algo.name(), " round ", round,
                              " diverged (loss ", eval.avg_loss,
                              "), rolling back and re-aggregating with ",
                              aggregator_kind_name(opts.divergence_fallback));
            algo.load_state(snapshot);
            algo.ledger().restore(ledger_snap);
            ResilienceConfig fallback = current;
            fallback.aggregator = opts.divergence_fallback;
            algo.set_fault_injection(faults ? &*faults : nullptr, fallback);
            algo.begin_round(round, admission);
            algo.run_round(active);
            stats = algo.round_stats();
            stats.rolled_back = true;
            // Post-mortem window: the rounds that led into the explosion
            // (this round's own record is rendered after the dump).
            if (flight_on) opts.flight->dump("divergence_rollback", round);
            if (defended) {
              algo.set_fault_injection(faults ? &*faults : nullptr, current);
            } else {
              algo.clear_fault_injection();
            }
            eval = algo.evaluate_clients();
          }
          prev_loss = eval.avg_loss;
          guard_eval = eval;
        }
      }
      // Adaptive escalation (defended path only): this round ran under the
      // rule selected so far; its stats then feed the tracker, and a trip
      // upgrades the aggregator for every round that follows (one-way
      // unless a quiet streak de-escalates).
      stats.escalated = defended && escalation.active();
      if (defended) {
        switch (escalation.observe(stats)) {
          case EscalationTracker::Action::kEscalate:
            current.aggregator = opts.escalation.aggregator;
            algo.set_fault_injection(faults ? &*faults : nullptr, current);
            common::log_debug(algo.name(), " round ", round,
                              " escalating aggregator to ",
                              aggregator_kind_name(current.aggregator));
            break;
          case EscalationTracker::Action::kDeescalate:
            current.aggregator = resilience.aggregator;
            algo.set_fault_injection(faults ? &*faults : nullptr, current);
            common::log_debug(algo.name(), " round ", round,
                              " quiet streak elapsed, de-escalating to ",
                              aggregator_kind_name(current.aggregator));
            break;
          case EscalationTracker::Action::kNone:
            break;
        }
      }
      accumulate(result, stats);

      if (krum_auto && !stats.suspects.empty()) {
        // One ledger tick per client per round, however many aggregate
        // calls excluded it (multi-tensor algorithms may call the robust
        // rule more than once).
        std::vector<std::size_t> uniq = stats.suspects;
        std::sort(uniq.begin(), uniq.end());
        uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
        for (const std::size_t c : uniq) {
          if (c < num_clients) ++suspect_rounds[c];
        }
        retune_krum();
      }

      // Threshold->alert hook: derived per-round rates, fed only when a
      // watcher is installed (pure observation).
      if (opts.alerts != nullptr) {
        const double delivered =
            double(std::max<std::size_t>(1, stats.delivered));
        opts.alerts->observe("fl.reject_rate",
                             double(stats.rejected_total()) / delivered,
                             std::uint64_t(round));
        const double selected_base =
            double(std::max<std::size_t>(1, stats.selected));
        opts.alerts->observe(
            "fl.shed_rate",
            double(stats.shed + stats.admission_deferred) / selected_base,
            std::uint64_t(round));
      }

      if (opts.fault_aware_sampling) {
        for (const std::size_t i : selected) {
          const bool failed = contains(dropped_ids, i) ||
                              contains(stats.rejected_clients, i);
          fail_ema[i] = ema_decay * fail_ema[i] +
                        (1.0 - ema_decay) * (failed ? 1.0 : 0.0);
        }
      }

      if (round % opts.eval_every == 0 || round == opts.rounds) {
        const EvalSummary eval =
            guard_eval ? *guard_eval : algo.evaluate_clients();
        round_eval = eval;
        RoundRecord rec;
        rec.round = round;
        rec.avg_accuracy = eval.avg_accuracy;
        rec.avg_loss = eval.avg_loss;
        rec.cumulative_bytes = algo.ledger().total_bytes();
        rec.stats = stats;
        result.history.push_back(rec);
        result.final_accuracy = eval.avg_accuracy;
        result.best_accuracy = std::max(result.best_accuracy,
                                        eval.avg_accuracy);
        if (callback) callback(round, rec);
        common::log_debug(algo.name(), " round ", round, " acc ",
                          eval.avg_accuracy);
        if (opts.target_accuracy && !result.rounds_to_target &&
            eval.avg_accuracy >= *opts.target_accuracy) {
          result.rounds_to_target = round;
          stop = true;
        }
      }

      if (!stop && opts.checkpoint_every > 0 &&
          round % opts.checkpoint_every == 0) {
        SPATL_TRACE_SPAN("fl/checkpoint");
        RunCheckpoint ckpt = write_checkpoint(round);
        if (!opts.checkpoint_path.empty()) ckpt.save(opts.checkpoint_path);
        if (store) {
          // A rejected commit (ENOSPC, failed read-back verification) is
          // counted and moved past — the previous generations still stand,
          // and the in-memory snapshot below keeps the legacy path whole.
          if (store->commit(round, ckpt)) {
            ++result.store_commits;
          } else {
            ++result.store_commit_failures;
          }
        }
        result.last_checkpoint = std::move(ckpt);
        ++result.checkpoints_written;
      }
    }

    if (render_record) {
      // One unified record per telemetry round: participation/failure
      // stats, ledger byte deltas, robust-aggregation attribution,
      // divergence-guard actions, and (when tracing) per-phase wall times.
      const CommSnapshot delta = algo.ledger().snapshot().since(comm_start);
      obs::JsonObject comm;
      comm.add("uplink_bytes", delta.uplink)
          .add("downlink_bytes", delta.downlink)
          .add("retransmitted_bytes", delta.retransmitted)
          .add("cumulative_bytes", algo.ledger().total_bytes());
      obs::JsonObject rec;
      rec.add("type", "round")
          .add("algo", algo.name())
          .add("round", std::uint64_t(round))
          .add("selected", std::uint64_t(stats.selected))
          .add("dropped", std::uint64_t(stats.dropped))
          .add("stragglers", std::uint64_t(stats.stragglers))
          .add("accepted", std::uint64_t(stats.accepted))
          .add("rejected", std::uint64_t(stats.rejected_total()))
          .add("retransmissions", std::uint64_t(stats.retransmissions))
          .add("clipped", std::uint64_t(stats.clipped))
          .add("parked", std::uint64_t(stats.parked))
          .add("late_commits", std::uint64_t(stats.late_commits))
          .add("buffer_depth", std::uint64_t(stats.buffer_depth))
          .add("skipped", stats.skipped)
          .add("rolled_back", stats.rolled_back)
          .add("escalated", stats.escalated)
          .add_raw("attackers", ids_array(stats.attackers))
          .add_raw("suspects", ids_array(stats.suspects))
          .add_raw("comm", comm.str());
      // Feature-gated fields: each block appears only when its subsystem is
      // configured, so a run with everything off emits byte-identical
      // records to the pre-churn telemetry schema.
      if (async_on) {
        rec.add("dedup_dropped", std::uint64_t(stats.dedup_dropped));
      }
      if (churn) {
        rec.add("enrolled", std::uint64_t(stats.enrolled))
            .add("joined", std::uint64_t(stats.joined))
            .add("left", std::uint64_t(stats.left))
            .add("returned", std::uint64_t(stats.returned))
            .add("returning_discounted",
                 std::uint64_t(stats.returning_discounted));
      }
      if (admission_on) {
        rec.add("shed", std::uint64_t(stats.shed))
            .add("admission_deferred",
                 std::uint64_t(stats.admission_deferred));
      }
      if (resilience.retry.backoff_base > 0.0) {
        rec.add("backoff_wait", stats.backoff_wait);
      }
      if (stats.skipped) {
        rec.add("skip_reason", skip_reason_name(stats.skip_reason));
      }
      if (stats.rolled_back) {
        rec.add("fallback", aggregator_kind_name(opts.divergence_fallback));
      }
      if (stats.escalated) {
        rec.add("aggregator", aggregator_kind_name(current.aggregator));
      }
      if (round_eval) {
        rec.add_raw("eval",
                    obs::JsonObject()
                        .add("avg_accuracy", round_eval->avg_accuracy)
                        .add("avg_loss", round_eval->avg_loss)
                        .str());
      }
      if (tracer.enabled()) {
        obs::JsonObject phases;
        auto& registry = obs::MetricsRegistry::instance();
        for (const auto& phase : tracer.phase_totals(trace_start)) {
          phases.add_raw(phase.name, obs::JsonObject()
                                         .add("total_ns", phase.total_ns)
                                         .add("count", phase.count)
                                         .str());
          // Cumulative per-phase latency distribution (one sample per
          // telemetry round) — lands in the end-of-run "metrics" record of
          // the same JSONL stream via metrics_object(). The fixed-bucket
          // histogram gives the coarse shape; the log-bucket sketch
          // refines it into percentiles with bounded relative error.
          if (histogram_phase(phase.name)) {
            std::string metric = phase.name;
            for (char& c : metric) {
              if (c == '/') c = '.';
            }
            const double ms = double(phase.total_ns) / 1.0e6;
            registry.histogram(metric + ".round_ms", phase_latency_bounds_ms())
                .record(ms);
            registry.sketch(metric + ".round_ms").record(ms);
          }
        }
        rec.add_raw("phases", phases.str());
      }
      if (telemetry_round) opts.telemetry->write(rec);
      if (flight_on) {
        opts.flight->record_round(std::uint64_t(round), rec.str());
      }
    }

    // Failover drill: lose the server at the end of this round, once. All
    // in-memory progress since the last durable checkpoint is discarded and
    // the loop resumes from the snapshot — the recovery path a real crash
    // would take, exercised inside one run_federated call.
    if (drills && round < crash_fired.size() &&
        contains(opts.crash_at_rounds, round) && !crash_fired[round]) {
      crash_fired[round] = 1;
      // The flight window is most valuable at the moment of the crash —
      // dump it before recovery rewinds the loop and overwrites history.
      if (flight_on) opts.flight->dump("crash_drill", std::uint64_t(round));
      std::size_t recovered = 0;
      std::string crash_source;
      if (store) {
        // Durable-first recovery: a real crash loses the process, so the
        // in-memory snapshot is off limits — the generational ladder
        // decides what survives, and only when every generation is corrupt
        // (or none was ever committed) does the drill fall back to the
        // deterministic pre-loop baseline.
        const store::RecoveryOutcome rec = store->recover_latest(
            [&](const RunCheckpoint& c, const store::Generation&) {
              recovered = restore_checkpoint(c);
            });
        result.recovery_attempts_failed += rec.failed_attempts;
        if (rec.applied) {
          ++result.recoveries_from_store;
          crash_source = "store";
        } else {
          recovered = restore_checkpoint(baseline);
          crash_source = "baseline";
          if (flight_on) {
            opts.flight->dump("recovery_exhausted", std::uint64_t(round));
          }
        }
      } else {
        const RunCheckpoint& source =
            result.last_checkpoint.empty() ? baseline
                                           : result.last_checkpoint;
        recovered = restore_checkpoint(source);
      }
      ++result.crashes_injected;
      while (!result.history.empty() &&
             result.history.back().round > recovered) {
        result.history.pop_back();
      }
      if (result.rounds_to_target && *result.rounds_to_target > recovered) {
        result.rounds_to_target.reset();
      }
      stop = false;
      if (opts.telemetry != nullptr) {
        obs::JsonObject rec;
        rec.add("type", "crash")
            .add("algo", algo.name())
            .add("round", std::uint64_t(round))
            .add("recovered_to", std::uint64_t(recovered));
        // Feature-gated so store-off crash records keep the legacy bytes.
        if (!crash_source.empty()) rec.add("source", crash_source);
        opts.telemetry->write(rec);
      }
      common::log_debug(algo.name(), " server crash injected at round ",
                        round, ", recovered to round ", recovered);
      round = recovered;  // the loop increment resumes at recovered + 1
      continue;
    }
    if (stop) break;
  }
  result.comm = algo.ledger().snapshot();
  result.total_bytes = result.comm.total();
  result.retransmitted_bytes = result.comm.retransmitted;
  result.buffered_remaining = algo.buffered_total();
  if (async_on) algo.clear_async();
  if (churn) algo.clear_churn();
  if (defended) algo.clear_fault_injection();
  return result;
}

}  // namespace spatl::fl
