// Round-loop driver: client sampling, fault admission, periodic evaluation,
// history capture.
//
// Produces exactly the series the paper's figures plot — accuracy vs round
// and accuracy vs cumulative communicated bytes — plus stop-at-target
// queries for the rounds-to-target-accuracy tables. When RunOptions carries
// a FaultConfig, the runner owns a deterministic FaultModel, drops
// unavailable clients before the round, flags stragglers, skips rounds that
// fall below the resilience quorum (global model untouched), and threads
// the model into the algorithm for uplink corruption/loss injection and
// server-side validation. With neither faults nor resilience requested the
// clean-world behaviour is bit-identical to the undefended path.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fl/algorithm.hpp"
#include "fl/async.hpp"
#include "fl/checkpoint.hpp"
#include "fl/churn.hpp"
#include "fl/comm.hpp"
#include "fl/fault.hpp"
#include "fl/robust.hpp"
#include "fl/store/store.hpp"

namespace spatl::obs {
class AlertWatcher;
class FlightRecorder;
class JsonlWriter;
}  // namespace spatl::obs

namespace spatl::fl {

/// What happens to active clients beyond the per-round admission budget.
enum class AdmissionPolicy {
  kShed,   // sit the round out entirely (no uplink, no bytes, no re-queue)
  kDefer,  // queue into the next round's cohort ahead of fresh samples
};

const char* admission_policy_name(AdmissionPolicy policy);
/// Parse "shed|defer". Throws std::invalid_argument.
AdmissionPolicy parse_admission_policy(const std::string& name);

/// Per-round server overload protection: caps how many uplinks a round may
/// carry, by participant count and/or by an estimated uplink byte budget
/// (participants x the algorithm's uplink_cost_floats() x 4 bytes). Excess
/// active clients are chosen deterministically (a round-keyed rotation, so
/// no client id is systematically starved) and shed or deferred per
/// `policy`. Unlimited by default — the off-switch leaves every byte of the
/// legacy path unchanged.
struct AdmissionConfig {
  std::size_t max_participants = 0;  // 0 = unlimited
  double max_uplink_bytes = 0.0;     // 0 = unlimited (per round, estimated)
  AdmissionPolicy policy = AdmissionPolicy::kShed;

  bool limited() const {
    return max_participants > 0 || max_uplink_bytes > 0.0;
  }
};

struct RoundRecord {
  std::size_t round = 0;
  double avg_accuracy = 0.0;
  double avg_loss = 0.0;
  double cumulative_bytes = 0.0;
  /// Participation/failure statistics of this round (zeros on the clean
  /// path; `stats.skipped` marks a below-quorum round that left the global
  /// model untouched).
  RoundStats stats;
};

struct RunOptions {
  std::size_t rounds = 50;
  double sample_ratio = 1.0;   // fraction of clients participating per round
  std::size_t eval_every = 1;

  /// Compute backend for the GEMM family ("scalar" | "cpu-simd" | "auto",
  /// see tensor/backend.hpp). Applied process-wide via set_active_backend()
  /// before round 1. Empty = leave the ambient backend untouched (the
  /// SPATL_BACKEND environment default, or whatever the caller selected).
  /// Per backend, runs are bit-identical across thread counts; switching
  /// backend changes float rounding within the documented ulp bound
  /// (tensor/ops.hpp), so seeded replays must pin the same backend.
  std::string backend;
  /// Stop early once average accuracy reaches this value (Table I setting).
  std::optional<double> target_accuracy;
  std::uint64_t sampling_seed = 7;
  /// Fault injection (dropout, stragglers, uplink corruption, message
  /// loss). nullopt = clean world.
  std::optional<FaultConfig> faults;
  /// Server-side defenses (validation, retry budget, quorum, staleness).
  /// nullopt = defaults when `faults` is set; when neither is set the
  /// legacy undefended code path runs unchanged.
  std::optional<ResilienceConfig> resilience;

  /// Semi-asynchronous straggler commit (DESIGN.md §11): past-deadline
  /// clients are parked and commit `lag` rounds later with weight
  /// stale_weight^lag instead of the synchronous same-round policy. Only
  /// meaningful with `faults` set (the deadline comes from the fault
  /// model's virtual compute times); nullopt or enabled=false leaves the
  /// synchronous path bit-identical.
  std::optional<AsyncConfig> async;

  /// Elastic membership (DESIGN.md §12): a deterministic, seed-derived
  /// churn engine grows and shrinks the enrolled population mid-run; the
  /// runner samples from the enrolled set only, and returning clients'
  /// first accepted uplink is staleness-discounted. nullopt — or a config
  /// whose trace is empty (zero rates, full initial enrollment) — leaves
  /// sampling draws, floats, and telemetry bytes unchanged.
  std::optional<ChurnConfig> churn;

  /// Per-round admission budget (participant / uplink-byte caps); see
  /// AdmissionConfig. Unlimited by default.
  AdmissionConfig admission;

  /// Failover drills: simulate a server crash at the end of each listed
  /// round (once per round) — all in-memory state is discarded and the run
  /// recovers from the latest checkpoint (or the pre-round-1 baseline
  /// snapshot) inside the same run_federated call, finishing bit-identical
  /// to the uncrashed run. Empty = no drills.
  std::vector<std::size_t> crash_at_rounds;

  /// Threshold->alert hook: when non-null the runner feeds per-round
  /// derived rates ("fl.reject_rate", "fl.shed_rate") into the watcher,
  /// which emits "type":"alert" JSONL records on threshold crossings.
  /// Pure observation. Not owned; must outlive the run.
  obs::AlertWatcher* alerts = nullptr;

  /// Adaptive aggregator escalation: once the suspicious-update fraction
  /// stays above threshold for `patience` rounds, permanently switch the
  /// aggregation rule to `escalation.aggregator` (mean -> median by
  /// default). Only active on the defended path; disabled by default.
  EscalationConfig escalation;

  /// Fault-aware client sampling: track a per-client failure EMA (dropped,
  /// lost, or rejected uplinks count as failures) and down-weight flaky
  /// clients during selection. Off = the legacy uniform
  /// sample_without_replacement path, bit for bit.
  bool fault_aware_sampling = false;
  double fault_ema_decay = 0.9;         // history retained per round
  double fault_sampling_floor = 0.15;   // minimum relative selection weight

  /// Crash-recoverable rounds: capture a full-state checkpoint every
  /// `checkpoint_every` rounds (0 = off), written to `checkpoint_path` when
  /// non-empty; the latest snapshot is also returned in RunResult. Passing
  /// `resume` restores a prior snapshot before the loop and continues from
  /// the following round, bit-identically to the uninterrupted run.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path;
  const RunCheckpoint* resume = nullptr;  // not owned; may be null

  /// Durable generational checkpoint store (DESIGN.md §13): when set (and
  /// dir non-empty), every periodic checkpoint is additionally committed as
  /// a round-stamped, CRC-verified generation under `ckpt_store->dir`
  /// (atomic tmp+rename, keep-last-K pruning), and the failover drill
  /// recovers through the generational ladder — newest generation first,
  /// stepping down past any that fail verification — instead of trusting
  /// the in-memory snapshot. nullopt = legacy behaviour, byte for byte.
  std::optional<store::StoreConfig> ckpt_store;
  /// Storage IO hook for the store (chaos drills inject torn writes / bit
  /// corruption / ENOSPC through a FaultyStoreIo here). Null = the real
  /// filesystem. Not owned; must outlive the run.
  store::StoreIo* store_io = nullptr;
  /// Cross-run store reuse: before round 1, walk the generational ladder in
  /// `ckpt_store->dir` and resume from the newest generation that verifies
  /// and applies — so a fresh process pointed at the same directory picks up
  /// where the previous run stopped, bit-identically to the uninterrupted
  /// run, with no explicit `resume` snapshot. An empty/missing directory is
  /// a cold start (round 1); an explicit `resume` takes precedence. Counted
  /// in RunResult::recoveries_from_store / recovery_attempts_failed like
  /// any other ladder walk.
  bool resume_from_store = false;

  /// Attack-aware Krum f auto-tuning: maintain a per-client suspicion
  /// ledger from the robust aggregator's exclusions and, whenever the
  /// active rule is Krum, re-arm its assumed-Byzantine bound f with the
  /// number of repeat suspects (excluded in >= 2 rounds), clamped to
  /// [resilience.krum_f, participants - 3]. The ledger rides checkpoints
  /// as "run/krum_ledger" so resumed runs keep their estimate. Off = the
  /// configured krum_f is never touched (bit-identical legacy path).
  bool krum_auto_f = false;

  /// Divergence guard: when > 0, evaluate after every round; if the average
  /// loss is non-finite or exceeds `divergence_factor` times the previous
  /// round's loss, roll the round back (model, control state, ledger) and
  /// re-aggregate it with `divergence_fallback` instead. 0 = off.
  double divergence_factor = 0.0;
  AggregatorKind divergence_fallback = AggregatorKind::kCoordinateMedian;

  /// Per-round telemetry sink (DESIGN.md §10): when non-null the runner
  /// appends one "round" JSONL record per `telemetry_every` rounds unifying
  /// RoundStats, CommLedger byte deltas, divergence-guard actions, and —
  /// when the tracer is enabled — per-phase wall times. Pure observation:
  /// attaching a sink never changes a single float of the simulation. Not
  /// owned; must outlive the run.
  obs::JsonlWriter* telemetry = nullptr;
  std::size_t telemetry_every = 1;

  /// Flight recorder (DESIGN.md §10.1): when non-null, EVERY round's
  /// rendered telemetry record (whether or not the round hits the JSONL
  /// stride) is pushed into the recorder's bounded ring, and the runner
  /// dumps the window as one "type":"flight" record on divergence
  /// rollback, crash drill, and recovery-ladder exhaustion. Pure
  /// observation, like `telemetry`. Not owned; must outlive the run.
  obs::FlightRecorder* flight = nullptr;
};

struct RunResult {
  std::vector<RoundRecord> history;
  /// First round at which target_accuracy was reached (if it was).
  std::optional<std::size_t> rounds_to_target;
  double final_accuracy = 0.0;
  double total_bytes = 0.0;
  /// Highest evaluated accuracy across the run ("converge accuracy").
  double best_accuracy = 0.0;

  // Participation and failure totals across every round (not just the
  // evaluated ones). All zero on the clean path.
  std::size_t total_selected = 0;
  std::size_t total_dropped = 0;
  std::size_t total_stragglers = 0;
  std::size_t total_accepted = 0;
  std::size_t total_rejected = 0;
  std::size_t total_retransmissions = 0;
  std::size_t rounds_skipped = 0;
  /// Bytes re-sent by the bounded-retry path (also included in total_bytes).
  double retransmitted_bytes = 0.0;

  // Byzantine robustness and recovery totals (all zero on the clean path).
  std::size_t total_attacked = 0;      // adversarially crafted uplinks
  std::size_t total_suspected = 0;     // robust-aggregator exclusions
  std::size_t rounds_rolled_back = 0;  // divergence-guard interventions
  std::size_t checkpoints_written = 0;

  // Semi-async buffering totals (all zero with async off).
  std::size_t total_parked = 0;        // straggler updates parked
  std::size_t total_late_commits = 0;  // parked updates that committed
  /// Updates still parked when the run ended (their bytes were paid but
  /// they never reached aggregation).
  std::size_t buffered_remaining = 0;
  /// Rounds aggregated under the escalated rule (EscalationTracker).
  std::size_t rounds_escalated = 0;
  /// Older parked updates superseded by a newer park from the same client
  /// (latest-wins dedup): total_parked == total_late_commits +
  /// buffered_remaining + total_dedup_dropped.
  std::size_t total_dedup_dropped = 0;

  // Elastic membership totals (all zero with churn off).
  std::size_t total_joined = 0;
  std::size_t total_left = 0;
  std::size_t total_returned = 0;
  /// Returning clients whose first accepted uplink was staleness-discounted.
  std::size_t total_returning_discounted = 0;

  // Admission-control totals (all zero with no budget configured).
  std::size_t total_shed = 0;
  std::size_t total_deferred = 0;

  // Retry-discipline totals (all zero with backoff off / lossless links).
  double total_backoff_wait = 0.0;
  /// Uplinks abandoned after exhausting the retry budget (== the kLost
  /// rejection total, broken down per client below).
  std::size_t total_giveups = 0;
  /// Per-client give-up counts (sized num_clients, zeros on clean paths).
  std::vector<std::size_t> client_giveups;

  /// Server crashes injected by the failover drill (each recovered from
  /// the latest checkpoint inside this run).
  std::size_t crashes_injected = 0;
  /// The latest full-state snapshot (empty when checkpointing is off).
  RunCheckpoint last_checkpoint;

  // Durable-store totals (all zero with no ckpt_store configured).
  std::size_t store_commits = 0;          // generations durably published
  std::size_t store_commit_failures = 0;  // commits the store rejected
  /// Crash recoveries served by an on-disk generation (the remainder of
  /// crashes_injected fell back to the in-memory baseline snapshot).
  std::size_t recoveries_from_store = 0;
  /// Generations the recovery ladder rejected (corrupt file or failed
  /// restore) on its way to an older good one.
  std::size_t recovery_attempts_failed = 0;

  /// Final auto-tuned Krum f (== the configured krum_f when krum_auto_f is
  /// off or nothing was repeatedly suspected).
  std::size_t krum_f_estimate = 0;

  /// Final ledger counters (total_bytes / retransmitted_bytes above are
  /// derived from this snapshot rather than re-summed by hand).
  CommSnapshot comm;
};

using RoundCallback =
    std::function<void(std::size_t round, const RoundRecord&)>;

/// Drive `algo` for opts.rounds rounds, sampling
/// ceil(sample_ratio * num_clients) clients uniformly without replacement
/// each round (the Non-IID benchmark's sampling scheme). The ratio is
/// clamped to [0, 1] and the participant count to [1, num_clients], so a
/// small or out-of-range ratio can never select zero clients.
RunResult run_federated(FederatedAlgorithm& algo, const RunOptions& opts,
                        const RoundCallback& callback = nullptr);

}  // namespace spatl::fl
