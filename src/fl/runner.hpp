// Round-loop driver: client sampling, fault admission, periodic evaluation,
// history capture.
//
// Produces exactly the series the paper's figures plot — accuracy vs round
// and accuracy vs cumulative communicated bytes — plus stop-at-target
// queries for the rounds-to-target-accuracy tables. When RunOptions carries
// a FaultConfig, the runner owns a deterministic FaultModel, drops
// unavailable clients before the round, flags stragglers, skips rounds that
// fall below the resilience quorum (global model untouched), and threads
// the model into the algorithm for uplink corruption/loss injection and
// server-side validation. With neither faults nor resilience requested the
// clean-world behaviour is bit-identical to the undefended path.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "fl/algorithm.hpp"
#include "fl/fault.hpp"

namespace spatl::fl {

struct RoundRecord {
  std::size_t round = 0;
  double avg_accuracy = 0.0;
  double avg_loss = 0.0;
  double cumulative_bytes = 0.0;
  /// Participation/failure statistics of this round (zeros on the clean
  /// path; `stats.skipped` marks a below-quorum round that left the global
  /// model untouched).
  RoundStats stats;
};

struct RunOptions {
  std::size_t rounds = 50;
  double sample_ratio = 1.0;   // fraction of clients participating per round
  std::size_t eval_every = 1;
  /// Stop early once average accuracy reaches this value (Table I setting).
  std::optional<double> target_accuracy;
  std::uint64_t sampling_seed = 7;
  /// Fault injection (dropout, stragglers, uplink corruption, message
  /// loss). nullopt = clean world.
  std::optional<FaultConfig> faults;
  /// Server-side defenses (validation, retry budget, quorum, staleness).
  /// nullopt = defaults when `faults` is set; when neither is set the
  /// legacy undefended code path runs unchanged.
  std::optional<ResilienceConfig> resilience;
};

struct RunResult {
  std::vector<RoundRecord> history;
  /// First round at which target_accuracy was reached (if it was).
  std::optional<std::size_t> rounds_to_target;
  double final_accuracy = 0.0;
  double total_bytes = 0.0;
  /// Highest evaluated accuracy across the run ("converge accuracy").
  double best_accuracy = 0.0;

  // Participation and failure totals across every round (not just the
  // evaluated ones). All zero on the clean path.
  std::size_t total_selected = 0;
  std::size_t total_dropped = 0;
  std::size_t total_stragglers = 0;
  std::size_t total_accepted = 0;
  std::size_t total_rejected = 0;
  std::size_t total_retransmissions = 0;
  std::size_t rounds_skipped = 0;
  /// Bytes re-sent by the bounded-retry path (also included in total_bytes).
  double retransmitted_bytes = 0.0;
};

using RoundCallback =
    std::function<void(std::size_t round, const RoundRecord&)>;

/// Drive `algo` for opts.rounds rounds, sampling
/// ceil(sample_ratio * num_clients) clients uniformly without replacement
/// each round (the Non-IID benchmark's sampling scheme). The ratio is
/// clamped to [0, 1] and the participant count to [1, num_clients], so a
/// small or out-of-range ratio can never select zero clients.
RunResult run_federated(FederatedAlgorithm& algo, const RunOptions& opts,
                        const RoundCallback& callback = nullptr);

}  // namespace spatl::fl
