// Round-loop driver: client sampling, periodic evaluation, history capture.
//
// Produces exactly the series the paper's figures plot — accuracy vs round
// and accuracy vs cumulative communicated bytes — plus stop-at-target
// queries for the rounds-to-target-accuracy tables.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "fl/algorithm.hpp"

namespace spatl::fl {

struct RoundRecord {
  std::size_t round = 0;
  double avg_accuracy = 0.0;
  double avg_loss = 0.0;
  double cumulative_bytes = 0.0;
};

struct RunOptions {
  std::size_t rounds = 50;
  double sample_ratio = 1.0;   // fraction of clients participating per round
  std::size_t eval_every = 1;
  /// Stop early once average accuracy reaches this value (Table I setting).
  std::optional<double> target_accuracy;
  std::uint64_t sampling_seed = 7;
};

struct RunResult {
  std::vector<RoundRecord> history;
  /// First round at which target_accuracy was reached (if it was).
  std::optional<std::size_t> rounds_to_target;
  double final_accuracy = 0.0;
  double total_bytes = 0.0;
  /// Highest evaluated accuracy across the run ("converge accuracy").
  double best_accuracy = 0.0;
};

using RoundCallback =
    std::function<void(std::size_t round, const RoundRecord&)>;

/// Drive `algo` for opts.rounds rounds, sampling
/// ceil(sample_ratio * num_clients) clients uniformly without replacement
/// each round (the Non-IID benchmark's sampling scheme).
RunResult run_federated(FederatedAlgorithm& algo, const RunOptions& opts,
                        const RoundCallback& callback = nullptr);

}  // namespace spatl::fl
