#include "fl/server_opt.hpp"

#include <cmath>

#include "fl/flat_utils.hpp"

namespace spatl::fl {

ServerOptFedAvg::ServerOptFedAvg(FlEnvironment& env, FlConfig config,
                                 ServerOptConfig sopt)
    : FederatedAlgorithm(env, std::move(config)), sopt_(sopt) {
  const std::size_t dim = nn::param_count(global_.all_params());
  velocity_.assign(dim, 0.0f);
  if (sopt_.optimizer == ServerOptimizer::kAdam) second_.assign(dim, 0.0f);
}

void ServerOptFedAvg::run_round(const std::vector<std::size_t>& selected) {
  auto views = global_.all_params();
  const std::vector<float> w_global = nn::flatten_values(views);
  std::vector<float> delta(w_global.size(), 0.0f);  // mean client delta
  std::vector<float> bn_accum(flatten_bn_stats(global_).size(), 0.0f);

  const float inv_s = 1.0f / float(selected.size());
  for (const std::size_t i : selected) {
    load_global_into_worker();
    ledger_.add_downlink_floats(w_global.size());
    common::Rng client_rng(config_.seed ^ (0xC11E47ULL * (i + 1)));
    data::train_supervised(worker_, env_.client(i).train, config_.local,
                           client_rng, worker_.all_params());
    ledger_.add_uplink_floats(w_global.size());
    const auto w_i = nn::flatten_values(worker_.all_params());
    for (std::size_t j = 0; j < delta.size(); ++j) {
      delta[j] += inv_s * (w_i[j] - w_global[j]);
    }
    axpy(bn_accum, flatten_bn_stats(worker_), inv_s);
  }

  ++step_;
  std::vector<float> w_new = w_global;
  if (sopt_.optimizer == ServerOptimizer::kMomentum) {
    // v = beta v + delta ; w += lr * v
    const float mu = float(sopt_.momentum);
    for (std::size_t j = 0; j < delta.size(); ++j) {
      velocity_[j] = mu * velocity_[j] + delta[j];
      w_new[j] += float(sopt_.lr) * velocity_[j];
    }
  } else {
    // Adam on the pseudo-gradient (= -delta, sign folded into the update).
    const float b1 = float(sopt_.beta1), b2 = float(sopt_.beta2);
    const double bias1 = 1.0 - std::pow(sopt_.beta1, double(step_));
    const double bias2 = 1.0 - std::pow(sopt_.beta2, double(step_));
    const float lr_t = float(sopt_.lr * std::sqrt(bias2) / bias1);
    for (std::size_t j = 0; j < delta.size(); ++j) {
      velocity_[j] = b1 * velocity_[j] + (1.0f - b1) * delta[j];
      second_[j] = b2 * second_[j] + (1.0f - b2) * delta[j] * delta[j];
      w_new[j] += lr_t * velocity_[j] /
                  (std::sqrt(second_[j]) + float(sopt_.eps));
    }
  }
  nn::unflatten_values(w_new, views);
  unflatten_bn_stats(bn_accum, global_);
}

}  // namespace spatl::fl
