// Server-side adaptive optimization: FedAvgM and FedAdam (Reddi et al.,
// "Adaptive Federated Optimization", the paper's reference [28]).
//
// Both treat the averaged client delta as a pseudo-gradient and run a
// stateful optimizer on the server: momentum (FedAvgM) or Adam (FedAdam).
// They complete the baseline family the paper positions SPATL against.
#pragma once

#include "fl/algorithm.hpp"

namespace spatl::fl {

enum class ServerOptimizer { kMomentum, kAdam };

struct ServerOptConfig {
  ServerOptimizer optimizer = ServerOptimizer::kMomentum;
  double lr = 1.0;          // server learning rate on the pseudo-gradient
  double momentum = 0.9;    // FedAvgM
  double beta1 = 0.9;       // FedAdam
  double beta2 = 0.99;
  double eps = 1e-3;        // tau in the paper's notation
};

class ServerOptFedAvg : public FederatedAlgorithm {
 public:
  ServerOptFedAvg(FlEnvironment& env, FlConfig config, ServerOptConfig sopt);

  std::string name() const override {
    return sopt_.optimizer == ServerOptimizer::kMomentum ? "fedavgm"
                                                         : "fedadam";
  }
  void run_round(const std::vector<std::size_t>& selected) override;

 private:
  ServerOptConfig sopt_;
  std::vector<float> velocity_;  // momentum buffer / Adam m
  std::vector<float> second_;    // Adam v
  std::int64_t step_ = 0;
};

}  // namespace spatl::fl
