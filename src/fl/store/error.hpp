// Typed checkpoint failure: which file, which entry, and why.
//
// Every detectable storage problem in the durable checkpoint path — a torn
// write discovered via CRC mismatch, an implausible header field, a chunk
// that cannot be a packed 16-bit value — surfaces as a CheckpointError so
// callers (the recovery ladder, the CLI, tests) can attribute the failure
// instead of pattern-matching std::runtime_error::what() strings.
#pragma once

#include <stdexcept>
#include <string>

namespace spatl::fl::store {

class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(std::string path, std::string entry, std::string reason)
      : std::runtime_error(format(path, entry, reason)),
        path_(std::move(path)),
        entry_(std::move(entry)),
        reason_(std::move(reason)) {}

  /// File involved; empty when the failure is not bound to a file (e.g. a
  /// bad packed chunk in an in-memory tensor).
  const std::string& path() const { return path_; }
  /// Entry name or index context; empty for whole-file failures.
  const std::string& entry() const { return entry_; }
  /// Human-readable cause ("payload CRC mismatch", "truncated footer", ...).
  const std::string& reason() const { return reason_; }

 private:
  static std::string format(const std::string& path, const std::string& entry,
                            const std::string& reason) {
    std::string msg = "checkpoint error";
    if (!path.empty()) msg += " [" + path + "]";
    if (!entry.empty()) msg += " entry '" + entry + "'";
    msg += ": " + reason;
    return msg;
  }

  std::string path_;
  std::string entry_;
  std::string reason_;
};

}  // namespace spatl::fl::store
