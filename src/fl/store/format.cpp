#include "fl/store/format.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "fl/store/error.hpp"

namespace spatl::fl::store {

namespace {

constexpr std::uint32_t kEnvelopeMagic = 0x44545053;   // "SPTD" on disk
constexpr std::uint32_t kEnvelopeVersion = 1;
constexpr std::uint32_t kFooterMagic = 0x444E4553;     // "SEND" on disk
constexpr std::size_t kHeaderSize = 4 + 4 + 8;
// Defensive caps mirroring tensor/serialize.cpp: fields beyond these signal
// corruption, not data.
constexpr std::uint64_t kMaxEntries = 1'000'000ULL;
constexpr std::uint64_t kMaxNameLen = 4096;
constexpr std::uint64_t kMaxRank = 8;

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1U) ? (0xEDB88320U ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

template <typename T>
void append_pod(std::string& out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out.append(buf, sizeof(T));
}

/// Bounds-checked sequential reader over the in-memory file image. `limit`
/// excludes the footer, so entry parsing can never consume CRC bytes.
struct Cursor {
  const std::string& bytes;
  std::size_t pos;
  std::size_t limit;
  const std::string& path;

  template <typename T>
  T read(const char* what, const std::string& entry) {
    if (limit - pos < sizeof(T)) {
      throw CheckpointError(path, entry,
                            std::string("truncated ") + what + " at offset " +
                                std::to_string(pos));
    }
    T value{};
    std::memcpy(&value, bytes.data() + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }

  const char* span(std::size_t size, const char* what,
                   const std::string& entry) {
    if (limit - pos < size) {
      throw CheckpointError(path, entry,
                            std::string("truncated ") + what + " at offset " +
                                std::to_string(pos));
    }
    const char* p = bytes.data() + pos;
    pos += size;
    return p;
  }
};

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto& table = crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

std::string encode_checkpoint(
    const std::vector<tensor::NamedTensor>& entries) {
  std::string out;
  append_pod(out, kEnvelopeMagic);
  append_pod(out, kEnvelopeVersion);
  append_pod(out, std::uint64_t(entries.size()));
  // Entry byte layout matches tensor/serialize.cpp's write_tensors body so
  // the envelope is "the tensor stream plus integrity" — any divergence
  // here would be caught by the round-trip tests.
  std::vector<std::uint32_t> entry_crcs;
  entry_crcs.reserve(entries.size());
  for (const auto& e : entries) {
    const std::size_t start = out.size();
    append_pod(out, std::uint64_t(e.name.size()));
    out.append(e.name.data(), e.name.size());
    append_pod(out, std::uint64_t(e.value.rank()));
    for (std::size_t d = 0; d < e.value.rank(); ++d) {
      append_pod(out, std::uint64_t(e.value.dim(d)));
    }
    out.append(reinterpret_cast<const char*>(e.value.data()),
               e.value.numel() * sizeof(float));
    entry_crcs.push_back(crc32(out.data() + start, out.size() - start));
  }
  const std::uint32_t payload_crc = crc32(out.data(), out.size());
  for (const std::uint32_t c : entry_crcs) append_pod(out, c);
  append_pod(out, payload_crc);
  append_pod(out, kFooterMagic);
  return out;
}

std::vector<tensor::NamedTensor> decode_checkpoint(const std::string& bytes,
                                                   const std::string& path) {
  if (bytes.size() < kHeaderSize + 8) {
    throw CheckpointError(path, "",
                          "file too small for header + footer (" +
                              std::to_string(bytes.size()) + " bytes)");
  }
  Cursor header{bytes, 0, bytes.size(), path};
  if (header.read<std::uint32_t>("magic", "") != kEnvelopeMagic) {
    throw CheckpointError(path, "",
                          "bad magic (not a durable SPATL checkpoint)");
  }
  const auto version = header.read<std::uint32_t>("version", "");
  if (version != kEnvelopeVersion) {
    throw CheckpointError(path, "",
                          "unsupported version " + std::to_string(version));
  }
  const auto count = header.read<std::uint64_t>("entry count", "");
  if (count > kMaxEntries) {
    throw CheckpointError(path, "",
                          "implausible entry count " + std::to_string(count));
  }
  const std::size_t footer_size = 4 * std::size_t(count) + 8;
  if (bytes.size() < kHeaderSize + footer_size) {
    throw CheckpointError(path, "", "truncated footer");
  }
  const std::size_t body_end = bytes.size() - footer_size;

  // The trailing magic is the cheapest truncation probe: a file cut short at
  // any point almost never ends in the footer sentinel.
  std::uint32_t trailer = 0;
  std::memcpy(&trailer, bytes.data() + bytes.size() - 4, 4);
  if (trailer != kFooterMagic) {
    throw CheckpointError(path, "", "missing footer magic (truncated file?)");
  }

  Cursor cur{bytes, kHeaderSize, body_end, path};
  std::vector<tensor::NamedTensor> entries;
  std::vector<std::pair<std::size_t, std::size_t>> spans;  // [start, end)
  entries.reserve(std::size_t(count));
  spans.reserve(std::size_t(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string idx = "#" + std::to_string(i);
    const std::size_t start = cur.pos;
    tensor::NamedTensor e;
    const auto name_len = cur.read<std::uint64_t>("name length", idx);
    if (name_len > kMaxNameLen) {
      throw CheckpointError(path, idx, "implausible name length " +
                                           std::to_string(name_len));
    }
    e.name.assign(cur.span(std::size_t(name_len), "name", idx),
                  std::size_t(name_len));
    const auto rank = cur.read<std::uint64_t>("rank", e.name);
    if (rank > kMaxRank) {
      throw CheckpointError(path, e.name,
                            "implausible rank " + std::to_string(rank));
    }
    tensor::Shape shape(static_cast<std::size_t>(rank));
    std::size_t numel = 1;
    for (auto& d : shape) {
      d = std::size_t(cur.read<std::uint64_t>("dimension", e.name));
      if (d == 0 || numel > std::numeric_limits<std::size_t>::max() / d) {
        throw CheckpointError(path, e.name, "implausible dimension");
      }
      numel *= d;
    }
    // Check against the remaining bytes BEFORE allocating: a corrupt
    // dimension must fail typed, not take down the process with a
    // terabyte-sized bad_alloc (and numel * 4 must not overflow either).
    if (numel > (cur.limit - cur.pos) / sizeof(float)) {
      throw CheckpointError(path, e.name,
                            "tensor data exceeds remaining file bytes");
    }
    e.value = tensor::Tensor(std::move(shape));
    const char* data =
        cur.span(numel * sizeof(float), "tensor data", e.name);
    std::memcpy(e.value.data(), data, numel * sizeof(float));
    spans.emplace_back(start, cur.pos);
    entries.push_back(std::move(e));
  }
  if (cur.pos != body_end) {
    throw CheckpointError(path, "",
                          std::to_string(body_end - cur.pos) +
                              " trailing byte(s) after the final entry");
  }

  // Integrity: per-entry CRCs first (best attribution), then the payload
  // CRC over header + entries (covers the header fields themselves).
  Cursor footer{bytes, body_end, bytes.size(), path};
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto stored = footer.read<std::uint32_t>("entry CRC", "");
    const auto [start, end] = spans[std::size_t(i)];
    const std::uint32_t actual = crc32(bytes.data() + start, end - start);
    if (stored != actual) {
      throw CheckpointError(path, entries[std::size_t(i)].name,
                            "entry CRC mismatch");
    }
  }
  const auto stored_payload = footer.read<std::uint32_t>("payload CRC", "");
  if (stored_payload != crc32(bytes.data(), body_end)) {
    throw CheckpointError(path, "", "payload CRC mismatch");
  }
  return entries;
}

void save_legacy_checkpoint(const std::string& path,
                            const std::vector<tensor::NamedTensor>& entries) {
  std::ostringstream buf(std::ios::binary);
  tensor::write_tensors(buf, entries);
  atomic_write_file(default_store_io(), path, buf.str());
}

std::vector<tensor::NamedTensor> load_legacy_checkpoint(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CheckpointError(path, "", "cannot open for reading");
  return tensor::read_tensors(in);
}

}  // namespace spatl::fl::store
