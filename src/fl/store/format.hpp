// Durable checkpoint container: the tensor stream wrapped in an
// integrity-verified envelope (DESIGN.md §13).
//
// Layout (little-endian, version-tagged):
//
//   file   := magic u32 ("SPTD") | version u32 | count u64
//             | entry*                       -- same bytes as the tensor
//                                              stream (serialize.hpp)
//             | footer
//   entry  := name_len u64 | name | rank u64 | dims u64* | data f32*
//   footer := entry_crc u32 * count          -- CRC32 of each entry's span
//             | payload_crc u32              -- CRC32 of everything before
//                                              the footer (header + entries)
//             | footer_magic u32 ("SEND")
//
// decode_checkpoint() verifies all of it — header fields, structural
// bounds, per-entry CRCs, the whole-payload CRC, and the trailing footer
// magic (a cheap truncation probe) — and throws CheckpointError naming the
// file, the entry, and the reason on the first mismatch. Any single bit
// flip or truncation anywhere in the file is detected: body/header damage
// fails the payload or entry CRC, footer damage fails the CRC comparison
// or the footer magic.
//
// The legacy helpers keep RunCheckpoint::save/load on the original
// un-enveloped tensor-container bytes (format compatibility for
// --checkpoint/--resume files) while routing their writes through the
// atomic tmp+rename protocol.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fl/store/io.hpp"
#include "tensor/serialize.hpp"

namespace spatl::fl::store {

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320). `seed` chains partial
/// computations: crc32(b, crc32(a)) == crc32(a ++ b).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

/// Serialize entries into the durable envelope (header + tensor stream +
/// CRC footer).
std::string encode_checkpoint(const std::vector<tensor::NamedTensor>& entries);

/// Parse and fully verify a durable-envelope byte buffer. Throws
/// CheckpointError (carrying `path` for attribution) on any header,
/// structure, or CRC mismatch.
std::vector<tensor::NamedTensor> decode_checkpoint(const std::string& bytes,
                                                   const std::string& path);

/// Legacy checkpoint file (plain tensor container, no envelope), written
/// through the atomic tmp+rename protocol. The final file bytes are
/// identical to the historical direct write.
void save_legacy_checkpoint(const std::string& path,
                            const std::vector<tensor::NamedTensor>& entries);
std::vector<tensor::NamedTensor> load_legacy_checkpoint(
    const std::string& path);

}  // namespace spatl::fl::store
