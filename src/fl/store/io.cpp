#include "fl/store/io.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>

#include "fl/store/error.hpp"

namespace spatl::fl::store {

namespace fs = std::filesystem;

void FileStoreIo::write_file(const std::string& path,
                             const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw CheckpointError(path, "", "cannot open for writing");
  out.write(bytes.data(), std::streamsize(bytes.size()));
  out.flush();
  if (!out) throw CheckpointError(path, "", "write failed");
}

std::string FileStoreIo::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CheckpointError(path, "", "cannot open for reading");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) throw CheckpointError(path, "", "read failed");
  return bytes;
}

void FileStoreIo::rename_file(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    throw CheckpointError(to, "", "rename from " + from + " failed: " +
                                      ec.message());
  }
}

void FileStoreIo::remove_file(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);  // missing file reports success with remove()
  if (ec) throw CheckpointError(path, "", "remove failed: " + ec.message());
}

bool FileStoreIo::exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

void FileStoreIo::create_directories(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw CheckpointError(dir, "", "create_directories failed: " +
                                       ec.message());
  }
}

std::vector<std::string> FileStoreIo::list_dir(const std::string& dir) {
  std::error_code ec;
  std::vector<std::string> names;
  fs::directory_iterator it(dir, ec);
  if (ec) throw CheckpointError(dir, "", "list_dir failed: " + ec.message());
  for (const auto& entry : it) {
    if (entry.is_regular_file()) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

StoreIo& default_store_io() {
  static FileStoreIo io;
  return io;
}

void atomic_write_file(StoreIo& io, const std::string& path,
                       const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  try {
    io.write_file(tmp, bytes);
  } catch (...) {
    try {
      io.remove_file(tmp);
    } catch (...) {
      // Best effort: the original error is the one worth reporting.
    }
    throw;
  }
  io.rename_file(tmp, path);
}

}  // namespace spatl::fl::store
