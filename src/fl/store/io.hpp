// Pluggable storage IO for the durable checkpoint store.
//
// Every byte the store reads or writes flows through a StoreIo, so tests
// and chaos drills can interpose deterministic storage faults (torn writes,
// bit corruption, simulated ENOSPC — see fl/fault.hpp's FaultyStoreIo)
// without touching the store logic, and the store itself stays a pure
// protocol: encode, write-tmp, rename, verify.
//
// The atomic commit protocol lives here: atomic_write_file() writes
// `<path>.tmp`, flushes, then renames over the final path, so a crash (or
// an injected torn write) mid-commit never clobbers the previous good file
// — at worst the rename never happens and the tmp file is garbage.
#pragma once

#include <string>
#include <vector>

namespace spatl::fl::store {

/// Abstract byte-level storage. All methods throw CheckpointError on
/// failure. Implementations need not be thread-safe; the runner drives the
/// store from the round loop only.
class StoreIo {
 public:
  virtual ~StoreIo() = default;

  /// Write `bytes` to `path`, creating or truncating it, and flush.
  virtual void write_file(const std::string& path,
                          const std::string& bytes) = 0;
  /// Read the entire file.
  virtual std::string read_file(const std::string& path) = 0;
  /// Atomically replace `to` with `from` (POSIX rename semantics).
  virtual void rename_file(const std::string& from, const std::string& to) = 0;
  /// Delete `path`; missing files are not an error (idempotent pruning).
  virtual void remove_file(const std::string& path) = 0;
  virtual bool exists(const std::string& path) = 0;
  /// mkdir -p.
  virtual void create_directories(const std::string& dir) = 0;
  /// Regular-file names (not paths) directly inside `dir`, sorted
  /// ascending so scans are deterministic across filesystems.
  virtual std::vector<std::string> list_dir(const std::string& dir) = 0;
};

/// The real filesystem.
class FileStoreIo : public StoreIo {
 public:
  void write_file(const std::string& path, const std::string& bytes) override;
  std::string read_file(const std::string& path) override;
  void rename_file(const std::string& from, const std::string& to) override;
  void remove_file(const std::string& path) override;
  bool exists(const std::string& path) override;
  void create_directories(const std::string& dir) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
};

/// Process-wide default filesystem IO (used when no hook is injected).
StoreIo& default_store_io();

/// Atomic commit: write `<path>.tmp` through `io`, then rename onto `path`.
/// On a write failure the tmp file is removed (best effort) and the error
/// rethrown — the previous contents of `path`, if any, survive untouched.
void atomic_write_file(StoreIo& io, const std::string& path,
                       const std::string& bytes);

}  // namespace spatl::fl::store
