#include "fl/store/store.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "fl/store/error.hpp"
#include "fl/store/format.hpp"
#include "obs/export.hpp"

namespace spatl::fl::store {

namespace {

constexpr const char* kManifestName = "MANIFEST.json";

std::string generation_filename(std::size_t round) {
  std::string digits = std::to_string(round);
  if (digits.size() < 8) digits.insert(0, 8 - digits.size(), '0');
  return "ckpt-" + digits + ".spatl";
}

/// Parse "ckpt-<digits>.spatl"; nullopt for anything else (tmp files, the
/// manifest, stray content).
std::optional<std::size_t> parse_generation(const std::string& name) {
  const std::string prefix = "ckpt-";
  const std::string suffix = ".spatl";
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  std::size_t round = 0;
  for (std::size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    round = round * 10 + std::size_t(c - '0');
  }
  return round;
}

std::string join(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

}  // namespace

CheckpointStore::CheckpointStore(StoreConfig config, StoreIo* io,
                                 obs::JsonlWriter* telemetry)
    : config_(std::move(config)),
      io_(io != nullptr ? io : &default_store_io()),
      telemetry_(telemetry) {}

bool CheckpointStore::commit(std::size_t round, const RunCheckpoint& ckpt) {
  const std::string file = generation_filename(round);
  const std::string path = join(config_.dir, file);
  try {
    io_->create_directories(config_.dir);
    atomic_write_file(*io_, path, encode_checkpoint(ckpt.entries));
    if (config_.verify_on_commit) {
      try {
        decode_checkpoint(io_->read_file(path), path);
      } catch (const CheckpointError&) {
        // Never publish a generation that fails verification: the ladder
        // would only reject it again at recovery.
        io_->remove_file(path);
        throw;
      }
    }
    std::vector<Generation> gens = generations();
    prune(gens);
    if (config_.keep_last > 0 && gens.size() > config_.keep_last) {
      gens.resize(config_.keep_last);
    }
    write_manifest(gens);
    ++commits_;
    return true;
  } catch (const CheckpointError& e) {
    ++commit_failures_;
    common::log_warn("checkpoint commit for round ", round, " failed: ",
                     e.what());
    if (telemetry_ != nullptr) {
      obs::JsonObject rec;
      rec.add("type", "recovery")
          .add("phase", "commit")
          .add("round", std::uint64_t(round))
          .add("path", path)
          .add("ok", false)
          .add("error", e.reason());
      telemetry_->write(rec);
    }
    return false;
  }
}

std::vector<Generation> CheckpointStore::generations() const {
  std::vector<Generation> gens;
  std::vector<std::string> names;
  try {
    names = io_->list_dir(config_.dir);
  } catch (const CheckpointError&) {
    return gens;  // no directory yet = no generations
  }
  for (const std::string& name : names) {
    if (const auto round = parse_generation(name)) {
      gens.push_back({*round, name, join(config_.dir, name)});
    }
  }
  std::sort(gens.begin(), gens.end(),
            [](const Generation& a, const Generation& b) {
              return a.round > b.round;
            });
  return gens;
}

RunCheckpoint CheckpointStore::load(const Generation& gen) const {
  return RunCheckpoint{decode_checkpoint(io_->read_file(gen.path), gen.path)};
}

RecoveryOutcome CheckpointStore::recover_latest(
    const std::function<void(const RunCheckpoint&, const Generation&)>&
        apply) {
  RecoveryOutcome out;
  std::size_t attempt = 0;
  for (const Generation& gen : generations()) {
    ++attempt;
    std::string error;
    try {
      const RunCheckpoint ckpt = load(gen);
      apply(ckpt, gen);
      out.applied = gen;
    } catch (const CheckpointError& e) {
      error = e.reason();
    } catch (const std::exception& e) {
      // Structurally valid file whose contents the restore rejected (e.g. a
      // missing entry or a bad packed chunk) — same ladder step down.
      error = e.what();
    }
    const bool ok = out.applied.has_value();
    if (!ok) {
      ++out.failed_attempts;
      common::log_warn("recovery attempt ", attempt, " from ", gen.path,
                       " failed: ", error);
    }
    if (telemetry_ != nullptr) {
      obs::JsonObject rec;
      rec.add("type", "recovery")
          .add("phase", "load")
          .add("round", std::uint64_t(gen.round))
          .add("path", gen.path)
          .add("attempt", std::uint64_t(attempt))
          .add("ok", ok);
      if (!ok) rec.add("error", error);
      telemetry_->write(rec);
    }
    if (ok) break;
  }
  return out;
}

void CheckpointStore::write_manifest(const std::vector<Generation>& gens) {
  obs::JsonObject manifest;
  manifest.add("format_version", std::uint64_t(1))
      .add("keep_last", std::uint64_t(config_.keep_last));
  std::string arr = "[";
  // Oldest first, matching the order a reader would replay them in.
  for (std::size_t i = gens.size(); i-- > 0;) {
    if (arr.size() > 1) arr += ',';
    arr += obs::JsonObject()
               .add("round", std::uint64_t(gens[i].round))
               .add("file", gens[i].file)
               .str();
  }
  arr += ']';
  manifest.add_raw("generations", arr);
  atomic_write_file(*io_, join(config_.dir, kManifestName),
                    manifest.str() + "\n");
}

void CheckpointStore::prune(const std::vector<Generation>& gens) {
  if (config_.keep_last == 0) return;
  for (std::size_t i = config_.keep_last; i < gens.size(); ++i) {
    io_->remove_file(gens[i].path);
  }
}

}  // namespace spatl::fl::store
