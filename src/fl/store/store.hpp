// Generational durable checkpoint store (DESIGN.md §13).
//
// Each commit writes one round-stamped generation file
// (`ckpt-<round>.spatl`, durable envelope of format.hpp) into a checkpoint
// directory via the atomic tmp+rename protocol, refreshes a small advisory
// manifest, and prunes to the newest keep_last generations. Recovery walks
// the generations newest→oldest, skipping any that fail CRC/structure
// verification (or whose restore callback throws), and emits one
// `"type":"recovery"` telemetry record per attempt — so a torn write or
// bit flip in the newest file degrades recovery to the previous round
// instead of killing the run.
//
// The manifest is advisory only: generation discovery scans the directory
// for well-formed filenames, so a torn manifest write can never block
// recovery.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fl/checkpoint.hpp"
#include "fl/store/io.hpp"

namespace spatl::obs {
class JsonlWriter;
}  // namespace spatl::obs

namespace spatl::fl::store {

struct StoreConfig {
  /// Checkpoint directory (created on demand). Empty = store disabled.
  std::string dir;
  /// Generations retained after each successful commit (0 = unlimited).
  std::size_t keep_last = 3;
  /// Read back and fully verify each committed generation; a verification
  /// failure removes the bad file and fails the commit, so a corrupt
  /// generation is never published. Off = detect at recovery instead.
  bool verify_on_commit = false;

  bool enabled() const { return !dir.empty(); }
};

/// One on-disk checkpoint generation.
struct Generation {
  std::size_t round = 0;
  std::string file;  // filename inside the store directory
  std::string path;  // full path
};

/// Result of a recovery-ladder walk.
struct RecoveryOutcome {
  /// The generation that loaded, verified, and applied; nullopt when every
  /// generation failed (caller falls back to its in-memory baseline).
  std::optional<Generation> applied;
  /// Generations rejected on the way down (corrupt file or failed apply).
  std::size_t failed_attempts = 0;
};

class CheckpointStore {
 public:
  /// `io` null = the real filesystem; `telemetry` null = no records. Both
  /// borrowed; must outlive the store.
  CheckpointStore(StoreConfig config, StoreIo* io = nullptr,
                  obs::JsonlWriter* telemetry = nullptr);

  const StoreConfig& config() const { return config_; }

  /// Commit `ckpt` as the generation for `round`: atomic write, optional
  /// read-back verification, manifest refresh, keep-last pruning. Returns
  /// false — after emitting a "recovery" telemetry record with the typed
  /// failure — when the commit could not be durably published; earlier
  /// generations are untouched either way.
  bool commit(std::size_t round, const RunCheckpoint& ckpt);

  /// On-disk generations, newest first (directory scan; manifest ignored).
  std::vector<Generation> generations() const;

  /// Load and fully verify one generation. Throws CheckpointError.
  RunCheckpoint load(const Generation& gen) const;

  /// Recovery ladder: walk generations newest→oldest; the first one that
  /// decodes, verifies, and survives `apply` wins. One "type":"recovery"
  /// telemetry record per attempt (ok:false carries the typed reason).
  RecoveryOutcome recover_latest(
      const std::function<void(const RunCheckpoint&, const Generation&)>&
          apply);

  std::size_t commits() const { return commits_; }
  std::size_t commit_failures() const { return commit_failures_; }

 private:
  void write_manifest(const std::vector<Generation>& gens);
  void prune(const std::vector<Generation>& gens);

  StoreConfig config_;
  StoreIo* io_;
  obs::JsonlWriter* telemetry_;
  std::size_t commits_ = 0;
  std::size_t commit_failures_ = 0;
};

}  // namespace spatl::fl::store
