#include "graph/compute_graph.hpp"

#include <cmath>

#include "prune/flops.hpp"

namespace spatl::graph {

using models::LayerKind;

ComputeGraph build_compute_graph(const models::SplitModel& model) {
  const auto& layers = model.layers();
  const auto keep = model.gate_keep_fractions();
  const double dense_total =
      std::max(1.0, prune::dense_encoder_flops(layers));

  ComputeGraph g;
  const std::size_t num_nodes = layers.size() + 1;  // +1 input node
  g.node_features = tensor::Tensor({num_nodes, kNumNodeFeatures});
  auto feat = [&](std::size_t node, NodeFeature f) -> float& {
    return g.node_features[node * kNumNodeFeatures + f];
  };

  // Input node: describes the raw image map.
  if (!layers.empty()) {
    feat(0, kLogChannels) =
        float(std::log2(double(layers[0].in_ch) + 1.0) / 10.0);
    feat(0, kLogSpatial) = float(
        std::log2(double(layers[0].in_h) * double(layers[0].in_w) + 1.0) /
        10.0);
    feat(0, kCurrentKeep) = 1.0f;
  }

  g.action_nodes.assign(model.gates().size(), -1);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const auto& l = layers[i];
    const std::size_t node = i + 1;
    feat(node, kDepth) = float(double(i + 1) / double(layers.size()));
    feat(node, kLogChannels) =
        float(std::log2(double(l.out_ch) + 1.0) / 10.0);
    feat(node, kLogSpatial) = float(
        std::log2(double(l.out_h) * double(l.out_w) + 1.0) / 10.0);
    switch (l.kind) {
      case LayerKind::kConv:
      case LayerKind::kDepthwiseConv: feat(node, kIsConv) = 1.0f; break;
      case LayerKind::kBatchNorm: feat(node, kIsBatchNorm) = 1.0f; break;
      case LayerKind::kReLU: feat(node, kIsReLU) = 1.0f; break;
      case LayerKind::kMaxPool:
      case LayerKind::kGlobalAvgPool: feat(node, kIsPool) = 1.0f; break;
      case LayerKind::kAdd: feat(node, kIsAdd) = 1.0f; break;
      case LayerKind::kLinear: break;  // encoders end before linear layers
    }
    feat(node, kKernel) = float(double(l.kernel) / 5.0);
    feat(node, kStride) = float(double(l.stride) / 2.0);
    feat(node, kFlopsShare) =
        float(prune::dense_layer_flops(l) / dense_total);
    const double k =
        l.out_gate >= 0 ? keep[std::size_t(l.out_gate)] : 1.0;
    feat(node, kCurrentKeep) = float(k);

    // Sequential edge from the previous map.
    g.edges.emplace_back(int(node) - 1, int(node));
    // Residual skip edge: the Add also consumes the block's input map.
    if (l.kind == LayerKind::kAdd && l.skip_from >= 0) {
      g.edges.emplace_back(l.skip_from + 1, int(node));
    }
    if (l.out_gate >= 0) {
      g.action_nodes[std::size_t(l.out_gate)] = int(node);
    }
  }
  return g;
}

tensor::Tensor normalized_adjacency(const ComputeGraph& graph) {
  const std::size_t n = graph.num_nodes();
  tensor::Tensor a({n, n});
  // Self-loops + symmetric edges.
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] = 1.0f;
  for (const auto& [src, dst] : graph.edges) {
    a[std::size_t(src) * n + std::size_t(dst)] = 1.0f;
    a[std::size_t(dst) * n + std::size_t(src)] = 1.0f;
  }
  // Row-normalize to mean aggregation.
  for (std::size_t i = 0; i < n; ++i) {
    float row_sum = 0.0f;
    for (std::size_t j = 0; j < n; ++j) row_sum += a[i * n + j];
    const float inv = 1.0f / row_sum;
    for (std::size_t j = 0; j < n; ++j) a[i * n + j] *= inv;
  }
  return a;
}

}  // namespace spatl::graph
