// Simplified computational-graph representation of an encoder (paper §IV-B1).
//
// Nodes are feature maps (one per recorded layer output, plus the input) and
// edges are ML-level operations — conv, batch-norm, ReLU, pooling — with
// residual Adds contributing extra skip edges. The graph is the RL agent's
// environment state: a GNN embeds it and the actor head emits one sparsity
// ratio per prunable (gated) conv node.
#pragma once

#include <cstddef>
#include <vector>

#include "models/split_model.hpp"
#include "tensor/tensor.hpp"

namespace spatl::graph {

/// Per-node feature layout fed to the GNN (all roughly unit-scaled).
enum NodeFeature : std::size_t {
  kDepth = 0,        // position / num_layers
  kLogChannels,      // log2(out_ch) / 10
  kLogSpatial,       // log2(out_h * out_w + 1) / 10
  kIsConv,
  kIsBatchNorm,
  kIsReLU,
  kIsPool,
  kIsAdd,
  kKernel,           // kernel / 5
  kStride,           // stride / 2
  kFlopsShare,       // this op's dense FLOPs / encoder dense FLOPs
  kCurrentKeep,      // keep fraction of the node's out_gate (1 if ungated)
  kNumNodeFeatures,
};

struct ComputeGraph {
  /// (num_nodes, kNumNodeFeatures) feature matrix. Node 0 is the input map;
  /// node i+1 corresponds to models layer i.
  tensor::Tensor node_features;
  /// Directed edges (src, dst) in forward direction; the GNN treats them
  /// bidirectionally.
  std::vector<std::pair<int, int>> edges;
  /// action_nodes[g] = node index whose sparsity action controls gate g.
  std::vector<int> action_nodes;

  std::size_t num_nodes() const { return node_features.dim(0); }
};

/// Build the graph from a model's recorded layer structure and its current
/// gate state. Deterministic: same model state -> same graph.
ComputeGraph build_compute_graph(const models::SplitModel& model);

/// Row-normalized adjacency (with self-loops) as a dense (N, N) matrix for
/// mean-aggregation message passing. Dense is fine: encoder graphs have
/// tens of nodes, not thousands.
tensor::Tensor normalized_adjacency(const ComputeGraph& graph);

}  // namespace spatl::graph
