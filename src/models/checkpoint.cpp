#include "models/checkpoint.hpp"

#include <map>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace spatl::models {

namespace {

/// The architecture tag is stored as a pseudo-tensor of character codes so
/// the checkpoint format stays a flat list of named tensors.
tensor::NamedTensor make_tag(const std::string& arch) {
  tensor::Tensor t({arch.size()});
  for (std::size_t i = 0; i < arch.size(); ++i) {
    t[i] = float(static_cast<unsigned char>(arch[i]));
  }
  return {"__arch__", std::move(t)};
}

std::string parse_tag(const tensor::Tensor& t) {
  std::string arch(t.numel(), '\0');
  for (std::size_t i = 0; i < t.numel(); ++i) {
    arch[i] = char(static_cast<unsigned char>(t[i]));
  }
  return arch;
}

}  // namespace

void save_checkpoint(const std::string& path, SplitModel& model) {
  std::vector<tensor::NamedTensor> entries;
  entries.push_back(make_tag(model.config().arch));
  for (const auto& p : model.all_params()) {
    entries.push_back({p.name, *p.value});
  }
  const auto& bns = model.batch_norms();
  for (std::size_t i = 0; i < bns.size(); ++i) {
    entries.push_back({"__bn_mean__" + std::to_string(i),
                       bns[i]->running_mean()});
    entries.push_back({"__bn_var__" + std::to_string(i),
                       bns[i]->running_var()});
  }
  tensor::save_tensors(path, entries);
}

void load_checkpoint(const std::string& path, SplitModel& model) {
  const auto entries = tensor::load_tensors(path);
  std::map<std::string, const tensor::Tensor*> by_name;
  for (const auto& e : entries) by_name[e.name] = &e.value;

  const auto tag = by_name.find("__arch__");
  if (tag == by_name.end()) {
    throw std::runtime_error("load_checkpoint: missing architecture tag");
  }
  if (parse_tag(*tag->second) != model.config().arch) {
    throw std::runtime_error("load_checkpoint: checkpoint is for '" +
                             parse_tag(*tag->second) + "', model is '" +
                             model.config().arch + "'");
  }
  for (auto& p : model.all_params()) {
    const auto it = by_name.find(p.name);
    if (it == by_name.end()) {
      throw std::runtime_error("load_checkpoint: missing tensor " + p.name);
    }
    if (!it->second->same_shape(*p.value)) {
      throw std::runtime_error("load_checkpoint: shape mismatch for " +
                               p.name);
    }
    *p.value = *it->second;
  }
  const auto& bns = model.batch_norms();
  for (std::size_t i = 0; i < bns.size(); ++i) {
    const auto mean = by_name.find("__bn_mean__" + std::to_string(i));
    const auto var = by_name.find("__bn_var__" + std::to_string(i));
    if (mean == by_name.end() || var == by_name.end()) {
      throw std::runtime_error("load_checkpoint: missing BN statistics");
    }
    bns[i]->running_mean() = *mean->second;
    bns[i]->running_var() = *var->second;
  }
}

}  // namespace spatl::models
