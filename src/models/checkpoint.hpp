// Model checkpointing on top of tensor serialization: parameters AND
// batch-norm running statistics, loadable only into the same architecture.
#pragma once

#include <string>

#include "models/split_model.hpp"

namespace spatl::models {

/// Save every parameter (by its qualified name) plus BN running statistics
/// and an architecture tag.
void save_checkpoint(const std::string& path, SplitModel& model);

/// Restore a checkpoint into `model`. Throws std::runtime_error if the
/// stored architecture tag or any tensor shape does not match.
void load_checkpoint(const std::string& path, SplitModel& model);

}  // namespace spatl::models
