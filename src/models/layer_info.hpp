// Structural description of an encoder, layer by layer.
//
// This is the "simplified computational graph" substrate of the paper
// (§IV-B1): nodes are feature maps, edges are ML-level operations. The model
// builders record one LayerInfo per operation while constructing the
// network; spatl::graph turns the list into the GNN input graph and
// spatl::prune walks it for FLOPs/param accounting under channel gates.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace spatl::models {

enum class LayerKind {
  kConv,
  kDepthwiseConv,
  kBatchNorm,
  kReLU,
  kMaxPool,
  kGlobalAvgPool,
  kLinear,
  kAdd,  // residual join
};

std::string layer_kind_name(LayerKind kind);

struct LayerInfo {
  LayerKind kind = LayerKind::kConv;
  std::size_t in_ch = 0, out_ch = 0;
  std::size_t kernel = 0, stride = 1;
  std::size_t in_h = 0, in_w = 0;
  std::size_t out_h = 0, out_w = 0;
  /// Gate index (into SplitModel::gates) masking this layer's OUTPUT
  /// channels, or -1 if ungated.
  int out_gate = -1;
  /// Gate index masking this layer's INPUT channels, or -1.
  int in_gate = -1;
  /// For kAdd: index of the layer whose output is the skip operand.
  int skip_from = -1;
};

}  // namespace spatl::models
