// Model zoo configuration.
//
// Every architecture in the paper (VGG-11, ResNet-20/32, the pruning-task
// ResNet-56/18, and LEAF's 2-layer CNN) is instantiated from a ModelConfig.
// `input_size` and `width_mult` let benches run width/depth-faithful but
// CPU-sized instances, while `full_scale()` recovers the paper's exact
// parameter counts for byte accounting.
#pragma once

#include <cstddef>
#include <string>

namespace spatl::models {

struct ModelConfig {
  std::string arch = "resnet20";  // resnet20|resnet32|resnet56|resnet18|vgg11|cnn2
  std::size_t input_size = 16;    // square input, pixels
  std::size_t in_channels = 3;
  std::size_t num_classes = 10;
  double width_mult = 1.0;        // scales every channel count (min 4)
  std::size_t predictor_hidden = 64;  // hidden width of the local predictor

  /// The paper-scale instance of the same architecture (CIFAR: 32x32 RGB;
  /// FEMNIST: 28x28 gray, 62 classes). Used for analytic full-scale
  /// communication-byte accounting in Tables I and II.
  ModelConfig full_scale() const {
    ModelConfig c = *this;
    c.width_mult = 1.0;
    if (c.arch == "cnn2") {
      c.input_size = 28;
      c.in_channels = 1;
      c.num_classes = 62;
    } else {
      c.input_size = 32;
      c.in_channels = 3;
      c.num_classes = 10;
    }
    return c;
  }
};

/// Apply the width multiplier with a floor of 4 channels.
std::size_t scaled_width(std::size_t base, double mult);

/// True if `arch` names a known architecture.
bool is_known_arch(const std::string& arch);

}  // namespace spatl::models
