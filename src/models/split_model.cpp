#include "models/split_model.hpp"

#include <map>
#include <stdexcept>

#include "nn/conv.hpp"
#include "nn/depthwise.hpp"
#include "nn/pool.hpp"

namespace spatl::models {

std::string layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv: return "Conv";
    case LayerKind::kDepthwiseConv: return "DepthwiseConv";
    case LayerKind::kBatchNorm: return "BatchNorm";
    case LayerKind::kReLU: return "ReLU";
    case LayerKind::kMaxPool: return "MaxPool";
    case LayerKind::kGlobalAvgPool: return "GlobalAvgPool";
    case LayerKind::kLinear: return "Linear";
    case LayerKind::kAdd: return "Add";
  }
  return "?";
}

std::size_t scaled_width(std::size_t base, double mult) {
  const auto w = static_cast<std::size_t>(double(base) * mult + 0.5);
  return w < 4 ? 4 : w;
}

bool is_known_arch(const std::string& arch) {
  return arch == "resnet20" || arch == "resnet32" || arch == "resnet56" ||
         arch == "resnet18" || arch == "vgg11" || arch == "cnn2" ||
         arch == "mobilenet";
}

nn::Tensor SplitModel::forward(const nn::Tensor& input, bool train) {
  return predictor_->forward(encoder_->forward(input, train), train);
}

nn::Tensor SplitModel::backward(const nn::Tensor& grad_logits) {
  return encoder_->backward(predictor_->backward(grad_logits));
}

nn::Tensor SplitModel::encode(const nn::Tensor& input, bool train) {
  return encoder_->forward(input, train);
}

std::vector<nn::ParamView> SplitModel::all_params() {
  std::vector<nn::ParamView> out;
  encoder_->collect_params("encoder.", out);
  predictor_->collect_params("predictor.", out);
  return out;
}

std::vector<nn::ParamView> SplitModel::encoder_params() {
  std::vector<nn::ParamView> out;
  encoder_->collect_params("encoder.", out);
  return out;
}

std::vector<nn::ParamView> SplitModel::predictor_params() {
  std::vector<nn::ParamView> out;
  predictor_->collect_params("predictor.", out);
  return out;
}

void SplitModel::zero_grad() {
  encoder_->zero_grad();
  predictor_->zero_grad();
}

void SplitModel::init_params(common::Rng& rng) {
  encoder_->init_params(rng);
  predictor_->init_params(rng);
}

void SplitModel::reset_gates() {
  for (auto* g : gates_) g->reset();
}

std::vector<double> SplitModel::gate_keep_fractions() const {
  std::vector<double> out;
  out.reserve(gates_.size());
  for (const auto* g : gates_) out.push_back(g->keep_fraction());
  return out;
}

std::size_t SplitModel::encoder_param_count() {
  return nn::param_count(encoder_params());
}

std::size_t SplitModel::predictor_param_count() {
  return nn::param_count(predictor_params());
}

void copy_full_state(SplitModel& src, SplitModel& dst) {
  nn::unflatten_values(nn::flatten_values(src.all_params()),
                       dst.all_params());
  const auto& sbns = src.batch_norms();
  const auto& dbns = dst.batch_norms();
  if (sbns.size() != dbns.size()) {
    throw std::invalid_argument("copy_full_state: model mismatch");
  }
  for (std::size_t i = 0; i < sbns.size(); ++i) {
    dbns[i]->running_mean() = sbns[i]->running_mean();
    dbns[i]->running_var() = sbns[i]->running_var();
  }
}

// ------------------------------------------------------------ builders ----

namespace {

/// Incrementally records LayerInfo while a builder assembles the encoder.
struct EncoderRecorder {
  std::vector<LayerInfo>& layers;
  std::size_t h, w;  // current spatial size
  std::size_t ch;    // current channel count

  int conv(std::size_t out_ch, std::size_t kernel, std::size_t stride,
           std::size_t pad, int in_gate, int out_gate) {
    LayerInfo li;
    li.kind = LayerKind::kConv;
    li.in_ch = ch;
    li.out_ch = out_ch;
    li.kernel = kernel;
    li.stride = stride;
    li.in_h = h;
    li.in_w = w;
    li.out_h = (h + 2 * pad - kernel) / stride + 1;
    li.out_w = (w + 2 * pad - kernel) / stride + 1;
    li.in_gate = in_gate;
    li.out_gate = out_gate;
    layers.push_back(li);
    h = li.out_h;
    w = li.out_w;
    ch = out_ch;
    return int(layers.size()) - 1;
  }

  int depthwise(std::size_t kernel, std::size_t stride, std::size_t pad,
                int in_gate) {
    LayerInfo li;
    li.kind = LayerKind::kDepthwiseConv;
    li.in_ch = li.out_ch = ch;
    li.kernel = kernel;
    li.stride = stride;
    li.in_h = h;
    li.in_w = w;
    li.out_h = (h + 2 * pad - kernel) / stride + 1;
    li.out_w = (w + 2 * pad - kernel) / stride + 1;
    li.in_gate = in_gate;
    layers.push_back(li);
    h = li.out_h;
    w = li.out_w;
    return int(layers.size()) - 1;
  }

  int simple(LayerKind kind) {
    LayerInfo li;
    li.kind = kind;
    li.in_ch = li.out_ch = ch;
    li.in_h = li.out_h = h;
    li.in_w = li.out_w = w;
    layers.push_back(li);
    return int(layers.size()) - 1;
  }

  int maxpool(std::size_t kernel) {
    LayerInfo li;
    li.kind = LayerKind::kMaxPool;
    li.in_ch = li.out_ch = ch;
    li.kernel = kernel;
    li.stride = kernel;
    li.in_h = h;
    li.in_w = w;
    li.out_h = (h - kernel) / kernel + 1;
    li.out_w = (w - kernel) / kernel + 1;
    layers.push_back(li);
    h = li.out_h;
    w = li.out_w;
    return int(layers.size()) - 1;
  }

  int add(int skip_from) {
    LayerInfo li;
    li.kind = LayerKind::kAdd;
    li.in_ch = li.out_ch = ch;
    li.in_h = li.out_h = h;
    li.in_w = li.out_w = w;
    li.skip_from = skip_from;
    layers.push_back(li);
    return int(layers.size()) - 1;
  }
};

struct BuilderContext {
  nn::Sequential& enc;
  nn::Sequential& pred;
  std::vector<nn::ChannelGate*>& gates;
  std::vector<nn::Conv2d*>& gate_convs;
  std::vector<models::SplitModel::ConvBinding>& conv_bindings;
  std::vector<nn::BatchNorm2d*>& bns;
  EncoderRecorder rec;
};

void build_resnet(BuilderContext& ctx, const ModelConfig& cfg,
                  const std::vector<std::size_t>& blocks_per_stage,
                  const std::vector<std::size_t>& stage_widths) {
  const std::size_t w0 = scaled_width(stage_widths[0], cfg.width_mult);
  auto* stem_conv = ctx.enc.emplace<nn::Conv2d>(cfg.in_channels, w0, 3, 1, 1);
  auto* stem_bn = ctx.enc.emplace<nn::BatchNorm2d>(w0);
  auto* stem_gate = ctx.enc.emplace<nn::ChannelGate>(w0);
  ctx.enc.emplace<nn::ReLU>();
  ctx.gates.push_back(stem_gate);
  ctx.gate_convs.push_back(stem_conv);
  ctx.bns.push_back(stem_bn);
  const int stem_gate_idx = 0;
  ctx.conv_bindings.push_back({stem_conv, -1, stem_gate_idx});
  ctx.rec.conv(w0, 3, 1, 1, /*in_gate=*/-1, /*out_gate=*/stem_gate_idx);
  ctx.rec.simple(LayerKind::kBatchNorm);
  ctx.rec.simple(LayerKind::kReLU);

  int prev_out_gate = stem_gate_idx;  // gate masking the current trunk output
  for (std::size_t s = 0; s < blocks_per_stage.size(); ++s) {
    const std::size_t width = scaled_width(stage_widths[s], cfg.width_mult);
    for (std::size_t b = 0; b < blocks_per_stage[s]; ++b) {
      const std::size_t stride = (s > 0 && b == 0) ? 2 : 1;
      auto* block = ctx.enc.emplace<nn::BasicBlock>(ctx.rec.ch, width, stride);
      const int gate_idx = int(ctx.gates.size());
      ctx.gates.push_back(&block->gate());
      ctx.gate_convs.push_back(&block->conv1());
      ctx.bns.push_back(&block->bn1());
      ctx.bns.push_back(&block->bn2());
      if (block->has_projection()) ctx.bns.push_back(block->proj_bn());
      // Structural record: conv1 -> bn -> relu -> conv2 -> bn -> add.
      const int block_input_layer = int(ctx.rec.layers.size()) - 1;
      ctx.rec.conv(width, 3, stride, 1, prev_out_gate, gate_idx);
      ctx.rec.simple(LayerKind::kBatchNorm);
      ctx.rec.simple(LayerKind::kReLU);
      ctx.rec.conv(width, 3, 1, 1, gate_idx, -1);
      ctx.rec.simple(LayerKind::kBatchNorm);
      ctx.rec.add(block_input_layer);
      ctx.conv_bindings.push_back({&block->conv1(), prev_out_gate, gate_idx});
      ctx.conv_bindings.push_back({&block->conv2(), gate_idx, -1});
      prev_out_gate = -1;  // block output is ungated
    }
  }
  ctx.enc.emplace<nn::GlobalAvgPool>();
  ctx.rec.simple(LayerKind::kGlobalAvgPool);

  const std::size_t emb = ctx.rec.ch;
  ctx.pred.emplace<nn::Linear>(emb, cfg.predictor_hidden);
  ctx.pred.emplace<nn::ReLU>();
  ctx.pred.emplace<nn::Linear>(cfg.predictor_hidden, cfg.num_classes);
}

void build_vgg11(BuilderContext& ctx, const ModelConfig& cfg) {
  // 'M' entries are max-pools; 0 widths denote them. Pools are applied only
  // while the spatial size admits them (small bench inputs skip the last).
  const std::vector<std::size_t> plan = {64, 0,   128, 0,   256, 256,
                                         0,  512, 512, 0,   512, 512, 0};
  int prev_gate = -1;
  for (std::size_t entry : plan) {
    if (entry == 0) {
      if (ctx.rec.h >= 2 && ctx.rec.w >= 2) {
        ctx.enc.emplace<nn::MaxPool2d>(2);
        ctx.rec.maxpool(2);
      }
      continue;
    }
    const std::size_t width = scaled_width(entry, cfg.width_mult);
    auto* conv = ctx.enc.emplace<nn::Conv2d>(ctx.rec.ch, width, 3, 1, 1);
    auto* bn = ctx.enc.emplace<nn::BatchNorm2d>(width);
    auto* gate = ctx.enc.emplace<nn::ChannelGate>(width);
    ctx.enc.emplace<nn::ReLU>();
    const int gate_idx = int(ctx.gates.size());
    ctx.gates.push_back(gate);
    ctx.gate_convs.push_back(conv);
    ctx.conv_bindings.push_back({conv, prev_gate, gate_idx});
    ctx.bns.push_back(bn);
    ctx.rec.conv(width, 3, 1, 1, prev_gate, gate_idx);
    ctx.rec.simple(LayerKind::kBatchNorm);
    ctx.rec.simple(LayerKind::kReLU);
    prev_gate = gate_idx;
  }
  ctx.enc.emplace<nn::Flatten>();
  const std::size_t features = ctx.rec.ch * ctx.rec.h * ctx.rec.w;

  ctx.pred.emplace<nn::Linear>(features, cfg.predictor_hidden * 2);
  ctx.pred.emplace<nn::ReLU>();
  ctx.pred.emplace<nn::Dropout>(0.5f);
  ctx.pred.emplace<nn::Linear>(cfg.predictor_hidden * 2, cfg.num_classes);
}

void build_cnn2(BuilderContext& ctx, const ModelConfig& cfg) {
  const std::size_t w1 = scaled_width(32, cfg.width_mult);
  const std::size_t w2 = scaled_width(64, cfg.width_mult);

  auto* conv1 = ctx.enc.emplace<nn::Conv2d>(cfg.in_channels, w1, 5, 1, 2,
                                            /*bias=*/true);
  auto* g1 = ctx.enc.emplace<nn::ChannelGate>(w1);
  ctx.enc.emplace<nn::ReLU>();
  ctx.enc.emplace<nn::MaxPool2d>(2);
  ctx.gates.push_back(g1);
  ctx.gate_convs.push_back(conv1);
  ctx.conv_bindings.push_back({conv1, -1, 0});
  ctx.rec.conv(w1, 5, 1, 2, -1, 0);
  ctx.rec.simple(LayerKind::kReLU);
  ctx.rec.maxpool(2);

  auto* conv2 = ctx.enc.emplace<nn::Conv2d>(w1, w2, 5, 1, 2, /*bias=*/true);
  auto* g2 = ctx.enc.emplace<nn::ChannelGate>(w2);
  ctx.enc.emplace<nn::ReLU>();
  ctx.enc.emplace<nn::MaxPool2d>(2);
  ctx.gates.push_back(g2);
  ctx.gate_convs.push_back(conv2);
  ctx.conv_bindings.push_back({conv2, 0, 1});
  ctx.rec.conv(w2, 5, 1, 2, 0, 1);
  ctx.rec.simple(LayerKind::kReLU);
  ctx.rec.maxpool(2);

  ctx.enc.emplace<nn::Flatten>();
  const std::size_t features = ctx.rec.ch * ctx.rec.h * ctx.rec.w;

  ctx.pred.emplace<nn::Linear>(features, cfg.predictor_hidden * 2, true);
  ctx.pred.emplace<nn::ReLU>();
  ctx.pred.emplace<nn::Linear>(cfg.predictor_hidden * 2, cfg.num_classes,
                               true);
}

void build_mobilenet(BuilderContext& ctx, const ModelConfig& cfg) {
  // CIFAR-style MobileNet-v1: stem conv, then depthwise-separable blocks
  // (depthwise 3x3 -> BN -> ReLU -> pointwise 1x1 -> BN -> gate -> ReLU).
  // The prunable point of each block is the pointwise conv's output.
  const std::size_t stem = scaled_width(32, cfg.width_mult);
  auto* stem_conv = ctx.enc.emplace<nn::Conv2d>(cfg.in_channels, stem, 3, 1, 1);
  auto* stem_bn = ctx.enc.emplace<nn::BatchNorm2d>(stem);
  auto* stem_gate = ctx.enc.emplace<nn::ChannelGate>(stem);
  ctx.enc.emplace<nn::ReLU>();
  ctx.gates.push_back(stem_gate);
  ctx.gate_convs.push_back(stem_conv);
  ctx.conv_bindings.push_back({stem_conv, -1, 0});
  ctx.bns.push_back(stem_bn);
  ctx.rec.conv(stem, 3, 1, 1, -1, 0);
  ctx.rec.simple(LayerKind::kBatchNorm);
  ctx.rec.simple(LayerKind::kReLU);

  struct Block { std::size_t width; std::size_t stride; };
  const std::vector<Block> plan = {{64, 1},  {128, 2}, {128, 1},
                                   {256, 2}, {256, 1}, {512, 2}};
  int prev_gate = 0;
  for (const auto& b : plan) {
    // Depthwise stage on the (gated) current channels.
    auto* dw = ctx.enc.emplace<nn::DepthwiseConv2d>(ctx.rec.ch, 3, b.stride, 1);
    auto* dw_bn = ctx.enc.emplace<nn::BatchNorm2d>(ctx.rec.ch);
    ctx.enc.emplace<nn::ReLU>();
    ctx.bns.push_back(dw_bn);
    (void)dw;
    ctx.rec.depthwise(3, b.stride, 1, prev_gate);
    ctx.rec.simple(LayerKind::kBatchNorm);
    ctx.rec.simple(LayerKind::kReLU);
    // Pointwise expansion, gated.
    const std::size_t width = scaled_width(b.width, cfg.width_mult);
    auto* pw = ctx.enc.emplace<nn::Conv2d>(ctx.rec.ch, width, 1, 1, 0);
    auto* pw_bn = ctx.enc.emplace<nn::BatchNorm2d>(width);
    auto* gate = ctx.enc.emplace<nn::ChannelGate>(width);
    ctx.enc.emplace<nn::ReLU>();
    const int gate_idx = int(ctx.gates.size());
    ctx.gates.push_back(gate);
    ctx.gate_convs.push_back(pw);
    ctx.conv_bindings.push_back({pw, prev_gate, gate_idx});
    ctx.bns.push_back(pw_bn);
    ctx.rec.conv(width, 1, 1, 0, prev_gate, gate_idx);
    ctx.rec.simple(LayerKind::kBatchNorm);
    ctx.rec.simple(LayerKind::kReLU);
    prev_gate = gate_idx;
  }
  ctx.enc.emplace<nn::GlobalAvgPool>();
  ctx.rec.simple(LayerKind::kGlobalAvgPool);

  ctx.pred.emplace<nn::Linear>(ctx.rec.ch, cfg.predictor_hidden);
  ctx.pred.emplace<nn::ReLU>();
  ctx.pred.emplace<nn::Linear>(cfg.predictor_hidden, cfg.num_classes);
}

}  // namespace

SplitModel build_model(const ModelConfig& config, common::Rng& rng) {
  if (!is_known_arch(config.arch)) {
    throw std::invalid_argument("build_model: unknown arch '" + config.arch +
                                "'");
  }
  SplitModel m;
  m.config_ = config;
  m.encoder_ = std::make_shared<nn::Sequential>();
  m.predictor_ = std::make_shared<nn::Sequential>();

  BuilderContext ctx{
      *m.encoder_,
      *m.predictor_,
      m.gates_,
      m.gate_convs_,
      m.conv_bindings_,
      m.bns_,
      EncoderRecorder{m.layers_, config.input_size, config.input_size,
                      config.in_channels}};

  if (config.arch == "resnet20") {
    build_resnet(ctx, config, {3, 3, 3}, {16, 32, 64});
  } else if (config.arch == "resnet32") {
    build_resnet(ctx, config, {5, 5, 5}, {16, 32, 64});
  } else if (config.arch == "resnet56") {
    build_resnet(ctx, config, {9, 9, 9}, {16, 32, 64});
  } else if (config.arch == "resnet18") {
    build_resnet(ctx, config, {2, 2, 2, 2}, {16, 32, 64, 128});
  } else if (config.arch == "vgg11") {
    build_vgg11(ctx, config);
  } else if (config.arch == "mobilenet") {
    build_mobilenet(ctx, config);
  } else {
    build_cnn2(ctx, config);
  }
  m.init_params(rng);
  return m;
}

std::size_t full_scale_encoder_params(const std::string& arch) {
  static std::map<std::string, std::size_t> cache;
  auto it = cache.find(arch);
  if (it != cache.end()) return it->second;
  ModelConfig cfg;
  cfg.arch = arch;
  cfg = cfg.full_scale();
  common::Rng rng(1);
  SplitModel m = build_model(cfg, rng);
  const std::size_t n = m.encoder_param_count();
  cache[arch] = n;
  return n;
}

}  // namespace spatl::models
