// SplitModel: the encoder/predictor decomposition at the heart of SPATL.
//
// The encoder embeds the input and is the only part shared with the FL
// server; the predictor is the locally-customized head that transfers the
// encoder's knowledge to each client's non-IID data (paper §IV-A). Both are
// Sequential modules; parameters are name-prefixed "encoder." and
// "predictor." so FL code can split them by prefix.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "models/layer_info.hpp"
#include "models/model_config.hpp"
#include "nn/batchnorm.hpp"
#include "nn/layers.hpp"
#include "nn/sequential.hpp"

namespace spatl::models {

class SplitModel {
 public:
  SplitModel() = default;

  const ModelConfig& config() const { return config_; }

  /// Full forward: predictor(encoder(x)). Returns logits (N, classes).
  nn::Tensor forward(const nn::Tensor& input, bool train);

  /// Backward from d(loss)/d(logits) through predictor then encoder.
  /// Returns d(loss)/d(input).
  nn::Tensor backward(const nn::Tensor& grad_logits);

  /// Encoder-only forward (the embedding shared across clients).
  nn::Tensor encode(const nn::Tensor& input, bool train);

  std::vector<nn::ParamView> all_params();
  std::vector<nn::ParamView> encoder_params();
  std::vector<nn::ParamView> predictor_params();

  void zero_grad();
  void init_params(common::Rng& rng);

  nn::Sequential& encoder() { return *encoder_; }
  nn::Sequential& predictor() { return *predictor_; }

  /// Prunable points, in encoder order. gates()[i] masks the output
  /// channels of the conv whose LayerInfo has out_gate == i.
  const std::vector<nn::ChannelGate*>& gates() const { return gates_; }
  /// gate_convs()[i] is the convolution whose output channels gates()[i]
  /// masks — the weights channel-saliency scores are computed from.
  const std::vector<nn::Conv2d*>& gate_convs() const { return gate_convs_; }

  /// Which gates bound each conv's input/output channels (-1 = ungated).
  /// SPATL's salient-parameter upload masks conv weight rows by the output
  /// gate and column blocks by the input gate.
  struct ConvBinding {
    nn::Conv2d* conv = nullptr;
    int in_gate = -1;
    int out_gate = -1;
  };
  const std::vector<ConvBinding>& conv_bindings() const {
    return conv_bindings_;
  }
  void reset_gates();
  /// Per-gate keep fractions (1.0 = dense).
  std::vector<double> gate_keep_fractions() const;

  /// All batch-norm layers (for copying running statistics).
  const std::vector<nn::BatchNorm2d*>& batch_norms() const { return bns_; }

  /// Structural description of the encoder (see layer_info.hpp).
  const std::vector<LayerInfo>& layers() const { return layers_; }

  std::size_t encoder_param_count();
  std::size_t predictor_param_count();

 private:
  friend SplitModel build_model(const ModelConfig& config, common::Rng& rng);

  ModelConfig config_;
  std::shared_ptr<nn::Sequential> encoder_;
  std::shared_ptr<nn::Sequential> predictor_;
  std::vector<nn::ChannelGate*> gates_;
  std::vector<nn::Conv2d*> gate_convs_;
  std::vector<ConvBinding> conv_bindings_;
  std::vector<nn::BatchNorm2d*> bns_;
  std::vector<LayerInfo> layers_;
};

/// Construct and He-initialize a model from a config. Throws on unknown
/// architecture names.
SplitModel build_model(const ModelConfig& config, common::Rng& rng);

/// Copy every parameter AND batch-norm running statistic from src to dst.
/// Both must come from the same ModelConfig.
void copy_full_state(SplitModel& src, SplitModel& dst);

/// Parameter count of the paper-scale (32x32 / 28x28, width 1.0) instance —
/// used for analytic communication-byte accounting without instantiating
/// the full network weights repeatedly.
std::size_t full_scale_encoder_params(const std::string& arch);

}  // namespace spatl::models
