#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace spatl::nn {

BatchNorm2d::BatchNorm2d(std::size_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_({channels}, 1.0f),
      ggamma_({channels}),
      beta_({channels}),
      gbeta_({channels}),
      running_mean_({channels}),
      running_var_({channels}, 1.0f) {
  SPATL_DCHECK(std::isfinite(momentum_) && momentum_ >= 0.0f &&
               momentum_ <= 1.0f);
  SPATL_DCHECK(std::isfinite(eps_) && eps_ > 0.0f);
}

void BatchNorm2d::init_params(common::Rng& /*rng*/) {
  gamma_.fill(1.0f);
  beta_.zero();
  running_mean_.zero();
  running_var_.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& input, bool train) {
  if (input.rank() != 4 || input.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d: expected (N," +
                                std::to_string(channels_) + ",H,W)");
  }
  const std::size_t n = input.dim(0);
  const std::size_t hw = input.dim(2) * input.dim(3);
  const std::size_t count = n * hw;
  Tensor out(input.shape());
  cached_train_ = train;

  if (train) {
    cached_xhat_ = Tensor(input.shape());
    cached_inv_std_.assign(channels_, 0.0f);
    cached_count_ = count;
    common::parallel_for(
        0, channels_,
        [&](std::size_t c) {
          // Batch mean/variance for channel c.
          double mean = 0.0;
          for (std::size_t i = 0; i < n; ++i) {
            const float* plane = input.data() + (i * channels_ + c) * hw;
            for (std::size_t p = 0; p < hw; ++p) mean += plane[p];
          }
          mean /= double(count);
          double var = 0.0;
          for (std::size_t i = 0; i < n; ++i) {
            const float* plane = input.data() + (i * channels_ + c) * hw;
            for (std::size_t p = 0; p < hw; ++p) {
              const double d = plane[p] - mean;
              var += d * d;
            }
          }
          var /= double(count);  // biased, matching framework convention
          const float inv_std = 1.0f / std::sqrt(float(var) + eps_);
          cached_inv_std_[c] = inv_std;
          const float g = gamma_[c], b = beta_[c];
          for (std::size_t i = 0; i < n; ++i) {
            const float* plane = input.data() + (i * channels_ + c) * hw;
            float* xhat = cached_xhat_.data() + (i * channels_ + c) * hw;
            float* o = out.data() + (i * channels_ + c) * hw;
            for (std::size_t p = 0; p < hw; ++p) {
              xhat[p] = (plane[p] - float(mean)) * inv_std;
              o[p] = g * xhat[p] + b;
            }
          }
          running_mean_[c] =
              (1.0f - momentum_) * running_mean_[c] + momentum_ * float(mean);
          running_var_[c] =
              (1.0f - momentum_) * running_var_[c] + momentum_ * float(var);
        },
        1);
  } else {
    common::parallel_for(
        0, channels_,
        [&](std::size_t c) {
          const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
          const float g = gamma_[c], b = beta_[c];
          const float mean = running_mean_[c];
          for (std::size_t i = 0; i < n; ++i) {
            const float* plane = input.data() + (i * channels_ + c) * hw;
            float* o = out.data() + (i * channels_ + c) * hw;
            for (std::size_t p = 0; p < hw; ++p) {
              o[p] = g * (plane[p] - mean) * inv_std + b;
            }
          }
        },
        1);
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  if (!cached_train_) {
    throw std::logic_error("BatchNorm2d::backward requires a train forward");
  }
  SPATL_DCHECK_SHAPE(grad_output.shape(), cached_xhat_.shape());
  const std::size_t n = grad_output.dim(0);
  const std::size_t hw = grad_output.dim(2) * grad_output.dim(3);
  const std::size_t count = cached_count_;
  Tensor dx(grad_output.shape());
  common::parallel_for(
      0, channels_,
      [&](std::size_t c) {
        // Standard batch-norm adjoint:
        // dxhat = dy * gamma
        // dx = inv_std/m * (m*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
        double sum_dy = 0.0, sum_dy_xhat = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const float* gy = grad_output.data() + (i * channels_ + c) * hw;
          const float* xh = cached_xhat_.data() + (i * channels_ + c) * hw;
          for (std::size_t p = 0; p < hw; ++p) {
            sum_dy += gy[p];
            sum_dy_xhat += double(gy[p]) * xh[p];
          }
        }
        ggamma_[c] += float(sum_dy_xhat);
        gbeta_[c] += float(sum_dy);
        const float g = gamma_[c];
        const float inv_std = cached_inv_std_[c];
        const float inv_m = 1.0f / float(count);
        for (std::size_t i = 0; i < n; ++i) {
          const float* gy = grad_output.data() + (i * channels_ + c) * hw;
          const float* xh = cached_xhat_.data() + (i * channels_ + c) * hw;
          float* d = dx.data() + (i * channels_ + c) * hw;
          for (std::size_t p = 0; p < hw; ++p) {
            const float dxhat = gy[p] * g;
            d[p] = inv_std *
                   (dxhat - inv_m * (float(sum_dy) * g +
                                     xh[p] * float(sum_dy_xhat) * g));
          }
        }
      },
      1);
  return dx;
}

void BatchNorm2d::collect_params(const std::string& prefix,
                                 std::vector<ParamView>& out) {
  out.push_back({prefix + "gamma", &gamma_, &ggamma_});
  out.push_back({prefix + "beta", &beta_, &gbeta_});
}

}  // namespace spatl::nn
