// BatchNorm2d with running statistics for eval mode.
#pragma once

#include "nn/module.hpp"

namespace spatl::nn {

/// Per-channel batch normalization over (N, C, H, W). Train mode normalizes
/// with batch statistics and updates exponential running stats; eval mode
/// uses the running stats. Gamma/beta are learnable.
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::size_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(const std::string& prefix,
                      std::vector<ParamView>& out) override;
  void init_params(common::Rng& rng) override;
  std::string type_name() const override { return "BatchNorm2d"; }

  std::size_t channels() const { return channels_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

 private:
  std::size_t channels_;
  float momentum_, eps_;
  Tensor gamma_, ggamma_;
  Tensor beta_, gbeta_;
  Tensor running_mean_, running_var_;
  // Caches for backward (train-mode forward only).
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  std::size_t cached_count_ = 0;  // N*H*W per channel
  bool cached_train_ = false;
};

}  // namespace spatl::nn
