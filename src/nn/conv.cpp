#include "nn/conv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace spatl::nn {

namespace {

// (rows=N*oh*ow, C) row-major -> (N, C, oh, ow).
void rows_to_nchw(const Tensor& rows, std::size_t batch, std::size_t channels,
                  std::size_t oh, std::size_t ow, Tensor& out) {
  const tensor::Shape shape{batch, channels, oh, ow};
  if (out.shape() != shape) out = Tensor(shape);
  const float* src = rows.data();
  float* dst = out.data();
  const std::size_t hw = oh * ow;
  common::parallel_for(
      0, batch,
      [&](std::size_t n) {
        const float* src_n = src + n * hw * channels;
        float* dst_n = dst + n * channels * hw;
        for (std::size_t p = 0; p < hw; ++p) {
          const float* row = src_n + p * channels;
          for (std::size_t c = 0; c < channels; ++c) {
            dst_n[c * hw + p] = row[c];
          }
        }
      },
      1);
}

// Inverse of rows_to_nchw.
void nchw_to_rows(const Tensor& nchw, Tensor& rows) {
  const std::size_t batch = nchw.dim(0), channels = nchw.dim(1);
  const std::size_t hw = nchw.dim(2) * nchw.dim(3);
  const tensor::Shape shape{batch * hw, channels};
  if (rows.shape() != shape) rows = Tensor(shape);
  const float* src = nchw.data();
  float* dst = rows.data();
  common::parallel_for(
      0, batch,
      [&](std::size_t n) {
        const float* src_n = src + n * channels * hw;
        float* dst_n = dst + n * hw * channels;
        for (std::size_t c = 0; c < channels; ++c) {
          const float* plane = src_n + c * hw;
          for (std::size_t p = 0; p < hw; ++p) {
            dst_n[p * channels + c] = plane[p];
          }
        }
      },
      1);
}

}  // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias),
      w_({out_channels, in_channels * kernel * kernel}),
      gw_({out_channels, in_channels * kernel * kernel}),
      b_(bias ? Tensor({out_channels}) : Tensor()),
      gb_(bias ? Tensor({out_channels}) : Tensor()) {}

void Conv2d::init_params(common::Rng& rng) {
  // He-normal over fan-in, the standard init for ReLU conv trunks.
  const float fan_in = float(in_channels_ * kernel_ * kernel_);
  const float stddev = std::sqrt(2.0f / fan_in);
  for (auto& v : w_.storage()) v = rng.normal_float(0.0f, stddev);
  if (has_bias_) b_.zero();
}

Tensor Conv2d::forward(const Tensor& input, bool /*train*/) {
  if (input.rank() != 4 || input.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2d: expected (N," +
                                std::to_string(in_channels_) + ",H,W), got " +
                                tensor::shape_to_string(input.shape()));
  }
  cached_batch_ = input.dim(0);
  cached_geom_ = tensor::Conv2dGeom{in_channels_, input.dim(2), input.dim(3),
                                    kernel_,      stride_,      pad_};
  tensor::im2col(input, cached_geom_, cached_cols_);
  Tensor rows;
  // The heavy lifting is one GEMM; it dispatches through the active compute
  // backend (tensor/backend.hpp). Everything around it — im2col, the bias
  // add, the layout shuffle — is pure data movement plus independent
  // per-element adds, so it is backend-agnostic and bit-stable.
  tensor::matmul_nt(cached_cols_, w_, rows);  // (rows, out)
  if (has_bias_) {
    float* p = rows.data();
    const std::size_t nrows = rows.dim(0);
    const std::size_t oc = out_channels_;
    const float* bias = b_.data();
    // Each output row is touched by exactly one chunk, and each element
    // receives a single add, so the result is bitwise independent of the
    // chunking (no reduction crosses a row).
    common::parallel_for_ranges(
        0, nrows,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t r = lo; r < hi; ++r) {
            float* row = p + r * oc;
            for (std::size_t c = 0; c < oc; ++c) row[c] += bias[c];
          }
        },
        /*grain=*/std::max<std::size_t>(1, 4096 / std::max<std::size_t>(1, oc)));
  }
  Tensor out;
  rows_to_nchw(rows, cached_batch_, out_channels_, cached_geom_.out_h(),
               cached_geom_.out_w(), out);
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  SPATL_DCHECK_SHAPE(grad_output.shape(),
                     (tensor::Shape{cached_batch_, out_channels_,
                                    cached_geom_.out_h(),
                                    cached_geom_.out_w()}));
  Tensor grows;
  nchw_to_rows(grad_output, grows);  // (rows, out)
  // dW += dRows^T * cols
  Tensor dw;
  tensor::matmul_tn(grows, cached_cols_, dw);
  gw_ += dw;
  if (has_bias_) {
    const float* g = grows.data();
    const std::size_t nrows = grows.dim(0);
    for (std::size_t r = 0; r < nrows; ++r) {
      for (std::size_t c = 0; c < out_channels_; ++c) {
        gb_[c] += g[r * out_channels_ + c];
      }
    }
  }
  // dCols = dRows * W ; dX = col2im(dCols)
  Tensor dcols;
  tensor::matmul(grows, w_, dcols);
  Tensor dx;
  tensor::col2im(dcols, cached_geom_, cached_batch_, dx);
  return dx;
}

void Conv2d::collect_params(const std::string& prefix,
                            std::vector<ParamView>& out) {
  out.push_back({prefix + "weight", &w_, &gw_});
  if (has_bias_) out.push_back({prefix + "bias", &b_, &gb_});
}

}  // namespace spatl::nn
