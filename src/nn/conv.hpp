// 2-D convolution via im2col + GEMM.
#pragma once

#include "nn/module.hpp"
#include "tensor/ops.hpp"

namespace spatl::nn {

/// Conv2d with square kernels, configurable stride/padding, NCHW layout.
/// Weight is stored (out_channels, in_channels * k * k) so that forward is a
/// single GEMM over im2col columns.
class Conv2d : public Module {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride = 1, std::size_t pad = 1, bool bias = false);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(const std::string& prefix,
                      std::vector<ParamView>& out) override;
  void init_params(common::Rng& rng) override;
  std::string type_name() const override { return "Conv2d"; }

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel() const { return kernel_; }
  std::size_t stride() const { return stride_; }
  std::size_t pad() const { return pad_; }
  Tensor& weight() { return w_; }
  const Tensor& weight() const { return w_; }

 private:
  std::size_t in_channels_, out_channels_, kernel_, stride_, pad_;
  bool has_bias_;
  Tensor w_, gw_;  // (out, in*k*k)
  Tensor b_, gb_;  // (out)
  Tensor cached_cols_;
  tensor::Conv2dGeom cached_geom_;
  std::size_t cached_batch_ = 0;
};

}  // namespace spatl::nn
