#include "nn/depthwise.hpp"

#include <cmath>
#include <stdexcept>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "tensor/ops.hpp"

namespace spatl::nn {

DepthwiseConv2d::DepthwiseConv2d(std::size_t channels, std::size_t kernel,
                                 std::size_t stride, std::size_t pad)
    : channels_(channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      w_({channels, kernel * kernel}),
      gw_({channels, kernel * kernel}) {}

void DepthwiseConv2d::init_params(common::Rng& rng) {
  const float stddev = std::sqrt(2.0f / float(kernel_ * kernel_));
  for (auto& v : w_.storage()) v = rng.normal_float(0.0f, stddev);
}

Tensor DepthwiseConv2d::forward(const Tensor& input, bool /*train*/) {
  if (input.rank() != 4 || input.dim(1) != channels_) {
    throw std::invalid_argument("DepthwiseConv2d: expected (N," +
                                std::to_string(channels_) + ",H,W)");
  }
  cached_input_ = input;
  const std::size_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::size_t oh = (h + 2 * pad_ - kernel_) / stride_ + 1;
  const std::size_t ow = (w + 2 * pad_ - kernel_) / stride_ + 1;
  Tensor out({n, channels_, oh, ow});
  const float* in = input.data();
  float* o = out.data();
  common::parallel_for(
      0, n * channels_,
      [&](std::size_t plane) {
        const std::size_t c = plane % channels_;
        const float* src = in + plane * h * w;
        const float* filt = w_.data() + c * kernel_ * kernel_;
        float* dst = o + plane * oh * ow;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            double acc = 0.0;
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              const std::ptrdiff_t iy =
                  std::ptrdiff_t(oy * stride_ + ky) - std::ptrdiff_t(pad_);
              if (iy < 0 || iy >= std::ptrdiff_t(h)) continue;
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::ptrdiff_t ix =
                    std::ptrdiff_t(ox * stride_ + kx) - std::ptrdiff_t(pad_);
                if (ix < 0 || ix >= std::ptrdiff_t(w)) continue;
                acc += double(filt[ky * kernel_ + kx]) *
                       src[std::size_t(iy) * w + std::size_t(ix)];
              }
            }
            dst[oy * ow + ox] = float(acc);
          }
        }
      },
      1);
  return out;
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_output) {
  SPATL_DCHECK(grad_output.rank() == 4 &&
               grad_output.dim(0) == cached_input_.dim(0) &&
               grad_output.dim(1) == channels_);
  const std::size_t n = cached_input_.dim(0);
  const std::size_t h = cached_input_.dim(2), w = cached_input_.dim(3);
  const std::size_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  Tensor dx(cached_input_.shape());
  const float* in = cached_input_.data();
  const float* go = grad_output.data();
  float* dxp = dx.data();
  // Parallelize over channels: each channel owns its filter gradient, and
  // input-gradient planes are channel-disjoint, so the loop is race-free.
  common::parallel_for(
      0, channels_,
      [&](std::size_t c) {
        const float* filt = w_.data() + c * kernel_ * kernel_;
        float* gfilt = gw_.data() + c * kernel_ * kernel_;
        // The gv == 0 skip below elides both gv * src (filter grad) and
        // gv * filt (input grad) terms, so it is only IEEE-safe when this
        // channel's filter and the image plane are finite — otherwise
        // 0 * NaN/Inf must be formed and propagated (same contract as the
        // GEMM pruned-row elision, tensor/ops.hpp).
        const bool filt_finite = tensor::all_finite(filt, kernel_ * kernel_);
        for (std::size_t img = 0; img < n; ++img) {
          const std::size_t plane = img * channels_ + c;
          const float* src = in + plane * h * w;
          const float* g = go + plane * oh * ow;
          float* d = dxp + plane * h * w;
          const bool may_skip =
              filt_finite && tensor::all_finite(src, h * w);
          for (std::size_t oy = 0; oy < oh; ++oy) {
            for (std::size_t ox = 0; ox < ow; ++ox) {
              const float gv = g[oy * ow + ox];
              if (may_skip && gv == 0.0f) continue;
              for (std::size_t ky = 0; ky < kernel_; ++ky) {
                const std::ptrdiff_t iy =
                    std::ptrdiff_t(oy * stride_ + ky) - std::ptrdiff_t(pad_);
                if (iy < 0 || iy >= std::ptrdiff_t(h)) continue;
                for (std::size_t kx = 0; kx < kernel_; ++kx) {
                  const std::ptrdiff_t ix = std::ptrdiff_t(ox * stride_ + kx) -
                                            std::ptrdiff_t(pad_);
                  if (ix < 0 || ix >= std::ptrdiff_t(w)) continue;
                  const std::size_t src_idx =
                      std::size_t(iy) * w + std::size_t(ix);
                  gfilt[ky * kernel_ + kx] += gv * src[src_idx];
                  d[src_idx] += gv * filt[ky * kernel_ + kx];
                }
              }
            }
          }
        }
      },
      1);
  return dx;
}

void DepthwiseConv2d::collect_params(const std::string& prefix,
                                     std::vector<ParamView>& out) {
  out.push_back({prefix + "weight", &w_, &gw_});
}

}  // namespace spatl::nn
