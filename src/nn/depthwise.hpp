// Depthwise 2-D convolution: each input channel is convolved with its own
// k x k filter (groups == channels). The building block of the
// MobileNet-style edge models the paper's motivation section targets.
#pragma once

#include "nn/module.hpp"

namespace spatl::nn {

class DepthwiseConv2d : public Module {
 public:
  DepthwiseConv2d(std::size_t channels, std::size_t kernel,
                  std::size_t stride = 1, std::size_t pad = 1);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(const std::string& prefix,
                      std::vector<ParamView>& out) override;
  void init_params(common::Rng& rng) override;
  std::string type_name() const override { return "DepthwiseConv2d"; }

  std::size_t channels() const { return channels_; }
  std::size_t kernel() const { return kernel_; }
  std::size_t stride() const { return stride_; }
  Tensor& weight() { return w_; }

 private:
  std::size_t channels_, kernel_, stride_, pad_;
  Tensor w_, gw_;  // (channels, k*k)
  Tensor cached_input_;
};

}  // namespace spatl::nn
