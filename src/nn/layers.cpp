#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace spatl::nn {

// ------------------------------------------------------------- Linear ----

Linear::Linear(std::size_t in_features, std::size_t out_features, bool bias)
    : in_(in_features),
      out_(out_features),
      has_bias_(bias),
      w_({out_features, in_features}),
      gw_({out_features, in_features}),
      b_(bias ? Tensor({out_features}) : Tensor()),
      gb_(bias ? Tensor({out_features}) : Tensor()) {}

void Linear::init_params(common::Rng& rng) {
  // He-uniform: suitable for the ReLU trunks used throughout.
  const float bound = std::sqrt(6.0f / float(in_));
  for (auto& v : w_.storage()) v = rng.uniform_float(-bound, bound);
  if (has_bias_) b_.zero();
}

Tensor Linear::forward(const Tensor& input, bool /*train*/) {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Linear: expected (N," + std::to_string(in_) +
                                "), got " + tensor::shape_to_string(input.shape()));
  }
  cached_input_ = input;
  Tensor out;
  tensor::matmul_nt(input, w_, out);  // (N,in) x (out,in)^T
  if (has_bias_) {
    const std::size_t n = out.dim(0);
    float* p = out.data();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < out_; ++j) p[i * out_ + j] += b_[j];
    }
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  // dW += dY^T X ; db += colsum(dY) ; dX = dY W
  Tensor dw;
  tensor::matmul_tn(grad_output, cached_input_, dw);  // (out,in)
  gw_ += dw;
  if (has_bias_) {
    const std::size_t n = grad_output.dim(0);
    const float* g = grad_output.data();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < out_; ++j) gb_[j] += g[i * out_ + j];
    }
  }
  Tensor dx;
  tensor::matmul(grad_output, w_, dx);  // (N,out) x (out,in)
  return dx;
}

void Linear::collect_params(const std::string& prefix,
                            std::vector<ParamView>& out) {
  out.push_back({prefix + "weight", &w_, &gw_});
  if (has_bias_) out.push_back({prefix + "bias", &b_, &gb_});
}

// --------------------------------------------------------------- ReLU ----

Tensor ReLU::forward(const Tensor& input, bool /*train*/) {
  cached_input_ = input;
  Tensor out = input;
  for (auto& v : out.storage()) v = std::max(v, 0.0f);
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  Tensor dx = grad_output;
  const float* x = cached_input_.data();
  float* g = dx.data();
  for (std::size_t i = 0; i < dx.numel(); ++i) {
    if (x[i] <= 0.0f) g[i] = 0.0f;
  }
  return dx;
}

// ------------------------------------------------------------ Flatten ----

Tensor Flatten::forward(const Tensor& input, bool /*train*/) {
  cached_shape_ = input.shape();
  const std::size_t n = input.dim(0);
  return input.reshaped({n, input.numel() / n});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_shape_);
}

// ------------------------------------------------------------ Dropout ----

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), rng_(seed) {
  if (p < 0.0f || p >= 1.0f) {
    throw std::invalid_argument("Dropout: rate must be in [0,1)");
  }
}

Tensor Dropout::forward(const Tensor& input, bool train) {
  if (!train || p_ == 0.0f) {
    mask_.clear();
    return input;
  }
  mask_.resize(input.numel());
  const float scale = 1.0f / (1.0f - p_);
  Tensor out = input;
  float* v = out.data();
  for (std::size_t i = 0; i < mask_.size(); ++i) {
    mask_[i] = rng_.bernoulli(p_) ? 0.0f : scale;
    v[i] *= mask_[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) return grad_output;
  Tensor dx = grad_output;
  float* g = dx.data();
  for (std::size_t i = 0; i < mask_.size(); ++i) g[i] *= mask_[i];
  return dx;
}

// -------------------------------------------------------- ChannelGate ----

ChannelGate::ChannelGate(std::size_t channels) : mask_(channels, 1) {}

double ChannelGate::keep_fraction() const {
  if (mask_.empty()) return 1.0;
  std::size_t kept = 0;
  for (auto m : mask_) kept += m;
  return double(kept) / double(mask_.size());
}

void ChannelGate::set_mask(std::vector<std::uint8_t> mask) {
  if (mask.size() != mask_.size()) {
    throw std::invalid_argument("ChannelGate: mask size mismatch");
  }
  mask_ = std::move(mask);
}

Tensor ChannelGate::forward(const Tensor& input, bool /*train*/) {
  if (input.rank() != 4 || input.dim(1) != mask_.size()) {
    throw std::invalid_argument("ChannelGate: expected (N," +
                                std::to_string(mask_.size()) + ",H,W)");
  }
  Tensor out = input;
  const std::size_t n = input.dim(0), c = input.dim(1);
  const std::size_t hw = input.dim(2) * input.dim(3);
  float* p = out.data();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      if (!mask_[ch]) {
        float* row = p + (i * c + ch) * hw;
        std::fill(row, row + hw, 0.0f);
      }
    }
  }
  return out;
}

Tensor ChannelGate::backward(const Tensor& grad_output) {
  Tensor dx = grad_output;
  const std::size_t n = dx.dim(0), c = dx.dim(1);
  const std::size_t hw = dx.dim(2) * dx.dim(3);
  float* p = dx.data();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      if (!mask_[ch]) {
        float* row = p + (i * c + ch) * hw;
        std::fill(row, row + hw, 0.0f);
      }
    }
  }
  return dx;
}

}  // namespace spatl::nn
