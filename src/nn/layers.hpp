// Pointwise and dense layers: Linear, ReLU, Flatten, Dropout, ChannelGate.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace spatl::nn {

/// Fully-connected layer: y = x W^T + b, with x (N, in), W (out, in).
class Linear : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features, bool bias = true);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(const std::string& prefix,
                      std::vector<ParamView>& out) override;
  void init_params(common::Rng& rng) override;
  std::string type_name() const override { return "Linear"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  Tensor& weight() { return w_; }
  Tensor& bias() { return b_; }

 private:
  std::size_t in_, out_;
  bool has_bias_;
  Tensor w_, gw_;
  Tensor b_, gb_;
  Tensor cached_input_;
};

/// Elementwise max(x, 0).
class ReLU : public Module {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

/// (N, C, H, W) -> (N, C*H*W). Remembers the input shape for backward.
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "Flatten"; }

 private:
  tensor::Shape cached_shape_;
};

/// Inverted dropout: scales kept activations by 1/(1-p) at train time so
/// eval needs no rescaling.
class Dropout : public Module {
 public:
  explicit Dropout(float p, std::uint64_t seed = 0x0d7097u);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "Dropout"; }

  float rate() const { return p_; }

 private:
  float p_;
  common::Rng rng_;
  std::vector<float> mask_;
};

/// Multiplicative per-channel 0/1 gate applied to a (N, C, H, W) feature
/// map. This is how channel pruning is realized functionally: zeroing an
/// output channel is equivalent to removing the filter, and downstream
/// layers see exactly the pruned activations. FLOPs accounting over the
/// kept fraction is done analytically in spatl::prune.
class ChannelGate : public Module {
 public:
  explicit ChannelGate(std::size_t channels);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "ChannelGate"; }

  std::size_t channels() const { return mask_.size(); }
  /// Fraction of channels currently kept.
  double keep_fraction() const;
  const std::vector<std::uint8_t>& mask() const { return mask_; }
  void set_mask(std::vector<std::uint8_t> mask);
  void reset() { std::fill(mask_.begin(), mask_.end(), std::uint8_t{1}); }

 private:
  std::vector<std::uint8_t> mask_;
};

}  // namespace spatl::nn
