#include "nn/module.hpp"

#include <cstring>
#include <stdexcept>

namespace spatl::nn {

std::size_t param_count(const std::vector<ParamView>& views) {
  std::size_t n = 0;
  for (const auto& v : views) n += v.value->numel();
  return n;
}

std::vector<float> flatten_values(const std::vector<ParamView>& views) {
  std::vector<float> flat;
  flat.reserve(param_count(views));
  for (const auto& v : views) {
    const auto s = v.value->span();
    flat.insert(flat.end(), s.begin(), s.end());
  }
  return flat;
}

std::vector<float> flatten_grads(const std::vector<ParamView>& views) {
  std::vector<float> flat;
  flat.reserve(param_count(views));
  for (const auto& v : views) {
    const auto s = v.grad->span();
    flat.insert(flat.end(), s.begin(), s.end());
  }
  return flat;
}

void unflatten_values(const std::vector<float>& flat,
                      const std::vector<ParamView>& views) {
  if (flat.size() != param_count(views)) {
    throw std::invalid_argument("unflatten_values: size mismatch");
  }
  std::size_t offset = 0;
  for (const auto& v : views) {
    const std::size_t n = v.value->numel();
    std::memcpy(v.value->data(), flat.data() + offset, n * sizeof(float));
    offset += n;
  }
}

std::vector<ParamView> filter_by_prefix(const std::vector<ParamView>& views,
                                        const std::string& prefix) {
  std::vector<ParamView> out;
  for (const auto& v : views) {
    if (v.name.rfind(prefix, 0) == 0) out.push_back(v);
  }
  return out;
}

}  // namespace spatl::nn
