// Module: the layer abstraction used by every model in the repo.
//
// Instead of a general autograd tape, each module caches what it needs in
// forward() and implements the exact adjoint in backward(). FL algorithms
// and PPO only ever need whole-model gradients, so this layer-graph scheme
// is simpler, faster, and easier to verify by finite differences.
//
// Parameters are exposed through `ParamView`s: stable, deterministic,
// name-addressable references into the module's weight and gradient tensors.
// The FL layer flattens these views into contiguous float vectors for
// aggregation, and splits encoder/predictor by name prefix.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace spatl::nn {

using tensor::Tensor;

/// A named, mutable reference to one parameter tensor and its gradient.
struct ParamView {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

class Module {
 public:
  virtual ~Module() = default;

  /// Forward pass. `train` toggles batch-stat collection / dropout.
  /// Modules cache whatever backward() needs.
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Backward pass given d(loss)/d(output); accumulates into parameter
  /// gradients and returns d(loss)/d(input). Must follow a forward() call.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Append this module's parameters (names prefixed by `prefix`) to `out`.
  virtual void collect_params(const std::string& prefix,
                              std::vector<ParamView>& out) {
    (void)prefix;
    (void)out;
  }

  /// Initialize weights (He/Xavier per layer type). Default: nothing.
  virtual void init_params(common::Rng& rng) { (void)rng; }

  virtual std::string type_name() const = 0;

  /// All parameters of this module (convenience wrapper).
  std::vector<ParamView> params(const std::string& prefix = "") {
    std::vector<ParamView> out;
    collect_params(prefix, out);
    return out;
  }

  void zero_grad() {
    for (auto& p : params()) p.grad->zero();
  }
};

using ModulePtr = std::shared_ptr<Module>;

// ------------------------------------------------- flat parameter I/O ----

/// Total scalar count across views.
std::size_t param_count(const std::vector<ParamView>& views);

/// Concatenate all parameter values into one flat vector (deterministic
/// view order). This is the wire format of the FL layer.
std::vector<float> flatten_values(const std::vector<ParamView>& views);
std::vector<float> flatten_grads(const std::vector<ParamView>& views);

/// Write a flat vector back into the parameter tensors. Size must match.
void unflatten_values(const std::vector<float>& flat,
                      const std::vector<ParamView>& views);

/// Views whose name starts with `prefix`.
std::vector<ParamView> filter_by_prefix(const std::vector<ParamView>& views,
                                        const std::string& prefix);

}  // namespace spatl::nn
