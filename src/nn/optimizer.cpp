#include "nn/optimizer.hpp"

#include <cmath>

#include "common/check.hpp"

namespace spatl::nn {

Sgd::Sgd(std::vector<ParamView> params, SgdOptions opts)
    : params_(std::move(params)), opts_(opts) {
  SPATL_DCHECK(std::isfinite(opts_.lr) && std::isfinite(opts_.momentum) &&
               std::isfinite(opts_.weight_decay));
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.emplace_back(p.value->numel(), 0.0f);
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    float* w = params_[i].value->data();
    const float* g = params_[i].grad->data();
    float* v = velocity_[i].data();
    const std::size_t n = params_[i].value->numel();
    const float lr = float(opts_.lr);
    const float mu = float(opts_.momentum);
    const float wd = float(opts_.weight_decay);
    for (std::size_t j = 0; j < n; ++j) {
      const float grad = g[j] + wd * w[j];
      v[j] = mu * v[j] + grad;
      w[j] -= lr * v[j];
    }
  }
}

void Sgd::zero_grad() {
  for (auto& p : params_) p.grad->zero();
}

Adam::Adam(std::vector<ParamView> params, AdamOptions opts)
    : params_(std::move(params)), opts_(opts) {
  SPATL_DCHECK(std::isfinite(opts_.lr) && opts_.beta1 >= 0.0 &&
               opts_.beta1 < 1.0 && opts_.beta2 >= 0.0 && opts_.beta2 < 1.0);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->numel(), 0.0f);
    v_.emplace_back(p.value->numel(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(opts_.beta1, double(t_));
  const double bias2 = 1.0 - std::pow(opts_.beta2, double(t_));
  const float lr_t = float(opts_.lr * std::sqrt(bias2) / bias1);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    float* w = params_[i].value->data();
    const float* g = params_[i].grad->data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const std::size_t n = params_[i].value->numel();
    const float b1 = float(opts_.beta1), b2 = float(opts_.beta2);
    const float eps = float(opts_.eps), wd = float(opts_.weight_decay);
    for (std::size_t j = 0; j < n; ++j) {
      const float grad = g[j] + wd * w[j];
      m[j] = b1 * m[j] + (1.0f - b1) * grad;
      v[j] = b2 * v[j] + (1.0f - b2) * grad * grad;
      w[j] -= lr_t * m[j] / (std::sqrt(v[j]) + eps);
    }
  }
}

void Adam::zero_grad() {
  for (auto& p : params_) p.grad->zero();
}

}  // namespace spatl::nn
