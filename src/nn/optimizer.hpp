// Optimizers over ParamViews: SGD (momentum + weight decay) and Adam.
//
// Optimizers bind to an explicit view list, so FL code can build one
// optimizer over the encoder views and another over the predictor views
// (SPATL's eq. 4 predictor-only adaptation is just an optimizer over the
// predictor subset).
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace spatl::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update step from the currently-accumulated gradients.
  virtual void step() = 0;
  virtual void zero_grad() = 0;
  virtual double learning_rate() const = 0;
  virtual void set_learning_rate(double lr) = 0;
};

struct SgdOptions {
  double lr = 0.01;
  double momentum = 0.9;
  double weight_decay = 0.0;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ParamView> params, SgdOptions opts);

  void step() override;
  void zero_grad() override;
  double learning_rate() const override { return opts_.lr; }
  void set_learning_rate(double lr) override { opts_.lr = lr; }

 private:
  std::vector<ParamView> params_;
  SgdOptions opts_;
  std::vector<std::vector<float>> velocity_;
};

struct AdamOptions {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<ParamView> params, AdamOptions opts);

  void step() override;
  void zero_grad() override;
  double learning_rate() const override { return opts_.lr; }
  void set_learning_rate(double lr) override { opts_.lr = lr; }

  /// Exact optimizer state for checkpoint/restore (moments are laid out
  /// parallel to the bound ParamViews).
  std::vector<std::vector<float>>& first_moments() { return m_; }
  std::vector<std::vector<float>>& second_moments() { return v_; }
  const std::vector<std::vector<float>>& first_moments() const { return m_; }
  const std::vector<std::vector<float>>& second_moments() const { return v_; }
  std::int64_t step_count() const { return t_; }
  void set_step_count(std::int64_t t) { t_ = t; }

 private:
  std::vector<ParamView> params_;
  AdamOptions opts_;
  std::vector<std::vector<float>> m_, v_;
  std::int64_t t_ = 0;
};

}  // namespace spatl::nn
