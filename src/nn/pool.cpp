#include "nn/pool.hpp"

#include <limits>
#include <stdexcept>

#include "common/parallel.hpp"

namespace spatl::nn {

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {}

Tensor MaxPool2d::forward(const Tensor& input, bool /*train*/) {
  if (input.rank() != 4) {
    throw std::invalid_argument("MaxPool2d: expected (N,C,H,W)");
  }
  cached_in_shape_ = input.shape();
  const std::size_t n = input.dim(0), c = input.dim(1);
  const std::size_t h = input.dim(2), w = input.dim(3);
  if (h < kernel_ || w < kernel_) {
    throw std::invalid_argument("MaxPool2d: input smaller than kernel");
  }
  const std::size_t oh = (h - kernel_) / stride_ + 1;
  const std::size_t ow = (w - kernel_) / stride_ + 1;
  Tensor out({n, c, oh, ow});
  argmax_.assign(out.numel(), 0);
  const float* in = input.data();
  float* o = out.data();
  common::parallel_for(
      0, n * c,
      [&](std::size_t plane_idx) {
        const float* plane = in + plane_idx * h * w;
        float* oplane = o + plane_idx * oh * ow;
        std::uint32_t* aplane = argmax_.data() + plane_idx * oh * ow;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            float best = -std::numeric_limits<float>::infinity();
            std::size_t best_idx = 0;
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::size_t iy = oy * stride_ + ky;
                const std::size_t ix = ox * stride_ + kx;
                const float v = plane[iy * w + ix];
                if (v > best) {
                  best = v;
                  best_idx = iy * w + ix;
                }
              }
            }
            oplane[oy * ow + ox] = best;
            aplane[oy * ow + ox] =
                std::uint32_t(plane_idx * h * w + best_idx);
          }
        }
      },
      1);
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  Tensor dx(cached_in_shape_);
  const float* g = grad_output.data();
  float* d = dx.data();
  for (std::size_t i = 0; i < grad_output.numel(); ++i) {
    d[argmax_[i]] += g[i];
  }
  return dx;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool /*train*/) {
  if (input.rank() != 4) {
    throw std::invalid_argument("GlobalAvgPool: expected (N,C,H,W)");
  }
  cached_in_shape_ = input.shape();
  const std::size_t n = input.dim(0), c = input.dim(1);
  const std::size_t hw = input.dim(2) * input.dim(3);
  Tensor out({n, c});
  const float* in = input.data();
  const float inv = 1.0f / float(hw);
  for (std::size_t i = 0; i < n * c; ++i) {
    double acc = 0.0;
    const float* plane = in + i * hw;
    for (std::size_t p = 0; p < hw; ++p) acc += plane[p];
    out[i] = float(acc) * inv;
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  const std::size_t hw = cached_in_shape_[2] * cached_in_shape_[3];
  Tensor dx(cached_in_shape_);
  const float inv = 1.0f / float(hw);
  const float* g = grad_output.data();
  float* d = dx.data();
  const std::size_t planes = cached_in_shape_[0] * cached_in_shape_[1];
  for (std::size_t i = 0; i < planes; ++i) {
    const float v = g[i] * inv;
    float* plane = d + i * hw;
    for (std::size_t p = 0; p < hw; ++p) plane[p] = v;
  }
  return dx;
}

}  // namespace spatl::nn
