// Pooling layers: MaxPool2d and global average pooling.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace spatl::nn {

/// Max pooling over square windows. Caches argmax positions for backward.
class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(std::size_t kernel, std::size_t stride = 0);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "MaxPool2d"; }

 private:
  std::size_t kernel_, stride_;
  tensor::Shape cached_in_shape_;
  std::vector<std::uint32_t> argmax_;  // flat input index per output element
};

/// (N, C, H, W) -> (N, C): mean over the spatial dimensions.
class GlobalAvgPool : public Module {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "GlobalAvgPool"; }

 private:
  tensor::Shape cached_in_shape_;
};

}  // namespace spatl::nn
