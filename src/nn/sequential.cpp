#include "nn/sequential.hpp"

#include <algorithm>

namespace spatl::nn {

Tensor Sequential::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& child : children_) x = child->forward(x, train);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::collect_params(const std::string& prefix,
                                std::vector<ParamView>& out) {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    children_[i]->collect_params(
        prefix + std::to_string(i) + "." + children_[i]->type_name() + ".",
        out);
  }
}

void Sequential::init_params(common::Rng& rng) {
  for (auto& child : children_) child->init_params(rng);
}

BasicBlock::BasicBlock(std::size_t in_channels, std::size_t out_channels,
                       std::size_t stride)
    : conv1_(std::make_shared<Conv2d>(in_channels, out_channels, 3, stride, 1)),
      conv2_(std::make_shared<Conv2d>(out_channels, out_channels, 3, 1, 1)),
      bn1_(std::make_shared<BatchNorm2d>(out_channels)),
      bn2_(std::make_shared<BatchNorm2d>(out_channels)),
      gate_(std::make_shared<ChannelGate>(out_channels)),
      relu1_(std::make_shared<ReLU>()) {
  if (stride != 1 || in_channels != out_channels) {
    proj_conv_ = std::make_shared<Conv2d>(in_channels, out_channels, 1, stride,
                                          /*pad=*/0);
    proj_bn_ = std::make_shared<BatchNorm2d>(out_channels);
  }
}

Tensor BasicBlock::forward(const Tensor& input, bool train) {
  Tensor main = conv1_->forward(input, train);
  main = bn1_->forward(main, train);
  main = gate_->forward(main, train);
  main = relu1_->forward(main, train);
  main = conv2_->forward(main, train);
  main = bn2_->forward(main, train);

  Tensor skip;
  if (proj_conv_) {
    skip = proj_conv_->forward(input, train);
    skip = proj_bn_->forward(skip, train);
  } else {
    skip = input;
  }
  main += skip;
  cached_preact_ = main;
  // Final ReLU applied in place; backward re-derives the mask from the
  // cached pre-activation.
  Tensor out = main;
  for (auto& v : out.storage()) v = std::max(v, 0.0f);
  return out;
}

Tensor BasicBlock::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  {
    const float* pre = cached_preact_.data();
    float* gp = g.data();
    for (std::size_t i = 0; i < g.numel(); ++i) {
      if (pre[i] <= 0.0f) gp[i] = 0.0f;
    }
  }
  // g flows into both the main branch and the skip branch.
  Tensor gmain = bn2_->backward(g);
  gmain = conv2_->backward(gmain);
  gmain = relu1_->backward(gmain);
  gmain = gate_->backward(gmain);
  gmain = bn1_->backward(gmain);
  Tensor dx = conv1_->backward(gmain);

  if (proj_conv_) {
    Tensor gskip = proj_bn_->backward(g);
    gskip = proj_conv_->backward(gskip);
    dx += gskip;
  } else {
    dx += g;
  }
  return dx;
}

void BasicBlock::collect_params(const std::string& prefix,
                                std::vector<ParamView>& out) {
  conv1_->collect_params(prefix + "conv1.", out);
  bn1_->collect_params(prefix + "bn1.", out);
  conv2_->collect_params(prefix + "conv2.", out);
  bn2_->collect_params(prefix + "bn2.", out);
  if (proj_conv_) {
    proj_conv_->collect_params(prefix + "proj.", out);
    proj_bn_->collect_params(prefix + "proj_bn.", out);
  }
}

void BasicBlock::init_params(common::Rng& rng) {
  conv1_->init_params(rng);
  bn1_->init_params(rng);
  conv2_->init_params(rng);
  bn2_->init_params(rng);
  if (proj_conv_) {
    proj_conv_->init_params(rng);
    proj_bn_->init_params(rng);
  }
}

}  // namespace spatl::nn
