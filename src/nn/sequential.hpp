// Sequential container and the residual BasicBlock used by ResNets.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace spatl::nn {

/// Ordered chain of modules. Child names are "<index>.<TypeName>." prefixes
/// so parameter names are stable and human-readable, e.g.
/// "encoder.3.Conv2d.weight".
class Sequential : public Module {
 public:
  Sequential() = default;

  Sequential& add(ModulePtr module) {
    children_.push_back(std::move(module));
    return *this;
  }

  template <typename M, typename... Args>
  M* emplace(Args&&... args) {
    auto m = std::make_shared<M>(std::forward<Args>(args)...);
    M* raw = m.get();
    children_.push_back(std::move(m));
    return raw;
  }

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(const std::string& prefix,
                      std::vector<ParamView>& out) override;
  void init_params(common::Rng& rng) override;
  std::string type_name() const override { return "Sequential"; }

  std::size_t size() const { return children_.size(); }
  Module& child(std::size_t i) { return *children_[i]; }
  const std::vector<ModulePtr>& children() const { return children_; }

 private:
  std::vector<ModulePtr> children_;
};

/// CIFAR-style residual block:
///   main: conv3x3(stride) -> BN -> gate -> ReLU -> conv3x3 -> BN
///   skip: identity, or conv1x1(stride) -> BN when shape changes
///   out:  ReLU(main + skip)
/// The ChannelGate after the first conv is the prunable point of the block —
/// pruning internal channels preserves the block's output shape, matching
/// how structured pruning is applied to ResNets in the AMC/GNN-RL line of
/// work the paper builds on.
class BasicBlock : public Module {
 public:
  BasicBlock(std::size_t in_channels, std::size_t out_channels,
             std::size_t stride);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect_params(const std::string& prefix,
                      std::vector<ParamView>& out) override;
  void init_params(common::Rng& rng) override;
  std::string type_name() const override { return "BasicBlock"; }

  ChannelGate& gate() { return *gate_; }
  Conv2d& conv1() { return *conv1_; }
  Conv2d& conv2() { return *conv2_; }
  BatchNorm2d& bn1() { return *bn1_; }
  BatchNorm2d& bn2() { return *bn2_; }
  bool has_projection() const { return proj_conv_ != nullptr; }
  BatchNorm2d* proj_bn() { return proj_bn_.get(); }

 private:
  std::shared_ptr<Conv2d> conv1_, conv2_;
  std::shared_ptr<BatchNorm2d> bn1_, bn2_;
  std::shared_ptr<ChannelGate> gate_;
  std::shared_ptr<ReLU> relu1_;
  std::shared_ptr<Conv2d> proj_conv_;    // nullptr for identity skip
  std::shared_ptr<BatchNorm2d> proj_bn_;
  Tensor cached_preact_;  // main + skip before the final ReLU
};

}  // namespace spatl::nn
