#include "obs/alert.hpp"

namespace spatl::obs {

void AlertWatcher::add_rule(AlertRule rule) {
  rules_.push_back(std::move(rule));
  firing_.push_back(0);
}

void AlertWatcher::evaluate(std::size_t rule, double value,
                            std::uint64_t round) {
  const AlertRule& r = rules_[rule];
  const bool breached =
      r.above ? value >= r.threshold : value <= r.threshold;
  if (!breached) {
    firing_[rule] = 0;  // back on the good side: re-arm
    return;
  }
  if (firing_[rule]) return;  // sustained breach: already reported
  firing_[rule] = 1;
  ++emitted_;
  if (sink_ == nullptr) return;
  JsonObject rec;
  rec.add("type", "alert")
      .add("rule", r.name)
      .add("metric", r.metric)
      .add("value", value)
      .add("threshold", r.threshold)
      .add("direction", r.above ? "above" : "below")
      .add("round", round);
  sink_->write(rec);
}

void AlertWatcher::observe(const std::string& metric, double value,
                           std::uint64_t round) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].metric == metric) evaluate(i, value, round);
  }
}

void AlertWatcher::poll(const MetricsSnapshot& snapshot, std::uint64_t round) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const auto gauge = snapshot.gauges.find(rules_[i].metric);
    if (gauge != snapshot.gauges.end()) {
      evaluate(i, gauge->second, round);
      continue;
    }
    const auto counter = snapshot.counters.find(rules_[i].metric);
    if (counter != snapshot.counters.end()) {
      evaluate(i, double(counter->second), round);
    }
  }
}

}  // namespace spatl::obs
