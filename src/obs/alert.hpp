// Threshold -> alert hook over the metrics plane (DESIGN.md §10 follow-up).
//
// An AlertWatcher holds a small set of declarative threshold rules
// (metric name, bound, direction) and emits one `"type":"alert"` JSONL
// record per crossing into the same sink the runner's per-round telemetry
// uses. Rules are edge-triggered: a rule fires when its metric crosses the
// threshold and re-arms only after the metric comes back to the good side,
// so a sustained breach produces one alert, not one per round.
//
// Observations arrive two ways: the federated runner feeds derived
// per-round rates (reject rate, shed rate) through observe(), and poll()
// evaluates every rule against a MetricsRegistry snapshot (counters and
// gauges by name) for registry-backed metrics. Pure observation: watching
// never changes a float of the simulation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace spatl::obs {

struct AlertRule {
  std::string name;    // rule id reported in the record, e.g. "reject_high"
  std::string metric;  // metric it watches, e.g. "fl.reject_rate"
  double threshold = 0.0;
  /// true: fire when value >= threshold; false: fire when value <= threshold.
  bool above = true;
};

class AlertWatcher {
 public:
  /// `sink` is not owned and must outlive the watcher; null disables
  /// emission (crossings are still counted).
  explicit AlertWatcher(JsonlWriter* sink) : sink_(sink) {}

  void add_rule(AlertRule rule);
  std::size_t rule_count() const { return rules_.size(); }

  /// Feed one observation of `metric`; every rule watching it is evaluated
  /// and fires (once per crossing) with the given round attached.
  void observe(const std::string& metric, double value, std::uint64_t round);

  /// Evaluate all rules against a registry snapshot: counters and gauges
  /// are matched by exact name (a rule whose metric is absent is skipped).
  void poll(const MetricsSnapshot& snapshot, std::uint64_t round);

  /// Alerts emitted so far (crossings, not breach-rounds).
  std::size_t alerts_emitted() const { return emitted_; }

 private:
  void evaluate(std::size_t rule, double value, std::uint64_t round);

  JsonlWriter* sink_;
  std::vector<AlertRule> rules_;
  std::vector<std::uint8_t> firing_;  // parallel to rules_: currently breached
  std::size_t emitted_ = 0;
};

}  // namespace spatl::obs
