#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace spatl::obs {

namespace {

std::string number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no NaN/Inf
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonObject::key(const std::string& k) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
}

JsonObject& JsonObject::add(const std::string& k, double value) {
  key(k);
  body_ += number(value);
  return *this;
}

JsonObject& JsonObject::add(const std::string& k, std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::add(const std::string& k, std::int64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::add(const std::string& k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::add(const std::string& k, const std::string& value) {
  key(k);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonObject& JsonObject::add(const std::string& k, const char* value) {
  return add(k, std::string(value));
}

JsonObject& JsonObject::add_raw(const std::string& k,
                                const std::string& json) {
  key(k);
  body_ += json;
  return *this;
}

std::string JsonObject::str() const { return "{" + body_ + "}"; }

JsonlWriter::JsonlWriter(const std::string& path)
    : path_(path), out_(path, std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("JsonlWriter: cannot open " + path);
  }
}

void JsonlWriter::write(const JsonObject& object) {
  out_ << object.str() << '\n';
  out_.flush();
  ++lines_;
}

JsonObject metrics_object(const MetricsSnapshot& snapshot) {
  JsonObject counters;
  for (const auto& [name, value] : snapshot.counters) {
    counters.add(name, value);
  }
  JsonObject gauges;
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.add(name, value);
  }
  JsonObject histograms;
  for (const auto& [name, h] : snapshot.histograms) {
    std::string bounds = "[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) bounds += ',';
      bounds += number(h.bounds[i]);
    }
    bounds += ']';
    std::string buckets = "[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) buckets += ',';
      buckets += std::to_string(h.buckets[i]);
    }
    buckets += ']';
    JsonObject hist;
    hist.add_raw("bounds", bounds)
        .add_raw("buckets", buckets)
        .add("count", h.count)
        .add("sum", h.sum);
    histograms.add_raw(name, hist.str());
  }
  JsonObject sketches;
  for (const auto& [name, s] : snapshot.sketches) {
    JsonObject sk;
    sk.add("count", s.count)
        .add("sum", s.sum)
        .add("min", s.min)
        .add("max", s.max)
        .add("relative_accuracy", s.relative_accuracy)
        .add("p50", s.p50)
        .add("p90", s.p90)
        .add("p95", s.p95)
        .add("p99", s.p99);
    sketches.add_raw(name, sk.str());
  }
  JsonObject out;
  out.add_raw("counters", counters.str())
      .add_raw("gauges", gauges.str())
      .add_raw("histograms", histograms.str())
      .add_raw("sketches", sketches.str());
  return out;
}

void write_chrome_trace(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_chrome_trace: cannot open " + path);
  }
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& ev : tracer.events()) {
    JsonObject e;
    e.add("name", ev.name)
        .add("cat", ev.category)
        .add("ph", "X")
        .add("ts", double(ev.start_ns) / 1e3)   // microseconds
        .add("dur", double(ev.dur_ns) / 1e3)
        .add("pid", std::uint64_t{1})
        .add("tid", std::uint64_t(ev.tid))
        .add_raw("args", JsonObject()
                             .add("depth", std::uint64_t(ev.depth))
                             .add("seq", ev.seq)
                             .str());
    if (!first) out << ',';
    first = false;
    out << e.str();
  }
  out << "]}\n";
  if (!out.good()) {
    throw std::runtime_error("write_chrome_trace: write failed for " + path);
  }
}

void write_metrics_json(const MetricsSnapshot& snapshot,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_metrics_json: cannot open " + path);
  }
  out << metrics_object(snapshot).str() << '\n';
}

}  // namespace spatl::obs
