// Telemetry exporters (DESIGN.md §10):
//
//   JsonObject / JsonlWriter  — minimal ordered JSON builder and an
//       append-per-line JSONL file sink. The federated runner emits one
//       "round" record per communication round through a JsonlWriter; the
//       bench/CLI scopes append a final "metrics" record with the registry
//       snapshot.
//   write_chrome_trace        — Chrome trace-event JSON ("X" complete
//       events) loadable in chrome://tracing and Perfetto.
//   metrics_object            — a MetricsSnapshot rendered as one JSON
//       object (counters, gauges, histograms).
//
// Non-finite doubles are serialized as null (JSON has no NaN/Inf), so a
// diverged round's loss cannot corrupt the stream.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spatl::obs {

/// JSON string escaping for quotes, backslashes and control characters.
std::string json_escape(const std::string& raw);

/// One JSON object built field-by-field in insertion order.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, double value);
  JsonObject& add(const std::string& key, std::uint64_t value);
  JsonObject& add(const std::string& key, std::int64_t value);
  JsonObject& add(const std::string& key, bool value);
  JsonObject& add(const std::string& key, const std::string& value);
  JsonObject& add(const std::string& key, const char* value);
  /// Splice a pre-rendered JSON value (nested object/array) verbatim.
  JsonObject& add_raw(const std::string& key, const std::string& json);

  /// "{...}" — always a syntactically complete object.
  std::string str() const;

 private:
  void key(const std::string& k);
  std::string body_;
};

/// Append-only JSONL file: one JSON object per line, flushed per write so
/// a crashed run keeps every completed record. Truncates on open; throws
/// std::runtime_error when the file cannot be created.
class JsonlWriter {
 public:
  explicit JsonlWriter(const std::string& path);

  void write(const JsonObject& object);
  std::size_t lines() const { return lines_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t lines_ = 0;
};

/// Render a metrics snapshot as one JSON object.
JsonObject metrics_object(const MetricsSnapshot& snapshot);

/// Write the tracer's completed spans as Chrome trace-event JSON
/// ({"traceEvents": [...]}). Throws std::runtime_error on open failure.
void write_chrome_trace(const Tracer& tracer, const std::string& path);

/// Write the registry snapshot as a standalone JSON document.
void write_metrics_json(const MetricsSnapshot& snapshot,
                        const std::string& path);

}  // namespace spatl::obs
