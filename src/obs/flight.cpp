#include "obs/flight.hpp"

#include <algorithm>

namespace spatl::obs {

FlightRecorder::FlightRecorder(JsonlWriter* sink, std::size_t capacity)
    : sink_(sink), capacity_(std::max<std::size_t>(1, capacity)) {}

void FlightRecorder::record_round(std::uint64_t round,
                                  std::string rendered_record) {
  window_.emplace_back(round, std::move(rendered_record));
  ++seen_;
  if (window_.size() > capacity_) {
    window_.pop_front();
    ++dropped_;
  }
}

void FlightRecorder::dump(const std::string& trigger, std::uint64_t round) {
  ++dumps_;
  if (sink_ == nullptr) return;
  std::string records = "[";
  for (std::size_t i = 0; i < window_.size(); ++i) {
    if (i > 0) records += ',';
    records += window_[i].second;
  }
  records += ']';
  JsonObject rec;
  rec.add("type", "flight")
      .add("trigger", trigger)
      .add("round", round)
      .add("window", std::uint64_t(window_.size()))
      .add("rounds_seen", seen_)
      .add("rounds_dropped", dropped_);
  if (!window_.empty()) {
    rec.add("first_round", window_.front().first)
        .add("last_round", window_.back().first);
  }
  rec.add_raw("records", records);
  sink_->write(rec);
}

}  // namespace spatl::obs
