// Flight recorder (DESIGN.md §10.1): a bounded ring of the most recent
// rendered round-telemetry records, dumped as one `"type":"flight"` JSONL
// record when the run hits something worth a post-mortem — a divergence
// rollback, an injected crash drill, or recovery-ladder exhaustion (every
// durable generation rejected). The dump carries the window verbatim
// (each entry is the same JSON object the per-round telemetry would have
// emitted, phases and byte deltas included), so the last N rounds leading
// into the incident can be replayed through `spatl_report` without having
// run with per-round telemetry enabled at full stride.
//
// Off-switch contract: the recorder is observation only. The runner
// renders records into the ring and never reads them back, so attaching a
// recorder cannot move a float — locked by the telemetry bit-identity
// memcmp test alongside the rest of the layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "obs/export.hpp"

namespace spatl::obs {

class FlightRecorder {
 public:
  /// `sink` is not owned and must outlive the recorder; null disables
  /// emission (dumps are still counted). `capacity` is the ring size in
  /// round records (clamped to >= 1).
  explicit FlightRecorder(JsonlWriter* sink, std::size_t capacity = 16);

  /// Push one rendered round record; the oldest entry beyond capacity is
  /// dropped (and counted).
  void record_round(std::uint64_t round, std::string rendered_record);

  /// Emit the current window as one "type":"flight" record attributed to
  /// `trigger` at `round`. The window is kept (overlapping incidents each
  /// dump the rounds leading into them).
  void dump(const std::string& trigger, std::uint64_t round);

  std::size_t window_size() const { return window_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t dumps() const { return dumps_; }
  std::uint64_t rounds_seen() const { return seen_; }
  std::uint64_t rounds_dropped() const { return dropped_; }

 private:
  JsonlWriter* sink_;
  std::size_t capacity_;
  std::deque<std::pair<std::uint64_t, std::string>> window_;
  std::uint64_t seen_ = 0;
  std::uint64_t dropped_ = 0;
  std::size_t dumps_ = 0;
};

}  // namespace spatl::obs
