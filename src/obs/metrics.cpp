#include "obs/metrics.hpp"

#include <stdexcept>

namespace spatl::obs {

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Shard& MetricsRegistry::register_shard() {
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  return *shards_.back();
}

std::uint32_t MetricsRegistry::allocate_slots(std::size_t n) {
  if (next_slot_ + n > kSlotCapacity) {
    throw std::length_error(
        "MetricsRegistry: shard slot budget exhausted (kSlotCapacity)");
  }
  const auto base = std::uint32_t(next_slot_);
  next_slot_ += n;
  return base;
}

Counter MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != Kind::kCounter) {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered with another kind");
    }
    return Counter(this, it->second.slot);
  }
  Entry e;
  e.kind = Kind::kCounter;
  e.slot = allocate_slots(1);
  entries_.emplace(name, e);
  return Counter(this, e.slot);
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != Kind::kGauge) {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered with another kind");
    }
    return Gauge(it->second.gauge);
  }
  gauge_cells_.emplace_back(0.0);
  Entry e;
  e.kind = Kind::kGauge;
  e.gauge = &gauge_cells_.back();
  entries_.emplace(name, e);
  return Gauge(e.gauge);
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds) {
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      throw std::invalid_argument(
          "MetricsRegistry: histogram bounds must be strictly ascending");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != Kind::kHistogram ||
        *it->second.bounds != bounds) {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered with another kind "
                                  "or bounds");
    }
    return Histogram(this, it->second.slot, it->second.bounds);
  }
  histogram_bounds_.push_back(std::move(bounds));
  Entry e;
  e.kind = Kind::kHistogram;
  e.bounds = &histogram_bounds_.back();
  // Layout: bounds+1 buckets (overflow last), then the micro-unit sum.
  e.slot = allocate_slots(e.bounds->size() + 2);
  entries_.emplace(name, e);
  return Histogram(this, e.slot, e.bounds);
}

Sketch MetricsRegistry::sketch(const std::string& name,
                               double relative_accuracy) {
  std::lock_guard<std::mutex> lock(sketch_mu_);
  auto it = sketch_names_.find(name);
  if (it != sketch_names_.end()) {
    if (sketch_store_[it->second].relative_accuracy() != relative_accuracy) {
      throw std::invalid_argument("MetricsRegistry: sketch '" + name +
                                  "' already registered with another "
                                  "relative accuracy");
    }
    return Sketch(this, it->second);
  }
  sketch_store_.emplace_back(relative_accuracy);
  const std::size_t index = sketch_store_.size() - 1;
  sketch_names_.emplace(name, index);
  return Sketch(this, index);
}

void MetricsRegistry::record_sketch(std::size_t index, double value) {
  std::lock_guard<std::mutex> lock(sketch_mu_);
  sketch_store_[index].record(value);
}

std::uint64_t MetricsRegistry::sum_slot(std::uint32_t slot) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->slots[slot].load(std::memory_order_relaxed);
  }
  return total;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        out.counters[name] = sum_slot(e.slot);
        break;
      case Kind::kGauge:
        out.gauges[name] = e.gauge->load(std::memory_order_relaxed);
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h;
        h.bounds = *e.bounds;
        h.buckets.resize(e.bounds->size() + 1);
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
          h.buckets[b] = sum_slot(e.slot + std::uint32_t(b));
          h.count += h.buckets[b];
        }
        h.sum = double(static_cast<std::int64_t>(
                    sum_slot(e.slot + std::uint32_t(h.buckets.size())))) *
                1e-6;
        out.histograms[name] = std::move(h);
        break;
      }
    }
  }
  {
    std::lock_guard<std::mutex> sketch_lock(sketch_mu_);
    for (const auto& [name, index] : sketch_names_) {
      out.sketches[name] = sketch_store_[index].snapshot();
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    for (std::size_t s = 0; s < next_slot_; ++s) {
      shard->slots[s].store(0, std::memory_order_relaxed);
    }
  }
  for (auto& cell : gauge_cells_) cell.store(0.0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> sketch_lock(sketch_mu_);
  for (auto& sketch : sketch_store_) sketch.clear();
}

}  // namespace spatl::obs
