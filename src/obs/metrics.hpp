// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms for the telemetry layer (DESIGN.md §10).
//
// The hot path is lock-free: counter and histogram writes go to a
// per-thread shard of relaxed atomics (one cache-friendly slot array per
// thread, registered once on first use), so instrumented kernels never
// contend on a shared line and the layer is race-free under TSan by
// construction. Gauges are single relaxed atomic cells (last write wins).
// snapshot() takes the registration mutex — held only by registration and
// snapshots, never by metric updates — and merges every shard.
//
// Metrics are observation only: nothing read from the registry may feed
// back into simulation arithmetic, so enabling telemetry cannot move a
// float. Registration is idempotent by name; a name may not change kind.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/quantile.hpp"

namespace spatl::obs {

class MetricsRegistry;

/// Monotonic event count. Copyable value handle; add/increment are
/// relaxed atomic adds on the calling thread's shard.
class Counter {
 public:
  Counter() = default;
  inline void add(std::uint64_t n);
  void increment() { add(1); }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::uint32_t slot)
      : registry_(registry), slot_(slot) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Last-write-wins instantaneous value (queue depth, utilization, ratios).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in
/// ascending order plus an implicit overflow bucket. The running sum is
/// kept in signed micro-units (1e-6 resolution) so it stays a single
/// atomic add; telemetry precision, not accounting precision.
class Histogram {
 public:
  Histogram() = default;
  inline void record(double value);

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, std::uint32_t base,
            const std::vector<double>* bounds)
      : registry_(registry), base_(base), bounds_(bounds) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t base_ = 0;                      // first bucket slot
  const std::vector<double>* bounds_ = nullptr; // registry-owned
};

/// Named quantile sketch handle (LogBucketSketch, DESIGN.md §10.1).
/// Unlike counters/histograms, records take a dedicated registry mutex —
/// sketches serve cold paths only (once-per-round latency totals), where
/// bounded-relative-error percentiles matter more than lock-freedom.
class Sketch {
 public:
  Sketch() = default;
  inline void record(double value);

 private:
  friend class MetricsRegistry;
  Sketch(MetricsRegistry* registry, std::size_t index)
      : registry_(registry), index_(index) {}
  MetricsRegistry* registry_ = nullptr;
  std::size_t index_ = 0;
};

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  /// Quantile sketches (own name plane — a sketch may legitimately shadow
  /// the fixed-bucket histogram it refines, e.g. "fl.train.round_ms").
  std::map<std::string, SketchSnapshot> sketches;
};

class MetricsRegistry {
 public:
  /// Process-wide registry (never destroyed before exit).
  static MetricsRegistry& instance();

  /// Register-or-look-up by name. Throws std::invalid_argument when the
  /// name is already bound to a different kind (or different histogram
  /// bounds), std::length_error when the shard slot budget is exhausted.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name, std::vector<double> bounds);
  /// Named quantile sketch (separate name plane from the slot-backed
  /// kinds). Throws std::invalid_argument when the name is already bound
  /// to a different relative accuracy.
  Sketch sketch(const std::string& name, double relative_accuracy = 0.01);

  /// Merge every thread's shard into one consistent view.
  MetricsSnapshot snapshot() const;

  /// Zero every counter/histogram slot and gauge cell; registrations and
  /// handles stay valid. Test isolation only — not thread-safe against
  /// concurrent metric updates.
  void reset();

  // --- hot-path internals (public for the inline handles) ----------------

  /// Slot budget per shard; registration throws once exceeded.
  static constexpr std::size_t kSlotCapacity = 1024;

  struct Shard {
    std::array<std::atomic<std::uint64_t>, kSlotCapacity> slots;
    Shard() {
      for (auto& s : slots) s.store(0, std::memory_order_relaxed);
    }
  };

  /// The calling thread's shard (registered under the mutex on first use,
  /// then cached in a thread_local — no lock afterwards).
  Shard& local_shard() {
    thread_local Shard* shard = &register_shard();
    return *shard;
  }

 private:
  MetricsRegistry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind = Kind::kCounter;
    std::uint32_t slot = 0;            // counter / histogram base slot
    std::atomic<double>* gauge = nullptr;
    const std::vector<double>* bounds = nullptr;
  };

  Shard& register_shard();
  std::uint32_t allocate_slots(std::size_t n);
  std::uint64_t sum_slot(std::uint32_t slot) const;

  friend class Sketch;
  void record_sketch(std::size_t index, double value);

  mutable std::mutex mu_;
  std::deque<std::unique_ptr<Shard>> shards_;        // guarded by mu_
  std::map<std::string, Entry> entries_;             // guarded by mu_
  std::deque<std::atomic<double>> gauge_cells_;      // stable references
  std::deque<std::vector<double>> histogram_bounds_; // stable references
  std::size_t next_slot_ = 0;                        // guarded by mu_

  // Sketch plane: its own mutex so a (cold-path) record never contends
  // with registration. Lock order when both are needed: mu_, sketch_mu_.
  mutable std::mutex sketch_mu_;
  std::map<std::string, std::size_t> sketch_names_;  // guarded by sketch_mu_
  std::deque<LogBucketSketch> sketch_store_;         // stable references
};

inline void Counter::add(std::uint64_t n) {
  if (registry_ == nullptr) return;
  registry_->local_shard().slots[slot_].fetch_add(n,
                                                  std::memory_order_relaxed);
}

inline void Sketch::record(double value) {
  if (registry_ == nullptr) return;
  registry_->record_sketch(index_, value);
}

inline void Histogram::record(double value) {
  if (registry_ == nullptr) return;
  auto& slots = registry_->local_shard().slots;
  std::size_t bucket = bounds_->size();  // overflow by default
  for (std::size_t i = 0; i < bounds_->size(); ++i) {
    if (value <= (*bounds_)[i]) {
      bucket = i;
      break;
    }
  }
  slots[base_ + bucket].fetch_add(1, std::memory_order_relaxed);
  // Sum travels as signed micro-units in the unsigned slot (two's
  // complement add is exact under wraparound; decoded on snapshot).
  const auto micros = static_cast<std::int64_t>(value * 1e6);
  slots[base_ + bounds_->size() + 1].fetch_add(
      static_cast<std::uint64_t>(micros), std::memory_order_relaxed);
}

}  // namespace spatl::obs
