#include "obs/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace spatl::obs {

LogBucketSketch::LogBucketSketch(double relative_accuracy)
    : alpha_(relative_accuracy) {
  if (!(alpha_ > 0.0) || !(alpha_ < 1.0)) {
    throw std::invalid_argument(
        "LogBucketSketch: relative accuracy must lie in (0, 1)");
  }
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  log_gamma_ = std::log(gamma_);
}

void LogBucketSketch::record(double value) {
  if (!std::isfinite(value)) return;  // a NaN latency is a bug upstream
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (value <= kMinTrackable) {
    ++zero_count_;
    return;
  }
  // Bucket i covers (gamma^(i-1), gamma^i]: ceil puts an exact power on
  // its own upper boundary, keeping the error bound one-sided per bucket.
  const auto index =
      static_cast<std::int32_t>(std::ceil(std::log(value) / log_gamma_));
  ++buckets_[index];
}

void LogBucketSketch::merge(const LogBucketSketch& other) {
  if (alpha_ != other.alpha_) {
    throw std::invalid_argument(
        "LogBucketSketch: cannot merge sketches with different accuracies");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  zero_count_ += other.zero_count_;
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
}

double LogBucketSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank (0-based) over the deterministic ascending bucket walk.
  const auto rank = static_cast<std::uint64_t>(q * double(count_ - 1));
  std::uint64_t cumulative = zero_count_;
  if (rank < cumulative) return 0.0;
  for (const auto& [index, n] : buckets_) {
    cumulative += n;
    if (rank < cumulative) {
      const double estimate =
          2.0 * std::pow(gamma_, double(index)) / (gamma_ + 1.0);
      return std::clamp(estimate, min_, max_);
    }
  }
  return max_;  // unreachable unless counts drifted; fail safe at the top
}

SketchSnapshot LogBucketSketch::snapshot() const {
  SketchSnapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = min();
  s.max = max();
  s.relative_accuracy = alpha_;
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

void LogBucketSketch::clear() {
  buckets_.clear();
  zero_count_ = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

}  // namespace spatl::obs
