// Deterministic, mergeable log-bucket quantile sketch (DESIGN.md §10.1).
//
// Values are binned into geometrically-spaced buckets: bucket i covers
// (gamma^(i-1), gamma^i] with gamma = (1 + a) / (1 - a) for a configured
// relative accuracy a. Reporting the log-midpoint 2·gamma^i / (gamma + 1)
// of the winning bucket bounds the relative error of every quantile
// estimate by a — |q_est - q_true| <= a · q_true — independent of the
// data's scale or distribution (the DDSketch construction). Buckets live
// in an ordered map keyed by integer index, so memory is O(distinct
// magnitudes) and every walk is deterministic.
//
// Two sketches with the same relative accuracy merge by bucket-wise
// addition, which makes the summary shard-safe: per-shard sketches can be
// combined without re-observing a single sample and the merged quantiles
// carry the same error bound.
//
// Zero, negative, and sub-resolution values (< kMinTrackable) share a
// dedicated zero bucket and report as 0.0; non-finite values are ignored.
// The sketch is observation-plane only (never feeds back into simulation
// arithmetic) and is NOT internally synchronized — the MetricsRegistry
// guards its sketches with a mutex, which is fine for the cold paths
// (once-per-round latency totals) it serves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

namespace spatl::obs {

/// Point-in-time summary of a sketch: moments plus the standard latency
/// quantiles, each within `relative_accuracy` of the true order statistic.
struct SketchSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double relative_accuracy = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

class LogBucketSketch {
 public:
  /// Values at or below this threshold collapse into the zero bucket.
  static constexpr double kMinTrackable = 1e-12;

  /// `relative_accuracy` must lie in (0, 1); 0.01 gives ~1% quantile error
  /// with ~460 buckets per decade-spanning workload.
  explicit LogBucketSketch(double relative_accuracy = 0.01);

  void record(double value);

  /// Bucket-wise merge; throws std::invalid_argument when the accuracies
  /// differ (the bucket geometries would not line up).
  void merge(const LogBucketSketch& other);

  /// q-quantile estimate (q clamped to [0, 1]); 0.0 on an empty sketch.
  /// Uses the nearest-rank order statistic over the bucket walk, clamped
  /// into [min, max] so an estimate can never leave the observed range.
  double quantile(double q) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double relative_accuracy() const { return alpha_; }
  std::size_t bucket_count() const { return buckets_.size(); }

  SketchSnapshot snapshot() const;

  /// Forget every observation; geometry (accuracy) is retained.
  void clear();

 private:
  double alpha_;      // configured relative accuracy
  double gamma_;      // bucket growth factor (1 + a) / (1 - a)
  double log_gamma_;  // cached log(gamma)

  std::map<std::int32_t, std::uint64_t> buckets_;
  std::uint64_t zero_count_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace spatl::obs
