// The telemetry layer's only wall-clock reads live in this file: spans
// observe where time goes but never feed it back into the simulation.
// spatl-lint: allow(chrono-now)
#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <map>

namespace spatl::obs {

namespace {

std::uint64_t steady_now_ns() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

std::uint32_t local_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local std::uint32_t t_span_depth = 0;

}  // namespace

Tracer::Tracer() : epoch_ns_(steady_now_ns()) { ring_.reserve(capacity_); }

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() const { return steady_now_ns() - epoch_ns_; }

std::uint32_t Tracer::push_depth() { return t_span_depth++; }

void Tracer::pop_depth() {
  if (t_span_depth > 0) --t_span_depth;
}

void Tracer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<std::size_t>(1, capacity);
  ring_.clear();
  ring_.reserve(capacity_);
  head_ = 0;
  dropped_ = 0;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

void Tracer::record(const char* name, const char* category,
                    std::uint64_t start_ns, std::uint64_t end_ns,
                    std::uint32_t depth) {
  SpanEvent ev;
  ev.name = name;
  ev.category = category;
  ev.start_ns = start_ns;
  ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  ev.tid = local_thread_id();
  ev.depth = depth;
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled()) return;  // disabled while the span was open: drop
  ev.seq = seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[head_] = ev;  // overwrite the oldest event
    ++dropped_;
  }
  head_ = (head_ + 1) % capacity_;
}

std::vector<SpanEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanEvent> out = ring_;
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint64_t Tracer::cursor() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

std::vector<Tracer::PhaseTotal> Tracer::phase_totals(
    std::uint64_t since_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, PhaseTotal> totals;
  for (const SpanEvent& ev : ring_) {
    if (ev.seq < since_seq) continue;
    PhaseTotal& t = totals[ev.name];
    if (t.name.empty()) t.name = ev.name;
    t.total_ns += ev.dur_ns;
    ++t.count;
  }
  std::vector<PhaseTotal> out;
  out.reserve(totals.size());
  for (auto& [name, total] : totals) out.push_back(std::move(total));
  return out;
}

}  // namespace spatl::obs
