// Span-based phase tracer: SPATL_TRACE_SPAN("phase") opens an RAII span
// whose wall-clock extent, thread id, and nesting depth are recorded into a
// bounded ring buffer for Chrome-trace export and per-round phase
// attribution (DESIGN.md §10).
//
// Cost model: when tracing is disabled (the default) a span is one relaxed
// atomic load and two branches — cheap enough to leave in every phase of
// the federated stack. When enabled, each span end takes a short mutex to
// push one fixed-size event; spans instrument coarse phases (per round /
// per client / per agent step), not inner kernels, so contention is nil.
//
// All wall-clock reads live in trace.cpp behind the repo-wide chrono-now
// lint carve-out: the tracer observes the simulation and must never feed
// time back into it, so enabling tracing cannot change a single float.
//
// Span names and categories must be string literals (or otherwise outlive
// the tracer): events store the pointers, not copies.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace spatl::obs {

struct SpanEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t start_ns = 0;  // since tracer epoch
  std::uint64_t dur_ns = 0;
  std::uint64_t seq = 0;  // global completion order
  std::uint32_t tid = 0;  // dense per-thread id, assigned on first span
  std::uint32_t depth = 0;  // nesting level on the recording thread
};

class Tracer {
 public:
  static Tracer& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Ring capacity in events; when full the oldest events are overwritten
  /// and dropped() counts them. Clears the buffer.
  void set_capacity(std::size_t capacity);
  void clear();

  /// Completed spans in completion (seq) order.
  std::vector<SpanEvent> events() const;
  std::uint64_t dropped() const;

  /// Sequence number the next completed span will get — a cursor for
  /// phase_totals() round windows.
  std::uint64_t cursor() const;

  /// Wall-time totals per span name over events with seq >= since_seq
  /// (sorted by name — deterministic exporter output).
  struct PhaseTotal {
    std::string name;
    std::uint64_t total_ns = 0;
    std::uint64_t count = 0;
  };
  std::vector<PhaseTotal> phase_totals(std::uint64_t since_seq) const;

  // --- TraceSpan internals ------------------------------------------------
  std::uint64_t now_ns() const;  // monotonic, relative to tracer epoch
  void record(const char* name, const char* category, std::uint64_t start_ns,
              std::uint64_t end_ns, std::uint32_t depth);
  static std::uint32_t push_depth();  // returns depth BEFORE the push
  static void pop_depth();

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  std::uint64_t epoch_ns_ = 0;  // absolute steady-clock origin

  mutable std::mutex mu_;
  std::vector<SpanEvent> ring_;  // guarded by mu_
  std::size_t capacity_ = 1 << 16;
  std::size_t head_ = 0;  // next write index, guarded by mu_
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;
};

class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "spatl") {
    Tracer& tracer = Tracer::instance();
    if (!tracer.enabled()) return;
    name_ = name;
    category_ = category;
    start_ns_ = tracer.now_ns();
    depth_ = Tracer::push_depth();
  }
  ~TraceSpan() {
    if (name_ == nullptr) return;
    Tracer& tracer = Tracer::instance();
    Tracer::pop_depth();
    tracer.record(name_, category_, start_ns_, tracer.now_ns(), depth_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

#define SPATL_OBS_CONCAT_INNER(a, b) a##b
#define SPATL_OBS_CONCAT(a, b) SPATL_OBS_CONCAT_INNER(a, b)

/// Open a scoped span: SPATL_TRACE_SPAN("fl/round") or
/// SPATL_TRACE_SPAN("rl/act", "rl"). Name/category must be literals.
#define SPATL_TRACE_SPAN(...)                                  \
  ::spatl::obs::TraceSpan SPATL_OBS_CONCAT(spatl_trace_span_,  \
                                           __LINE__)(__VA_ARGS__)

}  // namespace spatl::obs
