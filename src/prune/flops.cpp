#include "prune/flops.hpp"

#include <stdexcept>

namespace spatl::prune {

using models::LayerInfo;
using models::LayerKind;

namespace {

double keep_of(const std::vector<double>& gate_keep, int gate) {
  if (gate < 0) return 1.0;
  if (std::size_t(gate) >= gate_keep.size()) {
    throw std::out_of_range("gate index outside keep vector");
  }
  return gate_keep[std::size_t(gate)];
}

double layer_flops(const LayerInfo& l, double keep_in, double keep_out) {
  const double out_hw = double(l.out_h) * double(l.out_w);
  switch (l.kind) {
    case LayerKind::kConv:
      // 2 * k^2 * Cin_eff * Cout_eff * H_out * W_out (MAC = 2 FLOPs)
      return 2.0 * double(l.kernel) * double(l.kernel) *
             double(l.in_ch) * keep_in * double(l.out_ch) * keep_out * out_hw;
    case LayerKind::kDepthwiseConv:
      // One k^2 filter per (kept) channel.
      return 2.0 * double(l.kernel) * double(l.kernel) * double(l.in_ch) *
             keep_in * out_hw;
    case LayerKind::kBatchNorm:
      // scale + shift per element
      return 2.0 * double(l.out_ch) * keep_out * out_hw;
    case LayerKind::kReLU:
      return double(l.out_ch) * keep_out * out_hw;
    case LayerKind::kMaxPool:
      return double(l.kernel) * double(l.kernel) * double(l.out_ch) *
             keep_out * out_hw;
    case LayerKind::kGlobalAvgPool:
      return double(l.in_ch) * keep_in * double(l.in_h) * double(l.in_w);
    case LayerKind::kLinear:
      return 2.0 * double(l.in_ch) * keep_in * double(l.out_ch) * keep_out;
    case LayerKind::kAdd:
      return double(l.out_ch) * keep_out * out_hw;
  }
  return 0.0;
}

}  // namespace

double dense_layer_flops(const LayerInfo& layer) {
  return layer_flops(layer, 1.0, 1.0);
}

double dense_encoder_flops(const std::vector<LayerInfo>& layers) {
  double total = 0.0;
  for (const auto& l : layers) total += dense_layer_flops(l);
  return total;
}

double gated_encoder_flops(const std::vector<LayerInfo>& layers,
                           const std::vector<double>& gate_keep) {
  double total = 0.0;
  for (const auto& l : layers) {
    total += layer_flops(l, keep_of(gate_keep, l.in_gate),
                         keep_of(gate_keep, l.out_gate));
  }
  return total;
}

double encoder_flops(const models::SplitModel& model) {
  return gated_encoder_flops(model.layers(), model.gate_keep_fractions());
}

namespace {

double layer_weight_params(const LayerInfo& l, double keep_in,
                           double keep_out) {
  switch (l.kind) {
    case LayerKind::kConv:
      return double(l.kernel) * double(l.kernel) * double(l.in_ch) * keep_in *
             double(l.out_ch) * keep_out;
    case LayerKind::kDepthwiseConv:
      return double(l.kernel) * double(l.kernel) * double(l.in_ch) * keep_in;
    case LayerKind::kLinear:
      return double(l.in_ch) * keep_in * double(l.out_ch) * keep_out;
    case LayerKind::kBatchNorm:
      return 2.0 * double(l.out_ch) * keep_out;  // gamma + beta
    default:
      return 0.0;
  }
}

}  // namespace

double dense_encoder_weight_params(const std::vector<LayerInfo>& layers) {
  double total = 0.0;
  for (const auto& l : layers) total += layer_weight_params(l, 1.0, 1.0);
  return total;
}

double gated_encoder_weight_params(const std::vector<LayerInfo>& layers,
                                   const std::vector<double>& gate_keep) {
  double total = 0.0;
  for (const auto& l : layers) {
    total += layer_weight_params(l, keep_of(gate_keep, l.in_gate),
                                 keep_of(gate_keep, l.out_gate));
  }
  return total;
}

}  // namespace spatl::prune
