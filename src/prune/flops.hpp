// Analytic FLOPs and parameter accounting over a model's LayerInfo record,
// with and without channel gates.
//
// The paper reports inference acceleration as FLOPs reduction (§V-D) rather
// than wall-clock, precisely because FLOPs are platform-independent; we
// follow the same convention (multiply-accumulate = 2 FLOPs).
#pragma once

#include <vector>

#include "models/split_model.hpp"

namespace spatl::prune {

/// Dense FLOPs of a single layer (no gating).
double dense_layer_flops(const models::LayerInfo& layer);

/// Dense FLOPs of the whole encoder.
double dense_encoder_flops(const std::vector<models::LayerInfo>& layers);

/// Effective FLOPs under per-gate keep fractions: a conv's cost scales by
/// keep(in_gate) * keep(out_gate); BN/ReLU/pool scale by keep(out channels'
/// gate) when gated.
double gated_encoder_flops(const std::vector<models::LayerInfo>& layers,
                           const std::vector<double>& gate_keep);

/// Effective FLOPs of `model` with its gates' *current* masks.
double encoder_flops(const models::SplitModel& model);

/// Parameter-count analogues (conv/linear weights only — what gets
/// communicated).
double dense_encoder_weight_params(
    const std::vector<models::LayerInfo>& layers);
double gated_encoder_weight_params(
    const std::vector<models::LayerInfo>& layers,
    const std::vector<double>& gate_keep);

}  // namespace spatl::prune
