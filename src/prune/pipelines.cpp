#include "prune/pipelines.hpp"

#include "data/loader.hpp"
#include "prune/flops.hpp"

namespace spatl::prune {

double overall_sparsity(const models::SplitModel& model) {
  std::size_t total = 0, kept = 0;
  for (const auto* gate : model.gates()) {
    total += gate->channels();
    for (auto m : gate->mask()) kept += m;
  }
  if (total == 0) return 0.0;
  return 1.0 - double(kept) / double(total);
}

namespace {

PruneEvalResult finish(models::SplitModel& model,
                       const data::Dataset& eval_set) {
  PruneEvalResult result;
  result.accuracy = data::evaluate(model, eval_set).accuracy;
  result.flops_ratio =
      encoder_flops(model) / dense_encoder_flops(model.layers());
  result.sparsity = overall_sparsity(model);
  return result;
}

}  // namespace

PruneEvalResult one_shot_prune_and_finetune(
    models::SplitModel& model, const data::Dataset& train_set,
    const data::Dataset& eval_set, Criterion criterion, double sparsity,
    std::size_t finetune_epochs, const data::TrainOptions& opts,
    common::Rng& rng) {
  apply_uniform_sparsity(model, sparsity, criterion, rng.next());
  if (finetune_epochs > 0) {
    data::TrainOptions tune = opts;
    tune.epochs = finetune_epochs;
    data::train_supervised(model, train_set, tune, rng, model.all_params());
  }
  return finish(model, eval_set);
}

PruneEvalResult sfp_train(models::SplitModel& model,
                          const data::Dataset& train_set,
                          const data::Dataset& eval_set, double sparsity,
                          std::size_t epochs, const data::TrainOptions& opts,
                          common::Rng& rng) {
  data::TrainOptions one_epoch = opts;
  one_epoch.epochs = 1;
  for (std::size_t e = 0; e < epochs; ++e) {
    // Soft phase: gates stay open so every filter keeps receiving gradient.
    model.reset_gates();
    data::train_supervised(model, train_set, one_epoch, rng,
                           model.all_params());
    // Zero (but do not freeze) the lowest-norm channels of each gated conv.
    const auto& convs = model.gate_convs();
    for (std::size_t g = 0; g < convs.size(); ++g) {
      nn::Tensor& w = convs[g]->weight();
      const std::size_t channels = w.dim(0), cols = w.dim(1);
      const std::size_t keep = std::max<std::size_t>(
          1, std::size_t(std::ceil((1.0 - sparsity) * double(channels))));
      const auto mask =
          top_k_mask(channel_scores(w, Criterion::kL2), keep);
      for (std::size_t c = 0; c < channels; ++c) {
        if (!mask[c]) {
          for (std::size_t j = 0; j < cols; ++j) w[c * cols + j] = 0.0f;
        }
      }
    }
  }
  // Hard phase: mask what is currently lowest-norm and evaluate.
  apply_uniform_sparsity(model, sparsity, Criterion::kL2, rng.next());
  return finish(model, eval_set);
}

}  // namespace spatl::prune
