// One-shot and soft pruning pipelines — the Table IV baselines.
//
// - one_shot_prune_and_finetune: classic magnitude/FPGM pruning — score,
//   mask, fine-tune the surviving weights.
// - sfp_train: Soft Filter Pruning (He et al., IJCAI'18) — after every
//   epoch, the lowest-norm filters are zeroed but stay trainable, so
//   "pruned" filters can recover; a hard mask is applied at the end.
#pragma once

#include "data/dataset.hpp"
#include "data/train.hpp"
#include "prune/saliency.hpp"

namespace spatl::prune {

struct PruneEvalResult {
  double accuracy = 0.0;         // top-1 on eval set after pruning (+tuning)
  double flops_ratio = 1.0;      // gated / dense encoder FLOPs
  double sparsity = 0.0;         // pruned fraction of gated channels
};

/// Apply `criterion` at uniform `sparsity`, then fine-tune all surviving
/// parameters for `finetune_epochs`, then evaluate.
PruneEvalResult one_shot_prune_and_finetune(
    models::SplitModel& model, const data::Dataset& train_set,
    const data::Dataset& eval_set, Criterion criterion, double sparsity,
    std::size_t finetune_epochs, const data::TrainOptions& opts,
    common::Rng& rng);

/// Soft Filter Pruning: train `epochs` epochs; after each epoch zero the
/// lowest-L2 channels at `sparsity` (weights remain trainable). Ends with a
/// hard mask + evaluation.
PruneEvalResult sfp_train(models::SplitModel& model,
                          const data::Dataset& train_set,
                          const data::Dataset& eval_set, double sparsity,
                          std::size_t epochs, const data::TrainOptions& opts,
                          common::Rng& rng);

/// Fraction of gated channels currently masked off across the model.
double overall_sparsity(const models::SplitModel& model);

}  // namespace spatl::prune
