#include "prune/saliency.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"
#include "prune/flops.hpp"

namespace spatl::prune {

std::string criterion_name(Criterion c) {
  switch (c) {
    case Criterion::kL1: return "l1";
    case Criterion::kL2: return "l2";
    case Criterion::kGeometricMedian: return "fpgm";
    case Criterion::kRandom: return "random";
    case Criterion::kUpdateMagnitude: return "update";
  }
  return "?";
}

std::vector<double> channel_scores(const nn::Tensor& weight, Criterion c,
                                   const nn::Tensor* reference,
                                   std::uint64_t seed) {
  if (weight.rank() != 2) {
    throw std::invalid_argument("channel_scores: weight must be (out, in*k*k)");
  }
  const std::size_t out = weight.dim(0), cols = weight.dim(1);
  std::vector<double> scores(out, 0.0);
  switch (c) {
    case Criterion::kL1:
      for (std::size_t o = 0; o < out; ++o) {
        double s = 0.0;
        for (std::size_t j = 0; j < cols; ++j) {
          s += std::fabs(weight[o * cols + j]);
        }
        scores[o] = s;
      }
      break;
    case Criterion::kL2:
      for (std::size_t o = 0; o < out; ++o) {
        double s = 0.0;
        for (std::size_t j = 0; j < cols; ++j) {
          const double v = weight[o * cols + j];
          s += v * v;
        }
        scores[o] = std::sqrt(s);
      }
      break;
    case Criterion::kGeometricMedian: {
      // FPGM prunes filters with the smallest total distance to all other
      // filters (i.e. closest to the geometric median -> most redundant).
      // Salience = sum of pairwise distances.
      for (std::size_t a = 0; a < out; ++a) {
        double total = 0.0;
        for (std::size_t b = 0; b < out; ++b) {
          if (a == b) continue;
          double d = 0.0;
          for (std::size_t j = 0; j < cols; ++j) {
            const double diff = weight[a * cols + j] - weight[b * cols + j];
            d += diff * diff;
          }
          total += std::sqrt(d);
        }
        scores[a] = total;
      }
      break;
    }
    case Criterion::kRandom: {
      common::Rng rng(seed ^ 0x9E3779B97F4A7C15ULL);
      for (auto& s : scores) s = rng.uniform();
      break;
    }
    case Criterion::kUpdateMagnitude: {
      if (reference == nullptr || !reference->same_shape(weight)) {
        throw std::invalid_argument(
            "channel_scores: kUpdateMagnitude needs a same-shape reference");
      }
      for (std::size_t o = 0; o < out; ++o) {
        double s = 0.0;
        for (std::size_t j = 0; j < cols; ++j) {
          const double d = weight[o * cols + j] - (*reference)[o * cols + j];
          s += d * d;
        }
        scores[o] = std::sqrt(s);
      }
      break;
    }
  }
  return scores;
}

std::vector<std::uint8_t> top_k_mask(const std::vector<double>& scores,
                                     std::size_t keep_count) {
  keep_count = std::min(keep_count, scores.size());
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  std::vector<std::uint8_t> mask(scores.size(), 0);
  for (std::size_t i = 0; i < keep_count; ++i) mask[order[i]] = 1;
  return mask;
}

void apply_sparsities(models::SplitModel& model,
                      const std::vector<double>& sparsities,
                      Criterion criterion, std::uint64_t seed,
                      const std::vector<nn::Tensor>* references) {
  const auto& gates = model.gates();
  const auto& convs = model.gate_convs();
  if (sparsities.size() != gates.size()) {
    throw std::invalid_argument("apply_sparsities: need one ratio per gate");
  }
  if (references != nullptr && references->size() != gates.size()) {
    throw std::invalid_argument("apply_sparsities: reference count mismatch");
  }
  for (std::size_t g = 0; g < gates.size(); ++g) {
    const std::size_t channels = gates[g]->channels();
    const double sparsity = std::clamp(sparsities[g], 0.0, 1.0);
    // ceil() of the keep fraction: at least 1 channel always survives.
    const std::size_t keep = std::max<std::size_t>(
        1, std::size_t(std::ceil((1.0 - sparsity) * double(channels))));
    const nn::Tensor* ref =
        references != nullptr ? &(*references)[g] : nullptr;
    const auto scores =
        channel_scores(convs[g]->weight(), criterion, ref, seed + g);
    gates[g]->set_mask(top_k_mask(scores, keep));
  }
}

void apply_uniform_sparsity(models::SplitModel& model, double sparsity,
                            Criterion criterion, std::uint64_t seed) {
  apply_sparsities(model,
                   std::vector<double>(model.gates().size(), sparsity),
                   criterion, seed);
}

std::vector<double> project_to_flops_budget(const models::SplitModel& model,
                                            std::vector<double> sparsities,
                                            double flops_budget_ratio) {
  const auto& layers = model.layers();
  const double dense = dense_encoder_flops(layers);
  auto ratio_at = [&](double scale) {
    std::vector<double> keep(sparsities.size());
    for (std::size_t g = 0; g < keep.size(); ++g) {
      const double s = std::clamp(sparsities[g] * scale, 0.0, 0.95);
      keep[g] = 1.0 - s;
    }
    return gated_encoder_flops(layers, keep) / dense;
  };
  if (ratio_at(1.0) <= flops_budget_ratio) return sparsities;
  // Find the smallest uniform boost of all sparsities that meets the budget.
  double lo = 1.0, hi = 1.0;
  while (ratio_at(hi) > flops_budget_ratio && hi < 64.0) hi *= 2.0;
  for (int it = 0; it < 40; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (ratio_at(mid) > flops_budget_ratio) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  for (auto& s : sparsities) s = std::clamp(s * hi, 0.0, 0.95);
  return sparsities;
}

}  // namespace spatl::prune
