// Channel saliency criteria and structured pruning application.
//
// A saliency criterion ranks a conv layer's output channels; pruning keeps
// the top-k and masks the rest through the layer's ChannelGate. The criteria
// cover the baselines of the paper's Table IV: L1/L2 filter norms (the
// magnitude family used by SFP), FPGM's distance-to-geometric-median, plus
// random (control) and update-magnitude (used by SPATL's salient-parameter
// upload: channels whose weights moved most during local training carry the
// client's new information).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "models/split_model.hpp"

namespace spatl::prune {

enum class Criterion {
  kL1,
  kL2,
  kGeometricMedian,  // FPGM: prune filters closest to the geometric median
  kRandom,
  kUpdateMagnitude,  // ||w_now - w_ref|| per channel (needs reference)
};

std::string criterion_name(Criterion c);

/// Per-output-channel scores (higher = more salient) for a conv weight of
/// shape (out, in*k*k). For kUpdateMagnitude, `reference` must be the same
/// shape and holds the pre-training weights; for kRandom pass an Rng seed
/// via `seed`.
std::vector<double> channel_scores(const nn::Tensor& weight, Criterion c,
                                   const nn::Tensor* reference = nullptr,
                                   std::uint64_t seed = 0);

/// Keep the `keep_count` highest-scoring channels: returns a 0/1 mask.
std::vector<std::uint8_t> top_k_mask(const std::vector<double>& scores,
                                     std::size_t keep_count);

/// Apply per-gate sparsities to a model: gate g keeps
/// ceil((1 - sparsity[g]) * channels) channels ranked by `criterion` on its
/// conv's weights. sparsity values are clamped to [0, max_sparsity] so at
/// least one channel always survives.
void apply_sparsities(models::SplitModel& model,
                      const std::vector<double>& sparsities,
                      Criterion criterion, std::uint64_t seed = 0,
                      const std::vector<nn::Tensor>* references = nullptr);

/// Uniform-sparsity convenience used by one-shot pruning baselines.
void apply_uniform_sparsity(models::SplitModel& model, double sparsity,
                            Criterion criterion, std::uint64_t seed = 0);

/// Scale a sparsity vector so the gated encoder meets a FLOPs budget
/// (fraction of dense FLOPs). Performs a monotone bisection on a global
/// multiplier; mirrors the constraint loop of the paper's Algorithm 1
/// ("if size(E_t) does not satisfy constraints, produce new policy").
std::vector<double> project_to_flops_budget(
    const models::SplitModel& model, std::vector<double> sparsities,
    double flops_budget_ratio);

}  // namespace spatl::prune
