#include "rl/policy_net.hpp"

#include <cmath>
#include <stdexcept>

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace spatl::rl {

using nn::Tensor;

PolicyNetwork::PolicyNetwork(std::size_t feature_dim, std::size_t embed_dim,
                             std::size_t hidden_dim, common::Rng& rng)
    : feature_dim_(feature_dim),
      embed_dim_(embed_dim),
      hidden_dim_(hidden_dim),
      lift_(std::make_shared<nn::Linear>(feature_dim, embed_dim)),
      lift_relu_(std::make_shared<nn::ReLU>()),
      gcn1_(std::make_shared<nn::Linear>(embed_dim, embed_dim)),
      gcn1_relu_(std::make_shared<nn::ReLU>()),
      gcn2_(std::make_shared<nn::Linear>(embed_dim, embed_dim)),
      gcn2_relu_(std::make_shared<nn::ReLU>()),
      actor_(std::make_shared<nn::Sequential>()),
      critic_(std::make_shared<nn::Sequential>()) {
  actor_->emplace<nn::Linear>(2 * embed_dim, hidden_dim);
  actor_->emplace<nn::ReLU>();
  actor_->emplace<nn::Linear>(hidden_dim, 1);
  critic_->emplace<nn::Linear>(embed_dim, hidden_dim);
  critic_->emplace<nn::ReLU>();
  critic_->emplace<nn::Linear>(hidden_dim, 1);
  lift_->init_params(rng);
  gcn1_->init_params(rng);
  gcn2_->init_params(rng);
  actor_->init_params(rng);
  critic_->init_params(rng);
}

PolicyOutput PolicyNetwork::forward(const graph::ComputeGraph& graph) {
  if (graph.node_features.dim(1) != feature_dim_) {
    throw std::invalid_argument("PolicyNetwork: feature dim mismatch");
  }
  cached_adj_ = graph::normalized_adjacency(graph);
  cached_action_nodes_ = graph.action_nodes;
  cached_nodes_ = graph.num_nodes();
  const std::size_t n = cached_nodes_;

  // GNN trunk.
  Tensor h = lift_relu_->forward(
      lift_->forward(graph.node_features, true), true);
  Tensor m;
  tensor::matmul(cached_adj_, h, m);
  h = gcn1_relu_->forward(gcn1_->forward(m, true), true);
  tensor::matmul(cached_adj_, h, m);
  h = gcn2_relu_->forward(gcn2_->forward(m, true), true);
  cached_h2_ = h;  // (N, D)

  // Mean pooling -> graph embedding.
  Tensor g({1, embed_dim_});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < embed_dim_; ++d) {
      g[d] += h[i * embed_dim_ + d];
    }
  }
  g *= 1.0f / float(n);

  // Actor input: [h_node ; g] per action node.
  const std::size_t k = cached_action_nodes_.size();
  Tensor za({k, 2 * embed_dim_});
  for (std::size_t a = 0; a < k; ++a) {
    const int node = cached_action_nodes_[a];
    if (node < 0 || std::size_t(node) >= n) {
      throw std::invalid_argument("PolicyNetwork: bad action node index");
    }
    for (std::size_t d = 0; d < embed_dim_; ++d) {
      za[a * 2 * embed_dim_ + d] = h[std::size_t(node) * embed_dim_ + d];
      za[a * 2 * embed_dim_ + embed_dim_ + d] = g[d];
    }
  }
  Tensor mu_raw = actor_->forward(za, true);  // (K, 1)
  cached_mu_ = mu_raw;
  PolicyOutput out;
  out.action_means.resize(k);
  for (std::size_t a = 0; a < k; ++a) {
    const float s = 1.0f / (1.0f + std::exp(-mu_raw[a]));
    cached_mu_[a] = s;
    out.action_means[a] = double(s);
  }

  Tensor v = critic_->forward(g, true);  // (1, 1)
  out.value = double(v[0]);
  // RL-path numeric guard (ROADMAP): the policy net must never emit NaN/Inf
  // actions or values. The FL data path stays unchecked by design — the
  // divergence guard owns non-finite recovery there.
  SPATL_DCHECK_FINITE(out.action_means);
  SPATL_DCHECK(std::isfinite(out.value));
  return out;
}

void PolicyNetwork::backward(const std::vector<double>& d_means,
                             double d_value) {
  const std::size_t n = cached_nodes_;
  const std::size_t k = cached_action_nodes_.size();
  if (d_means.size() != k) {
    throw std::invalid_argument("PolicyNetwork::backward: d_means size");
  }
  SPATL_DCHECK_FINITE(d_means);
  SPATL_DCHECK(std::isfinite(d_value));
  // Through sigmoid into the actor head.
  Tensor dmu_raw({k, 1});
  for (std::size_t a = 0; a < k; ++a) {
    const float s = cached_mu_[a];
    dmu_raw[a] = float(d_means[a]) * s * (1.0f - s);
  }
  Tensor dza = actor_->backward(dmu_raw);  // (K, 2D)

  // Through the critic head.
  Tensor dv({1, 1});
  dv[0] = float(d_value);
  Tensor dg = critic_->backward(dv);  // (1, D)

  // Route actor-input gradients into node embeddings and graph embedding.
  Tensor dh2({n, embed_dim_});
  for (std::size_t a = 0; a < k; ++a) {
    const std::size_t node = std::size_t(cached_action_nodes_[a]);
    for (std::size_t d = 0; d < embed_dim_; ++d) {
      dh2[node * embed_dim_ + d] += dza[a * 2 * embed_dim_ + d];
      dg[d] += dza[a * 2 * embed_dim_ + embed_dim_ + d];
    }
  }
  // Mean pooling adjoint: every node receives dg / N.
  const float inv_n = 1.0f / float(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < embed_dim_; ++d) {
      dh2[i * embed_dim_ + d] += dg[d] * inv_n;
    }
  }

  // GNN trunk adjoints: h = relu(lin(A * h_prev)) twice, then the lift.
  Tensor dm = gcn2_->backward(gcn2_relu_->backward(dh2));
  Tensor dh1;
  tensor::matmul_tn(cached_adj_, dm, dh1);  // d(A h) / dh = A^T
  dm = gcn1_->backward(gcn1_relu_->backward(dh1));
  Tensor dh0;
  tensor::matmul_tn(cached_adj_, dm, dh0);
  lift_->backward(lift_relu_->backward(dh0));
}

std::vector<nn::ParamView> PolicyNetwork::all_params() {
  std::vector<nn::ParamView> out;
  lift_->collect_params("gnn.lift.", out);
  gcn1_->collect_params("gnn.gcn1.", out);
  gcn2_->collect_params("gnn.gcn2.", out);
  actor_->collect_params("actor.", out);
  critic_->collect_params("critic.", out);
  return out;
}

std::vector<nn::ParamView> PolicyNetwork::head_params() {
  std::vector<nn::ParamView> out;
  actor_->collect_params("actor.", out);
  critic_->collect_params("critic.", out);
  return out;
}

void PolicyNetwork::zero_grad() {
  for (auto& p : all_params()) p.grad->zero();
}

PolicyNetwork PolicyNetwork::clone(common::Rng& rng) const {
  PolicyNetwork copy(feature_dim_, embed_dim_, hidden_dim_, rng);
  auto* self = const_cast<PolicyNetwork*>(this);
  nn::unflatten_values(nn::flatten_values(self->all_params()),
                       copy.all_params());
  return copy;
}

}  // namespace spatl::rl
