// GNN actor-critic policy over computational graphs (paper §IV-B).
//
// Architecture (eqs. 5-6 of the paper): a message-passing graph encoder
// embeds the network topology, then an MLP head projects node embeddings to
// per-layer sparsity ratios (the action) and a second MLP head reads the
// pooled graph embedding as the value estimate:
//
//   H0 = relu(X W0)                     node lift
//   Hr = relu((A Hr-1) Wr), r = 1..2    mean-aggregation message passing
//   g  = mean_i H2[i]                   graph embedding
//   mu_k = sigmoid(MLP_a([H2[a_k]; g])) action mean per gated conv node
//   v    = MLP_c(g)                     critic value
//
// Built from nn::Linear/ReLU blocks plus explicit adjacency matmuls, with a
// hand-written backward for the graph-specific steps (aggregation, pooling,
// concat routing). Fine-tuning mode freezes the GNN trunk and trains only
// the MLP heads, exactly as the paper's on-device customization does.
#pragma once

#include <memory>
#include <vector>

#include "graph/compute_graph.hpp"
#include "nn/layers.hpp"
#include "nn/sequential.hpp"

namespace spatl::rl {

struct PolicyOutput {
  std::vector<double> action_means;  // one per action node, in (0,1)
  double value = 0.0;
};

class PolicyNetwork {
 public:
  PolicyNetwork(std::size_t feature_dim, std::size_t embed_dim,
                std::size_t hidden_dim, common::Rng& rng);

  /// Forward over a graph; caches intermediates for backward.
  PolicyOutput forward(const graph::ComputeGraph& graph);

  /// Backward from d(loss)/d(action_means) and d(loss)/d(value);
  /// accumulates parameter gradients. Must follow forward() on the same
  /// graph.
  void backward(const std::vector<double>& d_means, double d_value);

  /// All parameters (GNN trunk + heads).
  std::vector<nn::ParamView> all_params();
  /// MLP-head parameters only — the fine-tuning subset.
  std::vector<nn::ParamView> head_params();

  void zero_grad();

  std::size_t feature_dim() const { return feature_dim_; }
  std::size_t embed_dim() const { return embed_dim_; }
  std::size_t hidden_dim() const { return hidden_dim_; }

  /// Deep copy (fresh modules, identical weights).
  PolicyNetwork clone(common::Rng& rng) const;

 private:
  std::size_t feature_dim_, embed_dim_, hidden_dim_;

  std::shared_ptr<nn::Linear> lift_;
  std::shared_ptr<nn::ReLU> lift_relu_;
  std::shared_ptr<nn::Linear> gcn1_;
  std::shared_ptr<nn::ReLU> gcn1_relu_;
  std::shared_ptr<nn::Linear> gcn2_;
  std::shared_ptr<nn::ReLU> gcn2_relu_;
  std::shared_ptr<nn::Sequential> actor_;
  std::shared_ptr<nn::Sequential> critic_;

  // Forward caches.
  nn::Tensor cached_adj_;       // (N, N)
  nn::Tensor cached_h2_;        // (N, D)
  nn::Tensor cached_mu_;        // (K, 1) post-sigmoid
  std::vector<int> cached_action_nodes_;
  std::size_t cached_nodes_ = 0;
};

}  // namespace spatl::rl
