#include "rl/ppo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spatl::rl {

PpoAgent::PpoAgent(std::size_t feature_dim, PpoConfig config,
                   std::uint64_t seed)
    : config_(config), rng_(seed) {
  net_ = std::make_unique<PolicyNetwork>(feature_dim, config.embed_dim,
                                         config.hidden_dim, rng_);
  rebuild_optimizer();
}

void PpoAgent::rebuild_optimizer() {
  auto params = finetune_ ? net_->head_params() : net_->all_params();
  optimizer_ = std::make_unique<nn::Adam>(std::move(params),
                                          nn::AdamOptions{.lr = config_.lr});
}

void PpoAgent::set_finetune(bool finetune) {
  if (finetune_ == finetune) return;
  finetune_ = finetune;
  rebuild_optimizer();  // fresh moments over the new trainable set
}

double PpoAgent::log_prob(const std::vector<double>& actions,
                          const std::vector<double>& means) const {
  const double sigma = config_.action_std;
  const double log_norm =
      -0.5 * std::log(2.0 * 3.14159265358979323846 * sigma * sigma);
  double lp = 0.0;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const double z = (actions[i] - means[i]) / sigma;
    lp += log_norm - 0.5 * z * z;
  }
  return lp;
}

std::vector<double> PpoAgent::act(const graph::ComputeGraph& graph,
                                  bool explore) {
  SPATL_TRACE_SPAN("rl/act", "rl");
  const PolicyOutput out = net_->forward(graph);
  if (!explore) return out.action_means;

  std::vector<double> actions(out.action_means.size());
  for (std::size_t i = 0; i < actions.size(); ++i) {
    // Sampled sparsities are clamped to the valid (0,1) action box; the
    // log-prob is computed on the clamped value (standard clipped-Gaussian
    // practice for bounded action spaces).
    actions[i] = std::clamp(
        rng_.normal(out.action_means[i], config_.action_std), 0.0, 0.98);
  }
  pending_.graph = graph;
  pending_.actions = actions;
  pending_.logp_old = log_prob(actions, out.action_means);
  pending_.value_old = out.value;
  has_pending_ = true;
  return actions;
}

void PpoAgent::observe_reward(double reward) {
  if (!has_pending_) {
    throw std::logic_error("observe_reward: no pending transition");
  }
  pending_.reward = reward;
  buffer_.push_back(std::move(pending_));
  has_pending_ = false;
}

double PpoAgent::update() {
  if (buffer_.empty()) return 0.0;
  SPATL_TRACE_SPAN("rl/update", "rl");

  // One-step episodes: advantage = reward - V(s), normalized across the
  // batch for scale robustness.
  std::vector<double> adv(buffer_.size());
  double mean = 0.0;
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    adv[i] = buffer_[i].reward - buffer_[i].value_old;
    mean += adv[i];
  }
  mean /= double(buffer_.size());
  double var = 0.0;
  for (double a : adv) var += (a - mean) * (a - mean);
  const double stddev = std::sqrt(var / double(buffer_.size())) + 1e-8;
  for (double& a : adv) a = (a - mean) / stddev;
  SPATL_DCHECK_FINITE(adv);

  const double sigma2 = config_.action_std * config_.action_std;
  double mean_abs_adv = 0.0;
  for (double a : adv) mean_abs_adv += std::fabs(a);
  mean_abs_adv /= double(buffer_.size());

  double ratio_sum = 0.0;
  std::size_t ratio_count = 0;
  std::size_t clipped_count = 0;
  for (std::size_t epoch = 0; epoch < config_.update_epochs; ++epoch) {
    net_->zero_grad();
    for (std::size_t i = 0; i < buffer_.size(); ++i) {
      const Transition& t = buffer_[i];
      const PolicyOutput out = net_->forward(t.graph);
      const double logp_new = log_prob(t.actions, out.action_means);
      const double ratio = std::exp(
          std::clamp(logp_new - t.logp_old, -20.0, 20.0));
      SPATL_DCHECK(std::isfinite(ratio));
      ratio_sum += ratio;
      ++ratio_count;

      // Clipped surrogate: gradient flows through `ratio` only when the
      // unclipped branch is active.
      const bool active = adv[i] >= 0.0 ? (ratio < 1.0 + config_.clip)
                                        : (ratio > 1.0 - config_.clip);
      if (!active) ++clipped_count;
      std::vector<double> d_means(t.actions.size(), 0.0);
      if (active) {
        const double dl_dlogp = -adv[i] * ratio / double(buffer_.size());
        for (std::size_t k = 0; k < t.actions.size(); ++k) {
          // dlogp/dmu_k = (a_k - mu_k) / sigma^2
          d_means[k] =
              dl_dlogp * (t.actions[k] - out.action_means[k]) / sigma2;
        }
      }
      SPATL_DCHECK_FINITE(d_means);
      const double d_value = config_.value_coef * (out.value - t.reward) /
                             double(buffer_.size());
      SPATL_DCHECK(std::isfinite(d_value));
      net_->backward(d_means, d_value);
    }
    optimizer_->step();
  }

  // Update diagnostics (observation only: gauge reads never feed back).
  // Fixed-sigma Gaussian policy entropy per action dimension.
  auto& registry = obs::MetricsRegistry::instance();
  registry.gauge("rl.advantage_mean_abs").set(mean_abs_adv);
  if (ratio_count > 0) {
    registry.gauge("rl.ratio_mean").set(ratio_sum / double(ratio_count));
    registry.gauge("rl.clip_fraction")
        .set(double(clipped_count) / double(ratio_count));
  }
  const double entropy_per_dim =
      0.5 * std::log(2.0 * 3.14159265358979323846 *
                     2.718281828459045 * sigma2);
  registry.gauge("rl.policy_entropy_per_dim").set(entropy_per_dim);
  registry.counter("rl.updates").increment();

  buffer_.clear();
  return mean_abs_adv;
}

PpoAgent PpoAgent::clone(std::uint64_t seed) const {
  PpoAgent copy(net_->feature_dim(), config_, seed);
  auto* self = const_cast<PpoAgent*>(this);
  nn::unflatten_values(nn::flatten_values(self->net_->all_params()),
                       copy.net_->all_params());
  copy.finetune_ = finetune_;
  copy.rebuild_optimizer();
  return copy;
}

}  // namespace spatl::rl
