// PPO agent over the pruning-policy search (paper §IV-B2, eq. 8).
//
// Episodes are single-step: state = the encoder's computational graph,
// action = the vector of per-layer sparsity ratios, reward = validation
// accuracy of the selected sub-network. The agent keeps a Gaussian policy
// with fixed standard deviation around the GNN actor's means and updates
// with the clipped surrogate objective via Adam, matching the paper's
// hyper-parameter block (clip 0.2, fixed action std, Adam).
#pragma once

#include <memory>
#include <vector>

#include "nn/optimizer.hpp"
#include "rl/policy_net.hpp"

namespace spatl::rl {

struct PpoConfig {
  double clip = 0.2;
  double action_std = 0.5;
  double lr = 3e-3;
  double value_coef = 0.5;
  std::size_t update_epochs = 4;
  std::size_t embed_dim = 32;
  std::size_t hidden_dim = 32;
  double gamma = 0.99;  // kept for config fidelity; one-step episodes
};

class PpoAgent {
 public:
  PpoAgent(std::size_t feature_dim, PpoConfig config, std::uint64_t seed);

  /// Sample an action vector for `graph`. With explore=false returns the
  /// policy means (deterministic, used at deployment). With explore=true a
  /// pending transition is recorded; complete it with observe_reward().
  std::vector<double> act(const graph::ComputeGraph& graph, bool explore);

  /// Attach the reward to the pending transition and push it to the buffer.
  void observe_reward(double reward);

  /// PPO update over the buffered transitions; clears the buffer.
  /// Returns the mean pre-update surrogate advantage (diagnostic).
  double update();

  /// Fine-tune mode trains only the MLP heads (paper: "only update the
  /// MLP's parameter when fine-tuning").
  void set_finetune(bool finetune);
  bool finetune() const { return finetune_; }

  std::size_t buffer_size() const { return buffer_.size(); }
  const PpoConfig& config() const { return config_; }
  PolicyNetwork& network() { return *net_; }

  /// Checkpoint access: the exploration RNG and the Adam moments are the
  /// only mutable state besides the network weights once the transition
  /// buffer has drained (update() clears it between FL rounds).
  common::Rng& rng() { return rng_; }
  const common::Rng& rng() const { return rng_; }
  nn::Adam& adam() { return *optimizer_; }
  bool has_pending() const { return has_pending_; }

  /// Deep copy with an independent RNG stream (per-client customization).
  PpoAgent clone(std::uint64_t seed) const;

 private:
  struct Transition {
    graph::ComputeGraph graph;
    std::vector<double> actions;
    double logp_old = 0.0;
    double value_old = 0.0;
    double reward = 0.0;
  };

  double log_prob(const std::vector<double>& actions,
                  const std::vector<double>& means) const;
  void rebuild_optimizer();

  PpoConfig config_;
  common::Rng rng_;
  std::unique_ptr<PolicyNetwork> net_;
  std::unique_ptr<nn::Adam> optimizer_;
  bool finetune_ = false;

  std::vector<Transition> buffer_;
  Transition pending_;
  bool has_pending_ = false;
};

}  // namespace spatl::rl
