#include "rl/pruning_env.hpp"

#include "data/loader.hpp"
#include "obs/trace.hpp"
#include "prune/flops.hpp"
#include "rl/ppo.hpp"

namespace spatl::rl {

PruningEnv::PruningEnv(models::SplitModel& model,
                       const data::Dataset& val_set, PruningEnvConfig config)
    : model_(model), val_(val_set), config_(config) {}

graph::ComputeGraph PruningEnv::reset() {
  model_.reset_gates();
  return graph::build_compute_graph(model_);
}

StepResult PruningEnv::step(const std::vector<double>& sparsities) {
  SPATL_TRACE_SPAN("rl/env_step", "rl");
  StepResult result;
  result.applied_sparsities = prune::project_to_flops_budget(
      model_, sparsities, config_.flops_budget);
  prune::apply_sparsities(model_, result.applied_sparsities,
                          config_.criterion);
  result.flops_ratio = prune::encoder_flops(model_) /
                       prune::dense_encoder_flops(model_.layers());
  result.reward = data::evaluate(model_, val_).accuracy;
  return result;
}

RlTrainHistory train_on_pruning(PpoAgent& agent, PruningEnv& env,
                                std::size_t rounds,
                                std::size_t episodes_per_round) {
  RlTrainHistory history;
  for (std::size_t round = 0; round < rounds; ++round) {
    double reward_sum = 0.0;
    for (std::size_t e = 0; e < episodes_per_round; ++e) {
      SPATL_TRACE_SPAN("rl/episode", "rl");
      const auto graph = env.reset();
      const auto actions = agent.act(graph, /*explore=*/true);
      const StepResult sr = env.step(actions);
      agent.observe_reward(sr.reward);
      reward_sum += sr.reward;
      if (sr.reward > history.best_reward) {
        history.best_reward = sr.reward;
        history.best_sparsities = sr.applied_sparsities;
      }
    }
    agent.update();
    history.rewards.push_back(reward_sum / double(episodes_per_round));
    history.best_so_far.push_back(history.best_reward);
  }
  env.reset();  // leave the model dense
  return history;
}

}  // namespace spatl::rl
