// Network-pruning environment: the RL task the salient-parameter agent is
// pre-trained on, and the per-round evaluation it performs inside SPATL.
//
// One episode = one policy application: actions are per-gate sparsity
// ratios; they are first projected onto the FLOPs budget (the constraint
// loop of the paper's Algorithm 1), then realized as channel masks ranked by
// a saliency criterion; the reward is the masked model's validation
// accuracy (eq. 7).
#pragma once

#include "data/dataset.hpp"
#include "graph/compute_graph.hpp"
#include "prune/saliency.hpp"

namespace spatl::rl {

struct PruningEnvConfig {
  double flops_budget = 0.6;  // target fraction of dense encoder FLOPs
  prune::Criterion criterion = prune::Criterion::kL2;
};

struct StepResult {
  double reward = 0.0;       // validation accuracy of the sub-network
  double flops_ratio = 1.0;  // achieved fraction of dense FLOPs
  std::vector<double> applied_sparsities;
};

class PruningEnv {
 public:
  PruningEnv(models::SplitModel& model, const data::Dataset& val_set,
             PruningEnvConfig config);

  /// Dense-state observation (gates reset).
  graph::ComputeGraph reset();

  /// Apply a sparsity action, return the reward. Leaves the model gated so
  /// callers can inspect/upload the selected sub-network.
  StepResult step(const std::vector<double>& sparsities);

  models::SplitModel& model() { return model_; }
  const PruningEnvConfig& config() const { return config_; }

 private:
  models::SplitModel& model_;
  const data::Dataset& val_;
  PruningEnvConfig config_;
};

/// Reward trace of a training run, for the paper's Fig. 6.
struct RlTrainHistory {
  std::vector<double> rewards;        // mean reward per update round
  std::vector<double> best_so_far;    // running best single-episode reward
  std::vector<double> best_sparsities;  // action vector of the best episode
  double best_reward = 0.0;
};

class PpoAgent;  // fwd

/// Train `agent` on `env`: `rounds` policy-update rounds of
/// `episodes_per_round` one-step episodes each.
RlTrainHistory train_on_pruning(PpoAgent& agent, PruningEnv& env,
                                std::size_t rounds,
                                std::size_t episodes_per_round);

}  // namespace spatl::rl
