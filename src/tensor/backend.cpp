#include "tensor/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "tensor/simd/kernels.hpp"

namespace spatl::tensor {

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kScalar: return "scalar";
    case BackendKind::kCpuSimd: return "cpu-simd";
  }
  return "unknown";
}

BackendKind parse_backend(const std::string& name) {
  if (name == "scalar") return BackendKind::kScalar;
  if (name == "cpu-simd") return BackendKind::kCpuSimd;
  if (name == "auto") {
    return cpu_simd_supported() ? BackendKind::kCpuSimd
                                : BackendKind::kScalar;
  }
  throw std::invalid_argument("unknown backend '" + name +
                              "' (scalar|cpu-simd|auto)");
}

bool cpu_simd_supported() { return simd::avx2_context() != nullptr; }

const ComputeContext& cpu_simd_context() {
  const ComputeContext* ctx = simd::avx2_context();
  return ctx != nullptr ? *ctx : scalar_context();
}

namespace {

const ComputeContext& context_for(BackendKind kind) {
  return kind == BackendKind::kCpuSimd ? cpu_simd_context()
                                       : scalar_context();
}

/// One-time default: SPATL_BACKEND from the environment, else scalar. The
/// magic-static wrapper makes the getenv read race-free no matter which
/// thread first touches a kernel.
BackendKind default_backend() {
  static const BackendKind kind = [] {
    const char* env = std::getenv("SPATL_BACKEND");
    return env != nullptr ? parse_backend(env) : BackendKind::kScalar;
  }();
  return kind;
}

std::atomic<const ComputeContext*>& active_slot() {
  static std::atomic<const ComputeContext*> slot{
      &context_for(default_backend())};
  return slot;
}

}  // namespace

const ComputeContext& active_context() {
  return *active_slot().load(std::memory_order_relaxed);
}

BackendKind active_backend() { return active_context().kind(); }

void set_active_backend(BackendKind kind) {
  active_slot().store(&context_for(kind), std::memory_order_relaxed);
}

}  // namespace spatl::tensor
