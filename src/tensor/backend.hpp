// ComputeContext: the pluggable compute-backend seam under the GEMM family.
//
// The public matmul/matmul_tn/matmul_nt entry points in ops.hpp keep all
// shape validation, the finiteness pre-scan of B, and the parallel_for row
// partitioning (the fixed-chunk contract of common/parallel.hpp), and hand
// each row panel to the active ComputeContext. Backends therefore differ
// only in how a panel is computed, never in which rows land in which chunk,
// so every backend is individually bit-identical across 1/2/N-thread pools.
//
// Two backends ship today:
//
//   scalar    the reference implementation (src/tensor/ops_reference.cpp).
//             Bit-for-bit the repository's historical semantics on finite
//             inputs, and the oracle every other backend is judged against
//             (tests/test_backend.cpp). test_thread_determinism runs locked
//             on this backend.
//   cpu-simd  blocked, register-tiled AVX2+FMA kernels
//             (src/tensor/simd/gemm_avx2.cpp) behind a runtime CPU check.
//             Ulp-bounded against scalar (see the accumulation contract in
//             ops.hpp); falls back to scalar when the CPU lacks AVX2/FMA.
//
// Selection: set_active_backend() (the CLI's --backend flag and
// fl::RunOptions::backend route here), or the SPATL_BACKEND environment
// variable ("scalar" | "cpu-simd" | "auto") read once at first use.
// "auto" means cpu-simd when supported, scalar otherwise. The default with
// no flag and no environment override is scalar, keeping every seeded
// replay byte-stable across machines.
//
// Adding a backend (e.g. OpenCL, following the clcontext/clbuffer split of
// the CortiCL exemplar) means implementing this interface and registering a
// BackendKind; no caller above tensor/ needs to change.
#pragma once

#include <cstddef>
#include <string>

namespace spatl::tensor {

enum class BackendKind {
  kScalar,
  kCpuSimd,
};

/// Canonical name ("scalar", "cpu-simd").
const char* backend_name(BackendKind kind);

/// Parse "scalar" | "cpu-simd" | "auto" (auto resolves against the runtime
/// CPU check). Throws std::invalid_argument on anything else.
BackendKind parse_backend(const std::string& name);

/// True when the running CPU supports the cpu-simd kernels (AVX2 + FMA).
bool cpu_simd_supported();

/// A compute backend: row-panel GEMM kernels. `row_lo`/`row_hi` bound the
/// output rows this call owns; panels never overlap, so implementations are
/// free of synchronization. `b_finite` is the caller's one-shot finiteness
/// pre-scan of the B operand: zero-row elision (skipping a_ip == 0 terms)
/// is permitted ONLY when it is true — with a non-finite B every product
/// must be formed so 0 * NaN/Inf propagates per IEEE-754 (the divergence
/// guard's contract, DESIGN.md §15).
class ComputeContext {
 public:
  virtual ~ComputeContext() = default;

  virtual BackendKind kind() const = 0;
  const char* name() const { return backend_name(kind()); }

  /// C[i,:] += A[i,:] * B for i in [row_lo, row_hi). A is (m,k) row-major,
  /// B is (k,n) row-major, C is (m,n) and the panel is overwritten.
  virtual void gemm_nn(const float* a, const float* b, float* c,
                       std::size_t row_lo, std::size_t row_hi, std::size_t k,
                       std::size_t n, bool b_finite) const = 0;

  /// C = A^T * B panel: A is stored (k,m) row-major (so A^T is (m,k)),
  /// B is (k,n), C is (m,n); rows i of C in [row_lo, row_hi).
  virtual void gemm_tn(const float* a, const float* b, float* c,
                       std::size_t row_lo, std::size_t row_hi, std::size_t m,
                       std::size_t k, std::size_t n, bool b_finite) const = 0;

  /// C = A * B^T panel: A is (m,k), B is stored (n,k) row-major, C is
  /// (m,n); rows i of C in [row_lo, row_hi). No elision fast path: every
  /// dot product is formed in full.
  virtual void gemm_nt(const float* a, const float* b, float* c,
                       std::size_t row_lo, std::size_t row_hi, std::size_t k,
                       std::size_t n) const = 0;
};

/// The scalar reference backend. Always available.
const ComputeContext& scalar_context();

/// The AVX2+FMA backend, or the scalar backend when the CPU (or build
/// target) does not support it — callers never get an illegal-instruction
/// path.
const ComputeContext& cpu_simd_context();

/// The backend the GEMM entry points currently dispatch to. First use reads
/// SPATL_BACKEND from the environment; with no override the default is
/// scalar.
const ComputeContext& active_context();
BackendKind active_backend();

/// Select the process-wide backend. Cheap and safe to call between kernel
/// invocations; not intended to be raced against in-flight kernels.
void set_active_backend(BackendKind kind);

}  // namespace spatl::tensor
