#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "tensor/backend.hpp"

namespace spatl::tensor {

namespace {

void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

/// Row grain for the GEMM family. The formula is frozen: chunk geometry is
/// part of the fixed-chunk determinism contract (common/parallel.hpp), so
/// changing it would silently reshuffle float reduction boundaries and break
/// bit-replay. `m` does not participate on purpose — the historical heuristic
/// sizes chunks by per-row work (k*n flops) only.
std::size_t gemm_grain(std::size_t /*m*/, std::size_t k, std::size_t n) {
  return std::max<std::size_t>(1, 16384 / std::max<std::size_t>(1, k * n));
}

}  // namespace

bool all_finite(const float* p, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  require(a.rank() == 2 && b.rank() == 2, "matmul: inputs must be rank-2");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul: inner dimensions differ");
  if (c.shape() != Shape{m, n}) c = Tensor({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Non-finite inputs are NOT rejected: the divergence guard deliberately
  // runs these kernels on exploded weights to detect and roll back bad
  // rounds. The one-shot pre-scan below only licenses the backends'
  // pruned-row elision — with a non-finite B every 0 * NaN/Inf product must
  // be formed so it propagates per IEEE-754. Aliasing the output with an
  // input, however, is always a caller bug.
  SPATL_DCHECK(pc != pa && pc != pb);
  const bool b_finite = all_finite(pb, k * n);
  const ComputeContext& ctx = active_context();
  common::parallel_for_ranges(
      0, m,
      [&](std::size_t row_lo, std::size_t row_hi) {
        ctx.gemm_nn(pa, pb, pc, row_lo, row_hi, k, n, b_finite);
      },
      /*grain=*/gemm_grain(m, k, n));
}

void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c) {
  require(a.rank() == 2 && b.rank() == 2, "matmul_tn: inputs must be rank-2");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul_tn: inner dimensions differ");
  if (c.shape() != Shape{m, n}) c = Tensor({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  SPATL_DCHECK(pc != pa && pc != pb);
  const bool b_finite = all_finite(pb, k * n);
  const ComputeContext& ctx = active_context();
  common::parallel_for_ranges(
      0, m,
      [&](std::size_t row_lo, std::size_t row_hi) {
        ctx.gemm_tn(pa, pb, pc, row_lo, row_hi, m, k, n, b_finite);
      },
      gemm_grain(m, k, n));
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  require(a.rank() == 2 && b.rank() == 2, "matmul_nt: inputs must be rank-2");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  require(b.dim(1) == k, "matmul_nt: inner dimensions differ");
  if (c.shape() != Shape{m, n}) c = Tensor({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  SPATL_DCHECK(pc != pa && pc != pb);
  const ComputeContext& ctx = active_context();
  common::parallel_for_ranges(
      0, m,
      [&](std::size_t row_lo, std::size_t row_hi) {
        ctx.gemm_nt(pa, pb, pc, row_lo, row_hi, k, n);
      },
      gemm_grain(m, k, n));
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul(a, b, c);
  return c;
}

void im2col(const Tensor& input, const Conv2dGeom& g, Tensor& columns) {
  require(input.rank() == 4, "im2col: input must be (N,C,H,W)");
  const std::size_t batch = input.dim(0);
  require(input.dim(1) == g.in_channels && input.dim(2) == g.in_h &&
              input.dim(3) == g.in_w,
          "im2col: input shape does not match geometry");
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t rows = batch * oh * ow;
  const std::size_t cols = g.patch_size();
  if (columns.shape() != Shape{rows, cols}) columns = Tensor({rows, cols});
  const float* in = input.data();
  float* out = columns.data();
  const std::size_t hw = g.in_h * g.in_w;
  common::parallel_for_ranges(
      0, rows,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          const std::size_t n = r / (oh * ow);
          const std::size_t rem = r % (oh * ow);
          const std::size_t oy = rem / ow;
          const std::size_t ox = rem % ow;
          float* dst = out + r * cols;
          const float* src_n = in + n * g.in_channels * hw;
          const std::ptrdiff_t iy0 =
              std::ptrdiff_t(oy * g.stride) - std::ptrdiff_t(g.pad);
          const std::ptrdiff_t ix0 =
              std::ptrdiff_t(ox * g.stride) - std::ptrdiff_t(g.pad);
          for (std::size_t c = 0; c < g.in_channels; ++c) {
            const float* src_c = src_n + c * hw;
            for (std::size_t ky = 0; ky < g.kernel; ++ky) {
              const std::ptrdiff_t iy = iy0 + std::ptrdiff_t(ky);
              for (std::size_t kx = 0; kx < g.kernel; ++kx) {
                const std::ptrdiff_t ix = ix0 + std::ptrdiff_t(kx);
                const bool inside = iy >= 0 && iy < std::ptrdiff_t(g.in_h) &&
                                    ix >= 0 && ix < std::ptrdiff_t(g.in_w);
                *dst++ = inside ? src_c[std::size_t(iy) * g.in_w +
                                        std::size_t(ix)]
                                : 0.0f;
              }
            }
          }
        }
      },
      std::max<std::size_t>(1, 4096 / std::max<std::size_t>(1, cols)));
}

void col2im(const Tensor& columns, const Conv2dGeom& g, std::size_t batch,
            Tensor& input_grad) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t rows = batch * oh * ow;
  const std::size_t cols = g.patch_size();
  require(columns.shape() == Shape{rows, cols},
          "col2im: column shape mismatch");
  const Shape in_shape{batch, g.in_channels, g.in_h, g.in_w};
  if (input_grad.shape() != in_shape) input_grad = Tensor(in_shape);
  input_grad.zero();
  const float* src = columns.data();
  float* out = input_grad.data();
  const std::size_t hw = g.in_h * g.in_w;
  // Parallelize over batch images: rows of the same image never collide
  // across different n, so per-image chunks are race-free.
  common::parallel_for(
      0, batch,
      [&](std::size_t n) {
        for (std::size_t oy = 0; oy < oh; ++oy) {
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::size_t r = (n * oh + oy) * ow + ox;
            const float* col = src + r * cols;
            float* dst_n = out + n * g.in_channels * hw;
            const std::ptrdiff_t iy0 =
                std::ptrdiff_t(oy * g.stride) - std::ptrdiff_t(g.pad);
            const std::ptrdiff_t ix0 =
                std::ptrdiff_t(ox * g.stride) - std::ptrdiff_t(g.pad);
            for (std::size_t c = 0; c < g.in_channels; ++c) {
              float* dst_c = dst_n + c * hw;
              for (std::size_t ky = 0; ky < g.kernel; ++ky) {
                const std::ptrdiff_t iy = iy0 + std::ptrdiff_t(ky);
                for (std::size_t kx = 0; kx < g.kernel; ++kx) {
                  const std::ptrdiff_t ix = ix0 + std::ptrdiff_t(kx);
                  const float v = *col++;
                  if (iy >= 0 && iy < std::ptrdiff_t(g.in_h) && ix >= 0 &&
                      ix < std::ptrdiff_t(g.in_w)) {
                    dst_c[std::size_t(iy) * g.in_w + std::size_t(ix)] += v;
                  }
                }
              }
            }
          }
        }
      },
      /*grain=*/1);
}

void softmax_rows(const Tensor& logits, Tensor& probs) {
  require(logits.rank() == 2, "softmax_rows: logits must be (N,C)");
  if (!probs.same_shape(logits)) probs = Tensor(logits.shape());
  // Outputs may legitimately be non-finite when training has diverged (the
  // divergence guard handles that); only in-place aliasing is forbidden.
  SPATL_DCHECK(probs.data() != logits.data());
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  const float* in = logits.data();
  float* out = probs.data();
  common::parallel_for_ranges(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const float* row = in + i * c;
          float* prow = out + i * c;
          const float mx = *std::max_element(row, row + c);
          double sum = 0.0;
          for (std::size_t j = 0; j < c; ++j) {
            prow[j] = std::exp(row[j] - mx);
            sum += prow[j];
          }
          const float inv = static_cast<float>(1.0 / sum);
          for (std::size_t j = 0; j < c; ++j) prow[j] *= inv;
        }
      },
      std::max<std::size_t>(1, 1024 / std::max<std::size_t>(1, c)));
}

float cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                    Tensor* dlogits) {
  require(logits.rank() == 2, "cross_entropy: logits must be (N,C)");
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  require(labels.size() == n, "cross_entropy: label count mismatch");
  Tensor probs;
  softmax_rows(logits, probs);
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const int y = labels[i];
    require(y >= 0 && std::size_t(y) < c, "cross_entropy: label out of range");
    loss -= std::log(std::max(probs[i * c + y], 1e-12f));
  }
  loss /= double(n);
  if (dlogits != nullptr) {
    *dlogits = probs;
    float* g = dlogits->data();
    const float inv_n = 1.0f / float(n);
    for (std::size_t i = 0; i < n; ++i) {
      g[i * c + std::size_t(labels[i])] -= 1.0f;
    }
    for (std::size_t i = 0; i < n * c; ++i) g[i] *= inv_n;
  }
  return static_cast<float>(loss);
}

std::vector<int> argmax_rows(const Tensor& scores) {
  require(scores.rank() == 2, "argmax_rows: input must be (N,C)");
  const std::size_t n = scores.dim(0), c = scores.dim(1);
  // A (N, 0) tensor has no maximum per row; max_element over an empty range
  // would dereference-free but yield index 0 into a zero-width row, which
  // callers then use to index labels/probabilities out of bounds.
  require(n == 0 || c > 0, "argmax_rows: rows must have at least one column");
  std::vector<int> out(n);
  const float* p = scores.data();
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = p + i * c;
    out[i] = int(std::max_element(row, row + c) - row);
  }
  return out;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  const auto pred = argmax_rows(logits);
  if (pred.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) ++hits;
  }
  return double(hits) / double(pred.size());
}

}  // namespace spatl::tensor
