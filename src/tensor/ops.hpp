// Compute kernels over Tensors: GEMM (with transpose variants), im2col /
// col2im for convolution, softmax + cross-entropy, and row reductions.
//
// All kernels parallelize over their outermost independent dimension via
// common::parallel_for; none of them allocate inside the hot loop when the
// caller supplies an output tensor.
//
// GEMM accumulation contract (tensor/backend.hpp dispatches under it):
//
//  * Every matmul variant accumulates in float32 over the k dimension in
//    ascending order on the scalar backend. No variant widens to double —
//    matmul_nt historically did, which made its rounding incommensurable
//    with the other variants and with any SIMD implementation; it now
//    follows the same contract.
//  * The scalar backend is the bit-identity oracle: for a fixed backend,
//    outputs are byte-stable across thread-pool sizes (the fixed-chunk
//    contract of common/parallel.hpp) and across runs.
//  * The cpu-simd backend may contract multiply-adds (FMA) and split the
//    k accumulation across vector lanes reduced at the end. Per output
//    element, its divergence from scalar is bounded by 4 * k ulps measured
//    at the magnitude of dot(|a_i|, |b_j|) — the absolute-value dot product
//    is the natural error scale for a k-term sum; ulps *of the result*
//    would not be cancellation-safe, since near-total cancellation shrinks
//    the result (and its ulp) without shrinking the accumulated rounding
//    error. Equivalently: |simd - scalar| <= 4k * 2^-23 * dot(|a_i|,|b_j|),
//    with +/-0 identified and NaN pairing with NaN.
//    tests/test_backend.cpp enforces the bound.
//  * NaN/Inf semantics are backend-independent: the zero-term elision for
//    pruned rows is licensed by a one-shot all_finite pre-scan of B, so
//    0 * NaN = NaN and 0 * Inf = NaN always propagate per IEEE-754.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace spatl::tensor {

/// True when every one of `count` floats at `p` is finite (no NaN/Inf).
/// O(count) with early exit; the GEMM entry points run it once per call on
/// the B operand to license the pruned-row elision (see ops.cpp).
bool all_finite(const float* p, std::size_t count);

// ---------------------------------------------------------------- GEMM ----

/// C = A(m,k) * B(k,n). Shapes are validated; C is resized/overwritten.
void matmul(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A^T(k,m) * B(k,n) -> (m,n). A is stored (k,m).
void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A(m,k) * B^T(n,k) -> (m,n). B is stored (n,k).
void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c);

Tensor matmul(const Tensor& a, const Tensor& b);

// ------------------------------------------------------------- im2col ----

/// Geometry of a 2-D convolution / pooling window sweep.
struct Conv2dGeom {
  std::size_t in_channels = 0;
  std::size_t in_h = 0, in_w = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t pad = 1;

  std::size_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  std::size_t patch_size() const { return in_channels * kernel * kernel; }
};

/// input: (N, C, H, W) -> columns: (N * out_h * out_w, C*k*k).
/// Zero padding outside the image.
void im2col(const Tensor& input, const Conv2dGeom& g, Tensor& columns);

/// Adjoint of im2col: scatter-add columns back into (N, C, H, W).
void col2im(const Tensor& columns, const Conv2dGeom& g, std::size_t batch,
            Tensor& input_grad);

// ------------------------------------------------- softmax / loss ----

/// Row-wise softmax of logits (N, C) into probs (N, C), numerically stable.
void softmax_rows(const Tensor& logits, Tensor& probs);

/// Mean cross-entropy over the batch given integer labels; optionally also
/// produces d(loss)/d(logits) = (probs - onehot)/N in `dlogits`.
float cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                    Tensor* dlogits = nullptr);

/// Row-wise argmax of (N, C). Requires C > 0 when N > 0 (a zero-width row
/// has no maximum); throws std::invalid_argument otherwise.
std::vector<int> argmax_rows(const Tensor& scores);

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace spatl::tensor
