// Compute kernels over Tensors: GEMM (with transpose variants), im2col /
// col2im for convolution, softmax + cross-entropy, and row reductions.
//
// All kernels parallelize over their outermost independent dimension via
// common::parallel_for; none of them allocate inside the hot loop when the
// caller supplies an output tensor.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace spatl::tensor {

// ---------------------------------------------------------------- GEMM ----

/// C = A(m,k) * B(k,n). Shapes are validated; C is resized/overwritten.
void matmul(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A^T(k,m) * B(k,n) -> (m,n). A is stored (k,m).
void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A(m,k) * B^T(n,k) -> (m,n). B is stored (n,k).
void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c);

Tensor matmul(const Tensor& a, const Tensor& b);

// ------------------------------------------------------------- im2col ----

/// Geometry of a 2-D convolution / pooling window sweep.
struct Conv2dGeom {
  std::size_t in_channels = 0;
  std::size_t in_h = 0, in_w = 0;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t pad = 1;

  std::size_t out_h() const { return (in_h + 2 * pad - kernel) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * pad - kernel) / stride + 1; }
  std::size_t patch_size() const { return in_channels * kernel * kernel; }
};

/// input: (N, C, H, W) -> columns: (N * out_h * out_w, C*k*k).
/// Zero padding outside the image.
void im2col(const Tensor& input, const Conv2dGeom& g, Tensor& columns);

/// Adjoint of im2col: scatter-add columns back into (N, C, H, W).
void col2im(const Tensor& columns, const Conv2dGeom& g, std::size_t batch,
            Tensor& input_grad);

// ------------------------------------------------- softmax / loss ----

/// Row-wise softmax of logits (N, C) into probs (N, C), numerically stable.
void softmax_rows(const Tensor& logits, Tensor& probs);

/// Mean cross-entropy over the batch given integer labels; optionally also
/// produces d(loss)/d(logits) = (probs - onehot)/N in `dlogits`.
float cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                    Tensor* dlogits = nullptr);

/// Row-wise argmax of (N, C).
std::vector<int> argmax_rows(const Tensor& scores);

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace spatl::tensor
