// The scalar reference backend — the repository's bit-identity oracle.
//
// These loops ARE the historical GEMM semantics: on all-finite B the
// zero-row elision (skip a_ip == 0 terms, common after salient pruning)
// produces byte-for-byte the outputs every seeded replay in the repo was
// recorded against. The one deliberate change from the pre-backend kernels
// is that the elision is now *guarded*: the caller pre-scans B once and
// passes `b_finite`, and with a non-finite B every product is formed so
// 0 * NaN = NaN and 0 * Inf = NaN propagate per IEEE-754. The old
// unconditional skip silently swallowed a NaN/Inf column of B wherever the
// pruned row of A was zero — exactly the exploded-weights case the
// divergence guard (DESIGN.md §8) relies on these kernels propagating.
//
// Accumulation contract (documented in ops.hpp): float32 accumulation over
// the k dimension in ascending order for every variant. SIMD backends are
// ulp-bounded against these loops, never the other way around.
#include <algorithm>
#include <cstddef>

#include "tensor/backend.hpp"

namespace spatl::tensor {
namespace {

class ScalarContext final : public ComputeContext {
 public:
  BackendKind kind() const override { return BackendKind::kScalar; }

  void gemm_nn(const float* a, const float* b, float* c, std::size_t row_lo,
               std::size_t row_hi, std::size_t k, std::size_t n,
               bool b_finite) const override {
    for (std::size_t i = row_lo; i < row_hi; ++i) {
      float* crow = c + i * n;
      std::fill(crow, crow + n, 0.0f);
      const float* arow = a + i * k;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (b_finite && av == 0.0f) continue;  // pruned-row elision
        const float* brow = b + p * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }

  void gemm_tn(const float* a, const float* b, float* c, std::size_t row_lo,
               std::size_t row_hi, std::size_t m, std::size_t k,
               std::size_t n, bool b_finite) const override {
    for (std::size_t i = row_lo; i < row_hi; ++i) {
      float* crow = c + i * n;
      std::fill(crow, crow + n, 0.0f);
      for (std::size_t p = 0; p < k; ++p) {
        const float av = a[p * m + i];
        if (b_finite && av == 0.0f) continue;
        const float* brow = b + p * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }

  void gemm_nt(const float* a, const float* b, float* c, std::size_t row_lo,
               std::size_t row_hi, std::size_t k,
               std::size_t n) const override {
    for (std::size_t i = row_lo; i < row_hi; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] = acc;
      }
    }
  }
};

}  // namespace

const ComputeContext& scalar_context() {
  static const ScalarContext ctx;
  return ctx;
}

}  // namespace spatl::tensor
