#include "tensor/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace spatl::tensor {

namespace {

constexpr std::uint32_t kMagic = 0x53504154;  // "SPAT"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("read_tensors: truncated stream");
  return value;
}

}  // namespace

void write_tensors(std::ostream& out,
                   const std::vector<NamedTensor>& entries) {
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, std::uint64_t(entries.size()));
  for (const auto& e : entries) {
    write_pod(out, std::uint64_t(e.name.size()));
    out.write(e.name.data(), std::streamsize(e.name.size()));
    write_pod(out, std::uint64_t(e.value.rank()));
    for (std::size_t d = 0; d < e.value.rank(); ++d) {
      write_pod(out, std::uint64_t(e.value.dim(d)));
    }
    out.write(reinterpret_cast<const char*>(e.value.data()),
              std::streamsize(e.value.numel() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("write_tensors: stream write failed");
}

std::vector<NamedTensor> read_tensors(std::istream& in) {
  if (read_pod<std::uint32_t>(in) != kMagic) {
    throw std::runtime_error("read_tensors: bad magic (not a SPATL file)");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("read_tensors: unsupported version " +
                             std::to_string(version));
  }
  const auto count = read_pod<std::uint64_t>(in);
  // Defensive cap: a count beyond ~1e6 entries signals corruption, not data.
  if (count > 1'000'000ULL) {
    throw std::runtime_error("read_tensors: implausible entry count");
  }
  std::vector<NamedTensor> entries;
  entries.reserve(std::size_t(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    NamedTensor e;
    const auto name_len = read_pod<std::uint64_t>(in);
    if (name_len > 4096) {
      throw std::runtime_error("read_tensors: implausible name length");
    }
    e.name.resize(std::size_t(name_len));
    in.read(e.name.data(), std::streamsize(name_len));
    const auto rank = read_pod<std::uint64_t>(in);
    if (rank > 8) throw std::runtime_error("read_tensors: implausible rank");
    Shape shape(static_cast<std::size_t>(rank));
    std::size_t numel = 1;
    for (auto& d : shape) {
      d = std::size_t(read_pod<std::uint64_t>(in));
      if (d == 0 || numel > std::numeric_limits<std::size_t>::max() / d) {
        throw std::runtime_error("read_tensors: implausible dimension");
      }
      numel *= d;
    }
    e.value = Tensor(std::move(shape));
    in.read(reinterpret_cast<char*>(e.value.data()),
            std::streamsize(e.value.numel() * sizeof(float)));
    if (!in) throw std::runtime_error("read_tensors: truncated tensor data");
    entries.push_back(std::move(e));
  }
  return entries;
}

void save_tensors(const std::string& path,
                  const std::vector<NamedTensor>& entries) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_tensors: cannot open " + path);
  write_tensors(out, entries);
}

std::vector<NamedTensor> load_tensors(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_tensors: cannot open " + path);
  return read_tensors(in);
}

}  // namespace spatl::tensor
