// Binary serialization for tensors and named parameter sets.
//
// Format (little-endian, version-tagged):
//   file   := magic u32 | version u32 | count u64 | entry*
//   entry  := name_len u64 | name bytes | rank u64 | dims u64* | data f32*
//
// Used for checkpointing FL runs and persisting pre-trained RL agents so a
// deployment never repeats the expensive pruning pre-training (§IV-B).
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace spatl::tensor {

struct NamedTensor {
  std::string name;
  Tensor value;
};

/// Serialize entries to a stream. Throws std::runtime_error on I/O failure.
void write_tensors(std::ostream& out, const std::vector<NamedTensor>& entries);

/// Parse entries from a stream. Throws std::runtime_error on corrupt or
/// version-mismatched input.
std::vector<NamedTensor> read_tensors(std::istream& in);

/// File-path conveniences.
void save_tensors(const std::string& path,
                  const std::vector<NamedTensor>& entries);
std::vector<NamedTensor> load_tensors(const std::string& path);

}  // namespace spatl::tensor
