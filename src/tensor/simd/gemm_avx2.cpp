// AVX2+FMA GEMM panels for the cpu-simd backend.
//
// Blocked, register-tiled kernels over the same row panels the scalar
// reference receives, so the fixed-chunk contract (and therefore per-backend
// thread-count bit-identity) is untouched. Differences from the scalar
// oracle are confined to rounding: FMA contracts each multiply-add, and the
// nt dot products accumulate in eight lanes reduced at the end. Both are
// covered by the documented ulp bound in tensor/ops.hpp and locked by
// tests/test_backend.cpp.
//
// NaN/Inf semantics match the reference exactly: the pruned-row elision in
// nn/tn fires only under the caller's `b_finite` pre-scan, and vector FMA
// propagates non-finite values per IEEE-754 on every other path.
//
// This file is compiled with -mavx2 -mfma (see src/tensor/CMakeLists.txt)
// and only ever dispatched to after the runtime CPU check below, so no
// illegal instruction can escape. It is the sanctioned home for vector
// intrinsics — the simd-isolation lint rule keeps <immintrin.h> out of
// every directory but this one.
#include "tensor/backend.hpp"
#include "tensor/simd/kernels.hpp"

#if defined(__x86_64__) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cstddef>

namespace spatl::tensor::simd {
namespace {

/// Load mask covering the first `r` (1..7) lanes of a vector.
inline __m256i tail_mask(std::size_t r) {
  alignas(32) static const int kLanes[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                             0,  0,  0,  0,  0,  0,  0,  0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kLanes + (8 - r)));
}

/// Sum of the eight lanes.
inline float hsum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  __m128 shuf = _mm_movehdup_ps(lo);
  __m128 sums = _mm_add_ps(lo, shuf);
  shuf = _mm_movehl_ps(shuf, sums);
  sums = _mm_add_ss(sums, shuf);
  return _mm_cvtss_f32(sums);
}

/// Shared body for the nn/tn panels: both accumulate C[i,:] += av * B[p,:]
/// with av drawn either from a row of A (nn) or a column of A (tn). `AvAt`
/// maps (i, p) to av.
template <typename AvAt>
void gemm_rows_axpy(const float* b, float* c, std::size_t row_lo,
                    std::size_t row_hi, std::size_t k, std::size_t n,
                    bool b_finite, const AvAt& av_at) {
  for (std::size_t i = row_lo; i < row_hi; ++i) {
    float* crow = c + i * n;
    std::size_t j = 0;
    // Four-vector (32-column) register tile: accumulators live in ymm for
    // the whole k sweep, touching crow memory once per tile.
    for (; j + 32 <= n; j += 32) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k; ++p) {
        const float av = av_at(i, p);
        if (b_finite && av == 0.0f) continue;  // pruned-row elision
        const __m256 va = _mm256_set1_ps(av);
        const float* bp = b + p * n + j;
        acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bp), acc0);
        acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bp + 8), acc1);
        acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bp + 16), acc2);
        acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bp + 24), acc3);
      }
      _mm256_storeu_ps(crow + j, acc0);
      _mm256_storeu_ps(crow + j + 8, acc1);
      _mm256_storeu_ps(crow + j + 16, acc2);
      _mm256_storeu_ps(crow + j + 24, acc3);
    }
    for (; j + 8 <= n; j += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k; ++p) {
        const float av = av_at(i, p);
        if (b_finite && av == 0.0f) continue;
        acc = _mm256_fmadd_ps(_mm256_set1_ps(av),
                              _mm256_loadu_ps(b + p * n + j), acc);
      }
      _mm256_storeu_ps(crow + j, acc);
    }
    if (j < n) {
      const __m256i mask = tail_mask(n - j);
      __m256 acc = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k; ++p) {
        const float av = av_at(i, p);
        if (b_finite && av == 0.0f) continue;
        acc = _mm256_fmadd_ps(_mm256_set1_ps(av),
                              _mm256_maskload_ps(b + p * n + j, mask), acc);
      }
      _mm256_maskstore_ps(crow + j, mask, acc);
    }
  }
}

class Avx2Context final : public ComputeContext {
 public:
  BackendKind kind() const override { return BackendKind::kCpuSimd; }

  void gemm_nn(const float* a, const float* b, float* c, std::size_t row_lo,
               std::size_t row_hi, std::size_t k, std::size_t n,
               bool b_finite) const override {
    gemm_rows_axpy(b, c, row_lo, row_hi, k, n, b_finite,
                   [a, k](std::size_t i, std::size_t p) {
                     return a[i * k + p];
                   });
  }

  void gemm_tn(const float* a, const float* b, float* c, std::size_t row_lo,
               std::size_t row_hi, std::size_t m, std::size_t k,
               std::size_t n, bool b_finite) const override {
    gemm_rows_axpy(b, c, row_lo, row_hi, k, n, b_finite,
                   [a, m](std::size_t i, std::size_t p) {
                     return a[p * m + i];
                   });
  }

  void gemm_nt(const float* a, const float* b, float* c, std::size_t row_lo,
               std::size_t row_hi, std::size_t k,
               std::size_t n) const override {
    for (std::size_t i = row_lo; i < row_hi; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      std::size_t j = 0;
      // Four dot products at a time: four independent FMA chains keep the
      // FMA ports busy, and each B row is streamed exactly once.
      for (; j + 4 <= n; j += 4) {
        const float* b0 = b + (j + 0) * k;
        const float* b1 = b + (j + 1) * k;
        const float* b2 = b + (j + 2) * k;
        const float* b3 = b + (j + 3) * k;
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        __m256 acc2 = _mm256_setzero_ps();
        __m256 acc3 = _mm256_setzero_ps();
        std::size_t p = 0;
        for (; p + 8 <= k; p += 8) {
          const __m256 va = _mm256_loadu_ps(arow + p);
          acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b0 + p), acc0);
          acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b1 + p), acc1);
          acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b2 + p), acc2);
          acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b3 + p), acc3);
        }
        float s0 = hsum(acc0), s1 = hsum(acc1);
        float s2 = hsum(acc2), s3 = hsum(acc3);
        for (; p < k; ++p) {
          const float av = arow[p];
          s0 += av * b0[p];
          s1 += av * b1[p];
          s2 += av * b2[p];
          s3 += av * b3[p];
        }
        crow[j + 0] = s0;
        crow[j + 1] = s1;
        crow[j + 2] = s2;
        crow[j + 3] = s3;
      }
      for (; j < n; ++j) {
        const float* brow = b + j * k;
        __m256 acc = _mm256_setzero_ps();
        std::size_t p = 0;
        for (; p + 8 <= k; p += 8) {
          acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p),
                                _mm256_loadu_ps(brow + p), acc);
        }
        float s = hsum(acc);
        for (; p < k; ++p) s += arow[p] * brow[p];
        crow[j] = s;
      }
    }
  }
};

}  // namespace

const ComputeContext* avx2_context() {
  static const Avx2Context ctx;
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported ? &ctx : nullptr;
}

}  // namespace spatl::tensor::simd

#else  // non-x86-64 build target (or AVX2/FMA not enabled for this TU)

namespace spatl::tensor::simd {

const ComputeContext* avx2_context() { return nullptr; }

}  // namespace spatl::tensor::simd

#endif
