// Internal seam between the backend registry (tensor/backend.cpp) and the
// SIMD translation units. This header is deliberately intrinsics-free: the
// simd-isolation lint rule confines <immintrin.h> (and friends) to
// src/tensor/simd/*.cpp, so vector code can never leak into portable
// translation units through an include.
#pragma once

namespace spatl::tensor {
class ComputeContext;
namespace simd {

/// The AVX2+FMA ComputeContext, or nullptr when the build target is not
/// x86-64 or the running CPU lacks AVX2/FMA (checked once at first call).
const ComputeContext* avx2_context();

}  // namespace simd
}  // namespace spatl::tensor
