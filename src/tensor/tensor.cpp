#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace spatl::tensor {

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor Tensor::randn(Shape shape, common::Rng& rng, float mean, float stddev) {
  SPATL_DCHECK(std::isfinite(mean) && std::isfinite(stddev) && stddev >= 0.0f);
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.normal_float(mean, stddev);
  SPATL_DCHECK_FINITE(t.span());
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, common::Rng& rng, float lo,
                            float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.uniform_float(lo, hi);
  return t;
}

Tensor& Tensor::reshape(Shape new_shape) {
  if (shape_numel(new_shape) != data_.size()) {
    throw std::invalid_argument("reshape: " + shape_to_string(shape_) +
                                " -> " + shape_to_string(new_shape) +
                                " changes element count");
  }
  shape_ = std::move(new_shape);
  return *this;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor copy = *this;
  copy.reshape(std::move(new_shape));
  return copy;
}

void Tensor::check_same_shape(const Tensor& other, const char* op) const {
  if (shape_ != other.shape_) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                shape_to_string(shape_) + " vs " +
                                shape_to_string(other.shape_));
  }
}

Tensor& Tensor::operator+=(const Tensor& other) {
  check_same_shape(other, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  check_same_shape(other, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
  check_same_shape(other, "operator*=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::operator+=(float s) {
  for (auto& v : data_) v += s;
  return *this;
}

Tensor& Tensor::add_scaled(const Tensor& other, float alpha) {
  check_same_shape(other, "add_scaled");
  SPATL_DCHECK(std::isfinite(alpha));
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
  return *this;
}

float Tensor::sum() const {
  double acc = 0.0;  // accumulate in double for stability
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::min() const {
  if (empty()) throw std::logic_error("min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  if (empty()) throw std::logic_error("max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

std::size_t Tensor::flat_index(std::initializer_list<std::size_t> idx) const {
  assert(idx.size() == shape_.size());
  std::size_t flat = 0;
  std::size_t d = 0;
  for (std::size_t i : idx) {
    assert(i < shape_[d]);
    flat = flat * shape_[d] + i;
    ++d;
  }
  return flat;
}

bool allclose(const Tensor& a, const Tensor& b, float tol) {
  if (!a.same_shape(b)) return false;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace spatl::tensor
