// Dense float32 tensor: contiguous row-major storage with a dynamic shape.
//
// This is the numeric substrate for the whole repository. It is deliberately
// value-semantic (copyable, movable) and bounds-checked in debug builds;
// kernels in ops.hpp operate on raw spans for speed.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace spatl::tensor {

using Shape = std::vector<std::size_t>;

/// Number of elements implied by a shape (1 for rank-0).
inline std::size_t shape_numel(const Shape& shape) {
  return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                         std::multiplies<>());
}

std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

  Tensor(Shape shape, float fill)
      : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

  Tensor(Shape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    if (data_.size() != shape_numel(shape_)) {
      throw std::invalid_argument("Tensor: data size " +
                                  std::to_string(data_.size()) +
                                  " does not match shape " +
                                  shape_to_string(shape_));
    }
  }

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) {
    return Tensor(std::move(shape), v);
  }

  /// I.i.d. N(mean, stddev^2) entries.
  static Tensor randn(Shape shape, common::Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);

  /// I.i.d. U[lo, hi) entries.
  static Tensor rand_uniform(Shape shape, common::Rng& rng, float lo,
                             float hi);

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  std::size_t dim(std::size_t i) const {
    assert(i < shape_.size());
    return shape_[i];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  float& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  /// Multi-dimensional accessors for small-index use in tests and data
  /// generation (kernels index manually for speed).
  float& at(std::initializer_list<std::size_t> idx) {
    return data_[flat_index(idx)];
  }
  float at(std::initializer_list<std::size_t> idx) const {
    return data_[flat_index(idx)];
  }

  /// Reinterpret the shape without copying. Element count must match.
  Tensor& reshape(Shape new_shape);
  Tensor reshaped(Shape new_shape) const;

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.0f); }

  // -- elementwise arithmetic (shapes must match exactly) --
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(const Tensor& other);
  Tensor& operator*=(float s);
  Tensor& operator+=(float s);

  friend Tensor operator+(Tensor a, const Tensor& b) { return a += b; }
  friend Tensor operator-(Tensor a, const Tensor& b) { return a -= b; }
  friend Tensor operator*(Tensor a, const Tensor& b) { return a *= b; }
  friend Tensor operator*(Tensor a, float s) { return a *= s; }
  friend Tensor operator*(float s, Tensor a) { return a *= s; }

  /// this += alpha * other (axpy), the workhorse of every optimizer and
  /// aggregation rule in the repo.
  Tensor& add_scaled(const Tensor& other, float alpha);

  float sum() const;
  float mean() const { return empty() ? 0.0f : sum() / numel(); }
  float min() const;
  float max() const;
  /// L2 norm of the flattened tensor.
  float norm() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::size_t flat_index(std::initializer_list<std::size_t> idx) const;
  void check_same_shape(const Tensor& other, const char* op) const;

  Shape shape_;
  std::vector<float> data_;
};

/// True when all entries differ by at most `tol` (shapes must match).
bool allclose(const Tensor& a, const Tensor& b, float tol = 1e-5f);

}  // namespace spatl::tensor
