// Pack/unpack sites for the bad_ckpt fixture: "round" is fully covered,
// "orphan" is packed but never unpacked (ckpt-missing-unpack), and the
// header's "ghost" key has no pack site at all (ckpt-missing-pack).
#include "fl/state.hpp"

namespace fixture {

void save_state() {
  pack_u64s("algo/demo/round", {});
  pack_floats("algo/demo/orphan", {});
}

void load_state() {
  at("algo/demo/round");
}

void DemoState::tick() { ++round_; }

}  // namespace fixture
