// Known-bad fixture: the three checkpoint-coverage rules, one field each.
#pragma once

namespace fixture {

// ckpt-struct: algo/demo/
class DemoState {
 public:
  void tick();

 private:
  int round_ = 0;      // ckpt: algo/demo/round
  double lr_ = 0.1;    // ckpt-unannotated-field: no tag at all
  float ghost_ = 0.f;  // ckpt: algo/demo/ghost
};

}  // namespace fixture
