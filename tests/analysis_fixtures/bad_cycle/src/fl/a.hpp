// Known-bad fixture: include-cycle (a -> b -> a).
#pragma once

#include "fl/b.hpp"

namespace fixture {
inline int a_value() { return 1; }
}  // namespace fixture
