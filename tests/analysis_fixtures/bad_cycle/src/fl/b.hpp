// Second half of the include cycle.
#pragma once

#include "fl/a.hpp"

namespace fixture {
inline int b_value() { return 2; }
}  // namespace fixture
