// Known-bad fixture: include-layer. A common-layer header reaching UP into
// obs inverts the layer DAG (common must stay dependency-free).
#pragma once

#include "obs/metrics.hpp"

namespace fixture {
inline int clock_metric() { return metric(); }
}  // namespace fixture
