// Layering fixture support header (clean by itself).
#pragma once

namespace fixture {
inline int metric() { return 0; }
}  // namespace fixture
