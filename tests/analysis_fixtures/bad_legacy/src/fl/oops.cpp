// Known-bad fixture: banned-random (legacy per-file rule representative).
namespace fixture {

int oops_entropy() {
  return rand();
}

}  // namespace fixture
