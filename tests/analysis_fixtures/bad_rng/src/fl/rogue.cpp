// Known-bad fixture: the three RNG stream-discipline rules.
//   rng-stream-owner      Stream::kBackoff named outside src/fl/fault.*
//   rng-backoff-outcome   the kBackoff generator feeding a bernoulli
//   rng-conditional-draw  a keyed draw reachable only through a branch
#include <cstdint>

namespace fixture {

void rogue_streams(std::uint64_t seed, bool flaky) {
  auto backoff_rng = keyed_rng(seed, 1, 0, Stream::kBackoff);
  const bool delivered = backoff_rng.bernoulli(0.5);

  auto extra_rng = keyed_rng(seed, 2, 0, Stream::kExtra);
  double x = 0.0;
  if (flaky) {
    x += extra_rng.uniform();
  }
  (void)delivered;
  (void)x;
}

}  // namespace fixture
