// Known-bad fixture: vector-intrinsics header outside src/tensor/simd/.
#include <immintrin.h>

namespace fixture {

float oops_sum8(const float* p) {
  __m256 v = _mm256_loadu_ps(p);
  (void)v;
  return p[0];
}

}  // namespace fixture
