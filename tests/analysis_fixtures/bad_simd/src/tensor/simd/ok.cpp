// The sanctioned home: the same include under src/tensor/simd/ is clean.
#include <immintrin.h>

namespace fixture {

float ok_sum8(const float* p) {
  __m256 v = _mm256_loadu_ps(p);
  (void)v;
  return p[0];
}

}  // namespace fixture
