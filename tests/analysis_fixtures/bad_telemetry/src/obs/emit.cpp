// Known-bad fixture: a telemetry record whose "type" tag is a typo, plus
// sites the rule must NOT fire on (known tag, non-literal value, a lookup
// rather than an add).
namespace spatl::obs {

struct Rec {
  Rec& add(const char*, const char*) { return *this; }
  const char* str(const char*) { return ""; }
};

void emit_records(Rec& rec, const char* dynamic_type) {
  rec.add("type", "fligth");     // typo — must be flagged
  rec.add("type", "recovery");   // known tag — clean
  rec.add("type", dynamic_type); // non-literal value — out of reach
  rec.add("trigger", "whatever");
  rec.str("type");
}

}  // namespace spatl::obs
