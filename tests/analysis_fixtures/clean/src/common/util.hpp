// Clean fixture: nothing here may trip any rule. The constructs below are
// the lexer edge cases the scanner must classify correctly — a regression
// in raw-string / digit-separator / comment-continuation handling shows up
// as a phantom finding in this file.
#pragma once

#include <cstdint>
#include <string>

namespace fixture {

// A raw string literal whose CONTENT names banned constructs; the scanner
// must blank it, so none of these tokens reach the rule passes.
inline std::string banned_words() {
  return R"(std::thread t; rand(); srand(7); std::random_device rd;)";
}

// Delimited raw string with parens inside.
inline std::string delimited() {
  return R"x(a ")" b)x";
}

// Digit separators: the ' after a digit is not a char-literal opener. If it
// were, the "literal" would swallow the rest of the line and hide real code
// from every pass.
inline constexpr std::uint64_t kBig = 1'000'000;
inline constexpr std::uint64_t kHex = 0xFF'FF'FF;

// A line comment continued with a backslash: the next physical line is \
   std::thread hidden_by_continuation; rand();
inline int after_continuation() { return 1; }

}  // namespace fixture
