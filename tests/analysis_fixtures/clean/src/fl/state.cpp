// Clean fixture: pack/unpack sites covering every annotated key in
// state.hpp. The include runs downward (fl -> common), which the layer DAG
// permits.
#include "fl/state.hpp"

#include "common/util.hpp"

namespace fixture {

void save_state() {
  pack_u64s("algo/demo/round", {});
  pack_floats("algo/demo/w", {});
}

void load_state() {
  at("algo/demo/round");
  find("algo/demo/w");
}

void DemoState::tick() { ++round_; }

}  // namespace fixture
