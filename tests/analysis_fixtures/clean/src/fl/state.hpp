// Clean fixture: a fully annotated checkpoint-audited struct. Every field
// either names a key that state.cpp really packs and unpacks, or opts out
// with a reason.
#pragma once

#include "common/util.hpp"

namespace fixture {

// ckpt-struct: algo/demo/
class DemoState {
 public:
  void tick();
  int round() const { return round_; }

 private:
  int round_ = 0;        // ckpt: algo/demo/round
  double temp_ = 0.0;    // ckpt: none(per-round scratch, recomputed by tick)
  // ckpt: algo/demo/w
  float weight_ = 1.0f;
};

}  // namespace fixture
