// Self-test for the spatl_lint analysis library (tools/analysis/):
//   - scanner lexer hardening (raw strings, digit separators, comment line
//     continuations) against regressions
//   - every pass over the known-bad fixture corpus under
//     tests/analysis_fixtures/ — each fixture flagged by exactly its
//     intended rule(s), the clean fixture by none
//   - the checkpoint drift drill: adding an unannotated state field to the
//     clean fixture's audited struct must produce a finding
//   - the full repo stays clean under the checked-in baseline (the same
//     gate the spatl_lint ctest and scripts/check.sh --lint enforce)
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "analysis/analysis.hpp"

namespace fs = std::filesystem;
using namespace spatl::analysis;

namespace {

std::string fixture_dir(const std::string& name) {
  return (fs::path(SPATL_FIXTURE_DIR) / name).string();
}

std::map<std::string, std::size_t> counts_by_rule(const Report& report) {
  std::map<std::string, std::size_t> counts;
  for (const auto& f : report.findings) ++counts[f.rule];
  return counts;
}

Report analyze_fixture(const std::string& name) {
  const Project project = load_project(fixture_dir(name));
  EXPECT_FALSE(project.files.empty()) << "fixture not found: " << name;
  return analyze(project);
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spit(const fs::path& path, const std::string& text) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out << text;
  ASSERT_TRUE(bool(out)) << path;
}

}  // namespace

// --- scanner ---------------------------------------------------------------

TEST(Scanner, BlanksRawStringContents) {
  const auto s = scan_source("auto s = R\"(rand(); std::thread t;)\";");
  EXPECT_TRUE(find_token(s.code, "rand(").empty());
  EXPECT_TRUE(find_token(s.code, "thread").empty());
  ASSERT_EQ(s.strings.size(), 1u);
  EXPECT_EQ(s.strings[0].text, "rand(); std::thread t;");
}

TEST(Scanner, HandlesDelimitedRawStrings) {
  // The )" inside the literal is content, not a terminator; x = 7 after the
  // literal is real code again.
  const auto s = scan_source("auto s = R\"x(quote )\" inside)x\"; x = 7;");
  ASSERT_EQ(s.strings.size(), 1u);
  EXPECT_EQ(s.strings[0].text, "quote )\" inside");
  EXPECT_NE(s.code.find("x = 7"), std::string::npos);
}

TEST(Scanner, RawStringPrefixes) {
  const auto s = scan_source("auto a = u8R\"(one)\"; auto b = LR\"(two)\";");
  ASSERT_EQ(s.strings.size(), 2u);
  EXPECT_EQ(s.strings[0].text, "one");
  EXPECT_EQ(s.strings[1].text, "two");
}

TEST(Scanner, IdentifierEndingInRIsNotARawString) {
  const auto s = scan_source("auto x = FOOBAR\"content\";");
  ASSERT_EQ(s.strings.size(), 1u);
  EXPECT_EQ(s.strings[0].text, "content");
}

TEST(Scanner, DigitSeparatorIsNotACharLiteral) {
  // A lexer that opens a char literal at 1'000 swallows the rest of the
  // line and hides the rand() call from every rule.
  const auto s = scan_source("int x = 1'000'000; rand();");
  EXPECT_EQ(find_token(s.code, "rand(").size(), 1u);
  const auto hex = scan_source("int y = 0xFF'FF; rand();");
  EXPECT_EQ(find_token(hex.code, "rand(").size(), 1u);
}

TEST(Scanner, CharLiteralsStillBlank) {
  const auto s = scan_source("char c = 'r'; char q = '\\''; rand();");
  EXPECT_EQ(find_token(s.code, "rand(").size(), 1u);
  EXPECT_TRUE(find_token(s.code, "r").empty());  // the 'r' content blanked
}

TEST(Scanner, LineContinuationExtendsLineComment) {
  // Phase-2 splicing: the backslash-newline keeps the comment alive, so the
  // second physical line is comment text, not code.
  const auto s = scan_source("// hidden \\\nstd::thread t; rand();\nint x;");
  EXPECT_TRUE(find_token(s.code, "rand(").empty());
  EXPECT_TRUE(find_token(s.code, "thread").empty());
  EXPECT_NE(s.comments.find("rand()"), std::string::npos);
  EXPECT_NE(s.code.find("int x"), std::string::npos);
  // Line numbers survive: every channel keeps both newlines.
  EXPECT_EQ(line_of(s.code, s.code.find("int x")), 3u);
}

TEST(Scanner, AllowDirectivesComeFromCommentsOnly) {
  const auto in_comment = scan_source("// spatl-lint: allow(naked-new)\n");
  EXPECT_EQ(allowed_rules(in_comment.comments).count("naked-new"), 1u);
  const auto in_string =
      scan_source("auto s = \"spatl-lint: allow(naked-new)\";\n");
  EXPECT_TRUE(allowed_rules(in_string.comments).empty());
}

// --- fixture corpus --------------------------------------------------------

TEST(Fixtures, CleanFixtureHasNoFindings) {
  const Report report = analyze_fixture("clean");
  EXPECT_TRUE(report.findings.empty())
      << report.findings.size() << " unexpected finding(s), first: "
      << (report.findings.empty() ? "" : report.findings[0].message);
}

TEST(Fixtures, LayeringFixtureFlagsExactlyIncludeLayer) {
  const auto counts = counts_by_rule(analyze_fixture("bad_layering"));
  const std::map<std::string, std::size_t> expected = {{"include-layer", 1}};
  EXPECT_EQ(counts, expected);
}

TEST(Fixtures, CycleFixtureFlagsExactlyIncludeCycle) {
  const auto counts = counts_by_rule(analyze_fixture("bad_cycle"));
  const std::map<std::string, std::size_t> expected = {{"include-cycle", 1}};
  EXPECT_EQ(counts, expected);
}

TEST(Fixtures, CkptFixtureFlagsEachCoverageRuleOnce) {
  const Report report = analyze_fixture("bad_ckpt");
  const auto counts = counts_by_rule(report);
  const std::map<std::string, std::size_t> expected = {
      {"ckpt-unannotated-field", 1},
      {"ckpt-missing-pack", 1},
      {"ckpt-missing-unpack", 1}};
  EXPECT_EQ(counts, expected);
  for (const auto& f : report.findings) {
    if (f.rule == "ckpt-unannotated-field") {
      EXPECT_NE(f.message.find("'lr_'"), std::string::npos) << f.message;
    }
  }
}

TEST(Fixtures, RngFixtureFlagsEachDisciplineRuleOnce) {
  const auto counts = counts_by_rule(analyze_fixture("bad_rng"));
  const std::map<std::string, std::size_t> expected = {
      {"rng-stream-owner", 1},
      {"rng-backoff-outcome", 1},
      {"rng-conditional-draw", 1}};
  EXPECT_EQ(counts, expected);
}

TEST(Fixtures, LegacyFixtureFlagsBannedRandom) {
  const auto counts = counts_by_rule(analyze_fixture("bad_legacy"));
  const std::map<std::string, std::size_t> expected = {{"banned-random", 1}};
  EXPECT_EQ(counts, expected);
}

TEST(Fixtures, SimdFixtureFlagsOnlyTheOutOfTreeIntrinsics) {
  // The fixture pairs an <immintrin.h> include under src/nn/ (flagged) with
  // an identical one under src/tensor/simd/ (the sanctioned home, clean).
  const Report report = analyze_fixture("bad_simd");
  const auto counts = counts_by_rule(report);
  const std::map<std::string, std::size_t> expected = {{"simd-isolation", 1}};
  EXPECT_EQ(counts, expected);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].file, "src/nn/fastpath.cpp");
}

TEST(Fixtures, TelemetryFixtureFlagsExactlyTheTypoedRecordType) {
  const Report report = analyze_fixture("bad_telemetry");
  const auto counts = counts_by_rule(report);
  const std::map<std::string, std::size_t> expected = {
      {"telemetry-record-type", 1}};
  EXPECT_EQ(counts, expected);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].message.find("\"fligth\""), std::string::npos)
      << report.findings[0].message;
}

// The same add("type", ...) site under tests/ is exempt: suites feed the
// exporters synthetic record types on purpose.
TEST(Fixtures, TelemetryRuleSkipsTestTrees) {
  const fs::path scratch =
      fs::path(::testing::TempDir()) / "spatl_telemetry_scope";
  fs::remove_all(scratch);
  const std::string body =
      "struct R { R& add(const char*, const char*) { return *this; } };\n"
      "void f(R& r) { r.add(\"type\", \"probe\"); }\n";
  spit(scratch / "tests/test_probe.cpp", body);
  spit(scratch / "src/obs/probe.cpp", body);
  const Report report = analyze(load_project(scratch.string()));
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "telemetry-record-type");
  EXPECT_EQ(report.findings[0].file, "src/obs/probe.cpp");
  fs::remove_all(scratch);
}

// --- checkpoint drift drill ------------------------------------------------

// The acceptance drill: take the CLEAN fixture, add one state field to its
// audited struct without an annotation, and the ckpt pass must report it.
TEST(CkptDrift, UnannotatedStateFieldIsCaught) {
  const fs::path scratch =
      fs::path(::testing::TempDir()) / "spatl_ckpt_drift";
  fs::remove_all(scratch);

  const fs::path clean = fixture_dir("clean");
  std::string header = slurp(clean / "src/fl/state.hpp");
  const std::string anchor = "float weight_ = 1.0f;";
  const auto pos = header.find(anchor);
  ASSERT_NE(pos, std::string::npos);
  header.insert(pos + anchor.size(), "\n  int drifted_momentum_ = 0;");

  spit(scratch / "src/fl/state.hpp", header);
  spit(scratch / "src/fl/state.cpp", slurp(clean / "src/fl/state.cpp"));
  spit(scratch / "src/common/util.hpp", slurp(clean / "src/common/util.hpp"));

  const Report report = analyze(load_project(scratch.string()));
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "ckpt-unannotated-field");
  EXPECT_NE(report.findings[0].message.find("'drifted_momentum_'"),
            std::string::npos);
  EXPECT_NE(report.findings[0].message.find("'DemoState'"),
            std::string::npos);

  // Control: the untouched fixture stays clean, so the finding above is the
  // drift and nothing else.
  spit(scratch / "src/fl/state.hpp", slurp(clean / "src/fl/state.hpp"));
  EXPECT_TRUE(analyze(load_project(scratch.string())).findings.empty());
  fs::remove_all(scratch);
}

// --- baseline mechanics ----------------------------------------------------

TEST(Baseline, SuppressesByContextNotLineNumber) {
  const fs::path scratch =
      fs::path(::testing::TempDir()) / "spatl_baseline_roundtrip";
  fs::remove_all(scratch);
  spit(scratch / "src/fl/oops.cpp",
       "namespace f {\nint e() { return rand(); }\n}  // namespace f\n");

  const Project project = load_project(scratch.string());
  Report report = analyze(project);
  ASSERT_EQ(report.findings.size(), 1u);

  // Round-trip: the serialized baseline suppresses the same finding even
  // after lines shift above it.
  const std::string baseline = format_baseline(report, project);
  spit(scratch / "src/fl/oops.cpp",
       "// three\n// new\n// lines\nnamespace f {\nint e() { return rand(); "
       "}\n}  // namespace f\n");
  const Project shifted = load_project(scratch.string());
  Report again = analyze(shifted);
  ASSERT_EQ(again.findings.size(), 1u);
  EXPECT_EQ(apply_baseline(&again, shifted, parse_baseline(baseline)), 0u);
  EXPECT_TRUE(again.findings[0].suppressed);

  // Multiset semantics: one entry suppresses one finding, and a fixed
  // finding leaves its entry stale.
  Report twice = analyze(shifted);
  auto entries = parse_baseline(baseline + baseline);
  EXPECT_EQ(apply_baseline(&twice, shifted, entries), 1u);
  fs::remove_all(scratch);
}

TEST(Baseline, SarifMarksSuppressedFindings) {
  const fs::path scratch = fs::path(::testing::TempDir()) / "spatl_sarif";
  fs::remove_all(scratch);
  spit(scratch / "src/fl/oops.cpp", "int e() { return rand(); }\n");
  const Project project = load_project(scratch.string());
  Report report = analyze(project);
  ASSERT_EQ(report.findings.size(), 1u);
  apply_baseline(&report, project,
                 parse_baseline(format_baseline(report, project)));
  const std::string sarif = to_sarif(report);
  EXPECT_NE(sarif.find("\"ruleId\":\"banned-random\""), std::string::npos);
  EXPECT_NE(sarif.find("\"suppressions\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":1"), std::string::npos);
  fs::remove_all(scratch);
}

// --- the real tree ---------------------------------------------------------

TEST(FullRepo, CleanUnderCheckedInBaseline) {
  const Project project = load_project(SPATL_REPO_ROOT);
  ASSERT_GT(project.files.size(), 100u);  // sanity: the real tree loaded
  Report report = analyze(project);
  const std::string baseline = slurp(
      fs::path(SPATL_REPO_ROOT) / "tools" / "analysis" / "lint_baseline.txt");
  ASSERT_FALSE(baseline.empty());
  const std::size_t stale =
      apply_baseline(&report, project, parse_baseline(baseline));
  EXPECT_EQ(stale, 0u) << "stale baseline entries — regenerate with "
                          "spatl_lint --write-baseline";
  for (const auto& f : report.findings) {
    EXPECT_TRUE(f.suppressed)
        << f.file << ":" << f.line << " [" << f.rule << "] " << f.message;
  }
}

TEST(FullRepo, FixtureCorpusIsExcludedFromTheRepoScan) {
  const Project project = load_project(SPATL_REPO_ROOT);
  for (const auto& f : project.files) {
    EXPECT_EQ(f.rel.find("analysis_fixtures"), std::string::npos) << f.rel;
  }
}
