// Semi-asynchronous straggler commit (DESIGN.md §11): virtual-time lag
// arithmetic, deterministic buffer ordering and serialization, the
// off-switch bit-identity guarantee, the deadline-vs-stale_weight policy
// matrix, quorum-skip attribution, checkpoint/resume with a non-empty
// buffer, adaptive aggregator escalation, and per-phase latency histograms.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/spatl.hpp"
#include "data/synthetic.hpp"
#include "fl/algorithm.hpp"
#include "fl/async.hpp"
#include "fl/checkpoint.hpp"
#include "fl/fault.hpp"
#include "fl/flat_utils.hpp"
#include "fl/runner.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace spatl::fl {
namespace {

data::Dataset small_source(std::uint64_t seed = 11) {
  data::SyntheticConfig cfg;
  cfg.num_samples = 400;
  cfg.image_size = 8;
  cfg.num_classes = 10;
  cfg.noise_stddev = 0.2f;
  cfg.seed = seed;
  return data::make_synth_cifar(cfg);
}

FlConfig small_config() {
  FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 32;
  cfg.local.lr = 0.05;
  cfg.seed = 21;
  return cfg;
}

std::vector<float> global_weights(FederatedAlgorithm& algo) {
  return nn::flatten_values(algo.global_model().all_params());
}

std::unique_ptr<FederatedAlgorithm> make_algorithm(const std::string& name,
                                                   FlEnvironment& env) {
  if (name == "spatl") {
    core::SpatlOptions sopts;
    sopts.agent_finetune_rounds = 1;
    sopts.agent_finetune_episodes = 1;
    return std::make_unique<core::SpatlAlgorithm>(env, small_config(), sopts);
  }
  return make_baseline(name, env, small_config());
}

/// Straggler-heavy fault schedule with a deadline clients overshoot by
/// roughly one period (slowdown 3 vs deadline 2 => lag 1 almost always).
FaultConfig straggler_faults() {
  FaultConfig fc;
  fc.straggler_rate = 0.9;
  fc.slowdown_factor = 3.0;
  fc.round_deadline = 2.0;
  fc.seed = 515;
  return fc;
}

// ------------------------------------------------- virtual-time arithmetic --

TEST(AsyncMath, StragglerLagCountsExtraDeadlinePeriods) {
  EXPECT_EQ(straggler_lag(1.0, 2.0), 0u);   // met the deadline
  EXPECT_EQ(straggler_lag(2.0, 2.0), 0u);   // exactly on time
  EXPECT_EQ(straggler_lag(2.1, 2.0), 1u);   // one extra period
  EXPECT_EQ(straggler_lag(4.0, 2.0), 1u);   // ceil(2) - 1
  EXPECT_EQ(straggler_lag(4.1, 2.0), 2u);
  EXPECT_EQ(straggler_lag(10.0, 2.0), 4u);
  EXPECT_EQ(straggler_lag(5.0, 0.0), 0u);   // deadlines disabled
  // Pathological draws saturate instead of overflowing the cast.
  EXPECT_EQ(straggler_lag(1.0e300, 1.0), 999999u);
}

TEST(AsyncMath, StalenessScaleIsGeometricInLag) {
  EXPECT_DOUBLE_EQ(staleness_scale(0.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(staleness_scale(0.5, 1), 0.5);
  EXPECT_DOUBLE_EQ(staleness_scale(0.5, 3), 0.125);
  EXPECT_DOUBLE_EQ(staleness_scale(1.0, 7), 1.0);
  EXPECT_DOUBLE_EQ(staleness_scale(0.0, 2), 0.0);
}

// ------------------------------------------------------- straggler buffer --

BufferedUpdate make_update(std::size_t client, std::size_t source,
                           std::size_t commit) {
  BufferedUpdate u;
  u.client = client;
  u.source_round = source;
  u.commit_round = commit;
  u.values = {float(client), float(commit)};
  return u;
}

TEST(StragglerBufferTest, OrdersByCommitThenSourceThenClient) {
  StragglerBuffer buf;
  EXPECT_EQ(buf.park(make_update(2, 3, 5)), 0u);
  EXPECT_EQ(buf.park(make_update(0, 4, 5)), 0u);
  EXPECT_EQ(buf.park(make_update(1, 1, 4)), 0u);
  EXPECT_EQ(buf.park(make_update(3, 3, 5)), 0u);
  ASSERT_EQ(buf.size(), 4u);
  const auto& e = buf.entries();
  EXPECT_EQ(e[0].client, 1u);  // commit 4 first
  EXPECT_EQ(e[1].client, 2u);  // commit 5, source 3, client 2
  EXPECT_EQ(e[2].client, 3u);  // commit 5, source 3, client 3
  EXPECT_EQ(e[3].client, 0u);  // commit 5, source 4

  EXPECT_EQ(buf.due_count(3), 0u);
  EXPECT_EQ(buf.due_count(4), 1u);
  EXPECT_EQ(buf.due_count(5), 4u);

  // Entries whose commit round has already passed drain too (skipped-round
  // carry-over): nothing is ever stranded.
  const auto due = buf.take_due(4);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].client, 1u);
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.take_due(100).size(), 3u);
  EXPECT_TRUE(buf.empty());
}

TEST(StragglerBufferTest, ParkDedupsPerClientLatestWins) {
  // A client that straggles again before its parked update drains
  // supersedes the stale one: at most one buffered update per client, and
  // park() reports how many older entries it evicted.
  StragglerBuffer buf;
  EXPECT_EQ(buf.park(make_update(0, 2, 4)), 0u);
  EXPECT_EQ(buf.park(make_update(1, 2, 3)), 0u);
  EXPECT_EQ(buf.park(make_update(0, 3, 6)), 1u);  // evicts the source-2 park
  ASSERT_EQ(buf.size(), 2u);
  // The surviving client-0 entry is the newest one.
  for (const auto& u : buf.entries()) {
    if (u.client == 0) {
      EXPECT_EQ(u.source_round, 3u);
      EXPECT_EQ(u.commit_round, 6u);
      EXPECT_EQ(u.values, (std::vector<float>{0.0f, 6.0f}));
    }
  }
  // Other clients' entries are untouched.
  EXPECT_EQ(buf.due_count(3), 1u);
}

TEST(StragglerBufferTest, SaveLoadRoundTripsAllFields) {
  StragglerBuffer buf;
  BufferedUpdate u = make_update(3, 2, 4);
  u.tau = 7.5;
  u.bn = {0.25f, -1.0f};
  u.aux = {0.5f};
  u.mask = {1, 0, 1, 1};
  buf.park(std::move(u));
  buf.park(make_update(1, 2, 3));

  RunCheckpoint ckpt;
  buf.save(ckpt, "t/");
  StragglerBuffer back;
  back.load(ckpt, "t/");
  ASSERT_EQ(back.size(), 2u);
  const auto& a = back.entries()[1];  // commit 4 entry
  EXPECT_EQ(a.client, 3u);
  EXPECT_EQ(a.source_round, 2u);
  EXPECT_EQ(a.commit_round, 4u);
  EXPECT_DOUBLE_EQ(a.tau, 7.5);
  EXPECT_EQ(a.values, (std::vector<float>{3.0f, 4.0f}));
  EXPECT_EQ(a.bn, (std::vector<float>{0.25f, -1.0f}));
  EXPECT_EQ(a.aux, (std::vector<float>{0.5f}));
  EXPECT_EQ(a.mask, (std::vector<std::uint8_t>{1, 0, 1, 1}));
}

TEST(StragglerBufferTest, EmptyBufferWritesNothing) {
  // Synchronous checkpoints must stay byte-identical: an empty buffer adds
  // no entries, and loading from a pre-async checkpoint is a no-op.
  StragglerBuffer buf;
  RunCheckpoint ckpt;
  buf.save(ckpt, "t/");
  EXPECT_TRUE(ckpt.empty());
  StragglerBuffer back;
  back.park(make_update(0, 1, 2));
  back.load(ckpt, "t/");
  EXPECT_TRUE(back.empty());
}

// ------------------------------------------------- off-switch bit-identity --

RunOptions straggler_options() {
  RunOptions opts;
  opts.rounds = 3;
  opts.sample_ratio = 0.75;
  opts.eval_every = 1;
  opts.sampling_seed = 9;
  opts.faults = straggler_faults();
  return opts;
}

// A run with AsyncConfig{enabled = false} must be float-for-float identical
// to a run with no AsyncConfig at all: the disabled subsystem may not touch
// a single code path that feeds the model.
class AsyncOffBitIdentity : public ::testing::TestWithParam<const char*> {};

TEST_P(AsyncOffBitIdentity, DisabledAsyncMatchesAbsentAsync) {
  const auto source = small_source();

  common::Rng rng1(37);
  FlEnvironment env1(source, 4, 0.5, 0.25, rng1);
  auto plain = make_algorithm(GetParam(), env1);
  const auto a = run_federated(*plain, straggler_options());

  common::Rng rng2(37);
  FlEnvironment env2(source, 4, 0.5, 0.25, rng2);
  auto off = make_algorithm(GetParam(), env2);
  RunOptions opts = straggler_options();
  opts.async = AsyncConfig{};  // present but enabled = false
  const auto b = run_federated(*off, opts);

  const auto wa = global_weights(*plain);
  const auto wb = global_weights(*off);
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)), 0);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.total_stragglers, b.total_stragglers);
  EXPECT_EQ(b.total_parked, 0u);
  EXPECT_EQ(b.total_late_commits, 0u);
  EXPECT_EQ(b.buffered_remaining, 0u);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, AsyncOffBitIdentity,
                         ::testing::Values("fedavg", "fedprox", "fednova",
                                           "scaffold", "spatl"));

// ------------------------------------------- semi-async commit behaviour --

TEST(AsyncCommit, StragglersAreParkedAndCommitLate) {
  const auto source = small_source();
  common::Rng rng(61);
  FlEnvironment env(source, 4, 0.5, 0.25, rng);
  FedAvg algo(env, small_config());

  RunOptions opts;
  opts.rounds = 5;
  opts.eval_every = 1;
  opts.faults = straggler_faults();
  AsyncConfig ac;
  ac.enabled = true;
  ac.stale_weight = 0.5;
  ac.max_lag = 8;
  opts.async = ac;

  const auto result = run_federated(algo, opts);
  EXPECT_GT(result.total_parked, 0u);
  EXPECT_GT(result.total_late_commits, 0u);
  // Every park either commits late, stays buffered, or was superseded by a
  // newer park from the same client (latest-wins dedup).
  EXPECT_EQ(result.total_parked,
            result.total_late_commits + result.buffered_remaining +
                result.total_dedup_dropped);
  // Deadline rejections are gone on the async path (lag 1 << max_lag 8).
  std::size_t rejected_deadline = 0;
  for (const auto& rec : result.history) {
    rejected_deadline += rec.stats.rejected_deadline;
  }
  EXPECT_EQ(rejected_deadline, 0u);
  EXPECT_TRUE(is_finite(global_weights(algo)));
}

TEST(AsyncCommit, LagBeyondMaxLagIsRejectedAsDeadline) {
  const auto source = small_source();
  common::Rng rng(61);
  FlEnvironment env(source, 4, 0.5, 0.25, rng);
  FedAvg algo(env, small_config());

  RunOptions opts;
  opts.rounds = 3;
  opts.eval_every = 1;
  FaultConfig fc = straggler_faults();
  fc.straggler_rate = 1.0;
  fc.slowdown_factor = 10.0;  // lag ~ ceil(10/2) - 1 = 4 > max_lag
  opts.faults = fc;
  AsyncConfig ac;
  ac.enabled = true;
  ac.max_lag = 2;
  opts.async = ac;

  const auto result = run_federated(algo, opts);
  EXPECT_EQ(result.total_parked, 0u);
  std::size_t rejected_deadline = 0;
  for (const auto& rec : result.history) {
    rejected_deadline += rec.stats.rejected_deadline;
  }
  EXPECT_GT(rejected_deadline, 0u);
}

// -------------------------- deadline-vs-stale_weight regression (bugfix 1) --

// The kDeadline contract: a within-grace straggler is down-weighted on the
// synchronous path (stale_weight > 0) or parked on the async path;
// kDeadline fires only when stale_weight == 0 (sync) or lag > max_lag
// (async). Four policy cells, one fault schedule.
TEST(DeadlinePolicy, StaleWeightAndAsyncMatrix) {
  const auto source = small_source();
  FaultConfig fc;
  fc.straggler_rate = 1.0;
  fc.slowdown_factor = 3.0;
  fc.round_deadline = 2.0;
  fc.seed = 77;

  const auto run_cell = [&](double stale_weight,
                            std::optional<AsyncConfig> async) {
    common::Rng rng(71);
    FlEnvironment env(source, 4, 5.0, 0.25, rng);
    FedAvg algo(env, small_config());
    RunOptions opts;
    opts.rounds = 2;
    opts.eval_every = 1;
    opts.faults = fc;
    ResilienceConfig rc;
    rc.stale_weight = stale_weight;
    opts.resilience = rc;
    opts.async = async;
    return run_federated(algo, opts);
  };
  const auto sum_deadline = [](const RunResult& r) {
    std::size_t n = 0;
    for (const auto& rec : r.history) n += rec.stats.rejected_deadline;
    return n;
  };

  // Sync, stale_weight > 0: down-weighted, never rejected (the occasional
  // on-time draw under straggler_rate 1.0 is accepted at full weight).
  const auto grace = run_cell(0.5, std::nullopt);
  EXPECT_GT(grace.total_stragglers, 0u);
  EXPECT_EQ(sum_deadline(grace), 0u);
  EXPECT_EQ(grace.total_accepted, grace.total_selected);
  EXPECT_EQ(grace.total_parked, 0u);

  // Sync, stale_weight == 0: the only synchronous kDeadline case — every
  // rejection is a deadline rejection, everything else is accepted.
  const auto drop = run_cell(0.0, std::nullopt);
  EXPECT_GT(sum_deadline(drop), 0u);
  EXPECT_EQ(drop.total_accepted + sum_deadline(drop), drop.total_selected);

  // Async, lag within max_lag: parked, regardless of the sync stale_weight.
  AsyncConfig within;
  within.enabled = true;
  within.max_lag = 4;
  const auto parked = run_cell(0.0, within);
  EXPECT_EQ(sum_deadline(parked), 0u);
  EXPECT_GT(parked.total_parked, 0u);

  // Async, lag beyond max_lag: kDeadline is back (the only async case).
  AsyncConfig beyond;
  beyond.enabled = true;
  beyond.max_lag = 0;
  const auto rejected = run_cell(0.5, beyond);
  EXPECT_GT(sum_deadline(rejected), 0u);
  EXPECT_EQ(rejected.total_parked, 0u);
}

// ------------------------------------ quorum attribution (bugfix 2) --------

TEST(QuorumSkip, PostValidationThinningIsReCheckedAndAttributed) {
  const auto source = small_source();
  common::Rng rng(83);
  FlEnvironment env(source, 4, 5.0, 0.25, rng);
  FedAvg algo(env, small_config());
  const auto before = global_weights(algo);

  RunOptions opts;
  opts.rounds = 2;
  opts.eval_every = 1;
  FaultConfig fc;
  fc.corruption_rate = 1.0;  // every uplink arrives NaN-poisoned
  fc.corruption_kind = CorruptionKind::kNaN;
  fc.seed = 90;
  opts.faults = fc;
  ResilienceConfig rc;
  rc.min_quorum = 2;
  opts.resilience = rc;

  const auto result = run_federated(algo, opts);
  // Admission passes (everyone shows up) but validation rejects every
  // update, so the quorum must be re-checked on the survivor set.
  EXPECT_EQ(result.rounds_skipped, 2u);
  for (const auto& rec : result.history) {
    ASSERT_TRUE(rec.stats.skipped);
    EXPECT_EQ(rec.stats.skip_reason, SkipReason::kPostValidationQuorum);
    EXPECT_GT(rec.stats.delivered, 0u);
  }
  const auto after = global_weights(algo);
  EXPECT_EQ(
      std::memcmp(before.data(), after.data(), before.size() * sizeof(float)),
      0);
}

TEST(QuorumSkip, AdmissionShortfallIsAttributedSeparately) {
  const auto source = small_source();
  common::Rng rng(83);
  FlEnvironment env(source, 4, 5.0, 0.25, rng);
  FedAvg algo(env, small_config());

  RunOptions opts;
  opts.rounds = 2;
  opts.eval_every = 1;
  FaultConfig fc;
  fc.dropout_rate = 1.0;  // nobody shows up at all
  fc.seed = 91;
  opts.faults = fc;

  const auto result = run_federated(algo, opts);
  EXPECT_EQ(result.rounds_skipped, 2u);
  for (const auto& rec : result.history) {
    ASSERT_TRUE(rec.stats.skipped);
    EXPECT_EQ(rec.stats.skip_reason, SkipReason::kAdmissionQuorum);
    EXPECT_EQ(rec.stats.delivered, 0u);
  }
  EXPECT_EQ(skip_reason_name(SkipReason::kNone), std::string("none"));
  EXPECT_EQ(skip_reason_name(SkipReason::kAdmissionQuorum),
            std::string("admission_quorum"));
  EXPECT_EQ(skip_reason_name(SkipReason::kPostValidationQuorum),
            std::string("post_validation_quorum"));
}

// --------------------------------------- checkpoint/resume mid-buffer -----

RunOptions async_resume_options() {
  RunOptions opts;
  opts.rounds = 4;
  opts.sample_ratio = 0.75;
  opts.eval_every = 2;
  opts.sampling_seed = 9;
  opts.faults = straggler_faults();
  AsyncConfig ac;
  ac.enabled = true;
  ac.stale_weight = 0.5;
  ac.max_lag = 4;
  opts.async = ac;
  return opts;
}

// A run checkpointed at round 2 — with updates still parked in the
// straggler buffer — and resumed into a fresh algorithm must finish
// bit-identical to the uninterrupted twin: the buffer itself serializes.
class AsyncResumeBitIdentity : public ::testing::TestWithParam<const char*> {};

TEST_P(AsyncResumeBitIdentity, MidBufferResumeMatchesStraightThrough) {
  const auto source = small_source();

  common::Rng rng1(37);
  FlEnvironment env1(source, 4, 0.5, 0.25, rng1);
  auto straight = make_algorithm(GetParam(), env1);
  const auto full = run_federated(*straight, async_resume_options());
  ASSERT_GT(full.total_parked, 0u);  // the schedule must actually buffer

  common::Rng rng2(37);
  FlEnvironment env2(source, 4, 0.5, 0.25, rng2);
  auto first = make_algorithm(GetParam(), env2);
  RunOptions leg1 = async_resume_options();
  leg1.rounds = 2;
  leg1.checkpoint_every = 2;
  const auto half = run_federated(*first, leg1);
  ASSERT_EQ(half.checkpoints_written, 1u);
  // The snapshot must carry a live buffer — otherwise this test is not
  // exercising mid-buffer resume at all.
  ASSERT_NE(half.last_checkpoint.find("algo/async/n"), nullptr);

  common::Rng rng3(37);
  FlEnvironment env3(source, 4, 0.5, 0.25, rng3);
  auto second = make_algorithm(GetParam(), env3);
  RunOptions leg2 = async_resume_options();
  leg2.resume = &half.last_checkpoint;
  const auto resumed = run_federated(*second, leg2);

  const auto wa = global_weights(*straight);
  const auto wb = global_weights(*second);
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)), 0);

  EXPECT_EQ(full.final_accuracy, resumed.final_accuracy);
  EXPECT_EQ(full.best_accuracy, resumed.best_accuracy);
  EXPECT_EQ(full.total_bytes, resumed.total_bytes);
  EXPECT_EQ(full.total_stragglers, resumed.total_stragglers);
  EXPECT_EQ(full.total_accepted, resumed.total_accepted);
  EXPECT_EQ(full.total_parked, resumed.total_parked);
  EXPECT_EQ(full.total_late_commits, resumed.total_late_commits);
  EXPECT_EQ(full.buffered_remaining, resumed.buffered_remaining);
  EXPECT_EQ(full.rounds_skipped, resumed.rounds_skipped);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, AsyncResumeBitIdentity,
                         ::testing::Values("fedavg", "fedprox", "fednova",
                                           "scaffold", "spatl"));

// ------------------------------------------------- adaptive escalation ----

TEST(Escalation, SustainedSuspicionEscalatesTheAggregator) {
  const auto source = small_source();
  const auto run_once = [&](bool escalate) {
    common::Rng rng(97);
    FlEnvironment env(source, 4, 0.5, 0.25, rng);
    FedAvg algo(env, small_config());
    RunOptions opts;
    opts.rounds = 6;
    opts.eval_every = 1;
    FaultConfig fc;
    fc.corruption_rate = 0.5;
    fc.corruption_kind = CorruptionKind::kNaN;
    fc.seed = 105;
    opts.faults = fc;
    if (escalate) {
      opts.escalation.enabled = true;
      opts.escalation.suspect_threshold = 0.25;
      opts.escalation.patience = 2;
      opts.escalation.aggregator = AggregatorKind::kCoordinateMedian;
    }
    return run_federated(algo, opts);
  };

  const auto escalated = run_once(true);
  EXPECT_GT(escalated.rounds_escalated, 0u);
  bool flagged = false;
  for (const auto& rec : escalated.history) flagged |= rec.stats.escalated;
  EXPECT_TRUE(flagged);

  // Off by default: the same hostile run never escalates.
  const auto baseline = run_once(false);
  EXPECT_EQ(baseline.rounds_escalated, 0u);
}

TEST(Escalation, TrackerTripsOnceAfterPatienceAndIsSticky) {
  EscalationConfig cfg;
  cfg.enabled = true;
  cfg.suspect_threshold = 0.5;
  cfg.patience = 2;
  EscalationTracker tracker(cfg);

  RoundStats quiet;
  quiet.delivered = 4;
  RoundStats noisy;
  noisy.delivered = 4;
  noisy.rejected_non_finite = 3;

  using Action = EscalationTracker::Action;
  EXPECT_EQ(tracker.observe(noisy), Action::kNone);  // streak 1
  EXPECT_EQ(tracker.observe(quiet), Action::kNone);  // streak resets
  EXPECT_EQ(tracker.observe(noisy), Action::kNone);  // streak 1
  EXPECT_EQ(tracker.observe(noisy), Action::kEscalate);  // trips exactly once
  EXPECT_TRUE(tracker.active());
  EXPECT_EQ(tracker.observe(noisy), Action::kNone);  // sticky, never re-trips

  // Skipped rounds teach nothing: the streak neither grows nor resets.
  EscalationTracker fresh(cfg);
  RoundStats skipped = noisy;
  skipped.skipped = true;
  EXPECT_EQ(fresh.observe(noisy), Action::kNone);
  EXPECT_EQ(fresh.observe(skipped), Action::kNone);
  EXPECT_EQ(fresh.observe(noisy), Action::kEscalate);
}

TEST(Escalation, ResetDropsBackAndQuietStreakDeescalates) {
  using Action = EscalationTracker::Action;
  EscalationConfig cfg;
  cfg.enabled = true;
  cfg.suspect_threshold = 0.5;
  cfg.patience = 1;

  RoundStats quiet;
  quiet.delivered = 4;
  RoundStats noisy;
  noisy.delivered = 4;
  noisy.rejected_non_finite = 3;

  // Explicit reset: drops the escalation and clears both streaks.
  EscalationTracker tracker(cfg);
  EXPECT_EQ(tracker.observe(noisy), Action::kEscalate);
  EXPECT_TRUE(tracker.active());
  tracker.reset();
  EXPECT_FALSE(tracker.active());
  EXPECT_EQ(tracker.streak(), 0u);
  EXPECT_EQ(tracker.quiet_streak(), 0u);
  // And the tracker can trip again afterwards.
  EXPECT_EQ(tracker.observe(noisy), Action::kEscalate);

  // Opt-in de-escalation after a sustained quiet streak.
  cfg.reset_after_quiet = 2;
  EscalationTracker relax(cfg);
  EXPECT_EQ(relax.observe(noisy), Action::kEscalate);
  EXPECT_EQ(relax.observe(quiet), Action::kNone);  // quiet 1
  EXPECT_EQ(relax.observe(noisy), Action::kNone);  // noise resets the quiet streak
  EXPECT_EQ(relax.observe(quiet), Action::kNone);  // quiet 1
  EXPECT_EQ(relax.observe(quiet), Action::kDeescalate);  // quiet 2: drops back
  EXPECT_FALSE(relax.active());
  // One-way by default: without reset_after_quiet, quiet rounds never drop
  // the escalation.
  cfg.reset_after_quiet = 0;
  EscalationTracker sticky(cfg);
  EXPECT_EQ(sticky.observe(noisy), Action::kEscalate);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sticky.observe(quiet), Action::kNone);
  }
  EXPECT_TRUE(sticky.active());
}

// --------------------------------------------- per-phase latency histograms --

TEST(PhaseHistograms, TracedRoundsRecordPerPhaseLatency) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.reset();
  obs::Tracer::instance().set_enabled(true);

  const std::string path = "async_phase_histograms_test.jsonl";
  {
    obs::JsonlWriter sink(path);
    const auto source = small_source();
    common::Rng rng(29);
    FlEnvironment env(source, 4, 0.5, 0.25, rng);
    FedAvg algo(env, small_config());
    RunOptions opts;
    opts.rounds = 2;
    opts.faults = straggler_faults();
    AsyncConfig ac;
    ac.enabled = true;
    opts.async = ac;
    opts.telemetry = &sink;
    run_federated(algo, opts);
  }
  obs::Tracer::instance().set_enabled(false);
  std::remove(path.c_str());

  const auto snap = registry.snapshot();
  for (const char* name :
       {"fl.train.round_ms", "fl.uplink.round_ms", "fl.aggregate.round_ms"}) {
    const auto it = snap.histograms.find(name);
    ASSERT_NE(it, snap.histograms.end()) << name;
    EXPECT_GT(it->second.count, 0u) << name;
    EXPECT_GE(it->second.sum, 0.0) << name;
  }
  // The async counters ride the same registry.
  const auto parked = snap.counters.find("async.parked");
  ASSERT_NE(parked, snap.counters.end());
  EXPECT_GT(parked->second, 0u);
}

}  // namespace
}  // namespace spatl::fl
