// ComputeContext backend seam (tensor/backend.hpp): selection semantics,
// the scalar oracle's bit-identity against the historical kernels, NaN/Inf
// propagation on every backend, and the cpu-simd backend's documented ulp
// bound + thread-count invariance.
//
// Contract under test (tensor/ops.hpp):
//   (a) scalar is bit-identical to the pre-backend kernels on finite inputs
//       (matmul_nt deliberately moved from double to float accumulation;
//       its replica below IS the new documented contract),
//   (b) NaN/Inf in either operand propagates per IEEE-754 on both backends
//       even where pruned rows used to swallow them,
//   (c) cpu-simd is within max ulp distance 4*k of scalar per element and
//       is itself bit-identical across 1/2/8-thread pools.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "data/synthetic.hpp"
#include "fl/algorithm.hpp"
#include "fl/runner.hpp"
#include "nn/conv.hpp"
#include "nn/depthwise.hpp"
#include "nn/module.hpp"
#include "tensor/backend.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace spatl {
namespace {

using tensor::BackendKind;
using tensor::Shape;
using tensor::Tensor;

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

/// Pin a backend for one scope, restoring the previous one on exit.
class BackendGuard {
 public:
  explicit BackendGuard(BackendKind kind)
      : prev_(tensor::active_backend()) {
    tensor::set_active_backend(kind);
  }
  ~BackendGuard() { tensor::set_active_backend(prev_); }

 private:
  BackendKind prev_;
};

template <typename Fn>
auto with_pool_size(std::size_t threads, Fn&& fn) {
  common::ThreadPool pool(threads);
  common::ThreadPool::ScopedOverride scope(pool);
  return fn();
}

/// Ulp distance on the monotonic integer number line, +/-0 identified.
/// Returns 0 when both are NaN; the maximum value when exactly one is.
std::int64_t ulp_distance(float a, float b) {
  const bool na = std::isnan(a), nb = std::isnan(b);
  if (na || nb) {
    return na == nb ? 0 : std::numeric_limits<std::int64_t>::max();
  }
  const auto monotonic = [](float x) {
    std::int32_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    return bits >= 0 ? std::int64_t(bits)
                     : -std::int64_t(bits & 0x7FFFFFFF);
  };
  const std::int64_t d = monotonic(a) - monotonic(b);
  return d < 0 ? -d : d;
}

testing::AssertionResult bit_identical(const std::vector<float>& a,
                                       const std::vector<float>& b) {
  if (a.size() != b.size()) {
    return testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    return testing::AssertionFailure() << "float payloads differ bitwise";
  }
  return testing::AssertionSuccess();
}

Tensor transpose2d(const Tensor& t) {
  const std::size_t m = t.dim(0), n = t.dim(1);
  Tensor out({n, m});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) out[j * m + i] = t[i * n + j];
  }
  return out;
}

/// Zero out full rows of `a` — the salient-pruning pattern the elision
/// fast path exists for.
void prune_rows(Tensor& a, std::initializer_list<std::size_t> rows) {
  const std::size_t k = a.dim(1);
  for (std::size_t r : rows) {
    for (std::size_t p = 0; p < k; ++p) a[r * k + p] = 0.0f;
  }
}

// --- historical-kernel replicas (criterion (a) oracles) --------------------
//
// These serial loops are byte-for-byte the pre-backend matmul/matmul_tn
// bodies, unconditional zero-skip included. Serial is enough: no reduction
// crosses a row, so chunking cannot change any output bit.

Tensor historical_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += av * b[p * n + j];
      }
    }
  }
  return c;
}

Tensor historical_matmul_tn(const Tensor& a, const Tensor& b) {
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a[p * m + i];
      if (av == 0.0f) continue;
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += av * b[p * n + j];
      }
    }
  }
  return c;
}

/// The documented float-over-k contract for matmul_nt (ops.hpp) — the one
/// deliberate departure from the pre-backend kernel, which widened to
/// double.
Tensor contract_matmul_nt(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a[i * k + p] * b[j * k + p];
      c[i * n + j] = acc;
    }
  }
  return c;
}

// --- selection -------------------------------------------------------------

TEST(BackendSelect, ParseNamesAndReject) {
  EXPECT_EQ(tensor::parse_backend("scalar"), BackendKind::kScalar);
  EXPECT_EQ(tensor::parse_backend("cpu-simd"), BackendKind::kCpuSimd);
  const BackendKind autod = tensor::parse_backend("auto");
  EXPECT_EQ(autod, tensor::cpu_simd_supported() ? BackendKind::kCpuSimd
                                                : BackendKind::kScalar);
  EXPECT_THROW(tensor::parse_backend("gpu"), std::invalid_argument);
  EXPECT_THROW(tensor::parse_backend(""), std::invalid_argument);
}

TEST(BackendSelect, NamesRoundTrip) {
  EXPECT_STREQ(tensor::backend_name(BackendKind::kScalar), "scalar");
  EXPECT_STREQ(tensor::backend_name(BackendKind::kCpuSimd), "cpu-simd");
  EXPECT_STREQ(tensor::scalar_context().name(), "scalar");
}

TEST(BackendSelect, SetActiveSwitchesAndRestores) {
  const BackendKind before = tensor::active_backend();
  {
    BackendGuard guard(BackendKind::kScalar);
    EXPECT_EQ(tensor::active_backend(), BackendKind::kScalar);
  }
  EXPECT_EQ(tensor::active_backend(), before);
}

TEST(BackendSelect, CpuSimdContextNeverNull) {
  // Falls back to scalar on unsupported hardware rather than handing the
  // dispatcher a null context.
  const tensor::ComputeContext& ctx = tensor::cpu_simd_context();
  if (tensor::cpu_simd_supported()) {
    EXPECT_EQ(ctx.kind(), BackendKind::kCpuSimd);
  } else {
    EXPECT_EQ(ctx.kind(), BackendKind::kScalar);
  }
}

// --- (a) scalar bit-identity on finite inputs ------------------------------

TEST(ScalarOracle, BitIdenticalToHistoricalKernelsOnPrunedFiniteInputs) {
  BackendGuard guard(BackendKind::kScalar);
  common::Rng rng(0x5CA1A);
  Tensor a = Tensor::randn({37, 53}, rng);
  prune_rows(a, {0, 9, 20, 36});  // exercise the elision fast path
  const Tensor b = Tensor::randn({53, 29}, rng);

  Tensor c;
  tensor::matmul(a, b, c);
  EXPECT_TRUE(bit_identical(c.storage(), historical_matmul(a, b).storage()));

  const Tensor at = transpose2d(a);
  Tensor c_tn;
  tensor::matmul_tn(at, b, c_tn);
  EXPECT_TRUE(
      bit_identical(c_tn.storage(), historical_matmul_tn(at, b).storage()));

  const Tensor bt = transpose2d(b);
  Tensor c_nt;
  tensor::matmul_nt(a, bt, c_nt);
  EXPECT_TRUE(
      bit_identical(c_nt.storage(), contract_matmul_nt(a, bt).storage()));
}

// --- (b) NaN/Inf propagation on both backends ------------------------------

std::vector<BackendKind> available_backends() {
  std::vector<BackendKind> kinds{BackendKind::kScalar};
  if (tensor::cpu_simd_supported()) kinds.push_back(BackendKind::kCpuSimd);
  return kinds;
}

bool has_nan(const Tensor& t) {
  for (std::size_t i = 0; i < t.numel(); ++i) {
    if (std::isnan(t[i])) return true;
  }
  return false;
}

TEST(NonFinitePropagation, PrunedRowsTimesPoisonedBOnEveryBackend) {
  for (const BackendKind kind : available_backends()) {
    BackendGuard guard(kind);
    for (const float poison : {kNaN, kInf, -kInf}) {
      common::Rng rng(0xF00D);
      Tensor a = Tensor::randn({8, 16}, rng);
      prune_rows(a, {2, 5});
      Tensor b = Tensor::randn({16, 11}, rng);
      b[7 * 11 + 4] = poison;

      Tensor c;
      tensor::matmul(a, b, c);
      // The pruned rows hit 0 * poison: the swallowed case pre-PR.
      EXPECT_TRUE(std::isnan(c[2 * 11 + 4]))
          << tensor::backend_name(kind) << " poison " << poison;
      EXPECT_TRUE(std::isnan(c[5 * 11 + 4]))
          << tensor::backend_name(kind) << " poison " << poison;

      Tensor c_tn;
      tensor::matmul_tn(transpose2d(a), b, c_tn);
      EXPECT_TRUE(std::isnan(c_tn[2 * 11 + 4])) << tensor::backend_name(kind);
      EXPECT_TRUE(std::isnan(c_tn[5 * 11 + 4])) << tensor::backend_name(kind);

      Tensor c_nt;
      tensor::matmul_nt(a, transpose2d(b), c_nt);
      EXPECT_TRUE(std::isnan(c_nt[2 * 11 + 4])) << tensor::backend_name(kind);
    }
  }
}

TEST(NonFinitePropagation, ConvForwardCarriesPoisonedInput) {
  for (const BackendKind kind : available_backends()) {
    BackendGuard guard(kind);
    common::Rng rng(31);
    nn::Conv2d conv(2, 4, 3, 1, 1, /*bias=*/true);
    conv.init_params(rng);
    Tensor x = Tensor::randn({1, 2, 6, 6}, rng);
    x[10] = kNaN;
    const Tensor y = conv.forward(x, /*train=*/true);
    EXPECT_TRUE(has_nan(y)) << tensor::backend_name(kind);
  }
}

TEST(NonFinitePropagation, ConvBackwardZeroGradTimesPoisonedWeights) {
  // The exploded-weights case the divergence guard depends on: weights went
  // NaN, the incoming gradient is all zero (dead ReLU region), and dX must
  // still read NaN — pre-PR the zero rows of the gradient GEMM swallowed it.
  for (const BackendKind kind : available_backends()) {
    BackendGuard guard(kind);
    common::Rng rng(32);
    nn::Conv2d conv(2, 4, 3, 1, 1, /*bias=*/false);
    conv.init_params(rng);
    std::vector<nn::ParamView> params;
    conv.collect_params("conv.", params);
    ASSERT_EQ(params.size(), 1u);
    (*params[0].value)[3] = kNaN;  // one exploded weight

    Tensor x = Tensor::randn({1, 2, 6, 6}, rng);
    (void)conv.forward(x, /*train=*/true);
    Tensor gout({1, 4, 6, 6});  // all-zero upstream gradient
    const Tensor dx = conv.backward(gout);
    EXPECT_TRUE(has_nan(dx)) << tensor::backend_name(kind);
  }
}

TEST(NonFinitePropagation, DepthwiseBackwardPoisonedFilter) {
  // Same bug class in the depthwise backward's gv == 0 skip.
  common::Rng rng(33);
  nn::DepthwiseConv2d dw(2, 3, 1, 1);
  dw.init_params(rng);
  std::vector<nn::ParamView> params;
  dw.collect_params("dw.", params);
  ASSERT_EQ(params.size(), 1u);
  (*params[0].value)[1] = kNaN;

  Tensor x = Tensor::randn({1, 2, 5, 5}, rng);
  (void)dw.forward(x, /*train=*/true);
  Tensor gout({1, 2, 5, 5});  // all-zero upstream gradient
  const Tensor dx = dw.backward(gout);
  EXPECT_TRUE(has_nan(dx));
}

TEST(NonFinitePropagation, DepthwiseBackwardPoisonedInput) {
  common::Rng rng(34);
  nn::DepthwiseConv2d dw(1, 3, 1, 1);
  dw.init_params(rng);
  Tensor x = Tensor::randn({1, 1, 5, 5}, rng);
  x[12] = kInf;
  (void)dw.forward(x, /*train=*/true);
  Tensor gout({1, 1, 5, 5});  // all-zero upstream gradient
  (void)dw.backward(gout);
  std::vector<nn::ParamView> params;
  dw.collect_params("dw.", params);
  ASSERT_EQ(params.size(), 1u);
  EXPECT_TRUE(has_nan(*params[0].grad))
      << "0 * Inf from the poisoned input must reach the filter gradient";
}

// --- (c) cpu-simd: ulp bound vs scalar, bit-identity across pools ----------

struct GemmCase {
  std::size_t m, k, n;
};

// Shapes chosen to hit every SIMD code path: the 32-column tile, the
// 8-column tile, the masked tail, the 4-dot nt tile, its j remainder, and
// the scalar k tail.
const GemmCase kGemmCases[] = {
    {1, 1, 1},   {2, 3, 4},    {7, 5, 3},     {16, 16, 16},
    {33, 17, 9}, {67, 123, 45}, {12, 64, 40},  {5, 9, 77},
};

std::vector<float> run_gemm_family(const GemmCase& gc, bool pruned) {
  common::Rng rng(gc.m * 7919 + gc.k * 131 + gc.n);
  Tensor a = Tensor::randn({gc.m, gc.k}, rng);
  if (pruned && gc.m > 2) prune_rows(a, {0, gc.m / 2});
  const Tensor b = Tensor::randn({gc.k, gc.n}, rng);
  const Tensor at = transpose2d(a);
  const Tensor bt = transpose2d(b);
  std::vector<float> flat;
  Tensor c;
  tensor::matmul(a, b, c);
  flat.insert(flat.end(), c.storage().begin(), c.storage().end());
  tensor::matmul_tn(at, b, c);
  flat.insert(flat.end(), c.storage().begin(), c.storage().end());
  tensor::matmul_nt(a, bt, c);
  flat.insert(flat.end(), c.storage().begin(), c.storage().end());
  return flat;
}

// The |a|·|b| dot per output element: the natural scale for accumulation
// error. A bound in ulps *of the result* is not cancellation-safe — when
// partial products nearly cancel, the result's magnitude (and with it its
// ulp) shrinks while the rounding error, proportional to the magnitudes
// that were summed, does not. The contract therefore measures ulps at the
// scale of the absolute-value dot product (tensor/ops.hpp).
std::vector<float> abs_dot_scale(const GemmCase& gc, bool pruned) {
  common::Rng rng(gc.m * 7919 + gc.k * 131 + gc.n);
  Tensor a = Tensor::randn({gc.m, gc.k}, rng);
  if (pruned && gc.m > 2) prune_rows(a, {0, gc.m / 2});
  const Tensor b = Tensor::randn({gc.k, gc.n}, rng);
  std::vector<float> scale(gc.m * gc.n, 0.0f);
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < gc.m; ++i) {
    for (std::size_t p = 0; p < gc.k; ++p) {
      const float av = std::fabs(pa[i * gc.k + p]);
      for (std::size_t j = 0; j < gc.n; ++j) {
        scale[i * gc.n + j] += av * std::fabs(pb[p * gc.n + j]);
      }
    }
  }
  return scale;
}

TEST(SimdBackend, WithinDocumentedUlpBoundOfScalarAcrossPools) {
  if (!tensor::cpu_simd_supported()) {
    GTEST_SKIP() << "CPU lacks AVX2/FMA";
  }
  constexpr float kUlpAtUnit = 1.1920929e-7f;  // 2^-23: ulp spacing at 1.0
  for (const GemmCase& gc : kGemmCases) {
    for (const bool pruned : {false, true}) {
      const auto scalar = [&] {
        BackendGuard guard(BackendKind::kScalar);
        return run_gemm_family(gc, pruned);
      }();
      // All three variants compute the same product, so one m x n scale
      // table covers the whole concatenated family output.
      const auto scale = abs_dot_scale(gc, pruned);
      for (const std::size_t threads : {1u, 2u, 8u}) {
        const auto simd = with_pool_size(threads, [&] {
          BackendGuard guard(BackendKind::kCpuSimd);
          return run_gemm_family(gc, pruned);
        });
        ASSERT_EQ(simd.size(), scalar.size());
        ASSERT_EQ(simd.size(), 3 * scale.size());
        const std::int64_t bound = 4 * std::int64_t(gc.k);
        for (std::size_t i = 0; i < simd.size(); ++i) {
          // Primary contract: <= 4k ulps measured at the |a|.|b| scale.
          // The result-relative ulp distance is accepted too (it is the
          // tighter reading whenever no cancellation occurred).
          const float abs_err = std::fabs(simd[i] - scalar[i]);
          const float abs_bound =
              float(bound) * kUlpAtUnit * scale[i % scale.size()];
          if (abs_err <= abs_bound) continue;
          ASSERT_LE(ulp_distance(simd[i], scalar[i]), bound)
              << "m=" << gc.m << " k=" << gc.k << " n=" << gc.n
              << " pruned=" << pruned << " threads=" << threads
              << " element " << i << ": " << simd[i] << " vs " << scalar[i]
              << " (|a|.|b| scale " << scale[i % scale.size()] << ")";
        }
      }
    }
  }
}

TEST(SimdBackend, BitIdenticalAcrossPoolSizes) {
  if (!tensor::cpu_simd_supported()) {
    GTEST_SKIP() << "CPU lacks AVX2/FMA";
  }
  const auto run = [] {
    BackendGuard guard(BackendKind::kCpuSimd);
    std::vector<float> flat;
    for (const GemmCase& gc : kGemmCases) {
      const auto r = run_gemm_family(gc, /*pruned=*/true);
      flat.insert(flat.end(), r.begin(), r.end());
    }
    return flat;
  };
  const auto one = with_pool_size(1, run);
  const auto two = with_pool_size(2, run);
  const auto eight = with_pool_size(8, run);
  EXPECT_TRUE(bit_identical(one, two));
  EXPECT_TRUE(bit_identical(one, eight));
}

// --- runner plumbing -------------------------------------------------------

TEST(RunnerBackend, RunOptionsBackendIsAppliedBeforeRoundOne) {
  BackendGuard restore(tensor::active_backend());
  tensor::set_active_backend(BackendKind::kScalar);

  data::SyntheticConfig scfg;
  scfg.num_samples = 60;
  scfg.image_size = 8;
  scfg.num_classes = 10;
  scfg.seed = 11;
  const auto source = data::make_synth_cifar(scfg);
  common::Rng rng(13);
  fl::FlEnvironment env(source, /*clients=*/2, /*beta=*/0.5,
                        /*val_fraction=*/0.25, rng);
  fl::FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 32;
  cfg.local.lr = 0.05;
  cfg.seed = 21;
  fl::FedAvg algo(env, cfg);
  fl::RunOptions opts;
  opts.rounds = 1;
  opts.eval_every = 10;
  opts.backend = "auto";
  fl::run_federated(algo, opts);
  EXPECT_EQ(tensor::active_backend(), tensor::parse_backend("auto"));

  // An unknown name surfaces as the usual invalid_argument, before any
  // round runs.
  opts.backend = "warp-drive";
  EXPECT_THROW(fl::run_federated(algo, opts), std::invalid_argument);

  // Empty leaves the ambient backend untouched.
  tensor::set_active_backend(BackendKind::kScalar);
  opts.backend.clear();
  fl::run_federated(algo, opts);
  EXPECT_EQ(tensor::active_backend(), BackendKind::kScalar);
}

}  // namespace
}  // namespace spatl
