#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "core/spatl.hpp"
#include "data/synthetic.hpp"
#include "fl/algorithm.hpp"
#include "fl/checkpoint.hpp"
#include "fl/fault.hpp"
#include "fl/flat_utils.hpp"
#include "fl/runner.hpp"

namespace spatl::fl {
namespace {

data::Dataset small_source(std::uint64_t seed = 11) {
  data::SyntheticConfig cfg;
  cfg.num_samples = 400;
  cfg.image_size = 8;
  cfg.num_classes = 10;
  cfg.noise_stddev = 0.2f;
  cfg.seed = seed;
  return data::make_synth_cifar(cfg);
}

FlConfig small_config() {
  FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 32;
  cfg.local.lr = 0.05;
  cfg.seed = 21;
  return cfg;
}

std::vector<float> global_weights(FederatedAlgorithm& algo) {
  return nn::flatten_values(algo.global_model().all_params());
}

std::unique_ptr<FederatedAlgorithm> make_algorithm(const std::string& name,
                                                   FlEnvironment& env) {
  if (name == "spatl") {
    core::SpatlOptions sopts;
    // One fine-tune round with one episode exercises the PPO agent state
    // (policy net, Adam moments, RNG cursor) without dominating runtime.
    sopts.agent_finetune_rounds = 1;
    sopts.agent_finetune_episodes = 1;
    return std::make_unique<core::SpatlAlgorithm>(env, small_config(), sopts);
  }
  return make_baseline(name, env, small_config());
}

// -------------------------------------------------- lossless pack helpers --

TEST(CheckpointPack, FloatsRoundTripBitExactly) {
  const std::vector<float> values = {0.0f, -0.0f, 1.5f,
                                     std::numeric_limits<float>::max(),
                                     std::numeric_limits<float>::denorm_min(),
                                     -3.1415927f};
  const auto t = pack_floats("x", values);
  EXPECT_EQ(t.name, "x");
  const auto back = unpack_floats(t.value);
  ASSERT_EQ(back.size(), values.size());
  EXPECT_EQ(
      std::memcmp(back.data(), values.data(), values.size() * sizeof(float)),
      0);
}

TEST(CheckpointPack, U64sSurviveTheFloat32Container) {
  // 64-bit words do not fit a float; the packing splits them into 16-bit
  // chunks, each exactly representable. Extremes must survive.
  const std::vector<std::uint64_t> values = {
      0ULL, 1ULL, 0xFFFFFFFFFFFFFFFFULL, 0x123456789ABCDEF0ULL,
      0x8000000000000001ULL};
  const auto back = unpack_u64s(pack_u64s("n", values).value);
  EXPECT_EQ(back, values);
}

TEST(CheckpointPack, DoublesRoundTripByBitPattern) {
  const std::vector<double> values = {
      0.0, -0.0, 1.5, -2.718281828459045, 1e300,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN()};
  const auto back = unpack_doubles(pack_doubles("d", values).value);
  ASSERT_EQ(back.size(), values.size());
  EXPECT_EQ(
      std::memcmp(back.data(), values.data(), values.size() * sizeof(double)),
      0);
}

TEST(CheckpointPack, RngCursorResumesTheExactStream) {
  common::Rng rng(123);
  // Advance past a Box-Muller draw so the cached second deviate is live —
  // the cursor must carry it, or the next normal() diverges.
  for (int i = 0; i < 7; ++i) rng.uniform();
  (void)rng.normal();
  const auto t = pack_rng("r", rng);

  common::Rng restored(999);
  unpack_rng(t.value, restored);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(rng.uniform(), restored.uniform());
    EXPECT_EQ(rng.normal(), restored.normal());
  }
}

TEST(CheckpointPack, RunCheckpointSaveLoadRoundTrips) {
  RunCheckpoint ckpt;
  ckpt.entries.push_back(pack_floats("a/w", {1.0f, 2.0f, 3.0f}));
  ckpt.entries.push_back(pack_u64s("a/round", {42}));
  const std::string path = "ckpt_roundtrip_test.bin";
  ckpt.save(path);
  const RunCheckpoint loaded = RunCheckpoint::load(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.entries.size(), 2u);
  EXPECT_EQ(unpack_floats(loaded.at("a/w")),
            (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(unpack_u64s(loaded.at("a/round")), (std::vector<std::uint64_t>{42}));
  EXPECT_EQ(loaded.find("missing"), nullptr);
  EXPECT_THROW(loaded.at("missing"), std::runtime_error);
  EXPECT_FALSE(loaded.empty());
  EXPECT_TRUE(RunCheckpoint{}.empty());
}

// ----------------------------------------------------- resume bit-identity --

RunOptions resume_options() {
  RunOptions opts;
  opts.rounds = 4;
  opts.sample_ratio = 0.75;
  opts.eval_every = 2;
  opts.sampling_seed = 9;
  opts.fault_aware_sampling = true;  // the EMA must survive the checkpoint
  FaultConfig fc;
  fc.dropout_rate = 0.2;
  fc.loss_rate = 0.2;
  fc.byzantine_clients = {1, 0, 0, 0};  // client 0 attacks every round
  fc.attack_kind = AttackKind::kScale;
  fc.attack_scale = 2.0;
  fc.seed = 400;
  opts.faults = fc;
  ResilienceConfig rc;
  rc.aggregator = AggregatorKind::kCoordinateMedian;
  opts.resilience = rc;
  return opts;
}

// A run checkpointed at round 2 and resumed into a freshly-constructed
// algorithm must finish bit-identical to the uninterrupted twin: same
// global weights, same metrics, same byte and failure accounting.
class ResumeBitIdentity : public ::testing::TestWithParam<const char*> {};

TEST_P(ResumeBitIdentity, ResumedRunMatchesStraightThrough) {
  const auto source = small_source();

  // Uninterrupted twin.
  common::Rng rng1(37);
  FlEnvironment env1(source, 4, 0.5, 0.25, rng1);
  auto straight = make_algorithm(GetParam(), env1);
  const auto full = run_federated(*straight, resume_options());

  // Leg 1: stop after round 2, capturing the snapshot.
  common::Rng rng2(37);
  FlEnvironment env2(source, 4, 0.5, 0.25, rng2);
  auto first = make_algorithm(GetParam(), env2);
  RunOptions leg1 = resume_options();
  leg1.rounds = 2;
  leg1.checkpoint_every = 2;
  const auto half = run_federated(*first, leg1);
  ASSERT_EQ(half.checkpoints_written, 1u);
  ASSERT_FALSE(half.last_checkpoint.empty());

  // Leg 2: fresh algorithm ("process restart"), restore, run rounds 3-4.
  common::Rng rng3(37);
  FlEnvironment env3(source, 4, 0.5, 0.25, rng3);
  auto second = make_algorithm(GetParam(), env3);
  RunOptions leg2 = resume_options();
  leg2.resume = &half.last_checkpoint;
  const auto resumed = run_federated(*second, leg2);

  const auto wa = global_weights(*straight);
  const auto wb = global_weights(*second);
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)), 0);

  EXPECT_EQ(full.final_accuracy, resumed.final_accuracy);
  EXPECT_EQ(full.best_accuracy, resumed.best_accuracy);
  EXPECT_EQ(full.total_bytes, resumed.total_bytes);
  EXPECT_EQ(full.retransmitted_bytes, resumed.retransmitted_bytes);
  EXPECT_EQ(full.total_selected, resumed.total_selected);
  EXPECT_EQ(full.total_dropped, resumed.total_dropped);
  EXPECT_EQ(full.total_accepted, resumed.total_accepted);
  EXPECT_EQ(full.total_rejected, resumed.total_rejected);
  EXPECT_EQ(full.total_attacked, resumed.total_attacked);
  EXPECT_EQ(full.total_suspected, resumed.total_suspected);
  EXPECT_EQ(full.rounds_skipped, resumed.rounds_skipped);

  // The resumed history covers rounds 3-4 and must equal the straight
  // run's tail record for record.
  ASSERT_LE(resumed.history.size(), full.history.size());
  const std::size_t offset = full.history.size() - resumed.history.size();
  for (std::size_t i = 0; i < resumed.history.size(); ++i) {
    const auto& x = full.history[offset + i];
    const auto& y = resumed.history[i];
    EXPECT_EQ(x.round, y.round);
    EXPECT_EQ(x.avg_accuracy, y.avg_accuracy);
    EXPECT_EQ(x.avg_loss, y.avg_loss);
    EXPECT_EQ(x.cumulative_bytes, y.cumulative_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ResumeBitIdentity,
                         ::testing::Values("fedavg", "fedprox", "fednova",
                                           "scaffold", "spatl"));

TEST(CheckpointResume, FileBackedCheckpointResumesIdentically) {
  const auto source = small_source();
  const std::string path = "ckpt_resume_test.bin";

  common::Rng rng1(37);
  FlEnvironment env1(source, 4, 0.5, 0.25, rng1);
  auto straight = make_algorithm("fedavg", env1);
  const auto full = run_federated(*straight, resume_options());

  common::Rng rng2(37);
  FlEnvironment env2(source, 4, 0.5, 0.25, rng2);
  auto first = make_algorithm("fedavg", env2);
  RunOptions leg1 = resume_options();
  leg1.rounds = 2;
  leg1.checkpoint_every = 2;
  leg1.checkpoint_path = path;
  run_federated(*first, leg1);

  // The on-disk snapshot — not the in-memory one — feeds the resume.
  const RunCheckpoint loaded = RunCheckpoint::load(path);
  std::remove(path.c_str());
  common::Rng rng3(37);
  FlEnvironment env3(source, 4, 0.5, 0.25, rng3);
  auto second = make_algorithm("fedavg", env3);
  RunOptions leg2 = resume_options();
  leg2.resume = &loaded;
  const auto resumed = run_federated(*second, leg2);

  const auto wa = global_weights(*straight);
  const auto wb = global_weights(*second);
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)), 0);
  EXPECT_EQ(full.final_accuracy, resumed.final_accuracy);
  EXPECT_EQ(full.total_bytes, resumed.total_bytes);
}

TEST(CheckpointResume, ChurnTraceAndParkedCohortSurviveResume) {
  // The hard case: the snapshot is taken with a NON-EMPTY churn trace (the
  // membership machine is mid-replay, clients departed and pending return
  // discounts outstanding) AND a mid-flight parked straggler cohort in the
  // async buffer. Resume must replay both bit-identically.
  const auto source = small_source();

  const auto make_options = [] {
    RunOptions opts;
    opts.rounds = 6;
    opts.eval_every = 2;
    opts.sampling_seed = 9;
    FaultConfig fc;
    fc.straggler_rate = 0.6;
    fc.slowdown_factor = 3.0;
    fc.round_deadline = 2.0;
    fc.seed = 515;
    opts.faults = fc;
    AsyncConfig ac;
    ac.enabled = true;
    ac.max_lag = 4;
    opts.async = ac;
    ChurnConfig cc;
    cc.initial_fraction = 0.75;
    cc.join_rate = 0.4;
    cc.leave_rate = 0.3;
    cc.return_rate = 0.5;
    cc.seed = 99;
    opts.churn = cc;
    return opts;
  };

  common::Rng rng1(37);
  FlEnvironment env1(source, 6, 0.5, 0.25, rng1);
  auto straight = make_algorithm("fedavg", env1);
  const auto full = run_federated(*straight, make_options());
  // The scenario must actually exercise both subsystems.
  ASSERT_GT(full.total_parked, 0u);
  ASSERT_GT(full.total_joined + full.total_left + full.total_returned, 0u);

  common::Rng rng2(37);
  FlEnvironment env2(source, 6, 0.5, 0.25, rng2);
  auto first = make_algorithm("fedavg", env2);
  RunOptions leg1 = make_options();
  leg1.rounds = 3;
  leg1.checkpoint_every = 3;
  const auto half = run_federated(*first, leg1);
  ASSERT_FALSE(half.last_checkpoint.empty());
  // The snapshot carries churn state and (when stragglers were in flight)
  // the parked cohort.
  EXPECT_NE(half.last_checkpoint.find("run/churn/cursor"), nullptr);
  if (half.buffered_remaining > 0) {
    EXPECT_NE(half.last_checkpoint.find("algo/async/n"), nullptr);
  }

  common::Rng rng3(37);
  FlEnvironment env3(source, 6, 0.5, 0.25, rng3);
  auto second = make_algorithm("fedavg", env3);
  RunOptions leg2 = make_options();
  leg2.resume = &half.last_checkpoint;
  const auto resumed = run_federated(*second, leg2);

  const auto wa = global_weights(*straight);
  const auto wb = global_weights(*second);
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)), 0);
  EXPECT_EQ(full.final_accuracy, resumed.final_accuracy);
  EXPECT_EQ(full.total_bytes, resumed.total_bytes);
  EXPECT_EQ(full.total_parked, resumed.total_parked);
  EXPECT_EQ(full.total_late_commits, resumed.total_late_commits);
  EXPECT_EQ(full.buffered_remaining, resumed.buffered_remaining);
  EXPECT_EQ(full.total_joined, resumed.total_joined);
  EXPECT_EQ(full.total_left, resumed.total_left);
  EXPECT_EQ(full.total_returned, resumed.total_returned);
  EXPECT_EQ(full.total_returning_discounted,
            resumed.total_returning_discounted);
}

// --------------------------------------------------------- divergence guard --

TEST(DivergenceGuard, RollsBackExplodedRoundsAndReaggregatesRobustly) {
  const auto source = small_source();
  common::Rng rng(109);
  FlEnvironment env(source, 4, 5.0, 0.25, rng);
  FedAvg algo(env, small_config());

  RunOptions opts;
  opts.rounds = 3;
  FaultConfig fc;
  // One colluder pushing an enormous fixed direction: the payload stays
  // finite (so validation admits it) but the mean-aggregated model
  // overflows activations and the evaluation loss goes non-finite.
  fc.byzantine_clients = {1, 0, 0, 0};
  fc.attack_kind = AttackKind::kFixedDirection;
  fc.attack_scale = 1.0e30;
  opts.faults = fc;
  ResilienceConfig rc;
  rc.aggregator = AggregatorKind::kWeightedMean;
  opts.resilience = rc;
  opts.divergence_factor = 2.0;
  opts.divergence_fallback = AggregatorKind::kCoordinateMedian;

  const auto result = run_federated(algo, opts);
  EXPECT_GT(result.rounds_rolled_back, 0u);
  bool flagged = false;
  for (const auto& rec : result.history) flagged |= rec.stats.rolled_back;
  EXPECT_TRUE(flagged);
  // The fallback median kept the model sane despite the guaranteed-hostile
  // mean path.
  EXPECT_TRUE(is_finite(global_weights(algo)));
  EXPECT_TRUE(std::isfinite(result.history.back().avg_loss));
}

TEST(DivergenceGuard, QuietRunsAreNeverRolledBack) {
  const auto source = small_source();
  common::Rng rng(113);
  FlEnvironment env(source, 4, 5.0, 0.25, rng);
  FedAvg algo(env, small_config());

  RunOptions opts;
  opts.rounds = 3;
  opts.divergence_factor = 10.0;  // generous: normal training never trips it
  const auto result = run_federated(algo, opts);
  EXPECT_EQ(result.rounds_rolled_back, 0u);
  for (const auto& rec : result.history) EXPECT_FALSE(rec.stats.rolled_back);
}

}  // namespace
}  // namespace spatl::fl
