// Elastic membership under churn (DESIGN.md §12): deterministic trace
// materialization, the join/leave/return status machine, checkpoint
// round-trips of churn state, the churn off-switch bit-identity guarantee
// (floats AND telemetry bytes) across all five algorithms, admission
// control (shed/defer/budget-skip), the backoff-disciplined RetryPolicy,
// server-failover drills, and the threshold->alert hook.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/spatl.hpp"
#include "data/synthetic.hpp"
#include "fl/algorithm.hpp"
#include "fl/checkpoint.hpp"
#include "fl/churn.hpp"
#include "fl/fault.hpp"
#include "fl/flat_utils.hpp"
#include "fl/runner.hpp"
#include "obs/alert.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace spatl::fl {
namespace {

data::Dataset small_source(std::uint64_t seed = 11) {
  data::SyntheticConfig cfg;
  cfg.num_samples = 400;
  cfg.image_size = 8;
  cfg.num_classes = 10;
  cfg.noise_stddev = 0.2f;
  cfg.seed = seed;
  return data::make_synth_cifar(cfg);
}

FlConfig small_config() {
  FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 32;
  cfg.local.lr = 0.05;
  cfg.seed = 21;
  return cfg;
}

std::vector<float> global_weights(FederatedAlgorithm& algo) {
  return nn::flatten_values(algo.global_model().all_params());
}

std::unique_ptr<FederatedAlgorithm> make_algorithm(const std::string& name,
                                                   FlEnvironment& env) {
  if (name == "spatl") {
    core::SpatlOptions sopts;
    sopts.agent_finetune_rounds = 1;
    sopts.agent_finetune_episodes = 1;
    return std::make_unique<core::SpatlAlgorithm>(env, small_config(), sopts);
  }
  return make_baseline(name, env, small_config());
}

bool is_finite(const std::vector<float>& v) {
  for (const float x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Busy membership schedule: partial initial enrollment plus all three
/// event kinds firing at plausible rates.
ChurnConfig busy_churn() {
  ChurnConfig cc;
  cc.initial_fraction = 0.75;
  cc.join_rate = 0.3;
  cc.leave_rate = 0.25;
  cc.return_rate = 0.5;
  cc.seed = 99;
  return cc;
}

// ------------------------------------------------------ trace determinism --

TEST(ChurnTrace, MaterializationIsDeterministicAndSeedKeyed) {
  const ChurnConfig cc = busy_churn();
  const ChurnTrace a = make_churn_trace(cc, 12, 16);
  const ChurnTrace b = make_churn_trace(cc, 12, 16);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  ASSERT_EQ(a.initial_enrolled, b.initial_enrolled);
  bool any_event = false;
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].joins, b.rounds[r].joins);
    EXPECT_EQ(a.rounds[r].leaves, b.rounds[r].leaves);
    EXPECT_EQ(a.rounds[r].returns, b.rounds[r].returns);
    any_event = any_event || !a.rounds[r].empty();
  }
  EXPECT_TRUE(any_event);

  ChurnConfig other = cc;
  other.seed = 100;
  const ChurnTrace c = make_churn_trace(other, 12, 16);
  bool differs = c.initial_enrolled != a.initial_enrolled;
  for (std::size_t r = 0; r < a.rounds.size() && !differs; ++r) {
    differs = a.rounds[r].joins != c.rounds[r].joins ||
              a.rounds[r].leaves != c.rounds[r].leaves ||
              a.rounds[r].returns != c.rounds[r].returns;
  }
  EXPECT_TRUE(differs);
}

TEST(ChurnTrace, EventSetsAreDisjointPerRound) {
  // A client's status is read once per round, so it can appear in at most
  // one of the three event sets.
  const ChurnTrace t = make_churn_trace(busy_churn(), 20, 12);
  for (const ChurnRound& r : t.rounds) {
    std::vector<std::size_t> all;
    all.insert(all.end(), r.joins.begin(), r.joins.end());
    all.insert(all.end(), r.leaves.begin(), r.leaves.end());
    all.insert(all.end(), r.returns.begin(), r.returns.end());
    std::sort(all.begin(), all.end());
    EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  }
}

TEST(ChurnTrace, ZeroRatesAndFullEnrollmentYieldEmptyTrace) {
  ChurnConfig cc;  // defaults: rates 0, initial_fraction 1
  EXPECT_FALSE(cc.any_churn());
  const ChurnTrace t = make_churn_trace(cc, 10, 8);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.initial_enrolled, 8u);

  EXPECT_FALSE(make_churn_trace(busy_churn(), 10, 8).empty());
}

TEST(ChurnTrace, InitialEnrollmentIsAtLeastOneClient) {
  ChurnConfig cc;
  cc.initial_fraction = 0.0;
  cc.join_rate = 0.5;
  const ChurnTrace t = make_churn_trace(cc, 4, 6);
  EXPECT_EQ(t.initial_enrolled, 1u);  // floored at one, never an empty run
}

// ------------------------------------------------------- engine behaviour --

TEST(ChurnEngine, ReplaysTraceAndTracksEnrollment) {
  const ChurnConfig cc = busy_churn();
  const std::size_t n = 12, rounds = 15;
  ChurnEngine engine(cc, rounds, n);
  const ChurnTrace& trace = engine.trace();
  EXPECT_EQ(engine.enrolled().size(), trace.initial_enrolled);

  for (std::size_t r = 1; r <= rounds; ++r) {
    const ChurnDelta d = engine.advance(r);
    EXPECT_EQ(d.joined, trace.rounds[r].joins.size());
    EXPECT_EQ(d.left, trace.rounds[r].leaves.size());
    EXPECT_EQ(d.returned, trace.rounds[r].returns.size());
    // enrolled() is ascending, duplicate-free, and agrees with is_enrolled.
    const auto& pool = engine.enrolled();
    EXPECT_TRUE(std::is_sorted(pool.begin(), pool.end()));
    EXPECT_EQ(std::adjacent_find(pool.begin(), pool.end()), pool.end());
    std::size_t enrolled_count = 0;
    for (std::size_t c = 0; c < n; ++c) {
      if (engine.is_enrolled(c)) ++enrolled_count;
    }
    EXPECT_EQ(pool.size(), enrolled_count);
  }
}

TEST(ChurnEngine, ReturningClientsCarryCappedStalenessDebt) {
  // With leave_rate 1 every enrolled client departs each round, so clients
  // cycle departed -> returned -> departed; the pending discount must count
  // the absence since the MOST RECENT departure, capped at staleness_cap.
  ChurnConfig cc;
  cc.leave_rate = 1.0;
  cc.return_rate = 0.4;
  cc.staleness_cap = 3;
  cc.seed = 7;
  const std::size_t n = 8, rounds = 12;
  ChurnEngine engine(cc, rounds, n);
  const ChurnTrace& trace = engine.trace();
  ASSERT_EQ(engine.advance(1).left, n);  // everyone departs at round 1
  EXPECT_TRUE(engine.enrolled().empty());

  std::vector<std::size_t> last_left(n, 1);
  std::size_t returned_checked = 0;
  bool cap_hit = false;
  for (std::size_t r = 2; r <= rounds; ++r) {
    engine.advance(r);
    for (const std::size_t c : trace.rounds[r].returns) {
      ++returned_checked;
      EXPECT_TRUE(engine.is_enrolled(c));
      const std::size_t expected =
          std::min(r - last_left[c], cc.staleness_cap);
      EXPECT_EQ(engine.pending_staleness(c), expected);
      cap_hit = cap_hit || expected == cc.staleness_cap;
      engine.clear_pending(c);
      EXPECT_EQ(engine.pending_staleness(c), 0u);
    }
    for (const std::size_t c : trace.rounds[r].leaves) last_left[c] = r;
  }
  EXPECT_GT(returned_checked, 0u);
  EXPECT_TRUE(cap_hit);  // at least one absence long enough to hit the cap
}

TEST(ChurnEngine, StateRoundTripsThroughCheckpointBitIdentically) {
  const ChurnConfig cc = busy_churn();
  const std::size_t n = 10, rounds = 14;

  ChurnEngine full(cc, rounds, n);
  ChurnEngine resumed(cc, rounds, n);
  for (std::size_t r = 1; r <= 6; ++r) {
    full.advance(r);
    resumed.advance(r);
  }
  RunCheckpoint ckpt;
  resumed.save(ckpt, "run/churn/");
  // Wreck the copy, then restore: state must come back exactly.
  resumed.advance(rounds);
  resumed.load(ckpt, "run/churn/");
  EXPECT_EQ(resumed.cursor(), full.cursor());
  EXPECT_EQ(resumed.enrolled(), full.enrolled());
  for (std::size_t c = 0; c < n; ++c) {
    EXPECT_EQ(resumed.status(c), full.status(c));
    EXPECT_EQ(resumed.pending_staleness(c), full.pending_staleness(c));
  }
  // And replay continues identically from the restored cursor.
  for (std::size_t r = 7; r <= rounds; ++r) {
    full.advance(r);
    resumed.advance(r);
    EXPECT_EQ(resumed.enrolled(), full.enrolled());
  }
}

TEST(ChurnEngine, LoadWithoutEntriesResetsToInitialState) {
  ChurnEngine engine(busy_churn(), 10, 8);
  engine.advance(5);
  const RunCheckpoint empty_ckpt;  // pre-churn checkpoint
  engine.load(empty_ckpt, "run/churn/");
  EXPECT_EQ(engine.cursor(), 0u);
  EXPECT_EQ(engine.enrolled().size(), engine.trace().initial_enrolled);
}

// ------------------------------------------------- off-switch bit-identity --

// A run with an inert ChurnConfig (zero rates, full enrollment), no
// admission budget, and the default RetryPolicy must be byte-identical to
// the plain run — floats AND telemetry.
class ChurnOffBitIdentity : public ::testing::TestWithParam<const char*> {};

TEST_P(ChurnOffBitIdentity, InertChurnMatchesAbsentChurn) {
  const auto source = small_source();
  const std::string path_a =
      std::string("churn_off_a_") + GetParam() + ".jsonl";
  const std::string path_b =
      std::string("churn_off_b_") + GetParam() + ".jsonl";

  RunOptions opts;
  opts.rounds = 3;
  opts.sample_ratio = 0.75;
  opts.eval_every = 1;
  opts.sampling_seed = 9;
  FaultConfig fc;
  fc.dropout_rate = 0.2;
  fc.loss_rate = 0.2;
  fc.seed = 515;
  opts.faults = fc;

  common::Rng rng1(37);
  FlEnvironment env1(source, 4, 0.5, 0.25, rng1);
  auto plain = make_algorithm(GetParam(), env1);
  RunResult a;
  {
    obs::JsonlWriter sink(path_a);
    RunOptions o = opts;
    o.telemetry = &sink;
    a = run_federated(*plain, o);
  }

  common::Rng rng2(37);
  FlEnvironment env2(source, 4, 0.5, 0.25, rng2);
  auto inert = make_algorithm(GetParam(), env2);
  RunResult b;
  {
    obs::JsonlWriter sink(path_b);
    RunOptions o = opts;
    o.telemetry = &sink;
    o.churn = ChurnConfig{};       // inert: empty trace
    o.admission = AdmissionConfig{};  // unlimited
    b = run_federated(*inert, o);
  }

  const auto wa = global_weights(*plain);
  const auto wb = global_weights(*inert);
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)), 0);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(b.total_joined, 0u);
  EXPECT_EQ(b.total_left, 0u);
  EXPECT_EQ(b.total_shed, 0u);
  // Telemetry bytes, not just floats.
  EXPECT_EQ(slurp(path_a), slurp(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ChurnOffBitIdentity,
                         ::testing::Values("fedavg", "fedprox", "fednova",
                                           "scaffold", "spatl"));

// --------------------------------------------------- churn-active behaviour --

class ChurnActive : public ::testing::TestWithParam<const char*> {};

TEST_P(ChurnActive, AllAlgorithmsSurviveEnrollmentChanges) {
  const auto source = small_source();
  common::Rng rng(41);
  FlEnvironment env(source, 6, 0.5, 0.25, rng);
  auto algo = make_algorithm(GetParam(), env);

  RunOptions opts;
  opts.rounds = 6;
  opts.eval_every = 2;
  opts.churn = busy_churn();
  const auto result = run_federated(*algo, opts);

  EXPECT_GT(result.total_left + result.total_joined + result.total_returned,
            0u);
  EXPECT_TRUE(is_finite(global_weights(*algo)));
  EXPECT_GT(result.final_accuracy, 0.0);
  // Selected never exceeds the enrolled population.
  for (const auto& rec : result.history) {
    EXPECT_LE(rec.stats.selected, rec.stats.enrolled);
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ChurnActive,
                         ::testing::Values("fedavg", "fedprox", "fednova",
                                           "scaffold", "spatl"));

TEST(ChurnRun, ReturningClientsAreDiscountedOnce) {
  const auto source = small_source();
  common::Rng rng(43);
  FlEnvironment env(source, 6, 0.5, 0.25, rng);
  FedAvg algo(env, small_config());

  RunOptions opts;
  opts.rounds = 10;
  opts.eval_every = 5;
  ChurnConfig cc;
  cc.leave_rate = 0.4;
  cc.return_rate = 0.7;
  cc.seed = 17;
  opts.churn = cc;
  const auto result = run_federated(algo, opts);
  EXPECT_GT(result.total_returned, 0u);
  EXPECT_GT(result.total_returning_discounted, 0u);
  // At most one discount per return event.
  EXPECT_LE(result.total_returning_discounted, result.total_returned);
  EXPECT_TRUE(is_finite(global_weights(algo)));
}

TEST(ChurnRun, ResumeWithActiveChurnIsBitIdentical) {
  const auto source = small_source();
  RunOptions opts;
  opts.rounds = 6;
  opts.eval_every = 2;
  opts.churn = busy_churn();
  opts.checkpoint_every = 3;

  common::Rng rng1(47);
  FlEnvironment env1(source, 6, 0.5, 0.25, rng1);
  FedAvg full(env1, small_config());
  const auto full_result = run_federated(full, opts);

  // Run only to the checkpoint, then resume a fresh algorithm from it.
  common::Rng rng2(47);
  FlEnvironment env2(source, 6, 0.5, 0.25, rng2);
  FedAvg head(env2, small_config());
  RunOptions head_opts = opts;
  head_opts.rounds = 3;
  const auto head_result = run_federated(head, head_opts);
  ASSERT_FALSE(head_result.last_checkpoint.empty());

  common::Rng rng3(47);
  FlEnvironment env3(source, 6, 0.5, 0.25, rng3);
  FedAvg tail(env3, small_config());
  RunOptions tail_opts = opts;
  tail_opts.resume = &head_result.last_checkpoint;
  const auto tail_result = run_federated(tail, tail_opts);

  const auto wa = global_weights(full);
  const auto wb = global_weights(tail);
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)), 0);
  EXPECT_EQ(full_result.final_accuracy, tail_result.final_accuracy);
  EXPECT_EQ(full_result.total_joined, tail_result.total_joined);
  EXPECT_EQ(full_result.total_left, tail_result.total_left);
  EXPECT_EQ(full_result.total_returned, tail_result.total_returned);
}

// ---------------------------------------------------------- admission control --

TEST(Admission, ParticipantCapShedsDeterministically) {
  const auto source = small_source();

  const auto run_once = [&] {
    common::Rng rng(53);
    FlEnvironment env(source, 6, 0.5, 0.25, rng);
    FedAvg algo(env, small_config());
    RunOptions opts;
    opts.rounds = 4;
    opts.eval_every = 1;
    opts.admission.max_participants = 2;
    opts.admission.policy = AdmissionPolicy::kShed;
    return run_federated(algo, opts);
  };

  const auto a = run_once();
  EXPECT_GT(a.total_shed, 0u);
  EXPECT_EQ(a.total_deferred, 0u);
  for (const auto& rec : a.history) {
    EXPECT_LE(rec.stats.accepted, 2u);
  }
  // Deterministic: an identical run sheds identically.
  const auto b = run_once();
  EXPECT_EQ(a.total_shed, b.total_shed);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
}

TEST(Admission, DeferQueuesExcessIntoNextRound) {
  const auto source = small_source();
  common::Rng rng(53);
  FlEnvironment env(source, 6, 0.5, 0.25, rng);
  FedAvg algo(env, small_config());
  RunOptions opts;
  opts.rounds = 4;
  opts.eval_every = 1;
  opts.admission.max_participants = 3;
  opts.admission.policy = AdmissionPolicy::kDefer;
  const auto result = run_federated(algo, opts);
  EXPECT_GT(result.total_deferred, 0u);
  EXPECT_EQ(result.total_shed, 0u);
}

TEST(Admission, ByteBudgetBelowOneUplinkSkipsWithBudgetReason) {
  const auto source = small_source();
  common::Rng rng(53);
  FlEnvironment env(source, 4, 0.5, 0.25, rng);
  FedAvg algo(env, small_config());
  RunOptions opts;
  opts.rounds = 2;
  opts.eval_every = 1;
  // Below the cost of a single uplink: every round is shed empty.
  opts.admission.max_uplink_bytes = 1.0;
  const auto result = run_federated(algo, opts);
  EXPECT_EQ(result.rounds_skipped, 2u);
  for (const auto& rec : result.history) {
    EXPECT_TRUE(rec.stats.skipped);
    EXPECT_EQ(rec.stats.skip_reason, SkipReason::kAdmissionBudget);
  }
  EXPECT_EQ(std::string(skip_reason_name(SkipReason::kAdmissionBudget)),
            "admission_budget");
}

TEST(Admission, UplinkCostScalesWithAlgorithmProtocol) {
  const auto source = small_source();
  common::Rng rng(59);
  FlEnvironment env(source, 4, 0.5, 0.25, rng);
  FedAvg fedavg(env, small_config());
  common::Rng rng2(59);
  FlEnvironment env2(source, 4, 0.5, 0.25, rng2);
  Scaffold scaffold(env2, small_config());

  // SCAFFOLD ships update + control delta: twice FedAvg's uplink.
  EXPECT_EQ(scaffold.uplink_cost_floats(), 2 * fedavg.uplink_cost_floats());
  EXPECT_GT(fedavg.uplink_cost_floats(), 0u);
}

// ----------------------------------------------------------- retry policy --

TEST(RetryPolicy, BackoffAccumulatesCappedExponentialWaits) {
  FaultConfig cfg;
  cfg.loss_rate = 1.0;  // every attempt lost: exercises the full ladder
  cfg.seed = 77;
  RetryPolicy retry;
  retry.max_retries = 3;
  retry.backoff_base = 1.0;
  retry.backoff_factor = 2.0;
  retry.backoff_max = 2.5;
  const Transmission t = FaultModel(cfg).transmit(1, 0, retry);
  EXPECT_FALSE(t.delivered);
  EXPECT_EQ(t.attempts, 4u);
  // Waits 1, 2, min(4, 2.5): no wait after the final (given-up) attempt.
  EXPECT_DOUBLE_EQ(t.backoff_wait, 1.0 + 2.0 + 2.5);
}

TEST(RetryPolicy, JitterStaysWithinFractionAndIsDeterministic) {
  FaultConfig cfg;
  cfg.loss_rate = 1.0;
  cfg.seed = 77;
  RetryPolicy retry;
  retry.max_retries = 2;
  retry.backoff_base = 1.0;
  retry.backoff_factor = 1.0;
  retry.backoff_max = 10.0;
  retry.jitter = 0.25;
  const Transmission a = FaultModel(cfg).transmit(3, 1, retry);
  const Transmission b = FaultModel(cfg).transmit(3, 1, retry);
  EXPECT_DOUBLE_EQ(a.backoff_wait, b.backoff_wait);  // keyed, not stateful
  // Two unit waits, each jittered within [0.75, 1.25].
  EXPECT_GE(a.backoff_wait, 2.0 * 0.75);
  EXPECT_LE(a.backoff_wait, 2.0 * 1.25);
  // A different client draws different jitter.
  const Transmission c = FaultModel(cfg).transmit(3, 2, retry);
  EXPECT_NE(a.backoff_wait, c.backoff_wait);
}

TEST(RetryPolicy, BackoffNeverChangesDeliveryOutcomes) {
  // The loss Bernoullis live on their own stream: turning backoff (and
  // jitter) on cannot flip which attempts are lost.
  FaultConfig cfg;
  cfg.loss_rate = 0.5;
  cfg.seed = 31;
  RetryPolicy plain;
  plain.max_retries = 2;
  RetryPolicy waits = plain;
  waits.backoff_base = 0.5;
  waits.jitter = 0.5;
  for (std::size_t round = 1; round <= 6; ++round) {
    for (std::size_t client = 0; client < 8; ++client) {
      const Transmission a = FaultModel(cfg).transmit(round, client, plain);
      const Transmission b = FaultModel(cfg).transmit(round, client, waits);
      EXPECT_EQ(a.delivered, b.delivered);
      EXPECT_EQ(a.attempts, b.attempts);
      EXPECT_EQ(a.backoff_wait, 0.0);
    }
  }
}

TEST(RetryPolicy, GiveUpsAreAccountedPerClient) {
  const auto source = small_source();
  common::Rng rng(61);
  FlEnvironment env(source, 4, 0.5, 0.25, rng);
  FedAvg algo(env, small_config());
  RunOptions opts;
  opts.rounds = 3;
  opts.eval_every = 1;
  FaultConfig fc;
  fc.loss_rate = 0.95;
  fc.seed = 13;
  opts.faults = fc;
  ResilienceConfig rc;
  rc.retry.max_retries = 1;
  rc.retry.backoff_base = 0.5;
  opts.resilience = rc;
  const auto result = run_federated(algo, opts);
  EXPECT_GT(result.total_giveups, 0u);
  std::size_t per_client = 0;
  for (const std::size_t g : result.client_giveups) per_client += g;
  EXPECT_EQ(per_client, result.total_giveups);
  EXPECT_GT(result.total_backoff_wait, 0.0);
}

// --------------------------------------------------------- failover drills --

class FailoverDrill : public ::testing::TestWithParam<const char*> {};

TEST_P(FailoverDrill, CrashRecoveryIsBitIdenticalToUncrashedRun) {
  const auto source = small_source();
  RunOptions opts;
  opts.rounds = 5;
  opts.eval_every = 1;
  opts.checkpoint_every = 2;
  opts.churn = busy_churn();

  common::Rng rng1(67);
  FlEnvironment env1(source, 5, 0.5, 0.25, rng1);
  auto smooth = make_algorithm(GetParam(), env1);
  const auto smooth_result = run_federated(*smooth, opts);

  common::Rng rng2(67);
  FlEnvironment env2(source, 5, 0.5, 0.25, rng2);
  auto crashed = make_algorithm(GetParam(), env2);
  RunOptions crash_opts = opts;
  crash_opts.crash_at_rounds = {3};
  const auto crash_result = run_federated(*crashed, crash_opts);

  EXPECT_EQ(crash_result.crashes_injected, 1u);
  const auto wa = global_weights(*smooth);
  const auto wb = global_weights(*crashed);
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)), 0);
  EXPECT_EQ(smooth_result.final_accuracy, crash_result.final_accuracy);
  EXPECT_EQ(smooth_result.best_accuracy, crash_result.best_accuracy);
  // The recovery replays rounds 3..5; the history the caller sees is the
  // same evaluated series (no duplicate or phantom rounds).
  ASSERT_EQ(smooth_result.history.size(), crash_result.history.size());
  for (std::size_t i = 0; i < smooth_result.history.size(); ++i) {
    EXPECT_EQ(smooth_result.history[i].round, crash_result.history[i].round);
    EXPECT_EQ(smooth_result.history[i].avg_accuracy,
              crash_result.history[i].avg_accuracy);
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, FailoverDrill,
                         ::testing::Values("fedavg", "scaffold", "spatl"));

TEST(FailoverDrill2, CrashBeforeFirstCheckpointRecoversFromBaseline) {
  const auto source = small_source();
  common::Rng rng(71);
  FlEnvironment env(source, 4, 0.5, 0.25, rng);
  FedAvg algo(env, small_config());
  RunOptions opts;
  opts.rounds = 3;
  opts.eval_every = 1;
  opts.crash_at_rounds = {1};  // no periodic checkpoint exists yet
  const auto result = run_federated(algo, opts);
  EXPECT_EQ(result.crashes_injected, 1u);
  EXPECT_TRUE(is_finite(global_weights(algo)));
  // Round 1 was replayed after the crash; the history is still 1..3.
  ASSERT_EQ(result.history.size(), 3u);
  EXPECT_EQ(result.history.front().round, 1u);
}

// ------------------------------------------------------------ alert hook --

TEST(AlertWatcher, EdgeTriggersOncePerCrossingAndRearms) {
  obs::AlertRule rule;
  rule.name = "reject_high";
  rule.metric = "fl.reject_rate";
  rule.threshold = 0.5;
  obs::AlertWatcher watcher(nullptr);  // count-only
  watcher.add_rule(rule);

  watcher.observe("fl.reject_rate", 0.2, 1);
  EXPECT_EQ(watcher.alerts_emitted(), 0u);
  watcher.observe("fl.reject_rate", 0.6, 2);  // crossing: fires
  watcher.observe("fl.reject_rate", 0.8, 3);  // sustained: silent
  EXPECT_EQ(watcher.alerts_emitted(), 1u);
  watcher.observe("fl.reject_rate", 0.1, 4);  // re-arms
  watcher.observe("fl.reject_rate", 0.9, 5);  // second crossing
  EXPECT_EQ(watcher.alerts_emitted(), 2u);
  // Unwatched metrics are ignored.
  watcher.observe("fl.other", 99.0, 6);
  EXPECT_EQ(watcher.alerts_emitted(), 2u);
}

TEST(AlertWatcher, BelowDirectionAndSnapshotPolling) {
  obs::AlertRule low;
  low.name = "acc_low";
  low.metric = "fl.accuracy";
  low.threshold = 0.3;
  low.above = false;
  obs::AlertWatcher watcher(nullptr);
  watcher.add_rule(low);

  obs::MetricsSnapshot snap;
  snap.gauges["fl.accuracy"] = 0.5;
  watcher.poll(snap, 1);
  EXPECT_EQ(watcher.alerts_emitted(), 0u);
  snap.gauges["fl.accuracy"] = 0.2;
  watcher.poll(snap, 2);
  EXPECT_EQ(watcher.alerts_emitted(), 1u);
}

TEST(AlertWatcher, EmitsAlertRecordsIntoTheTelemetryStream) {
  const std::string path = "churn_alert_test.jsonl";
  {
    obs::JsonlWriter sink(path);
    obs::AlertWatcher watcher(&sink);
    watcher.add_rule({"shed_high", "fl.shed_rate", 0.4, true});

    const auto source = small_source();
    common::Rng rng(73);
    FlEnvironment env(source, 6, 0.5, 0.25, rng);
    FedAvg algo(env, small_config());
    RunOptions opts;
    opts.rounds = 3;
    opts.eval_every = 1;
    opts.admission.max_participants = 2;  // sheds 4 of 6 every round
    opts.alerts = &watcher;
    opts.telemetry = &sink;
    run_federated(algo, opts);
    EXPECT_GE(watcher.alerts_emitted(), 1u);
  }
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"type\":\"alert\""), std::string::npos);
  EXPECT_NE(text.find("\"rule\":\"shed_high\""), std::string::npos);
  EXPECT_NE(text.find("\"metric\":\"fl.shed_rate\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace spatl::fl
