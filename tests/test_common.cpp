#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>

#include "common/csv.hpp"
#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

namespace spatl::common {
namespace {

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.run_chunks(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroChunksIsANoop) {
  ThreadPool pool(2);
  pool.run_chunks(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_chunks(8,
                               [](std::size_t i) {
                                 if (i == 3) throw std::runtime_error("boom");
                               }),
               std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool.run_chunks(4, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(ParallelFor, SumsMatchSerial) {
  std::vector<std::atomic<long>> cells(10000);
  parallel_for(0, cells.size(), [&](std::size_t i) {
    cells[i].store(long(i));
  }, /*grain=*/64);
  long total = 0;
  for (auto& c : cells) total += c.load();
  EXPECT_EQ(total, long(cells.size()) * long(cells.size() - 1) / 2);
}

TEST(ParallelFor, EmptyRange) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForRanges, CoversRangeWithoutOverlap) {
  std::vector<std::atomic<int>> hits(5000);
  parallel_for_ranges(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  }, /*grain=*/128);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Csv, WritesHeaderAndEscapedRows) {
  const std::string path = ::testing::TempDir() + "/spatl_csv_test.csv";
  {
    CsvWriter csv(path, {"name", "value"});
    csv.row({"plain", "1"});
    csv.row({"with,comma", "quote\"inside"});
    csv.row_values("mixed", 3.5);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",\"quote\"\"inside\"");
  std::getline(in, line);
  EXPECT_EQ(line, "mixed,3.5");
  std::remove(path.c_str());
}

TEST(Csv, RejectsWrongColumnCount) {
  const std::string path = ::testing::TempDir() + "/spatl_csv_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(2'100'000), "2.10MB");
  EXPECT_EQ(format_bytes(4.16e9), "4.16GB");
}

TEST(Units, FormatCount) {
  EXPECT_EQ(format_count(123), "123");
  EXPECT_EQ(format_count(40'600'000), "40.60M");
  EXPECT_EQ(format_count(1.25e9), "1.25G");
}

}  // namespace
}  // namespace spatl::common
