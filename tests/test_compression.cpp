#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "fl/compression.hpp"
#include "fl/runner.hpp"
#include "fl/server_opt.hpp"

namespace spatl::fl {
namespace {

TEST(Codec, NoneRoundTripsExactly) {
  std::vector<float> delta = {1.0f, -2.5f, 0.0f, 3.25f};
  const auto msg = compress_update(delta, Codec::kNone);
  EXPECT_EQ(decompress_update(msg), delta);
  EXPECT_DOUBLE_EQ(msg.wire_bytes(), 16.0);
}

TEST(Codec, TopKKeepsLargestMagnitudes) {
  std::vector<float> delta = {0.1f, -5.0f, 0.2f, 4.0f, -0.3f};
  const auto msg = compress_update(delta, Codec::kTopK, 0.4);  // k = 2
  const auto decoded = decompress_update(msg);
  EXPECT_FLOAT_EQ(decoded[1], -5.0f);
  EXPECT_FLOAT_EQ(decoded[3], 4.0f);
  EXPECT_FLOAT_EQ(decoded[0], 0.0f);
  EXPECT_FLOAT_EQ(decoded[2], 0.0f);
  EXPECT_FLOAT_EQ(decoded[4], 0.0f);
  // 2 indices + 2 values = 16 bytes vs 20 dense.
  EXPECT_DOUBLE_EQ(msg.wire_bytes(), 16.0);
}

TEST(Codec, TopKAlwaysKeepsAtLeastOne) {
  std::vector<float> delta = {1.0f, 2.0f, 3.0f};
  const auto msg = compress_update(delta, Codec::kTopK, 0.0001);
  EXPECT_EQ(msg.indices.size(), 1u);
  EXPECT_FLOAT_EQ(decompress_update(msg)[2], 3.0f);
}

TEST(Codec, TopKRejectsBadFraction) {
  std::vector<float> delta = {1.0f};
  EXPECT_THROW(compress_update(delta, Codec::kTopK, 0.0),
               std::invalid_argument);
  EXPECT_THROW(compress_update(delta, Codec::kTopK, 1.5),
               std::invalid_argument);
}

TEST(Codec, Int8QuantizationBoundsError) {
  common::Rng rng(3);
  std::vector<float> delta(257);
  for (auto& v : delta) v = rng.uniform_float(-2.0f, 2.0f);
  const auto msg = compress_update(delta, Codec::kInt8);
  const auto decoded = decompress_update(msg);
  float max_abs = 0.0f;
  for (float v : delta) max_abs = std::max(max_abs, std::fabs(v));
  const float step = max_abs / 127.0f;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    EXPECT_NEAR(decoded[i], delta[i], step * 0.5f + 1e-6f);
  }
  // 1 byte per entry + scale; ~4x smaller than dense.
  EXPECT_DOUBLE_EQ(msg.wire_bytes(), double(delta.size()) + 4.0);
}

TEST(Codec, Int8HandlesAllZeroDelta) {
  std::vector<float> delta(16, 0.0f);
  const auto msg = compress_update(delta, Codec::kInt8);
  for (float v : decompress_update(msg)) EXPECT_EQ(v, 0.0f);
}

data::Dataset small_source() {
  data::SyntheticConfig cfg;
  cfg.num_samples = 240;
  cfg.image_size = 8;
  cfg.seed = 11;
  return data::make_synth_cifar(cfg);
}

FlConfig small_config() {
  FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 16;
  cfg.local.lr = 0.05;
  cfg.seed = 13;
  return cfg;
}

TEST(CompressedFedAvg, NoneCodecMatchesFedAvgUplinkBytes) {
  const auto source = small_source();
  common::Rng rng1(5), rng2(5);
  FlEnvironment env1(source, 3, 0.5, 0.25, rng1);
  FlEnvironment env2(source, 3, 0.5, 0.25, rng2);
  FedAvg plain(env1, small_config());
  CompressedFedAvg none(env2, small_config(), Codec::kNone);
  RunOptions ro;
  ro.rounds = 1;
  run_federated(plain, ro);
  run_federated(none, ro);
  EXPECT_DOUBLE_EQ(plain.ledger().uplink_bytes(),
                   none.ledger().uplink_bytes());
}

TEST(CompressedFedAvg, TopKShrinksUplinkAndStillLearns) {
  const auto source = small_source();
  common::Rng rng(7);
  FlEnvironment env(source, 3, 5.0, 0.25, rng);
  CompressedFedAvg algo(env, small_config(), Codec::kTopK, 0.1);
  const double before = algo.evaluate_clients().avg_accuracy;
  RunOptions ro;
  ro.rounds = 4;
  const auto result = run_federated(algo, ro);
  EXPECT_GT(result.final_accuracy, before);
  // Uplink must be ~10x smaller than downlink-per-direction.
  EXPECT_LT(algo.ledger().uplink_bytes(),
            0.25 * algo.ledger().downlink_bytes());
}

TEST(CompressedFedAvg, Int8QuartersUplink) {
  const auto source = small_source();
  common::Rng rng(9);
  FlEnvironment env(source, 3, 5.0, 0.25, rng);
  CompressedFedAvg algo(env, small_config(), Codec::kInt8);
  RunOptions ro;
  ro.rounds = 1;
  run_federated(algo, ro);
  EXPECT_NEAR(algo.ledger().uplink_bytes(),
              algo.ledger().downlink_bytes() / 4.0,
              0.01 * algo.ledger().downlink_bytes());
}

TEST(ServerOpt, FedAvgMAndFedAdamLearn) {
  const auto source = small_source();
  for (auto opt : {ServerOptimizer::kMomentum, ServerOptimizer::kAdam}) {
    common::Rng rng(15);
    FlEnvironment env(source, 3, 5.0, 0.25, rng);
    ServerOptConfig sopt;
    sopt.optimizer = opt;
    // Momentum accumulates ~1/(1-m) of the averaged delta, so at this tiny
    // scale the server step must be damped to stay stable.
    if (opt == ServerOptimizer::kMomentum) {
      sopt.lr = 0.5;
      sopt.momentum = 0.5;
    } else {
      sopt.lr = 0.1;
    }
    ServerOptFedAvg algo(env, small_config(), sopt);
    const double before = algo.evaluate_clients().avg_accuracy;
    RunOptions ro;
    ro.rounds = 6;
    const auto result = run_federated(algo, ro);
    EXPECT_GT(result.best_accuracy, before)
        << algo.name() << " failed to learn";
  }
}

TEST(ServerOpt, NamesDistinguishVariants) {
  const auto source = small_source();
  common::Rng rng(17);
  FlEnvironment env(source, 3, 0.5, 0.25, rng);
  ServerOptFedAvg m(env, small_config(), {.optimizer = ServerOptimizer::kMomentum});
  ServerOptFedAvg a(env, small_config(), {.optimizer = ServerOptimizer::kAdam});
  EXPECT_EQ(m.name(), "fedavgm");
  EXPECT_EQ(a.name(), "fedadam");
}

}  // namespace
}  // namespace spatl::fl
