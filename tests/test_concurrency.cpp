// Concurrency stress tests for ThreadPool / parallel_for.
//
// Written to run under ThreadSanitizer (scripts/check.sh --thread): the
// scenarios — concurrent submitters, nested parallel_for from worker
// threads, exception propagation, shutdown ordering — are exactly where a
// work-sharing pool hides races. Under the plain Release tier they still
// verify the exactly-once chunk contract and the fixed-chunk geometry.
//
// spatl-lint: allow(raw-thread) — these tests deliberately hammer the pool
// from raw std::thread callers to model concurrent algorithm layers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/thread_pool.hpp"

namespace spatl::common {
namespace {

TEST(ThreadPool, RunChunksExecutesEachChunkExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kChunks = 100;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.run_chunks(kChunks, [&](std::size_t c) { hits[c].fetch_add(1); });
  for (std::size_t c = 0; c < kChunks; ++c) EXPECT_EQ(hits[c].load(), 1);
}

TEST(ThreadPool, ZeroSizePoolRunsInlineOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  const auto caller = std::this_thread::get_id();
  std::size_t ran = 0;
  bool on_caller = true;
  pool.run_chunks(8, [&](std::size_t) {
    ++ran;  // serial by contract, so unsynchronized access is fine
    on_caller = on_caller && std::this_thread::get_id() == caller;
  });
  EXPECT_EQ(ran, 8u);
  EXPECT_TRUE(on_caller);
}

TEST(ThreadPool, ZeroAndSingleChunkBatches) {
  ThreadPool pool(2);
  std::size_t ran = 0;
  pool.run_chunks(0, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 0u);
  pool.run_chunks(1, [&](std::size_t c) {
    EXPECT_EQ(c, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1u);
}

TEST(ParallelFor, EmptyAndInvertedRangeNeverInvoke) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  parallel_for(7, 3, [&](std::size_t) { calls.fetch_add(1); });
  parallel_for_ranges(9, 9, [&](std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, GrainLargerThanRangeStaysSerialOnCaller) {
  const auto caller = std::this_thread::get_id();
  std::vector<int> hits(100, 0);
  bool on_caller = true;
  parallel_for(
      0, hits.size(),
      [&](std::size_t i) {
        ++hits[i];
        on_caller = on_caller && std::this_thread::get_id() == caller;
      },
      /*grain=*/1000);
  EXPECT_TRUE(on_caller);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ParallelFor, CoversEveryIndexExactlyOnceWhenParallel) {
  constexpr std::size_t kN = 50000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); },
               /*grain=*/128);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, NestedCallFromWorkerThreads) {
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 10000;
  std::vector<std::atomic<std::size_t>> sums(kOuter);
  parallel_for(
      0, kOuter,
      [&](std::size_t o) {
        parallel_for(
            0, kInner, [&](std::size_t i) { sums[o].fetch_add(i + 1); },
            /*grain=*/64);
      },
      /*grain=*/1);
  for (std::size_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(sums[o].load(), kInner * (kInner + 1) / 2);
  }
}

TEST(ThreadPool, ReentrantRunChunksOnSamePool) {
  ThreadPool pool(2);
  std::atomic<int> executions{0};
  pool.run_chunks(4, [&](std::size_t) {
    pool.run_chunks(4, [&](std::size_t) { executions.fetch_add(1); });
  });
  EXPECT_EQ(executions.load(), 16);
}

TEST(ThreadPool, ConcurrentSubmittersShareOnePool) {
  ThreadPool pool(3);
  constexpr std::size_t kCallers = 8;
  constexpr std::size_t kChunks = 64;
  std::vector<std::atomic<std::size_t>> totals(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int iter = 0; iter < 20; ++iter) {
        pool.run_chunks(kChunks,
                        [&](std::size_t c) { totals[t].fetch_add(c + 1); });
      }
    });
  }
  for (auto& th : callers) th.join();
  for (std::size_t t = 0; t < kCallers; ++t) {
    EXPECT_EQ(totals[t].load(), 20 * kChunks * (kChunks + 1) / 2);
  }
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run_chunks(16,
                      [&](std::size_t c) {
                        if (c == 7) throw std::runtime_error("chunk 7 fails");
                      }),
      std::runtime_error);
  // Every chunk of a failed batch still completes, and the pool stays usable.
  std::atomic<int> after{0};
  pool.run_chunks(16, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 16);
}

TEST(ThreadPool, ExceptionFromNestedParallelForReachesTopCaller) {
  ThreadPool pool(2);
  ThreadPool::ScopedOverride scope(pool);
  EXPECT_THROW(
      parallel_for(
          0, 8,
          [&](std::size_t o) {
            parallel_for(
                0, 1000,
                [&](std::size_t i) {
                  if (o == 3 && i == 500) {
                    throw std::logic_error("inner failure");
                  }
                },
                /*grain=*/64);
          },
          /*grain=*/1),
      std::logic_error);
}

TEST(ThreadPool, ShutdownAfterWorkAndWhileIdle) {
  for (int iter = 0; iter < 20; ++iter) {
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    pool.run_chunks(10, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 10);
    // Destructor joins immediately after the batch completes.
  }
  for (int iter = 0; iter < 20; ++iter) {
    ThreadPool idle(2);  // construct + destruct with no work at all
  }
}

TEST(ThreadPool, ScopedOverrideRedirectsCurrentAndNests) {
  ThreadPool outer_pool(2);
  ASSERT_NE(&ThreadPool::current(), &outer_pool);
  {
    ThreadPool::ScopedOverride outer(outer_pool);
    EXPECT_EQ(&ThreadPool::current(), &outer_pool);
    {
      ThreadPool inner_pool(1);
      ThreadPool::ScopedOverride inner(inner_pool);
      EXPECT_EQ(&ThreadPool::current(), &inner_pool);
    }
    EXPECT_EQ(&ThreadPool::current(), &outer_pool);
  }
  EXPECT_EQ(&ThreadPool::current(), &ThreadPool::global());
}

// The fixed-chunk contract behind thread-count determinism: the (lo, hi)
// pairs handed to parallel_for_ranges are a pure function of the range and
// grain, independent of pool size.
TEST(ParallelFor, ChunkGeometryIndependentOfPoolSize) {
  const auto collect = [](std::size_t threads) {
    ThreadPool pool(threads);
    ThreadPool::ScopedOverride scope(pool);
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    parallel_for_ranges(
        3, 100003,
        [&](std::size_t lo, std::size_t hi) {
          std::lock_guard<std::mutex> lock(mu);
          ranges.emplace_back(lo, hi);
        },
        /*grain=*/1024);
    std::sort(ranges.begin(), ranges.end());
    return ranges;
  };
  const auto one = collect(1);
  const auto two = collect(2);
  const auto eight = collect(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  ASSERT_FALSE(one.empty());
  // Contiguous cover of [3, 100003).
  EXPECT_EQ(one.front().first, 3u);
  EXPECT_EQ(one.back().second, 100003u);
  for (std::size_t i = 1; i < one.size(); ++i) {
    EXPECT_EQ(one[i].first, one[i - 1].second);
  }
}

TEST(ThreadPool, MixedStressManySmallBatches) {
  ThreadPool pool(4);
  ThreadPool::ScopedOverride scope(pool);
  std::vector<std::thread> callers;
  std::atomic<std::size_t> grand_total{0};
  for (std::size_t t = 0; t < 4; ++t) {
    callers.emplace_back([&, t] {
      for (std::size_t iter = 0; iter < 50; ++iter) {
        const std::size_t n = 100 + 37 * t + iter;
        std::atomic<std::size_t> local{0};
        parallel_for(0, n, [&](std::size_t) { local.fetch_add(1); },
                     /*grain=*/8);
        grand_total.fetch_add(local.load() == n ? 1 : 0);
      }
    });
  }
  for (auto& th : callers) th.join();
  EXPECT_EQ(grand_total.load(), 4u * 50u);
}

}  // namespace
}  // namespace spatl::common
