#include <gtest/gtest.h>

#include "core/spatl.hpp"
#include "core/transfer.hpp"
#include "data/synthetic.hpp"
#include "fl/runner.hpp"

namespace spatl::core {
namespace {

data::Dataset small_source(std::uint64_t seed = 77) {
  data::SyntheticConfig cfg;
  cfg.num_samples = 360;
  cfg.image_size = 8;
  cfg.num_classes = 10;
  cfg.noise_stddev = 0.2f;
  cfg.seed = seed;
  return data::make_synth_cifar(cfg);
}

fl::FlConfig small_config(const std::string& arch = "cnn2") {
  fl::FlConfig cfg;
  cfg.model.arch = arch;
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 32;
  cfg.local.lr = 0.05;
  cfg.seed = 51;
  return cfg;
}

SpatlOptions fast_options() {
  SpatlOptions opts;
  opts.agent_finetune_rounds = 1;
  opts.agent_finetune_episodes = 1;
  opts.flops_budget = 0.7;
  return opts;
}

TEST(Spatl, RoundRunsAndImprovesAccuracy) {
  const auto source = small_source();
  common::Rng rng(61);
  fl::FlEnvironment env(source, 4, /*beta=*/0.5, 0.25, rng);
  SpatlAlgorithm spatl(env, small_config(), fast_options());
  const double before = spatl.evaluate_clients().avg_accuracy;
  fl::RunOptions ro;
  ro.rounds = 4;
  const auto result = fl::run_federated(spatl, ro);
  EXPECT_GT(result.final_accuracy, before + 0.1);
}

TEST(Spatl, SalientSelectionUploadsFewerBytesThanDense) {
  const auto source = small_source();
  common::Rng rng1(63), rng2(63);
  fl::FlEnvironment env1(source, 4, 0.5, 0.25, rng1);
  fl::FlEnvironment env2(source, 4, 0.5, 0.25, rng2);

  auto on = fast_options();
  on.flops_budget = 0.5;
  SpatlAlgorithm with_sel(env1, small_config(), on);

  auto off = fast_options();
  off.salient_selection = false;
  SpatlAlgorithm without_sel(env2, small_config(), off);

  fl::RunOptions ro;
  ro.rounds = 2;
  fl::run_federated(with_sel, ro);
  fl::run_federated(without_sel, ro);
  EXPECT_LT(with_sel.ledger().uplink_bytes(),
            without_sel.ledger().uplink_bytes());
}

TEST(Spatl, DenseUploadMatchesEncoderSizeWhenSelectionOff) {
  const auto source = small_source();
  common::Rng rng(65);
  fl::FlEnvironment env(source, 3, 0.5, 0.25, rng);
  auto opts = fast_options();
  opts.salient_selection = false;
  opts.gradient_control = false;
  auto cfg = small_config();
  cfg.local.epochs = 1;
  SpatlAlgorithm spatl(env, cfg, opts);
  const double enc =
      double(nn::param_count(spatl.global_model().encoder_params()));
  fl::RunOptions ro;
  ro.rounds = 1;
  fl::run_federated(spatl, ro);
  // down: enc per client; up: enc per client (no variates, no indices).
  EXPECT_DOUBLE_EQ(spatl.ledger().downlink_bytes(), 3 * enc * 4.0);
  EXPECT_DOUBLE_EQ(spatl.ledger().uplink_bytes(), 3 * enc * 4.0);
}

TEST(Spatl, GradientControlDoublesDownlink) {
  const auto source = small_source();
  common::Rng rng1(67), rng2(67);
  fl::FlEnvironment env1(source, 3, 0.5, 0.25, rng1);
  fl::FlEnvironment env2(source, 3, 0.5, 0.25, rng2);
  auto base = fast_options();
  base.salient_selection = false;

  auto gc_off = base;
  gc_off.gradient_control = false;
  SpatlAlgorithm a(env1, small_config(), gc_off);
  SpatlAlgorithm b(env2, small_config(), base);
  fl::RunOptions ro;
  ro.rounds = 1;
  fl::run_federated(a, ro);
  fl::run_federated(b, ro);
  EXPECT_DOUBLE_EQ(b.ledger().downlink_bytes(),
                   2.0 * a.ledger().downlink_bytes());
}

TEST(Spatl, TransferAblationSharesPredictorToo) {
  const auto source = small_source();
  common::Rng rng1(69), rng2(69);
  fl::FlEnvironment env1(source, 3, 0.5, 0.25, rng1);
  fl::FlEnvironment env2(source, 3, 0.5, 0.25, rng2);
  auto opts_on = fast_options();
  opts_on.salient_selection = false;
  opts_on.gradient_control = false;
  auto opts_off = opts_on;
  opts_off.transfer_learning = false;
  SpatlAlgorithm with_tl(env1, small_config(), opts_on);
  SpatlAlgorithm without_tl(env2, small_config(), opts_off);
  fl::RunOptions ro;
  ro.rounds = 1;
  fl::run_federated(with_tl, ro);
  fl::run_federated(without_tl, ro);
  // Sharing the predictor moves strictly more bytes.
  EXPECT_GT(without_tl.ledger().total_bytes(),
            with_tl.ledger().total_bytes());
}

TEST(Spatl, PerClientStateIsHeterogeneous) {
  const auto source = small_source();
  common::Rng rng(71);
  fl::FlEnvironment env(source, 4, 0.2 /*strong skew*/, 0.25, rng);
  SpatlAlgorithm spatl(env, small_config(), fast_options());
  fl::RunOptions ro;
  ro.rounds = 2;
  fl::run_federated(spatl, ro);
  // Predictors differ across clients after local training.
  auto p0 = nn::flatten_values(spatl.client_model(0).predictor_params());
  auto p1 = nn::flatten_values(spatl.client_model(1).predictor_params());
  ASSERT_EQ(p0.size(), p1.size());
  bool differ = false;
  for (std::size_t i = 0; i < p0.size(); ++i) {
    if (p0[i] != p1[i]) differ = true;
  }
  EXPECT_TRUE(differ);
  const auto acc = spatl.per_client_accuracy();
  EXPECT_EQ(acc.size(), 4u);
}

TEST(Spatl, ClientFlopsRatiosReflectSelection) {
  const auto source = small_source();
  common::Rng rng(73);
  fl::FlEnvironment env(source, 3, 0.5, 0.25, rng);
  auto opts = fast_options();
  opts.flops_budget = 0.5;
  SpatlAlgorithm spatl(env, small_config(), opts);
  fl::RunOptions ro;
  ro.rounds = 1;
  ro.sample_ratio = 1.0;
  fl::run_federated(spatl, ro);
  for (double r : spatl.client_flops_ratios()) {
    EXPECT_LE(r, 0.75);  // budget + quantization slack
    EXPECT_GT(r, 0.0);
  }
  for (double s : spatl.client_sparsities()) EXPECT_GT(s, 0.0);
}

TEST(Spatl, DeterministicForSameSeeds) {
  const auto source = small_source();
  common::Rng rng1(75), rng2(75);
  fl::FlEnvironment env1(source, 3, 0.5, 0.25, rng1);
  fl::FlEnvironment env2(source, 3, 0.5, 0.25, rng2);
  SpatlAlgorithm a(env1, small_config(), fast_options());
  SpatlAlgorithm b(env2, small_config(), fast_options());
  fl::RunOptions ro;
  ro.rounds = 2;
  const auto ra = fl::run_federated(a, ro);
  const auto rb = fl::run_federated(b, ro);
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (std::size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.history[i].avg_accuracy, rb.history[i].avg_accuracy);
  }
}

TEST(Spatl, ColdClientAdaptationImprovesItsAccuracy) {
  const auto source = small_source();
  common::Rng rng(79);
  fl::FlEnvironment env(source, 5, 0.5, 0.25, rng);
  auto cfg = small_config();
  SpatlAlgorithm spatl(env, cfg, fast_options());
  fl::RunOptions ro;
  ro.rounds = 3;
  ro.sample_ratio = 0.6;  // only 3 of 5 clients ever train
  // Fixed sampling seed: determine a never-sampled client afterwards by
  // checking participations via its untouched (random) predictor accuracy.
  fl::run_federated(spatl, ro);
  const auto before = spatl.per_client_accuracy();
  // Adapt the last client (eq. 4) and expect improvement on its val set.
  const double adapted = spatl.adapt_cold_client(4, /*epochs=*/3);
  EXPECT_GE(adapted + 1e-9, before[4]);
}

TEST(Spatl, PretrainedAgentIsClonedIntoClients) {
  const auto source = small_source();
  PretrainConfig pc;
  pc.arch = "resnet20";
  pc.input_size = 8;
  pc.width_mult = 0.25;
  pc.warmup_epochs = 1;
  pc.rl_rounds = 2;
  pc.episodes_per_round = 2;
  pc.train_samples = 80;
  pc.val_samples = 40;
  auto pre = pretrain_selection_agent(pc);
  EXPECT_EQ(pre.history.rewards.size(), 2u);

  common::Rng rng(81);
  fl::FlEnvironment env(source, 3, 0.5, 0.25, rng);
  SpatlAlgorithm spatl(env, small_config(), fast_options(), &pre.agent);
  fl::RunOptions ro;
  ro.rounds = 1;
  EXPECT_NO_THROW(fl::run_federated(spatl, ro));
}

TEST(TransferEvaluate, RunsAndBeatsChanceAfterFewEpochs) {
  data::SyntheticConfig dc;
  dc.num_samples = 300;
  dc.image_size = 8;
  dc.num_classes = 10;
  dc.seed = 5;
  const auto full = data::make_synth_cifar(dc);
  const auto train = full.slice(0, 200);
  const auto test = full.slice(200, 300);

  common::Rng rng(83);
  auto src = models::build_model(small_config().model, rng);
  // Give the source encoder some supervised knowledge first.
  data::TrainOptions topts;
  topts.epochs = 3;
  topts.lr = 0.05;
  data::train_supervised(src, train, topts, rng, src.all_params());

  data::TrainOptions tr;
  tr.lr = 0.05;
  const double acc =
      transfer_evaluate(src, train, test, /*epochs=*/3, tr, rng);
  EXPECT_GT(acc, 0.15);  // chance is 0.1
}

}  // namespace
}  // namespace spatl::core
