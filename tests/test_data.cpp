#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "data/loader.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"

namespace spatl::data {
namespace {

SyntheticConfig small_cfg() {
  SyntheticConfig cfg;
  cfg.num_samples = 400;
  cfg.num_classes = 10;
  cfg.image_size = 8;
  cfg.seed = 7;
  return cfg;
}

TEST(Synthetic, CifarShapeAndLabels) {
  const Dataset d = make_synth_cifar(small_cfg());
  EXPECT_EQ(d.size(), 400u);
  EXPECT_EQ(d.channels(), 3u);
  EXPECT_EQ(d.height(), 8u);
  EXPECT_EQ(d.num_classes(), 10u);
  const auto hist = d.label_histogram(10);
  for (auto c : hist) EXPECT_EQ(c, 40u);  // balanced generator
}

TEST(Synthetic, DeterministicForSameSeed) {
  const Dataset a = make_synth_cifar(small_cfg());
  const Dataset b = make_synth_cifar(small_cfg());
  EXPECT_TRUE(tensor::allclose(a.images(), b.images()));
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(Synthetic, DifferentSeedsDiffer) {
  auto cfg = small_cfg();
  const Dataset a = make_synth_cifar(cfg);
  cfg.seed = 8;
  const Dataset b = make_synth_cifar(cfg);
  EXPECT_FALSE(tensor::allclose(a.images(), b.images()));
}

TEST(Synthetic, ClassesAreStatisticallySeparable) {
  // 1-nearest-neighbour on raw pixels should beat chance (10%) by a wide
  // margin; otherwise no model could learn the task. (Class distributions
  // are multi-modal — several prototypes plus random shifts — so NN is the
  // right sanity probe, not nearest-class-mean.)
  auto cfg = small_cfg();
  cfg.num_samples = 1000;
  cfg.noise_stddev = 0.25f;
  const Dataset d = make_synth_cifar(cfg);
  const std::size_t item = d.channels() * d.height() * d.width();
  const std::size_t half = d.size() / 2;
  std::size_t hits = 0;
  for (std::size_t i = half; i < d.size(); ++i) {
    double best = 1e300;
    int best_label = -1;
    for (std::size_t t = 0; t < half; ++t) {
      double dist = 0.0;
      for (std::size_t j = 0; j < item; ++j) {
        const double diff = d.images()[i * item + j] - d.images()[t * item + j];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_label = d.labels()[t];
      }
    }
    if (best_label == d.labels()[i]) ++hits;
  }
  const double acc = double(hits) / double(d.size() - half);
  EXPECT_GT(acc, 0.4) << "generator classes not separable enough";
}

TEST(Synthetic, FemnistIsGrayscaleWith62Classes) {
  auto cfg = small_cfg();
  cfg.num_samples = 620;
  const Dataset d = make_synth_femnist(cfg);
  EXPECT_EQ(d.channels(), 1u);
  EXPECT_EQ(d.num_classes(), 62u);
}

TEST(Dataset, SubsetAndSlice) {
  const Dataset d = make_synth_cifar(small_cfg());
  const Dataset s = d.subset({0, 5, 10});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.labels()[1], d.labels()[5]);
  const Dataset sl = d.slice(10, 20);
  EXPECT_EQ(sl.size(), 10u);
  EXPECT_EQ(sl.labels()[0], d.labels()[10]);
  EXPECT_THROW(d.subset({9999}), std::out_of_range);
  EXPECT_THROW(d.slice(20, 10), std::out_of_range);
}

TEST(Dataset, RejectsMismatchedLabels) {
  Tensor imgs({3, 1, 2, 2});
  EXPECT_THROW(Dataset(imgs, {0, 1}), std::invalid_argument);
}

class DirichletSweep
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(DirichletSweep, PartitionIsExactCover) {
  const auto [beta, clients] = GetParam();
  const Dataset d = make_synth_cifar(small_cfg());
  common::Rng rng(17);
  DirichletOptions opts;
  opts.beta = beta;
  const auto part = dirichlet_partition(d, clients, opts, rng);
  ASSERT_EQ(part.client_indices.size(), clients);
  std::vector<std::size_t> all;
  for (const auto& ci : part.client_indices) {
    EXPECT_GE(ci.size(), opts.min_per_client);
    all.insert(all.end(), ci.begin(), ci.end());
  }
  // Every sample assigned exactly once.
  EXPECT_EQ(all.size(), d.size());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

INSTANTIATE_TEST_SUITE_P(
    BetaAndClients, DirichletSweep,
    ::testing::Values(std::make_tuple(0.1, 5), std::make_tuple(0.5, 5),
                      std::make_tuple(0.5, 10), std::make_tuple(5.0, 10),
                      std::make_tuple(0.5, 20)));

TEST(Dirichlet, LowBetaProducesMoreSkewThanHighBeta) {
  auto cfg = small_cfg();
  cfg.num_samples = 2000;
  const Dataset d = make_synth_cifar(cfg);
  common::Rng rng(19);
  auto skew = [&](double beta) {
    DirichletOptions opts;
    opts.beta = beta;
    opts.min_per_client = 1;
    common::Rng local(23);
    const auto part = dirichlet_partition(d, 10, opts, local);
    // Mean over clients of the max class share.
    double total = 0.0;
    for (const auto& ci : part.client_indices) {
      std::vector<std::size_t> hist(10, 0);
      for (auto i : ci) ++hist[std::size_t(d.labels()[i])];
      const double mx = double(*std::max_element(hist.begin(), hist.end()));
      total += mx / double(std::max<std::size_t>(1, ci.size()));
    }
    return total / 10.0;
  };
  EXPECT_GT(skew(0.1), skew(10.0) + 0.1);
}

TEST(Dirichlet, ZeroClientsThrows) {
  const Dataset d = make_synth_cifar(small_cfg());
  common::Rng rng(1);
  EXPECT_THROW(dirichlet_partition(d, 0, {}, rng), std::invalid_argument);
}

TEST(LeafStyle, PartitionCoversClientsWithSkew) {
  auto cfg = small_cfg();
  cfg.num_samples = 620;
  const Dataset d = make_synth_femnist(cfg);
  common::Rng rng(29);
  LeafStyleOptions opts;
  opts.min_per_client = 8;
  const auto part = leaf_style_partition(d, 10, opts, rng);
  ASSERT_EQ(part.client_indices.size(), 10u);
  std::set<std::size_t> seen;
  for (const auto& ci : part.client_indices) {
    EXPECT_GE(ci.size(), 8u);
    for (auto i : ci) {
      EXPECT_TRUE(seen.insert(i).second) << "index assigned twice";
    }
  }
}

TEST(TrainValSplit, PartitionsWithoutOverlap) {
  std::vector<std::size_t> idx(100);
  std::iota(idx.begin(), idx.end(), 0);
  common::Rng rng(31);
  const auto split = split_train_val(idx, 0.2, rng);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.val.size(), 20u);
  std::set<std::size_t> all(split.train.begin(), split.train.end());
  for (auto i : split.val) EXPECT_TRUE(all.insert(i).second);
  EXPECT_EQ(all.size(), 100u);
}

TEST(TrainValSplit, RejectsDegenerateSplit) {
  std::vector<std::size_t> idx = {1};
  common::Rng rng(37);
  EXPECT_THROW(split_train_val(idx, 0.5, rng), std::invalid_argument);
}

TEST(DataLoader, EpochCoversEverySampleOnce) {
  const Dataset d = make_synth_cifar(small_cfg());
  common::Rng rng(41);
  DataLoader loader(d, 32, rng);
  Tensor images;
  std::vector<int> labels;
  std::size_t total = 0;
  std::size_t batches = 0;
  while (loader.next(images, labels)) {
    total += labels.size();
    ++batches;
    EXPECT_LE(labels.size(), 32u);
  }
  EXPECT_EQ(total, d.size());
  EXPECT_EQ(batches, loader.batches_per_epoch());
  // After reshuffle a new epoch is available.
  loader.reshuffle();
  EXPECT_TRUE(loader.next(images, labels));
}

TEST(DataLoader, DropLastSkipsPartialBatch) {
  const Dataset d = make_synth_cifar(small_cfg());  // 400 samples
  common::Rng rng(43);
  DataLoader loader(d, 64, rng, /*drop_last=*/true);
  Tensor images;
  std::vector<int> labels;
  std::size_t total = 0;
  while (loader.next(images, labels)) {
    EXPECT_EQ(labels.size(), 64u);
    total += labels.size();
  }
  EXPECT_EQ(total, 384u);  // 6 full batches
}

TEST(Evaluate, PerfectAndChanceLevels) {
  // A model can't be built trivially here; instead check evaluate() on a
  // tiny trained-by-construction setup: use a 1-class dataset so any model
  // with a constant argmax gets either 0 or 1.
  auto cfg = small_cfg();
  cfg.num_samples = 50;
  cfg.num_classes = 2;
  const Dataset d = make_synth_cifar(cfg);
  models::ModelConfig mc;
  mc.arch = "cnn2";
  mc.in_channels = 3;
  mc.input_size = 8;
  mc.num_classes = 2;
  mc.width_mult = 0.25;
  common::Rng rng(47);
  models::SplitModel m = models::build_model(mc, rng);
  const auto r = evaluate(m, d);
  EXPECT_EQ(r.samples, 50u);
  EXPECT_GE(r.accuracy, 0.0);
  EXPECT_LE(r.accuracy, 1.0);
  EXPECT_GT(r.loss, 0.0);
}

}  // namespace
}  // namespace spatl::data
