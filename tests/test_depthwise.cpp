#include <gtest/gtest.h>

#include "nn/depthwise.hpp"
#include "prune/flops.hpp"
#include "test_util.hpp"

namespace spatl::nn {
namespace {

TEST(DepthwiseConv2d, IdentityKernelPassesThrough) {
  DepthwiseConv2d dw(2, 3, 1, 1);
  // Center-tap delta kernels: output == input.
  dw.weight().zero();
  dw.weight()[0 * 9 + 4] = 1.0f;
  dw.weight()[1 * 9 + 4] = 1.0f;
  common::Rng rng(1);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  Tensor y = dw.forward(x, true);
  EXPECT_TRUE(tensor::allclose(x, y, 1e-6f));
}

TEST(DepthwiseConv2d, ChannelsDoNotMix) {
  DepthwiseConv2d dw(2, 3, 1, 1);
  common::Rng rng(2);
  dw.init_params(rng);
  // Input with energy only in channel 0 must give zero output in channel 1.
  Tensor x({1, 2, 4, 4});
  for (std::size_t p = 0; p < 16; ++p) x[p] = float(p + 1);
  Tensor y = dw.forward(x, true);
  for (std::size_t p = 0; p < 16; ++p) {
    EXPECT_EQ(y[16 + p], 0.0f);
  }
}

TEST(DepthwiseConv2d, StrideReducesSpatialSize) {
  DepthwiseConv2d dw(3, 3, 2, 1);
  common::Rng rng(3);
  dw.init_params(rng);
  Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
  Tensor y = dw.forward(x, true);
  EXPECT_EQ(y.shape(), (tensor::Shape{1, 3, 4, 4}));
}

TEST(DepthwiseConv2d, GradientCheck) {
  common::Rng rng(5);
  DepthwiseConv2d dw(3, 3, 1, 1);
  dw.init_params(rng);
  Tensor x = Tensor::randn({2, 3, 5, 5}, rng);
  const auto r = spatl::testutil::grad_check(dw, x);
  EXPECT_LT(r.max_rel_err, 2e-2) << "abs=" << r.max_abs_err;
}

TEST(DepthwiseConv2d, RejectsWrongChannelCount) {
  DepthwiseConv2d dw(4, 3);
  Tensor x({1, 3, 4, 4});
  EXPECT_THROW(dw.forward(x, true), std::invalid_argument);
}

TEST(MobileNet, BuildsForwardsAndHasGatedBlocks) {
  models::ModelConfig cfg;
  cfg.arch = "mobilenet";
  cfg.input_size = 16;
  cfg.width_mult = 0.25;
  common::Rng rng(7);
  auto m = models::build_model(cfg, rng);
  // Stem gate + one gate per separable block.
  EXPECT_EQ(m.gates().size(), 7u);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  Tensor logits = m.forward(x, true);
  EXPECT_EQ(logits.shape(), (tensor::Shape{2, 10}));

  // FLOPs accounting covers the depthwise stages.
  const double dense = prune::dense_encoder_flops(m.layers());
  EXPECT_GT(dense, 0.0);
  bool saw_depthwise = false;
  for (const auto& l : m.layers()) {
    if (l.kind == models::LayerKind::kDepthwiseConv) {
      saw_depthwise = true;
      EXPECT_GT(prune::dense_layer_flops(l), 0.0);
    }
  }
  EXPECT_TRUE(saw_depthwise);
}

TEST(MobileNet, DepthwiseFlopsScaleWithInputGate) {
  models::LayerInfo l;
  l.kind = models::LayerKind::kDepthwiseConv;
  l.in_ch = l.out_ch = 8;
  l.kernel = 3;
  l.in_h = l.in_w = l.out_h = l.out_w = 4;
  l.in_gate = 0;
  const double full = prune::gated_encoder_flops({l}, {1.0});
  EXPECT_DOUBLE_EQ(prune::gated_encoder_flops({l}, {0.5}), full * 0.5);
}

TEST(MobileNet, TrainsOneStepWithoutNans) {
  models::ModelConfig cfg;
  cfg.arch = "mobilenet";
  cfg.input_size = 8;
  cfg.width_mult = 0.25;
  common::Rng rng(11);
  auto m = models::build_model(cfg, rng);
  Tensor x = Tensor::randn({4, 3, 8, 8}, rng);
  Tensor logits = m.forward(x, true);
  Tensor dlogits;
  tensor::cross_entropy(logits, {0, 1, 2, 3}, &dlogits);
  m.zero_grad();
  m.backward(dlogits);
  for (auto& p : m.all_params()) {
    for (std::size_t i = 0; i < p.grad->numel(); ++i) {
      ASSERT_TRUE(std::isfinite((*p.grad)[i])) << p.name;
    }
  }
}

}  // namespace
}  // namespace spatl::nn
