// Second-round coverage: behaviours surfaced while building the benches —
// mobilenet graph structure, codec determinism, loader edge cases, Adam
// bias correction, and SPATL accounting details.
#include <gtest/gtest.h>

#include "core/spatl.hpp"
#include "data/synthetic.hpp"
#include "fl/compression.hpp"
#include "fl/local_only.hpp"
#include "fl/runner.hpp"
#include "graph/compute_graph.hpp"
#include "nn/optimizer.hpp"
#include "prune/flops.hpp"

namespace spatl {
namespace {

TEST(MobileNetGraph, DepthwiseNodesAreConvNodesWithoutActions) {
  models::ModelConfig cfg;
  cfg.arch = "mobilenet";
  cfg.input_size = 16;
  cfg.width_mult = 0.25;
  common::Rng rng(3);
  auto m = models::build_model(cfg, rng);
  const auto g = graph::build_compute_graph(m);
  ASSERT_EQ(g.action_nodes.size(), m.gates().size());
  // Depthwise layers appear as conv nodes but are never action targets.
  std::size_t depthwise_nodes = 0;
  for (std::size_t i = 0; i < m.layers().size(); ++i) {
    if (m.layers()[i].kind == models::LayerKind::kDepthwiseConv) {
      ++depthwise_nodes;
      const int node = int(i) + 1;
      EXPECT_EQ(g.node_features[std::size_t(node) *
                                    graph::kNumNodeFeatures +
                                graph::kIsConv],
                1.0f);
      for (int a : g.action_nodes) EXPECT_NE(a, node);
    }
  }
  EXPECT_EQ(depthwise_nodes, 6u);  // one per separable block
}

TEST(MobileNetGraph, PruningReducesFlopsThroughBothStages) {
  models::ModelConfig cfg;
  cfg.arch = "mobilenet";
  cfg.input_size = 16;
  cfg.width_mult = 0.25;
  common::Rng rng(5);
  auto m = models::build_model(cfg, rng);
  const double dense = prune::dense_encoder_flops(m.layers());
  prune::apply_uniform_sparsity(m, 0.5, prune::Criterion::kL2);
  const double gated = prune::encoder_flops(m);
  // Pointwise convs scale ~quadratically (in+out gated), depthwise
  // linearly; total must drop well below 60%.
  EXPECT_LT(gated / dense, 0.6);
}

TEST(Codec, CompressionIsDeterministic) {
  common::Rng rng(7);
  std::vector<float> delta(512);
  for (auto& v : delta) v = rng.normal_float(0.0f, 1.0f);
  const auto a = fl::compress_update(delta, fl::Codec::kTopK, 0.2);
  const auto b = fl::compress_update(delta, fl::Codec::kTopK, 0.2);
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.values, b.values);
  const auto qa = fl::compress_update(delta, fl::Codec::kInt8);
  const auto qb = fl::compress_update(delta, fl::Codec::kInt8);
  EXPECT_EQ(qa.qvalues, qb.qvalues);
  EXPECT_EQ(qa.scale, qb.scale);
}

TEST(Codec, TopKIndicesAreSortedAndUnique) {
  common::Rng rng(9);
  std::vector<float> delta(300);
  for (auto& v : delta) v = rng.normal_float(0.0f, 1.0f);
  const auto msg = fl::compress_update(delta, fl::Codec::kTopK, 0.25);
  for (std::size_t i = 1; i < msg.indices.size(); ++i) {
    EXPECT_LT(msg.indices[i - 1], msg.indices[i]);
  }
}

TEST(DataLoader, BatchLargerThanDatasetYieldsSingleBatch) {
  data::SyntheticConfig dc;
  dc.num_samples = 10;
  dc.image_size = 8;
  const auto d = data::make_synth_cifar(dc);
  common::Rng rng(11);
  data::DataLoader loader(d, 64, rng);
  nn::Tensor images;
  std::vector<int> labels;
  ASSERT_TRUE(loader.next(images, labels));
  EXPECT_EQ(labels.size(), 10u);
  EXPECT_FALSE(loader.next(images, labels));
}

TEST(Synthetic, ExplicitLabelsArePreserved) {
  data::SyntheticConfig dc;
  dc.num_samples = 6;
  dc.image_size = 8;
  dc.num_classes = 4;
  const std::vector<int> labels = {3, 1, 0, 2, 3, 3};
  const auto d = data::make_synthetic_with_labels(dc, labels);
  EXPECT_EQ(d.labels(), labels);
}

TEST(Adam, FirstStepEqualsLearningRateInMagnitude) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  nn::Linear lin(1, 1, /*bias=*/false);
  lin.weight() = nn::Tensor({1, 1}, std::vector<float>{0.0f});
  auto params = lin.params();
  (*params[0].grad)[0] = 123.0f;  // magnitude must not matter
  nn::Adam opt(params, {.lr = 0.01});
  opt.step();
  EXPECT_NEAR(lin.weight()[0], -0.01f, 1e-4f);
}

TEST(SpatlAccounting, IndicesAreMeteredWhenSelecting) {
  data::SyntheticConfig dc;
  dc.num_samples = 180;
  dc.image_size = 8;
  const auto source = data::make_synth_cifar(dc);
  common::Rng rng(13);
  fl::FlEnvironment env(source, 3, 0.5, 0.25, rng);
  fl::FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 16;
  core::SpatlOptions opts;
  opts.gradient_control = false;
  opts.agent_finetune_rounds = 0;
  opts.flops_budget = 0.5;
  core::SpatlAlgorithm spatl(env, cfg, opts);
  spatl.run_round({0, 1, 2});
  const double enc =
      double(nn::param_count(spatl.global_model().encoder_params()));
  // Uplink must be below the dense encoder (values) but above zero, and
  // include the (small) channel-index overhead.
  EXPECT_LT(spatl.ledger().uplink_bytes(), 3 * enc * 4.0);
  EXPECT_GT(spatl.ledger().uplink_bytes(), 0.0);
}

TEST(SpatlAccounting, ColdClientChargesDownlinkOnly) {
  data::SyntheticConfig dc;
  dc.num_samples = 180;
  dc.image_size = 8;
  const auto source = data::make_synth_cifar(dc);
  common::Rng rng(17);
  fl::FlEnvironment env(source, 3, 0.5, 0.25, rng);
  fl::FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.local.epochs = 1;
  core::SpatlAlgorithm spatl(env, cfg, {});
  const double up_before = spatl.ledger().uplink_bytes();
  spatl.adapt_cold_client(2, 1);
  EXPECT_DOUBLE_EQ(spatl.ledger().uplink_bytes(), up_before);
  EXPECT_GT(spatl.ledger().downlink_bytes(), 0.0);
}

TEST(Runner, FinalRoundAlwaysEvaluated) {
  data::SyntheticConfig dc;
  dc.num_samples = 120;
  dc.image_size = 8;
  const auto source = data::make_synth_cifar(dc);
  common::Rng rng(19);
  fl::FlEnvironment env(source, 3, 0.5, 0.25, rng);
  fl::FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.local.epochs = 1;
  auto algo = fl::make_baseline("fedavg", env, cfg);
  fl::RunOptions ro;
  ro.rounds = 5;
  ro.eval_every = 3;  // rounds 3 and 5 (final) get evaluated
  const auto r = fl::run_federated(*algo, ro);
  ASSERT_EQ(r.history.size(), 2u);
  EXPECT_EQ(r.history[0].round, 3u);
  EXPECT_EQ(r.history[1].round, 5u);
}

TEST(LocalOnly, TrainsWithoutAnyCommunication) {
  data::SyntheticConfig dc;
  dc.num_samples = 150;
  dc.image_size = 8;
  const auto source = data::make_synth_cifar(dc);
  common::Rng rng(21);
  fl::FlEnvironment env(source, 3, 0.3, 0.25, rng);
  fl::FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 16;
  cfg.local.lr = 0.05;
  fl::LocalOnly algo(env, cfg);
  const double before = algo.evaluate_clients().avg_accuracy;
  fl::RunOptions ro;
  ro.rounds = 3;
  const auto result = fl::run_federated(algo, ro);
  EXPECT_GT(result.final_accuracy, before);
  EXPECT_DOUBLE_EQ(result.total_bytes, 0.0);
  EXPECT_EQ(algo.per_client_accuracy().size(), 3u);
}

TEST(LocalOnly, ClientsNeverShareWeights) {
  data::SyntheticConfig dc;
  dc.num_samples = 120;
  dc.image_size = 8;
  const auto source = data::make_synth_cifar(dc);
  common::Rng rng(23);
  fl::FlEnvironment env(source, 2, 0.3, 0.25, rng);
  fl::FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.local.epochs = 1;
  fl::LocalOnly algo(env, cfg);
  algo.run_round({0, 1});
  // Global model untouched: local-only has no aggregation.
  common::Rng ref_rng(cfg.seed);
  auto reference = models::build_model(cfg.model, ref_rng);
  EXPECT_EQ(nn::flatten_values(algo.global_model().all_params()),
            nn::flatten_values(reference.all_params()));
}

}  // namespace
}  // namespace spatl
