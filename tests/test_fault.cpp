#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "core/spatl.hpp"
#include "data/synthetic.hpp"
#include "fl/algorithm.hpp"
#include "fl/fault.hpp"
#include "fl/flat_utils.hpp"
#include "fl/runner.hpp"

namespace spatl::fl {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

data::Dataset small_source(std::uint64_t seed = 11) {
  data::SyntheticConfig cfg;
  cfg.num_samples = 400;
  cfg.image_size = 8;
  cfg.num_classes = 10;
  cfg.noise_stddev = 0.2f;
  cfg.seed = seed;
  return data::make_synth_cifar(cfg);
}

FlConfig small_config() {
  FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 32;
  cfg.local.lr = 0.05;
  cfg.seed = 21;
  return cfg;
}

std::vector<float> global_weights(FederatedAlgorithm& algo) {
  return nn::flatten_values(algo.global_model().all_params());
}

// ----------------------------------------------------- flat_utils helpers --

TEST(FlatUtils, IsFiniteDetectsNanAndInf) {
  EXPECT_TRUE(is_finite({}));
  EXPECT_TRUE(is_finite({0.0f, -1.5f, 3.0e37f}));
  EXPECT_FALSE(is_finite({0.0f, kNaN}));
  EXPECT_FALSE(is_finite({kInf}));
  EXPECT_FALSE(is_finite({-kInf, 1.0f}));
}

TEST(FlatUtils, L2NormMatchesClosedForm) {
  EXPECT_DOUBLE_EQ(l2_norm({}), 0.0);
  EXPECT_DOUBLE_EQ(l2_norm({3.0f, 4.0f}), 5.0);
  EXPECT_DOUBLE_EQ(l2_norm({-2.0f}), 2.0);
  EXPECT_TRUE(std::isnan(l2_norm({kNaN})));
  EXPECT_TRUE(std::isinf(l2_norm({kInf, 1.0f})));
}

// ------------------------------------------------------------ FaultModel --

TEST(FaultModel, DisabledWhenAllRatesZero) {
  FaultConfig cfg;
  EXPECT_FALSE(cfg.any_faults());
  EXPECT_FALSE(FaultModel(cfg).enabled());
  cfg.dropout_rate = 0.1;
  EXPECT_TRUE(FaultModel(cfg).enabled());
  cfg.dropout_rate = 0.0;
  cfg.availability = {0.5};
  EXPECT_TRUE(FaultModel(cfg).enabled());
}

TEST(FaultModel, RejectsOutOfRangeRates) {
  FaultConfig cfg;
  cfg.dropout_rate = 1.5;
  EXPECT_THROW(FaultModel{cfg}, std::invalid_argument);
  cfg.dropout_rate = 0.0;
  cfg.loss_rate = -0.1;
  EXPECT_THROW(FaultModel{cfg}, std::invalid_argument);
}

TEST(FaultModel, DeterministicAndOrderIndependent) {
  FaultConfig cfg;
  cfg.dropout_rate = 0.4;
  cfg.straggler_rate = 0.3;
  cfg.corruption_rate = 0.5;
  cfg.loss_rate = 0.3;
  cfg.seed = 99;
  const FaultModel a(cfg), b(cfg);
  // Query b in reverse order: per-decision streams are keyed, not stateful.
  std::vector<ClientFault> fa, fb;
  for (std::size_t r = 1; r <= 5; ++r) {
    for (std::size_t c = 0; c < 6; ++c) fa.push_back(a.assess(r, c));
  }
  for (std::size_t r = 5; r >= 1; --r) {
    for (std::size_t c = 6; c-- > 0;) fb.push_back(b.assess(r, c));
  }
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    const auto& x = fa[i];
    const auto& y = fb[fb.size() - 1 - i];
    EXPECT_EQ(x.fate, y.fate);
    EXPECT_DOUBLE_EQ(x.compute_time, y.compute_time);
  }
  // Corruption draws are likewise repeatable.
  std::vector<float> p1(64, 1.0f), p2(64, 1.0f);
  EXPECT_EQ(a.corrupt(3, 2, p1), b.corrupt(3, 2, p2));
  EXPECT_EQ(std::memcmp(p1.data(), p2.data(), p1.size() * sizeof(float)), 0);
}

TEST(FaultModel, DropoutRateIsRespectedStatistically) {
  FaultConfig cfg;
  cfg.dropout_rate = 0.5;
  const FaultModel fm(cfg);
  std::size_t down = 0, total = 0;
  for (std::size_t r = 1; r <= 200; ++r) {
    for (std::size_t c = 0; c < 10; ++c, ++total) {
      if (fm.assess(r, c).fate == ClientFate::kUnavailable) ++down;
    }
  }
  const double frac = double(down) / double(total);
  EXPECT_NEAR(frac, 0.5, 0.05);
}

TEST(FaultModel, AvailabilityTraceOverridesDropout) {
  FaultConfig cfg;
  cfg.dropout_rate = 0.0;
  cfg.availability = {1.0, 0.0};  // even clients always up, odd never
  const FaultModel fm(cfg);
  for (std::size_t r = 1; r <= 20; ++r) {
    EXPECT_NE(fm.assess(r, 0).fate, ClientFate::kUnavailable);
    EXPECT_EQ(fm.assess(r, 1).fate, ClientFate::kUnavailable);
    EXPECT_NE(fm.assess(r, 2).fate, ClientFate::kUnavailable);
  }
}

TEST(FaultModel, StragglersMissTheDeadline) {
  FaultConfig cfg;
  cfg.straggler_rate = 1.0;
  cfg.slowdown_factor = 10.0;
  cfg.compute_time_mean = 1.0;
  cfg.compute_time_jitter = 0.05;
  cfg.round_deadline = 2.0;
  const FaultModel fm(cfg);
  for (std::size_t c = 0; c < 10; ++c) {
    const auto f = fm.assess(1, c);
    EXPECT_EQ(f.fate, ClientFate::kStraggler);
    EXPECT_GT(f.compute_time, cfg.round_deadline);
  }
  // No deadline => no stragglers regardless of compute time.
  cfg.round_deadline = 0.0;
  const FaultModel relaxed(cfg);
  for (std::size_t c = 0; c < 10; ++c) {
    EXPECT_EQ(relaxed.assess(1, c).fate, ClientFate::kOk);
  }
}

TEST(FaultModel, CorruptionKindsPerturbPayload) {
  FaultConfig cfg;
  cfg.corruption_rate = 1.0;
  cfg.corruption_fraction = 0.25;
  cfg.corruption_kind = CorruptionKind::kNaN;
  std::vector<float> payload(32, 1.0f);
  EXPECT_TRUE(FaultModel(cfg).corrupt(1, 0, payload));
  EXPECT_FALSE(is_finite(payload));

  cfg.corruption_kind = CorruptionKind::kInf;
  payload.assign(32, 1.0f);
  EXPECT_TRUE(FaultModel(cfg).corrupt(1, 0, payload));
  EXPECT_FALSE(is_finite(payload));

  cfg.corruption_kind = CorruptionKind::kBitFlip;
  payload.assign(32, 1.0f);
  EXPECT_TRUE(FaultModel(cfg).corrupt(1, 0, payload));
  bool changed = false;
  for (const float x : payload) changed = changed || x != 1.0f;
  EXPECT_TRUE(changed);

  cfg.corruption_rate = 0.0;
  payload.assign(32, 1.0f);
  EXPECT_FALSE(FaultModel(cfg).corrupt(1, 0, payload));
  for (const float x : payload) EXPECT_EQ(x, 1.0f);
}

TEST(FaultModel, TransmissionRetriesAreBounded) {
  RetryPolicy retry;
  retry.max_retries = 3;
  FaultConfig cfg;
  cfg.loss_rate = 0.0;
  EXPECT_TRUE(FaultModel(cfg).transmit(1, 0, retry).delivered);
  EXPECT_EQ(FaultModel(cfg).transmit(1, 0, retry).attempts, 1u);

  cfg.loss_rate = 1.0;
  const Transmission t = FaultModel(cfg).transmit(1, 0, retry);
  EXPECT_FALSE(t.delivered);
  EXPECT_EQ(t.attempts, 4u);  // first try + 3 retries
  EXPECT_EQ(t.backoff_wait, 0.0);  // backoff off by default
}

// ------------------------------------------------------------- runner -----

TEST(Runner, ParticipantCountNeverZeroAndRatioClamped) {
  const auto source = small_source();
  common::Rng rng(41);
  FlEnvironment env(source, 8, 5.0, 0.25, rng);
  const auto cfg = small_config();
  const double p = 4.0 * double(nn::param_count(
                             FedAvg(env, cfg).global_model().all_params()));

  // A tiny positive ratio floors to a single participant.
  {
    FedAvg algo(env, cfg);
    RunOptions opts;
    opts.rounds = 1;
    opts.sample_ratio = 1e-6;
    run_federated(algo, opts);
    EXPECT_DOUBLE_EQ(algo.ledger().total_bytes(), 1 * 2 * p);
  }
  // Negative ratios clamp to 0 => still one participant.
  {
    FedAvg algo(env, cfg);
    RunOptions opts;
    opts.rounds = 1;
    opts.sample_ratio = -0.5;
    run_federated(algo, opts);
    EXPECT_DOUBLE_EQ(algo.ledger().total_bytes(), 1 * 2 * p);
  }
  // Ratios above 1 clamp to the full federation.
  {
    FedAvg algo(env, cfg);
    RunOptions opts;
    opts.rounds = 1;
    opts.sample_ratio = 7.0;
    run_federated(algo, opts);
    EXPECT_DOUBLE_EQ(algo.ledger().total_bytes(), 8 * 2 * p);
  }
}

class CleanPathIdentity : public ::testing::TestWithParam<const char*> {};

// The fault path is strictly opt-in: all-zero fault rates plus default
// resilience must reproduce the undefended run bit for bit.
TEST_P(CleanPathIdentity, ZeroRatesAreBitIdenticalToUndefended) {
  const auto source = small_source();
  common::Rng rng1(31), rng2(31);
  FlEnvironment env1(source, 4, 0.5, 0.25, rng1);
  FlEnvironment env2(source, 4, 0.5, 0.25, rng2);
  auto a = make_baseline(GetParam(), env1, small_config());
  auto b = make_baseline(GetParam(), env2, small_config());

  RunOptions clean;
  clean.rounds = 3;
  clean.sample_ratio = 0.5;
  RunOptions defended = clean;
  defended.faults = FaultConfig{};          // all rates zero
  defended.resilience = ResilienceConfig{}; // defenses on, nothing to catch

  const auto ra = run_federated(*a, clean);
  const auto rb = run_federated(*b, defended);
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (std::size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_EQ(ra.history[i].avg_accuracy, rb.history[i].avg_accuracy);
    EXPECT_EQ(ra.history[i].avg_loss, rb.history[i].avg_loss);
    EXPECT_EQ(ra.history[i].cumulative_bytes, rb.history[i].cumulative_bytes);
  }
  EXPECT_EQ(ra.total_bytes, rb.total_bytes);
  EXPECT_EQ(ra.final_accuracy, rb.final_accuracy);
  const auto wa = global_weights(*a);
  const auto wb = global_weights(*b);
  ASSERT_EQ(wa.size(), wb.size());
  EXPECT_EQ(std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(float)), 0);
  EXPECT_EQ(rb.rounds_skipped, 0u);
  EXPECT_EQ(rb.total_rejected, 0u);
  EXPECT_EQ(rb.retransmitted_bytes, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, CleanPathIdentity,
                         ::testing::Values("fedavg", "fedprox", "fednova",
                                           "scaffold"));

TEST(Resilience, NanCorruptedUpdatesAreRejectedAndGlobalStaysFinite) {
  const auto source = small_source();
  common::Rng rng(47);
  FlEnvironment env(source, 4, 5.0, 0.25, rng);
  FedAvg algo(env, small_config());

  RunOptions opts;
  opts.rounds = 4;
  FaultConfig fc;
  fc.corruption_rate = 0.5;
  fc.corruption_kind = CorruptionKind::kNaN;
  fc.seed = 7;
  opts.faults = fc;

  const auto result = run_federated(algo, opts);
  EXPECT_TRUE(is_finite(global_weights(algo)));
  EXPECT_GT(result.total_rejected, 0u);
  EXPECT_GT(result.total_accepted, 0u);
  // Per-round reject counts surface in the history records.
  std::size_t history_rejects = 0;
  for (const auto& rec : result.history) {
    history_rejects += rec.stats.rejected_non_finite;
  }
  EXPECT_GT(history_rejects, 0u);
}

TEST(Resilience, FullCorruptionSkipsAggregationAndLeavesWeightsUntouched) {
  const auto source = small_source();
  common::Rng rng(53);
  FlEnvironment env(source, 4, 5.0, 0.25, rng);
  FedAvg algo(env, small_config());
  const auto before = global_weights(algo);

  RunOptions opts;
  opts.rounds = 2;
  FaultConfig fc;
  fc.corruption_rate = 1.0;
  fc.corruption_kind = CorruptionKind::kNaN;
  opts.faults = fc;

  const auto result = run_federated(algo, opts);
  EXPECT_EQ(result.rounds_skipped, 2u);
  EXPECT_EQ(result.total_accepted, 0u);
  const auto after = global_weights(algo);
  ASSERT_EQ(before.size(), after.size());
  EXPECT_EQ(std::memcmp(before.data(), after.data(),
                        before.size() * sizeof(float)),
            0);
}

TEST(Resilience, QuorumSkipsRoundsWithTooFewLiveClients) {
  const auto source = small_source();
  common::Rng rng(59);
  FlEnvironment env(source, 4, 5.0, 0.25, rng);
  FedAvg algo(env, small_config());
  const auto before = global_weights(algo);

  RunOptions opts;
  opts.rounds = 3;
  FaultConfig fc;
  fc.dropout_rate = 1.0;  // nobody shows up
  opts.faults = fc;
  ResilienceConfig rc;
  rc.min_quorum = 2;
  opts.resilience = rc;

  const auto result = run_federated(algo, opts);
  EXPECT_EQ(result.rounds_skipped, 3u);
  EXPECT_EQ(result.total_dropped, 3u * 4u);
  const auto after = global_weights(algo);
  EXPECT_EQ(std::memcmp(before.data(), after.data(),
                        before.size() * sizeof(float)),
            0);
}

TEST(Resilience, NormBoundRejectsOversizedUpdates) {
  const auto source = small_source();
  common::Rng rng(61);
  FlEnvironment env(source, 4, 5.0, 0.25, rng);
  FedAvg algo(env, small_config());
  const auto before = global_weights(algo);

  RunOptions opts;
  opts.rounds = 1;
  ResilienceConfig rc;
  rc.max_update_norm = 1e-12;  // no real update is this small
  opts.resilience = rc;

  const auto result = run_federated(algo, opts);
  EXPECT_EQ(result.total_accepted, 0u);
  EXPECT_EQ(result.rounds_skipped, 1u);
  EXPECT_GT(result.total_rejected, 0u);
  const auto after = global_weights(algo);
  EXPECT_EQ(std::memcmp(before.data(), after.data(),
                        before.size() * sizeof(float)),
            0);
}

TEST(Resilience, RetryPathMetersRetransmittedBytes) {
  const auto source = small_source();
  common::Rng rng(67);
  FlEnvironment env1(source, 4, 5.0, 0.25, rng);
  common::Rng rng2(67);
  FlEnvironment env2(source, 4, 5.0, 0.25, rng2);
  FedAvg lossy(env1, small_config());
  FedAvg clean(env2, small_config());

  RunOptions opts;
  opts.rounds = 3;
  const auto clean_result = run_federated(clean, opts);

  FaultConfig fc;
  fc.loss_rate = 0.5;
  fc.seed = 13;
  opts.faults = fc;
  ResilienceConfig rc;
  rc.retry.max_retries = 3;
  opts.resilience = rc;
  const auto lossy_result = run_federated(lossy, opts);

  EXPECT_GT(lossy_result.total_retransmissions, 0u);
  EXPECT_GT(lossy_result.retransmitted_bytes, 0.0);
  EXPECT_DOUBLE_EQ(lossy.ledger().retransmitted_bytes(),
                   lossy_result.retransmitted_bytes);
  // Retransmissions are part of the uplink totals (eq. 13 stays honest).
  EXPECT_GT(lossy.ledger().uplink_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(
      lossy.ledger().uplink_bytes() - lossy.ledger().retransmitted_bytes() +
          lossy.ledger().downlink_bytes(),
      clean_result.total_bytes);
  EXPECT_EQ(clean.ledger().retransmitted_bytes(), 0.0);
}

TEST(Resilience, StragglersAreDownWeightedOrRejected) {
  const auto source = small_source();
  common::Rng rng(71);
  FlEnvironment env(source, 4, 5.0, 0.25, rng);

  FaultConfig fc;
  fc.straggler_rate = 1.0;
  fc.slowdown_factor = 10.0;
  fc.round_deadline = 2.0;

  // stale_weight > 0: stragglers participate with a discount.
  {
    FedAvg algo(env, small_config());
    RunOptions opts;
    opts.rounds = 2;
    opts.faults = fc;
    const auto result = run_federated(algo, opts);
    EXPECT_EQ(result.total_stragglers, 2u * 4u);
    EXPECT_EQ(result.total_accepted, 2u * 4u);
    EXPECT_EQ(result.rounds_skipped, 0u);
  }
  // stale_weight == 0: past-deadline updates are rejected outright.
  {
    FedAvg algo(env, small_config());
    const auto before = global_weights(algo);
    RunOptions opts;
    opts.rounds = 2;
    opts.faults = fc;
    ResilienceConfig rc;
    rc.stale_weight = 0.0;
    opts.resilience = rc;
    const auto result = run_federated(algo, opts);
    EXPECT_EQ(result.total_accepted, 0u);
    EXPECT_EQ(result.rounds_skipped, 2u);
    const auto after = global_weights(algo);
    EXPECT_EQ(std::memcmp(before.data(), after.data(),
                          before.size() * sizeof(float)),
              0);
  }
}

// Same sampling seed + same FaultModel seed => bit-identical histories.
TEST(Resilience, FaultInjectionIsDeterministicAcrossRuns) {
  const auto source = small_source();
  auto run_once = [&source]() {
    common::Rng rng(31);
    FlEnvironment env(source, 6, 0.5, 0.25, rng);
    FedAvg algo(env, small_config());
    RunOptions opts;
    opts.rounds = 4;
    opts.sample_ratio = 0.8;
    opts.sampling_seed = 7;
    FaultConfig fc;
    fc.dropout_rate = 0.3;
    fc.corruption_rate = 0.3;
    fc.loss_rate = 0.3;
    fc.straggler_rate = 0.3;
    fc.seed = 1234;
    opts.faults = fc;
    return run_federated(algo, opts);
  };
  const auto ra = run_once();
  const auto rb = run_once();
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (std::size_t i = 0; i < ra.history.size(); ++i) {
    const auto& x = ra.history[i];
    const auto& y = rb.history[i];
    EXPECT_EQ(x.round, y.round);
    EXPECT_EQ(x.avg_accuracy, y.avg_accuracy);
    EXPECT_EQ(x.avg_loss, y.avg_loss);
    EXPECT_EQ(x.cumulative_bytes, y.cumulative_bytes);
    EXPECT_EQ(x.stats.dropped, y.stats.dropped);
    EXPECT_EQ(x.stats.stragglers, y.stats.stragglers);
    EXPECT_EQ(x.stats.accepted, y.stats.accepted);
    EXPECT_EQ(x.stats.retransmissions, y.stats.retransmissions);
    EXPECT_EQ(x.stats.skipped, y.stats.skipped);
  }
  EXPECT_EQ(ra.total_bytes, rb.total_bytes);
  EXPECT_EQ(ra.retransmitted_bytes, rb.retransmitted_bytes);
  EXPECT_EQ(ra.total_dropped, rb.total_dropped);
  EXPECT_EQ(ra.total_rejected, rb.total_rejected);
  EXPECT_EQ(ra.rounds_skipped, rb.rounds_skipped);
}

TEST(Resilience, SpatlSurvivesCorruptionAndDropout) {
  const auto source = small_source();
  common::Rng rng(73);
  FlEnvironment env(source, 4, 5.0, 0.25, rng);
  core::SpatlOptions sopts;
  sopts.salient_selection = false;  // dense upload keeps the test fast
  core::SpatlAlgorithm algo(env, small_config(), sopts);

  RunOptions opts;
  opts.rounds = 3;
  FaultConfig fc;
  fc.dropout_rate = 0.3;
  fc.corruption_rate = 0.5;
  fc.corruption_kind = CorruptionKind::kNaN;
  fc.seed = 77;
  opts.faults = fc;

  const auto result = run_federated(algo, opts);
  EXPECT_TRUE(is_finite(
      nn::flatten_values(algo.global_model().encoder_params())));
  EXPECT_GT(result.total_rejected + result.total_dropped, 0u);
  ASSERT_FALSE(result.history.empty());
  EXPECT_GE(result.final_accuracy, 0.0);
}

}  // namespace
}  // namespace spatl::fl
