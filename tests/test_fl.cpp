#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "fl/algorithm.hpp"
#include "fl/flat_utils.hpp"
#include "fl/runner.hpp"

namespace spatl::fl {
namespace {

data::Dataset small_source(std::uint64_t seed = 11) {
  data::SyntheticConfig cfg;
  cfg.num_samples = 400;
  cfg.image_size = 8;
  cfg.num_classes = 10;
  cfg.noise_stddev = 0.2f;
  cfg.seed = seed;
  return data::make_synth_cifar(cfg);
}

FlConfig small_config() {
  FlConfig cfg;
  cfg.model.arch = "cnn2";
  cfg.model.in_channels = 3;
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.model.num_classes = 10;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 32;
  cfg.local.lr = 0.05;
  cfg.seed = 21;
  return cfg;
}

TEST(Environment, PartitionsAndSplitsClients) {
  const auto source = small_source();
  common::Rng rng(13);
  FlEnvironment env(source, 5, /*beta=*/0.5, /*val_fraction=*/0.25, rng);
  EXPECT_EQ(env.num_clients(), 5u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < env.num_clients(); ++i) {
    EXPECT_GT(env.client(i).train.size(), 0u);
    EXPECT_GT(env.client(i).val.size(), 0u);
    total += env.client(i).train.size() + env.client(i).val.size();
  }
  EXPECT_EQ(total, source.size());
  EXPECT_EQ(env.total_train_samples() + 0u, total - [&] {
    std::size_t v = 0;
    for (std::size_t i = 0; i < env.num_clients(); ++i) {
      v += env.client(i).val.size();
    }
    return v;
  }());
}

TEST(FlatUtils, ProximalHookPullsTowardAnchor) {
  common::Rng rng(1);
  models::ModelConfig mc = small_config().model;
  auto m = models::build_model(mc, rng);
  auto views = m.all_params();
  const auto anchor = std::vector<float>(nn::param_count(views), 0.0f);
  m.zero_grad();
  const auto hook = make_proximal_hook(anchor, 2.0);
  hook(views);
  // g == 2 * (w - 0) == 2w.
  std::size_t off = 0;
  const auto w = nn::flatten_values(views);
  const auto g = nn::flatten_grads(views);
  for (std::size_t i = 0; i < w.size(); ++i, ++off) {
    EXPECT_NEAR(g[i], 2.0f * w[i], 1e-5f);
  }
}

TEST(FlatUtils, CorrectionHookAddsVector) {
  common::Rng rng(2);
  auto m = models::build_model(small_config().model, rng);
  auto views = m.all_params();
  std::vector<float> corr(nn::param_count(views), 0.25f);
  m.zero_grad();
  make_correction_hook(corr)(views);
  for (float g : nn::flatten_grads(views)) EXPECT_FLOAT_EQ(g, 0.25f);
}

TEST(FlatUtils, BnStatsRoundTrip) {
  common::Rng rng(3);
  auto a = models::build_model(small_config().model, rng);
  auto b = models::build_model(small_config().model, rng);
  // Perturb a's stats, move to b.
  for (auto* bn : a.batch_norms()) {
    bn->running_mean().fill(0.5f);
    bn->running_var().fill(2.0f);
  }
  unflatten_bn_stats(flatten_bn_stats(a), b);
  for (auto* bn : b.batch_norms()) {
    EXPECT_FLOAT_EQ(bn->running_mean()[0], 0.5f);
    EXPECT_FLOAT_EQ(bn->running_var()[0], 2.0f);
  }
  EXPECT_THROW(unflatten_bn_stats({1.0f}, b), std::invalid_argument);
}

TEST(Baselines, FactoryKnowsAllFourAndRejectsUnknown) {
  const auto source = small_source();
  common::Rng rng(17);
  FlEnvironment env(source, 4, 0.5, 0.25, rng);
  for (const char* name : {"fedavg", "fedprox", "fednova", "scaffold"}) {
    auto algo = make_baseline(name, env, small_config());
    EXPECT_EQ(algo->name(), name);
  }
  EXPECT_THROW(make_baseline("fedsgd", env, small_config()),
               std::invalid_argument);
}

class BaselineLearning : public ::testing::TestWithParam<const char*> {};

TEST_P(BaselineLearning, ImprovesAccuracyOverRounds) {
  const auto source = small_source();
  common::Rng rng(19);
  FlEnvironment env(source, 4, /*beta=*/5.0 /*mild skew*/, 0.25, rng);
  auto algo = make_baseline(GetParam(), env, small_config());
  const double before = algo->evaluate_clients().avg_accuracy;
  RunOptions opts;
  opts.rounds = 4;
  const auto result = run_federated(*algo, opts);
  EXPECT_GT(result.final_accuracy, before + 0.1)
      << GetParam() << " failed to learn";
  EXPECT_GT(result.total_bytes, 0.0);
  ASSERT_EQ(result.history.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, BaselineLearning,
                         ::testing::Values("fedavg", "fedprox", "fednova",
                                           "scaffold"));

TEST(Baselines, CommunicationAccountingMatchesClosedForm) {
  const auto source = small_source();
  common::Rng rng(23);
  FlEnvironment env(source, 4, 5.0, 0.25, rng);
  auto cfg = small_config();
  cfg.local.epochs = 1;

  FedAvg fedavg(env, cfg);
  const double p = double(nn::param_count(fedavg.global_model().all_params()));
  RunOptions opts;
  opts.rounds = 2;
  opts.sample_ratio = 1.0;
  run_federated(fedavg, opts);
  // 2 rounds x 4 clients x (down + up) x 4 bytes.
  EXPECT_DOUBLE_EQ(fedavg.ledger().total_bytes(), 2 * 4 * 2 * p * 4.0);

  Scaffold scaffold(env, cfg);
  run_federated(scaffold, opts);
  // SCAFFOLD ships weights + control variates both ways: exactly 2x.
  EXPECT_DOUBLE_EQ(scaffold.ledger().total_bytes(),
                   2.0 * fedavg.ledger().total_bytes());
}

TEST(Baselines, FedNovaUplinkIsDoubleFedAvg) {
  const auto source = small_source();
  common::Rng rng(29);
  FlEnvironment env(source, 3, 5.0, 0.25, rng);
  auto cfg = small_config();
  cfg.local.epochs = 1;
  FedAvg fedavg(env, cfg);
  FedNova fednova(env, cfg);
  RunOptions opts;
  opts.rounds = 1;
  run_federated(fedavg, opts);
  run_federated(fednova, opts);
  EXPECT_DOUBLE_EQ(fednova.ledger().uplink_bytes(),
                   2.0 * fedavg.ledger().uplink_bytes());
  EXPECT_DOUBLE_EQ(fednova.ledger().downlink_bytes(),
                   fedavg.ledger().downlink_bytes());
}

TEST(Runner, DeterministicForSameSeeds) {
  const auto source = small_source();
  common::Rng rng1(31), rng2(31);
  FlEnvironment env1(source, 4, 0.5, 0.25, rng1);
  FlEnvironment env2(source, 4, 0.5, 0.25, rng2);
  FedAvg a(env1, small_config());
  FedAvg b(env2, small_config());
  RunOptions opts;
  opts.rounds = 2;
  const auto ra = run_federated(a, opts);
  const auto rb = run_federated(b, opts);
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (std::size_t i = 0; i < ra.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.history[i].avg_accuracy, rb.history[i].avg_accuracy);
  }
}

TEST(Runner, TargetAccuracyStopsEarly) {
  const auto source = small_source();
  common::Rng rng(37);
  FlEnvironment env(source, 4, 5.0, 0.25, rng);
  FedAvg algo(env, small_config());
  RunOptions opts;
  opts.rounds = 20;
  opts.target_accuracy = 0.0;  // trivially reached at the first eval
  const auto r = run_federated(algo, opts);
  ASSERT_TRUE(r.rounds_to_target.has_value());
  EXPECT_EQ(*r.rounds_to_target, 1u);
  EXPECT_EQ(r.history.size(), 1u);
}

TEST(Runner, SampleRatioControlsParticipants) {
  const auto source = small_source();
  common::Rng rng(41);
  FlEnvironment env(source, 8, 5.0, 0.25, rng);
  auto cfg = small_config();
  cfg.local.epochs = 1;
  FedAvg algo(env, cfg);
  const double p = double(nn::param_count(algo.global_model().all_params()));
  RunOptions opts;
  opts.rounds = 1;
  opts.sample_ratio = 0.5;  // 4 of 8 clients
  run_federated(algo, opts);
  EXPECT_DOUBLE_EQ(algo.ledger().total_bytes(), 4 * 2 * p * 4.0);
}

TEST(Runner, PerClientAccuracyHasOneEntryPerClient) {
  const auto source = small_source();
  common::Rng rng(43);
  FlEnvironment env(source, 5, 5.0, 0.25, rng);
  FedAvg algo(env, small_config());
  const auto acc = algo.per_client_accuracy();
  EXPECT_EQ(acc.size(), 5u);
  for (double a : acc) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

}  // namespace
}  // namespace spatl::fl
