#include <gtest/gtest.h>

#include "common/flags.hpp"

namespace spatl::common {
namespace {

Flags parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("prog"));
  for (auto& a : args) argv.push_back(a.data());
  return Flags(int(argv.size()), argv.data());
}

TEST(Flags, SpaceAndEqualsForms) {
  auto f = parse({"--arch", "resnet20", "--rounds=12"});
  EXPECT_EQ(f.get("arch"), "resnet20");
  EXPECT_EQ(f.get_int("rounds", 0), 12);
}

TEST(Flags, FallbacksWhenAbsent) {
  auto f = parse({});
  EXPECT_EQ(f.get("arch", "vgg11"), "vgg11");
  EXPECT_EQ(f.get_int("rounds", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("lr", 0.5), 0.5);
  EXPECT_TRUE(f.get_bool("verbose", true));
  EXPECT_FALSE(f.has("arch"));
}

TEST(Flags, BooleanFlagWithoutValue) {
  auto f = parse({"--verbose", "--arch", "cnn2"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_EQ(f.get("arch"), "cnn2");
}

TEST(Flags, Positionals) {
  auto f = parse({"train", "--rounds", "3", "extra"});
  EXPECT_EQ(f.positionals(), (std::vector<std::string>{"train", "extra"}));
}

TEST(Flags, TypeErrorsThrow) {
  auto f = parse({"--rounds", "many"});
  EXPECT_THROW(f.get_int("rounds", 0), std::invalid_argument);
  EXPECT_THROW(f.get_double("rounds", 0), std::invalid_argument);
}

TEST(Flags, UnknownFlagCheck) {
  auto f = parse({"--arch", "x", "--typo", "y"});
  EXPECT_THROW(f.check_known({"arch"}), std::invalid_argument);
  EXPECT_NO_THROW(f.check_known({"arch", "typo"}));
}

}  // namespace
}  // namespace spatl::common
