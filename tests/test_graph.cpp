#include <gtest/gtest.h>

#include "graph/compute_graph.hpp"

namespace spatl::graph {
namespace {

models::SplitModel tiny(const std::string& arch) {
  models::ModelConfig cfg;
  cfg.arch = arch;
  cfg.input_size = 8;
  cfg.width_mult = 0.25;
  if (arch == "cnn2") cfg.in_channels = 1;
  common::Rng rng(5);
  return models::build_model(cfg, rng);
}

TEST(ComputeGraph, NodeCountMatchesLayersPlusInput) {
  auto m = tiny("resnet20");
  const auto g = build_compute_graph(m);
  EXPECT_EQ(g.num_nodes(), m.layers().size() + 1);
  EXPECT_EQ(g.node_features.dim(1), std::size_t(kNumNodeFeatures));
}

TEST(ComputeGraph, OneActionNodePerGate) {
  for (const char* arch : {"resnet20", "vgg11", "cnn2"}) {
    auto m = tiny(arch);
    const auto g = build_compute_graph(m);
    ASSERT_EQ(g.action_nodes.size(), m.gates().size()) << arch;
    for (int node : g.action_nodes) {
      ASSERT_GE(node, 1) << arch;
      ASSERT_LT(std::size_t(node), g.num_nodes()) << arch;
      // Action nodes are conv outputs.
      EXPECT_EQ(g.node_features[std::size_t(node) * kNumNodeFeatures +
                                kIsConv],
                1.0f)
          << arch;
    }
  }
}

TEST(ComputeGraph, ResidualSkipEdgesExist) {
  auto m = tiny("resnet20");
  const auto g = build_compute_graph(m);
  // Sequential edges = num layers; skips add more.
  EXPECT_GT(g.edges.size(), m.layers().size());
  // Every Add layer contributes exactly one skip edge.
  std::size_t adds = 0;
  for (const auto& l : m.layers()) {
    if (l.kind == models::LayerKind::kAdd) ++adds;
  }
  EXPECT_EQ(g.edges.size(), m.layers().size() + adds);
}

TEST(ComputeGraph, FlopsSharesSumToOne) {
  auto m = tiny("vgg11");
  const auto g = build_compute_graph(m);
  double total = 0.0;
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    total += g.node_features[i * kNumNodeFeatures + kFlopsShare];
  }
  EXPECT_NEAR(total, 1.0, 1e-4);
}

TEST(ComputeGraph, KeepFeatureTracksGateState) {
  auto m = tiny("vgg11");
  std::vector<std::uint8_t> mask(m.gates()[0]->channels(), 0);
  mask[0] = 1;
  m.gates()[0]->set_mask(mask);
  const auto g = build_compute_graph(m);
  const int node = g.action_nodes[0];
  EXPECT_NEAR(g.node_features[std::size_t(node) * kNumNodeFeatures +
                              kCurrentKeep],
              1.0 / double(mask.size()), 1e-5);
}

TEST(NormalizedAdjacency, RowsSumToOneAndSelfLoops) {
  auto m = tiny("resnet20");
  const auto g = build_compute_graph(m);
  const auto a = normalized_adjacency(g);
  const std::size_t n = g.num_nodes();
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) row += a[i * n + j];
    EXPECT_NEAR(row, 1.0, 1e-5);
    EXPECT_GT(a[i * n + i], 0.0f);  // self-loop present
  }
}

TEST(ComputeGraph, DeterministicForSameModelState) {
  auto m = tiny("resnet20");
  const auto g1 = build_compute_graph(m);
  const auto g2 = build_compute_graph(m);
  EXPECT_TRUE(tensor::allclose(g1.node_features, g2.node_features));
  EXPECT_EQ(g1.edges, g2.edges);
  EXPECT_EQ(g1.action_nodes, g2.action_nodes);
}

}  // namespace
}  // namespace spatl::graph
