// Cross-module integration tests: the full pipelines a user of the library
// actually runs, end to end.
#include <gtest/gtest.h>

#include "core/spatl.hpp"
#include "core/transfer.hpp"
#include "data/synthetic.hpp"
#include "fl/runner.hpp"
#include "prune/flops.hpp"

namespace spatl {
namespace {

data::Dataset source_data(std::uint64_t seed = 123) {
  data::SyntheticConfig cfg;
  cfg.num_samples = 320;
  cfg.image_size = 8;
  cfg.noise_stddev = 0.2f;
  cfg.seed = seed;
  return data::make_synth_cifar(cfg);
}

fl::FlConfig tiny_config() {
  fl::FlConfig cfg;
  cfg.model.arch = "resnet20";
  cfg.model.input_size = 8;
  cfg.model.width_mult = 0.25;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 16;
  cfg.local.lr = 0.05;
  cfg.seed = 99;
  return cfg;
}

TEST(Integration, PretrainThenFederateThenTransfer) {
  // The full SPATL deployment pipeline from the paper: pre-train the agent
  // on a pruning task, run federated training with it, then transfer the
  // learned encoder to held-out data.
  core::PretrainConfig pc;
  pc.arch = "resnet20";  // small stand-in to keep the test fast
  pc.input_size = 8;
  pc.width_mult = 0.25;
  pc.warmup_epochs = 1;
  pc.rl_rounds = 2;
  pc.episodes_per_round = 2;
  pc.train_samples = 80;
  pc.val_samples = 40;
  auto pre = core::pretrain_selection_agent(pc);

  const auto source = source_data();
  common::Rng rng(7);
  fl::FlEnvironment env(source, 4, 0.4, 0.25, rng);
  core::SpatlOptions opts;
  opts.agent_finetune_rounds = 1;
  opts.agent_finetune_episodes = 1;
  core::SpatlAlgorithm spatl(env, tiny_config(), opts, &pre.agent);
  fl::RunOptions ro;
  ro.rounds = 3;
  const auto result = fl::run_federated(spatl, ro);
  EXPECT_GT(result.final_accuracy, 0.15);  // > chance

  const auto transfer_data = source_data(321);
  data::TrainOptions topts;
  topts.lr = 0.05;
  common::Rng trng(11);
  const double acc = core::transfer_evaluate(
      spatl.global_model(), transfer_data.slice(0, 240),
      transfer_data.slice(240, 320), 2, topts, trng);
  EXPECT_GT(acc, 0.1);
}

TEST(Integration, RunnerHistoryBytesAreMonotone) {
  const auto source = source_data();
  common::Rng rng(13);
  fl::FlEnvironment env(source, 4, 0.5, 0.25, rng);
  auto algo = fl::make_baseline("fedavg", env, tiny_config());
  fl::RunOptions ro;
  ro.rounds = 3;
  const auto r = fl::run_federated(*algo, ro);
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_GT(r.history[i].cumulative_bytes,
              r.history[i - 1].cumulative_bytes);
  }
}

TEST(Integration, RoundCallbackFiresOncePerEval) {
  const auto source = source_data();
  common::Rng rng(17);
  fl::FlEnvironment env(source, 3, 0.5, 0.25, rng);
  auto algo = fl::make_baseline("fedprox", env, tiny_config());
  fl::RunOptions ro;
  ro.rounds = 4;
  ro.eval_every = 2;
  std::vector<std::size_t> seen;
  fl::run_federated(*algo, ro,
                    [&](std::size_t round, const fl::RoundRecord& rec) {
                      seen.push_back(round);
                      EXPECT_EQ(rec.round, round);
                    });
  EXPECT_EQ(seen, (std::vector<std::size_t>{2, 4}));
}

TEST(Integration, LeafPartitionDrivesFemnistFederation) {
  data::SyntheticConfig cfg;
  cfg.num_samples = 300;
  cfg.num_classes = 12;
  cfg.image_size = 8;
  cfg.seed = 9;
  const auto source = data::make_synth_femnist(cfg);
  common::Rng rng(19);
  data::LeafStyleOptions lopts;
  const auto partition = data::leaf_style_partition(source, 5, lopts, rng);
  fl::FlEnvironment env(source, partition, 0.25, rng);
  ASSERT_EQ(env.num_clients(), 5u);

  auto cfg2 = tiny_config();
  cfg2.model.arch = "cnn2";
  cfg2.model.in_channels = 1;
  cfg2.model.num_classes = source.num_classes();
  auto algo = fl::make_baseline("fedavg", env, cfg2);
  fl::RunOptions ro;
  ro.rounds = 2;
  EXPECT_NO_THROW(fl::run_federated(*algo, ro));
}

TEST(Integration, SpatlFlopsBudgetTightensUplink) {
  // Lower FLOPs budget -> sparser selection -> fewer uplink bytes.
  const auto source = source_data();
  auto run_with_budget = [&](double budget) {
    common::Rng rng(23);
    fl::FlEnvironment env(source, 3, 0.5, 0.25, rng);
    core::SpatlOptions opts;
    opts.flops_budget = budget;
    opts.gradient_control = false;
    opts.agent_finetune_rounds = 0;
    core::SpatlAlgorithm spatl(env, tiny_config(), opts);
    fl::RunOptions ro;
    ro.rounds = 2;
    fl::run_federated(spatl, ro);
    return spatl.ledger().uplink_bytes();
  };
  const double tight = run_with_budget(0.35);
  const double loose = run_with_budget(0.95);
  EXPECT_LT(tight, loose);
}

TEST(Integration, SpatlAggregationKeepsEncoderFinite) {
  // Masked aggregation must never produce NaN/inf even with aggressive
  // budgets and few clients.
  const auto source = source_data();
  common::Rng rng(29);
  fl::FlEnvironment env(source, 3, 0.3, 0.25, rng);
  core::SpatlOptions opts;
  opts.flops_budget = 0.3;
  opts.agent_finetune_rounds = 1;
  opts.agent_finetune_episodes = 1;
  core::SpatlAlgorithm spatl(env, tiny_config(), opts);
  fl::RunOptions ro;
  ro.rounds = 3;
  fl::run_federated(spatl, ro);
  for (float v : nn::flatten_values(spatl.global_model().encoder_params())) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(Integration, EvaluationDoesNotChargeTheLedger) {
  const auto source = source_data();
  common::Rng rng(31);
  fl::FlEnvironment env(source, 3, 0.5, 0.25, rng);
  core::SpatlOptions opts;
  opts.salient_selection = false;
  opts.gradient_control = false;
  core::SpatlAlgorithm spatl(env, tiny_config(), opts);
  const double before = spatl.ledger().total_bytes();
  spatl.evaluate_clients();
  spatl.per_client_accuracy();
  EXPECT_DOUBLE_EQ(spatl.ledger().total_bytes(), before);
}

TEST(Integration, BaselineGlobalModelsDivergeAcrossAlgorithms) {
  // Sanity: the four baselines are genuinely different optimizers — after
  // identical rounds from identical seeds they reach different weights.
  const auto source = source_data();
  auto run = [&](const std::string& name) {
    common::Rng rng(37);
    fl::FlEnvironment env(source, 3, 0.5, 0.25, rng);
    auto algo = fl::make_baseline(name, env, tiny_config());
    fl::RunOptions ro;
    ro.rounds = 2;
    fl::run_federated(*algo, ro);
    return nn::flatten_values(algo->global_model().all_params());
  };
  const auto avg = run("fedavg");
  const auto prox = run("fedprox");
  const auto nova = run("fednova");
  const auto scaf = run("scaffold");
  EXPECT_NE(avg, prox);
  EXPECT_NE(avg, nova);
  EXPECT_NE(avg, scaf);
  EXPECT_NE(prox, scaf);
}

TEST(Integration, GatedEncoderFlopsMatchesAnalyticAccounting) {
  // The pruning env's reported ratio must equal the analytic accounting on
  // the model's current gates.
  common::Rng rng(41);
  models::ModelConfig mc;
  mc.arch = "vgg11";
  mc.input_size = 8;
  mc.width_mult = 0.25;
  auto model = models::build_model(mc, rng);
  data::SyntheticConfig dc;
  dc.num_samples = 40;
  dc.image_size = 8;
  const auto val = data::make_synth_cifar(dc);
  rl::PruningEnv env(model, val, {.flops_budget = 0.5});
  env.reset();
  const auto sr = env.step(std::vector<double>(model.gates().size(), 0.4));
  const double expected =
      prune::encoder_flops(model) /
      prune::dense_encoder_flops(model.layers());
  EXPECT_NEAR(sr.flops_ratio, expected, 1e-12);
}

}  // namespace
}  // namespace spatl
