#include <gtest/gtest.h>

#include "data/loader.hpp"
#include "data/metrics.hpp"
#include "data/synthetic.hpp"

namespace spatl::data {
namespace {

TEST(ConfusionMatrix, CountsAndAccuracy) {
  ConfusionMatrix cm(3);
  cm.add_batch({0, 0, 1, 2, 2, 2}, {0, 1, 1, 2, 2, 0});
  EXPECT_EQ(cm.total(), 6u);
  EXPECT_EQ(cm.count(0, 0), 1u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_EQ(cm.count(2, 0), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 4.0 / 6.0);
}

TEST(ConfusionMatrix, RecallPrecisionF1HandValues) {
  ConfusionMatrix cm(2);
  // class 0: 3 truths, 2 predicted correctly; class 1: 2 truths, 1 correct.
  cm.add_batch({0, 0, 0, 1, 1}, {0, 0, 1, 1, 0});
  EXPECT_DOUBLE_EQ(cm.recall(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(cm.precision(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(cm.f1(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.f1(1), 0.5);
  EXPECT_NEAR(cm.macro_f1(), (2.0 / 3.0 + 0.5) / 2.0, 1e-12);
}

TEST(ConfusionMatrix, AbsentClassesAreExcludedFromMacroF1) {
  ConfusionMatrix cm(4);
  cm.add_batch({0, 0}, {0, 0});  // only class 0 appears
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
}

TEST(ConfusionMatrix, RejectsOutOfRangeLabels) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), std::out_of_range);
  EXPECT_THROW(cm.add(0, -1), std::out_of_range);
  EXPECT_THROW(cm.add_batch({0}, {0, 1}), std::invalid_argument);
}

TEST(ConfusionMatrix, PerClassAccuracyMatchesRecall) {
  ConfusionMatrix cm(3);
  cm.add_batch({0, 1, 1, 2}, {0, 1, 0, 1});
  const auto pca = cm.per_class_accuracy();
  ASSERT_EQ(pca.size(), 3u);
  EXPECT_DOUBLE_EQ(pca[0], cm.recall(0));
  EXPECT_DOUBLE_EQ(pca[1], cm.recall(1));
  EXPECT_DOUBLE_EQ(pca[2], cm.recall(2));
}

TEST(EvaluateConfusion, AgreesWithPlainAccuracy) {
  SyntheticConfig dc;
  dc.num_samples = 80;
  dc.image_size = 8;
  const Dataset d = make_synth_cifar(dc);
  models::ModelConfig mc;
  mc.arch = "cnn2";
  mc.in_channels = 3;
  mc.input_size = 8;
  mc.width_mult = 0.25;
  common::Rng rng(9);
  auto m = models::build_model(mc, rng);
  const auto cm = evaluate_confusion(m, d);
  const auto plain = evaluate(m, d);
  EXPECT_NEAR(cm.accuracy(), plain.accuracy, 1e-12);
  EXPECT_EQ(cm.total(), d.size());
}

}  // namespace
}  // namespace spatl::data
