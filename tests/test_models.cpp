#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "models/split_model.hpp"
#include "tensor/ops.hpp"

namespace spatl::models {
namespace {

class ModelZoo : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelZoo, ForwardProducesLogitsOfRightShape) {
  ModelConfig cfg;
  cfg.arch = GetParam();
  cfg.input_size = 16;
  cfg.width_mult = 0.25;
  cfg.num_classes = 10;
  if (cfg.arch == std::string("cnn2")) {
    cfg.in_channels = 1;
    cfg.num_classes = 62;
  }
  common::Rng rng(1);
  SplitModel m = build_model(cfg, rng);
  nn::Tensor x = nn::Tensor::randn(
      {2, cfg.in_channels, cfg.input_size, cfg.input_size}, rng);
  nn::Tensor logits = m.forward(x, /*train=*/true);
  EXPECT_EQ(logits.shape(), (tensor::Shape{2, cfg.num_classes}));
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    EXPECT_FALSE(std::isnan(logits[i]));
  }
}

TEST_P(ModelZoo, BackwardRunsAndPopulatesGradients) {
  ModelConfig cfg;
  cfg.arch = GetParam();
  cfg.input_size = 16;
  cfg.width_mult = 0.25;
  if (cfg.arch == std::string("cnn2")) cfg.in_channels = 1;
  common::Rng rng(2);
  SplitModel m = build_model(cfg, rng);
  nn::Tensor x = nn::Tensor::randn(
      {2, cfg.in_channels, cfg.input_size, cfg.input_size}, rng);
  nn::Tensor logits = m.forward(x, true);
  nn::Tensor dlogits;
  tensor::cross_entropy(logits, {0, 1}, &dlogits);
  m.zero_grad();
  m.backward(dlogits);
  double gnorm = 0.0;
  for (auto& p : m.all_params()) gnorm += double(p.grad->norm());
  EXPECT_GT(gnorm, 0.0);
}

TEST_P(ModelZoo, ParamNamesSplitByPrefix) {
  ModelConfig cfg;
  cfg.arch = GetParam();
  cfg.input_size = 16;
  cfg.width_mult = 0.25;
  if (cfg.arch == std::string("cnn2")) cfg.in_channels = 1;
  common::Rng rng(3);
  SplitModel m = build_model(cfg, rng);
  const auto all = m.all_params();
  const auto enc = m.encoder_params();
  const auto pred = m.predictor_params();
  EXPECT_EQ(all.size(), enc.size() + pred.size());
  for (const auto& p : enc) {
    EXPECT_EQ(p.name.rfind("encoder.", 0), 0u) << p.name;
  }
  for (const auto& p : pred) {
    EXPECT_EQ(p.name.rfind("predictor.", 0), 0u) << p.name;
  }
  // For the conv trunks the encoder dominates the parameter budget; the
  // 2-layer CNN is the paper's own counter-example (it is
  // "less-parameterized" — §VI), so skip the dominance check there.
  if (cfg.arch != std::string("cnn2")) {
    EXPECT_GT(nn::param_count(enc), nn::param_count(pred))
        << "encoder should dominate the parameter budget";
  }
}

TEST_P(ModelZoo, LayerRecordEndsAtEncoderOutput) {
  ModelConfig cfg;
  cfg.arch = GetParam();
  cfg.input_size = 16;
  cfg.width_mult = 0.25;
  if (cfg.arch == std::string("cnn2")) cfg.in_channels = 1;
  common::Rng rng(4);
  SplitModel m = build_model(cfg, rng);
  ASSERT_FALSE(m.layers().empty());
  // Spatial dims and channels flow consistently layer to layer.
  for (std::size_t i = 1; i < m.layers().size(); ++i) {
    const auto& prev = m.layers()[i - 1];
    const auto& cur = m.layers()[i];
    EXPECT_EQ(cur.in_ch, prev.out_ch) << "layer " << i;
    EXPECT_EQ(cur.in_h, prev.out_h) << "layer " << i;
  }
}

TEST_P(ModelZoo, GatesCoverEveryRecordedOutGate) {
  ModelConfig cfg;
  cfg.arch = GetParam();
  cfg.input_size = 16;
  cfg.width_mult = 0.25;
  if (cfg.arch == std::string("cnn2")) cfg.in_channels = 1;
  common::Rng rng(5);
  SplitModel m = build_model(cfg, rng);
  EXPECT_FALSE(m.gates().empty());
  for (const auto& li : m.layers()) {
    if (li.out_gate >= 0) {
      ASSERT_LT(std::size_t(li.out_gate), m.gates().size());
      EXPECT_EQ(m.gates()[li.out_gate]->channels(), li.out_ch);
    }
    if (li.in_gate >= 0) {
      ASSERT_LT(std::size_t(li.in_gate), m.gates().size());
      EXPECT_EQ(m.gates()[li.in_gate]->channels(), li.in_ch);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Architectures, ModelZoo,
                         ::testing::Values("resnet20", "resnet32", "resnet56",
                                           "resnet18", "vgg11", "cnn2"));

TEST(SplitModel, UnknownArchThrows) {
  ModelConfig cfg;
  cfg.arch = "alexnet";
  common::Rng rng(1);
  EXPECT_THROW(build_model(cfg, rng), std::invalid_argument);
}

TEST(SplitModel, CopyFullStateReproducesOutputsExactly) {
  ModelConfig cfg;
  cfg.arch = "resnet20";
  cfg.input_size = 12;
  cfg.width_mult = 0.25;
  common::Rng rng(7);
  SplitModel a = build_model(cfg, rng);
  SplitModel b = build_model(cfg, rng);  // different init

  // Run a few training forwards on `a` so running BN stats diverge.
  nn::Tensor x = nn::Tensor::randn({4, 3, 12, 12}, rng);
  a.forward(x, /*train=*/true);
  a.forward(x, /*train=*/true);

  copy_full_state(a, b);
  nn::Tensor ya = a.forward(x, /*train=*/false);
  nn::Tensor yb = b.forward(x, /*train=*/false);
  EXPECT_TRUE(tensor::allclose(ya, yb, 1e-6f));
}

TEST(SplitModel, GateResetRestoresDenseModel) {
  ModelConfig cfg;
  cfg.arch = "vgg11";
  cfg.input_size = 16;
  cfg.width_mult = 0.25;
  common::Rng rng(9);
  SplitModel m = build_model(cfg, rng);
  auto* gate = m.gates()[0];
  std::vector<std::uint8_t> mask(gate->channels(), 0);
  mask[0] = 1;
  gate->set_mask(mask);
  EXPECT_LT(m.gate_keep_fractions()[0], 1.0);
  m.reset_gates();
  for (double f : m.gate_keep_fractions()) EXPECT_DOUBLE_EQ(f, 1.0);
}

TEST(SplitModel, WidthMultiplierScalesParameters) {
  common::Rng rng(11);
  ModelConfig small;
  small.arch = "resnet20";
  small.width_mult = 0.25;
  ModelConfig big = small;
  big.width_mult = 1.0;
  SplitModel ms = build_model(small, rng);
  SplitModel mb = build_model(big, rng);
  EXPECT_LT(ms.encoder_param_count() * 4, mb.encoder_param_count());
}

TEST(SplitModel, FullScaleEncoderParamsMatchKnownMagnitudes) {
  // CIFAR ResNet-20 is ~0.27M params; VGG-11 with BN ~9.2M (conv trunk).
  const std::size_t r20 = full_scale_encoder_params("resnet20");
  EXPECT_GT(r20, 200'000u);
  EXPECT_LT(r20, 350'000u);
  const std::size_t r32 = full_scale_encoder_params("resnet32");
  EXPECT_GT(r32, r20);
  const std::size_t vgg = full_scale_encoder_params("vgg11");
  EXPECT_GT(vgg, 8'000'000u);
  EXPECT_LT(vgg, 11'000'000u);
}

TEST(SplitModel, EncodeMatchesPredictorComposition) {
  ModelConfig cfg;
  cfg.arch = "cnn2";
  cfg.in_channels = 1;
  cfg.input_size = 16;
  cfg.width_mult = 0.25;
  common::Rng rng(13);
  SplitModel m = build_model(cfg, rng);
  nn::Tensor x = nn::Tensor::randn({2, 1, 16, 16}, rng);
  nn::Tensor emb = m.encode(x, false);
  nn::Tensor logits1 = m.predictor().forward(emb, false);
  nn::Tensor logits2 = m.forward(x, false);
  EXPECT_TRUE(tensor::allclose(logits1, logits2, 1e-6f));
}

}  // namespace
}  // namespace spatl::models
